//===- tests/parser/ParserTest.cpp - Parser tests -------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "gtest/gtest.h"

using namespace edda;

namespace {

bool failsWith(const std::string &Source, const std::string &Needle) {
  ParseResult R = parseProgram(Source);
  if (R.succeeded())
    return false;
  for (const Diagnostic &D : R.Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(Parser, MinimalProgram) {
  ParseResult R = parseProgram("program p end");
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(R.Prog->name(), "p");
  EXPECT_TRUE(R.Prog->body().empty());
}

TEST(Parser, FullFeatureProgram) {
  const char *Source = R"(program full
  array a[100]
  array b[10][20]
  read n
  param k = -5
  for i = 1 to n do
    for j = 1 to i do
      b[i][j] = a[i + 2 * j - k] + b[i][j] * 3
    end
  end
end
)";
  ParseResult R = parseProgram(Source);
  ASSERT_TRUE(R.succeeded());
  const Program &P = *R.Prog;
  EXPECT_EQ(P.numArrays(), 2u);
  EXPECT_EQ(P.var(*P.lookupVar("n")).Kind, VarKind::Symbolic);
  EXPECT_EQ(P.var(*P.lookupVar("k")).Kind, VarKind::Scalar);
  EXPECT_EQ(P.var(*P.lookupVar("i")).Kind, VarKind::Loop);
  // param becomes an initializing assignment followed by the loop.
  ASSERT_EQ(P.body().size(), 2u);
  EXPECT_EQ(P.body()[0]->kind(), StmtKind::Assign);
  EXPECT_EQ(P.body()[1]->kind(), StmtKind::Loop);
}

TEST(Parser, NegativeStepAndParenExpr) {
  const char *Source = R"(program s
  array a[10]
  for i = 9 to 1 step -2 do
    a[(i + 1) * 2 - 3] = -(i)
  end
end
)";
  ParseResult R = parseProgram(Source);
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(asLoop(*R.Prog->body()[0]).step(), -2);
}

TEST(Parser, LoopVarReuseAcrossSiblings) {
  const char *Source = R"(program s
  array a[10]
  for i = 1 to 5 do
    a[i] = 0
  end
  for i = 1 to 8 do
    a[i] = 1
  end
end
)";
  ParseResult R = parseProgram(Source);
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(asLoop(*R.Prog->body()[0]).varId(),
            asLoop(*R.Prog->body()[1]).varId());
}

TEST(Parser, ErrorNestedLoopVarReuse) {
  EXPECT_TRUE(failsWith(R"(program s
  array a[10]
  for i = 1 to 5 do
    for i = 1 to 5 do
      a[i] = 0
    end
  end
end
)",
                        "reused by an enclosing loop"));
}

TEST(Parser, ErrorUndeclaredVariable) {
  EXPECT_TRUE(failsWith(R"(program s
  array a[10]
  for i = 1 to 5 do
    a[i] = q + 1
  end
end
)",
                        "undeclared variable 'q'"));
}

TEST(Parser, ErrorRankMismatch) {
  EXPECT_TRUE(failsWith(R"(program s
  array a[10][10]
  for i = 1 to 5 do
    a[i] = 1
  end
end
)",
                        "rank 2"));
}

TEST(Parser, ErrorAssignToSymbolic) {
  EXPECT_TRUE(failsWith(R"(program s
  read n
  n = 5
end
)",
                        "symbolic"));
}

TEST(Parser, ErrorAssignToActiveLoopVar) {
  EXPECT_TRUE(failsWith(R"(program s
  for i = 1 to 5 do
    i = 3
  end
end
)",
                        "active loop variable"));
}

TEST(Parser, ErrorZeroStep) {
  EXPECT_TRUE(failsWith(R"(program s
  array a[5]
  for i = 1 to 5 step 0 do
    a[i] = 0
  end
end
)",
                        "nonzero"));
}

TEST(Parser, ErrorRedeclaration) {
  EXPECT_TRUE(failsWith("program s\narray a[5]\nread a\nend",
                        "redeclaration"));
  EXPECT_TRUE(failsWith("program s\nread n\nparam n = 3\nend",
                        "redeclaration"));
}

TEST(Parser, ErrorArrayReadInBounds) {
  EXPECT_TRUE(failsWith(R"(program s
  array a[5]
  for i = 1 to a[1] do
    a[i] = 0
  end
end
)",
                        "loop bounds"));
}

TEST(Parser, ErrorMissingEnd) {
  EXPECT_TRUE(failsWith(R"(program s
  array a[5]
  for i = 1 to 5 do
    a[i] = 0
)",
                        "expected"));
}

TEST(Parser, ErrorJunkAfterEnd) {
  EXPECT_TRUE(failsWith("program s end extra", "after 'end'"));
}

TEST(Parser, ErrorScalarAsLoopVar) {
  EXPECT_TRUE(failsWith(R"(program s
  array a[5]
  k = 3
  for k = 1 to 5 do
    a[k] = 0
  end
end
)",
                        "not usable as a loop variable"));
}

TEST(Parser, DiagnosticPositions) {
  ParseResult R = parseProgram("program s\n  q = r\nend");
  ASSERT_FALSE(R.succeeded());
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags[0].Line, 2u);
  EXPECT_NE(R.Diags[0].str().find("2:"), std::string::npos);
}

TEST(Parser, ScalarReductionWithArrayRead) {
  // s = s + a[i]: scalar assignment whose RHS reads an array.
  const char *Source = R"(program s
  array a[10]
  s = 0
  for i = 1 to 10 do
    s = s + a[i]
  end
end
)";
  ParseResult R = parseProgram(Source);
  ASSERT_TRUE(R.succeeded());
}
