//===- tests/parser/LexerTest.cpp - Lexer tests ---------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include "gtest/gtest.h"

using namespace edda;

namespace {

std::vector<TokenKind> kindsOf(std::string_view Source) {
  std::vector<Token> Tokens = Lexer(Source).lexAll();
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(Lexer, EmptyInput) {
  EXPECT_EQ(kindsOf(""), (std::vector<TokenKind>{TokenKind::Eof}));
}

TEST(Lexer, KeywordsAndIdentifiers) {
  EXPECT_EQ(kindsOf("program foo end"),
            (std::vector<TokenKind>{TokenKind::KwProgram,
                                    TokenKind::Identifier,
                                    TokenKind::KwEnd, TokenKind::Eof}));
  // Keywords are whole-word: "forx" is an identifier.
  EXPECT_EQ(kindsOf("forx")[0], TokenKind::Identifier);
}

TEST(Lexer, AllKeywords) {
  std::vector<TokenKind> K =
      kindsOf("program end for to step do array read param");
  EXPECT_EQ(K, (std::vector<TokenKind>{
                   TokenKind::KwProgram, TokenKind::KwEnd,
                   TokenKind::KwFor, TokenKind::KwTo, TokenKind::KwStep,
                   TokenKind::KwDo, TokenKind::KwArray, TokenKind::KwRead,
                   TokenKind::KwParam, TokenKind::Eof}));
}

TEST(Lexer, Punctuation) {
  EXPECT_EQ(kindsOf("+ - * ( ) [ ] ="),
            (std::vector<TokenKind>{
                TokenKind::Plus, TokenKind::Minus, TokenKind::Star,
                TokenKind::LParen, TokenKind::RParen, TokenKind::LBracket,
                TokenKind::RBracket, TokenKind::Equals, TokenKind::Eof}));
}

TEST(Lexer, IntegerValues) {
  std::vector<Token> Tokens = Lexer("0 42 12345").lexAll();
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 12345);
}

TEST(Lexer, IntegerOverflowIsInvalid) {
  std::vector<Token> Tokens = Lexer("99999999999999999999").lexAll();
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Invalid);
}

TEST(Lexer, CommentsSkipped) {
  std::vector<Token> Tokens =
      Lexer("a # comment until end of line\nb").lexAll();
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[1].Line, 2u);
}

TEST(Lexer, LineAndColumnTracking) {
  std::vector<Token> Tokens = Lexer("ab cd\n  ef").lexAll();
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[0].Column, 1u);
  EXPECT_EQ(Tokens[1].Column, 4u);
  EXPECT_EQ(Tokens[2].Line, 2u);
  EXPECT_EQ(Tokens[2].Column, 3u);
}

TEST(Lexer, InvalidCharacter) {
  std::vector<Token> Tokens = Lexer("a $ b").lexAll();
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Invalid);
}

TEST(Lexer, UnderscoreIdentifiers) {
  std::vector<Token> Tokens = Lexer("_foo bar_9").lexAll();
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "_foo");
  EXPECT_EQ(Tokens[1].Text, "bar_9");
}

TEST(Lexer, TokenKindNames) {
  EXPECT_STREQ(tokenKindName(TokenKind::KwFor), "'for'");
  EXPECT_STREQ(tokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_STREQ(tokenKindName(TokenKind::Eof), "end of input");
}
