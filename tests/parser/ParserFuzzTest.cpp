//===- tests/parser/ParserFuzzTest.cpp - Parser robustness ----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness: the parser must never crash, loop or accept garbage —
/// every malformed input produces diagnostics. Inputs are random token
/// soups, truncated valid programs, and byte noise.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "workload/Generator.h"
#include "gtest/gtest.h"

using namespace edda;

namespace {

const char *Tokens[] = {"program", "end",  "for",  "to",    "step",
                        "do",      "array", "read", "param", "+",
                        "-",       "*",     "(",    ")",     "[",
                        "]",       "=",     "i",    "j",     "a",
                        "n",       "0",     "1",    "42",    "#x\n",
                        "\n",      "$",     "9999999999999999999999"};

std::string randomSoup(SplitRng &Rng, unsigned Len) {
  std::string Out;
  for (unsigned I = 0; I < Len; ++I) {
    Out += Tokens[Rng.below(sizeof(Tokens) / sizeof(Tokens[0]))];
    Out += " ";
  }
  return Out;
}

} // namespace

TEST(ParserFuzz, TokenSoupNeverCrashes) {
  SplitRng Rng(4242);
  unsigned Accepted = 0;
  for (unsigned Iter = 0; Iter < 2000; ++Iter) {
    std::string Source = randomSoup(Rng, 1 + Rng.below(60));
    ParseResult R = parseProgram(Source);
    if (R.succeeded())
      ++Accepted;
    else
      EXPECT_FALSE(R.Diags.empty()) << Source;
  }
  // Random soups occasionally form valid programs ("program i end"),
  // but the vast majority must be rejected.
  EXPECT_LT(Accepted, 200u);
}

TEST(ParserFuzz, TruncatedValidProgramsAlwaysDiagnose) {
  const std::string Valid = R"(program demo
  array a[100]
  read n
  for i = 1 to n do
    for j = 1 to i do
      a[i + 2 * j] = a[i] + 3
    end
  end
end
)";
  for (size_t Len = 0; Len + 1 < Valid.size(); Len += 3) {
    ParseResult R = parseProgram(Valid.substr(0, Len));
    if (!R.succeeded())
      EXPECT_FALSE(R.Diags.empty()) << "prefix length " << Len;
  }
  EXPECT_TRUE(parseProgram(Valid).succeeded());
}

TEST(ParserFuzz, ByteNoiseNeverCrashes) {
  SplitRng Rng(99);
  for (unsigned Iter = 0; Iter < 500; ++Iter) {
    std::string Source;
    unsigned Len = 1 + static_cast<unsigned>(Rng.below(200));
    for (unsigned I = 0; I < Len; ++I)
      Source += static_cast<char>(Rng.below(127) + 1); // avoid NUL
    ParseResult R = parseProgram(Source);
    if (!R.succeeded())
      EXPECT_FALSE(R.Diags.empty());
  }
}

namespace {

/// parse -> print must reach a fixed point in one step: the printed
/// form reparses, and printing the reparse reproduces it byte for byte.
void expectPrintParseIdempotent(const std::string &Source,
                                const std::string &Label) {
  ParseResult First = parseProgram(Source);
  ASSERT_TRUE(First.succeeded())
      << Label << ": "
      << (First.Diags.empty() ? "source did not parse"
                              : First.Diags[0].str())
      << "\n"
      << Source;
  std::string Printed = First.Prog->print();
  ParseResult Second = parseProgram(Printed);
  ASSERT_TRUE(Second.succeeded())
      << Label << ": printed form does not reparse\n"
      << Printed;
  EXPECT_EQ(Second.Prog->print(), Printed)
      << Label << ": print/parse is not a fixed point";
}

} // namespace

TEST(ParserFuzz, PerfectClubProgramsPrintParseIdempotent) {
  GeneratorOptions Opts;
  Opts.Scale = 0.05; // Small case counts; shapes are what matter here.
  Opts.MaxWrapDepth = 2;
  Opts.IncludeSymbolic = true;
  for (const auto &[Name, Source] : generatePerfectClubSuite(Opts))
    expectPrintParseIdempotent(Source, Name);
}

TEST(ParserFuzz, RandomProgramsPrintParseIdempotent) {
  for (uint64_t Seed = 1; Seed <= 80; ++Seed) {
    SplitRng Rng(Seed);
    expectPrintParseIdempotent(generateRandomProgram(Rng),
                               "seed " + std::to_string(Seed));
  }
}

TEST(ParserFuzz, DeepNestingHandled) {
  // 200 nested loops: recursion depth must be fine and the program
  // valid.
  std::string Source = "program deep\n  array a[10]\n";
  for (int I = 0; I < 200; ++I)
    Source += "for v" + std::to_string(I) + " = 1 to 2 do\n";
  Source += "a[1] = 0\n";
  for (int I = 0; I < 200; ++I)
    Source += "end\n";
  Source += "end\n";
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.succeeded());
}

TEST(ParserFuzz, DeepExpressionNesting) {
  std::string Source = "program deep\n  array a[10]\n  a[1] = ";
  for (int I = 0; I < 400; ++I)
    Source += "(1 + ";
  Source += "0";
  for (int I = 0; I < 400; ++I)
    Source += ")";
  Source += "\nend\n";
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.succeeded());
}
