//===- tests/parser/ParserFuzzTest.cpp - Parser robustness ----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness: the parser must never crash, loop or accept garbage —
/// every malformed input produces diagnostics. Inputs are random token
/// soups, truncated valid programs, and byte noise.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "workload/Generator.h"
#include "gtest/gtest.h"

using namespace edda;

namespace {

const char *Tokens[] = {"program", "end",  "for",  "to",    "step",
                        "do",      "array", "read", "param", "+",
                        "-",       "*",     "(",    ")",     "[",
                        "]",       "=",     "i",    "j",     "a",
                        "n",       "0",     "1",    "42",    "#x\n",
                        "\n",      "$",     "9999999999999999999999"};

std::string randomSoup(SplitRng &Rng, unsigned Len) {
  std::string Out;
  for (unsigned I = 0; I < Len; ++I) {
    Out += Tokens[Rng.below(sizeof(Tokens) / sizeof(Tokens[0]))];
    Out += " ";
  }
  return Out;
}

} // namespace

TEST(ParserFuzz, TokenSoupNeverCrashes) {
  SplitRng Rng(4242);
  unsigned Accepted = 0;
  for (unsigned Iter = 0; Iter < 2000; ++Iter) {
    std::string Source = randomSoup(Rng, 1 + Rng.below(60));
    ParseResult R = parseProgram(Source);
    if (R.succeeded())
      ++Accepted;
    else
      EXPECT_FALSE(R.Diags.empty()) << Source;
  }
  // Random soups occasionally form valid programs ("program i end"),
  // but the vast majority must be rejected.
  EXPECT_LT(Accepted, 200u);
}

TEST(ParserFuzz, TruncatedValidProgramsAlwaysDiagnose) {
  const std::string Valid = R"(program demo
  array a[100]
  read n
  for i = 1 to n do
    for j = 1 to i do
      a[i + 2 * j] = a[i] + 3
    end
  end
end
)";
  for (size_t Len = 0; Len + 1 < Valid.size(); Len += 3) {
    ParseResult R = parseProgram(Valid.substr(0, Len));
    if (!R.succeeded())
      EXPECT_FALSE(R.Diags.empty()) << "prefix length " << Len;
  }
  EXPECT_TRUE(parseProgram(Valid).succeeded());
}

TEST(ParserFuzz, ByteNoiseNeverCrashes) {
  SplitRng Rng(99);
  for (unsigned Iter = 0; Iter < 500; ++Iter) {
    std::string Source;
    unsigned Len = 1 + static_cast<unsigned>(Rng.below(200));
    for (unsigned I = 0; I < Len; ++I)
      Source += static_cast<char>(Rng.below(127) + 1); // avoid NUL
    ParseResult R = parseProgram(Source);
    if (!R.succeeded())
      EXPECT_FALSE(R.Diags.empty());
  }
}

TEST(ParserFuzz, DeepNestingHandled) {
  // 200 nested loops: recursion depth must be fine and the program
  // valid.
  std::string Source = "program deep\n  array a[10]\n";
  for (int I = 0; I < 200; ++I)
    Source += "for v" + std::to_string(I) + " = 1 to 2 do\n";
  Source += "a[1] = 0\n";
  for (int I = 0; I < 200; ++I)
    Source += "end\n";
  Source += "end\n";
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.succeeded());
}

TEST(ParserFuzz, DeepExpressionNesting) {
  std::string Source = "program deep\n  array a[10]\n  a[1] = ";
  for (int I = 0; I < 400; ++I)
    Source += "(1 + ";
  Source += "0";
  for (int I = 0; I < 400; ++I)
    Source += ")";
  Source += "\nend\n";
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.succeeded());
}
