//===- tests/testutil/Helpers.h - Shared test helpers ----------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders shared by the unit and integration tests: a fluent
/// DependenceProblem builder, random problem generation for property
/// tests, and a source -> first write/read problem shortcut.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_TESTS_TESTUTIL_HELPERS_H
#define EDDA_TESTS_TESTUTIL_HELPERS_H

#include "analysis/Builder.h"
#include "deptest/Problem.h"
#include "ir/Program.h"
#include "workload/Generator.h"

#include <optional>
#include <string>
#include <vector>

namespace edda {
namespace testutil {

/// Fluent builder for DependenceProblem values in tests.
class ProblemBuilder {
public:
  ProblemBuilder(unsigned LoopsA, unsigned LoopsB, unsigned Common,
                 unsigned Symbolic = 0) {
    P.NumLoopsA = LoopsA;
    P.NumLoopsB = LoopsB;
    P.NumCommon = Common;
    P.NumSymbolic = Symbolic;
    P.Lo.resize(P.numLoopVars());
    P.Hi.resize(P.numLoopVars());
  }

  /// Adds the equation sum Coeffs*x + Const == 0.
  ProblemBuilder &eq(std::vector<int64_t> Coeffs, int64_t Const) {
    XAffine E(P.numX());
    E.Coeffs = std::move(Coeffs);
    E.Const = Const;
    P.Equations.push_back(std::move(E));
    return *this;
  }

  /// Constant bounds Lo <= x_Var <= Hi.
  ProblemBuilder &bounds(unsigned Var, int64_t Lo, int64_t Hi) {
    P.Lo[Var] = XAffine(P.numX());
    P.Lo[Var]->Const = Lo;
    P.Hi[Var] = XAffine(P.numX());
    P.Hi[Var]->Const = Hi;
    return *this;
  }

  /// Affine bound forms (full coefficient vectors).
  ProblemBuilder &loBound(unsigned Var, std::vector<int64_t> Coeffs,
                          int64_t Const) {
    XAffine F(P.numX());
    F.Coeffs = std::move(Coeffs);
    F.Const = Const;
    P.Lo[Var] = std::move(F);
    return *this;
  }
  ProblemBuilder &hiBound(unsigned Var, std::vector<int64_t> Coeffs,
                          int64_t Const) {
    XAffine F(P.numX());
    F.Coeffs = std::move(Coeffs);
    F.Const = Const;
    P.Hi[Var] = std::move(F);
    return *this;
  }

  DependenceProblem build() const { return P; }

private:
  DependenceProblem P;
};

/// Parses \p Source (failing the test on errors via the returned
/// optional), runs the prepass, and builds the problem for the first
/// write against the read with index \p ReadIdx (both on the same
/// array as the write). Returns nullopt when anything fails.
std::optional<BuiltProblem> problemFromSource(const std::string &Source,
                                              unsigned ReadIdx = 0);

/// Parses and preprocesses \p Source, aborting the process on parse
/// errors (for tests that know the source is valid).
Program mustParse(const std::string &Source, bool Prepass = true);

/// Generates a random small dependence problem for property tests:
/// 1-2 common loops (plus occasionally an extra loop on one side),
/// constant bounds in [-4, 8] spans, 1-2 equations with coefficients in
/// [-3, 3]. All bounds present so the oracle applies.
DependenceProblem randomProblem(SplitRng &Rng);

} // namespace testutil
} // namespace edda

#endif // EDDA_TESTS_TESTUTIL_HELPERS_H
