//===- tests/testutil/Oracle.cpp - Brute-force ground truth ---------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "testutil/Oracle.h"

#include "support/IntMath.h"

using namespace edda;
using namespace edda::testutil;

namespace {

/// Shared recursive enumerator. Calls \p Visit on every integer point
/// satisfying bounds and equations; Visit returns false to stop early.
/// Returns nullopt when enumeration is inapplicable or too large.
template <typename VisitFn>
std::optional<bool> enumerate(const DependenceProblem &P,
                              const std::vector<XAffine> &ExtraLe0,
                              const OracleOptions &Opts, VisitFn Visit) {
  if (P.NumSymbolic != 0)
    return std::nullopt;
  const unsigned NumL = P.numLoopVars();
  for (unsigned L = 0; L < NumL; ++L) {
    if (!P.Lo[L] || !P.Hi[L])
      return std::nullopt;
    // Bounds may only reference earlier variables so left-to-right
    // enumeration can evaluate them.
    for (unsigned J = L; J < NumL; ++J)
      if (P.Lo[L]->Coeffs[J] != 0 || P.Hi[L]->Coeffs[J] != 0)
        return std::nullopt;
  }

  std::vector<int64_t> X(NumL, 0);
  uint64_t Visited = 0;
  bool Aborted = false;
  bool Stopped = false;

  auto Eval = [&X](const XAffine &Form) -> std::optional<int64_t> {
    CheckedInt Sum(Form.Const);
    for (unsigned J = 0; J < Form.Coeffs.size(); ++J)
      if (Form.Coeffs[J] != 0)
        Sum += CheckedInt(Form.Coeffs[J]) * X[J];
    return Sum.getOpt();
  };

  auto Rec = [&](auto &&Self, unsigned L) -> void {
    if (Stopped || Aborted)
      return;
    if (L == NumL) {
      for (const XAffine &Eq : P.Equations) {
        std::optional<int64_t> V = Eval(Eq);
        if (!V) {
          Aborted = true;
          return;
        }
        if (*V != 0)
          return;
      }
      for (const XAffine &Form : ExtraLe0) {
        std::optional<int64_t> V = Eval(Form);
        if (!V) {
          Aborted = true;
          return;
        }
        if (*V > 0)
          return;
      }
      if (!Visit(X))
        Stopped = true;
      return;
    }
    std::optional<int64_t> Lo = Eval(*P.Lo[L]);
    std::optional<int64_t> Hi = Eval(*P.Hi[L]);
    if (!Lo || !Hi) {
      Aborted = true;
      return;
    }
    for (int64_t V = *Lo; V <= *Hi; ++V) {
      if (++Visited > Opts.MaxPoints) {
        Aborted = true;
        return;
      }
      X[L] = V;
      Self(Self, L + 1);
      if (Stopped || Aborted)
        return;
    }
  };
  Rec(Rec, 0);
  if (Aborted)
    return std::nullopt;
  return Stopped;
}

} // namespace

std::optional<bool>
edda::testutil::oracleDependent(const DependenceProblem &Problem,
                                const std::vector<XAffine> &ExtraLe0,
                                const OracleOptions &Opts) {
  return enumerate(Problem, ExtraLe0, Opts,
                   [](const std::vector<int64_t> &) { return false; });
}

std::optional<std::set<DirVector>>
edda::testutil::oracleDirections(const DependenceProblem &Problem,
                                 const OracleOptions &Opts) {
  std::set<DirVector> Found;
  std::optional<bool> Ran = enumerate(
      Problem, {}, Opts, [&](const std::vector<int64_t> &X) {
        DirVector V(Problem.NumCommon);
        for (unsigned K = 0; K < Problem.NumCommon; ++K) {
          int64_t A = X[Problem.xOfCommonA(K)];
          int64_t B = X[Problem.xOfCommonB(K)];
          V[K] = A < B ? Dir::Less : A == B ? Dir::Equal : Dir::Greater;
        }
        Found.insert(std::move(V));
        return true; // keep enumerating
      });
  if (!Ran)
    return std::nullopt;
  return Found;
}

bool edda::testutil::dirMatches(const DirVector &Reported,
                                const DirVector &Concrete) {
  if (Reported.size() != Concrete.size())
    return false;
  for (unsigned K = 0; K < Reported.size(); ++K)
    if (Reported[K] != Dir::Any && Reported[K] != Concrete[K])
      return false;
  return true;
}
