//===- tests/testutil/Helpers.cpp - Shared test helpers -------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "testutil/Helpers.h"

#include "opt/Pipeline.h"
#include "parser/Parser.h"

#include <cstdio>
#include <cstdlib>

using namespace edda;
using namespace edda::testutil;

Program edda::testutil::mustParse(const std::string &Source,
                                  bool Prepass) {
  ParseResult Result = parseProgram(Source);
  if (!Result.succeeded()) {
    std::fprintf(stderr, "test source failed to parse:\n");
    for (const Diagnostic &D : Result.Diags)
      std::fprintf(stderr, "  %s\n", D.str().c_str());
    std::abort();
  }
  if (Prepass)
    runPrepass(*Result.Prog);
  return std::move(*Result.Prog);
}

std::optional<BuiltProblem>
edda::testutil::problemFromSource(const std::string &Source,
                                  unsigned ReadIdx) {
  Program Prog = mustParse(Source);
  std::vector<ArrayReference> Refs = collectReferences(Prog);
  const ArrayReference *Write = nullptr;
  for (const ArrayReference &Ref : Refs)
    if (Ref.IsWrite) {
      Write = &Ref;
      break;
    }
  if (!Write)
    return std::nullopt;
  unsigned Seen = 0;
  for (const ArrayReference &Ref : Refs) {
    if (Ref.IsWrite || Ref.ArrayId != Write->ArrayId)
      continue;
    if (Seen++ == ReadIdx)
      return buildProblem(Prog, *Write, Ref);
  }
  return std::nullopt;
}

DependenceProblem edda::testutil::randomProblem(SplitRng &Rng) {
  unsigned Common = 1 + static_cast<unsigned>(Rng.below(2));
  unsigned ExtraA = Rng.below(4) == 0 ? 1 : 0;
  unsigned ExtraB = Rng.below(4) == 0 ? 1 : 0;
  unsigned LoopsA = Common + ExtraA;
  unsigned LoopsB = Common + ExtraB;
  ProblemBuilder PB(LoopsA, LoopsB, Common);
  DependenceProblem Skeleton = PB.build();
  unsigned NumX = Skeleton.numX();

  unsigned NumEq = 1 + static_cast<unsigned>(Rng.below(2));
  for (unsigned E = 0; E < NumEq; ++E) {
    std::vector<int64_t> Coeffs(NumX, 0);
    for (unsigned J = 0; J < NumX; ++J)
      Coeffs[J] = static_cast<int64_t>(Rng.below(7)) - 3;
    int64_t Const = static_cast<int64_t>(Rng.below(13)) - 6;
    PB.eq(std::move(Coeffs), Const);
  }
  // Common loops share one bound pair between their two copies, as they
  // would coming out of the problem builder.
  for (unsigned L = 0; L < LoopsA; ++L) {
    int64_t Lo = static_cast<int64_t>(Rng.below(9)) - 4;
    int64_t Span = static_cast<int64_t>(Rng.below(9));
    PB.bounds(L, Lo, Lo + Span);
    if (L < Common)
      PB.bounds(LoopsA + L, Lo, Lo + Span);
  }
  for (unsigned L = Common; L < LoopsB; ++L) {
    int64_t Lo = static_cast<int64_t>(Rng.below(9)) - 4;
    int64_t Span = static_cast<int64_t>(Rng.below(9));
    PB.bounds(LoopsA + L, Lo, Lo + Span);
  }
  // Occasionally couple an inner bound to the outer loop (triangular).
  DependenceProblem P = PB.build();
  if (P.NumCommon == 2 && Rng.below(2) == 0) {
    // Triangular inner bound x_inner <= x_outer + c, same c on both
    // copies (one source loop).
    int64_t C = static_cast<int64_t>(Rng.below(5)) - 1;
    for (unsigned Side = 0; Side < 2; ++Side) {
      unsigned Outer = Side == 0 ? P.xOfCommonA(0) : P.xOfCommonB(0);
      unsigned Inner = Side == 0 ? P.xOfCommonA(1) : P.xOfCommonB(1);
      XAffine Hi(P.numX());
      Hi.Coeffs[Outer] = 1;
      Hi.Const = C;
      P.Hi[Inner] = std::move(Hi);
    }
  }
  return P;
}
