//===- tests/testutil/Oracle.h - Brute-force ground truth ------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive-enumeration ground truth for small dependence problems:
/// the paper's exactness claims are machine-checked by comparing every
/// test's answer against enumeration of all integer points within the
/// loop bounds.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_TESTS_TESTUTIL_ORACLE_H
#define EDDA_TESTS_TESTUTIL_ORACLE_H

#include "deptest/Direction.h"
#include "deptest/Problem.h"

#include <optional>
#include <set>
#include <vector>

namespace edda {
namespace testutil {

/// Enumeration limits.
struct OracleOptions {
  /// Give up (return nullopt) past this many points.
  uint64_t MaxPoints = 4u << 20;
};

/// True/false when enumeration is conclusive: the problem must have no
/// symbolic variables and every loop variable needs both bounds, each
/// referencing only variables earlier in x order. Extra forms are
/// required <= 0 as in the cascade.
std::optional<bool>
oracleDependent(const DependenceProblem &Problem,
                const std::vector<XAffine> &ExtraLe0 = {},
                const OracleOptions &Opts = {});

/// All direction sign patterns (over the common loops) realized by some
/// dependence, by enumeration. Same applicability conditions.
std::optional<std::set<DirVector>>
oracleDirections(const DependenceProblem &Problem,
                 const OracleOptions &Opts = {});

/// True when \p Concrete (all components <, =, >) matches \p Reported
/// componentwise, treating '*' as a wildcard.
bool dirMatches(const DirVector &Reported, const DirVector &Concrete);

} // namespace testutil
} // namespace edda

#endif // EDDA_TESTS_TESTUTIL_ORACLE_H
