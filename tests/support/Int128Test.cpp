//===- tests/support/Int128Test.cpp - Int128 unit tests -------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Int128.h"
#include "support/WideInt.h"

#include "gtest/gtest.h"

#include <climits>
#include <random>

using namespace edda;

namespace {

/// Deterministic stream of interesting 128-bit values: random words
/// mixed with boundary shapes (all-ones, sign-bit edges, small values).
class ValueStream {
public:
  explicit ValueStream(uint64_t Seed) : Rng(Seed) {}

  Int128 next() {
    switch (Rng() % 8) {
    case 0:
      return Int128(static_cast<int64_t>(Rng()));
    case 1:
      return Int128(static_cast<int64_t>(Rng() % 32) - 16);
    case 2:
      return Int128::min();
    case 3:
      return Int128::max();
    case 4:
      return Int128::fromWords(Rng(), ~0ull);
    case 5:
      return Int128::fromWords(0, Rng());
    default:
      return Int128::fromWords(Rng(), Rng());
    }
  }

private:
  std::mt19937_64 Rng;
};

} // namespace

TEST(Int128, ConstructionAndNarrowing) {
  EXPECT_TRUE(Int128(0).isZero());
  EXPECT_TRUE(Int128(-1).isNegative());
  EXPECT_FALSE(Int128(1).isNegative());
  EXPECT_TRUE(Int128(INT64_MIN).fitsInt64());
  EXPECT_TRUE(Int128(INT64_MAX).fitsInt64());
  EXPECT_EQ(Int128(INT64_MIN).toInt64(), INT64_MIN);
  EXPECT_EQ(Int128(INT64_MAX).toInt64(), INT64_MAX);
  EXPECT_FALSE(Int128::min().fitsInt64());
  EXPECT_FALSE(Int128::max().fitsInt64());
  EXPECT_FALSE((Int128(INT64_MAX) + Int128(1)).fitsInt64());
  EXPECT_FALSE((Int128(INT64_MIN) - Int128(1)).fitsInt64());
  EXPECT_EQ(Int128(INT64_MIN).tryInt64(), std::optional<int64_t>(INT64_MIN));
  EXPECT_FALSE(Int128::max().tryInt64().has_value());
}

TEST(Int128, MinNegationWrapsLikeHardware) {
  // -min() is unrepresentable and wraps back to min(), exactly like
  // int64; checkedNeg is the loud variant.
  EXPECT_EQ(-Int128::min(), Int128::min());
  EXPECT_FALSE(checkedNeg(Int128::min()).has_value());
  EXPECT_EQ(checkedNeg(Int128::max()),
            std::optional<Int128>(Int128::min() + Int128(1)));
}

TEST(Int128, CheckedEdges) {
  EXPECT_FALSE(checkedAdd(Int128::max(), Int128(1)).has_value());
  EXPECT_FALSE(checkedSub(Int128::min(), Int128(1)).has_value());
  EXPECT_FALSE(checkedMul(Int128::min(), Int128(-1)).has_value());
  EXPECT_TRUE(checkedMul(Int128::min(), Int128(1)).has_value());
  EXPECT_EQ(checkedAdd(Int128::max(), Int128(-1)),
            std::optional<Int128>(Int128::max() - Int128(1)));
  // The full 64x64 products that poison CheckedInt are exact here.
  std::optional<Int128> Big =
      checkedMul(Int128(INT64_MAX), Int128(INT64_MAX));
  ASSERT_TRUE(Big.has_value());
  EXPECT_EQ(*Big / Int128(INT64_MAX), Int128(INT64_MAX));
}

TEST(Int128, FloorCeilDivSignCombinations) {
  const int64_t Values[] = {7, -7, 6, -6, 1, -1, 0, 25, -25};
  const int64_t Divs[] = {2, -2, 3, -3, 1, -1, 7, -7};
  for (int64_t A : Values) {
    for (int64_t B : Divs) {
      SCOPED_TRACE(std::to_string(A) + "/" + std::to_string(B));
      EXPECT_EQ(floorDiv(Int128(A), Int128(B)), Int128(floorDiv(A, B)));
      EXPECT_EQ(ceilDiv(Int128(A), Int128(B)), Int128(ceilDiv(A, B)));
      // Truncating division matches int64 semantics too.
      EXPECT_EQ(Int128(A) / Int128(B), Int128(A / B));
      EXPECT_EQ(Int128(A) % Int128(B), Int128(A % B));
    }
  }
}

TEST(Int128, CheckedFloorCeilDivMinEdge) {
  EXPECT_FALSE(checkedFloorDiv(Int128::min(), Int128(-1)).has_value());
  EXPECT_FALSE(checkedCeilDiv(Int128::min(), Int128(-1)).has_value());
  EXPECT_EQ(checkedFloorDiv(Int128::min(), Int128(1)),
            std::optional<Int128>(Int128::min()));
  EXPECT_EQ(checkedFloorDiv(Int128::min(), Int128(2)),
            std::optional<Int128>(Int128::fromWords(3ull << 62, 0)));
}

TEST(Int128, GcdEdges) {
  EXPECT_EQ(gcdOf(Int128(0), Int128(0)), Int128(0));
  EXPECT_EQ(gcdOf(Int128(0), Int128(-42)), Int128(42));
  EXPECT_EQ(gcdOf(Int128(12), Int128(18)), Int128(6));
  // Huge operands: gcd(3 * 2^80, 7 * 2^80) = 2^80.
  Int128 P80 = Int128::fromWords(1ull << 16, 0);
  EXPECT_EQ(gcdOf(P80 * Int128(3), P80 * Int128(7)), P80);
}

TEST(Int128, DecimalRendering) {
  EXPECT_EQ(Int128(0).str(), "0");
  EXPECT_EQ(Int128(-1).str(), "-1");
  EXPECT_EQ(Int128(INT64_MIN).str(), "-9223372036854775808");
  EXPECT_EQ(Int128::max().str(),
            "170141183460469231731687303715884105727");
  EXPECT_EQ(Int128::min().str(),
            "-170141183460469231731687303715884105728");
}

TEST(Int128, WidenNarrowRoundTrips) {
  std::vector<int64_t> V = {0, 1, -1, INT64_MIN, INT64_MAX, 123456789};
  std::optional<std::vector<int64_t>> Back = narrowVec(widenVec(V));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, V);

  std::vector<Int128> Wide = widenVec(V);
  Wide.push_back(Int128(INT64_MAX) + Int128(1));
  EXPECT_FALSE(narrowVec(Wide).has_value());
}

TEST(CheckedInt128, PoisonOnlyPast128Bits) {
  // The exact sum that poisons CheckedInt is routine at 128 bits ...
  Checked<Int128> Sum{Int128(INT64_MAX)};
  Sum += Checked<Int128>(Int128(INT64_MAX)) * Int128(INT64_MAX);
  ASSERT_TRUE(Sum.valid());
  // ... and only a genuine 128-bit overflow poisons, persistently.
  Checked<Int128> Top{Int128::max()};
  Top *= Int128(2);
  EXPECT_FALSE(Top.valid());
  Top -= Int128(100);
  EXPECT_FALSE(Top.valid());
  EXPECT_FALSE(Top.getOpt().has_value());
}

#if defined(__SIZEOF_INT128__)

TEST(Int128Property, PortableMatchesNativeArithmetic) {
  ValueStream VS(0xEDDA1281);
  for (int I = 0; I < 20000; ++I) {
    Int128 A = VS.next(), B = VS.next();
    __int128 NA = A.toNative(), NB = B.toNative();
    EXPECT_EQ((A + B), Int128::fromNative(NA + NB));
    EXPECT_EQ((A - B), Int128::fromNative(NA - NB));
    EXPECT_EQ((A * B),
              Int128::fromNative(static_cast<__int128>(
                  static_cast<unsigned __int128>(NA) *
                  static_cast<unsigned __int128>(NB))));
    EXPECT_EQ(A == B, NA == NB);
    EXPECT_EQ(A < B, NA < NB);
    if (!B.isZero() && !(A == Int128::min() && B == Int128(-1))) {
      EXPECT_EQ(A / B, Int128::fromNative(NA / NB));
      EXPECT_EQ(A % B, Int128::fromNative(NA % NB));
    }
  }
}

TEST(Int128Property, CheckedOpsAgreeWithWideNative) {
  // checkedAdd/Mul must report overflow exactly when the true result
  // leaves [min, max]; verified against native arithmetic one bit
  // wider in the failing direction via unsigned wraparound analysis.
  ValueStream VS(0xEDDA1282);
  for (int I = 0; I < 20000; ++I) {
    Int128 A = VS.next(), B = VS.next();
    __int128 NA = A.toNative(), NB = B.toNative();
    unsigned __int128 Wrapped = static_cast<unsigned __int128>(NA) +
                                static_cast<unsigned __int128>(NB);
    __int128 SignedWrapped = static_cast<__int128>(Wrapped);
    bool AddOverflows = (NB > 0 && SignedWrapped < NA) ||
                        (NB < 0 && SignedWrapped > NA);
    std::optional<Int128> Sum = checkedAdd(A, B);
    EXPECT_EQ(Sum.has_value(), !AddOverflows);
    if (Sum)
      EXPECT_EQ(*Sum, Int128::fromNative(SignedWrapped));

    std::optional<Int128> Prod = checkedMul(A, B);
    if (Prod) {
      // A reported product must divide back exactly.
      if (!B.isZero()) {
        EXPECT_EQ(Prod->toNative() / NB, NA);
        EXPECT_EQ(Prod->toNative() % NB, static_cast<__int128>(0));
      }
    } else {
      EXPECT_FALSE(A.isZero());
      EXPECT_FALSE(B.isZero());
    }
  }
}

TEST(Int128Property, FloorCeilDivMatchDefinition) {
  ValueStream VS(0xEDDA1283);
  for (int I = 0; I < 20000; ++I) {
    Int128 A = VS.next(), B = VS.next();
    if (B.isZero() || (A == Int128::min() && B == Int128(-1)))
      continue;
    Int128 F = floorDiv(A, B), C = ceilDiv(A, B);
    // floor <= true quotient <= ceil, within one unit, and F*B stays on
    // the correct side of A.
    EXPECT_TRUE(C == F || C == F + Int128(1));
    __int128 NA = A.toNative(), NB = B.toNative();
    __int128 Q = NA / NB, R = NA % NB;
    __int128 NF = (R != 0 && ((R < 0) != (NB < 0))) ? Q - 1 : Q;
    EXPECT_EQ(F, Int128::fromNative(NF));
    EXPECT_EQ(C, Int128::fromNative(
                     (R != 0 && ((R < 0) == (NB < 0))) ? Q + 1 : Q));
  }
}

#endif // __SIZEOF_INT128__
