//===- tests/support/RationalTest.cpp - Rational unit tests ---------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "gtest/gtest.h"

#include <climits>

using namespace edda;

TEST(Rational, NormalizationToLowestTerms) {
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
}

TEST(Rational, DenominatorMadePositive) {
  Rational R(3, -6);
  EXPECT_EQ(R.num(), -1);
  EXPECT_EQ(R.den(), 2);
}

TEST(Rational, IntegerDetection) {
  EXPECT_TRUE(Rational(4, 2).isInteger());
  EXPECT_FALSE(Rational(5, 2).isInteger());
  EXPECT_TRUE(Rational(0, 7).isInteger());
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 3).floor(), 2);
  EXPECT_EQ(Rational(6, 3).ceil(), 2);
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_GE(Rational(7), Rational(13, 2));
}

TEST(Rational, ComparisonDoesNotOverflow) {
  // Cross-multiplication uses 128-bit products internally.
  Rational Big(INT64_MAX, 3);
  Rational Bigger(INT64_MAX, 2);
  EXPECT_LT(Big, Bigger);
}

TEST(Rational, DivisionByZeroIsInvalid) {
  Rational R = Rational(1) / Rational(0);
  EXPECT_FALSE(R.valid());
}

TEST(Rational, OverflowPoisons) {
  Rational Big(INT64_MAX, 1);
  Rational R = Big + Big;
  EXPECT_FALSE(R.valid());
  // Poison propagates through further operations.
  EXPECT_FALSE((R * Rational(0)).valid());
}

TEST(Rational, CrossCancellationAvoidsOverflow) {
  // (MAX/3) * (3/MAX) = 1 is representable via cross-cancellation even
  // though the naive numerator product overflows.
  Rational A(INT64_MAX / 3 * 3, 3);
  Rational B(3, INT64_MAX / 3 * 3);
  Rational Product = A * B;
  ASSERT_TRUE(Product.valid());
  EXPECT_EQ(Product, Rational(1));
}

TEST(Rational, Int64MinNormalizationDoesNotWrap) {
  // Sign canonicalization must run after gcd reduction: for
  // (INT64_MIN, -2) the reduced value 2^62 is representable even
  // though negating the raw numerator would overflow.
  Rational A(INT64_MIN, -2);
  ASSERT_TRUE(A.valid());
  EXPECT_EQ(A.num(), INT64_MIN / -2);
  EXPECT_EQ(A.den(), 1);

  // (INT64_MIN, -1) = +2^63 genuinely is unrepresentable: the value
  // must poison, never wrap back to INT64_MIN.
  EXPECT_FALSE(Rational(INT64_MIN, -1).valid());

  Rational One(INT64_MIN, INT64_MIN);
  ASSERT_TRUE(One.valid());
  EXPECT_EQ(One, Rational(1));

  // 1/2^63: the denominator cannot be made positive in range.
  EXPECT_FALSE(Rational(-1, INT64_MIN).valid());

  Rational Half(INT64_MIN, 2);
  ASSERT_TRUE(Half.valid());
  EXPECT_EQ(Half.num(), INT64_MIN / 2);
  EXPECT_EQ(Half.den(), 1);
}

TEST(Rational, Int64MinArithmeticEdges) {
  Rational Min(INT64_MIN, 1);
  ASSERT_TRUE(Min.valid());
  // MIN/MIN reduces to 1 when the quotient is formed wide instead of
  // inverting the divisor first.
  EXPECT_EQ(Min / Min, Rational(1));
  // -MIN stays unrepresentable and poisons.
  EXPECT_FALSE((-Min).valid());
  // MIN * (-1/2) = 2^62 is exact.
  Rational R = Min * Rational(-1, 2);
  ASSERT_TRUE(R.valid());
  EXPECT_EQ(R, Rational(INT64_MIN / -2));
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(7, 2).str(), "7/2");
  EXPECT_EQ(Rational::invalid().str(), "<invalid>");
}
