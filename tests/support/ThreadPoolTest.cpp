//===- tests/support/ThreadPoolTest.cpp - Worker pool tests ---------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <numeric>
#include <vector>

using namespace edda;

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedJobExactlyOnce) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Round = 0; Round < 3; ++Round) {
    for (int I = 0; I < 10; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 10);
  }
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool Pool(4);
  for (size_t N : {size_t(0), size_t(1), size_t(7), size_t(1000)}) {
    std::vector<std::atomic<int>> Seen(N);
    Pool.parallelFor(N, [&Seen](size_t I) { Seen[I].fetch_add(1); });
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(Seen[I].load(), 1) << "index " << I << " of " << N;
  }
}

TEST(ThreadPool, JobsMaySubmitFurtherJobs) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I < 8; ++I)
    Pool.submit([&Pool, &Count] {
      Count.fetch_add(1);
      Pool.submit([&Count] { Count.fetch_add(1); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 16);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 50; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    Pool.wait();
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}
