//===- tests/support/IntMathTest.cpp - IntMath unit tests -----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/IntMath.h"

#include "gtest/gtest.h"

#include <climits>

using namespace edda;

TEST(Gcd64, BasicValues) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(18, 12), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(gcd64(5, 5), 5);
  EXPECT_EQ(gcd64(1, 999), 1);
}

TEST(Gcd64, ZeroHandling) {
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(0, 42), 42);
  EXPECT_EQ(gcd64(42, 0), 42);
}

TEST(Gcd64, NegativeOperands) {
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(-12, -18), 6);
}

TEST(Gcd64, Int64MinDoesNotOverflow) {
  EXPECT_EQ(gcd64(INT64_MIN, 0), INT64_MIN); // magnitude 2^63 wraps back
  EXPECT_EQ(gcd64(INT64_MIN, 2), 2);
  EXPECT_EQ(gcd64(INT64_MIN, 3), 1);
}

TEST(Lcm64, Basic) {
  ASSERT_TRUE(lcm64(4, 6).has_value());
  EXPECT_EQ(*lcm64(4, 6), 12);
  EXPECT_EQ(*lcm64(-4, 6), 12);
  EXPECT_FALSE(lcm64(INT64_MAX, INT64_MAX - 1).has_value());
}

TEST(Lcm64, ZeroOperandsGiveZeroNotOverflow) {
  // lcm(0, n) is 0 (every integer divides 0); nullopt is reserved for
  // genuine overflow. The old behavior conflated the two.
  ASSERT_TRUE(lcm64(0, 5).has_value());
  EXPECT_EQ(*lcm64(0, 5), 0);
  ASSERT_TRUE(lcm64(5, 0).has_value());
  EXPECT_EQ(*lcm64(5, 0), 0);
  ASSERT_TRUE(lcm64(0, 0).has_value());
  EXPECT_EQ(*lcm64(0, 0), 0);
  ASSERT_TRUE(lcm64(0, INT64_MIN).has_value());
  EXPECT_EQ(*lcm64(0, INT64_MIN), 0);
}

TEST(ExtGcd64, BezoutIdentityHolds) {
  const int64_t Values[] = {0, 1, -1, 2, 3, -3, 10, 12, -18, 35, 99, -100};
  for (int64_t A : Values) {
    for (int64_t B : Values) {
      ExtGcdResult R = extGcd64(A, B);
      EXPECT_EQ(R.Gcd, gcd64(A, B)) << A << "," << B;
      EXPECT_EQ(R.X * A + R.Y * B, R.Gcd) << A << "," << B;
    }
  }
}

TEST(ExtGcd64, ZeroPairs) {
  ExtGcdResult R = extGcd64(0, 0);
  EXPECT_EQ(R.Gcd, 0);
  EXPECT_EQ(R.X * 0 + R.Y * 0, 0);
}

struct DivCase {
  int64_t A;
  int64_t B;
  int64_t Floor;
  int64_t Ceil;
};

class FloorCeilDiv : public ::testing::TestWithParam<DivCase> {};

TEST_P(FloorCeilDiv, MatchesMathematicalDefinition) {
  const DivCase &C = GetParam();
  EXPECT_EQ(floorDiv(C.A, C.B), C.Floor);
  EXPECT_EQ(ceilDiv(C.A, C.B), C.Ceil);
}

INSTANTIATE_TEST_SUITE_P(
    Representative, FloorCeilDiv,
    ::testing::Values(DivCase{7, 2, 3, 4}, DivCase{-7, 2, -4, -3},
                      DivCase{7, -2, -4, -3}, DivCase{-7, -2, 3, 4},
                      DivCase{6, 3, 2, 2}, DivCase{-6, 3, -2, -2},
                      DivCase{0, 5, 0, 0}, DivCase{1, 1, 1, 1},
                      DivCase{-1, 1, -1, -1}, DivCase{5, 10, 0, 1},
                      DivCase{-5, 10, -1, 0}, DivCase{5, -10, -1, 0}));

TEST(FloorCeilDivProperty, ExhaustiveSmallRange) {
  for (int64_t A = -25; A <= 25; ++A) {
    for (int64_t B = -7; B <= 7; ++B) {
      if (B == 0)
        continue;
      int64_t F = floorDiv(A, B);
      int64_t C = ceilDiv(A, B);
      // F is the largest q with q*B <= A ... for positive B; in general
      // floor(A/B) in rational arithmetic.
      EXPECT_LE(F * B * (B > 0 ? 1 : -1), A * (B > 0 ? 1 : -1))
          << A << "/" << B;
      EXPECT_GE(C * B * (B > 0 ? 1 : -1), A * (B > 0 ? 1 : -1))
          << A << "/" << B;
      EXPECT_TRUE(C == F || C == F + 1);
      EXPECT_EQ(C == F, A % B == 0);
    }
  }
}

TEST(CheckedDiv, Int64MinByMinusOneIsOverflowNotUB) {
  // floorDiv/ceilDiv document (INT64_MIN, -1) as a precondition
  // violation; the checked variants are the total versions for call
  // sites reachable with arbitrary coefficients.
  EXPECT_FALSE(checkedFloorDiv(INT64_MIN, -1).has_value());
  EXPECT_FALSE(checkedCeilDiv(INT64_MIN, -1).has_value());
  EXPECT_EQ(checkedFloorDiv(INT64_MIN, 1),
            std::optional<int64_t>(INT64_MIN));
  EXPECT_EQ(checkedCeilDiv(INT64_MIN, 1),
            std::optional<int64_t>(INT64_MIN));
  EXPECT_EQ(checkedFloorDiv(INT64_MIN, 2),
            std::optional<int64_t>(INT64_MIN / 2));
  EXPECT_EQ(checkedCeilDiv(INT64_MIN, 2),
            std::optional<int64_t>(INT64_MIN / 2));
  EXPECT_EQ(checkedFloorDiv(INT64_MAX, -1),
            std::optional<int64_t>(-INT64_MAX));
  // Away from the single overflow pair they agree with the plain
  // helpers.
  EXPECT_EQ(checkedFloorDiv(7, -2), std::optional<int64_t>(floorDiv(7, -2)));
  EXPECT_EQ(checkedCeilDiv(-7, 2), std::optional<int64_t>(ceilDiv(-7, 2)));
}

TEST(CheckedOps, AddOverflow) {
  EXPECT_EQ(checkedAdd(2, 3), std::optional<int64_t>(5));
  EXPECT_FALSE(checkedAdd(INT64_MAX, 1).has_value());
  EXPECT_FALSE(checkedAdd(INT64_MIN, -1).has_value());
  EXPECT_TRUE(checkedAdd(INT64_MAX, -1).has_value());
}

TEST(CheckedOps, SubOverflow) {
  EXPECT_EQ(checkedSub(2, 3), std::optional<int64_t>(-1));
  EXPECT_FALSE(checkedSub(INT64_MIN, 1).has_value());
  EXPECT_FALSE(checkedSub(0, INT64_MIN).has_value());
}

TEST(CheckedOps, MulOverflow) {
  EXPECT_EQ(checkedMul(-4, 5), std::optional<int64_t>(-20));
  EXPECT_FALSE(checkedMul(INT64_MAX, 2).has_value());
  EXPECT_FALSE(checkedMul(INT64_MIN, -1).has_value());
  EXPECT_TRUE(checkedMul(INT64_MIN, 1).has_value());
}

TEST(CheckedOps, Neg) {
  EXPECT_EQ(checkedNeg(5), std::optional<int64_t>(-5));
  EXPECT_EQ(checkedNeg(INT64_MAX), std::optional<int64_t>(INT64_MIN + 1));
  EXPECT_FALSE(checkedNeg(INT64_MIN).has_value());
}

TEST(CheckedInt, ChainStaysValid) {
  CheckedInt V(10);
  V += CheckedInt(5) * 4;
  V -= 3;
  ASSERT_TRUE(V.valid());
  EXPECT_EQ(V.get(), 27);
}

TEST(CheckedInt, PoisonPersists) {
  CheckedInt V(INT64_MAX);
  V += 1;
  EXPECT_FALSE(V.valid());
  V -= 100; // still poisoned
  EXPECT_FALSE(V.valid());
  EXPECT_FALSE(V.getOpt().has_value());
}

TEST(CheckedInt, MulOverflowPoisons) {
  CheckedInt V(INT64_MAX / 2 + 1);
  V *= 2;
  EXPECT_FALSE(V.valid());
}

TEST(CheckedInt, PoisonedOperandPoisonsResult) {
  CheckedInt Bad(INT64_MAX);
  Bad += 1;
  CheckedInt Good(1);
  CheckedInt Sum = Good + Bad;
  EXPECT_FALSE(Sum.valid());
}
