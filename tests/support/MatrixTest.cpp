//===- tests/support/MatrixTest.cpp - IntMatrix unit tests ----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Matrix.h"

#include "gtest/gtest.h"

#include <climits>

using namespace edda;

TEST(IntMatrix, IdentityShape) {
  IntMatrix I = IntMatrix::identity(3);
  for (unsigned R = 0; R < 3; ++R)
    for (unsigned C = 0; C < 3; ++C)
      EXPECT_EQ(I.at(R, C), R == C ? 1 : 0);
}

TEST(IntMatrix, SwapRows) {
  IntMatrix M(2, 2);
  M.at(0, 0) = 1;
  M.at(1, 1) = 2;
  M.swapRows(0, 1);
  EXPECT_EQ(M.at(0, 1), 2);
  EXPECT_EQ(M.at(1, 0), 1);
}

TEST(IntMatrix, AddRowMultiple) {
  IntMatrix M(2, 2);
  M.at(0, 0) = 4;
  M.at(0, 1) = 6;
  M.at(1, 0) = 1;
  M.at(1, 1) = 1;
  // Row0 -= 2 * Row1.
  ASSERT_TRUE(M.addRowMultiple(0, 1, 2));
  EXPECT_EQ(M.at(0, 0), 2);
  EXPECT_EQ(M.at(0, 1), 4);
}

TEST(IntMatrix, AddRowMultipleOverflow) {
  IntMatrix M(2, 1);
  M.at(0, 0) = INT64_MAX;
  M.at(1, 0) = -1;
  EXPECT_FALSE(M.addRowMultiple(0, 1, 1)); // MAX - (-1) overflows
}

TEST(IntMatrix, NegateRow) {
  IntMatrix M(1, 2);
  M.at(0, 0) = 3;
  M.at(0, 1) = -4;
  ASSERT_TRUE(M.negateRow(0));
  EXPECT_EQ(M.at(0, 0), -3);
  EXPECT_EQ(M.at(0, 1), 4);
  M.at(0, 0) = INT64_MIN;
  EXPECT_FALSE(M.negateRow(0));
}

TEST(IntMatrix, Multiply) {
  IntMatrix A(2, 3), B(3, 2);
  int64_t V = 1;
  for (unsigned R = 0; R < 2; ++R)
    for (unsigned C = 0; C < 3; ++C)
      A.at(R, C) = V++;
  for (unsigned R = 0; R < 3; ++R)
    for (unsigned C = 0; C < 2; ++C)
      B.at(R, C) = V++;
  bool Ok = false;
  IntMatrix P = A.multiply(B, Ok);
  ASSERT_TRUE(Ok);
  // A = [1 2 3; 4 5 6], B = [7 8; 9 10; 11 12].
  EXPECT_EQ(P.at(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_EQ(P.at(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(IntMatrix, IsEchelon) {
  IntMatrix Good(3, 4);
  Good.at(0, 0) = 2;
  Good.at(0, 2) = 5;
  Good.at(1, 1) = 1;
  Good.at(2, 3) = 7;
  EXPECT_TRUE(Good.isEchelon());

  IntMatrix ZeroRowInMiddle(3, 3);
  ZeroRowInMiddle.at(0, 0) = 1;
  ZeroRowInMiddle.at(2, 1) = 1; // nonzero row after a zero row
  EXPECT_FALSE(ZeroRowInMiddle.isEchelon());

  IntMatrix SameLead(2, 2);
  SameLead.at(0, 0) = 1;
  SameLead.at(1, 0) = 1;
  EXPECT_FALSE(SameLead.isEchelon());

  IntMatrix AllZero(2, 2);
  EXPECT_TRUE(AllZero.isEchelon());
}

TEST(IntMatrix, Determinant2x2) {
  IntMatrix M(2, 2);
  M.at(0, 0) = 3;
  M.at(0, 1) = 7;
  M.at(1, 0) = 2;
  M.at(1, 1) = 5;
  bool Ok = false;
  EXPECT_EQ(M.determinant(Ok), 1);
  EXPECT_TRUE(Ok);
}

TEST(IntMatrix, DeterminantSingular) {
  IntMatrix M(3, 3);
  M.at(0, 0) = 1;
  M.at(1, 0) = 2; // rows 0,1 proportional with col 1..2 zero
  bool Ok = false;
  EXPECT_EQ(M.determinant(Ok), 0);
  EXPECT_TRUE(Ok);
}

TEST(IntMatrix, DeterminantNeedsPivotSwap) {
  IntMatrix M(2, 2);
  M.at(0, 1) = 1;
  M.at(1, 0) = 1;
  bool Ok = false;
  EXPECT_EQ(M.determinant(Ok), -1);
  EXPECT_TRUE(Ok);
}

TEST(IntMatrix, DeterminantLarger) {
  // det = 1 for a known unimodular matrix.
  IntMatrix M(3, 3);
  int64_t Vals[3][3] = {{2, 3, 1}, {1, 2, 1}, {1, 1, 1}};
  for (unsigned R = 0; R < 3; ++R)
    for (unsigned C = 0; C < 3; ++C)
      M.at(R, C) = Vals[R][C];
  bool Ok = false;
  EXPECT_EQ(M.determinant(Ok), 1);
  EXPECT_TRUE(Ok);
}

TEST(IntMatrix, ZeroDimensionDeterminant) {
  IntMatrix M(0, 0);
  bool Ok = false;
  EXPECT_EQ(M.determinant(Ok), 1);
  EXPECT_TRUE(Ok);
}

TEST(IntMatrix, RowExtraction) {
  IntMatrix M(2, 3);
  M.at(1, 0) = 4;
  M.at(1, 2) = 9;
  std::vector<int64_t> R = M.row(1);
  EXPECT_EQ(R, (std::vector<int64_t>{4, 0, 9}));
}

TEST(IntMatrix, EqualityAndStr) {
  IntMatrix A(1, 2), B(1, 2);
  A.at(0, 0) = 1;
  EXPECT_NE(A, B);
  B.at(0, 0) = 1;
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.str(), "[1 0]\n");
}
