//===- tests/support/HashingTest.cpp - Hashing unit tests -----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

#include "gtest/gtest.h"

#include <set>

using namespace edda;

TEST(PaperHash, MatchesFormula) {
  // h(x) = size(x) + sum 2^i * x_i.
  EXPECT_EQ(paperHash({}), 0u);
  EXPECT_EQ(paperHash({5}), 1u + 5u);
  EXPECT_EQ(paperHash({5, 3}), 2u + 5u + 2u * 3u);
  EXPECT_EQ(paperHash({1, 1, 1}), 3u + 1u + 2u + 4u);
}

TEST(PaperHash, SymmetryBroken) {
  // The authors chose the 2^i weights so that symmetric references do
  // not collide.
  EXPECT_NE(paperHash({1, 2}), paperHash({2, 1}));
  EXPECT_NE(paperHash({0, 1, 0}), paperHash({0, 0, 1}));
}

TEST(PaperHash, NegativeValuesWrap) {
  // Wraps mod 2^64 but stays deterministic.
  EXPECT_EQ(paperHash({-1}), paperHash({-1}));
  EXPECT_NE(paperHash({-1}), paperHash({1}));
}

TEST(HashVector, DistinguishesSizeAndContent) {
  EXPECT_NE(hashVector({}), hashVector({0}));
  EXPECT_NE(hashVector({0}), hashVector({0, 0}));
  EXPECT_NE(hashVector({1, 2}), hashVector({2, 1}));
}

TEST(HashVector, Deterministic) {
  EXPECT_EQ(hashVector({7, -3, 42}), hashVector({7, -3, 42}));
}

TEST(HashVector, NoCollisionsOnSmallDenseSet) {
  // The mixing hash should be collision-free over a few thousand small
  // distinct keys (the paper hash is not, by design of this test).
  std::set<uint64_t> Seen;
  unsigned Collisions = 0;
  for (int64_t A = 0; A < 50; ++A)
    for (int64_t B = 0; B < 50; ++B)
      if (!Seen.insert(hashVector({A, B})).second)
        ++Collisions;
  EXPECT_EQ(Collisions, 0u);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hashCombine(hashCombine(0, 1), 2),
            hashCombine(hashCombine(0, 2), 1));
}
