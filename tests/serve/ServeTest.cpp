//===- tests/serve/ServeTest.cpp - edda-serve core tests ------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the serving layer (docs/SERVING.md): the NDJSON
/// protocol round-trips, ServeCore answers match a direct analyzer
/// run byte-for-byte (modulo cache markers), the shared store turns
/// repeat requests into hits, warm-start checkpoints reload, and
/// per-request budget overrides bypass the store.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "analysis/Analyzer.h"
#include "parser/Parser.h"
#include "serve/Protocol.h"
#include "serve/Render.h"
#include "gtest/gtest.h"

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

using namespace edda;

namespace {

/// A nest with a carried dependence, a wavefront pair, and a
/// duplicated statement so one analyze request already exercises the
/// intra-run memo path.
const char *demoSource() {
  return "program served\n"
         "  array a[100]\n"
         "  array w[40][40]\n"
         "  for i = 1 to 10 do\n"
         "    a[i + 1] = a[i] + 3\n"
         "  end\n"
         "  for i = 2 to 20 do\n"
         "    for j = 1 to 19 do\n"
         "      w[i][j] = w[i - 1][j + 1] + 1\n"
         "    end\n"
         "  end\n"
         "  for i = 1 to 10 do\n"
         "    a[i + 1] = a[i] + 3\n"
         "  end\n"
         "end\n";
}

/// The coupled-subscript problem the Fourier-Motzkin stage decides
/// (tests/inputs/coupled.dep).
const char *coupledProblem() {
  return "problem\n"
         "  loops 2 2 common 2 symbolic 0\n"
         "  eq 1 1 -1 -1 = -5\n"
         "  lo 0 : 1\n"
         "  hi 0 : 10\n"
         "  lo 1 : 1\n"
         "  hi 1 : 10\n"
         "  lo 2 : 1\n"
         "  hi 2 : 10\n"
         "  lo 3 : 1\n"
         "  hi 3 : 10\n"
         "end\n";
}

/// The serve-smoke normalization: cache-hit markers depend on store
/// temperature, the answers must not.
std::string stripCached(std::string Text) {
  const std::string Marker = " (cached)";
  for (size_t Pos; (Pos = Text.find(Marker)) != std::string::npos;)
    Text.erase(Pos, Marker.size());
  return Text;
}

ServeRequest analyzeRequest(int64_t Id, bool Directions = true) {
  ServeRequest R;
  R.Id = Id;
  R.Operation = ServeRequest::Op::Analyze;
  R.Payload = demoSource();
  R.Directions = Directions;
  return R;
}

} // namespace

TEST(ServeProtocol, RequestRoundTrip) {
  ServeRequest R;
  R.Id = 42;
  R.Operation = ServeRequest::Op::Analyze;
  R.Payload = "program p\nend\n";
  R.Directions = true;
  R.Explain = true;
  R.Widen = false;
  R.Prepass = false;
  R.CacheMarkers = false;
  R.PipelineSpec = "gcd,fm";
  R.FmBudget = 123;

  std::string Error;
  std::optional<ServeRequest> Back =
      parseServeRequest(R.toJson().str(), &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Id, 42);
  EXPECT_EQ(Back->Operation, ServeRequest::Op::Analyze);
  EXPECT_EQ(Back->Payload, R.Payload);
  EXPECT_TRUE(Back->Directions);
  EXPECT_TRUE(Back->Explain);
  EXPECT_FALSE(Back->Widen);
  EXPECT_FALSE(Back->Prepass);
  EXPECT_FALSE(Back->CacheMarkers);
  EXPECT_EQ(Back->PipelineSpec, "gcd,fm");
  EXPECT_EQ(Back->FmBudget, 123u);
}

TEST(ServeProtocol, EveryOpRoundTrips) {
  using Op = ServeRequest::Op;
  for (Op Operation : {Op::Analyze, Op::Problem, Op::Stats, Op::Ping,
                       Op::Checkpoint, Op::Shutdown}) {
    ServeRequest R;
    R.Id = 7;
    R.Operation = Operation;
    std::string Error;
    std::optional<ServeRequest> Back =
        parseServeRequest(R.toJson().str(), &Error);
    ASSERT_TRUE(Back.has_value())
        << serveOpName(Operation) << ": " << Error;
    EXPECT_EQ(Back->Operation, Operation);
  }
}

TEST(ServeProtocol, MalformedLinesRejectedWithIdEcho) {
  std::string Error;
  int64_t Id = -1;
  EXPECT_FALSE(parseServeRequest("not json", &Error, &Id).has_value());
  EXPECT_FALSE(Error.empty());

  // A decodable id in an otherwise-bad request still comes back, so
  // the server can address its error response.
  Error.clear();
  EXPECT_FALSE(
      parseServeRequest("{\"id\":9,\"op\":\"bogus\"}", &Error, &Id)
          .has_value());
  EXPECT_EQ(Id, 9);
  EXPECT_FALSE(Error.empty());
}

TEST(Serve, PingAndShutdownOps) {
  ServeCore Core(ServeOptions{});
  ServeRequest Ping;
  Ping.Id = 1;
  Ping.Operation = ServeRequest::Op::Ping;
  ServeResponse R = Core.handle(Ping);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Id, 1);

  EXPECT_FALSE(Core.shutdownRequested());
  ServeRequest Down;
  Down.Id = 2;
  Down.Operation = ServeRequest::Op::Shutdown;
  EXPECT_TRUE(Core.handle(Down).Ok);
  EXPECT_TRUE(Core.shutdownRequested());
}

TEST(Serve, AnalyzeMatchesDirectAnalyzerRender) {
  ServeCore Core(ServeOptions{});
  ServeResponse Served = Core.handle(analyzeRequest(1));
  ASSERT_TRUE(Served.Ok) << Served.Error;

  // The reference: what edda-cli computes for the same input — a
  // fresh single-threaded analyzer through the shared renderer.
  ParseResult Parsed = parseProgram(demoSource());
  ASSERT_TRUE(Parsed.succeeded());
  AnalyzerOptions AO;
  AO.ComputeDirections = true;
  DependenceAnalyzer Direct(AO);
  AnalysisResult Result = Direct.analyze(*Parsed.Prog);
  ReportOptions Report;
  Report.Directions = true;
  std::string Want = renderAnalysisReport(*Parsed.Prog, Result, Report);

  EXPECT_EQ(stripCached(Served.Text), stripCached(Want));
}

TEST(Serve, RepeatRequestServedFromSharedStore) {
  ServeCore Core(ServeOptions{});
  ServeResponse Cold = Core.handle(analyzeRequest(1));
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  ServeStats AfterCold = Core.stats();
  EXPECT_GT(AfterCold.PairsTested, 0u);

  ServeResponse Warm = Core.handle(analyzeRequest(2));
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  ServeStats AfterWarm = Core.stats();
  // Every memoizable pair of the repeat request hits the store, and
  // the answers are bit-identical modulo the hit markers.
  EXPECT_EQ(AfterWarm.PairsTested, AfterCold.PairsTested);
  EXPECT_GT(AfterWarm.PairsCached, AfterCold.PairsCached);
  EXPECT_EQ(stripCached(Warm.Text), stripCached(Cold.Text));
  // The repeat round at least doubles the cached share.
  EXPECT_GE(AfterWarm.hitRatePct(), 50.0);
}

TEST(Serve, CacheMarkersSuppressedOnRequest) {
  ServeCore Core(ServeOptions{});
  ASSERT_TRUE(Core.handle(analyzeRequest(1)).Ok);
  ServeRequest R = analyzeRequest(2);
  R.CacheMarkers = false;
  ServeResponse Warm = Core.handle(R);
  ASSERT_TRUE(Warm.Ok);
  EXPECT_EQ(Warm.Text.find(" (cached)"), std::string::npos);
}

TEST(Serve, ProblemOpDecidesAndMemoizes) {
  ServeCore Core(ServeOptions{});
  ServeRequest R;
  R.Id = 1;
  R.Operation = ServeRequest::Op::Problem;
  R.Payload = coupledProblem();
  R.Directions = true;
  ServeResponse Cold = Core.handle(R);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  EXPECT_NE(Cold.Text.find("answer: dependent"), std::string::npos)
      << Cold.Text;
  EXPECT_EQ(Core.stats().ProblemsTested, 1u);

  R.Id = 2;
  ServeResponse Warm = Core.handle(R);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_EQ(Core.stats().ProblemsCached, 1u);
  // The store drops witnesses, so compare answer lines, not bytes.
  EXPECT_NE(Warm.Text.find("answer: dependent"), std::string::npos)
      << Warm.Text;
}

TEST(Serve, HandleLineReportsErrorsInBand) {
  ServeCore Core(ServeOptions{});
  std::string Error;

  std::optional<ServeResponse> R =
      parseServeResponse(Core.handleLine("not json"), &Error);
  ASSERT_TRUE(R.has_value()) << Error;
  EXPECT_FALSE(R->Ok);
  EXPECT_FALSE(R->Error.empty());

  // A parse error in the payload is an ok:false response that still
  // echoes the request id.
  R = parseServeResponse(
      Core.handleLine(
          "{\"id\":5,\"op\":\"analyze\",\"program\":\"for for\"}"),
      &Error);
  ASSERT_TRUE(R.has_value()) << Error;
  EXPECT_EQ(R->Id, 5);
  EXPECT_FALSE(R->Ok);
  EXPECT_NE(R->Error.find("parse error"), std::string::npos);
  EXPECT_EQ(Core.stats().Errors, 2u);
}

TEST(Serve, StatsOpSnapshotsCounters) {
  ServeCore Core(ServeOptions{});
  ASSERT_TRUE(Core.handle(analyzeRequest(1)).Ok);
  ServeRequest R;
  R.Id = 2;
  R.Operation = ServeRequest::Op::Stats;
  ServeResponse S = Core.handle(R);
  ASSERT_TRUE(S.Ok) << S.Error;
  const JsonValue &Stats = S.Body.get("server");
  ASSERT_TRUE(Stats.isObject()) << S.Body.str();
  EXPECT_EQ(Stats.getInt("analyze_requests"), 1);
  EXPECT_TRUE(Stats.get("hit_rate_pct").isNumber());
}

TEST(Serve, CheckpointThenWarmReload) {
  std::string Path = ::testing::TempDir() + "/edda_serve_warm.txt";
  std::remove(Path.c_str());
  std::string ColdText;
  {
    ServeOptions Opts;
    Opts.CachePath = Path;
    std::string Error;
    ServeCore Core(Opts, &Error);
    ASSERT_TRUE(Error.empty()) << Error;
    EXPECT_EQ(Core.stats().WarmLoadedEntries, 0u);
    ServeResponse Cold = Core.handle(analyzeRequest(1));
    ASSERT_TRUE(Cold.Ok) << Cold.Error;
    ColdText = stripCached(Cold.Text);
    ASSERT_TRUE(Core.checkpoint());
    EXPECT_GE(Core.stats().Checkpoints, 1u);
  }

  ServeOptions Opts;
  Opts.CachePath = Path;
  std::string Error;
  ServeCore Warm(Opts, &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_GT(Warm.stats().WarmLoadedEntries, 0u);
  ServeResponse R = Warm.handle(analyzeRequest(1));
  ASSERT_TRUE(R.Ok) << R.Error;
  // The whole repeat round is answered from the reloaded store, and
  // the report matches the cold run byte-for-byte modulo markers.
  EXPECT_EQ(Warm.stats().PairsTested, 0u);
  EXPECT_GT(Warm.stats().PairsCached, 0u);
  EXPECT_EQ(stripCached(R.Text), ColdText);
  std::remove(Path.c_str());
}

TEST(Serve, BudgetedRequestBypassesSharedStore) {
  ServeCore Core(ServeOptions{});
  ServeRequest R = analyzeRequest(1);
  R.FmBudget = 1; // Degrades FM decisions; must not enter the store.
  ASSERT_TRUE(Core.handle(R).Ok);
  EXPECT_EQ(Core.cache().uniqueFull(), 0u);

  // The unbudgeted retry computes and memoizes the real answers.
  ASSERT_TRUE(Core.handle(analyzeRequest(2)).Ok);
  EXPECT_GT(Core.cache().uniqueFull(), 0u);
}

TEST(Serve, SubmitDispatchesConcurrently) {
  ServeOptions Opts;
  Opts.NumThreads = 4;
  ServeCore Core(Opts);

  std::mutex Mutex;
  std::vector<std::string> Responses;
  const unsigned N = 32;
  for (unsigned I = 0; I < N; ++I) {
    ServeRequest R = analyzeRequest(static_cast<int64_t>(I + 1));
    Core.submit(R.toJson().str(), [&](std::string Resp) {
      std::lock_guard<std::mutex> Lock(Mutex);
      Responses.push_back(std::move(Resp));
    });
  }
  Core.drain();

  ASSERT_EQ(Responses.size(), N);
  std::string WantText;
  for (const std::string &Line : Responses) {
    std::string Error;
    std::optional<ServeResponse> R = parseServeResponse(Line, &Error);
    ASSERT_TRUE(R.has_value()) << Error;
    EXPECT_TRUE(R->Ok) << R->Error;
    EXPECT_GE(R->Id, 1);
    EXPECT_LE(R->Id, static_cast<int64_t>(N));
    // First-insert-wins store: every interleaving renders the same
    // report (only the hit markers differ).
    std::string Text = stripCached(R->Text);
    if (WantText.empty())
      WantText = Text;
    else
      EXPECT_EQ(Text, WantText);
  }
  EXPECT_EQ(Core.stats().Requests, N);
}

TEST(Serve, BadPipelineSpecIsAnError) {
  ServeCore Core(ServeOptions{});
  ServeRequest R = analyzeRequest(1);
  R.PipelineSpec = "definitely-not-a-test";
  ServeResponse Resp = Core.handle(R);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Error.find("pipeline"), std::string::npos);
}
