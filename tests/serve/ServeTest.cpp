//===- tests/serve/ServeTest.cpp - edda-serve core tests ------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the serving layer (docs/SERVING.md): the NDJSON
/// protocol round-trips, ServeCore answers match a direct analyzer
/// run byte-for-byte (modulo cache markers), the shared store turns
/// repeat requests into hits, warm-start checkpoints reload, and
/// per-request budget overrides bypass the store.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "analysis/Analyzer.h"
#include "analysis/DependenceGraph.h"
#include "parser/Parser.h"
#include "serve/Protocol.h"
#include "serve/Render.h"
#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

using namespace edda;

namespace {

/// A nest with a carried dependence, a wavefront pair, and a
/// duplicated statement so one analyze request already exercises the
/// intra-run memo path.
const char *demoSource() {
  return "program served\n"
         "  array a[100]\n"
         "  array w[40][40]\n"
         "  for i = 1 to 10 do\n"
         "    a[i + 1] = a[i] + 3\n"
         "  end\n"
         "  for i = 2 to 20 do\n"
         "    for j = 1 to 19 do\n"
         "      w[i][j] = w[i - 1][j + 1] + 1\n"
         "    end\n"
         "  end\n"
         "  for i = 1 to 10 do\n"
         "    a[i + 1] = a[i] + 3\n"
         "  end\n"
         "end\n";
}

/// The coupled-subscript problem the Fourier-Motzkin stage decides
/// (tests/inputs/coupled.dep).
const char *coupledProblem() {
  return "problem\n"
         "  loops 2 2 common 2 symbolic 0\n"
         "  eq 1 1 -1 -1 = -5\n"
         "  lo 0 : 1\n"
         "  hi 0 : 10\n"
         "  lo 1 : 1\n"
         "  hi 1 : 10\n"
         "  lo 2 : 1\n"
         "  hi 2 : 10\n"
         "  lo 3 : 1\n"
         "  hi 3 : 10\n"
         "end\n";
}

/// The serve-smoke normalization: cache-hit markers depend on store
/// temperature, the answers must not.
std::string stripCached(std::string Text) {
  const std::string Marker = " (cached)";
  for (size_t Pos; (Pos = Text.find(Marker)) != std::string::npos;)
    Text.erase(Pos, Marker.size());
  return Text;
}

ServeRequest analyzeRequest(int64_t Id, bool Directions = true) {
  ServeRequest R;
  R.Id = Id;
  R.Operation = ServeRequest::Op::Analyze;
  R.Payload = demoSource();
  R.Directions = Directions;
  return R;
}

/// demoSource() after one subscript edit in the first nest; the other
/// two nests are untouched, so an incremental re-analysis reuses
/// their pairs.
const char *demoSourceEdited() {
  return "program served\n"
         "  array a[100]\n"
         "  array w[40][40]\n"
         "  for i = 1 to 10 do\n"
         "    a[i + 2] = a[i] + 3\n"
         "  end\n"
         "  for i = 2 to 20 do\n"
         "    for j = 1 to 19 do\n"
         "      w[i][j] = w[i - 1][j + 1] + 1\n"
         "    end\n"
         "  end\n"
         "  for i = 1 to 10 do\n"
         "    a[i + 1] = a[i] + 3\n"
         "  end\n"
         "end\n";
}

ServeRequest editRequest(int64_t Id, const char *Source,
                         const std::string &Session = "") {
  ServeRequest R;
  R.Id = Id;
  R.Operation = ServeRequest::Op::Edit;
  R.Payload = Source;
  R.Directions = true;
  R.CacheMarkers = false;
  R.Session = Session;
  return R;
}

} // namespace

TEST(ServeProtocol, RequestRoundTrip) {
  ServeRequest R;
  R.Id = 42;
  R.Operation = ServeRequest::Op::Analyze;
  R.Payload = "program p\nend\n";
  R.Directions = true;
  R.Explain = true;
  R.Widen = false;
  R.Prepass = false;
  R.CacheMarkers = false;
  R.PipelineSpec = "gcd,fm";
  R.FmBudget = 123;

  std::string Error;
  std::optional<ServeRequest> Back =
      parseServeRequest(R.toJson().str(), &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Id, 42);
  EXPECT_EQ(Back->Operation, ServeRequest::Op::Analyze);
  EXPECT_EQ(Back->Payload, R.Payload);
  EXPECT_TRUE(Back->Directions);
  EXPECT_TRUE(Back->Explain);
  EXPECT_FALSE(Back->Widen);
  EXPECT_FALSE(Back->Prepass);
  EXPECT_FALSE(Back->CacheMarkers);
  EXPECT_EQ(Back->PipelineSpec, "gcd,fm");
  EXPECT_EQ(Back->FmBudget, 123u);
}

TEST(ServeProtocol, EveryOpRoundTrips) {
  using Op = ServeRequest::Op;
  for (Op Operation : {Op::Analyze, Op::Problem, Op::Edit, Op::Stats,
                       Op::Ping, Op::Checkpoint, Op::Shutdown}) {
    ServeRequest R;
    R.Id = 7;
    R.Operation = Operation;
    std::string Error;
    std::optional<ServeRequest> Back =
        parseServeRequest(R.toJson().str(), &Error);
    ASSERT_TRUE(Back.has_value())
        << serveOpName(Operation) << ": " << Error;
    EXPECT_EQ(Back->Operation, Operation);
  }
}

TEST(ServeProtocol, MalformedLinesRejectedWithIdEcho) {
  std::string Error;
  int64_t Id = -1;
  EXPECT_FALSE(parseServeRequest("not json", &Error, &Id).has_value());
  EXPECT_FALSE(Error.empty());

  // A decodable id in an otherwise-bad request still comes back, so
  // the server can address its error response.
  Error.clear();
  EXPECT_FALSE(
      parseServeRequest("{\"id\":9,\"op\":\"bogus\"}", &Error, &Id)
          .has_value());
  EXPECT_EQ(Id, 9);
  EXPECT_FALSE(Error.empty());
}

TEST(Serve, PingAndShutdownOps) {
  ServeCore Core(ServeOptions{});
  ServeRequest Ping;
  Ping.Id = 1;
  Ping.Operation = ServeRequest::Op::Ping;
  ServeResponse R = Core.handle(Ping);
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Id, 1);

  EXPECT_FALSE(Core.shutdownRequested());
  ServeRequest Down;
  Down.Id = 2;
  Down.Operation = ServeRequest::Op::Shutdown;
  EXPECT_TRUE(Core.handle(Down).Ok);
  EXPECT_TRUE(Core.shutdownRequested());
}

TEST(Serve, AnalyzeMatchesDirectAnalyzerRender) {
  ServeCore Core(ServeOptions{});
  ServeResponse Served = Core.handle(analyzeRequest(1));
  ASSERT_TRUE(Served.Ok) << Served.Error;

  // The reference: what edda-cli computes for the same input — a
  // fresh single-threaded analyzer through the shared renderer.
  ParseResult Parsed = parseProgram(demoSource());
  ASSERT_TRUE(Parsed.succeeded());
  AnalyzerOptions AO;
  AO.ComputeDirections = true;
  DependenceAnalyzer Direct(AO);
  AnalysisResult Result = Direct.analyze(*Parsed.Prog);
  ReportOptions Report;
  Report.Directions = true;
  std::string Want = renderAnalysisReport(*Parsed.Prog, Result, Report);

  EXPECT_EQ(stripCached(Served.Text), stripCached(Want));
}

TEST(Serve, RepeatRequestServedFromSharedStore) {
  ServeCore Core(ServeOptions{});
  ServeResponse Cold = Core.handle(analyzeRequest(1));
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  ServeStats AfterCold = Core.stats();
  EXPECT_GT(AfterCold.PairsTested, 0u);

  ServeResponse Warm = Core.handle(analyzeRequest(2));
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  ServeStats AfterWarm = Core.stats();
  // Every memoizable pair of the repeat request hits the store, and
  // the answers are bit-identical modulo the hit markers.
  EXPECT_EQ(AfterWarm.PairsTested, AfterCold.PairsTested);
  EXPECT_GT(AfterWarm.PairsCached, AfterCold.PairsCached);
  EXPECT_EQ(stripCached(Warm.Text), stripCached(Cold.Text));
  // The repeat round at least doubles the cached share.
  EXPECT_GE(AfterWarm.hitRatePct(), 50.0);
}

TEST(Serve, CacheMarkersSuppressedOnRequest) {
  ServeCore Core(ServeOptions{});
  ASSERT_TRUE(Core.handle(analyzeRequest(1)).Ok);
  ServeRequest R = analyzeRequest(2);
  R.CacheMarkers = false;
  ServeResponse Warm = Core.handle(R);
  ASSERT_TRUE(Warm.Ok);
  EXPECT_EQ(Warm.Text.find(" (cached)"), std::string::npos);
}

TEST(Serve, ProblemOpDecidesAndMemoizes) {
  ServeCore Core(ServeOptions{});
  ServeRequest R;
  R.Id = 1;
  R.Operation = ServeRequest::Op::Problem;
  R.Payload = coupledProblem();
  R.Directions = true;
  ServeResponse Cold = Core.handle(R);
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  EXPECT_NE(Cold.Text.find("answer: dependent"), std::string::npos)
      << Cold.Text;
  EXPECT_EQ(Core.stats().ProblemsTested, 1u);

  R.Id = 2;
  ServeResponse Warm = Core.handle(R);
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_EQ(Core.stats().ProblemsCached, 1u);
  // The store drops witnesses, so compare answer lines, not bytes.
  EXPECT_NE(Warm.Text.find("answer: dependent"), std::string::npos)
      << Warm.Text;
}

TEST(Serve, HandleLineReportsErrorsInBand) {
  ServeCore Core(ServeOptions{});
  std::string Error;

  std::optional<ServeResponse> R =
      parseServeResponse(Core.handleLine("not json"), &Error);
  ASSERT_TRUE(R.has_value()) << Error;
  EXPECT_FALSE(R->Ok);
  EXPECT_FALSE(R->Error.empty());

  // A parse error in the payload is an ok:false response that still
  // echoes the request id.
  R = parseServeResponse(
      Core.handleLine(
          "{\"id\":5,\"op\":\"analyze\",\"program\":\"for for\"}"),
      &Error);
  ASSERT_TRUE(R.has_value()) << Error;
  EXPECT_EQ(R->Id, 5);
  EXPECT_FALSE(R->Ok);
  EXPECT_NE(R->Error.find("parse error"), std::string::npos);
  EXPECT_EQ(Core.stats().Errors, 2u);
}

TEST(Serve, StatsOpSnapshotsCounters) {
  ServeCore Core(ServeOptions{});
  ASSERT_TRUE(Core.handle(analyzeRequest(1)).Ok);
  ServeRequest R;
  R.Id = 2;
  R.Operation = ServeRequest::Op::Stats;
  ServeResponse S = Core.handle(R);
  ASSERT_TRUE(S.Ok) << S.Error;
  const JsonValue &Stats = S.Body.get("server");
  ASSERT_TRUE(Stats.isObject()) << S.Body.str();
  EXPECT_EQ(Stats.getInt("analyze_requests"), 1);
  EXPECT_TRUE(Stats.get("hit_rate_pct").isNumber());
}

TEST(Serve, CheckpointThenWarmReload) {
  std::string Path = ::testing::TempDir() + "/edda_serve_warm.txt";
  std::remove(Path.c_str());
  std::string ColdText;
  {
    ServeOptions Opts;
    Opts.CachePath = Path;
    std::string Error;
    ServeCore Core(Opts, &Error);
    ASSERT_TRUE(Error.empty()) << Error;
    EXPECT_EQ(Core.stats().WarmLoadedEntries, 0u);
    ServeResponse Cold = Core.handle(analyzeRequest(1));
    ASSERT_TRUE(Cold.Ok) << Cold.Error;
    ColdText = stripCached(Cold.Text);
    ASSERT_TRUE(Core.checkpoint());
    EXPECT_GE(Core.stats().Checkpoints, 1u);
  }

  ServeOptions Opts;
  Opts.CachePath = Path;
  std::string Error;
  ServeCore Warm(Opts, &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_GT(Warm.stats().WarmLoadedEntries, 0u);
  ServeResponse R = Warm.handle(analyzeRequest(1));
  ASSERT_TRUE(R.Ok) << R.Error;
  // The whole repeat round is answered from the reloaded store, and
  // the report matches the cold run byte-for-byte modulo markers.
  EXPECT_EQ(Warm.stats().PairsTested, 0u);
  EXPECT_GT(Warm.stats().PairsCached, 0u);
  EXPECT_EQ(stripCached(R.Text), ColdText);
  std::remove(Path.c_str());
}

TEST(Serve, BudgetedRequestBypassesSharedStore) {
  ServeCore Core(ServeOptions{});
  ServeRequest R = analyzeRequest(1);
  R.FmBudget = 1; // Degrades FM decisions; must not enter the store.
  ASSERT_TRUE(Core.handle(R).Ok);
  EXPECT_EQ(Core.cache().uniqueFull(), 0u);

  // The unbudgeted retry computes and memoizes the real answers.
  ASSERT_TRUE(Core.handle(analyzeRequest(2)).Ok);
  EXPECT_GT(Core.cache().uniqueFull(), 0u);
}

TEST(Serve, SubmitDispatchesConcurrently) {
  ServeOptions Opts;
  Opts.NumThreads = 4;
  ServeCore Core(Opts);

  std::mutex Mutex;
  std::vector<std::string> Responses;
  const unsigned N = 32;
  for (unsigned I = 0; I < N; ++I) {
    ServeRequest R = analyzeRequest(static_cast<int64_t>(I + 1));
    Core.submit(R.toJson().str(), [&](std::string Resp) {
      std::lock_guard<std::mutex> Lock(Mutex);
      Responses.push_back(std::move(Resp));
    });
  }
  Core.drain();

  ASSERT_EQ(Responses.size(), N);
  std::string WantText;
  for (const std::string &Line : Responses) {
    std::string Error;
    std::optional<ServeResponse> R = parseServeResponse(Line, &Error);
    ASSERT_TRUE(R.has_value()) << Error;
    EXPECT_TRUE(R->Ok) << R->Error;
    EXPECT_GE(R->Id, 1);
    EXPECT_LE(R->Id, static_cast<int64_t>(N));
    // First-insert-wins store: every interleaving renders the same
    // report (only the hit markers differ).
    std::string Text = stripCached(R->Text);
    if (WantText.empty())
      WantText = Text;
    else
      EXPECT_EQ(Text, WantText);
  }
  EXPECT_EQ(Core.stats().Requests, N);
}

TEST(ServeProtocol, EditRequestCarriesSessionAndProgram) {
  ServeRequest R;
  R.Id = 3;
  R.Operation = ServeRequest::Op::Edit;
  R.Payload = "program p\nend\n";
  R.Session = "alice";
  R.Directions = true;

  std::string Error;
  std::optional<ServeRequest> Back =
      parseServeRequest(R.toJson().str(), &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Operation, ServeRequest::Op::Edit);
  EXPECT_EQ(Back->Payload, R.Payload);
  EXPECT_EQ(Back->Session, "alice");
  EXPECT_TRUE(Back->Directions);
}

TEST(ServeProtocol, FmBudgetRejectedOnEditRequests) {
  // A one-off budget would splice degraded answers into the session's
  // later re-analyses, so the protocol layer rejects the combination.
  ServeRequest R;
  R.Id = 4;
  R.Operation = ServeRequest::Op::Edit;
  R.Payload = "program p\nend\n";
  R.FmBudget = 9;
  std::string Error;
  EXPECT_FALSE(parseServeRequest(R.toJson().str(), &Error).has_value());
  EXPECT_NE(Error.find("fm_budget"), std::string::npos) << Error;
}

TEST(Serve, EditOpIncrementalMatchesAnalyze) {
  ServeCore Core(ServeOptions{});

  // The opening edit has no previous version: every pair is fresh.
  ServeResponse First = Core.handle(editRequest(1, demoSource()));
  ASSERT_TRUE(First.Ok) << First.Error;
  const JsonValue &S1 = First.Body.get("stats");
  ASSERT_TRUE(S1.isObject()) << First.Body.str();
  EXPECT_GT(S1.getInt("pairs"), 0);
  EXPECT_EQ(S1.getInt("pairs_reused"), 0);
  EXPECT_EQ(S1.getInt("pairs_invalidated"), S1.getInt("pairs"));
  EXPECT_EQ(First.Body.getString("session"), "conn:0");

  // One subscript edit: the untouched nests splice through.
  ServeResponse Second = Core.handle(editRequest(2, demoSourceEdited()));
  ASSERT_TRUE(Second.Ok) << Second.Error;
  const JsonValue &S2 = Second.Body.get("stats");
  EXPECT_GT(S2.getInt("pairs_reused"), 0);
  EXPECT_LT(S2.getInt("pairs_invalidated"), S2.getInt("pairs"));

  // The spliced report and graph are bit-identical to a from-scratch
  // run on the edited program.
  ParseResult Parsed = parseProgram(demoSourceEdited());
  ASSERT_TRUE(Parsed.succeeded());
  AnalyzerOptions AO;
  AO.ComputeDirections = true;
  DependenceAnalyzer Direct(AO);
  AnalysisResult Result = Direct.analyze(*Parsed.Prog);
  ReportOptions Report;
  Report.Directions = true;
  std::string Want = renderAnalysisReport(*Parsed.Prog, Result, Report);
  EXPECT_EQ(stripCached(Second.Text), stripCached(Want));
  DependenceGraph WantGraph = DependenceGraph::buildFromResult(Result);
  EXPECT_EQ(Second.Body.getString("graph"), WantGraph.str(*Parsed.Prog));
}

TEST(Serve, EditSessionsIsolatedByConnAndName) {
  ServeCore Core(ServeOptions{});

  // Anonymous sessions are connection-scoped: the same program on a
  // different connection starts cold.
  ServeResponse A = Core.handle(editRequest(1, demoSource()), /*ConnId=*/1);
  ASSERT_TRUE(A.Ok) << A.Error;
  EXPECT_EQ(A.Body.getString("session"), "conn:1");
  ServeResponse B = Core.handle(editRequest(2, demoSource()), /*ConnId=*/2);
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(B.Body.getString("session"), "conn:2");
  EXPECT_EQ(B.Body.get("stats").getInt("pairs_reused"), 0);

  // Re-sending the unchanged program on the original connection
  // reuses every pair.
  ServeResponse C = Core.handle(editRequest(3, demoSource()), 1);
  ASSERT_TRUE(C.Ok) << C.Error;
  const JsonValue &SC = C.Body.get("stats");
  EXPECT_EQ(SC.getInt("pairs_reused"), SC.getInt("pairs"));
  EXPECT_EQ(SC.getInt("pairs_invalidated"), 0);

  // A named session is shared across connections.
  ServeResponse N1 =
      Core.handle(editRequest(4, demoSource(), "shared"), 1);
  ASSERT_TRUE(N1.Ok) << N1.Error;
  EXPECT_EQ(N1.Body.getString("session"), "user:shared");
  ServeResponse N2 =
      Core.handle(editRequest(5, demoSource(), "shared"), 2);
  ASSERT_TRUE(N2.Ok) << N2.Error;
  const JsonValue &SN = N2.Body.get("stats");
  EXPECT_EQ(SN.getInt("pairs_reused"), SN.getInt("pairs"));
}

TEST(Serve, StatsOpReportsEditCounters) {
  ServeCore Core(ServeOptions{});
  ASSERT_TRUE(Core.handle(editRequest(1, demoSource())).Ok);
  ASSERT_TRUE(Core.handle(editRequest(2, demoSourceEdited())).Ok);

  ServeRequest R;
  R.Id = 3;
  R.Operation = ServeRequest::Op::Stats;
  ServeResponse S = Core.handle(R);
  ASSERT_TRUE(S.Ok) << S.Error;
  const JsonValue &Stats = S.Body.get("server");
  ASSERT_TRUE(Stats.isObject()) << S.Body.str();
  EXPECT_EQ(Stats.getInt("edit_requests"), 2);
  EXPECT_GT(Stats.getInt("pairs_reused"), 0);
  EXPECT_GT(Stats.getInt("pairs_invalidated"), 0);
  EXPECT_EQ(Stats.getInt("edit_sessions"), 1);
  EXPECT_EQ(Stats.getInt("warm_rejected_entries"), 0);
  ServeStats Snapshot = Core.stats();
  EXPECT_EQ(Snapshot.EditRequests, 2u);
  EXPECT_GT(Snapshot.PairsReused, 0u);
}

TEST(Serve, WarmStartRejectsStaleFormatVersion) {
  // A v5 cache file (the pre-fingerprint format) must be rejected
  // loudly: the boot diagnostic names the stale version and the
  // rejected-entry count is surfaced instead of a silent cold start.
  std::string Path = ::testing::TempDir() + "/edda_serve_v5.txt";
  {
    std::ofstream Out(Path);
    Out << "edda-depcache 5\n2\n3 1 2 3\n1 5 1 0\n3 4 5 6\n0 7 1 0\n"
           "1\n2 9 9\n1 5 1 0 0 1 1\n1 0\nd 1\n3\n";
  }
  ServeOptions Opts;
  Opts.CachePath = Path;
  std::string Error;
  ServeCore Core(Opts, &Error);
  EXPECT_NE(Error.find("stale format version 5"), std::string::npos)
      << Error;
  EXPECT_EQ(Core.stats().WarmLoadedEntries, 0u);
  EXPECT_EQ(Core.stats().WarmRejectedEntries, 6u);
  // The server still comes up and serves cold.
  EXPECT_TRUE(Core.handle(analyzeRequest(1)).Ok);
  std::remove(Path.c_str());
}

TEST(Serve, BadPipelineSpecIsAnError) {
  ServeCore Core(ServeOptions{});
  ServeRequest R = analyzeRequest(1);
  R.PipelineSpec = "definitely-not-a-test";
  ServeResponse Resp = Core.handle(R);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Error.find("pipeline"), std::string::npos);
}
