//===- tests/analysis/InterpTest.cpp - Interpreter tests ------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Interp.h"

#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

TEST(Interp, ScalarArithmetic) {
  Program P = mustParse(R"(program s
  array a[10]
  k = 2 + 3 * 4
  a[1] = k - 1
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ((R.Memory.at({0, {1}})), 13);
}

TEST(Interp, LoopExecution) {
  Program P = mustParse(R"(program s
  array a[20]
  for i = 1 to 5 do
    a[i] = 2 * i
  end
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  for (int64_t I = 1; I <= 5; ++I)
    EXPECT_EQ((R.Memory.at({0, {I}})), 2 * I);
  EXPECT_EQ(R.Trace.size(), 5u); // five writes
}

TEST(Interp, NegativeStepLoop) {
  Program P = mustParse(R"(program s
  array a[20]
  k = 0
  for i = 5 to 1 step -2 do
    k = k + i
  end
  a[1] = k
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ((R.Memory.at({0, {1}})), 5 + 3 + 1);
}

TEST(Interp, ZeroTripLoop) {
  Program P = mustParse(R"(program s
  array a[20]
  for i = 5 to 1 do
    a[i] = 1
  end
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.Memory.empty());
  EXPECT_TRUE(R.Trace.empty());
}

TEST(Interp, ReadsDefaultToZero) {
  Program P = mustParse(R"(program s
  array a[20]
  a[1] = a[9] + 7
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ((R.Memory.at({0, {1}})), 7);
}

TEST(Interp, TraceRecordsSlotsAndOrder) {
  Program P = mustParse(R"(program s
  array a[20]
  for i = 1 to 2 do
    a[i + 1] = a[i] + 1
  end
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Trace.size(), 4u);
  // Per iteration: read slot 0 first, then the write (RHS evaluates
  // before the store).
  EXPECT_FALSE(R.Trace[0].IsWrite);
  EXPECT_EQ(R.Trace[0].Slot, 0);
  EXPECT_TRUE(R.Trace[1].IsWrite);
  EXPECT_EQ(R.Trace[1].Slot, -1);
  EXPECT_LT(R.Trace[0].Seq, R.Trace[1].Seq);
  // Iteration vectors recorded.
  ASSERT_EQ(R.Trace[0].Iteration.size(), 1u);
  EXPECT_EQ(R.Trace[0].Iteration[0].second, 1);
  EXPECT_EQ(R.Trace[2].Iteration[0].second, 2);
}

TEST(Interp, CarriedValueAcrossIterations) {
  Program P = mustParse(R"(program s
  array a[20]
  a[1] = 1
  for i = 2 to 6 do
    a[i] = a[i - 1] * 2
  end
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ((R.Memory.at({0, {6}})), 32);
}

TEST(Interp, SymbolicValuesInjected) {
  Program P = mustParse(R"(program s
  array a[200]
  read n
  a[n] = n + 1
end
)",
                        /*Prepass=*/false);
  InterpOptions Opts;
  Opts.SymbolicValues[*P.lookupVar("n")] = 42;
  InterpResult R = interpret(P, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ((R.Memory.at({0, {42}})), 43);
}

TEST(Interp, MultiDimensionalIndices) {
  Program P = mustParse(R"(program s
  array a[10][10]
  for i = 1 to 3 do
    for j = 1 to 3 do
      a[i][j] = 10 * i + j
    end
  end
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ((R.Memory.at({0, {2, 3}})), 23);
}

TEST(Interp, AccessBudgetEnforced) {
  Program P = mustParse(R"(program s
  array a[10]
  for i = 1 to 1000 do
    a[1] = i
  end
end
)",
                        /*Prepass=*/false);
  InterpOptions Opts;
  Opts.MaxAccesses = 10;
  InterpResult R = interpret(P, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(Interp, OverflowReported) {
  Program P = mustParse(R"(program s
  array a[10]
  k = 9223372036854775807
  a[1] = k + 1
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("overflow"), std::string::npos);
}

TEST(Interp, NestedArrayReadSlots) {
  Program P = mustParse(R"(program s
  array a[10]
  array idx[10]
  idx[1] = 3
  for i = 1 to 1 do
    a[idx[i]] = a[2] + 1
  end
end
)",
                        /*Prepass=*/false);
  InterpResult R = interpret(P);
  ASSERT_TRUE(R.Ok);
  // idx write, then per iteration: idx read (slot 0, LHS subscript),
  // a read (slot 1), a write (slot -1).
  ASSERT_EQ(R.Trace.size(), 4u);
  EXPECT_EQ(R.Trace[1].Slot, 0);
  EXPECT_EQ(R.Trace[1].ArrayId, *P.lookupArray("idx"));
  EXPECT_EQ(R.Trace[2].Slot, 1);
  EXPECT_EQ(R.Trace[3].Slot, -1);
  EXPECT_EQ(R.Trace[3].Indices, (std::vector<int64_t>{3}));
}
