//===- tests/analysis/DistributionTest.cpp - Loop fission tests -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"

#include "analysis/Interp.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

struct Planned {
  Program Prog;
  LoopStmt *Loop = nullptr;
  DistributionPlan Plan;
};

Planned plan(const std::string &Source) {
  Planned P;
  P.Prog = mustParse(Source, /*Prepass=*/false);
  DependenceAnalyzer Analyzer;
  DependenceGraph Graph = DependenceGraph::build(P.Prog, Analyzer);
  for (StmtPtr &S : P.Prog.body())
    if (S->kind() == StmtKind::Loop) {
      P.Loop = &asLoop(*S);
      break;
    }
  if (P.Loop)
    P.Plan = planDistribution(Graph, P.Loop);
  return P;
}

unsigned loopIdx(const Program &Prog) {
  for (unsigned I = 0; I < Prog.body().size(); ++I)
    if (Prog.body()[I]->kind() == StmtKind::Loop)
      return I;
  ADD_FAILURE() << "no loop";
  return 0;
}

/// Distributes and checks memory equivalence.
void distributeAndCheck(Planned &P) {
  Program Original(P.Prog);
  unsigned Idx = loopIdx(P.Prog);
  ASSERT_TRUE(distributeLoop(P.Prog.body(), Idx, P.Plan));
  InterpResult Before = interpret(Original);
  InterpResult After = interpret(P.Prog);
  ASSERT_TRUE(Before.Ok);
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(Before.Memory, After.Memory)
      << "distribution changed semantics";
}

} // namespace

TEST(Distribution, IndependentStatementsSplit) {
  Planned P = plan(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = i
    b[i] = 2 * i
  end
end
)");
  ASSERT_NE(P.Loop, nullptr);
  ASSERT_TRUE(P.Plan.distributable());
  EXPECT_EQ(P.Plan.Groups.size(), 2u);
  distributeAndCheck(P);
  // Two loops now.
  unsigned Loops = 0;
  for (const StmtPtr &S : P.Prog.body())
    if (S->kind() == StmtKind::Loop)
      ++Loops;
  EXPECT_EQ(Loops, 2u);
}

TEST(Distribution, ProducerConsumerSplitsInOrder) {
  // S1 produces a[i], S2 consumes a[i]: two groups, S1's first.
  Planned P = plan(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = i
    b[i] = a[i] + 1
  end
end
)");
  ASSERT_TRUE(P.Plan.distributable());
  ASSERT_EQ(P.Plan.Groups.size(), 2u);
  EXPECT_EQ(P.Plan.Groups[0], (std::vector<unsigned>{0}));
  EXPECT_EQ(P.Plan.Groups[1], (std::vector<unsigned>{1}));
  distributeAndCheck(P);
}

TEST(Distribution, BackwardCarriedDependenceReorders) {
  // S1 reads b[i-1] written by S2 in the *previous* iteration: the
  // condensation places S2's loop first (all writes precede all reads
  // of later iterations — legal), unless they form a cycle.
  Planned P = plan(R"(program s
  array a[100]
  array b[100]
  for i = 2 to 10 do
    a[i] = b[i - 1]
    b[i] = i
  end
end
)");
  ASSERT_TRUE(P.Plan.distributable());
  ASSERT_EQ(P.Plan.Groups.size(), 2u);
  // b's writer (statement 1) must come first.
  EXPECT_EQ(P.Plan.Groups[0], (std::vector<unsigned>{1}));
  distributeAndCheck(P);
}

TEST(Distribution, RecurrenceCycleStaysTogether) {
  // S1 and S2 feed each other across iterations: one SCC, not
  // distributable.
  Planned P = plan(R"(program s
  array a[100]
  array b[100]
  for i = 2 to 10 do
    a[i] = b[i - 1] + 1
    b[i] = a[i - 1] + 2
  end
end
)");
  ASSERT_NE(P.Loop, nullptr);
  EXPECT_FALSE(P.Plan.distributable());
  ASSERT_EQ(P.Plan.Groups.size(), 1u);
  EXPECT_EQ(P.Plan.Groups[0].size(), 2u);
}

TEST(Distribution, ScalarFlowGluesStatements) {
  // s carries a value from S1 to S2 — invisible to array analysis,
  // caught by the scalar glue.
  Planned P = plan(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    s = a[i] + 1
    b[i] = s
  end
end
)");
  ASSERT_NE(P.Loop, nullptr);
  EXPECT_FALSE(P.Plan.distributable());
}

TEST(Distribution, MixedGroupsWithNestedLoop) {
  // Three statements: an independent init, a nested-loop consumer of
  // it, and an unrelated one.
  Planned P = plan(R"(program s
  array a[100]
  array b[100][100]
  array c[100]
  for i = 1 to 8 do
    a[i] = i
    for j = 1 to 8 do
      b[i][j] = a[i] + j
    end
    c[i] = 3 * i
  end
end
)");
  ASSERT_TRUE(P.Plan.distributable());
  EXPECT_EQ(P.Plan.Groups.size(), 3u);
  distributeAndCheck(P);
}

TEST(Distribution, UnanalyzableGlues) {
  Planned P = plan(R"(program s
  array a[100]
  array idx[100]
  for i = 1 to 10 do
    a[idx[i]] = i
    a[i] = a[i] + 1
  end
end
)");
  ASSERT_NE(P.Loop, nullptr);
  // The indirect write conflicts with everything touching a.
  EXPECT_FALSE(P.Plan.distributable());
}

TEST(Distribution, ApplyRejectsBadPlans) {
  Planned P = plan(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = i
  end
end
)");
  ASSERT_NE(P.Loop, nullptr);
  // Single group: nothing to do.
  EXPECT_FALSE(P.Plan.distributable());
  EXPECT_FALSE(distributeLoop(P.Prog.body(), loopIdx(P.Prog), P.Plan));
  // Malformed plan: wrong coverage.
  DistributionPlan Bad;
  Bad.Groups = {{0}, {5}};
  EXPECT_FALSE(distributeLoop(P.Prog.body(), loopIdx(P.Prog), Bad));
}

TEST(Distribution, SemanticsPreservedOnWorkloadSamples) {
  // Distribute the first distributable loop of a couple of classic
  // kernels and check the interpreter agrees.
  const char *Kernels[] = {
      R"(program k1
  array a[100]
  array b[100]
  array c[100]
  for i = 2 to 20 do
    a[i] = a[i - 1] + 1
    b[i] = a[i] * 2
    c[i] = b[i] + a[i]
  end
end
)",
      R"(program k2
  array x[100]
  array y[100]
  for i = 1 to 15 do
    x[i] = i * i
    y[i] = x[i] - 1
  end
end
)",
  };
  for (const char *Source : Kernels) {
    Planned P = plan(Source);
    ASSERT_NE(P.Loop, nullptr);
    if (!P.Plan.distributable())
      continue;
    distributeAndCheck(P);
  }
}

TEST(DependenceGraphDot, RendersEdges) {
  Program Prog = mustParse(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i]
  end
end
)");
  DependenceAnalyzer Analyzer;
  DependenceGraph G = DependenceGraph::build(Prog, Analyzer);
  std::string Dot = G.toDot(Prog);
  EXPECT_NE(Dot.find("digraph dependences"), std::string::npos);
  EXPECT_NE(Dot.find("flow"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  EXPECT_NE(Dot.find("(<)"), std::string::npos);
}
