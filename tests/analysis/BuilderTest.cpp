//===- tests/analysis/BuilderTest.cpp - Problem builder tests -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Builder.h"

#include "deptest/Cascade.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

TEST(Builder, SimplePairLayout) {
  std::optional<BuiltProblem> B = problemFromSource(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 10] = a[i]
  end
end
)");
  ASSERT_TRUE(B.has_value());
  const DependenceProblem &P = B->Problem;
  EXPECT_EQ(P.NumLoopsA, 1u);
  EXPECT_EQ(P.NumLoopsB, 1u);
  EXPECT_EQ(P.NumCommon, 1u);
  EXPECT_EQ(P.NumSymbolic, 0u);
  ASSERT_EQ(P.Equations.size(), 1u);
  // (i + 10) - i' == 0.
  EXPECT_EQ(P.Equations[0].Coeffs, (std::vector<int64_t>{1, -1}));
  EXPECT_EQ(P.Equations[0].Const, 10);
  ASSERT_TRUE(P.Lo[0].has_value());
  EXPECT_EQ(P.Lo[0]->Const, 1);
  ASSERT_TRUE(P.Hi[1].has_value());
  EXPECT_EQ(P.Hi[1]->Const, 10);
  EXPECT_TRUE(B->Exact);
  EXPECT_EQ(B->CommonLoops.size(), 1u);
}

TEST(Builder, TriangularBoundsReferenceOuterColumn) {
  std::optional<BuiltProblem> B = problemFromSource(R"(program s
  array a[100]
  for i = 1 to 10 do
    for j = 1 to i do
      a[j + 1] = a[j]
    end
  end
end
)");
  ASSERT_TRUE(B.has_value());
  const DependenceProblem &P = B->Problem;
  ASSERT_EQ(P.numLoopVars(), 4u);
  // j's upper bound references i's column (0) on the A side, i''s
  // column (2) on the B side.
  ASSERT_TRUE(P.Hi[1].has_value());
  EXPECT_EQ(P.Hi[1]->Coeffs[0], 1);
  ASSERT_TRUE(P.Hi[3].has_value());
  EXPECT_EQ(P.Hi[3]->Coeffs[2], 1);
}

TEST(Builder, SymbolicSharedColumn) {
  std::optional<BuiltProblem> B = problemFromSource(R"(program s
  array a[500]
  read n
  for i = 1 to 10 do
    a[i + n] = a[i + 2 * n + 1]
  end
end
)");
  ASSERT_TRUE(B.has_value());
  const DependenceProblem &P = B->Problem;
  EXPECT_EQ(P.NumSymbolic, 1u);
  ASSERT_EQ(P.Equations.size(), 1u);
  // (i + n) - (i' + 2n + 1): coefficient of the shared n column is -1.
  EXPECT_EQ(P.Equations[0].Coeffs, (std::vector<int64_t>{1, -1, -1}));
  EXPECT_EQ(P.Equations[0].Const, -1);
  ASSERT_EQ(B->SymbolicVars.size(), 1u);
}

TEST(Builder, SymbolicBound) {
  std::optional<BuiltProblem> B = problemFromSource(R"(program s
  array a[500]
  read n
  for i = 1 to n do
    a[i] = a[i + 1]
  end
end
)");
  ASSERT_TRUE(B.has_value());
  const DependenceProblem &P = B->Problem;
  ASSERT_TRUE(P.Hi[0].has_value());
  EXPECT_EQ(P.Hi[0]->Coeffs[P.numLoopVars()], 1); // n column
}

TEST(Builder, DisjointNestsHaveNoCommonLoops) {
  Program P = mustParse(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = 1
  end
  for i = 1 to 10 do
    a[i + 5] = 2
  end
end
)");
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 2u);
  std::optional<BuiltProblem> B = buildProblem(P, Refs[0], Refs[1]);
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Problem.NumCommon, 0u);
  // Same variable name, different loop objects.
  EXPECT_EQ(B->Problem.NumLoopsA, 1u);
  EXPECT_EQ(B->Problem.NumLoopsB, 1u);
}

TEST(Builder, NonAffineRejected) {
  std::optional<BuiltProblem> B = problemFromSource(R"(program s
  array a[100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[i * j] = a[i]
    end
  end
end
)");
  EXPECT_FALSE(B.has_value());
}

TEST(Builder, OutOfScopeLoopVariableRejected) {
  // Use of a loop variable after its loop: not affine in the enclosing
  // nest of the reference.
  Program P = mustParse(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = 0
  end
  a[i] = 1
end
)",
                        /*Prepass=*/false);
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 2u);
  EXPECT_FALSE(buildProblem(P, Refs[0], Refs[1]).has_value());
}

TEST(Builder, SurvivingStrideRelaxes) {
  // Symbolic bounds block normalization; the stride survives and the
  // problem is flagged inexact.
  Program P = mustParse(R"(program s
  array a[100]
  read n
  for i = 1 to n step 2 do
    a[i] = a[i + 1]
  end
end
)");
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 2u);
  std::optional<BuiltProblem> B = buildProblem(P, Refs[0], Refs[1]);
  ASSERT_TRUE(B.has_value());
  EXPECT_FALSE(B->Exact);
}

TEST(Builder, SelfPairForOutputDependence) {
  std::optional<BuiltProblem> B;
  Program P = mustParse(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 3] = 7
  end
end
)");
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 1u);
  B = buildProblem(P, Refs[0], Refs[0]);
  ASSERT_TRUE(B.has_value());
  // (i+3) - (i'+3) == 0 -> coefficients {1, -1}, const 0.
  EXPECT_EQ(B->Problem.Equations[0].Coeffs,
            (std::vector<int64_t>{1, -1}));
  EXPECT_EQ(B->Problem.Equations[0].Const, 0);
  // Self output dependence across iterations... the equation forces
  // i == i', so the only direction is '='.
  CascadeResult R = testDependence(B->Problem);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
}

TEST(Builder, RankMismatchRejected) {
  // Builder is defensive about malformed pairs (different arrays).
  Program P = mustParse(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = b[i]
  end
end
)");
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 2u);
  EXPECT_FALSE(buildProblem(P, Refs[0], Refs[1]).has_value());
}

TEST(Builder, WitnessRoundTrip) {
  // The cascade's witness satisfies the built problem.
  std::optional<BuiltProblem> B = problemFromSource(R"(program s
  array a[100][100]
  for i = 1 to 10 do
    for j = 1 to i do
      a[i][j] = a[i - 1][j + 1]
    end
  end
end
)");
  ASSERT_TRUE(B.has_value());
  CascadeResult R = testDependence(B->Problem);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(verifyWitness(B->Problem, *R.Witness));
}
