//===- tests/analysis/IncrementalTest.cpp - Incremental re-analysis -------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the edit-loop stack: reference content fingerprints
/// (stable across reparse, bound-sensitive), Analyzer::reanalyze
/// splicing (bit-identical to from-scratch analysis, reuse counters
/// honest), IncrementalSession graph maintenance, and the PERFECT-style
/// single-edit reuse claim (a one-statement edit re-runs a small
/// fraction of the reference pairs, proved by counters, not wall time).
///
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"

#include "analysis/Analyzer.h"
#include "analysis/DependenceGraph.h"
#include "analysis/Refs.h"
#include "ir/Expr.h"
#include "parser/Parser.h"
#include "serve/Render.h"
#include "workload/Generator.h"
#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace edda;

namespace {

Program parse(const std::string &Source) {
  ParseResult PR = parseProgram(Source);
  EXPECT_TRUE(PR.succeeded()) << Source;
  return std::move(*PR.Prog);
}

/// A nest with enough distinct pairs that single edits leave most of
/// them untouched.
const char *editableSource() {
  return "program edits\n"
         "  array a[100]\n"
         "  array b[100]\n"
         "  for i = 1 to 10 do\n"
         "    a[i + 1] = a[i] + 1\n"
         "    b[2 * i] = b[2 * i + 1] + a[i]\n"
         "  end\n"
         "  for i = 1 to 20 do\n"
         "    a[i] = b[i] + 2\n"
         "  end\n"
         "end\n";
}

/// The same statements under a different second-loop bound.
const char *editableSourceWiderBound() {
  return "program edits\n"
         "  array a[100]\n"
         "  array b[100]\n"
         "  for i = 1 to 10 do\n"
         "    a[i + 1] = a[i] + 1\n"
         "    b[2 * i] = b[2 * i + 1] + a[i]\n"
         "  end\n"
         "  for i = 1 to 25 do\n"
         "    a[i] = b[i] + 2\n"
         "  end\n"
         "end\n";
}

AnalyzerOptions directionOptions() {
  AnalyzerOptions AO;
  AO.ComputeDirections = true;
  return AO;
}

/// Renders result + graph the way the identity checks compare them.
std::string renderAll(const Program &Prog, const AnalysisResult &Result,
                      const DependenceGraph &Graph) {
  ReportOptions Report;
  Report.Directions = true;
  Report.CacheMarkers = false;
  return renderAnalysisReport(Prog, Result, Report) + "\n" +
         Graph.str(Prog);
}

} // namespace

TEST(Fingerprint, StableAcrossPrintReparse) {
  Program A = parse(editableSource());
  Program B = parse(A.print());
  std::vector<ArrayReference> RefsA = collectReferences(A);
  std::vector<ArrayReference> RefsB = collectReferences(B);
  ASSERT_EQ(RefsA.size(), RefsB.size());
  for (size_t I = 0; I < RefsA.size(); ++I) {
    EXPECT_NE(RefsA[I].Fingerprint, 0u);
    EXPECT_EQ(RefsA[I].Fingerprint, RefsB[I].Fingerprint) << I;
    EXPECT_EQ(RefsA[I].FingerprintNoBounds, RefsB[I].FingerprintNoBounds)
        << I;
  }
}

TEST(Fingerprint, SameTextDifferentBoundsSplitsOnlyFullFingerprint) {
  // Keep the parsed programs alive while comparing: references hold
  // statement pointers.
  Program NarrowProg = parse(editableSource());
  Program WideProg = parse(editableSourceWiderBound());
  std::vector<ArrayReference> A = collectReferences(NarrowProg);
  std::vector<ArrayReference> B = collectReferences(WideProg);
  ASSERT_EQ(A.size(), B.size());
  bool SawSplit = false;
  for (size_t I = 0; I < A.size(); ++I) {
    // The statement text is identical everywhere, so the bounds-free
    // fingerprint never moves...
    EXPECT_EQ(A[I].FingerprintNoBounds, B[I].FingerprintNoBounds) << I;
    // ...but references under the edited bound must split their full
    // fingerprint (this is exactly what the stale-fingerprint injected
    // bug erases).
    if (A[I].Fingerprint != B[I].Fingerprint)
      SawSplit = true;
  }
  EXPECT_TRUE(SawSplit);
  // References in the untouched first nest keep both fingerprints.
  EXPECT_EQ(A[0].Fingerprint, B[0].Fingerprint);
}

TEST(Fingerprint, SymbolicBoundEditIsVisible) {
  const char *Sym = "program sym\n"
                    "  array a[100]\n"
                    "  read n\n"
                    "  for i = 1 to n do\n"
                    "    a[i + 1] = a[i]\n"
                    "  end\n"
                    "end\n";
  const char *SymEdited = "program sym\n"
                          "  array a[100]\n"
                          "  read n\n"
                          "  for i = 1 to n + 1 do\n"
                          "    a[i + 1] = a[i]\n"
                          "  end\n"
                          "end\n";
  Program A = parse(Sym);
  Program B = parse(SymEdited);
  std::vector<ArrayReference> RA = collectReferences(A);
  std::vector<ArrayReference> RB = collectReferences(B);
  ASSERT_EQ(RA.size(), RB.size());
  for (size_t I = 0; I < RA.size(); ++I) {
    EXPECT_NE(RA[I].Fingerprint, RB[I].Fingerprint) << I;
    EXPECT_EQ(RA[I].FingerprintNoBounds, RB[I].FingerprintNoBounds) << I;
  }
}

TEST(Incremental, ReanalyzeIsBitIdenticalToFresh) {
  // One analyzer holds the session; an independent one provides the
  // from-scratch truth for the edited program.
  DependenceAnalyzer Session(directionOptions());
  Program Base = parse(editableSource());
  AnalysisResult Before = Session.analyze(Base);

  Program Edited = parse("program edits\n"
                         "  array a[100]\n"
                         "  array b[100]\n"
                         "  for i = 1 to 10 do\n"
                         "    a[i + 2] = a[i] + 1\n"
                         "    b[2 * i] = b[2 * i + 1] + a[i]\n"
                         "  end\n"
                         "  for i = 1 to 20 do\n"
                         "    a[i] = b[i] + 2\n"
                         "  end\n"
                         "end\n");
  ReanalyzeStats RS;
  AnalysisResult Spliced = Session.reanalyze(Edited, Before, &RS);

  DependenceAnalyzer FreshAnalyzer(directionOptions());
  Program FreshProg = parse(Edited.print());
  AnalysisResult Fresh = FreshAnalyzer.analyze(FreshProg);

  EXPECT_EQ(renderAll(Edited, Spliced,
                      DependenceGraph::buildFromResult(Spliced)),
            renderAll(FreshProg, Fresh,
                      DependenceGraph::buildFromResult(Fresh)));

  // The edit touched one statement: most pairs splice through.
  EXPECT_EQ(RS.PairsTotal, Spliced.Pairs.size());
  EXPECT_EQ(RS.PairsReused + RS.PairsInvalidated, RS.PairsTotal);
  EXPECT_GT(RS.PairsReused, 0u);
  EXPECT_LT(RS.PairsInvalidated, RS.PairsTotal);
}

TEST(Incremental, BoundEditInvalidatesAffectedPairsOnly) {
  DependenceAnalyzer Session(directionOptions());
  Program Base = parse(editableSource());
  AnalysisResult Before = Session.analyze(Base);

  Program Edited = parse(editableSourceWiderBound());
  ReanalyzeStats RS;
  AnalysisResult Spliced = Session.reanalyze(Edited, Before, &RS);

  // Pairs wholly inside the untouched first nest are reused; pairs
  // touching the widened loop are re-run.
  EXPECT_GT(RS.PairsReused, 0u);
  EXPECT_GT(RS.PairsInvalidated, 0u);

  DependenceAnalyzer FreshAnalyzer(directionOptions());
  Program FreshProg = parse(editableSourceWiderBound());
  AnalysisResult Fresh = FreshAnalyzer.analyze(FreshProg);
  EXPECT_EQ(renderAll(Edited, Spliced,
                      DependenceGraph::buildFromResult(Spliced)),
            renderAll(FreshProg, Fresh,
                      DependenceGraph::buildFromResult(Fresh)));
}

TEST(Incremental, SessionTracksInsertAndDelete) {
  IncrementalSession Session{directionOptions()};
  EXPECT_FALSE(Session.hasProgram());

  ReanalyzeStats First = Session.update(parse(editableSource()));
  ASSERT_TRUE(Session.hasProgram());
  EXPECT_EQ(First.PairsInvalidated, First.PairsTotal);
  uint64_t BasePairs = First.PairsTotal;

  // Delete the second nest entirely: the survivors splice, the
  // vanished pairs surface as stale memo keys.
  ReanalyzeStats Deleted =
      Session.update(parse("program edits\n"
                           "  array a[100]\n"
                           "  array b[100]\n"
                           "  for i = 1 to 10 do\n"
                           "    a[i + 1] = a[i] + 1\n"
                           "    b[2 * i] = b[2 * i + 1] + a[i]\n"
                           "  end\n"
                           "end\n"));
  EXPECT_LT(Deleted.PairsTotal, BasePairs);
  EXPECT_EQ(Deleted.PairsReused, Deleted.PairsTotal);
  EXPECT_EQ(Deleted.PairsInvalidated, 0u);

  // Re-insert it: the restored pairs are the only fresh work.
  ReanalyzeStats Restored = Session.update(parse(editableSource()));
  EXPECT_EQ(Restored.PairsTotal, BasePairs);
  EXPECT_GT(Restored.PairsInvalidated, 0u);
  EXPECT_GT(Restored.PairsReused, 0u);

  // And the live graph matches a from-scratch build at every step.
  DependenceAnalyzer FreshAnalyzer(directionOptions());
  Program FreshProg = parse(editableSource());
  DependenceGraph Fresh =
      DependenceGraph::build(FreshProg, FreshAnalyzer);
  EXPECT_EQ(Session.graph().str(Session.program()),
            Fresh.str(FreshProg));
}

TEST(Incremental, RandomEditSequenceStaysIdentical) {
  // A deterministic mini version of the fuzzer's incr axis: apply a
  // few generator edits, re-parsing after each, and hold the spliced
  // graph to the from-scratch one.
  IncrementalSession Session{directionOptions()};
  Program Master = parse(editableSource());
  Session.update(Program(Master));

  SplitRng Rng(7);
  for (int Step = 0; Step < 6; ++Step) {
    std::string Desc = applyRandomEdit(Master, Rng);
    ParseResult Reparsed = parseProgram(Master.print());
    ASSERT_TRUE(Reparsed.succeeded()) << Desc << "\n" << Master.print();
    Master = std::move(*Reparsed.Prog);
    Session.update(Program(Master));

    DependenceAnalyzer FreshAnalyzer(directionOptions());
    Program FreshProg = parse(Master.print());
    DependenceGraph Fresh =
        DependenceGraph::build(FreshProg, FreshAnalyzer);
    ASSERT_EQ(Session.graph().str(Session.program()),
              Fresh.str(FreshProg))
        << "step " << Step << " (" << Desc << ")";
  }
}

TEST(Incremental, PerfectSingleEditRerunsUnderTenPercent) {
  // The acceptance criterion for the edit loop, on the synthetic
  // PERFECT-style workload: a one-statement subscript edit re-runs
  // fewer than 10% of the reference pairs. Counters, not wall time.
  GeneratorOptions GO;
  GO.Seed = 42;
  GO.Scale = 0.25;
  GO.MaxWrapDepth = 3;
  std::string Source =
      generateProgramSource(perfectClubProfiles().front(), GO);

  IncrementalSession Session{directionOptions()};
  Program Master = parse(Source);
  Session.update(Program(Master));

  // Find a deterministic seed whose edit is a single-statement
  // subscript change (the edit kinds are seed-driven).
  ReanalyzeStats RS;
  bool Found = false;
  for (uint64_t Seed = 1; Seed < 64 && !Found; ++Seed) {
    Program Candidate(Master);
    SplitRng Rng(Seed);
    std::string Desc = applyRandomEdit(Candidate, Rng);
    if (Desc.rfind("subscript", 0) != 0)
      continue;
    ParseResult Reparsed = parseProgram(Candidate.print());
    ASSERT_TRUE(Reparsed.succeeded());
    RS = Session.update(std::move(*Reparsed.Prog));
    Found = true;
  }
  ASSERT_TRUE(Found) << "no subscript edit among the probed seeds";
  ASSERT_GT(RS.PairsTotal, 20u) << "workload too small to be meaningful";
  EXPECT_LT(RS.PairsInvalidated * 10, RS.PairsTotal)
      << RS.PairsInvalidated << " of " << RS.PairsTotal
      << " pairs re-ran";
}

TEST(Incremental, StaleKeysFeedCacheInvalidation) {
  DependenceAnalyzer Session(directionOptions());
  Program Base = parse(editableSource());
  AnalysisResult Before = Session.analyze(Base);

  // Deleting the second nest orphans its pair keys.
  Program Edited = parse("program edits\n"
                         "  array a[100]\n"
                         "  array b[100]\n"
                         "  for i = 1 to 10 do\n"
                         "    a[i + 1] = a[i] + 1\n"
                         "    b[2 * i] = b[2 * i + 1] + a[i]\n"
                         "  end\n"
                         "end\n");
  ReanalyzeStats RS;
  Session.reanalyze(Edited, Before, &RS);
  EXPECT_FALSE(RS.StaleKeys.empty());
  // The keys are sorted and unique, ready for invalidateFingerprints.
  for (size_t I = 1; I < RS.StaleKeys.size(); ++I)
    EXPECT_LT(RS.StaleKeys[I - 1], RS.StaleKeys[I]);
  // Feeding them back drops only entries tagged with dead pair keys.
  uint64_t Removed = Session.cache().invalidateFingerprints(RS.StaleKeys);
  EXPECT_GT(Removed, 0u);
}
