//===- tests/analysis/AnalyzerTest.cpp - Analyzer tests -------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

AnalysisResult analyzeSource(const std::string &Source,
                             AnalyzerOptions Opts = {}) {
  Program P = mustParse(Source, /*Prepass=*/false);
  DependenceAnalyzer Analyzer(Opts);
  return Analyzer.analyze(P);
}

} // namespace

TEST(Analyzer, IndependentLoopPairs) {
  AnalysisResult R = analyzeSource(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i + 10] + 3
  end
end
)");
  // Pairs: write/write self (dependent only at i == i', fine) and
  // write/read (independent).
  ASSERT_EQ(R.Pairs.size(), 2u);
  EXPECT_EQ(R.Pairs[0].Answer, DepAnswer::Dependent); // self pair
  EXPECT_EQ(R.Pairs[1].Answer, DepAnswer::Independent);
  EXPECT_EQ(R.Pairs[1].DecidedBy, TestKind::Svpc);
  EXPECT_EQ(R.PairsConsidered, 2u);
  EXPECT_EQ(R.UnanalyzablePairs, 0u);
}

TEST(Analyzer, ReadReadPairsSkipped) {
  AnalysisResult R = analyzeSource(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    b[i] = a[i] + a[i + 1]
  end
end
)");
  // a is only read: the two a reads form no pair; b write self-pair
  // remains.
  EXPECT_EQ(R.PairsConsidered, 1u);
}

TEST(Analyzer, DifferentArraysNotPaired) {
  AnalysisResult R = analyzeSource(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = b[i]
    b[i] = 3
  end
end
)");
  // Pairs: a-self, b-self, b-write/b-read.
  EXPECT_EQ(R.PairsConsidered, 3u);
}

TEST(Analyzer, MemoizationCollapsesDuplicates) {
  // Five copies of the same loop shape over five distinct arrays (the
  // memo key is the problem's shape, not the array's identity).
  std::string Source = "program s\n";
  for (int K = 0; K < 5; ++K)
    Source += "  array a" + std::to_string(K) + "[100]\n";
  for (int K = 0; K < 5; ++K) {
    std::string A = "a" + std::to_string(K);
    Source += "  for i = 1 to 10 do\n    " + A + "[i + 1] = " + A +
              "[i]\n  end\n";
  }
  Source += "end\n";

  AnalyzerOptions Memoized;
  AnalysisResult R1 = analyzeSource(Source, Memoized);
  // 5 copies x 2 pairs each; only the first copy runs tests.
  EXPECT_EQ(R1.PairsConsidered, 10u);
  EXPECT_EQ(R1.Stats.totalDecided(), 2u);
  EXPECT_EQ(R1.Stats.MemoHitsFull, 8u);

  AnalyzerOptions Plain;
  Plain.UseMemoization = false;
  AnalysisResult R2 = analyzeSource(Source, Plain);
  EXPECT_EQ(R2.Stats.totalDecided(), 10u);
  EXPECT_EQ(R2.Stats.MemoHitsFull, 0u);
}

TEST(Analyzer, GcdCacheSharesAcrossBounds) {
  // Same equations under different bounds: the no-bounds table answers
  // the second one.
  AnalysisResult R = analyzeSource(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[2 * i] = a[2 * i + 1]
  end
  for i = 1 to 77 do
    b[2 * i] = b[2 * i + 1]
  end
end
)");
  // Two no-bounds hits: the second program's self pair (equations
  // solvable) and its cross pair (equations unsolvable, answered
  // without running any test).
  EXPECT_EQ(R.Stats.MemoHitsNoBounds, 2u);
  // Both reported independent by GCD.
  unsigned GcdIndependent = 0;
  for (const DependencePair &Pair : R.Pairs)
    if (Pair.Answer == DepAnswer::Independent &&
        Pair.DecidedBy == TestKind::GcdTest)
      ++GcdIndependent;
  EXPECT_EQ(GcdIndependent, 2u);
}

TEST(Analyzer, UnanalyzableCounted) {
  AnalysisResult R = analyzeSource(R"(program s
  array a[100]
  array idx[100]
  for i = 1 to 10 do
    a[idx[i]] = a[i]
  end
end
)");
  EXPECT_GT(R.UnanalyzablePairs, 0u);
  bool FoundUnknown = false;
  for (const DependencePair &Pair : R.Pairs)
    if (Pair.DecidedBy == TestKind::Unanalyzable) {
      EXPECT_EQ(Pair.Answer, DepAnswer::Unknown);
      EXPECT_FALSE(Pair.Exact);
      FoundUnknown = true;
    }
  EXPECT_TRUE(FoundUnknown);
}

TEST(Analyzer, DirectionsComputedOnDemand) {
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  AnalysisResult R = analyzeSource(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i]
  end
end
)",
                                   Opts);
  bool FoundFlow = false;
  for (const DependencePair &Pair : R.Pairs) {
    if (Pair.Answer != DepAnswer::Dependent)
      continue;
    ASSERT_TRUE(Pair.Directions.has_value());
    for (const DirVector &V : Pair.Directions->Vectors)
      if (V == DirVector{Dir::Less})
        FoundFlow = true;
  }
  EXPECT_TRUE(FoundFlow);
}

TEST(Analyzer, DirectionCacheReused) {
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  std::string Source = R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i + 1] = a[i]
  end
  for i = 1 to 10 do
    b[i + 1] = b[i]
  end
end
)";
  AnalysisResult R = analyzeSource(Source, Opts);
  EXPECT_GT(R.Stats.MemoHitsFull, 0u);
  // Both pairs carry identical vectors.
  std::vector<const DependencePair *> Flow;
  for (const DependencePair &Pair : R.Pairs)
    if (!Pair.CommonLoops.empty() &&
        Pair.Answer == DepAnswer::Dependent && Pair.Directions &&
        !Pair.Directions->Vectors.empty() &&
        Pair.Directions->Vectors[0] == DirVector{Dir::Less})
      Flow.push_back(&Pair);
  EXPECT_EQ(Flow.size(), 2u);
}

TEST(Analyzer, CachePersistsAcrossPrograms) {
  AnalyzerOptions Opts;
  DependenceAnalyzer Analyzer(Opts);
  std::string Source = R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i]
  end
end
)";
  Program P1 = mustParse(Source, false);
  AnalysisResult R1 = Analyzer.analyze(P1);
  EXPECT_EQ(R1.Stats.MemoHitsFull, 0u);
  Program P2 = mustParse(Source, false);
  AnalysisResult R2 = Analyzer.analyze(P2);
  EXPECT_EQ(R2.Stats.MemoHitsFull, 2u);
  EXPECT_EQ(R2.Stats.totalDecided(), 0u);
}

TEST(Analyzer, PrepassEnablesAnalysis) {
  std::string Source = R"(program s
  array a[500]
  k = 0
  for i = 1 to 10 do
    k = k + 2
    a[k] = a[k + 3]
  end
end
)";
  AnalyzerOptions NoPrepass;
  NoPrepass.RunPrepass = false;
  AnalysisResult R1 = analyzeSource(Source, NoPrepass);
  EXPECT_GT(R1.UnanalyzablePairs, 0u);

  AnalysisResult R2 = analyzeSource(Source);
  EXPECT_EQ(R2.UnanalyzablePairs, 0u);
}

TEST(Analyzer, SymbolicProgram) {
  AnalysisResult R = analyzeSource(R"(program s
  array a[500]
  read n
  for i = 1 to 10 do
    a[i + n] = a[i + 2 * n + 1]
  end
end
)");
  ASSERT_EQ(R.Pairs.size(), 2u);
  for (const DependencePair &Pair : R.Pairs)
    EXPECT_NE(Pair.Answer, DepAnswer::Unknown);
}
