//===- tests/analysis/FusionTest.cpp - Loop fusion legality tests ---------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"

#include "analysis/Interp.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

struct TwoLoops {
  Program Prog;
  LoopStmt *First = nullptr;
  LoopStmt *Second = nullptr;
};

TwoLoops parseTwo(const std::string &Source) {
  TwoLoops T;
  T.Prog = mustParse(Source, /*Prepass=*/false);
  for (StmtPtr &S : T.Prog.body()) {
    if (S->kind() != StmtKind::Loop)
      continue;
    if (!T.First)
      T.First = &asLoop(*S);
    else if (!T.Second)
      T.Second = &asLoop(*S);
  }
  return T;
}

} // namespace

TEST(Fusion, LegalProducerConsumer) {
  // Second loop reads exactly what the same iteration of the first
  // wrote: fusion keeps the producer before the consumer.
  TwoLoops T = parseTwo(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = i
  end
  for i = 1 to 10 do
    b[i] = a[i] + 1
  end
end
)");
  ASSERT_NE(T.Second, nullptr);
  EXPECT_TRUE(canFuse(T.Prog, T.First, T.Second).Legal);
}

TEST(Fusion, IllegalForwardRead) {
  // Second loop reads a[i+1], written by a *later* iteration of the
  // first loop: post-fusion iteration i would read before the write —
  // the textbook fusion-preventing dependence.
  TwoLoops T = parseTwo(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = i
  end
  for i = 1 to 10 do
    b[i] = a[i + 1] + 1
  end
end
)");
  ASSERT_NE(T.Second, nullptr);
  LegalityResult R = canFuse(T.Prog, T.First, T.Second);
  EXPECT_FALSE(R.Legal);
  ASSERT_FALSE(R.Violation.empty());
  EXPECT_EQ(R.Violation.back(), Dir::Greater);
}

TEST(Fusion, LegalBackwardRead) {
  // Reading a[i-1] is fine: the producer iteration is earlier either
  // way.
  TwoLoops T = parseTwo(R"(program s
  array a[100]
  array b[100]
  for i = 2 to 10 do
    a[i] = i
  end
  for i = 2 to 10 do
    b[i] = a[i - 1] + 1
  end
end
)");
  EXPECT_TRUE(canFuse(T.Prog, T.First, T.Second).Legal);
}

TEST(Fusion, IllegalWriteAfterRead) {
  // First loop reads a[i+1]; second loop writes a[i]. Fusing would
  // make iteration i+1's write precede iteration i+1's... the read of
  // a[i+1] at iteration i must still see the *old* value, but after
  // fusion the write a[i+1] (iteration i+1) runs after the read
  // (iteration i) — that is fine; the violation needs the write at an
  // iteration i2 < i1. Writing a[i-1] in the second loop creates it.
  TwoLoops T = parseTwo(R"(program s
  array a[100]
  array b[100]
  for i = 2 to 10 do
    b[i] = a[i] + 1
  end
  for i = 2 to 10 do
    a[i - 2] = i
  end
end
)");
  ASSERT_NE(T.Second, nullptr);
  // Pre-fusion: every read of a[i] sees the original values. Fused,
  // iteration i reads a[i] but iteration i-... the write a[i-2] at
  // iteration i+2 > i comes later -> fine; the dangerous direction is
  // the write at iteration i2 with i2 - 2 == i1 and i2 < ... i2 =
  // i1 + 2 > i1, so actually legal. Verify via the interpreter that
  // legality and semantics agree.
  LegalityResult R = canFuse(T.Prog, T.First, T.Second);
  // Anti dependence with the write strictly later: legal.
  EXPECT_TRUE(R.Legal);

  // Now the reverse offset: the second loop writes a[i+2], i.e. the
  // value read by a *later* iteration of the first loop; fused, the
  // write at i2 happens before the read at i1 = i2 + 2 — it clobbers.
  TwoLoops U = parseTwo(R"(program s
  array a[100]
  array b[100]
  for i = 2 to 10 do
    b[i] = a[i] + 1
  end
  for i = 2 to 10 do
    a[i + 2] = i
  end
end
)");
  EXPECT_FALSE(canFuse(U.Prog, U.First, U.Second).Legal);
}

TEST(Fusion, LegalityAgreesWithInterpreter) {
  // For a spread of offsets, canFuse must say legal exactly when
  // fusing preserves the memory image.
  for (int64_t Offset = -3; Offset <= 3; ++Offset) {
    std::string Source = R"(program s
  array a[100]
  array b[100]
  for i = 4 to 12 do
    a[i] = i
  end
  for i = 4 to 12 do
    b[i] = a[i + )" + std::to_string(Offset >= 0 ? Offset : -Offset) +
                         std::string(Offset >= 0 ? "" : " - 2 * " +
                                     std::to_string(-Offset)) +
                         R"(] + 1
  end
end
)";
    // Build "i + k" or "i + k - 2k" = i - k.
    TwoLoops T = parseTwo(Source);
    ASSERT_NE(T.Second, nullptr) << Source;
    bool Legal = canFuse(T.Prog, T.First, T.Second).Legal;

    Program Fused(T.Prog);
    // Re-locate loops in the copy and fuse.
    std::vector<StmtPtr> &Body = Fused.body();
    unsigned FirstIdx = 0;
    while (Body[FirstIdx]->kind() != StmtKind::Loop)
      ++FirstIdx;
    ASSERT_TRUE(fuseLoops(Fused, Body, FirstIdx));

    InterpResult Before = interpret(T.Prog);
    InterpResult After = interpret(Fused);
    ASSERT_TRUE(Before.Ok);
    ASSERT_TRUE(After.Ok);
    bool SameSemantics = Before.Memory == After.Memory;
    // Legality implies preservation; illegality must correspond to an
    // actual change for these offsets (reads of written cells).
    if (Legal)
      EXPECT_TRUE(SameSemantics) << "offset " << Offset;
    else
      EXPECT_FALSE(SameSemantics) << "offset " << Offset;
  }
}

TEST(Fusion, FuseLoopsStructuralChecks) {
  TwoLoops T = parseTwo(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = 1
  end
  for j = 1 to 9 do
    a[j] = 2
  end
end
)");
  // Different upper bounds: refuse.
  EXPECT_FALSE(fuseLoops(T.Prog, T.Prog.body(), 0));

  TwoLoops U = parseTwo(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = 1
  end
  for j = 1 to 10 do
    b[j] = a[j] + 1
  end
end
)");
  ASSERT_TRUE(canFuse(U.Prog, U.First, U.Second).Legal);
  ASSERT_TRUE(fuseLoops(U.Prog, U.Prog.body(), 0));
  // One loop left, with both statements, j rewritten to i.
  unsigned Loops = 0;
  for (const StmtPtr &S : U.Prog.body())
    if (S->kind() == StmtKind::Loop)
      ++Loops;
  EXPECT_EQ(Loops, 1u);
  const LoopStmt &Fused = asLoop(*U.Prog.body()[0]);
  EXPECT_EQ(Fused.body().size(), 2u);
  const AssignStmt &Moved = asAssign(*Fused.body()[1]);
  EXPECT_TRUE(Moved.rhs()->references(Fused.varId()));
}

TEST(Fusion, InterpreterConfirmsFusedProgram) {
  TwoLoops T = parseTwo(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = 2 * i
  end
  for i = 1 to 10 do
    b[i] = a[i] + 1
  end
end
)");
  ASSERT_TRUE(canFuse(T.Prog, T.First, T.Second).Legal);
  Program Fused(T.Prog);
  ASSERT_TRUE(fuseLoops(Fused, Fused.body(), 0));
  InterpResult Before = interpret(T.Prog);
  InterpResult After = interpret(Fused);
  ASSERT_TRUE(Before.Ok);
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(Before.Memory, After.Memory);
}
