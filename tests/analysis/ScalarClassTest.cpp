//===- tests/analysis/ScalarClassTest.cpp - Scalar classification ---------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallelizer client must not stop at array dependences: scalars
/// assigned in a loop body serialize it unless they are privatizable
/// or reductions. These tests pin the classification and its effect on
/// parallelization.
///
//===----------------------------------------------------------------------===//

#include "analysis/Parallelizer.h"

#include "testutil/Helpers.h"
#include "gtest/gtest.h"

#include <map>

using namespace edda;
using namespace edda::testutil;

namespace {

std::map<std::string, ScalarClass>
classesOf(const std::string &Source, bool Prepass = false) {
  Program P = mustParse(Source, Prepass);
  const LoopStmt *Loop = nullptr;
  for (const StmtPtr &S : P.body())
    if (S->kind() == StmtKind::Loop) {
      Loop = &asLoop(*S);
      break;
    }
  std::map<std::string, ScalarClass> Out;
  if (!Loop)
    return Out;
  for (const auto &[Var, Class] : classifyScalars(P, *Loop))
    Out[P.var(Var).Name] = Class;
  return Out;
}

bool firstLoopParallel(const std::string &Source,
                       ParallelizeSummary *Summary = nullptr) {
  Program P = mustParse(Source, /*Prepass=*/false);
  DependenceAnalyzer Analyzer;
  ParallelizeSummary S = parallelize(P, Analyzer);
  if (Summary)
    *Summary = S;
  for (const StmtPtr &Stmt : P.body())
    if (Stmt->kind() == StmtKind::Loop)
      return asLoop(*Stmt).isParallel();
  return false;
}

} // namespace

TEST(ScalarClass, SumReduction) {
  auto C = classesOf(R"(program s
  array a[100]
  s = 0
  for i = 1 to 10 do
    s = s + a[i]
  end
end
)");
  EXPECT_EQ(C.at("s"), ScalarClass::Reduction);
}

TEST(ScalarClass, ProductAndSubtractionReductions) {
  auto C = classesOf(R"(program s
  array a[100]
  p = 1
  d = 0
  for i = 1 to 10 do
    p = p * 2
    d = d - a[i]
  end
end
)");
  EXPECT_EQ(C.at("p"), ScalarClass::Reduction);
  EXPECT_EQ(C.at("d"), ScalarClass::Reduction);
}

TEST(ScalarClass, NestedReduction) {
  // The update sits in an inner loop; the outer loop is still a
  // reduction.
  auto C = classesOf(R"(program s
  array a[100][100]
  s = 0
  for i = 1 to 10 do
    for j = 1 to 10 do
      s = s + a[i][j]
    end
  end
end
)");
  EXPECT_EQ(C.at("s"), ScalarClass::Reduction);
}

TEST(ScalarClass, MixedOperatorsNotAReduction) {
  auto C = classesOf(R"(program s
  array a[100]
  s = 0
  for i = 1 to 10 do
    s = s + a[i]
    s = s * 2
  end
end
)");
  EXPECT_EQ(C.at("s"), ScalarClass::Carried);
}

TEST(ScalarClass, ReductionValueUsedInBodyIsCarried) {
  auto C = classesOf(R"(program s
  array a[100]
  array b[100]
  s = 0
  for i = 1 to 10 do
    s = s + a[i]
    b[i] = s
  end
end
)");
  EXPECT_EQ(C.at("s"), ScalarClass::Carried);
}

TEST(ScalarClass, PrivateTemporary) {
  auto C = classesOf(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    t = a[i] + 1
    b[i] = t * t
  end
end
)");
  EXPECT_EQ(C.at("t"), ScalarClass::Private);
}

TEST(ScalarClass, ReadBeforeWriteIsCarried) {
  auto C = classesOf(R"(program s
  array a[100]
  t = 5
  for i = 1 to 10 do
    a[i] = t
    t = a[i] + 1
  end
end
)");
  EXPECT_EQ(C.at("t"), ScalarClass::Carried);
}

TEST(ScalarClass, ConditionalWriteInNestedLoopIsCarried) {
  // The nested loop may run zero times, so the write is not definite.
  auto C = classesOf(R"(program s
  array a[100]
  array b[100]
  read n
  t = 0
  for i = 1 to 10 do
    for j = 1 to n do
      t = i + j
    end
    b[i] = t
  end
end
)");
  EXPECT_EQ(C.at("t"), ScalarClass::Carried);
}

TEST(ScalarClass, ParallelizerSerializesCarriedScalars) {
  // Running max: genuinely sequential (not a recognized reduction).
  EXPECT_FALSE(firstLoopParallel(R"(program s
  array a[100]
  array b[100]
  m = 0
  for i = 1 to 10 do
    m = m + b[i] * m
    a[i] = m
  end
end
)"));
}

TEST(ScalarClass, ParallelizerAllowsReductions) {
  ParallelizeSummary Summary;
  EXPECT_TRUE(firstLoopParallel(R"(program s
  array a[100]
  s = 0
  for i = 1 to 10 do
    s = s + a[i]
  end
end
)",
                                &Summary));
  EXPECT_EQ(Summary.LoopsWithReductions, 1u);
}

TEST(ScalarClass, ParallelizerAllowsPrivates) {
  ParallelizeSummary Summary;
  EXPECT_TRUE(firstLoopParallel(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    t = a[i] * 2
    b[i] = t + 1
  end
end
)",
                                &Summary));
  EXPECT_EQ(Summary.LoopsWithReductions, 0u);
}

TEST(ScalarClass, InductionRemnantStaysParallelAfterPrepass) {
  // After the prepass rewrites uses, the increment's stored value no
  // longer feeds anything in the loop; the loop must stay parallel.
  Program P = mustParse(R"(program s
  array a[500]
  k = 0
  for i = 1 to 10 do
    k = k + 2
    a[k] = i
  end
end
)");
  DependenceAnalyzer Analyzer;
  ParallelizeSummary Summary = parallelize(P, Analyzer);
  EXPECT_EQ(Summary.LoopsParallel, 1u);
}
