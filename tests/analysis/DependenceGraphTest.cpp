//===- tests/analysis/DependenceGraphTest.cpp - Graph tests ---------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"

#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

DependenceGraph graphOf(const std::string &Source, Program &Prog) {
  Prog = mustParse(Source, /*Prepass=*/false);
  DependenceAnalyzer Analyzer;
  return DependenceGraph::build(Prog, Analyzer);
}

const DepEdge *findEdge(const DependenceGraph &G, DepEdgeKind Kind) {
  for (const DepEdge &E : G.edges())
    if (E.Kind == Kind)
      return &E;
  return nullptr;
}

} // namespace

TEST(DependenceGraph, FlowEdgeWithDistance) {
  Program Prog;
  DependenceGraph G = graphOf(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i]
  end
end
)",
                              Prog);
  const DepEdge *Flow = findEdge(G, DepEdgeKind::Flow);
  ASSERT_NE(Flow, nullptr);
  EXPECT_TRUE(G.refs()[Flow->Src].IsWrite);
  EXPECT_FALSE(G.refs()[Flow->Dst].IsWrite);
  ASSERT_EQ(Flow->Vectors.size(), 1u);
  EXPECT_EQ(Flow->Vectors[0], (DirVector{Dir::Less}));
  ASSERT_EQ(Flow->Distances.size(), 1u);
  ASSERT_TRUE(Flow->Distances[0].has_value());
  EXPECT_EQ(*Flow->Distances[0], 1);
  EXPECT_TRUE(Flow->Exact);
}

TEST(DependenceGraph, AntiEdgeNormalizedFromGreater) {
  // a[i] = a[i+1]: the read of iteration i touches what iteration i+1
  // writes — the raw pair reports (>), the graph stores an anti edge
  // read -> write with (<).
  Program Prog;
  DependenceGraph G = graphOf(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i + 1]
  end
end
)",
                              Prog);
  const DepEdge *Anti = findEdge(G, DepEdgeKind::Anti);
  ASSERT_NE(Anti, nullptr);
  EXPECT_FALSE(G.refs()[Anti->Src].IsWrite);
  EXPECT_TRUE(G.refs()[Anti->Dst].IsWrite);
  ASSERT_EQ(Anti->Vectors.size(), 1u);
  EXPECT_EQ(Anti->Vectors[0], (DirVector{Dir::Less}));
  ASSERT_TRUE(Anti->Distances[0].has_value());
  EXPECT_EQ(*Anti->Distances[0], 1);
}

TEST(DependenceGraph, LoopIndependentAntiOrientation) {
  // a[i] = a[i] + 1: within one iteration the read executes before the
  // write -> anti edge with (=).
  Program Prog;
  DependenceGraph G = graphOf(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i] + 1
  end
end
)",
                              Prog);
  const DepEdge *Anti = findEdge(G, DepEdgeKind::Anti);
  ASSERT_NE(Anti, nullptr);
  EXPECT_FALSE(G.refs()[Anti->Src].IsWrite);
  EXPECT_EQ(Anti->Vectors[0], (DirVector{Dir::Equal}));
  EXPECT_EQ(findEdge(G, DepEdgeKind::Flow), nullptr);
}

TEST(DependenceGraph, OutputSelfEdgeSkipsTrivialEqual) {
  // a[j] written by every i iteration: output edge carried by i; the
  // trivial same-iteration "dependence" is not an edge.
  Program Prog;
  DependenceGraph G = graphOf(R"(program s
  array a[100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[j] = i
    end
  end
end
)",
                              Prog);
  const DepEdge *Output = findEdge(G, DepEdgeKind::Output);
  ASSERT_NE(Output, nullptr);
  EXPECT_EQ(Output->Src, Output->Dst);
  for (const DirVector &V : Output->Vectors) {
    bool AllEqual = true;
    for (Dir D : V)
      AllEqual = AllEqual && D == Dir::Equal;
    EXPECT_FALSE(AllEqual);
  }
}

TEST(DependenceGraph, CarriesMatchesParallelizer) {
  Program Prog = mustParse(R"(program s
  array a[20][20]
  for i = 2 to 10 do
    for j = 1 to 10 do
      a[i][j] = a[i - 1][j] + 1
    end
  end
end
)",
                           /*Prepass=*/false);
  DependenceAnalyzer Analyzer;
  DependenceGraph G = DependenceGraph::build(Prog, Analyzer);
  // Locate the loops.
  const LoopStmt &I = asLoop(*Prog.body()[0]);
  const LoopStmt &J = asLoop(*I.body()[0]);
  EXPECT_TRUE(G.carries(&I));
  EXPECT_FALSE(G.carries(&J));
  EXPECT_FALSE(G.edgesUnder(&I).empty());
}

TEST(DependenceGraph, UnanalyzableGetsConservativeEdges) {
  Program Prog;
  DependenceGraph G = graphOf(R"(program s
  array a[100]
  array idx[100]
  for i = 1 to 10 do
    a[idx[i]] = a[i]
  end
end
)",
                              Prog);
  bool FoundInexact = false;
  for (const DepEdge &E : G.edges())
    FoundInexact = FoundInexact || !E.Exact;
  EXPECT_TRUE(FoundInexact);
  const LoopStmt &I = asLoop(*Prog.body()[0]);
  EXPECT_TRUE(G.carries(&I));
}

TEST(DependenceGraph, IndependentPairsProduceNoEdges) {
  Program Prog;
  DependenceGraph G = graphOf(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i + 10]
  end
end
)",
                              Prog);
  // Only the output self pair could contribute, and a[i] vs itself has
  // only the trivial '=' which is skipped.
  EXPECT_TRUE(G.edges().empty());
}

TEST(DependenceGraph, StrSmoke) {
  Program Prog;
  DependenceGraph G = graphOf(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i]
  end
end
)",
                              Prog);
  std::string S = G.str(Prog);
  EXPECT_NE(S.find("flow"), std::string::npos);
  EXPECT_NE(S.find("(<)"), std::string::npos);
}

TEST(DependenceGraph, HelperFunctions) {
  EXPECT_TRUE(leadingDirectionIsReversed({Dir::Equal, Dir::Greater}));
  EXPECT_FALSE(leadingDirectionIsReversed({Dir::Less, Dir::Greater}));
  EXPECT_FALSE(leadingDirectionIsReversed({Dir::Equal, Dir::Equal}));
  EXPECT_EQ(flipVector({Dir::Less, Dir::Equal, Dir::Greater}),
            (DirVector{Dir::Greater, Dir::Equal, Dir::Less}));
  EXPECT_STREQ(depEdgeKindName(DepEdgeKind::Flow), "flow");
  EXPECT_STREQ(depEdgeKindName(DepEdgeKind::Anti), "anti");
  EXPECT_STREQ(depEdgeKindName(DepEdgeKind::Output), "output");
}
