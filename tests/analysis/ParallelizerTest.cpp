//===- tests/analysis/ParallelizerTest.cpp - Parallelizer tests -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Parallelizer.h"

#include "testutil/Helpers.h"
#include "gtest/gtest.h"

#include <functional>

using namespace edda;
using namespace edda::testutil;

namespace {

/// Runs the parallelizer and returns the program (mutated in place).
Program parallelized(const std::string &Source,
                     ParallelizeSummary *Summary = nullptr) {
  Program P = mustParse(Source, /*Prepass=*/false);
  DependenceAnalyzer Analyzer;
  ParallelizeSummary S = parallelize(P, Analyzer);
  if (Summary)
    *Summary = S;
  return P;
}

const LoopStmt &loopNamed(const Program &P, const std::string &Name) {
  unsigned Var = *P.lookupVar(Name);
  const LoopStmt *Found = nullptr;
  std::function<void(const std::vector<StmtPtr> &)> Walk =
      [&](const std::vector<StmtPtr> &Body) {
        for (const StmtPtr &S : Body) {
          if (S->kind() != StmtKind::Loop)
            continue;
          const LoopStmt &L = asLoop(*S);
          if (L.varId() == Var)
            Found = &L;
          Walk(L.body());
        }
      };
  Walk(P.body());
  EXPECT_NE(Found, nullptr) << "loop " << Name << " not found";
  return *Found;
}

} // namespace

TEST(Parallelizer, PaperIntroExamples) {
  // First intro loop: fully parallel; second: serial.
  ParallelizeSummary S;
  Program P = parallelized(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 10 do
    a[i] = a[i + 10] + 3
  end
  for j = 1 to 10 do
    b[j + 1] = b[j] + 3
  end
end
)",
                           &S);
  EXPECT_TRUE(loopNamed(P, "i").isParallel());
  EXPECT_FALSE(loopNamed(P, "j").isParallel());
  EXPECT_EQ(S.LoopsTotal, 2u);
  EXPECT_EQ(S.LoopsParallel, 1u);
}

TEST(Parallelizer, EqualDirectionDoesNotSerialize) {
  // a[i] = a[i] + 1: dependence with direction '=' only.
  Program P = parallelized(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i] + 1
  end
end
)");
  EXPECT_TRUE(loopNamed(P, "i").isParallel());
}

TEST(Parallelizer, OuterCarriedInnerParallel) {
  // a[i][j] = a[i-1][j]: carried by i, j parallel.
  Program P = parallelized(R"(program s
  array a[20][20]
  for i = 2 to 10 do
    for j = 1 to 10 do
      a[i][j] = a[i - 1][j] + 1
    end
  end
end
)");
  EXPECT_FALSE(loopNamed(P, "i").isParallel());
  EXPECT_TRUE(loopNamed(P, "j").isParallel());
}

TEST(Parallelizer, InnerCarriedOuterParallel) {
  Program P = parallelized(R"(program s
  array a[20][20]
  for i = 1 to 10 do
    for j = 2 to 10 do
      a[i][j] = a[i][j - 1] + 1
    end
  end
end
)");
  EXPECT_TRUE(loopNamed(P, "i").isParallel());
  EXPECT_FALSE(loopNamed(P, "j").isParallel());
}

TEST(Parallelizer, UnusedLoopSerializedByCarriedScalarPattern) {
  // a[j] = a[j] + 1 inside an i loop: every i iteration touches the
  // same elements -> i is carried (direction '*' at i's level).
  Program P = parallelized(R"(program s
  array a[100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[j] = a[j] + 1
    end
  end
end
)");
  EXPECT_FALSE(loopNamed(P, "i").isParallel());
  EXPECT_TRUE(loopNamed(P, "j").isParallel());
}

TEST(Parallelizer, UnanalyzableSerializesConservatively) {
  Program P = parallelized(R"(program s
  array a[100]
  array idx[100]
  for i = 1 to 10 do
    a[idx[i]] = a[i] + 1
  end
end
)");
  EXPECT_FALSE(loopNamed(P, "i").isParallel());
}

TEST(Parallelizer, StencilExample) {
  // Jacobi-style: reads of the previous array only; fully parallel.
  Program P = parallelized(R"(program s
  array next[100][100]
  array prev[100][100]
  for i = 2 to 99 do
    for j = 2 to 99 do
      next[i][j] = prev[i - 1][j] + prev[i + 1][j] + prev[i][j - 1] + prev[i][j + 1]
    end
  end
end
)");
  EXPECT_TRUE(loopNamed(P, "i").isParallel());
  EXPECT_TRUE(loopNamed(P, "j").isParallel());
}

TEST(Parallelizer, WavefrontSerializesBothLevels) {
  // a[i][j] = a[i-1][j-1]: carried by the outer loop; inner is then
  // parallel for fixed i? The dependence (i-1, j-1) -> (i, j) has
  // vector (<, <): carried at level 0 only, so j stays parallel.
  Program P = parallelized(R"(program s
  array a[20][20]
  for i = 2 to 10 do
    for j = 2 to 10 do
      a[i][j] = a[i - 1][j - 1] + 1
    end
  end
end
)");
  EXPECT_FALSE(loopNamed(P, "i").isParallel());
  EXPECT_TRUE(loopNamed(P, "j").isParallel());
}

TEST(CarriedAt, DirectionVectorSemantics) {
  EXPECT_TRUE(carriedAt({Dir::Less}, 0));
  EXPECT_FALSE(carriedAt({Dir::Equal}, 0));
  EXPECT_TRUE(carriedAt({Dir::Equal, Dir::Less}, 1));
  EXPECT_FALSE(carriedAt({Dir::Less, Dir::Less}, 1)); // outer-carried
  EXPECT_TRUE(carriedAt({Dir::Any, Dir::Less}, 1));   // '*' may be '='
  EXPECT_TRUE(carriedAt({Dir::Greater}, 0));
  EXPECT_FALSE(carriedAt({Dir::Less}, 3)); // outside the vector
}
