//===- tests/analysis/TransformsTest.cpp - Transform legality tests -------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"

#include "analysis/Interp.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

struct Built {
  Program Prog;
  DependenceGraph Graph;
  LoopStmt *Outer = nullptr;
  LoopStmt *Inner = nullptr;
};

Built buildNest(const std::string &Source) {
  Built B;
  B.Prog = mustParse(Source, /*Prepass=*/false);
  DependenceAnalyzer Analyzer;
  B.Graph = DependenceGraph::build(B.Prog, Analyzer);
  for (StmtPtr &S : B.Prog.body()) {
    if (S->kind() != StmtKind::Loop)
      continue;
    B.Outer = &asLoop(*S);
    if (B.Outer->body().size() == 1 &&
        B.Outer->body()[0]->kind() == StmtKind::Loop)
      B.Inner = &asLoop(*B.Outer->body()[0]);
    break;
  }
  return B;
}

} // namespace

TEST(Transforms, InterchangeLegalForFullyParallel) {
  Built B = buildNest(R"(program s
  array a[30][30]
  array b[30][30]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[i][j] = b[i][j] + 1
    end
  end
end
)");
  ASSERT_NE(B.Inner, nullptr);
  EXPECT_TRUE(canInterchange(B.Graph, B.Outer, B.Inner).Legal);
}

TEST(Transforms, InterchangeIllegalForWavefront) {
  // a[i][j] = a[i-1][j+1]: vector (<, >); swapped it becomes (>, <),
  // lexicographically negative — the textbook illegal interchange.
  Built B = buildNest(R"(program s
  array a[30][30]
  for i = 2 to 10 do
    for j = 1 to 9 do
      a[i][j] = a[i - 1][j + 1] + 1
    end
  end
end
)");
  ASSERT_NE(B.Inner, nullptr);
  LegalityResult R = canInterchange(B.Graph, B.Outer, B.Inner);
  EXPECT_FALSE(R.Legal);
  EXPECT_EQ(R.Violation, (DirVector{Dir::Less, Dir::Greater}));
}

TEST(Transforms, InterchangeLegalForForwardWavefront) {
  // a[i][j] = a[i-1][j-1]: vector (<, <); swapping keeps (<, <).
  Built B = buildNest(R"(program s
  array a[30][30]
  for i = 2 to 10 do
    for j = 2 to 10 do
      a[i][j] = a[i - 1][j - 1] + 1
    end
  end
end
)");
  ASSERT_NE(B.Inner, nullptr);
  EXPECT_TRUE(canInterchange(B.Graph, B.Outer, B.Inner).Legal);
}

TEST(Transforms, ReversalIllegalWhenCarried) {
  Built B = buildNest(R"(program s
  array a[100]
  for i = 2 to 10 do
    a[i] = a[i - 1] + 1
  end
end
)");
  ASSERT_NE(B.Outer, nullptr);
  EXPECT_FALSE(canReverse(B.Graph, B.Outer).Legal);
}

TEST(Transforms, ReversalLegalWhenIndependentOrEqual) {
  Built B = buildNest(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i] + 1
  end
end
)");
  ASSERT_NE(B.Outer, nullptr);
  EXPECT_TRUE(canReverse(B.Graph, B.Outer).Legal);
}

TEST(Transforms, ReversalLegalForInnerWhenOuterCarries) {
  // (<, <) dependence: reversing the inner loop gives (<, >), still
  // lexicographically positive — legal.
  Built B = buildNest(R"(program s
  array a[30][30]
  for i = 2 to 10 do
    for j = 2 to 10 do
      a[i][j] = a[i - 1][j - 1] + 1
    end
  end
end
)");
  ASSERT_NE(B.Inner, nullptr);
  EXPECT_FALSE(canReverse(B.Graph, B.Outer).Legal);
  EXPECT_TRUE(canReverse(B.Graph, B.Inner).Legal);
}

TEST(Transforms, ParallelizeLegality) {
  Built B = buildNest(R"(program s
  array a[30][30]
  for i = 2 to 10 do
    for j = 1 to 10 do
      a[i][j] = a[i - 1][j] + 1
    end
  end
end
)");
  ASSERT_NE(B.Inner, nullptr);
  EXPECT_FALSE(canParallelize(B.Graph, B.Outer).Legal);
  EXPECT_TRUE(canParallelize(B.Graph, B.Inner).Legal);
}

TEST(Transforms, InterchangeAppliesAndPreservesSemantics) {
  const char *Source = R"(program s
  array a[30][30]
  for i = 2 to 10 do
    for j = 2 to 10 do
      a[i][j] = a[i - 1][j - 1] + 1
    end
  end
end
)";
  Built B = buildNest(Source);
  ASSERT_NE(B.Inner, nullptr);
  ASSERT_TRUE(canInterchange(B.Graph, B.Outer, B.Inner).Legal);

  Program Original = mustParse(Source, /*Prepass=*/false);
  ASSERT_TRUE(interchangeLoops(*B.Outer));
  // Loop headers swapped in place.
  EXPECT_EQ(B.Prog.var(B.Outer->varId()).Name, "j");
  EXPECT_EQ(B.Prog.var(B.Inner->varId()).Name, "i");
  // Semantics unchanged (the legality analysis promised this).
  InterpResult R1 = interpret(Original);
  InterpResult R2 = interpret(B.Prog);
  ASSERT_TRUE(R1.Ok);
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R1.Memory, R2.Memory);
}

TEST(Transforms, InterchangeRefusesTriangularNest) {
  Built B = buildNest(R"(program s
  array a[30][30]
  for i = 1 to 10 do
    for j = 1 to i do
      a[i][j] = 1
    end
  end
end
)");
  ASSERT_NE(B.Inner, nullptr);
  EXPECT_FALSE(interchangeLoops(*B.Outer));
}

TEST(Transforms, InterchangeRefusesImperfectNest) {
  Built B = buildNest(R"(program s
  array a[30][30]
  for i = 1 to 10 do
    a[i][1] = 0
    for j = 1 to 10 do
      a[i][j] = 1
    end
  end
end
)");
  ASSERT_NE(B.Outer, nullptr);
  EXPECT_FALSE(interchangeLoops(*B.Outer));
}

TEST(Transforms, VectorizeByDistance) {
  // Distance-4 carried dependence: chunks of up to 4 lanes are safe,
  // 8 are not.
  Built B = buildNest(R"(program s
  array a[100]
  for i = 5 to 40 do
    a[i] = a[i - 4] + 1
  end
end
)");
  ASSERT_NE(B.Outer, nullptr);
  EXPECT_TRUE(canVectorize(B.Graph, B.Outer, 2).Legal);
  EXPECT_TRUE(canVectorize(B.Graph, B.Outer, 4).Legal);
  EXPECT_FALSE(canVectorize(B.Graph, B.Outer, 8).Legal);
  EXPECT_FALSE(canParallelize(B.Graph, B.Outer).Legal);
}

TEST(Transforms, VectorizeIndependentLoopAnyWidth) {
  Built B = buildNest(R"(program s
  array a[100]
  array b[100]
  for i = 1 to 40 do
    a[i] = b[i] + 1
  end
end
)");
  ASSERT_NE(B.Outer, nullptr);
  EXPECT_TRUE(canVectorize(B.Graph, B.Outer, 64).Legal);
}

TEST(Transforms, VectorizeRejectsUnknownDistance) {
  // Carried dependence whose distance is not a compile-time constant
  // (i vs 2i'): no safe width.
  Built B = buildNest(R"(program s
  array a[100]
  for i = 1 to 20 do
    a[i] = a[2 * i] + 1
  end
end
)");
  ASSERT_NE(B.Outer, nullptr);
  EXPECT_FALSE(canVectorize(B.Graph, B.Outer, 2).Legal);
}

TEST(Transforms, VectorizeInnerOfNest) {
  // Carried by the outer loop only: the inner loop vectorizes at any
  // width.
  Built B = buildNest(R"(program s
  array a[40][40]
  for i = 2 to 20 do
    for j = 1 to 20 do
      a[i][j] = a[i - 1][j] + 1
    end
  end
end
)");
  ASSERT_NE(B.Inner, nullptr);
  EXPECT_TRUE(canVectorize(B.Graph, B.Inner, 16).Legal);
  EXPECT_FALSE(canVectorize(B.Graph, B.Outer, 2).Legal); // distance 1
}

TEST(Transforms, UnanalyzableBlocksEverything) {
  Built B = buildNest(R"(program s
  array a[100]
  array idx[100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[idx[j]] = a[i] + 1
    end
  end
end
)");
  ASSERT_NE(B.Inner, nullptr);
  EXPECT_FALSE(canInterchange(B.Graph, B.Outer, B.Inner).Legal);
  EXPECT_FALSE(canReverse(B.Graph, B.Outer).Legal);
  EXPECT_FALSE(canParallelize(B.Graph, B.Outer).Legal);
}
