//===- tests/analysis/RefsTest.cpp - Reference collection tests -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Refs.h"

#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

TEST(Refs, WriteAndReadCollected) {
  Program P = mustParse(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i] + 2
  end
end
)");
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 2u);
  EXPECT_TRUE(Refs[0].IsWrite);
  EXPECT_EQ(Refs[0].Slot, -1);
  EXPECT_FALSE(Refs[1].IsWrite);
  EXPECT_EQ(Refs[1].Slot, 0);
  EXPECT_EQ(Refs[0].Loops.size(), 1u);
  EXPECT_EQ(Refs[0].Stmt, Refs[1].Stmt);
}

TEST(Refs, SlotOrderLhsSubscriptsFirst) {
  Program P = mustParse(R"(program s
  array a[100]
  array idx[100]
  for i = 1 to 10 do
    a[idx[i]] = a[i] + idx[i + 1]
  end
end
)",
                        /*Prepass=*/false);
  std::vector<ArrayReference> Refs = collectReferences(P);
  // write a, read idx (LHS subscript), read a, read idx.
  ASSERT_EQ(Refs.size(), 4u);
  EXPECT_TRUE(Refs[0].IsWrite);
  EXPECT_EQ(Refs[1].Slot, 0);
  EXPECT_EQ(Refs[1].ArrayId, *P.lookupArray("idx"));
  EXPECT_EQ(Refs[2].Slot, 1);
  EXPECT_EQ(Refs[2].ArrayId, *P.lookupArray("a"));
  EXPECT_EQ(Refs[3].Slot, 2);
}

TEST(Refs, ScalarAssignmentReadsCollected) {
  Program P = mustParse(R"(program s
  array a[100]
  s = 0
  for i = 1 to 10 do
    s = s + a[i]
  end
end
)",
                        /*Prepass=*/false);
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 1u);
  EXPECT_FALSE(Refs[0].IsWrite);
  EXPECT_EQ(Refs[0].Loops.size(), 1u);
}

TEST(Refs, NestingRecorded) {
  Program P = mustParse(R"(program s
  array a[100][100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[i][j] = 1
    end
    a[i][1] = 2
  end
end
)");
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 2u);
  EXPECT_EQ(Refs[0].Loops.size(), 2u);
  EXPECT_EQ(Refs[1].Loops.size(), 1u);
  // Common outer loop object shared.
  EXPECT_EQ(Refs[0].Loops[0], Refs[1].Loops[0]);
}

TEST(Refs, StrSmoke) {
  Program P = mustParse(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = 0
  end
end
)");
  std::vector<ArrayReference> Refs = collectReferences(P);
  ASSERT_EQ(Refs.size(), 1u);
  std::string S = refStr(P, Refs[0]);
  EXPECT_NE(S.find("a["), std::string::npos);
  EXPECT_NE(S.find("write"), std::string::npos);
}
