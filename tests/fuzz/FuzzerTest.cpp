//===- tests/fuzz/FuzzerTest.cpp - Differential fuzzer self-checks --------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer fuzzing itself is only evidence if the harness works:
/// these tests pin (a) seed determinism, (b) that a clean tree produces
/// zero mismatches, (c) that a deliberately injected wrong-sign bug is
/// caught *and* shrunk to a tiny reproducer, and (d) the symbolic
/// soundness property (an Independent verdict admits no sampled
/// valuation that depends).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "deptest/Cascade.h"
#include "deptest/ProblemIO.h"
#include "fuzz/ProblemGen.h"
#include "fuzz/Shrink.h"
#include "oracle/Oracle.h"
#include "parser/Parser.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::fuzz;
using namespace edda::oracle;

namespace {

FuzzOptions quickOptions(uint64_t Seed, uint64_t Count) {
  FuzzOptions Opts;
  Opts.Seed = Seed;
  Opts.Count = Count;
  Opts.Threads = 2; // Keep the parallel axis cheap under ctest load.
  return Opts;
}

} // namespace

TEST(Fuzzer, SameSeedIsDeterministic) {
  FuzzSummary A = runFuzz(quickOptions(11, 300));
  FuzzSummary B = runFuzz(quickOptions(11, 300));
  EXPECT_EQ(A.Iterations, B.Iterations);
  EXPECT_EQ(A.Problems, B.Problems);
  EXPECT_EQ(A.Programs, B.Programs);
  EXPECT_EQ(A.OracleConclusive, B.OracleConclusive);
  ASSERT_EQ(A.Failures.size(), B.Failures.size());
  for (size_t I = 0; I < A.Failures.size(); ++I) {
    EXPECT_EQ(A.Failures[I].Iteration, B.Failures[I].Iteration);
    EXPECT_EQ(A.Failures[I].Reproducer, B.Failures[I].Reproducer);
  }
}

TEST(Fuzzer, DifferentSeedsGenerateDifferentStreams) {
  SplitRng RngA(1), RngB(2);
  bool AnyDiffer = false;
  for (unsigned I = 0; I < 10; ++I)
    AnyDiffer |= randomFuzzProblem(RngA).serialize(true) !=
                 randomFuzzProblem(RngB).serialize(true);
  EXPECT_TRUE(AnyDiffer);
}

TEST(Fuzzer, CleanTreeHasNoMismatches) {
  FuzzSummary S = runFuzz(quickOptions(3, 600));
  EXPECT_TRUE(S.ok()) << S.Failures.size() << " failure(s), first: "
                      << (S.Failures.empty() ? ""
                                             : S.Failures[0].Detail + "\n" +
                                                   S.Failures[0].Reproducer);
  EXPECT_EQ(S.Iterations, 600u);
  // The generator must keep the enumeration oracle in play, otherwise
  // the oracle axis silently checks nothing.
  EXPECT_GT(S.OracleConclusive, S.Problems / 2);
  EXPECT_GT(S.Programs, 0u);
}

TEST(Fuzzer, InjectedBugIsCaughtAndShrunk) {
  FuzzOptions Opts = quickOptions(1, 2000);
  Opts.Bug = InjectedBug::NegateEqConst;
  FuzzSummary S = runFuzz(Opts);
  ASSERT_FALSE(S.ok()) << "wrong-sign bug escaped 2000 iterations";

  // Every problem reproducer must be a valid .dep file (comment headers
  // included) shrunk to the acceptance envelope: at most 2 loop
  // variables — i.e. at most one reference pair's worth of loops — and
  // at most 2 equations (array dimensions).
  unsigned ProblemRepros = 0;
  for (const FuzzFailure &F : S.Failures) {
    if (F.IsProgram)
      continue;
    ++ProblemRepros;
    SCOPED_TRACE(F.Reproducer);
    ProblemParseResult Parsed = parseProblemText(F.Reproducer);
    ASSERT_TRUE(Parsed.succeeded()) << Parsed.Error;
    EXPECT_TRUE(Parsed.Problem->wellFormed());
    EXPECT_LE(Parsed.Problem->numLoopVars(), 2u);
    EXPECT_LE(Parsed.Problem->Equations.size(), 2u);
  }
  EXPECT_GE(ProblemRepros, 1u);
}

TEST(Fuzzer, MisSignedPruningBugIsCaughtAndShrunk) {
  // The direction-pruning variant: the injected bug is a
  // DirectionOptions hook rather than a problem perturbation, so only
  // the dirs axis can see it — run it alone.
  FuzzOptions Opts = quickOptions(1, 2000);
  Opts.Bug = InjectedBug::MisSignDirPrune;
  Opts.CheckOracle = false;
  Opts.CheckPipeline = false;
  Opts.CheckWiden = false;
  Opts.CheckThreads = false;
  Opts.CheckMemo = false;
  FuzzSummary S = runFuzz(Opts);
  ASSERT_FALSE(S.ok()) << "mis-signed pruning escaped 2000 iterations";

  unsigned ProblemRepros = 0;
  for (const FuzzFailure &F : S.Failures) {
    if (F.IsProgram)
      continue;
    ++ProblemRepros;
    SCOPED_TRACE(F.Reproducer);
    ProblemParseResult Parsed = parseProblemText(F.Reproducer);
    ASSERT_TRUE(Parsed.succeeded()) << Parsed.Error;
    EXPECT_TRUE(Parsed.Problem->wellFormed());
    // Shrunk to the acceptance envelope: at most 2 loop variables (one
    // common pair carrying the mis-signed distance).
    EXPECT_LE(Parsed.Problem->numLoopVars(), 2u);
    EXPECT_LE(Parsed.Problem->Equations.size(), 2u);
  }
  EXPECT_GE(ProblemRepros, 1u);
}

TEST(Fuzzer, SampledConcretizationCoversDistancePruning) {
  // i' - i - n == 0 with n pinned to 2 by a second equation: the GCD
  // solution pins the distance to the symbolic-free constant 2, so
  // pruning fires on a symbolic problem. The sampled-concretization
  // sweep must still hold the pinned distance (and forced direction)
  // against the grid — a mis-signed pruning here is only catchable if
  // the symbolic path of the dirs axis checks distances at all.
  DependenceProblem P;
  P.NumLoopsA = 1;
  P.NumLoopsB = 1;
  P.NumCommon = 1;
  P.NumSymbolic = 1;
  P.Lo.resize(P.numLoopVars());
  P.Hi.resize(P.numLoopVars());
  XAffine Eq1(P.numX()); // i' - i - n == 0
  Eq1.Coeffs = {-1, 1, -1};
  XAffine Eq2(P.numX()); // n == 2
  Eq2.Coeffs = {0, 0, 1};
  Eq2.Const = -2;
  P.Equations = {Eq1, Eq2};
  for (unsigned V = 0; V < 2; ++V) {
    P.Lo[V] = XAffine(P.numX());
    P.Lo[V]->Const = 0;
    P.Hi[V] = XAffine(P.numX());
    P.Hi[V]->Const = 9;
  }
  ASSERT_TRUE(P.wellFormed());

  // Clean tree: no mismatch.
  std::optional<std::string> Clean = checkDirections(P);
  EXPECT_FALSE(Clean.has_value()) << *Clean;

  // Mis-signed pruning must be caught by the sampled sweep.
  std::optional<std::string> Buggy =
      checkDirections(P, /*Widen=*/true, InjectedBug::MisSignDirPrune);
  EXPECT_TRUE(Buggy.has_value());
}

TEST(Fuzzer, SymbolicIndependenceIsSound) {
  // Property: whenever the cascade proves a symbolic problem
  // Independent, no sampled concretization may admit a dependence.
  FuzzProblemOptions POpts;
  POpts.SymbolicPercent = 100;
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed <= 400; ++Seed) {
    SplitRng Rng(Seed);
    DependenceProblem P = randomFuzzProblem(Rng, POpts);
    if (P.NumSymbolic == 0)
      continue;
    CascadeResult R = testDependence(P);
    if (R.Answer != DepAnswer::Independent)
      continue;
    std::optional<bool> Sampled = oracleDependentSampled(P);
    if (!Sampled)
      continue;
    ++Checked;
    EXPECT_FALSE(*Sampled) << "decided by " << testKindName(R.DecidedBy)
                           << "\n"
                           << P.str();
  }
  EXPECT_GT(Checked, 30u);
}

TEST(Fuzzer, GeneratedProblemsAreWellFormed) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    SplitRng Rng(Seed);
    DependenceProblem P = randomFuzzProblem(Rng);
    EXPECT_TRUE(P.wellFormed());
    EXPECT_GE(P.Equations.size(), 1u);
    // The textual format must round-trip every generated shape.
    ProblemParseResult Again = parseProblemText(printProblemText(P));
    ASSERT_TRUE(Again.succeeded()) << Again.Error;
    EXPECT_EQ(Again.Problem->serialize(true), P.serialize(true));
  }
}

TEST(Fuzzer, RandomProgramsAlwaysParse) {
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    SplitRng Rng(Seed);
    std::string Src = generateRandomProgram(Rng);
    ParseResult R = parseProgram(Src);
    ASSERT_TRUE(R.succeeded())
        << Src << "\n"
        << (R.Diags.empty() ? "" : R.Diags[0].str());
  }
}

TEST(Shrinker, PreservesFailurePredicate) {
  // Shrinking an oracle-dependent problem under the predicate "the
  // oracle proves dependence" must stay dependent and never grow.
  auto IsDependent = [](const DependenceProblem &Q) {
    std::optional<bool> T = oracleDependent(Q);
    return T && *T;
  };
  unsigned Shrunk = 0;
  for (uint64_t Seed = 1; Seed <= 200 && Shrunk < 10; ++Seed) {
    SplitRng Rng(Seed);
    DependenceProblem P = randomFuzzProblem(Rng);
    if (!IsDependent(P))
      continue;
    ++Shrunk;
    DependenceProblem Min = shrinkProblem(P, IsDependent);
    EXPECT_TRUE(IsDependent(Min)) << Min.str();
    EXPECT_LE(Min.numX(), P.numX());
    EXPECT_LE(Min.Equations.size(), P.Equations.size());
  }
  EXPECT_GE(Shrunk, 10u);
}

TEST(Shrinker, ProgramShrinkKeepsPredicate) {
  // Shrink a generated program under "mentions array a0 in a loop";
  // the result must still parse and satisfy the predicate.
  auto Fails = [](const std::string &Src) {
    ParseResult R = parseProgram(Src);
    return R.succeeded() && Src.find("a0[") != std::string::npos &&
           Src.find("for ") != std::string::npos;
  };
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    SplitRng Rng(Seed);
    std::string Src = generateRandomProgram(Rng);
    if (!Fails(Src))
      continue;
    ++Checked;
    std::string Min = shrinkProgramSource(Src, Fails);
    EXPECT_TRUE(Fails(Min)) << Min;
    EXPECT_LE(Min.size(), Src.size());
  }
  EXPECT_GE(Checked, 5u);
}

TEST(Fuzzer, IncrAxisCleanOnRandomEditSequences) {
  // Incremental re-analysis alone, across enough iterations to cover
  // every edit kind several times: the spliced graph must match the
  // from-scratch one after every step of every sequence.
  FuzzOptions Opts = quickOptions(4, 400);
  Opts.CheckOracle = false;
  Opts.CheckDirs = false;
  Opts.CheckPipeline = false;
  Opts.CheckWiden = false;
  Opts.CheckThreads = false;
  Opts.CheckMemo = false;
  FuzzSummary S = runFuzz(Opts);
  EXPECT_TRUE(S.ok()) << S.Failures.size() << " incr mismatches; first: "
                      << (S.Failures.empty() ? ""
                                             : S.Failures[0].Detail);
}

TEST(Fuzzer, StaleFingerprintBugIsCaughtAndShrunk) {
  // The incremental fault injection: reuse keyed on the bounds-free
  // fingerprints, so bound edits splice stale results. Only the incr
  // axis can see it — run it alone, and demand the failures shrink to
  // the acceptance envelope of at most 2 edits.
  FuzzOptions Opts = quickOptions(1, 2000);
  Opts.Bug = InjectedBug::StaleFingerprint;
  Opts.CheckOracle = false;
  Opts.CheckDirs = false;
  Opts.CheckPipeline = false;
  Opts.CheckWiden = false;
  Opts.CheckThreads = false;
  Opts.CheckMemo = false;
  FuzzSummary S = runFuzz(Opts);
  ASSERT_FALSE(S.ok()) << "stale-fingerprint bug escaped 2000 iterations";

  for (const FuzzFailure &F : S.Failures) {
    SCOPED_TRACE(F.Reproducer);
    EXPECT_EQ(F.Axis, FuzzAxis::Incr);
    EXPECT_TRUE(F.IsProgram);
    EXPECT_GE(F.Edits, 1u);
    EXPECT_LE(F.Edits, 2u);
    // The reproducer embeds its surviving edit seeds so the failure
    // replays from the file alone.
    EXPECT_NE(F.Reproducer.find("# edda-fuzz-edits:"),
              std::string::npos);
    EXPECT_FALSE(F.Detail.empty());
  }
}
