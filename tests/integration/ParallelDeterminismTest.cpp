//===- tests/integration/ParallelDeterminismTest.cpp ----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel driver's headline guarantee: analyze() at 1, 2 and 8
/// threads produces identical dependence pairs (answers, deciding
/// tests, cache provenance, directions), identical memo hit/miss
/// Stats, and identical dependence graphs over the generated
/// PERFECT-style corpus (the edda-genperfect output).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/DependenceGraph.h"
#include "parser/Parser.h"
#include "workload/Generator.h"
#include "gtest/gtest.h"

#include <iterator>
#include <string>
#include <vector>

using namespace edda;

namespace {

constexpr unsigned ThreadCounts[] = {1, 2, 8};

/// One program's full analysis outcome under a given thread count.
struct ProgramOutcome {
  AnalysisResult Result;
  std::string GraphText;
};

/// Analyzes every corpus program through one analyzer (shared cache,
/// as a compilation would) at \p Threads workers.
std::vector<ProgramOutcome> analyzeCorpusAt(unsigned Threads,
                                            bool Directions) {
  GeneratorOptions GOpts;
  GOpts.Scale = 0.5; // keep the three-way run affordable in Debug/TSan

  AnalyzerOptions AOpts;
  AOpts.NumThreads = Threads;
  AOpts.ComputeDirections = Directions;
  DependenceAnalyzer Analyzer(AOpts);

  std::vector<ProgramOutcome> Outcomes;
  for (const auto &[Name, Source] : generatePerfectClubSuite(GOpts)) {
    ParseResult Parsed = parseProgram(Source);
    EXPECT_TRUE(Parsed.succeeded()) << Name;
    if (!Parsed.succeeded())
      continue;
    Program Prog = std::move(*Parsed.Prog);
    ProgramOutcome Out;
    Out.Result = Analyzer.analyze(Prog);
    if (Directions)
      Out.GraphText = DependenceGraph::build(Prog, Analyzer).str(Prog);
    Outcomes.push_back(std::move(Out));
  }
  return Outcomes;
}

void expectSameStats(const DepStats &A, const DepStats &B,
                     const std::string &Label) {
  for (unsigned K = 0; K < NumTestKinds; ++K) {
    EXPECT_EQ(A.Decided[K], B.Decided[K])
        << Label << ": decided count for "
        << testKindName(static_cast<TestKind>(K));
    EXPECT_EQ(A.DecidedIndependent[K], B.DecidedIndependent[K])
        << Label << ": independent count for "
        << testKindName(static_cast<TestKind>(K));
  }
  EXPECT_EQ(A.MemoHitsFull, B.MemoHitsFull) << Label;
  EXPECT_EQ(A.MemoHitsNoBounds, B.MemoHitsNoBounds) << Label;
}

void expectSamePairs(const AnalysisResult &A, const AnalysisResult &B,
                     const std::string &Label) {
  EXPECT_EQ(A.PairsConsidered, B.PairsConsidered) << Label;
  EXPECT_EQ(A.UnanalyzablePairs, B.UnanalyzablePairs) << Label;
  ASSERT_EQ(A.Pairs.size(), B.Pairs.size()) << Label;
  for (size_t I = 0; I < A.Pairs.size(); ++I) {
    const DependencePair &PA = A.Pairs[I];
    const DependencePair &PB = B.Pairs[I];
    EXPECT_EQ(PA.RefA, PB.RefA) << Label << " pair " << I;
    EXPECT_EQ(PA.RefB, PB.RefB) << Label << " pair " << I;
    EXPECT_EQ(PA.Answer, PB.Answer) << Label << " pair " << I;
    EXPECT_EQ(PA.DecidedBy, PB.DecidedBy) << Label << " pair " << I;
    EXPECT_EQ(PA.Exact, PB.Exact) << Label << " pair " << I;
    EXPECT_EQ(PA.FromCache, PB.FromCache) << Label << " pair " << I;
    ASSERT_EQ(PA.Directions.has_value(), PB.Directions.has_value())
        << Label << " pair " << I;
    if (PA.Directions) {
      EXPECT_EQ(PA.Directions->RootAnswer, PB.Directions->RootAnswer)
          << Label << " pair " << I;
      EXPECT_EQ(PA.Directions->Vectors, PB.Directions->Vectors)
          << Label << " pair " << I;
      EXPECT_EQ(PA.Directions->Distances, PB.Directions->Distances)
          << Label << " pair " << I;
    }
  }
}

void checkDeterminism(bool Directions) {
  std::vector<ProgramOutcome> Base =
      analyzeCorpusAt(ThreadCounts[0], Directions);
  ASSERT_FALSE(Base.empty());
  for (unsigned T = 1; T < std::size(ThreadCounts); ++T) {
    unsigned Threads = ThreadCounts[T];
    std::vector<ProgramOutcome> Run =
        analyzeCorpusAt(Threads, Directions);
    ASSERT_EQ(Run.size(), Base.size());
    DepStats BaseTotal, RunTotal;
    for (size_t P = 0; P < Base.size(); ++P) {
      std::string Label =
          "threads=" + std::to_string(Threads) + " program " +
          std::to_string(P);
      expectSamePairs(Base[P].Result, Run[P].Result, Label);
      expectSameStats(Base[P].Result.Stats, Run[P].Result.Stats,
                      Label);
      EXPECT_EQ(Base[P].GraphText, Run[P].GraphText) << Label;
      BaseTotal += Base[P].Result.Stats;
      RunTotal += Run[P].Result.Stats;
    }
    expectSameStats(BaseTotal, RunTotal,
                    "suite totals at threads=" +
                        std::to_string(Threads));
  }
}

} // namespace

TEST(ParallelDeterminism, PlainAnalysisIdenticalAcrossThreadCounts) {
  checkDeterminism(/*Directions=*/false);
}

TEST(ParallelDeterminism, DirectionsIdenticalAcrossThreadCounts) {
  checkDeterminism(/*Directions=*/true);
}

TEST(ParallelDeterminism, MemoizationOffStillDeterministic) {
  GeneratorOptions GOpts;
  GOpts.Scale = 0.3;
  std::vector<std::pair<std::string, std::string>> Suite =
      generatePerfectClubSuite(GOpts);

  auto RunAt = [&Suite](unsigned Threads) {
    AnalyzerOptions AOpts;
    AOpts.NumThreads = Threads;
    AOpts.UseMemoization = false;
    DependenceAnalyzer Analyzer(AOpts);
    std::vector<AnalysisResult> Results;
    for (const auto &[Name, Source] : Suite) {
      ParseResult Parsed = parseProgram(Source);
      EXPECT_TRUE(Parsed.succeeded()) << Name;
      Program Prog = std::move(*Parsed.Prog);
      Results.push_back(Analyzer.analyze(Prog));
    }
    return Results;
  };

  std::vector<AnalysisResult> Base = RunAt(1);
  for (unsigned Threads : {2u, 8u}) {
    std::vector<AnalysisResult> Run = RunAt(Threads);
    ASSERT_EQ(Run.size(), Base.size());
    for (size_t P = 0; P < Base.size(); ++P) {
      std::string Label = "no-memo threads=" +
                          std::to_string(Threads) + " program " +
                          std::to_string(P);
      expectSamePairs(Base[P], Run[P], Label);
      expectSameStats(Base[P].Stats, Run[P].Stats, Label);
    }
  }
}

TEST(ParallelDeterminism, AutoThreadAndShardResolution) {
  AnalyzerOptions AOpts;
  AOpts.NumThreads = 0; // one per core
  DependenceAnalyzer Analyzer(AOpts);
  EXPECT_GE(Analyzer.threadCount(), 1u);
  EXPECT_GE(Analyzer.cache().shardCount(), 1u);
  // Serial analyzers keep the degenerate single-shard cache.
  DependenceAnalyzer Serial;
  EXPECT_EQ(Serial.threadCount(), 1u);
  EXPECT_EQ(Serial.cache().shardCount(), 1u);
}
