//===- tests/integration/EndToEndTest.cpp - Trace-vs-analysis checks ------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest end-to-end property in the suite: run a program in the
/// interpreter, derive the *observed* dependences from its memory trace,
/// and check them against the analyzer's claims:
///
///   * a pair the analyzer calls Independent must show no conflicting
///     accesses in the trace (soundness — the paper's correctness bar);
///   * every observed conflict's direction sign pattern must be covered
///     by some reported direction vector;
///   * for exact Dependent answers on programs whose loops actually
///     execute, a conflict must really occur (exactness).
///
/// Optimization passes must not change which conflicts occur.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Interp.h"
#include "opt/Pipeline.h"
#include "testutil/Helpers.h"
#include "oracle/Oracle.h"
#include "workload/Generator.h"
#include "gtest/gtest.h"

#include <map>
#include <set>

using namespace edda;
using namespace edda::testutil;
using namespace edda::oracle;

namespace {

using RefKey = std::pair<const AssignStmt *, int>;

/// Observed conflicts between two static references: the set of
/// direction sign patterns over the given common loops.
std::set<DirVector>
observedDirections(const InterpResult &Trace, const ArrayReference &A,
                   const ArrayReference &B,
                   const std::vector<const LoopStmt *> &CommonLoops) {
  std::set<DirVector> Out;
  std::vector<const AccessRecord *> AccA, AccB;
  for (const AccessRecord &Rec : Trace.Trace) {
    if (Rec.Stmt == A.Stmt && Rec.Slot == A.Slot)
      AccA.push_back(&Rec);
    if (Rec.Stmt == B.Stmt && Rec.Slot == B.Slot)
      AccB.push_back(&Rec);
  }
  for (const AccessRecord *RA : AccA) {
    for (const AccessRecord *RB : AccB) {
      if (RA->Indices != RB->Indices)
        continue;
      DirVector V;
      for (const LoopStmt *L : CommonLoops) {
        int64_t IA = 0, IB = 0;
        for (const auto &[Loop, Value] : RA->Iteration)
          if (Loop == L)
            IA = Value;
        for (const auto &[Loop, Value] : RB->Iteration)
          if (Loop == L)
            IB = Value;
        V.push_back(IA < IB   ? Dir::Less
                    : IA == IB ? Dir::Equal
                               : Dir::Greater);
      }
      Out.insert(std::move(V));
    }
  }
  return Out;
}

/// Full check of one program: analyze with directions, interpret, and
/// compare (see file comment).
void checkProgram(const std::string &Source, bool ExpectConflicts) {
  Program P = mustParse(Source, /*Prepass=*/false);
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  DependenceAnalyzer Analyzer(Opts);
  AnalysisResult R = Analyzer.analyze(P); // runs the prepass in place
  InterpResult Trace = interpret(P);
  ASSERT_TRUE(Trace.Ok) << Trace.Error;

  bool AnyConflict = false;
  for (const DependencePair &Pair : R.Pairs) {
    const ArrayReference &A = R.Refs[Pair.RefA];
    const ArrayReference &B = R.Refs[Pair.RefB];
    std::set<DirVector> Observed =
        observedDirections(Trace, A, B, Pair.CommonLoops);
    if (Pair.RefA == Pair.RefB) {
      // Drop the trivial identical-access "conflict" (same iteration):
      // the all-equal vector is always observed for a self pair.
      Observed.erase(DirVector(Pair.CommonLoops.size(), Dir::Equal));
    }
    AnyConflict = AnyConflict || !Observed.empty();

    if (Pair.Answer == DepAnswer::Independent) {
      EXPECT_TRUE(Observed.empty())
          << "analyzer claimed independence but the trace conflicts: "
          << refStr(P, A) << " vs " << refStr(P, B);
      continue;
    }
    if (!Pair.Directions)
      continue;
    for (const DirVector &Real : Observed) {
      bool Covered = false;
      for (const DirVector &Reported : Pair.Directions->Vectors)
        Covered = Covered || dirMatches(Reported, Real);
      EXPECT_TRUE(Covered)
          << "observed direction " << dirVectorStr(Real)
          << " not reported for " << refStr(P, A) << " vs "
          << refStr(P, B);
    }
  }
  if (ExpectConflicts)
    EXPECT_TRUE(AnyConflict) << "test expected real dependences";
}

} // namespace

TEST(EndToEnd, ClassicPatterns) {
  checkProgram(R"(program classic
  array a[200]
  array b[200]
  array c[200][200]
  for i = 1 to 20 do
    a[i + 1] = a[i] + 1
    b[i] = b[i + 20]
  end
  for i = 1 to 15 do
    for j = 1 to i do
      c[i][j] = c[i - 1][j + 1] + 2
    end
  end
end
)",
               /*ExpectConflicts=*/true);
}

TEST(EndToEnd, CoupledAndBanded) {
  checkProgram(R"(program coupled
  array a[400]
  array d[60]
  for i = 1 to 12 do
    for j = 1 to 12 do
      a[i + j] = a[i + j + 5] + 1
    end
  end
  for i = 1 to 12 do
    for j = i - 2 to i + 2 do
      d[j + 10] = d[j + 11] + 1
    end
  end
end
)",
               /*ExpectConflicts=*/true);
}

TEST(EndToEnd, PrepassHeavyProgram) {
  checkProgram(R"(program prepass
  array a[500]
  param n = 100
  iz = 0
  for i = 1 to 10 do
    iz = iz + 2
    a[iz + n] = a[iz + 2 * n + 1] + 3
  end
  k = 50
  for i = 1 to 19 step 2 do
    a[k + i] = a[k + i + 2] + 1
  end
end
)",
               /*ExpectConflicts=*/true);
}

TEST(EndToEnd, TransposedCoupling) {
  checkProgram(R"(program transposed
  array a[30][30]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[i][j] = a[j][i] + 1
    end
  end
end
)",
               /*ExpectConflicts=*/true);
}

TEST(EndToEnd, MultipleWritesSameArray) {
  checkProgram(R"(program multiwrite
  array a[100]
  for i = 1 to 10 do
    a[2 * i] = 1
    a[2 * i + 1] = a[2 * i - 1] + 1
  end
end
)",
               /*ExpectConflicts=*/true);
}

TEST(EndToEnd, GeneratedWorkloadSample) {
  // A small slice of every synthetic PERFECT Club program goes through
  // the full trace comparison. Deep unused-loop wrapping multiplies
  // executed iterations, so the interpreter runs cap it.
  GeneratorOptions Opts;
  Opts.Scale = 0.01;
  Opts.MaxWrapDepth = 1;
  for (const auto &[Name, Source] : generatePerfectClubSuite(Opts)) {
    SCOPED_TRACE(Name);
    checkProgram(Source, /*ExpectConflicts=*/false);
  }
}

TEST(EndToEnd, SymbolicWorkloadSampleUnderConcreteN) {
  // Symbolic cases: pick n = 7 and check the (conservative, exact up to
  // the unknown) analysis covers the concrete behaviour.
  GeneratorOptions Opts;
  Opts.Scale = 0.02;
  Opts.IncludeSymbolic = true;
  Opts.MaxWrapDepth = 1;
  auto Suite = generatePerfectClubSuite(Opts);
  const std::string &Source = Suite[5].second; // NA: symbolic-rich
  Program P = mustParse(Source, /*Prepass=*/false);
  AnalyzerOptions AOpts;
  AOpts.ComputeDirections = true;
  DependenceAnalyzer Analyzer(AOpts);
  AnalysisResult R = Analyzer.analyze(P);
  InterpOptions IOpts;
  if (std::optional<unsigned> N = P.lookupVar("n"))
    IOpts.SymbolicValues[*N] = 7;
  InterpResult Trace = interpret(P, IOpts);
  ASSERT_TRUE(Trace.Ok) << Trace.Error;
  for (const DependencePair &Pair : R.Pairs) {
    if (Pair.Answer != DepAnswer::Independent)
      continue;
    std::set<DirVector> Observed = observedDirections(
        Trace, R.Refs[Pair.RefA], R.Refs[Pair.RefB], Pair.CommonLoops);
    if (Pair.RefA == Pair.RefB)
      Observed.erase(DirVector(Pair.CommonLoops.size(), Dir::Equal));
    EXPECT_TRUE(Observed.empty());
  }
}

TEST(EndToEnd, OptimizationPreservesTraceSemantics) {
  // The prepass must not change the observable memory behaviour of any
  // generated program.
  GeneratorOptions Opts;
  Opts.Scale = 0.01;
  Opts.MaxWrapDepth = 1;
  for (const auto &[Name, Source] : generatePerfectClubSuite(Opts)) {
    SCOPED_TRACE(Name);
    Program P = mustParse(Source, /*Prepass=*/false);
    Program Before(P);
    runPrepass(P);
    InterpResult R1 = interpret(Before);
    InterpResult R2 = interpret(P);
    ASSERT_TRUE(R1.Ok);
    ASSERT_TRUE(R2.Ok);
    EXPECT_EQ(R1.Memory, R2.Memory);
  }
}
