//===- tests/integration/PaperExamplesTest.cpp - Paper walkthroughs -------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every worked example in the paper, run end-to-end from LoopLang
/// source through the prepass, the problem builder and the cascade.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "deptest/Direction.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

#include <set>

using namespace edda;
using namespace edda::testutil;

namespace {

/// Analyzes and returns the unique write/read (non-self) pair.
DependencePair crossPair(const std::string &Source,
                         AnalyzerOptions Opts = {}) {
  Program P = mustParse(Source, /*Prepass=*/false);
  DependenceAnalyzer Analyzer(Opts);
  AnalysisResult R = Analyzer.analyze(P);
  for (DependencePair &Pair : R.Pairs)
    if (Pair.RefA != Pair.RefB)
      return std::move(Pair);
  ADD_FAILURE() << "no cross pair found";
  return {};
}

} // namespace

TEST(PaperExamples, Section1IndependentLoop) {
  // "for i=1 to 10 do a[i] = a[i+10]+3": all iterations concurrent.
  DependencePair Pair = crossPair(R"(program intro1
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i + 10] + 3
  end
end
)");
  EXPECT_EQ(Pair.Answer, DepAnswer::Independent);
  EXPECT_EQ(Pair.DecidedBy, TestKind::Svpc);
}

TEST(PaperExamples, Section1DependentLoop) {
  // "for i=1 to 10 do a[i+1] = a[i]+3": forced sequential.
  DependencePair Pair = crossPair(R"(program intro2
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i] + 3
  end
end
)");
  EXPECT_EQ(Pair.Answer, DepAnswer::Dependent);
}

TEST(PaperExamples, Section31ExtendedGcdWalkthrough) {
  // "for i=1 to 10 do a[i+10] = a[i]": GCD gives (i, i') = (t, t+10);
  // transformed bounds are contradictory, SVPC notices.
  DependencePair Pair = crossPair(R"(program sec31
  array a[100]
  for i = 1 to 10 do
    a[i + 10] = a[i]
  end
end
)");
  EXPECT_EQ(Pair.Answer, DepAnswer::Independent);
  EXPECT_EQ(Pair.DecidedBy, TestKind::Svpc);
}

TEST(PaperExamples, Section32CoupledSubscripts) {
  // a[i1][i2] = a[i2+10][i1+9]: the SVPC walkthrough ending with
  // lb(t1) = 11 > ub(t1) = 10.
  DependencePair Pair = crossPair(R"(program sec32
  array a[100][100]
  for i1 = 1 to 10 do
    for i2 = 1 to 10 do
      a[i1][i2] = a[i2 + 10][i1 + 9]
    end
  end
end
)");
  EXPECT_EQ(Pair.Answer, DepAnswer::Independent);
  EXPECT_EQ(Pair.DecidedBy, TestKind::Svpc);
}

TEST(PaperExamples, Section32SvpcFriendlyForms) {
  // The two "common multi-dimensional cases" listed as SVPC-amenable.
  DependencePair Shifted = crossPair(R"(program sec32a
  array a[100][100]
  for i1 = 1 to 10 do
    for i2 = 1 to 10 do
      a[i1][i2] = a[i1 + 3][i2 + 4]
    end
  end
end
)");
  EXPECT_EQ(Shifted.DecidedBy, TestKind::Svpc);
  EXPECT_EQ(Shifted.Answer, DepAnswer::Dependent);

  DependencePair Transposed = crossPair(R"(program sec32b
  array a[100][100]
  for i1 = 1 to 10 do
    for i2 = 1 to 10 do
      a[i1][i2] = a[i2 + 2][i1 + 1]
    end
  end
end
)");
  EXPECT_EQ(Transposed.DecidedBy, TestKind::Svpc);
  EXPECT_EQ(Transposed.Answer, DepAnswer::Dependent);
}

TEST(PaperExamples, Section5MemoizationCollapse) {
  // Programs (a) and (b): different surrounding loops, same inner
  // dependence; the improved scheme memoizes them as one.
  const char *ProgramA = R"(program pa
  array a[100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[i + 10] = a[i] + 3
    end
  end
end
)";
  const char *ProgramB = R"(program pb
  array a[100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[j + 10] = a[j] + 3
    end
  end
end
)";
  AnalyzerOptions Opts; // improved memo by default
  DependenceAnalyzer Analyzer(Opts);
  Program PA = mustParse(ProgramA, false);
  Analyzer.analyze(PA);
  uint64_t UniqueAfterA = Analyzer.cache().uniqueFull();
  Program PB = mustParse(ProgramB, false);
  AnalysisResult RB = Analyzer.analyze(PB);
  // Program (b) added nothing new.
  EXPECT_EQ(Analyzer.cache().uniqueFull(), UniqueAfterA);
  EXPECT_EQ(RB.Stats.totalDecided(), 0u);
}

TEST(PaperExamples, Section6DirectionMotivation) {
  // a[i+1] = a[i] vs a[i] = a[i]: both dependent, only the second
  // parallel (direction '=').
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  DependencePair First = crossPair(R"(program sec6a
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i] + 7
  end
end
)",
                                   Opts);
  ASSERT_TRUE(First.Directions.has_value());
  ASSERT_EQ(First.Directions->Vectors.size(), 1u);
  EXPECT_EQ(First.Directions->Vectors[0], (DirVector{Dir::Less}));

  DependencePair Second = crossPair(R"(program sec6b
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i] + 7
  end
end
)",
                                    Opts);
  ASSERT_TRUE(Second.Directions.has_value());
  ASSERT_EQ(Second.Directions->Vectors.size(), 1u);
  EXPECT_EQ(Second.Directions->Vectors[0], (DirVector{Dir::Equal}));
}

TEST(PaperExamples, Section6TwoDirectionVectors) {
  // "a[i][j] = a[2i][j]+7" over 0..10: dependent with more than one
  // direction vector.
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  DependencePair Pair = crossPair(R"(program sec6c
  array a[100][100]
  for i = 0 to 10 do
    for j = 0 to 10 do
      a[i][j] = a[2 * i][j] + 7
    end
  end
end
)",
                                  Opts);
  EXPECT_EQ(Pair.Answer, DepAnswer::Dependent);
  ASSERT_TRUE(Pair.Directions.has_value());
  EXPECT_GT(Pair.Directions->Vectors.size(), 1u);
}

TEST(PaperExamples, Section6DistanceVector) {
  // a[i] = a[i-3]: distance 3.
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  DependencePair Pair = crossPair(R"(program sec6d
  array a[100]
  for i = 3 to 10 do
    a[i] = a[i - 3] + 7
  end
end
)",
                                  Opts);
  ASSERT_TRUE(Pair.Directions.has_value());
  ASSERT_EQ(Pair.Directions->Distances.size(), 1u);
  ASSERT_TRUE(Pair.Directions->Distances[0].has_value());
  EXPECT_EQ(*Pair.Directions->Distances[0], 3);
}

TEST(PaperExamples, Section6UnusedVariablePruning) {
  // "for i, for j: a[i] = a[j+1]": j... i is used, j unused? The
  // example: subscripts use i on the left, j+1 on the right — both
  // loops appear. The paper's pruning example is the reverse: i does
  // not appear. Reproduce that: a[j] = a[j+1] with unused i.
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  DependencePair Pair = crossPair(R"(program sec6e
  array a[100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[j] = a[j + 1]
    end
  end
end
)",
                                  Opts);
  ASSERT_TRUE(Pair.Directions.has_value());
  for (const DirVector &V : Pair.Directions->Vectors) {
    ASSERT_EQ(V.size(), 2u);
    EXPECT_EQ(V[0], Dir::Any); // '*' prepended without testing
  }
}

TEST(PaperExamples, Section8SymbolicWalkthrough) {
  // read(n); a[i+n] = a[i+2n+1]: exact even with the unknown.
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  DependencePair Pair = crossPair(R"(program sec8
  array a[500]
  read n
  for i = 1 to 10 do
    a[i + n] = a[i + 2 * n + 1] + 3
  end
end
)",
                                  Opts);
  // Dependent for suitable n (the system has integer solutions).
  EXPECT_EQ(Pair.Answer, DepAnswer::Dependent);
  EXPECT_TRUE(Pair.Exact);
}

TEST(PaperExamples, Section8PrepassNormalization) {
  // The optimizer example: iz induction + n propagation makes the
  // references affine; the pair is then decided exactly.
  DependencePair Pair = crossPair(R"(program sec8pre
  array a[500]
  param n = 100
  iz = 0
  for i = 1 to 10 do
    iz = iz + 2
    a[iz + n] = a[iz + 2 * n + 1] + 3
  end
end
)");
  // a[2i+100] vs a[2i+201]: gcd 2 does not divide 101.
  EXPECT_EQ(Pair.Answer, DepAnswer::Independent);
  EXPECT_EQ(Pair.DecidedBy, TestKind::GcdTest);
}

TEST(PaperExamples, Section2IntegerProgrammingReduction) {
  // The reduction of section 2.1: Ax = b with x >= 0 encoded as a
  // dependence problem. Use A = [2 3], b = 12, x1, x2 >= 0:
  // solutions exist (x = (3, 2) e.g.), so the references depend.
  DependencePair Pair = crossPair(R"(program ipreduction
  array a[200]
  for x1 = 0 to 50 do
    for x2 = 0 to 50 do
      a[2 * x1 + 3 * x2] = a[12] + 1
    end
  end
end
)");
  EXPECT_EQ(Pair.Answer, DepAnswer::Dependent);
}

TEST(PaperExamples, Section4ConstantColumn) {
  // "a[3] versus a[4]": handled without dependence testing.
  DependencePair Pair = crossPair(R"(program constants
  array a[100]
  for i = 1 to 10 do
    a[3] = a[4] + 1
  end
end
)");
  EXPECT_EQ(Pair.Answer, DepAnswer::Independent);
  EXPECT_EQ(Pair.DecidedBy, TestKind::ArrayConstant);
}
