//===- tests/integration/CorpusTest.cpp - .dep regression corpus ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every problem file in tests/inputs/corpus/ through the cascade
/// and checks the verdict annotated on its first line:
///
///   # expect: <independent|dependent> <deciding test name>
///
/// New regression cases are added by dropping a .dep file in the
/// directory — no code change needed. Each case is additionally
/// cross-checked against the enumeration oracle when applicable, and
/// its witness verified.
///
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"
#include "deptest/ProblemIO.h"
#include "testutil/Oracle.h"
#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef EDDA_CORPUS_DIR
#error "EDDA_CORPUS_DIR must be defined by the build"
#endif

using namespace edda;
using namespace edda::testutil;

namespace {

struct CorpusCase {
  std::string Path;
  std::string Text;
  DepAnswer Expected;
  std::string ExpectedDecider;
};

std::vector<CorpusCase> loadCorpus() {
  std::vector<CorpusCase> Cases;
  for (const auto &Entry :
       std::filesystem::directory_iterator(EDDA_CORPUS_DIR)) {
    if (Entry.path().extension() != ".dep")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    CorpusCase Case;
    Case.Path = Entry.path().filename().string();
    Case.Text = Buffer.str();

    // First line: "# expect: <answer> <decider>".
    std::istringstream Header(Case.Text);
    std::string Hash, ExpectWord, Answer;
    Header >> Hash >> ExpectWord >> Answer >> Case.ExpectedDecider;
    EXPECT_EQ(Hash, "#") << Case.Path;
    EXPECT_EQ(ExpectWord, "expect:") << Case.Path;
    if (Answer == "independent")
      Case.Expected = DepAnswer::Independent;
    else if (Answer == "dependent")
      Case.Expected = DepAnswer::Dependent;
    else
      ADD_FAILURE() << Case.Path << ": bad expectation '" << Answer
                    << "'";
    Cases.push_back(std::move(Case));
  }
  std::sort(Cases.begin(), Cases.end(),
            [](const CorpusCase &A, const CorpusCase &B) {
              return A.Path < B.Path;
            });
  return Cases;
}

} // namespace

TEST(Corpus, AllCasesDecideAsAnnotated) {
  std::vector<CorpusCase> Cases = loadCorpus();
  ASSERT_GE(Cases.size(), 10u) << "corpus missing?";
  for (const CorpusCase &Case : Cases) {
    SCOPED_TRACE(Case.Path);
    ProblemParseResult Parsed = parseProblemText(Case.Text);
    ASSERT_TRUE(Parsed.succeeded()) << Parsed.Error;
    CascadeResult R = testDependence(*Parsed.Problem);
    EXPECT_EQ(R.Answer, Case.Expected);
    EXPECT_STREQ(testKindName(R.DecidedBy),
                 Case.ExpectedDecider.c_str());
    if (R.Answer == DepAnswer::Dependent && R.Witness)
      EXPECT_TRUE(verifyWitness(*Parsed.Problem, *R.Witness));

    // Oracle cross-check where enumeration applies.
    std::optional<bool> Truth = oracleDependent(*Parsed.Problem);
    if (Truth)
      EXPECT_EQ(*Truth, R.Answer == DepAnswer::Dependent);
  }
}

TEST(Corpus, RoundTripsThroughPrinter) {
  for (const CorpusCase &Case : loadCorpus()) {
    SCOPED_TRACE(Case.Path);
    ProblemParseResult Parsed = parseProblemText(Case.Text);
    ASSERT_TRUE(Parsed.succeeded());
    std::string Printed = printProblemText(*Parsed.Problem);
    ProblemParseResult Again = parseProblemText(Printed);
    ASSERT_TRUE(Again.succeeded()) << Printed;
    EXPECT_EQ(Again.Problem->serialize(true),
              Parsed.Problem->serialize(true));
  }
}
