//===- tests/integration/CorpusTest.cpp - .dep regression corpus ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every problem file in tests/inputs/corpus/ through the cascade
/// and checks the verdict annotated on its first line:
///
///   # expect: <independent|dependent> <deciding test name>
///
/// New regression cases are added by dropping a .dep file in the
/// directory — no code change needed. Each case is additionally
/// cross-checked against the enumeration oracle when applicable, and
/// its witness verified.
///
/// .loop files in the same directory are whole-program reproducers
/// (typically minimized by edda-fuzz): each is replayed through the
/// analyzer along the fuzzer's differential axes — serial vs. threaded,
/// default vs. permuted pipeline, cache save/load — and each analyzable
/// pair is cross-checked against the enumeration oracle.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Builder.h"
#include "deptest/Cascade.h"
#include "deptest/ProblemIO.h"
#include "deptest/TestPipeline.h"
#include "fuzz/Fuzzer.h"
#include "oracle/Oracle.h"
#include "parser/Parser.h"
#include "gtest/gtest.h"

#include <cstdio>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef EDDA_CORPUS_DIR
#error "EDDA_CORPUS_DIR must be defined by the build"
#endif

using namespace edda;
using namespace edda::oracle;

namespace {

struct CorpusCase {
  std::string Path;
  std::string Text;
  DepAnswer Expected;
  std::string ExpectedDecider;
};

std::vector<CorpusCase> loadCorpus() {
  std::vector<CorpusCase> Cases;
  for (const auto &Entry :
       std::filesystem::directory_iterator(EDDA_CORPUS_DIR)) {
    if (Entry.path().extension() != ".dep")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    CorpusCase Case;
    Case.Path = Entry.path().filename().string();
    Case.Text = Buffer.str();

    // First line: "# expect: <answer> <decider>".
    std::istringstream Header(Case.Text);
    std::string Hash, ExpectWord, Answer;
    Header >> Hash >> ExpectWord >> Answer >> Case.ExpectedDecider;
    EXPECT_EQ(Hash, "#") << Case.Path;
    EXPECT_EQ(ExpectWord, "expect:") << Case.Path;
    if (Answer == "independent")
      Case.Expected = DepAnswer::Independent;
    else if (Answer == "dependent")
      Case.Expected = DepAnswer::Dependent;
    else
      ADD_FAILURE() << Case.Path << ": bad expectation '" << Answer
                    << "'";
    Cases.push_back(std::move(Case));
  }
  std::sort(Cases.begin(), Cases.end(),
            [](const CorpusCase &A, const CorpusCase &B) {
              return A.Path < B.Path;
            });
  return Cases;
}

} // namespace

TEST(Corpus, AllCasesDecideAsAnnotated) {
  std::vector<CorpusCase> Cases = loadCorpus();
  ASSERT_GE(Cases.size(), 10u) << "corpus missing?";
  for (const CorpusCase &Case : Cases) {
    SCOPED_TRACE(Case.Path);
    ProblemParseResult Parsed = parseProblemText(Case.Text);
    ASSERT_TRUE(Parsed.succeeded()) << Parsed.Error;
    CascadeResult R = testDependence(*Parsed.Problem);
    EXPECT_EQ(R.Answer, Case.Expected);
    EXPECT_STREQ(testKindName(R.DecidedBy),
                 Case.ExpectedDecider.c_str());
    if (R.Answer == DepAnswer::Dependent && R.Witness)
      EXPECT_TRUE(verifyWitness(*Parsed.Problem, *R.Witness));

    // Oracle cross-check where enumeration applies.
    std::optional<bool> Truth = oracleDependent(*Parsed.Problem);
    if (Truth)
      EXPECT_EQ(*Truth, R.Answer == DepAnswer::Dependent);
  }
}

TEST(Corpus, DepFilesPassDirectionChecks) {
  // The fuzzer's dirs axis, replayed over the pinned corpus: direction
  // vectors on every case must cover the oracle's concrete patterns, be
  // minimal when Exact, pin distances only when truly constant, and
  // agree across all elimination/pruning/separability combinations.
  // The dirs_*.dep reproducers were each minimized from a hierarchy bug
  // this check caught; they fail here when the fix is reverted.
  for (const CorpusCase &Case : loadCorpus()) {
    SCOPED_TRACE(Case.Path);
    ProblemParseResult Parsed = parseProblemText(Case.Text);
    ASSERT_TRUE(Parsed.succeeded()) << Parsed.Error;
    std::optional<std::string> Mismatch =
        fuzz::checkDirections(*Parsed.Problem);
    EXPECT_FALSE(Mismatch.has_value()) << *Mismatch;
  }
}

TEST(Corpus, DepFilesSurviveCacheRoundTrip) {
  // The fuzzer's memo axis, replayed over the pinned corpus: a cache
  // save/load must preserve every answer (witnesses are not persisted).
  DependenceCache Before;
  std::vector<CorpusCase> Cases = loadCorpus();
  std::vector<DependenceProblem> Problems;
  for (const CorpusCase &Case : Cases) {
    ProblemParseResult Parsed = parseProblemText(Case.Text);
    ASSERT_TRUE(Parsed.succeeded()) << Case.Path;
    Problems.push_back(*Parsed.Problem);
    Before.insertFull(Problems.back(), testDependence(Problems.back()));
  }
  std::string Path = "corpus-memo-" + std::to_string(::getpid()) +
                     ".cache";
  ASSERT_TRUE(Before.saveToFile(Path));
  DependenceCache After;
  ASSERT_TRUE(After.loadFromFile(Path));
  std::remove(Path.c_str());
  for (size_t I = 0; I < Problems.size(); ++I) {
    SCOPED_TRACE(Cases[I].Path);
    std::optional<CascadeResult> Want = Before.lookupFull(Problems[I]);
    std::optional<CascadeResult> Got = After.lookupFull(Problems[I]);
    ASSERT_TRUE(Want.has_value());
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(Got->Answer, Want->Answer);
    EXPECT_EQ(Got->DecidedBy, Want->DecidedBy);
    EXPECT_EQ(Got->Exact, Want->Exact);
  }
}

namespace {

struct LoopCase {
  std::string Path;
  std::string Source;
};

std::vector<LoopCase> loadLoopCorpus() {
  std::vector<LoopCase> Cases;
  for (const auto &Entry :
       std::filesystem::directory_iterator(EDDA_CORPUS_DIR)) {
    if (Entry.path().extension() != ".loop")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Cases.push_back({Entry.path().filename().string(), Buffer.str()});
  }
  std::sort(Cases.begin(), Cases.end(),
            [](const LoopCase &A, const LoopCase &B) {
              return A.Path < B.Path;
            });
  return Cases;
}

/// Pairwise answer comparison; \p Exact also requires identical cache
/// provenance (the serial-vs-threads bit-identical contract).
void expectSameAnswers(const AnalysisResult &Want,
                       const AnalysisResult &Got, bool Exact) {
  ASSERT_EQ(Want.Pairs.size(), Got.Pairs.size());
  for (size_t I = 0; I < Want.Pairs.size(); ++I) {
    SCOPED_TRACE("pair " + std::to_string(I));
    EXPECT_EQ(Got.Pairs[I].RefA, Want.Pairs[I].RefA);
    EXPECT_EQ(Got.Pairs[I].RefB, Want.Pairs[I].RefB);
    EXPECT_EQ(Got.Pairs[I].Answer, Want.Pairs[I].Answer);
    EXPECT_EQ(Got.Pairs[I].DecidedBy, Want.Pairs[I].DecidedBy);
    EXPECT_EQ(Got.Pairs[I].Exact, Want.Pairs[I].Exact);
    if (Exact)
      EXPECT_EQ(Got.Pairs[I].FromCache, Want.Pairs[I].FromCache);
    ASSERT_EQ(Got.Pairs[I].Directions.has_value(),
              Want.Pairs[I].Directions.has_value());
    if (Want.Pairs[I].Directions) {
      EXPECT_EQ(Got.Pairs[I].Directions->Vectors,
                Want.Pairs[I].Directions->Vectors);
      EXPECT_EQ(Got.Pairs[I].Directions->Distances,
                Want.Pairs[I].Directions->Distances);
    }
  }
}

} // namespace

TEST(Corpus, LoopFilesReplayDifferentially) {
  std::vector<LoopCase> Cases = loadLoopCorpus();
  ASSERT_GE(Cases.size(), 1u) << ".loop corpus missing?";
  for (const LoopCase &Case : Cases) {
    SCOPED_TRACE(Case.Path);
    ParseResult Parsed = parseProgram(Case.Source);
    ASSERT_TRUE(Parsed.succeeded())
        << (Parsed.Diags.empty() ? "" : Parsed.Diags[0].str());

    AnalyzerOptions Serial;
    Serial.ComputeDirections = true;
    Program SerialCopy = *Parsed.Prog;
    DependenceAnalyzer SerialAnalyzer(Serial);
    AnalysisResult Want = SerialAnalyzer.analyze(SerialCopy);
    ASSERT_GT(Want.Pairs.size(), 0u);

    // Axis: serial vs. threaded, bit-identical.
    AnalyzerOptions Threaded = Serial;
    Threaded.NumThreads = 4;
    Program ThreadedCopy = *Parsed.Prog;
    DependenceAnalyzer ThreadedAnalyzer(Threaded);
    expectSameAnswers(Want, ThreadedAnalyzer.analyze(ThreadedCopy),
                      /*Exact=*/true);

    // Axis: permuted pipeline; decisive answers must agree (Unknown is
    // legitimately order-dependent).
    AnalyzerOptions Permuted = Serial;
    Permuted.ComputeDirections = false;
    Permuted.Cascade.Pipeline =
        makePipeline("fm,residue,acyclic,svpc,gcd,const");
    ASSERT_TRUE(Permuted.Cascade.Pipeline);
    Program PermutedCopy = *Parsed.Prog;
    DependenceAnalyzer PermutedAnalyzer(Permuted);
    AnalysisResult Perm = PermutedAnalyzer.analyze(PermutedCopy);
    ASSERT_EQ(Perm.Pairs.size(), Want.Pairs.size());
    for (size_t I = 0; I < Want.Pairs.size(); ++I)
      if (Want.Pairs[I].Answer != DepAnswer::Unknown &&
          Perm.Pairs[I].Answer != DepAnswer::Unknown)
        EXPECT_EQ(Perm.Pairs[I].Answer, Want.Pairs[I].Answer)
            << "pair " << I;

    // Axis: cache save/load, then re-analysis from the loaded cache.
    std::string Path = "corpus-loop-" + std::to_string(::getpid()) +
                       ".cache";
    ASSERT_TRUE(SerialAnalyzer.cache().saveToFile(Path));
    DependenceAnalyzer Reloaded(Serial);
    ASSERT_TRUE(Reloaded.cache().loadFromFile(Path));
    std::remove(Path.c_str());
    Program ReloadedCopy = *Parsed.Prog;
    expectSameAnswers(Want, Reloaded.analyze(ReloadedCopy),
                      /*Exact=*/false);

    // Axis: per-pair enumeration oracle on the problems the analyzer
    // actually decided.
    for (const DependencePair &Pair : Want.Pairs) {
      if (Pair.Answer == DepAnswer::Unknown)
        continue;
      std::optional<BuiltProblem> Built = buildProblem(
          SerialCopy, Want.Refs[Pair.RefA], Want.Refs[Pair.RefB]);
      if (!Built || !Built->Exact)
        continue;
      std::optional<bool> Truth = oracleDependent(Built->Problem);
      if (Truth)
        EXPECT_EQ(*Truth, Pair.Answer == DepAnswer::Dependent)
            << refStr(SerialCopy, Want.Refs[Pair.RefA]) << " vs "
            << refStr(SerialCopy, Want.Refs[Pair.RefB]);
    }
  }
}

TEST(Corpus, RoundTripsThroughPrinter) {
  for (const CorpusCase &Case : loadCorpus()) {
    SCOPED_TRACE(Case.Path);
    ProblemParseResult Parsed = parseProblemText(Case.Text);
    ASSERT_TRUE(Parsed.succeeded());
    std::string Printed = printProblemText(*Parsed.Problem);
    ProblemParseResult Again = parseProblemText(Printed);
    ASSERT_TRUE(Again.succeeded()) << Printed;
    EXPECT_EQ(Again.Problem->serialize(true),
              Parsed.Problem->serialize(true));
  }
}
