//===- tests/baseline/BaselineTest.cpp - Inexact baseline tests -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Banerjee.h"

#include "deptest/Cascade.h"
#include "testutil/Helpers.h"
#include "oracle/Oracle.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;
using namespace edda::oracle;

TEST(Baseline, SimpleGcdCatchesParity) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({2, -2}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  EXPECT_EQ(baselineSimpleGcd(P), BaselineAnswer::Independent);
  EXPECT_EQ(baselineGcdBanerjee(P), BaselineAnswer::Independent);
}

TEST(Baseline, BanerjeeCatchesRangeGap) {
  // a[i] vs a[i'+10], both 1..10: subscript difference never zero.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, -10)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  EXPECT_EQ(baselineSimpleGcd(P), BaselineAnswer::AssumedDependent);
  EXPECT_EQ(baselineGcdBanerjee(P), BaselineAnswer::Independent);
}

TEST(Baseline, MissesCoupledSubscripts) {
  // a[i][i+1] vs a[i'][i']: per-dimension reasoning cannot see the
  // joint inconsistency; the exact cascade can (section 7's gap).
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .eq({1, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  EXPECT_EQ(baselineGcdBanerjee(P), BaselineAnswer::AssumedDependent);
  CascadeResult Exact = testDependence(P);
  EXPECT_EQ(Exact.Answer, DepAnswer::Independent);
}

TEST(Baseline, TrapezoidRelaxationHandlesTriangular) {
  // Triangular nest with an out-of-range distance: the transitive
  // relaxation still proves it.
  DependenceProblem P =
      ProblemBuilder(2, 2, 2)
          .eq({0, 1, 0, -1}, -11) // j = j' + 11, ranges <= 10
          .bounds(0, 1, 10)
          .bounds(2, 1, 10)
          .loBound(1, {0, 0, 0, 0}, 1)
          .hiBound(1, {1, 0, 0, 0}, 0)
          .loBound(3, {0, 0, 0, 0}, 1)
          .hiBound(3, {0, 0, 1, 0}, 0)
          .build();
  EXPECT_EQ(baselineGcdBanerjee(P), BaselineAnswer::Independent);
}

TEST(Baseline, SymbolicBoundsAssumeDependence) {
  // Unknown bounds leave the range unbounded: conservative.
  DependenceProblem P = ProblemBuilder(1, 1, 1, 1)
                            .eq({1, -1, -1}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  EXPECT_EQ(baselineGcdBanerjee(P), BaselineAnswer::AssumedDependent);
}

TEST(Baseline, ConservativenessProperty) {
  // The baseline may lose precision but must never claim independence
  // for a really-dependent pair.
  SplitRng Rng(31);
  unsigned Checked = 0;
  for (unsigned Iter = 0; Iter < 300; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    std::optional<bool> Truth = oracleDependent(P);
    if (!Truth)
      continue;
    ++Checked;
    if (*Truth) {
      EXPECT_EQ(baselineSimpleGcd(P), BaselineAnswer::AssumedDependent)
          << P.str();
      EXPECT_EQ(baselineGcdBanerjee(P), BaselineAnswer::AssumedDependent)
          << P.str();
    }
  }
  EXPECT_GT(Checked, 100u);
}

TEST(BaselineDirections, CoverRealizedPatterns) {
  SplitRng Rng(77);
  unsigned Checked = 0;
  for (unsigned Iter = 0; Iter < 200; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    std::optional<std::set<DirVector>> Truth = oracleDirections(P);
    if (!Truth || Truth->empty())
      continue;
    ++Checked;
    DirectionResult R = baselineDirectionVectors(P);
    for (const DirVector &Real : *Truth) {
      bool Covered = false;
      for (const DirVector &Reported : R.Vectors)
        Covered = Covered || dirMatches(Reported, Real);
      EXPECT_TRUE(Covered) << dirVectorStr(Real) << "\n" << P.str();
    }
  }
  EXPECT_GT(Checked, 60u);
}

TEST(BaselineDirections, ReportsSpuriousVectorsTheExactTestKills) {
  // Transposed coupling a[i][j] = a[j'][i']: the equations tie i to j'
  // and j to i' across dimension pairs, which per-pair rectangular
  // reasoning cannot see. Direction (<,<) demands i < i' = j and
  // j < j' = i simultaneously — impossible, and the exact cascade
  // refutes it (the direction constraints close a negative residue
  // cycle), while the baseline keeps it. This is the 22% direction
  // vector inflation of section 7.
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({1, 0, 0, -1}, 0) // i - j' == 0
                            .eq({0, 1, -1, 0}, 0) // j - i' == 0
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  DirectionResult Exact = computeDirectionVectors(P);
  DirectionResult Inexact = baselineDirectionVectors(P);
  ASSERT_TRUE(Exact.Exact);
  std::set<DirVector> ExactSet(Exact.Vectors.begin(),
                               Exact.Vectors.end());
  std::set<DirVector> InexactSet(Inexact.Vectors.begin(),
                                 Inexact.Vectors.end());
  EXPECT_TRUE(InexactSet.count({Dir::Less, Dir::Less}));
  EXPECT_FALSE(ExactSet.count({Dir::Less, Dir::Less}));
  EXPECT_GT(InexactSet.size(), ExactSet.size());
  // And the exact set matches enumeration.
  std::optional<std::set<DirVector>> Truth = oracleDirections(P);
  ASSERT_TRUE(Truth.has_value());
  EXPECT_EQ(ExactSet, *Truth);
}

TEST(BaselineDirections, IndependentRootShortCircuits) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({2, -2}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionResult R = baselineDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Independent);
  EXPECT_TRUE(R.Vectors.empty());
}
