//===- tests/ir/ProgramTest.cpp - Program/Stmt tests ----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "parser/Parser.h"
#include "gtest/gtest.h"

using namespace edda;

TEST(Program, SymbolTables) {
  Program P("demo");
  unsigned I = P.addVar("i", VarKind::Loop);
  unsigned N = P.addVar("n", VarKind::Symbolic);
  unsigned A = P.addArray("a", {100});
  EXPECT_EQ(P.numVars(), 2u);
  EXPECT_EQ(P.numArrays(), 1u);
  EXPECT_EQ(P.lookupVar("i"), std::optional<unsigned>(I));
  EXPECT_EQ(P.lookupVar("n"), std::optional<unsigned>(N));
  EXPECT_EQ(P.lookupVar("missing"), std::nullopt);
  EXPECT_EQ(P.lookupArray("a"), std::optional<unsigned>(A));
  EXPECT_EQ(P.var(N).Kind, VarKind::Symbolic);
  EXPECT_EQ(P.array(A).rank(), 1u);
  P.setVarKind(N, VarKind::Scalar);
  EXPECT_EQ(P.var(N).Kind, VarKind::Scalar);
}

TEST(Program, StmtConstructionAndCasts) {
  Program P("demo");
  unsigned I = P.addVar("i", VarKind::Loop);
  unsigned A = P.addArray("a", {10});
  auto Loop = std::make_unique<LoopStmt>(I, Expr::makeConst(1),
                                         Expr::makeConst(10), 1);
  std::vector<ExprPtr> Subs;
  Subs.push_back(Expr::makeVar(I));
  Loop->body().push_back(std::make_unique<AssignStmt>(
      A, std::move(Subs), Expr::makeConst(0)));
  EXPECT_EQ(Loop->kind(), StmtKind::Loop);
  const AssignStmt &Assign = asAssign(*Loop->body()[0]);
  EXPECT_TRUE(Assign.isArrayLhs());
  EXPECT_EQ(Assign.lhsArray(), A);
  EXPECT_EQ(Assign.lhsSubscripts().size(), 1u);
}

TEST(Program, CloneIsDeep) {
  Program P("demo");
  unsigned I = P.addVar("i", VarKind::Loop);
  auto Loop = std::make_unique<LoopStmt>(I, Expr::makeConst(1),
                                         Expr::makeConst(3), 1);
  Loop->body().push_back(
      std::make_unique<AssignStmt>(P.addVar("s", VarKind::Scalar),
                                   Expr::makeConst(7)));
  P.body().push_back(std::move(Loop));

  Program Copy(P);
  // Mutating the copy leaves the original alone.
  asLoop(*Copy.body()[0]).setHi(Expr::makeConst(99));
  EXPECT_EQ(asLoop(*P.body()[0]).hi()->constValue(), 3);
  EXPECT_EQ(asLoop(*Copy.body()[0]).hi()->constValue(), 99);
}

TEST(Program, PrintParsesBack) {
  const char *Source = R"(program roundtrip
  array a[100][100]
  read n
  for i = 1 to n do
    for j = 1 to i do
      a[i][j] = a[i - 1][j + 1] + 3
    end
  end
end
)";
  ParseResult First = parseProgram(Source);
  ASSERT_TRUE(First.succeeded());
  std::string Printed = First.Prog->print();
  ParseResult Second = parseProgram(Printed);
  ASSERT_TRUE(Second.succeeded()) << Printed;
  // Printing is a fixpoint after one round.
  EXPECT_EQ(Second.Prog->print(), Printed);
}

TEST(Program, PrintShowsStep) {
  const char *Source = R"(program s
  array a[10]
  for i = 1 to 9 step 2 do
    a[i] = 0
  end
end
)";
  ParseResult R = parseProgram(Source);
  ASSERT_TRUE(R.succeeded());
  EXPECT_NE(R.Prog->print().find("step 2"), std::string::npos);
}

TEST(Program, ParallelFlagSurvivesClone) {
  Program P("demo");
  unsigned I = P.addVar("i", VarKind::Loop);
  auto Loop = std::make_unique<LoopStmt>(I, Expr::makeConst(1),
                                         Expr::makeConst(3), 1);
  Loop->setParallel(true);
  StmtPtr Copy = Loop->clone();
  EXPECT_TRUE(asLoop(*Copy).isParallel());
}
