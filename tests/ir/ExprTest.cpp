//===- tests/ir/ExprTest.cpp - Expression tests ---------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include "gtest/gtest.h"

#include <climits>

using namespace edda;

namespace {

std::string nameOf(unsigned Id) { return "v" + std::to_string(Id); }

} // namespace

TEST(Expr, LeafAccessors) {
  ExprPtr C = Expr::makeConst(42);
  EXPECT_EQ(C->kind(), ExprKind::Const);
  EXPECT_EQ(C->constValue(), 42);
  ExprPtr V = Expr::makeVar(3);
  EXPECT_EQ(V->kind(), ExprKind::Var);
  EXPECT_EQ(V->varId(), 3u);
}

TEST(Expr, Rendering) {
  ExprPtr E = Expr::makeAdd(Expr::makeMul(Expr::makeConst(2),
                                          Expr::makeVar(0)),
                            Expr::makeNeg(Expr::makeVar(1)));
  EXPECT_EQ(E->str(nameOf), "((2 * v0) + (-v1))");
}

TEST(Expr, SubstituteReplacesVars) {
  ExprPtr E = Expr::makeAdd(Expr::makeVar(0), Expr::makeVar(1));
  ExprPtr Out = E->substitute([](unsigned Id) -> ExprPtr {
    if (Id == 0)
      return Expr::makeConst(7);
    return nullptr;
  });
  EXPECT_EQ(Out->str(nameOf), "(7 + v1)");
}

TEST(Expr, SubstituteInsideArrayRead) {
  std::vector<ExprPtr> Subs;
  Subs.push_back(Expr::makeVar(0));
  ExprPtr E = Expr::makeArrayRead(5, std::move(Subs));
  ExprPtr Out = E->substitute([](unsigned Id) -> ExprPtr {
    return Id == 0 ? Expr::makeConst(9) : nullptr;
  });
  ASSERT_EQ(Out->kind(), ExprKind::ArrayRead);
  EXPECT_EQ(Out->subscripts()[0]->constValue(), 9);
}

TEST(Expr, CollectVarsFirstSeenOrder) {
  ExprPtr E = Expr::makeAdd(
      Expr::makeVar(2),
      Expr::makeSub(Expr::makeVar(0), Expr::makeVar(2)));
  std::vector<unsigned> Vars;
  E->collectVars(Vars);
  EXPECT_EQ(Vars, (std::vector<unsigned>{2, 0}));
}

TEST(Expr, References) {
  ExprPtr E = Expr::makeMul(Expr::makeVar(1), Expr::makeConst(3));
  EXPECT_TRUE(E->references(1));
  EXPECT_FALSE(E->references(0));
}

TEST(Expr, CollectArrayReads) {
  // a[b[i]] + b[j]: reads in DFS order a, b (nested), b.
  std::vector<ExprPtr> Inner;
  Inner.push_back(Expr::makeVar(0));
  ExprPtr B1 = Expr::makeArrayRead(1, std::move(Inner));
  std::vector<ExprPtr> Outer;
  Outer.push_back(B1);
  ExprPtr A = Expr::makeArrayRead(0, std::move(Outer));
  std::vector<ExprPtr> Simple;
  Simple.push_back(Expr::makeVar(1));
  ExprPtr B2 = Expr::makeArrayRead(1, std::move(Simple));
  ExprPtr E = Expr::makeAdd(A, B2);

  std::vector<const Expr *> Reads;
  E->collectArrayReads(Reads);
  ASSERT_EQ(Reads.size(), 3u);
  EXPECT_EQ(Reads[0]->arrayId(), 0u);
  EXPECT_EQ(Reads[1]->arrayId(), 1u);
  EXPECT_EQ(Reads[2]->arrayId(), 1u);
  EXPECT_TRUE(E->containsArrayRead());
  EXPECT_FALSE(Expr::makeConst(1)->containsArrayRead());
}

TEST(AffineExpr, Construction) {
  AffineExpr A = AffineExpr::variable(2, 3);
  EXPECT_EQ(A.coeff(2), 3);
  EXPECT_EQ(A.coeff(1), 0);
  EXPECT_EQ(A.constant(), 0);
  EXPECT_FALSE(A.isConstant());
  EXPECT_TRUE(AffineExpr(5).isConstant());
}

TEST(AffineExpr, ArithmeticCombinesTerms) {
  AffineExpr A = AffineExpr::variable(0, 2) + AffineExpr::variable(1, 1) +
                 AffineExpr(4);
  AffineExpr B = AffineExpr::variable(0, -2) + AffineExpr(1);
  AffineExpr Sum = A + B;
  EXPECT_EQ(Sum.coeff(0), 0); // cancelled and removed
  EXPECT_EQ(Sum.terms().size(), 1u);
  EXPECT_EQ(Sum.constant(), 5);
}

TEST(AffineExpr, ScaledAndNegated) {
  AffineExpr A = AffineExpr::variable(0, 2) + AffineExpr(3);
  AffineExpr S = A.scaled(-2);
  EXPECT_EQ(S.coeff(0), -4);
  EXPECT_EQ(S.constant(), -6);
  EXPECT_EQ((-A).coeff(0), -2);
}

TEST(AffineExpr, Substituted) {
  // x0 := 2*x1 + 1 in (3*x0 + x1 + 5).
  AffineExpr E = AffineExpr::variable(0, 3) + AffineExpr::variable(1, 1) +
                 AffineExpr(5);
  AffineExpr Repl = AffineExpr::variable(1, 2) + AffineExpr(1);
  AffineExpr Out = E.substituted(0, Repl);
  EXPECT_EQ(Out.coeff(0), 0);
  EXPECT_EQ(Out.coeff(1), 7);
  EXPECT_EQ(Out.constant(), 8);
}

TEST(AffineExpr, Evaluate) {
  AffineExpr E = AffineExpr::variable(0, 2) + AffineExpr::variable(3, -1) +
                 AffineExpr(10);
  std::optional<int64_t> V =
      E.evaluate([](unsigned Id) { return static_cast<int64_t>(Id); });
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 2 * 0 - 3 + 10);
}

TEST(AffineExpr, OverflowPoisons) {
  AffineExpr Big = AffineExpr::variable(0, INT64_MAX);
  AffineExpr Sum = Big + AffineExpr::variable(0, 1);
  EXPECT_TRUE(Sum.overflowed());
  EXPECT_TRUE(Big.scaled(3).overflowed());
}

TEST(AffineExpr, Str) {
  AffineExpr E = AffineExpr::variable(0, 1) + AffineExpr::variable(1, -2) +
                 AffineExpr(-3);
  EXPECT_EQ(E.str(nameOf), "v0 - 2*v1 - 3");
  EXPECT_EQ(AffineExpr(7).str(nameOf), "7");
}

TEST(ToAffine, LinearTrees) {
  // 2*(i + 3) - j.
  ExprPtr E = Expr::makeSub(
      Expr::makeMul(Expr::makeConst(2),
                    Expr::makeAdd(Expr::makeVar(0), Expr::makeConst(3))),
      Expr::makeVar(1));
  std::optional<AffineExpr> A = toAffine(E);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->coeff(0), 2);
  EXPECT_EQ(A->coeff(1), -1);
  EXPECT_EQ(A->constant(), 6);
}

TEST(ToAffine, RightConstantMultiply) {
  ExprPtr E = Expr::makeMul(Expr::makeVar(0), Expr::makeConst(5));
  std::optional<AffineExpr> A = toAffine(E);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->coeff(0), 5);
}

TEST(ToAffine, RejectsNonlinear) {
  ExprPtr E = Expr::makeMul(Expr::makeVar(0), Expr::makeVar(1));
  EXPECT_FALSE(toAffine(E).has_value());
}

TEST(ToAffine, RejectsArrayReads) {
  std::vector<ExprPtr> Subs;
  Subs.push_back(Expr::makeVar(0));
  ExprPtr E = Expr::makeArrayRead(0, std::move(Subs));
  EXPECT_FALSE(toAffine(E).has_value());
}

TEST(ExprEquals, StructuralEquality) {
  ExprPtr A = Expr::makeAdd(Expr::makeVar(0), Expr::makeConst(3));
  ExprPtr B = Expr::makeAdd(Expr::makeVar(0), Expr::makeConst(3));
  ExprPtr C = Expr::makeAdd(Expr::makeConst(3), Expr::makeVar(0));
  EXPECT_TRUE(exprEquals(A, B));
  EXPECT_FALSE(exprEquals(A, C)); // structural, not semantic
  EXPECT_FALSE(exprEquals(A, Expr::makeVar(0)));
  EXPECT_FALSE(exprEquals(Expr::makeVar(0), Expr::makeVar(1)));
  EXPECT_TRUE(exprEquals(Expr::makeNeg(A), Expr::makeNeg(B)));

  std::vector<ExprPtr> S1, S2, S3;
  S1.push_back(Expr::makeVar(0));
  S2.push_back(Expr::makeVar(0));
  S3.push_back(Expr::makeVar(1));
  ExprPtr R1 = Expr::makeArrayRead(0, std::move(S1));
  ExprPtr R2 = Expr::makeArrayRead(0, std::move(S2));
  ExprPtr R3 = Expr::makeArrayRead(0, std::move(S3));
  EXPECT_TRUE(exprEquals(R1, R2));
  EXPECT_FALSE(exprEquals(R1, R3));
}

TEST(ToAffine, NegationAndNesting) {
  ExprPtr E = Expr::makeNeg(
      Expr::makeSub(Expr::makeConst(4), Expr::makeVar(2)));
  std::optional<AffineExpr> A = toAffine(E);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->coeff(2), 1);
  EXPECT_EQ(A->constant(), -4);
}
