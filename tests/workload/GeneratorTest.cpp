//===- tests/workload/GeneratorTest.cpp - Workload generator tests --------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "analysis/Analyzer.h"
#include "parser/Parser.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

TEST(Generator, ProfilesMatchPaperTotals) {
  const std::vector<ProgramProfile> &Profiles = perfectClubProfiles();
  ASSERT_EQ(Profiles.size(), 13u);
  DecisionTargets Total;
  for (const ProgramProfile &P : Profiles) {
    Total.Constant += P.Table1.Constant;
    Total.Gcd += P.Table1.Gcd;
    Total.Svpc += P.Table1.Svpc;
    Total.Acyclic += P.Table1.Acyclic;
    Total.Residue += P.Table1.Residue;
    Total.Fm += P.Table1.Fm;
  }
  // The paper's Table 1 TOTAL row.
  EXPECT_EQ(Total.Constant, 11859u);
  EXPECT_EQ(Total.Gcd, 384u);
  EXPECT_EQ(Total.Svpc, 5176u);
  EXPECT_EQ(Total.Acyclic, 323u);
  EXPECT_EQ(Total.Residue, 6u);
  EXPECT_EQ(Total.Fm, 174u);

  // Table 3 TOTAL row (unique cases).
  unsigned USvpc = 0, UAcyclic = 0, UResidue = 0, UFm = 0;
  for (const ProgramProfile &P : Profiles) {
    USvpc += P.Unique.Svpc;
    UAcyclic += P.Unique.Acyclic;
    UResidue += P.Unique.Residue;
    UFm += P.Unique.Fm;
  }
  EXPECT_EQ(USvpc, 262u);
  EXPECT_EQ(UAcyclic, 34u);
  EXPECT_EQ(UResidue, 4u);
  EXPECT_EQ(UFm, 32u);
}

TEST(Generator, SourceParses) {
  GeneratorOptions Opts;
  Opts.Scale = 0.05;
  for (const ProgramProfile &Profile : perfectClubProfiles()) {
    std::string Source = generateProgramSource(Profile, Opts);
    ParseResult R = parseProgram(Source);
    EXPECT_TRUE(R.succeeded()) << Profile.Name;
  }
}

TEST(Generator, Deterministic) {
  GeneratorOptions Opts;
  Opts.Scale = 0.05;
  std::string A =
      generateProgramSource(perfectClubProfiles()[0], Opts);
  std::string B =
      generateProgramSource(perfectClubProfiles()[0], Opts);
  EXPECT_EQ(A, B);
}

TEST(Generator, SymbolicModeAddsReadDecl) {
  GeneratorOptions Opts;
  Opts.Scale = 0.2;
  Opts.IncludeSymbolic = true;
  // NA has symbolic extras in its profile.
  const ProgramProfile *NA = nullptr;
  for (const ProgramProfile &P : perfectClubProfiles())
    if (P.Name == "NA")
      NA = &P;
  ASSERT_NE(NA, nullptr);
  std::string Source = generateProgramSource(*NA, Opts);
  EXPECT_NE(Source.find("read n"), std::string::npos);
}

/// Templates must be decided by the intended cascade test. Run a small
/// scaled suite and check each program's decision mix is dominated by
/// the targeted kinds.
TEST(Generator, DecisionMixMatchesTargets) {
  GeneratorOptions Opts;
  Opts.Scale = 0.05;
  AnalyzerOptions AOpts;
  AOpts.UseMemoization = false;

  for (const ProgramProfile &Profile : perfectClubProfiles()) {
    std::string Source = generateProgramSource(Profile, Opts);
    Program P = mustParse(Source, /*Prepass=*/false);
    DependenceAnalyzer Analyzer(AOpts);
    AnalysisResult R = Analyzer.analyze(P);

    EXPECT_EQ(R.UnanalyzablePairs, 0u) << Profile.Name;
    EXPECT_EQ(R.Stats.decided(TestKind::Unanalyzable), 0u)
        << Profile.Name;
    auto CheckKind = [&](TestKind Kind, unsigned Target) {
      uint64_t Got = R.Stats.decided(Kind);
      if (Target == 0) {
        EXPECT_EQ(Got, 0u)
            << Profile.Name << " " << testKindName(Kind);
      } else {
        EXPECT_GT(Got, 0u)
            << Profile.Name << " " << testKindName(Kind);
      }
    };
    CheckKind(TestKind::ArrayConstant, Profile.Table1.Constant);
    CheckKind(TestKind::GcdTest, Profile.Table1.Gcd);
    CheckKind(TestKind::Svpc, Profile.Table1.Svpc);
    CheckKind(TestKind::Acyclic, Profile.Table1.Acyclic);
    CheckKind(TestKind::LoopResidue, Profile.Table1.Residue);
    CheckKind(TestKind::FourierMotzkin, Profile.Table1.Fm);
  }
}

/// At full scale the per-kind decision counts track the paper's Table 1
/// within a small tolerance (the +/-1 rounding of case-to-decision
/// conversion).
TEST(Generator, FullScaleCountsTrackTable1ForAP) {
  GeneratorOptions Opts; // Scale = 1
  const ProgramProfile &AP = perfectClubProfiles()[0];
  std::string Source = generateProgramSource(AP, Opts);
  Program P = mustParse(Source, /*Prepass=*/false);
  AnalyzerOptions AOpts;
  AOpts.UseMemoization = false;
  DependenceAnalyzer Analyzer(AOpts);
  AnalysisResult R = Analyzer.analyze(P);
  auto Near = [](uint64_t Got, unsigned Want) {
    double Tolerance = 0.05 * Want + 3;
    return Got + Tolerance >= Want && Got <= Want + Tolerance;
  };
  EXPECT_TRUE(Near(R.Stats.decided(TestKind::ArrayConstant),
                   AP.Table1.Constant))
      << R.Stats.decided(TestKind::ArrayConstant);
  EXPECT_TRUE(Near(R.Stats.decided(TestKind::GcdTest), AP.Table1.Gcd))
      << R.Stats.decided(TestKind::GcdTest);
  EXPECT_TRUE(Near(R.Stats.decided(TestKind::Svpc), AP.Table1.Svpc))
      << R.Stats.decided(TestKind::Svpc);
}

TEST(Generator, MemoizationShrinksUniqueCases) {
  GeneratorOptions Opts;
  Opts.Scale = 0.2;
  const ProgramProfile &SR = perfectClubProfiles()[9]; // highly repetitive
  ASSERT_EQ(SR.Name, "SR");
  std::string Source = generateProgramSource(SR, Opts);
  Program P = mustParse(Source, /*Prepass=*/false);
  DependenceAnalyzer Analyzer;
  AnalysisResult R = Analyzer.analyze(P);
  // Most real-test queries must be served from the cache (constant
  // pairs bypass both the tests and the cache).
  uint64_t ExactDecisions =
      R.Stats.totalDecided() - R.Stats.decided(TestKind::ArrayConstant);
  EXPECT_GT(R.Stats.MemoHitsFull, ExactDecisions);
}

TEST(Generator, WrapVariantsSplitSimpleKeysOnly) {
  // Generate LG (high wrap factor) and compare unique counts under the
  // simple and improved schemes.
  GeneratorOptions Opts;
  Opts.Scale = 0.3;
  const ProgramProfile &LG = perfectClubProfiles()[2];
  ASSERT_EQ(LG.Name, "LG");
  std::string Source = generateProgramSource(LG, Opts);

  MemoOptions Simple;
  Simple.ImprovedKey = false;
  MemoOptions Improved;
  Improved.ImprovedKey = true;
  AnalyzerOptions SimpleOpts;
  SimpleOpts.Memo = Simple;
  AnalyzerOptions ImprovedOpts;
  ImprovedOpts.Memo = Improved;

  Program P1 = mustParse(Source, false);
  DependenceAnalyzer A1(SimpleOpts);
  A1.analyze(P1);
  Program P2 = mustParse(Source, false);
  DependenceAnalyzer A2(ImprovedOpts);
  A2.analyze(P2);
  EXPECT_GT(A1.cache().uniqueFull(), A2.cache().uniqueFull());
}

TEST(Generator, WrapDepthCapRespected) {
  // LG's profile wraps cases in three unused loops; the cap trims that
  // for interpreter-bound consumers.
  const ProgramProfile *LG = nullptr;
  for (const ProgramProfile &P : perfectClubProfiles())
    if (P.Name == "LG")
      LG = &P;
  ASSERT_NE(LG, nullptr);
  EXPECT_EQ(LG->WrapDepth, 3u);

  GeneratorOptions Deep;
  Deep.Scale = 0.02;
  GeneratorOptions Shallow = Deep;
  Shallow.MaxWrapDepth = 0;
  std::string DeepSrc = generateProgramSource(*LG, Deep);
  std::string ShallowSrc = generateProgramSource(*LG, Shallow);
  EXPECT_NE(DeepSrc.find("for w3"), std::string::npos);
  EXPECT_EQ(ShallowSrc.find("for w3"), std::string::npos);
  // Both parse and analyze to the same decision mix.
  AnalyzerOptions AOpts;
  AOpts.UseMemoization = false;
  Program P1 = mustParse(DeepSrc, false);
  Program P2 = mustParse(ShallowSrc, false);
  DependenceAnalyzer A1(AOpts), A2(AOpts);
  AnalysisResult R1 = A1.analyze(P1);
  AnalysisResult R2 = A2.analyze(P2);
  EXPECT_EQ(R1.Stats.decided(TestKind::Svpc),
            R2.Stats.decided(TestKind::Svpc));
  EXPECT_EQ(R1.Stats.decided(TestKind::ArrayConstant),
            R2.Stats.decided(TestKind::ArrayConstant));
}

TEST(Generator, SuiteCoversAllPrograms) {
  GeneratorOptions Opts;
  Opts.Scale = 0.01;
  auto Suite = generatePerfectClubSuite(Opts);
  ASSERT_EQ(Suite.size(), 13u);
  EXPECT_EQ(Suite[0].first, "AP");
  EXPECT_EQ(Suite[12].first, "WS");
}

TEST(SplitRngTest, DeterministicAndBounded) {
  SplitRng A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  SplitRng C(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(C.below(13), 13u);
}

TEST(Generator, RandomEditsKeepProgramsParseable) {
  // The incr fuzz axis leans on this: every edit leaves valid LoopLang
  // that survives a print -> parse round trip, and the same rng state
  // applies the same edit.
  ParseResult PR = parseProgram(generateProgramSource(
      perfectClubProfiles().front(), GeneratorOptions{}));
  ASSERT_TRUE(PR.succeeded());
  Program Prog = std::move(*PR.Prog);
  SplitRng Rng(99);
  for (int I = 0; I < 40; ++I) {
    std::string Desc = applyRandomEdit(Prog, Rng);
    EXPECT_FALSE(Desc.empty());
    ParseResult Round = parseProgram(Prog.print());
    ASSERT_TRUE(Round.succeeded())
        << "edit " << I << " (" << Desc << ") broke the program:\n"
        << Prog.print();
    Prog = std::move(*Round.Prog);
  }
}

TEST(Generator, RandomEditsDeterministicInRng) {
  auto RunEdits = [](uint64_t Seed) {
    ParseResult PR = parseProgram(generateProgramSource(
        perfectClubProfiles().front(), GeneratorOptions{}));
    EXPECT_TRUE(PR.succeeded());
    Program Prog = std::move(*PR.Prog);
    SplitRng Rng(Seed);
    std::string Log;
    for (int I = 0; I < 10; ++I)
      Log += applyRandomEdit(Prog, Rng) + ";";
    return Log + Prog.print();
  };
  EXPECT_EQ(RunEdits(5), RunEdits(5));
  EXPECT_NE(RunEdits(5), RunEdits(6));
}
