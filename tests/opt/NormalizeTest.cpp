//===- tests/opt/NormalizeTest.cpp - Loop normalization tests -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/Normalize.h"

#include "analysis/Interp.h"
#include "parser/Parser.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

Program normalized(const std::string &Source) {
  Program P = mustParse(Source, /*Prepass=*/false);
  Program Before(P);
  normalizeLoops(P);
  InterpResult R1 = interpret(Before);
  InterpResult R2 = interpret(P);
  EXPECT_TRUE(R1.Ok);
  EXPECT_TRUE(R2.Ok);
  EXPECT_EQ(R1.Memory, R2.Memory) << "normalization changed semantics";
  return P;
}

const LoopStmt &firstLoop(const Program &P) {
  for (const StmtPtr &S : P.body())
    if (S->kind() == StmtKind::Loop)
      return asLoop(*S);
  ADD_FAILURE() << "no loop in program";
  static LoopStmt Dummy(0, Expr::makeConst(0), Expr::makeConst(0), 1);
  return Dummy;
}

} // namespace

TEST(Normalize, StepTwo) {
  Program P = normalized(R"(program s
  array a[30]
  for i = 1 to 9 step 2 do
    a[i] = 1
  end
end
)");
  const LoopStmt &L = firstLoop(P);
  EXPECT_EQ(L.step(), 1);
  EXPECT_EQ(L.lo()->constValue(), 0);
  EXPECT_EQ(L.hi()->constValue(), 4); // 5 iterations: 1,3,5,7,9
  // First body statement recomputes the original variable.
  ASSERT_FALSE(L.body().empty());
  EXPECT_EQ(L.body()[0]->kind(), StmtKind::Assign);
}

TEST(Normalize, NegativeStep) {
  Program P = normalized(R"(program s
  array a[30]
  for i = 9 to 1 step -3 do
    a[i] = 1
  end
end
)");
  const LoopStmt &L = firstLoop(P);
  EXPECT_EQ(L.step(), 1);
  EXPECT_EQ(L.hi()->constValue(), 2); // 9, 6, 3
}

TEST(Normalize, StepOneUntouched) {
  Program P = normalized(R"(program s
  array a[30]
  for i = 1 to 9 do
    a[i] = 1
  end
end
)");
  const LoopStmt &L = firstLoop(P);
  EXPECT_EQ(L.lo()->constValue(), 1);
  EXPECT_EQ(L.hi()->constValue(), 9);
  EXPECT_EQ(L.body().size(), 1u); // no recompute inserted
}

TEST(Normalize, EmptyLoopStaysEmpty) {
  Program P = normalized(R"(program s
  array a[30]
  for i = 9 to 1 step 2 do
    a[i] = 1
  end
end
)");
  const LoopStmt &L = firstLoop(P);
  EXPECT_EQ(L.hi()->constValue(), -1); // zero-trip normalized range
}

TEST(Normalize, NonConstantBoundsSkipped) {
  Program P = normalized(R"(program s
  array a[30]
  read n
  for i = 1 to n step 2 do
    a[i] = 1
  end
end
)");
  EXPECT_EQ(firstLoop(P).step(), 2);
}

TEST(Normalize, NestedStrides) {
  Program P = normalized(R"(program s
  array a[30][30]
  for i = 2 to 10 step 2 do
    for j = 1 to 7 step 3 do
      a[i][j] = i + j
    end
  end
end
)");
  const LoopStmt &Outer = firstLoop(P);
  EXPECT_EQ(Outer.step(), 1);
  // Inner loop is the second statement of the rebuilt outer body
  // (after the recompute assignment).
  ASSERT_GE(Outer.body().size(), 2u);
  const LoopStmt &Inner = asLoop(*Outer.body()[1]);
  EXPECT_EQ(Inner.step(), 1);
}

TEST(Normalize, FreshVariableNameAvoidsCollision) {
  Program P = normalized(R"(program s
  array a[30]
  i__n = 7
  for i = 1 to 9 step 2 do
    a[i] = i__n
  end
end
)");
  // The obvious fresh name "i__n" is taken; a suffixed one is used.
  EXPECT_TRUE(P.lookupVar("i__n1").has_value());
}
