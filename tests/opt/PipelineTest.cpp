//===- tests/opt/PipelineTest.cpp - Prepass pipeline tests ----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

#include "analysis/Builder.h"
#include "analysis/Interp.h"
#include "analysis/Refs.h"
#include "parser/Parser.h"
#include "testutil/Helpers.h"
#include "workload/Generator.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

Program prepassed(const std::string &Source) {
  Program P = mustParse(Source, /*Prepass=*/false);
  Program Before(P);
  runPrepass(P);
  InterpResult R1 = interpret(Before);
  InterpResult R2 = interpret(P);
  EXPECT_TRUE(R1.Ok);
  EXPECT_TRUE(R2.Ok);
  EXPECT_EQ(R1.Memory, R2.Memory) << "prepass changed semantics";
  return P;
}

/// True when every reference's subscripts are affine in enclosing loop
/// variables and symbolics (i.e. buildProblem succeeds for every pair
/// with itself).
bool allAnalyzable(const Program &P) {
  std::vector<ArrayReference> Refs = collectReferences(P);
  for (const ArrayReference &Ref : Refs)
    if (!buildProblem(P, Ref, Ref))
      return false;
  return true;
}

} // namespace

TEST(Pipeline, PaperSection8EndToEnd) {
  // The paper's full motivating chain: strided loop + induction scalar +
  // param, all collapsing to affine subscripts.
  Program P = prepassed(R"(program s
  array a[500]
  param n = 100
  iz = 0
  for i = 1 to 10 do
    iz = iz + 2
    a[iz + n] = a[iz + 2 * n + 1] + 3
  end
end
)");
  EXPECT_TRUE(allAnalyzable(P));
}

TEST(Pipeline, StridedInduction) {
  // Induction inside a strided loop: normalization first, then
  // induction over the normalized variable.
  Program P = prepassed(R"(program s
  array a[500]
  k = 0
  for i = 1 to 19 step 2 do
    k = k + 1
    a[k] = i
  end
end
)");
  EXPECT_TRUE(allAnalyzable(P));
}

TEST(Pipeline, SymbolicProgramAnalyzable) {
  Program P = prepassed(R"(program s
  array a[500]
  read n
  for i = 1 to 10 do
    a[i + n] = a[i + 2 * n + 1] + 3
  end
end
)");
  EXPECT_TRUE(allAnalyzable(P));
}

TEST(Pipeline, NonAffineStaysUnanalyzable) {
  Program P = prepassed(R"(program s
  array a[500]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[i * j] = 1
    end
  end
end
)");
  EXPECT_FALSE(allAnalyzable(P));
}

TEST(Pipeline, IndirectionStaysUnanalyzable) {
  Program P = prepassed(R"(program s
  array a[500]
  array idx[500]
  for i = 1 to 10 do
    a[idx[i]] = 1
  end
end
)");
  std::vector<ArrayReference> Refs = collectReferences(P);
  bool FoundUnanalyzable = false;
  for (const ArrayReference &Ref : Refs)
    if (Ref.ArrayId == *P.lookupArray("a") && !buildProblem(P, Ref, Ref))
      FoundUnanalyzable = true;
  EXPECT_TRUE(FoundUnanalyzable);
}

TEST(Pipeline, GeneratedSuiteIsFullyAnalyzable) {
  // Every synthetic PERFECT Club case must come out of the prepass in
  // analyzable form.
  GeneratorOptions Opts;
  Opts.Scale = 0.02;
  Opts.IncludeSymbolic = true;
  for (const auto &[Name, Source] : generatePerfectClubSuite(Opts)) {
    Program P = mustParse(Source, /*Prepass=*/false);
    runPrepass(P);
    EXPECT_TRUE(allAnalyzable(P)) << Name;
  }
}

TEST(Pipeline, IdempotentOnSimplePrograms) {
  Program P = prepassed(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i]
  end
end
)");
  std::string Once = P.print();
  runPrepass(P);
  EXPECT_EQ(P.print(), Once);
}
