//===- tests/opt/FoldTest.cpp - Constant folding tests --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/Fold.h"

#include "gtest/gtest.h"

#include <climits>

using namespace edda;

namespace {

std::string nameOf(unsigned Id) { return "v" + std::to_string(Id); }

std::string folded(const ExprPtr &E) { return foldExpr(E)->str(nameOf); }

} // namespace

TEST(Fold, ConstantArithmetic) {
  EXPECT_EQ(folded(Expr::makeAdd(Expr::makeConst(2), Expr::makeConst(3))),
            "5");
  EXPECT_EQ(folded(Expr::makeSub(Expr::makeConst(2), Expr::makeConst(3))),
            "-1");
  EXPECT_EQ(folded(Expr::makeMul(Expr::makeConst(4), Expr::makeConst(3))),
            "12");
  EXPECT_EQ(folded(Expr::makeNeg(Expr::makeConst(7))), "-7");
}

TEST(Fold, IdentityElements) {
  ExprPtr V = Expr::makeVar(0);
  EXPECT_EQ(folded(Expr::makeAdd(V, Expr::makeConst(0))), "v0");
  EXPECT_EQ(folded(Expr::makeAdd(Expr::makeConst(0), V)), "v0");
  EXPECT_EQ(folded(Expr::makeSub(V, Expr::makeConst(0))), "v0");
  EXPECT_EQ(folded(Expr::makeMul(V, Expr::makeConst(1))), "v0");
  EXPECT_EQ(folded(Expr::makeMul(Expr::makeConst(1), V)), "v0");
}

TEST(Fold, MulZeroAndMinusOne) {
  ExprPtr V = Expr::makeVar(0);
  EXPECT_EQ(folded(Expr::makeMul(V, Expr::makeConst(0))), "0");
  EXPECT_EQ(folded(Expr::makeMul(Expr::makeConst(-1), V)), "(-v0)");
}

TEST(Fold, DoubleNegation) {
  ExprPtr V = Expr::makeVar(0);
  EXPECT_EQ(folded(Expr::makeNeg(Expr::makeNeg(V))), "v0");
}

TEST(Fold, ZeroMinusX) {
  ExprPtr V = Expr::makeVar(0);
  EXPECT_EQ(folded(Expr::makeSub(Expr::makeConst(0), V)), "(-v0)");
}

TEST(Fold, NestedFolding) {
  // (2 + 3) * (v0 + 0) -> 5 * v0.
  ExprPtr E = Expr::makeMul(
      Expr::makeAdd(Expr::makeConst(2), Expr::makeConst(3)),
      Expr::makeAdd(Expr::makeVar(0), Expr::makeConst(0)));
  EXPECT_EQ(folded(E), "(5 * v0)");
}

TEST(Fold, OverflowLeftUnfolded) {
  ExprPtr E = Expr::makeAdd(Expr::makeConst(INT64_MAX),
                            Expr::makeConst(1));
  ExprPtr F = foldExpr(E);
  EXPECT_EQ(F->kind(), ExprKind::Add); // kept symbolic, not wrapped
}

TEST(Fold, InsideArrayReadSubscripts) {
  std::vector<ExprPtr> Subs;
  Subs.push_back(Expr::makeAdd(Expr::makeConst(1), Expr::makeConst(2)));
  ExprPtr E = Expr::makeArrayRead(0, std::move(Subs));
  ExprPtr F = foldExpr(E);
  ASSERT_EQ(F->kind(), ExprKind::ArrayRead);
  EXPECT_EQ(F->subscripts()[0]->constValue(), 3);
}

TEST(Fold, WholeProgram) {
  Program P("demo");
  unsigned I = P.addVar("i", VarKind::Loop);
  unsigned A = P.addArray("a", {10});
  auto Loop = std::make_unique<LoopStmt>(
      I, Expr::makeAdd(Expr::makeConst(0), Expr::makeConst(1)),
      Expr::makeMul(Expr::makeConst(2), Expr::makeConst(5)), 1);
  std::vector<ExprPtr> Subs;
  Subs.push_back(Expr::makeAdd(Expr::makeVar(I), Expr::makeConst(0)));
  Loop->body().push_back(std::make_unique<AssignStmt>(
      A, std::move(Subs),
      Expr::makeSub(Expr::makeConst(9), Expr::makeConst(4))));
  P.body().push_back(std::move(Loop));

  foldConstants(P);
  const LoopStmt &L = asLoop(*P.body()[0]);
  EXPECT_EQ(L.lo()->constValue(), 1);
  EXPECT_EQ(L.hi()->constValue(), 10);
  const AssignStmt &S = asAssign(*L.body()[0]);
  EXPECT_EQ(S.lhsSubscripts()[0]->kind(), ExprKind::Var);
  EXPECT_EQ(S.rhs()->constValue(), 5);
}
