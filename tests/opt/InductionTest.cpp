//===- tests/opt/InductionTest.cpp - Induction substitution tests ---------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/Induction.h"

#include "analysis/Interp.h"
#include "opt/Fold.h"
#include "opt/ScalarPropagation.h"
#include "parser/Parser.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

/// Parses, runs prop + induction + prop + fold, and verifies semantics
/// are preserved against the interpreter.
Program inducted(const std::string &Source) {
  Program P = mustParse(Source, /*Prepass=*/false);
  Program Before(P);
  foldConstants(P);
  propagateScalars(P);
  substituteInductionVariables(P);
  propagateScalars(P);
  foldConstants(P);
  InterpResult R1 = interpret(Before);
  InterpResult R2 = interpret(P);
  EXPECT_TRUE(R1.Ok);
  EXPECT_TRUE(R2.Ok);
  EXPECT_EQ(R1.Memory, R2.Memory) << "induction pass changed semantics";
  EXPECT_EQ(R1.VarValues, R2.VarValues);
  return P;
}

} // namespace

TEST(Induction, PaperSection8Example) {
  // n = 100; iz accumulating by 2: a[iz+n] = a[iz+2n+1] becomes
  // a[2i+100] = a[2i+201].
  Program P = inducted(R"(program s
  array a[500]
  param n = 100
  iz = 0
  for i = 1 to 10 do
    iz = iz + 2
    a[iz + n] = a[iz + 2 * n + 1] + 3
  end
end
)");
  std::string Text = P.print();
  EXPECT_NE(Text.find("a[((2 * i) + 100)]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("a[((2 * i) + 201)]"), std::string::npos) << Text;
}

TEST(Induction, UseBeforeIncrement) {
  // Uses before the increment see one fewer step.
  Program P = inducted(R"(program s
  array a[500]
  k = 10
  for i = 1 to 5 do
    a[k] = 1
    k = k + 3
  end
end
)");
  std::string Text = P.print();
  // Before increment at iteration i: k = 10 + 3*(i-1) = 3i + 7.
  EXPECT_NE(Text.find("a[((3 * i) + 7)]"), std::string::npos) << Text;
}

TEST(Induction, DecrementingVariable) {
  Program P = inducted(R"(program s
  array a[500]
  k = 100
  for i = 1 to 5 do
    k = k - 2
    a[k] = 1
  end
end
)");
  std::string Text = P.print();
  // After decrement: 100 - 2*i ... = -2i + 100; rendering keeps the
  // shape ((-2 * i) + 100) or equivalent; just require no bare a[k].
  EXPECT_EQ(Text.find("a[k]"), std::string::npos) << Text;
}

TEST(Induction, EntryValueReferencesOuterLoop) {
  // k starts from an affine function of the outer loop variable.
  Program P = inducted(R"(program s
  array a[40][40]
  for i = 1 to 5 do
    k = i
    for j = 1 to 4 do
      k = k + 1
      a[i][k] = 1
    end
  end
end
)");
  EXPECT_EQ(P.print().find("a[i][k]"), std::string::npos) << P.print();
}

TEST(Induction, SkipsMultiplyAssignedScalars) {
  Program P = inducted(R"(program s
  array a[500]
  k = 0
  for i = 1 to 5 do
    k = k + 1
    k = k + 2
    a[k] = 1
  end
end
)");
  // Two assignments: not a simple induction; uses stay.
  EXPECT_NE(P.print().find("a[k]"), std::string::npos);
}

TEST(Induction, SkipsUnknownEntryValue) {
  Program P = inducted(R"(program s
  array a[500]
  k = a[3]
  for i = 1 to 5 do
    k = k + 1
    a[k + 100] = 1
  end
end
)");
  EXPECT_NE(P.print().find("a[(k + 100)]"), std::string::npos);
}

TEST(Induction, SkipsEntryValueReferencingSameLoopVar) {
  // k bound to the *previous* incarnation of i: not a valid entry value.
  Program P = inducted(R"(program s
  array a[500]
  for i = 1 to 5 do
    a[i] = 0
  end
  k = i
  for i = 1 to 5 do
    k = k + 1
    a[k + 50] = 1
  end
end
)");
  EXPECT_NE(P.print().find("a[(k + 50)]"), std::string::npos);
}

TEST(Induction, IncrementInsideNestedLoopNotMatched) {
  Program P = inducted(R"(program s
  array a[500]
  k = 0
  for i = 1 to 5 do
    for j = 1 to 3 do
      k = k + 1
    end
    a[k + 200] = 1
  end
end
)");
  // The increment is not a direct child of the i loop.
  EXPECT_NE(P.print().find("a[(k + 200)]"), std::string::npos);
}

TEST(Induction, SymbolicEntryValue) {
  Program P = inducted(R"(program s
  array a[500]
  read n
  k = n
  for i = 1 to 5 do
    k = k + 1
    a[k] = 1
  end
end
)");
  // k = n + i: substituted even though symbolic.
  EXPECT_EQ(P.print().find("a[k]"), std::string::npos) << P.print();
}

TEST(Induction, MultipleInductionVariablesInOneLoop) {
  Program P = inducted(R"(program s
  array a[500]
  array b[500]
  k = 0
  m = 100
  for i = 1 to 5 do
    k = k + 1
    m = m - 1
    a[k] = 1
    b[m] = 2
  end
end
)");
  std::string Text = P.print();
  EXPECT_EQ(Text.find("a[k]"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("b[m]"), std::string::npos) << Text;
}
