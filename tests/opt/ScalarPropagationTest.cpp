//===- tests/opt/ScalarPropagationTest.cpp - Scalar prop tests ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "opt/ScalarPropagation.h"

#include "analysis/Interp.h"
#include "opt/Fold.h"
#include "parser/Parser.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

/// Parses, optimizes with scalar propagation only, and checks the final
/// memory image is unchanged (semantics preservation).
Program propagated(const std::string &Source) {
  Program P = mustParse(Source, /*Prepass=*/false);
  Program Before(P);
  foldConstants(P);
  propagateScalars(P);
  foldConstants(P);
  InterpResult R1 = interpret(Before);
  InterpResult R2 = interpret(P);
  EXPECT_TRUE(R1.Ok);
  EXPECT_TRUE(R2.Ok);
  EXPECT_EQ(R1.Memory, R2.Memory) << "propagation changed semantics";
  EXPECT_EQ(R1.VarValues, R2.VarValues);
  return P;
}

std::string printOf(const Program &P) { return P.print(); }

} // namespace

TEST(ScalarPropagation, ConstantPropagatesIntoSubscript) {
  Program P = propagated(R"(program s
  array a[200]
  k = 100
  for i = 1 to 10 do
    a[i + k] = a[i + 2 * k] + 3
  end
end
)");
  std::string Text = printOf(P);
  EXPECT_NE(Text.find("a[(i + 100)]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("a[(i + 200)]"), std::string::npos) << Text;
}

TEST(ScalarPropagation, ParamFoldsAway) {
  Program P = propagated(R"(program s
  array a[200]
  param n = 50
  for i = 1 to 10 do
    a[i + n] = 1
  end
end
)");
  EXPECT_NE(printOf(P).find("a[(i + 50)]"), std::string::npos);
}

TEST(ScalarPropagation, ForwardSubstitutionOfAffineExpr) {
  Program P = propagated(R"(program s
  array a[200]
  for i = 1 to 10 do
    k = 2 * i + 1
    a[k] = a[k + 3] + 1
  end
end
)");
  std::string Text = printOf(P);
  // k replaced by 2i+1 in both references.
  EXPECT_EQ(Text.find("a[k]"), std::string::npos) << Text;
}

TEST(ScalarPropagation, LoopVaryingScalarNotPropagatedAcrossIterations) {
  // k = k + 1 in the body: the pre-loop constant must not survive into
  // the body.
  Program P = propagated(R"(program s
  array a[200]
  k = 5
  for i = 1 to 10 do
    k = k + 1
    a[k] = 1
  end
end
)");
  // a[k] must still reference k (scalar propagation alone cannot do
  // induction rewriting).
  EXPECT_NE(printOf(P).find("a[k]"), std::string::npos);
}

TEST(ScalarPropagation, KilledByArrayReadRhs) {
  Program P = propagated(R"(program s
  array a[200]
  for i = 1 to 10 do
    k = a[i]
    a[k + 1] = 2
  end
end
)");
  // k's value reads memory: not substitutable.
  EXPECT_NE(printOf(P).find("a[(k + 1)]"), std::string::npos);
}

TEST(ScalarPropagation, BindingDiesWithLoopVariable) {
  Program P = propagated(R"(program s
  array a[200]
  for i = 1 to 10 do
    k = i + 1
    a[k] = 0
  end
  a[k + 5] = 1
end
)");
  std::string Text = printOf(P);
  // Inside the loop k was substituted; after the loop it must not be
  // (its value references the dead loop variable).
  EXPECT_NE(Text.find("a[(k + 5)]"), std::string::npos) << Text;
}

TEST(ScalarPropagation, BindingFromPreviousLoopIncarnationDies) {
  Program P = propagated(R"(program s
  array a[200]
  for i = 1 to 10 do
    a[i] = 0
  end
  k = i + 1
  for i = 3 to 7 do
    a[k] = 1
  end
end
)");
  // k was bound to old-i + 1; inside the second i loop that binding is
  // stale and must not be substituted.
  EXPECT_NE(printOf(P).find("a[k]"), std::string::npos);
}

TEST(ScalarPropagation, ZeroTripLoopDoesNotLeakBindings) {
  Program P = propagated(R"(program s
  array a[200]
  k = 7
  for i = 5 to 1 do
    k = 9
  end
  a[k] = 1
end
)");
  // The loop never runs, so k is still 7; the conservative kill means
  // no substitution after the loop — but never the wrong value 9.
  std::string Text = printOf(P);
  EXPECT_EQ(Text.find("a[9]"), std::string::npos) << Text;
}

TEST(ScalarPropagation, ChainedSubstitution) {
  Program P = propagated(R"(program s
  array a[200]
  k = 10
  m = k + 5
  for i = 1 to 10 do
    a[i + m] = 1
  end
end
)");
  EXPECT_NE(printOf(P).find("a[(i + 15)]"), std::string::npos);
}

TEST(ScalarPropagation, RedefinitionInvalidatesDependents) {
  Program P = propagated(R"(program s
  array a[200]
  k = 10
  m = k + 5
  k = 20
  for i = 1 to 5 do
    a[m] = 1
    a[k] = 2
  end
end
)");
  std::string Text = printOf(P);
  // m keeps its value from the first k (15), k is now 20.
  EXPECT_NE(Text.find("a[15]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("a[20]"), std::string::npos) << Text;
}

TEST(ScalarPropagation, SymbolicStaysSymbolic) {
  Program P = propagated(R"(program s
  array a[200]
  read n
  k = n + 1
  for i = 1 to 10 do
    a[i + k] = 1
  end
end
)");
  // k = n + 1 is rememberable (symbolic), so it substitutes; the
  // canonical affine form orders terms by variable id (n was declared
  // first).
  EXPECT_NE(printOf(P).find("a[((n + i) + 1)]"), std::string::npos)
      << printOf(P);
}
