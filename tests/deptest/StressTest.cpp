//===- tests/deptest/StressTest.cpp - Deeper randomized stress ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heavier randomized checks than the per-module property tests:
/// three-deep common nests, multi-equation systems, larger
/// coefficients, and adversarial bound couplings — all validated
/// against the enumeration oracle. These are the "keep the exactness
/// claim honest" tests.
///
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"

#include "deptest/Direction.h"
#include "deptest/Memo.h"
#include "testutil/Helpers.h"
#include "oracle/Oracle.h"
#include "gtest/gtest.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

using namespace edda;
using namespace edda::testutil;
using namespace edda::oracle;

namespace {

/// Seeds for the randomized suites. EDDA_STRESS_SEED overrides the
/// defaults with a comma-separated list, so a failing seed reported by
/// an assertion (or found by edda-fuzz) replays without recompiling:
///
///   EDDA_STRESS_SEED=12345 ./stress_test
std::vector<uint64_t> stressSeeds(std::initializer_list<uint64_t> Defaults) {
  if (const char *Env = std::getenv("EDDA_STRESS_SEED")) {
    std::vector<uint64_t> Seeds;
    std::istringstream In(Env);
    std::string Tok;
    while (std::getline(In, Tok, ','))
      if (!Tok.empty())
        Seeds.push_back(std::strtoull(Tok.c_str(), nullptr, 10));
    if (!Seeds.empty())
      return Seeds;
  }
  return Defaults;
}

/// Env override for the fixed-seed tests below.
uint64_t stressSeed(uint64_t Default) {
  return stressSeeds({Default}).front();
}

/// Random problem with up to three common loops, up to three equations
/// and coefficients up to +/-5; bounds kept tight so the oracle stays
/// fast (spans <= 5 per variable).
DependenceProblem deepRandomProblem(SplitRng &Rng) {
  unsigned Common = 2 + static_cast<unsigned>(Rng.below(2));
  ProblemBuilder PB(Common, Common, Common);
  unsigned NumX = 2 * Common;
  unsigned NumEq = 1 + static_cast<unsigned>(Rng.below(3));
  for (unsigned E = 0; E < NumEq; ++E) {
    std::vector<int64_t> Coeffs(NumX, 0);
    for (unsigned J = 0; J < NumX; ++J)
      Coeffs[J] = static_cast<int64_t>(Rng.below(11)) - 5;
    PB.eq(std::move(Coeffs), static_cast<int64_t>(Rng.below(17)) - 8);
  }
  for (unsigned L = 0; L < Common; ++L) {
    int64_t Lo = static_cast<int64_t>(Rng.below(7)) - 3;
    int64_t Span = static_cast<int64_t>(Rng.below(6));
    PB.bounds(L, Lo, Lo + Span);
    PB.bounds(Common + L, Lo, Lo + Span);
  }
  DependenceProblem P = PB.build();
  // Couple up to two inner bounds to outer variables.
  for (unsigned L = 1; L < Common; ++L) {
    if (Rng.below(3) != 0)
      continue;
    int64_t C = static_cast<int64_t>(Rng.below(5)) - 1;
    XAffine HiA(NumX), HiB(NumX);
    HiA.Coeffs[L - 1] = 1;
    HiA.Const = C;
    HiB.Coeffs[Common + L - 1] = 1;
    HiB.Const = C;
    P.Hi[L] = std::move(HiA);
    P.Hi[Common + L] = std::move(HiB);
  }
  return P;
}

} // namespace

class DeepCascadeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeepCascadeProperty, MatchesOracle) {
  SCOPED_TRACE("seed " + std::to_string(GetParam()) +
               " (replay: EDDA_STRESS_SEED=" +
               std::to_string(GetParam()) + ")");
  SplitRng Rng(GetParam());
  unsigned Conclusive = 0;
  for (unsigned Iter = 0; Iter < 150; ++Iter) {
    DependenceProblem P = deepRandomProblem(Rng);
    std::optional<bool> Truth = oracleDependent(P);
    if (!Truth)
      continue;
    ++Conclusive;
    CascadeResult R = testDependence(P);
    if (R.Answer == DepAnswer::Unknown)
      continue;
    EXPECT_EQ(R.Answer == DepAnswer::Dependent, *Truth)
        << "decided by " << testKindName(R.DecidedBy) << "\n"
        << P.str();
    if (R.Witness)
      EXPECT_TRUE(verifyWitness(P, *R.Witness)) << P.str();
  }
  EXPECT_GT(Conclusive, 60u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DeepCascadeProperty,
    ::testing::ValuesIn(stressSeeds({21, 22, 23, 24, 25, 26, 27, 28})));

class DeepDirectionProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DeepDirectionProperty, MatchesOracle) {
  SCOPED_TRACE("seed " + std::to_string(GetParam()) +
               " (replay: EDDA_STRESS_SEED=" +
               std::to_string(GetParam()) + ")");
  SplitRng Rng(GetParam());
  unsigned Conclusive = 0;
  for (unsigned Iter = 0; Iter < 60; ++Iter) {
    DependenceProblem P = deepRandomProblem(Rng);
    std::optional<std::set<DirVector>> Truth = oracleDirections(P);
    if (!Truth)
      continue;
    ++Conclusive;
    DirectionResult R = computeDirectionVectors(P);
    if (!R.Exact)
      continue;
    for (const DirVector &Real : *Truth) {
      bool Covered = false;
      for (const DirVector &Reported : R.Vectors)
        Covered = Covered || dirMatches(Reported, Real);
      EXPECT_TRUE(Covered) << dirVectorStr(Real) << "\n" << P.str();
    }
    for (const DirVector &Reported : R.Vectors) {
      bool HasStar = false;
      for (Dir D : Reported)
        HasStar = HasStar || D == Dir::Any;
      if (HasStar)
        continue;
      EXPECT_TRUE(Truth->count(Reported))
          << dirVectorStr(Reported) << "\n" << P.str();
    }
  }
  EXPECT_GT(Conclusive, 25u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DeepDirectionProperty,
    ::testing::ValuesIn(stressSeeds({31, 32, 33, 34, 35})));

TEST(Stress, CascadeDeterministic) {
  uint64_t Seed = stressSeed(55);
  SCOPED_TRACE("seed " + std::to_string(Seed) +
               " (replay: EDDA_STRESS_SEED=" + std::to_string(Seed) +
               ")");
  SplitRng Rng(Seed);
  for (unsigned Iter = 0; Iter < 100; ++Iter) {
    DependenceProblem P = deepRandomProblem(Rng);
    CascadeResult A = testDependence(P);
    CascadeResult B = testDependence(P);
    EXPECT_EQ(A.Answer, B.Answer);
    EXPECT_EQ(A.DecidedBy, B.DecidedBy);
    EXPECT_EQ(A.Witness.has_value(), B.Witness.has_value());
    if (A.Witness)
      EXPECT_EQ(*A.Witness, *B.Witness);
  }
}

TEST(Stress, RedundantConstraintsDoNotChangeAnswer) {
  // Duplicating an equation or widening a bound by a superset interval
  // must not flip the answer.
  uint64_t Seed = stressSeed(56);
  SCOPED_TRACE("seed " + std::to_string(Seed) +
               " (replay: EDDA_STRESS_SEED=" + std::to_string(Seed) +
               ")");
  SplitRng Rng(Seed);
  for (unsigned Iter = 0; Iter < 100; ++Iter) {
    DependenceProblem P = deepRandomProblem(Rng);
    CascadeResult Base = testDependence(P);
    if (Base.Answer == DepAnswer::Unknown)
      continue;
    DependenceProblem Dup = P;
    Dup.Equations.push_back(P.Equations.front());
    CascadeResult R = testDependence(Dup);
    if (R.Answer != DepAnswer::Unknown)
      EXPECT_EQ(R.Answer, Base.Answer) << P.str();
  }
}

TEST(Stress, MemoizedAnswersMatchFreshOnes) {
  uint64_t Seed = stressSeed(57);
  SCOPED_TRACE("seed " + std::to_string(Seed) +
               " (replay: EDDA_STRESS_SEED=" + std::to_string(Seed) +
               ")");
  SplitRng Rng(Seed);
  DependenceCache Cache;
  std::vector<DependenceProblem> Pool;
  for (unsigned I = 0; I < 40; ++I)
    Pool.push_back(deepRandomProblem(Rng));
  // Fill.
  for (const DependenceProblem &P : Pool)
    Cache.insertFull(P, testDependence(P));
  // Every lookup must agree with a fresh run.
  for (const DependenceProblem &P : Pool) {
    std::optional<CascadeResult> Hit = Cache.lookupFull(P);
    ASSERT_TRUE(Hit.has_value());
    CascadeResult Fresh = testDependence(P);
    EXPECT_EQ(Hit->Answer, Fresh.Answer);
    EXPECT_EQ(Hit->DecidedBy, Fresh.DecidedBy);
  }
}

TEST(Stress, LargeCoefficientsStayExactOrHonest) {
  // Coefficients near the overflow edge: the cascade must either stay
  // exact (verified by witness) or say Unknown — never silently wrap.
  uint64_t Seed = stressSeed(58);
  SCOPED_TRACE("seed " + std::to_string(Seed) +
               " (replay: EDDA_STRESS_SEED=" + std::to_string(Seed) +
               ")");
  SplitRng Rng(Seed);
  for (unsigned Iter = 0; Iter < 200; ++Iter) {
    int64_t Big = static_cast<int64_t>(Rng.below(1000000)) + 1000000;
    DependenceProblem P =
        ProblemBuilder(1, 1, 1)
            .eq({Big, -Big}, static_cast<int64_t>(Rng.below(3)) - 1)
            .bounds(0, 1, 1000)
            .bounds(1, 1, 1000)
            .build();
    CascadeResult R = testDependence(P);
    if (R.Answer == DepAnswer::Dependent && R.Witness)
      EXPECT_TRUE(verifyWitness(P, *R.Witness));
    if (R.Answer == DepAnswer::Independent) {
      // Big*(i - i') == c with |c| < Big: only c == 0 is solvable.
      EXPECT_NE(P.Equations[0].Const, 0);
    }
  }
}

TEST(Stress, NearInt64MaxCoefficientsNowDecide) {
  // Coprime coefficients near 2^60 over a tiny box: the 64-bit solvers
  // poison on the Bezout products, so the seed gave every one of these
  // up as Unanalyzable. The widening tier must decide them, the
  // enumeration oracle (16 points) keeps the answers honest, and
  // --no-widen must reproduce the old surrender.
  uint64_t Seed = stressSeed(59);
  SCOPED_TRACE("seed " + std::to_string(Seed) +
               " (replay: EDDA_STRESS_SEED=" + std::to_string(Seed) +
               ")");
  SplitRng Rng(Seed);
  unsigned Decisive = 0, Widened = 0;
  for (unsigned Iter = 0; Iter < 120; ++Iter) {
    int64_t A =
        (int64_t(1) << 60) + static_cast<int64_t>(Rng.below(1u << 20));
    int64_t B =
        (int64_t(1) << 60) + static_cast<int64_t>(Rng.below(1u << 20));
    // Plant a solution inside the box three times out of four; the
    // rest get a tiny constant (solvable only at the origin when 0).
    int64_t X = static_cast<int64_t>(Rng.below(4));
    int64_t Y = static_cast<int64_t>(Rng.below(4));
    int64_t C = Rng.below(4) != 0
                    ? -(A * X - B * Y) // |.| <= 3*(2^60 + 2^20): exact
                    : 1 - static_cast<int64_t>(Rng.below(3));
    DependenceProblem P = ProblemBuilder(1, 1, 1)
                              .eq({A, -B}, C)
                              .bounds(0, 0, 3)
                              .bounds(1, 0, 3)
                              .build();
    CascadeResult R = testDependence(P);
    std::optional<bool> Truth = oracleDependent(P);
    ASSERT_TRUE(Truth.has_value()) << P.str();
    if (R.Answer != DepAnswer::Unknown) {
      ++Decisive;
      EXPECT_EQ(R.Answer == DepAnswer::Dependent, *Truth)
          << "decided by " << testKindName(R.DecidedBy) << "\n"
          << P.str();
    }
    if (R.Witness)
      EXPECT_TRUE(verifyWitness(P, *R.Witness)) << P.str();
    if (R.Widened) {
      ++Widened;
      CascadeOptions NoWiden;
      NoWiden.Widen = false;
      EXPECT_EQ(testDependence(P, NoWiden).Answer, DepAnswer::Unknown)
          << P.str();
    }
  }
  EXPECT_GT(Decisive, 100u);
  EXPECT_GT(Widened, 0u);
}

TEST(Stress, ManyEquationsOverdetermined) {
  // Five equations over one loop pair: consistent iff all demand the
  // same offset.
  for (int64_t Noise = 0; Noise < 3; ++Noise) {
    ProblemBuilder PB(1, 1, 1);
    for (unsigned E = 0; E < 5; ++E)
      PB.eq({1, -1}, E == 4 ? 2 + Noise : 2);
    DependenceProblem P =
        PB.bounds(0, 1, 10).bounds(1, 1, 10).build();
    CascadeResult R = testDependence(P);
    EXPECT_EQ(R.Answer, Noise == 0 ? DepAnswer::Dependent
                                   : DepAnswer::Independent);
  }
}
