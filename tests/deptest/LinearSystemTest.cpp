//===- tests/deptest/LinearSystemTest.cpp - LinearSystem tests ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/LinearSystem.h"

#include "gtest/gtest.h"

#include <climits>

using namespace edda;

TEST(LinearConstraint, ActiveVarCounting) {
  LinearConstraint C({0, 3, 0, -1}, 5);
  EXPECT_EQ(C.numActiveVars(), 2u);
  LinearConstraint Single({0, 0, 7, 0}, 5);
  EXPECT_EQ(Single.numActiveVars(), 1u);
  EXPECT_EQ(Single.soleVar(), 2u);
}

TEST(LinearConstraint, Satisfaction) {
  LinearConstraint C({2, -1}, 3);
  EXPECT_TRUE(C.satisfiedBy({1, 0}));   // 2 <= 3
  EXPECT_TRUE(C.satisfiedBy({2, 1}));   // 3 <= 3
  EXPECT_FALSE(C.satisfiedBy({2, 0}));  // 4 > 3
}

TEST(LinearConstraint, LhsOverflowIsUnsatisfied) {
  LinearConstraint C({1, 1}, 0);
  EXPECT_FALSE(C.satisfiedBy({INT64_MAX, 1}));
}

TEST(LinearConstraint, NormalizeTightens) {
  LinearConstraint C({2, 4}, 5);
  ASSERT_TRUE(C.normalize());
  EXPECT_EQ(C.Coeffs, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(C.Bound, 2); // floor(5/2)
}

TEST(LinearConstraint, NormalizeNegativeBound) {
  LinearConstraint C({3, -3}, -4);
  ASSERT_TRUE(C.normalize());
  EXPECT_EQ(C.Coeffs, (std::vector<int64_t>{1, -1}));
  EXPECT_EQ(C.Bound, -2); // floor(-4/3)
}

TEST(LinearConstraint, NormalizeConstFalse) {
  LinearConstraint C({0, 0}, -1);
  EXPECT_FALSE(C.normalize());
  LinearConstraint True({0, 0}, 0);
  EXPECT_TRUE(True.normalize());
}

TEST(LinearSystem, Substitute) {
  LinearSystem S(2);
  S.addLe({2, 1}, 10);
  S.addLe({-1, 3}, 0);
  ASSERT_TRUE(S.substitute(0, 4));
  EXPECT_EQ(S.constraints()[0].Coeffs, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(S.constraints()[0].Bound, 2);  // 10 - 8
  EXPECT_EQ(S.constraints()[1].Bound, 0 + 4);
}

TEST(LinearSystem, SubstituteOverflow) {
  LinearSystem S(1);
  S.addLe({INT64_MAX}, 0);
  EXPECT_FALSE(S.substitute(0, 2));
}

TEST(LinearSystem, SatisfiedBy) {
  LinearSystem S(2);
  S.addLe({1, 0}, 5);
  S.addLe({0, -1}, -3);
  EXPECT_TRUE(S.satisfiedBy({5, 3}));
  EXPECT_FALSE(S.satisfiedBy({6, 3}));
  EXPECT_FALSE(S.satisfiedBy({5, 2}));
}

TEST(LinearSystem, StrSmoke) {
  LinearSystem S(2);
  S.addLe({1, -2}, 7);
  std::string Text = S.str();
  EXPECT_NE(Text.find("t0"), std::string::npos);
  EXPECT_NE(Text.find("2*t1"), std::string::npos);
  EXPECT_NE(Text.find("<= 7"), std::string::npos);
}
