//===- tests/deptest/TestPipelineTest.cpp - Pipeline properties -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable-pipeline layer: registry and spec parsing, the
/// permutation-invariance property (every ordering of the exact stages
/// gives the same Independent/Dependent verdict, with verified
/// witnesses, constrained path included), Banerjee's soundness as a
/// pipeline stage, per-stage trace records, and overflow provenance.
///
//===----------------------------------------------------------------------===//

#include "deptest/TestPipeline.h"

#include "deptest/Banerjee.h"
#include "deptest/Cascade.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <climits>
#include <string>
#include <vector>

using namespace edda;
using namespace edda::testutil;

namespace {

/// A direction-style constraint on the first common loop pair:
/// i' - i + 1 <= 0 (Greater) or i - i' + 1 <= 0 (Less), as
/// appendDirConstraints emits them.
XAffine dirConstraint(const DependenceProblem &P, bool Less) {
  XAffine F(P.numX());
  F.Coeffs[0] = Less ? 1 : -1;
  F.Coeffs[P.NumLoopsA] = Less ? -1 : 1;
  F.Const = 1;
  return F;
}

/// All 120 orderings of the five exact non-constant stages, each with
/// the array-constant stage pinned first (its "assume loops execute"
/// Dependent convention is the one deliberate order sensitivity; see
/// docs/ALGORITHMS.md).
std::vector<TestPipeline> permutedPipelines() {
  // Sorted so std::next_permutation enumerates all 5! orderings.
  std::vector<std::string> Tail = {"acyclic", "fm", "gcd", "residue",
                                   "svpc"};
  std::vector<TestPipeline> Pipelines;
  do {
    std::string Spec = "const";
    for (const std::string &Name : Tail)
      Spec += "," + Name;
    std::string Error;
    std::optional<TestPipeline> P = TestPipeline::parse(Spec, &Error);
    EXPECT_TRUE(P.has_value()) << Spec << ": " << Error;
    if (P)
      Pipelines.push_back(std::move(*P));
  } while (std::next_permutation(Tail.begin(), Tail.end()));
  EXPECT_EQ(Pipelines.size(), 120u);
  return Pipelines;
}

} // namespace

TEST(StageRegistry, NamesKindsAndIds) {
  const std::vector<const DependenceTest *> &Reg = stageRegistry();
  ASSERT_EQ(Reg.size(), 7u);
  const char *Names[] = {"const", "gcd",      "svpc", "acyclic",
                         "residue", "fm",     "banerjee"};
  const TestKind Kinds[] = {
      TestKind::ArrayConstant, TestKind::GcdTest,
      TestKind::Svpc,          TestKind::Acyclic,
      TestKind::LoopResidue,   TestKind::FourierMotzkin,
      TestKind::Banerjee};
  for (unsigned I = 0; I < Reg.size(); ++I) {
    EXPECT_STREQ(Reg[I]->name(), Names[I]);
    EXPECT_EQ(Reg[I]->kind(), Kinds[I]);
    EXPECT_EQ(Reg[I]->id(), I);
    EXPECT_EQ(findStage(Names[I]), Reg[I]);
    EXPECT_EQ(stageForKind(Kinds[I]), Reg[I]);
    EXPECT_STREQ(stageName(I), Names[I]);
    // Banerjee is the one inexact stage.
    EXPECT_EQ(Reg[I]->exact(), std::string(Names[I]) != "banerjee");
  }
  EXPECT_EQ(findStage("nope"), nullptr);
  EXPECT_EQ(stageForKind(TestKind::Unanalyzable), nullptr);
  EXPECT_STREQ(stageName(999), "unknown");
}

TEST(StageRegistry, DefaultPipelineIsTheExactCascade) {
  const TestPipeline &Default = TestPipeline::defaultPipeline();
  EXPECT_EQ(Default.spec(), "const,gcd,svpc,acyclic,residue,fm");
  for (const DependenceTest *Stage : Default.stages())
    EXPECT_TRUE(Stage->exact());
}

TEST(PipelineParse, RoundTripsAndAliases) {
  std::optional<TestPipeline> P = TestPipeline::parse("gcd,fm");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->spec(), "gcd,fm");
  ASSERT_EQ(P->stages().size(), 2u);
  EXPECT_STREQ(P->stages()[0]->name(), "gcd");
  EXPECT_STREQ(P->stages()[1]->name(), "fm");

  std::optional<TestPipeline> Default = TestPipeline::parse("default");
  ASSERT_TRUE(Default.has_value());
  EXPECT_EQ(Default->spec(), TestPipeline::defaultPipeline().spec());

  std::shared_ptr<const TestPipeline> Shared = makePipeline("banerjee");
  ASSERT_TRUE(Shared != nullptr);
  EXPECT_EQ(Shared->spec(), "banerjee");
}

TEST(PipelineParse, ActionableErrors) {
  std::string Error;
  EXPECT_FALSE(TestPipeline::parse("gcd,nope", &Error).has_value());
  EXPECT_NE(Error.find("nope"), std::string::npos) << Error;
  EXPECT_NE(Error.find("svpc"), std::string::npos)
      << "error must list the valid stages: " << Error;

  EXPECT_FALSE(TestPipeline::parse("gcd,gcd", &Error).has_value());
  EXPECT_NE(Error.find("gcd"), std::string::npos) << Error;

  EXPECT_FALSE(TestPipeline::parse("gcd,,fm", &Error).has_value());
  EXPECT_FALSE(TestPipeline::parse("", &Error).has_value());
  EXPECT_EQ(makePipeline("bogus", &Error), nullptr);
}

/// The core property: every ordering of the exact stages produces the
/// same Independent/Dependent verdict as the default cascade, and every
/// Dependent witness verifies — on unconstrained problems and on the
/// direction-constrained (ExtraLe0) path.
class PipelinePermutationProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinePermutationProperty, OrderInvariantVerdicts) {
  std::vector<TestPipeline> Pipelines = permutedPipelines();
  SplitRng Rng(GetParam());
  unsigned Decided = 0;
  for (unsigned Iter = 0; Iter < 25; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    // Unconstrained, plus the two single-direction constraint sets.
    std::vector<std::vector<XAffine>> ConstraintSets;
    ConstraintSets.push_back({});
    if (P.NumCommon >= 1) {
      ConstraintSets.push_back({dirConstraint(P, /*Less=*/true)});
      ConstraintSets.push_back({dirConstraint(P, /*Less=*/false)});
    }
    for (const std::vector<XAffine> &Extra : ConstraintSets) {
      CascadeResult Base =
          TestPipeline::defaultPipeline().run(P, Extra);
      if (Base.Answer != DepAnswer::Unknown)
        ++Decided;
      for (const TestPipeline &Pipeline : Pipelines) {
        CascadeResult R = Pipeline.run(P, Extra);
        EXPECT_EQ(R.Answer, Base.Answer)
            << Pipeline.spec() << "\n"
            << P.str();
        if (R.Answer == DepAnswer::Dependent && R.Witness) {
          EXPECT_TRUE(verifyWitness(P, *R.Witness, Extra))
              << Pipeline.spec() << "\n"
              << P.str();
        }
      }
    }
  }
  EXPECT_GT(Decided, 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePermutationProperty,
                         ::testing::Values(101, 102, 103));

TEST(PipelinePermutation, ConstrainedDirectionsSplitAsExpected) {
  // a[i+1] = a[i]: dependent overall, dependent under '<', independent
  // under '>' — in every stage order.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  for (const TestPipeline &Pipeline : permutedPipelines()) {
    CascadeResult Less =
        Pipeline.run(P, {dirConstraint(P, /*Less=*/true)});
    EXPECT_EQ(Less.Answer, DepAnswer::Dependent) << Pipeline.spec();
    if (Less.Witness) {
      EXPECT_TRUE(verifyWitness(P, *Less.Witness,
                                {dirConstraint(P, /*Less=*/true)}));
    }
    CascadeResult Greater =
        Pipeline.run(P, {dirConstraint(P, /*Less=*/false)});
    EXPECT_EQ(Greater.Answer, DepAnswer::Independent)
        << Pipeline.spec();
  }
}

TEST(BanerjeeStage, SoundOnRandomCorpus) {
  // Banerjee may miss independence but must never fabricate it: every
  // Independent from the banerjee pipeline is confirmed by the exact
  // cascade, and everything else is Unknown (assumed dependent).
  std::shared_ptr<const TestPipeline> Banerjee = makePipeline("banerjee");
  ASSERT_TRUE(Banerjee != nullptr);
  SplitRng Rng(202);
  unsigned Independent = 0;
  for (unsigned Iter = 0; Iter < 300; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    CascadeResult B = Banerjee->run(P, {});
    EXPECT_NE(B.Answer, DepAnswer::Dependent)
        << "Banerjee cannot prove dependence\n"
        << P.str();
    if (B.Answer != DepAnswer::Independent)
      continue;
    ++Independent;
    EXPECT_EQ(B.DecidedBy, TestKind::Banerjee);
    CascadeResult Exact = testDependence(P);
    EXPECT_EQ(Exact.Answer, DepAnswer::Independent)
        << "Banerjee claimed independence the exact cascade denies\n"
        << P.str();
  }
  EXPECT_GT(Independent, 10u);
}

TEST(PipelineTraceTest, RecordsSkipsAndDecision) {
  // 2i - 2i' == 1: no constant subscripts (const skipped), the GCD
  // stage proves independence, nothing after it runs.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({2, -2}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  PipelineTrace Trace;
  CascadeResult R =
      TestPipeline::defaultPipeline().run(P, {}, {}, nullptr, &Trace);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::GcdTest);
  ASSERT_EQ(Trace.Stages.size(), 2u);
  EXPECT_STREQ(Trace.Stages[0].Stage->name(), "const");
  EXPECT_FALSE(Trace.Stages[0].Applicable);
  EXPECT_STREQ(Trace.Stages[1].Stage->name(), "gcd");
  EXPECT_TRUE(Trace.Stages[1].Applicable);
  EXPECT_EQ(Trace.Stages[1].St, StageResult::Status::Independent);
  EXPECT_TRUE(Trace.Stages[1].Exact);
  std::string Str = Trace.str();
  EXPECT_NE(Str.find("gcd"), std::string::npos) << Str;
  EXPECT_NE(Str.find("independent"), std::string::npos) << Str;
}

TEST(PipelineTraceTest, DependentStageCarriesVerifiedWitness) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  PipelineTrace Trace;
  CascadeResult R =
      TestPipeline::defaultPipeline().run(P, {}, {}, nullptr, &Trace);
  ASSERT_EQ(R.Answer, DepAnswer::Dependent);
  ASSERT_FALSE(Trace.Stages.empty());
  const StageTrace &Last = Trace.Stages.back();
  EXPECT_EQ(Last.St, StageResult::Status::Dependent);
  EXPECT_EQ(Last.Stage->kind(), R.DecidedBy);
  EXPECT_TRUE(Last.Exact);
  ASSERT_TRUE(Last.Witness.has_value());
  EXPECT_TRUE(verifyWitness(P, *Last.Witness));
}

TEST(PipelineStats, PerStageCountersTrackDecisions) {
  DepStats Stats;
  DependenceProblem Indep = ProblemBuilder(1, 1, 1)
                                .eq({2, -2}, -1)
                                .bounds(0, 1, 10)
                                .bounds(1, 1, 10)
                                .build();
  TestPipeline::defaultPipeline().run(Indep, {}, {}, &Stats);
  const DependenceTest *Gcd = findStage("gcd");
  ASSERT_TRUE(Gcd != nullptr);
  ASSERT_GT(Stats.StageDecided.size(), Gcd->id());
  EXPECT_EQ(Stats.StageDecided[Gcd->id()], 1u);
  EXPECT_EQ(Stats.StageIndependent[Gcd->id()], 1u);
  EXPECT_EQ(Stats.decided(TestKind::GcdTest), 1u);
}

TEST(PipelineOverflow, ProvenanceRecordedWhenUnanalyzable) {
  // Equation solvable but the bounds projection overflows 64-bit
  // arithmetic during preprocessing. If the pipeline ends Unknown, the
  // overflow must be attributed to a stage — in the stats, in DepStats
  // rendering, and in the trace.
  DependenceProblem P =
      ProblemBuilder(1, 1, 1)
          .eq({3, -7}, 1)
          .bounds(0, INT64_MIN + 2, INT64_MAX - 2)
          .bounds(1, INT64_MIN + 2, INT64_MAX - 2)
          .build();
  DepStats Stats;
  PipelineTrace Trace;
  CascadeResult R =
      TestPipeline::defaultPipeline().run(P, {}, {}, &Stats, &Trace);
  if (R.Answer != DepAnswer::Unknown) {
    // Arithmetic held on this platform; the answer must be exact.
    EXPECT_EQ(R.Answer, DepAnswer::Dependent);
    return;
  }
  EXPECT_EQ(R.DecidedBy, TestKind::Unanalyzable);
  EXPECT_FALSE(R.Exact);
  uint64_t OverflowTotal = 0;
  for (uint64_t N : Stats.StageOverflow)
    OverflowTotal += N;
  EXPECT_EQ(OverflowTotal, 1u);
  EXPECT_NE(Stats.str().find("overflow in stage"), std::string::npos)
      << Stats.str();
  bool Traced = false;
  for (const StageTrace &T : Trace.Stages)
    Traced = Traced || T.St == StageResult::Status::Overflow;
  EXPECT_TRUE(Traced);
}

TEST(PipelineOverflow, PrepOverflowAttributionIsOrderIndependent) {
  // Whatever stage first touches the shared preprocessing, a prep
  // overflow is booked against the extended-GCD stage, so permuted
  // pipelines agree on provenance.
  DependenceProblem P =
      ProblemBuilder(1, 1, 1)
          .eq({3, -7}, 1)
          .bounds(0, INT64_MIN + 2, INT64_MAX - 2)
          .bounds(1, INT64_MIN + 2, INT64_MAX - 2)
          .build();
  DepStats Default;
  CascadeResult RD =
      TestPipeline::defaultPipeline().run(P, {}, {}, &Default);
  if (RD.Answer != DepAnswer::Unknown)
    return; // arithmetic held; nothing to attribute
  std::optional<TestPipeline> Reversed =
      TestPipeline::parse("const,fm,residue,acyclic,svpc,gcd");
  ASSERT_TRUE(Reversed.has_value());
  DepStats Stats;
  CascadeResult R = Reversed->run(P, {}, {}, &Stats);
  EXPECT_EQ(R.Answer, DepAnswer::Unknown);
  EXPECT_EQ(Stats.StageOverflow, Default.StageOverflow);
}
