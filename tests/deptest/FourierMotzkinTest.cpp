//===- tests/deptest/FourierMotzkinTest.cpp - FM unit tests ---------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/FourierMotzkin.h"

#include "workload/Generator.h"
#include "gtest/gtest.h"

using namespace edda;

namespace {

LinearSystem makeSystem(unsigned NumVars,
                        std::vector<LinearConstraint> Cs) {
  LinearSystem S(NumVars);
  for (LinearConstraint &C : Cs)
    S.add(std::move(C));
  return S;
}

} // namespace

TEST(FourierMotzkin, EmptySystemDependent) {
  FmResult R = runFourierMotzkin(LinearSystem(3));
  ASSERT_EQ(R.St, FmResult::Status::Dependent);
  EXPECT_EQ(R.Sample->size(), 3u);
}

TEST(FourierMotzkin, SimpleFeasibleBox) {
  LinearSystem S = makeSystem(2, {{{1, 0}, 5},
                                  {{-1, 0}, -1},
                                  {{0, 1}, 7},
                                  {{0, -1}, -2}});
  FmResult R = runFourierMotzkin(S);
  ASSERT_EQ(R.St, FmResult::Status::Dependent);
  EXPECT_TRUE(S.satisfiedBy(*R.Sample));
}

TEST(FourierMotzkin, RealInfeasible) {
  // t0 + t1 <= 0 and t0 + t1 >= 1.
  LinearSystem S = makeSystem(2, {{{1, 1}, 0}, {{-1, -1}, -1}});
  EXPECT_EQ(runFourierMotzkin(S).St, FmResult::Status::Independent);
}

TEST(FourierMotzkin, IntegerGapFirstVariable) {
  // 3 <= 2t <= 3: real-feasible at t = 1.5, integer-empty; the first
  // back-substitution step proves independence exactly. (Normalization
  // already tightens 2t <= 3 to t <= 1, which also works.)
  LinearSystem S = makeSystem(1, {{{2}, 3}, {{-2}, -3}});
  FmResult R = runFourierMotzkin(S);
  EXPECT_EQ(R.St, FmResult::Status::Independent);
}

TEST(FourierMotzkin, IntegerGapCoupled) {
  // 2t0 + 2t1 == 1 over a box: every derived constraint normalizes to a
  // contradiction over the integers.
  LinearSystem S = makeSystem(2, {{{2, 2}, 1},
                                  {{-2, -2}, -1},
                                  {{1, 0}, 10},
                                  {{-1, 0}, 10},
                                  {{0, 1}, 10},
                                  {{0, -1}, 10}});
  EXPECT_EQ(runFourierMotzkin(S).St, FmResult::Status::Independent);
}

TEST(FourierMotzkin, UnboundedFeasible) {
  // t0 - t1 <= -1 alone: unbounded but feasible.
  LinearSystem S = makeSystem(2, {{{1, -1}, -1}});
  FmResult R = runFourierMotzkin(S);
  ASSERT_EQ(R.St, FmResult::Status::Dependent);
  EXPECT_TRUE(S.satisfiedBy(*R.Sample));
}

TEST(FourierMotzkin, ThreeVariableCoupling) {
  // The workload's FM template shape: 1 <= t0,t1,t2 <= 10 and
  // 1 <= t0 + t1 - t2 - d <= 10 with d = 5: feasible.
  LinearSystem S = makeSystem(3, {
                                     {{1, 0, 0}, 10},
                                     {{-1, 0, 0}, -1},
                                     {{0, 1, 0}, 10},
                                     {{0, -1, 0}, -1},
                                     {{0, 0, 1}, 10},
                                     {{0, 0, -1}, -1},
                                     {{1, 1, -1}, 15},  // <= 10 + 5
                                     {{-1, -1, 1}, -6}, // >= 1 + 5
                                 });
  FmResult R = runFourierMotzkin(S);
  ASSERT_EQ(R.St, FmResult::Status::Dependent);
  EXPECT_TRUE(S.satisfiedBy(*R.Sample));
}

TEST(FourierMotzkin, ThreeVariableCouplingInfeasible) {
  // Same shape with d = 2N - 1 = 19: t0 + t1 - t2 <= 19 + 10 fine but
  // >= 20 requires t0 + t1 >= 21 + t2 >= 22 > 20.
  LinearSystem S = makeSystem(3, {
                                     {{1, 0, 0}, 10},
                                     {{-1, 0, 0}, -1},
                                     {{0, 1, 0}, 10},
                                     {{0, -1, 0}, -1},
                                     {{0, 0, 1}, 10},
                                     {{0, 0, -1}, -1},
                                     {{1, 1, -1}, 29},
                                     {{-1, -1, 1}, -20},
                                 });
  EXPECT_EQ(runFourierMotzkin(S).St, FmResult::Status::Independent);
}

TEST(FourierMotzkin, BranchAndBoundResolvesParityGap) {
  // 2t0 - 2t1 == 1 is unsatisfiable over Z. Gcd normalization already
  // kills it; build a sneakier gap needing coordination:
  //   t0 + 2t1 == 2, 2t0 + t1 == 2  ->  real solution (2/3, 2/3),
  // integer-infeasible. Depending on elimination order this exercises
  // the branch & bound or the first-step gap.
  LinearSystem S = makeSystem(2, {{{1, 2}, 2},
                                  {{-1, -2}, -2},
                                  {{2, 1}, 2},
                                  {{-2, -1}, -2}});
  FmResult R = runFourierMotzkin(S);
  EXPECT_EQ(R.St, FmResult::Status::Independent);
}

TEST(FourierMotzkin, DisabledBranchAndBoundIsPaperConfig) {
  // MaxBranchNodes = 0 reproduces the paper's configuration (no
  // explicit branch & bound): integer gaps that need coordinated
  // splitting come back Unknown instead of Independent.
  FourierMotzkinOptions Opts;
  Opts.MaxBranchNodes = 0;
  LinearSystem S = makeSystem(2, {{{1, 2}, 2},
                                  {{-1, -2}, -2},
                                  {{2, 1}, 2},
                                  {{-2, -1}, -2}});
  FmResult R = runFourierMotzkin(S, Opts);
  // Either the first-step gap already catches it (exact) or the budget
  // gate reports Unknown; both are sound, neither is Dependent.
  EXPECT_NE(R.St, FmResult::Status::Dependent);
}

TEST(FourierMotzkin, CombineBudgetGivesUpUnknown) {
  // A feasible box needs one combine per variable; with the combine
  // cap at one the solver must stop at Unknown (not Overflowed — a
  // wide retry could not help), and the work counter must have moved.
  LinearSystem S = makeSystem(2, {{{1, 0}, 5},
                                  {{-1, 0}, -1},
                                  {{0, 1}, 7},
                                  {{0, -1}, -2}});
  FmResult Unlimited = runFourierMotzkin(S);
  ASSERT_EQ(Unlimited.St, FmResult::Status::Dependent);
  EXPECT_GE(Unlimited.Combines, 2u);

  FourierMotzkinOptions Capped;
  Capped.MaxCombines = 1;
  FmResult R = runFourierMotzkin(S, Capped);
  EXPECT_EQ(R.St, FmResult::Status::Unknown);
  EXPECT_FALSE(R.Overflowed);
}

TEST(FourierMotzkin, BranchNodeAccounting) {
  LinearSystem S = makeSystem(2, {{{1, 2}, 2},
                                  {{-1, -2}, -2},
                                  {{2, 1}, 2},
                                  {{-2, -1}, -2}});
  FmResult R = runFourierMotzkin(S);
  if (R.UsedBranchAndBound)
    EXPECT_GT(R.BranchNodes, 0u);
  else
    EXPECT_EQ(R.BranchNodes, 0u);
}

TEST(FourierMotzkin, BudgetExhaustionReturnsUnknown) {
  // Force Unknown with a tiny constraint cap.
  FourierMotzkinOptions Opts;
  Opts.MaxConstraints = 1;
  LinearSystem S = makeSystem(3, {
                                     {{1, 1, -1}, 10},
                                     {{-1, -1, 1}, -1},
                                     {{1, -1, 1}, 10},
                                     {{-1, 1, -1}, -1},
                                     {{1, 1, 1}, 10},
                                     {{-1, -1, -1}, -1},
                                 });
  FmResult R = runFourierMotzkin(S, Opts);
  EXPECT_EQ(R.St, FmResult::Status::Unknown);
}

TEST(FourierMotzkinProperty, AgreesWithEnumerationOnRandomSystems) {
  SplitRng Rng(99);
  for (unsigned Iter = 0; Iter < 400; ++Iter) {
    unsigned NumVars = 1 + static_cast<unsigned>(Rng.below(3));
    unsigned NumCs = 1 + static_cast<unsigned>(Rng.below(5));
    LinearSystem S(NumVars);
    for (unsigned C = 0; C < NumCs; ++C) {
      std::vector<int64_t> Coeffs(NumVars);
      for (int64_t &V : Coeffs)
        V = static_cast<int64_t>(Rng.below(7)) - 3;
      S.addLe(std::move(Coeffs),
              static_cast<int64_t>(Rng.below(15)) - 4);
    }
    // Box everything so enumeration terminates.
    for (unsigned V = 0; V < NumVars; ++V) {
      std::vector<int64_t> Up(NumVars, 0), Down(NumVars, 0);
      Up[V] = 1;
      Down[V] = -1;
      S.addLe(std::move(Up), 6);
      S.addLe(std::move(Down), 6);
    }

    bool Feasible = false;
    std::vector<int64_t> Point(NumVars, -6);
    while (true) {
      if (S.satisfiedBy(Point)) {
        Feasible = true;
        break;
      }
      unsigned K = 0;
      while (K < NumVars && Point[K] == 6)
        Point[K++] = -6;
      if (K == NumVars)
        break;
      ++Point[K];
    }

    FmResult R = runFourierMotzkin(S);
    if (Feasible) {
      ASSERT_EQ(R.St, FmResult::Status::Dependent) << "iter " << Iter;
      EXPECT_TRUE(S.satisfiedBy(*R.Sample)) << "iter " << Iter;
    } else {
      ASSERT_EQ(R.St, FmResult::Status::Independent) << "iter " << Iter;
    }
  }
}
