//===- tests/deptest/WideningTest.cpp - 128-bit widening ladder -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The widening arithmetic ladder end to end: queries the seed gave up
/// as Unanalyzable now decide at 128 bits (with verified witnesses),
/// --no-widen reproduces the historical behavior, widen provenance is
/// permutation-invariant like overflow provenance, traces and stats
/// surface the retry, and the memo cache round-trips the Widened bit
/// (rejecting pre-widening v3 files).
///
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"

#include "deptest/Memo.h"
#include "deptest/Stats.h"
#include "deptest/TestPipeline.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

#include <climits>
#include <cstdio>
#include <fstream>
#include <string>

#include <unistd.h>

using namespace edda;
using namespace edda::testutil;

namespace {

/// 3i - 7i' + 1 = 0 over near-full int64 ranges: solvable, but every
/// 64-bit path through the bounds projection poisons. The canonical
/// "seed says Unanalyzable, ladder decides" problem (also pinned in
/// tests/inputs/corpus/widen_svpc_huge_bounds.dep).
DependenceProblem hugeBoundsProblem() {
  return ProblemBuilder(1, 1, 1)
      .eq({3, -7}, 1)
      .bounds(0, INT64_MIN + 2, INT64_MAX - 2)
      .bounds(1, INT64_MIN + 2, INT64_MAX - 2)
      .build();
}

/// A small problem the 64-bit tier decides outright; the ladder must
/// stay idle on it.
DependenceProblem easyProblem() {
  return ProblemBuilder(1, 1, 1)
      .eq({2, -2}, -1)
      .bounds(0, 1, 10)
      .bounds(1, 1, 10)
      .build();
}

} // namespace

TEST(Widening, FlipsUnanalyzableToDecisive) {
  DependenceProblem P = hugeBoundsProblem();

  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  EXPECT_TRUE(R.Exact);
  EXPECT_TRUE(R.Widened);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(verifyWitness(P, *R.Witness));

  // --no-widen is the seed's 64-bit-only cascade.
  CascadeOptions NoWiden;
  NoWiden.Widen = false;
  CascadeResult RN = testDependence(P, NoWiden);
  EXPECT_EQ(RN.Answer, DepAnswer::Unknown);
  EXPECT_EQ(RN.DecidedBy, TestKind::Unanalyzable);
  EXPECT_FALSE(RN.Widened);
}

TEST(Widening, LadderStaysIdleOnTheFastPath) {
  DependenceProblem P = easyProblem();
  DepStats Stats;
  CascadeResult R = testDependence(P, {}, &Stats);
  CascadeOptions NoWiden;
  NoWiden.Widen = false;
  CascadeResult RN = testDependence(P, NoWiden);
  EXPECT_FALSE(R.Widened);
  EXPECT_EQ(R.Answer, RN.Answer);
  EXPECT_EQ(R.DecidedBy, RN.DecidedBy);
  EXPECT_EQ(R.Exact, RN.Exact);
  EXPECT_EQ(Stats.WidenedQueries, 0u);
  for (uint64_t N : Stats.StageWiden)
    EXPECT_EQ(N, 0u);
}

TEST(Widening, StatsCountWidenedQueriesWithProvenance) {
  DependenceProblem P = hugeBoundsProblem();
  DepStats Stats;
  CascadeResult R = testDependence(P, {}, &Stats);
  ASSERT_EQ(R.Answer, DepAnswer::Dependent);
  EXPECT_EQ(Stats.WidenedQueries, 1u);
  uint64_t Total = 0;
  for (uint64_t N : Stats.StageWiden)
    Total += N;
  EXPECT_EQ(Total, 1u);
  // Shared-prep widening is booked against the extended-GCD stage,
  // mirroring overflow provenance.
  const DependenceTest *Gcd = findStage("gcd");
  ASSERT_TRUE(Gcd != nullptr);
  ASSERT_GT(Stats.StageWiden.size(), Gcd->id());
  EXPECT_EQ(Stats.StageWiden[Gcd->id()], 1u);
  EXPECT_NE(Stats.str().find("widened in stage"), std::string::npos)
      << Stats.str();
  EXPECT_NE(Stats.str().find("widened: 1"), std::string::npos)
      << Stats.str();
}

TEST(Widening, ProvenanceIsOrderIndependent) {
  DependenceProblem P = hugeBoundsProblem();
  DepStats Default;
  CascadeResult RD =
      TestPipeline::defaultPipeline().run(P, {}, {}, &Default);
  ASSERT_EQ(RD.Answer, DepAnswer::Dependent);

  std::optional<TestPipeline> Reversed =
      TestPipeline::parse("const,fm,residue,acyclic,svpc,gcd");
  ASSERT_TRUE(Reversed.has_value());
  DepStats Stats;
  CascadeResult R = Reversed->run(P, {}, {}, &Stats);
  EXPECT_EQ(R.Answer, RD.Answer);
  EXPECT_TRUE(R.Widened);
  EXPECT_EQ(Stats.WidenedQueries, Default.WidenedQueries);
  // StageWiden is grown lazily, so compare with zero-padding: the same
  // registry-global stage must carry the count under both orders.
  size_t N = std::max(Stats.StageWiden.size(), Default.StageWiden.size());
  for (size_t I = 0; I < N; ++I) {
    uint64_t A = I < Stats.StageWiden.size() ? Stats.StageWiden[I] : 0;
    uint64_t B = I < Default.StageWiden.size() ? Default.StageWiden[I] : 0;
    EXPECT_EQ(A, B) << "stage " << I;
  }
}

TEST(Widening, TraceMarksTheWidenedStage) {
  DependenceProblem P = hugeBoundsProblem();
  PipelineTrace Trace;
  CascadeResult R = TestPipeline::defaultPipeline().run(
      P, {}, {}, /*Stats=*/nullptr, &Trace);
  ASSERT_EQ(R.Answer, DepAnswer::Dependent);
  bool Marked = false;
  for (const StageTrace &T : Trace.Stages)
    Marked = Marked || T.Widened;
  EXPECT_TRUE(Marked);
  EXPECT_NE(Trace.str().find("widened to 128-bit"), std::string::npos)
      << Trace.str();
}

TEST(Widening, MemoRoundTripsTheWidenedBit) {
  DependenceProblem Wide = hugeBoundsProblem();
  DependenceProblem Narrow = easyProblem();
  DependenceCache Before;
  Before.insertFull(Wide, testDependence(Wide));
  Before.insertFull(Narrow, testDependence(Narrow));

  std::string Path =
      "widening-memo-" + std::to_string(::getpid()) + ".cache";
  ASSERT_TRUE(Before.saveToFile(Path));
  DependenceCache After;
  ASSERT_TRUE(After.loadFromFile(Path));
  std::remove(Path.c_str());

  std::optional<CascadeResult> W = After.lookupFull(Wide);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(W->Answer, DepAnswer::Dependent);
  EXPECT_TRUE(W->Widened);
  std::optional<CascadeResult> N = After.lookupFull(Narrow);
  ASSERT_TRUE(N.has_value());
  EXPECT_FALSE(N->Widened);
}

TEST(Widening, MemoRejectsPreWideningCacheVersions) {
  // A v3 cache predates the Widened bit and a v4 cache predates the
  // direction entries' Widened/RootWidened bits; results that were
  // Unanalyzable then can be decisive now (and direction widening
  // provenance would silently read as false), so stale files must be
  // rejected whole.
  for (const char *Header : {"edda-depcache 3\n0\n0\n0\n",
                             "edda-depcache 4\n0\n0\n0\n"}) {
    std::string Path =
        "widening-stale-" + std::to_string(::getpid()) + ".cache";
    {
      std::ofstream Out(Path);
      Out << Header;
    }
    DependenceCache C;
    EXPECT_FALSE(C.loadFromFile(Path)) << Header;
    std::remove(Path.c_str());
  }
}

TEST(Widening, ConstrainedQueriesWidenToo) {
  // The constrained (direction-vector) entry point takes the same
  // ladder: add a loop-independent-excluding constraint and the wide
  // tier must still find the remaining solutions.
  DependenceProblem P = hugeBoundsProblem();
  std::vector<XAffine> Less;
  {
    // i - i' + 1 <= 0, i.e. require i < i'.
    XAffine F(P.numX());
    F.Coeffs[0] = 1;
    F.Coeffs[1] = -1;
    F.Const = 1;
    Less.push_back(F);
  }
  CascadeResult R = testDependenceConstrained(P, Less);
  if (R.Answer == DepAnswer::Dependent && R.Witness) {
    EXPECT_TRUE(verifyWitness(P, *R.Witness, Less));
    EXPECT_LT((*R.Witness)[0], (*R.Witness)[1]);
  } else {
    // Whatever the verdict, the constrained path must not claim
    // exactness it does not have.
    EXPECT_NE(R.Answer, DepAnswer::Independent);
  }
}
