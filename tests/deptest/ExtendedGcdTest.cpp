//===- tests/deptest/ExtendedGcdTest.cpp - Extended GCD tests -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/ExtendedGcd.h"

#include "testutil/Helpers.h"
#include "workload/Generator.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

namespace {

/// x*A for a row vector x.
std::vector<int64_t> rowTimes(const std::vector<int64_t> &X,
                              const IntMatrix &A) {
  std::vector<int64_t> Out(A.cols(), 0);
  for (unsigned C = 0; C < A.cols(); ++C)
    for (unsigned R = 0; R < A.rows(); ++R)
      Out[C] += X[R] * A.at(R, C);
  return Out;
}

} // namespace

TEST(SolveDiophantine, SingleEquationGcdDivides) {
  // 2x + 4y = 6 has integer solutions.
  IntMatrix A(2, 1);
  A.at(0, 0) = 2;
  A.at(1, 0) = 4;
  DiophantineSolution Sol = solveDiophantine(A, {6});
  ASSERT_TRUE(Sol.Solvable);
  EXPECT_FALSE(Sol.Overflow);
  EXPECT_EQ(Sol.NumFree, 1u);
  EXPECT_EQ(rowTimes(Sol.Offset, A), (std::vector<int64_t>{6}));
}

TEST(SolveDiophantine, SingleEquationGcdFails) {
  // 2x + 4y = 7: gcd 2 does not divide 7.
  IntMatrix A(2, 1);
  A.at(0, 0) = 2;
  A.at(1, 0) = 4;
  DiophantineSolution Sol = solveDiophantine(A, {7});
  EXPECT_FALSE(Sol.Solvable);
  EXPECT_FALSE(Sol.Overflow);
}

TEST(SolveDiophantine, InconsistentSystem) {
  // x = 0 and x = 1 simultaneously.
  IntMatrix A(1, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 1;
  DiophantineSolution Sol = solveDiophantine(A, {0, 1});
  EXPECT_FALSE(Sol.Solvable);
}

TEST(SolveDiophantine, FullRankUniqueSolution) {
  // x = 3, y = -2 uniquely.
  IntMatrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(1, 1) = 1;
  DiophantineSolution Sol = solveDiophantine(A, {3, -2});
  ASSERT_TRUE(Sol.Solvable);
  EXPECT_EQ(Sol.NumFree, 0u);
  EXPECT_EQ(Sol.Offset, (std::vector<int64_t>{3, -2}));
}

TEST(SolveDiophantine, NoEquations) {
  IntMatrix A(3, 0);
  DiophantineSolution Sol = solveDiophantine(A, {});
  ASSERT_TRUE(Sol.Solvable);
  EXPECT_EQ(Sol.NumFree, 3u);
  // Lattice basis must span Z^3: the free rows form a unimodular set.
  bool Ok = false;
  IntMatrix Basis(3, 3);
  for (unsigned R = 0; R < 3; ++R)
    for (unsigned C = 0; C < 3; ++C)
      Basis.at(R, C) = Sol.FreeRows.at(R, C);
  int64_t Det = Basis.determinant(Ok);
  ASSERT_TRUE(Ok);
  EXPECT_TRUE(Det == 1 || Det == -1);
}

TEST(SolveDiophantine, PaperIntroExample) {
  // i = i' + 10 (paper section 3.1): solutions (t, t+10)... here as
  // i - i' = 10 over x = (i, i').
  IntMatrix A(2, 1);
  A.at(0, 0) = 1;
  A.at(1, 0) = -1;
  DiophantineSolution Sol = solveDiophantine(A, {10});
  ASSERT_TRUE(Sol.Solvable);
  EXPECT_EQ(Sol.NumFree, 1u);
  // Every instantiation satisfies i - i' == 10.
  for (int64_t T = -3; T <= 3; ++T) {
    auto X = Sol.instantiate({T});
    ASSERT_TRUE(X.has_value());
    EXPECT_EQ((*X)[0] - (*X)[1], 10);
  }
}

TEST(SolveDiophantine, InstantiationsSatisfySystem) {
  // 3x + 5y - z = 4 with three variables.
  IntMatrix A(3, 1);
  A.at(0, 0) = 3;
  A.at(1, 0) = 5;
  A.at(2, 0) = -1;
  DiophantineSolution Sol = solveDiophantine(A, {4});
  ASSERT_TRUE(Sol.Solvable);
  EXPECT_EQ(Sol.NumFree, 2u);
  for (int64_t T1 = -2; T1 <= 2; ++T1) {
    for (int64_t T2 = -2; T2 <= 2; ++T2) {
      auto X = Sol.instantiate({T1, T2});
      ASSERT_TRUE(X.has_value());
      EXPECT_EQ(rowTimes(*X, A), (std::vector<int64_t>{4}));
    }
  }
}

TEST(SolveDiophantine, CoupledSystem) {
  // x + 2y = 5, 2x + 3y = 8 -> unique (x, y) = (1, 2).
  IntMatrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 2;
  A.at(1, 1) = 3;
  DiophantineSolution Sol = solveDiophantine(A, {5, 8});
  ASSERT_TRUE(Sol.Solvable);
  EXPECT_EQ(Sol.NumFree, 0u);
  EXPECT_EQ(Sol.Offset, (std::vector<int64_t>{1, 2}));
}

TEST(SolveDiophantineProperty, RandomSolvableSystems) {
  // Build systems from a known solution; the solver must find them, and
  // every instantiation must satisfy the system.
  SplitRng Rng(2024);
  for (unsigned Iter = 0; Iter < 300; ++Iter) {
    unsigned NumX = 2 + static_cast<unsigned>(Rng.below(3));
    unsigned NumEq = 1 + static_cast<unsigned>(Rng.below(NumX));
    IntMatrix A(NumX, NumEq);
    std::vector<int64_t> Known(NumX);
    for (unsigned R = 0; R < NumX; ++R) {
      Known[R] = static_cast<int64_t>(Rng.below(11)) - 5;
      for (unsigned C = 0; C < NumEq; ++C)
        A.at(R, C) = static_cast<int64_t>(Rng.below(9)) - 4;
    }
    std::vector<int64_t> C = rowTimes(Known, A);
    DiophantineSolution Sol = solveDiophantine(A, C);
    ASSERT_FALSE(Sol.Overflow);
    ASSERT_TRUE(Sol.Solvable) << "iteration " << Iter;
    // Offset satisfies the system.
    EXPECT_EQ(rowTimes(Sol.Offset, A), C);
    // A random instantiation does too.
    std::vector<int64_t> T(Sol.NumFree);
    for (int64_t &V : T)
      V = static_cast<int64_t>(Rng.below(7)) - 3;
    auto X = Sol.instantiate(T);
    ASSERT_TRUE(X.has_value());
    EXPECT_EQ(rowTimes(*X, A), C);
  }
}

TEST(SolveDiophantineProperty, UnsolvableDetectedBySmallSearch) {
  // When the solver says unsolvable, exhaustive search over a window
  // must agree (completeness of the factorization).
  SplitRng Rng(7);
  unsigned Checked = 0;
  for (unsigned Iter = 0; Iter < 400 && Checked < 60; ++Iter) {
    IntMatrix A(2, 1);
    A.at(0, 0) = static_cast<int64_t>(Rng.below(9)) - 4;
    A.at(1, 0) = static_cast<int64_t>(Rng.below(9)) - 4;
    int64_t C = static_cast<int64_t>(Rng.below(21)) - 10;
    DiophantineSolution Sol = solveDiophantine(A, {C});
    if (Sol.Solvable || Sol.Overflow)
      continue;
    ++Checked;
    for (int64_t X = -30; X <= 30; ++X)
      for (int64_t Y = -30; Y <= 30; ++Y)
        ASSERT_NE(A.at(0, 0) * X + A.at(1, 0) * Y, C)
            << "solver missed a solution";
  }
  EXPECT_GT(Checked, 10u);
}

TEST(FactorUnimodular, ProducesUnimodularEchelonFactorization) {
  SplitRng Rng(314);
  for (unsigned Iter = 0; Iter < 200; ++Iter) {
    unsigned NumX = 2 + static_cast<unsigned>(Rng.below(3));
    unsigned NumEq = 1 + static_cast<unsigned>(Rng.below(3));
    IntMatrix A(NumX, NumEq);
    for (unsigned R = 0; R < NumX; ++R)
      for (unsigned C = 0; C < NumEq; ++C)
        A.at(R, C) = static_cast<int64_t>(Rng.below(9)) - 4;

    UnimodularFactorization F = factorUnimodular(A);
    ASSERT_TRUE(F.Ok);
    // D is echelon.
    EXPECT_TRUE(F.D.isEchelon());
    // U*A == D.
    bool MulOk = false;
    IntMatrix UA = F.U.multiply(A, MulOk);
    ASSERT_TRUE(MulOk);
    EXPECT_EQ(UA, F.D);
    // U is unimodular.
    bool DetOk = false;
    int64_t Det = F.U.determinant(DetOk);
    ASSERT_TRUE(DetOk);
    EXPECT_TRUE(Det == 1 || Det == -1) << Det;
    // Rank counts the nonzero rows of D.
    unsigned NonzeroRows = 0;
    for (unsigned R = 0; R < F.D.rows(); ++R)
      for (unsigned C = 0; C < F.D.cols(); ++C)
        if (F.D.at(R, C) != 0) {
          ++NonzeroRows;
          break;
        }
    EXPECT_EQ(F.Rank, NonzeroRows);
  }
}

TEST(FactorUnimodular, LeadingEntriesPositive) {
  // The paper requires d11 > 0; our echelon form makes every leading
  // entry positive.
  IntMatrix A(2, 2);
  A.at(0, 0) = -3;
  A.at(0, 1) = 1;
  A.at(1, 0) = 0;
  A.at(1, 1) = -2;
  UnimodularFactorization F = factorUnimodular(A);
  ASSERT_TRUE(F.Ok);
  for (unsigned R = 0; R < F.Rank; ++R) {
    for (unsigned C = 0; C < F.D.cols(); ++C) {
      if (F.D.at(R, C) == 0)
        continue;
      EXPECT_GT(F.D.at(R, C), 0);
      break;
    }
  }
}

TEST(SolveEquations, FromProblem) {
  // a[i] vs a[i'+1] in 1..10: i - i' - 1 == 0.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DiophantineSolution Sol = solveEquations(P);
  ASSERT_TRUE(Sol.Solvable);
  EXPECT_EQ(Sol.NumFree, 1u);
  auto X = Sol.instantiate({5});
  ASSERT_TRUE(X.has_value());
  EXPECT_EQ((*X)[0] - (*X)[1] - 1, 0);
}

TEST(ProjectToFree, ConstantAndVaryingForms) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, -3) // i' = i - 3
                            .bounds(0, 0, 10)
                            .bounds(1, 0, 10)
                            .build();
  DiophantineSolution Sol = solveEquations(P);
  ASSERT_TRUE(Sol.Solvable);
  ASSERT_EQ(Sol.NumFree, 1u);

  // The distance i' - i is the constant -3... careful: equation says
  // i - i' - 3 == 0, so i' = i - 3 and i' - i == -3.
  XAffine Delta(2);
  Delta.Coeffs[0] = -1;
  Delta.Coeffs[1] = 1;
  std::vector<int64_t> TCoeffs;
  int64_t TConst;
  ASSERT_TRUE(projectToFree(Delta, Sol, TCoeffs, TConst));
  EXPECT_EQ(TCoeffs, (std::vector<int64_t>{0}));
  EXPECT_EQ(TConst, -3);

  // i itself varies with the free variable.
  XAffine JustI(2);
  JustI.Coeffs[0] = 1;
  ASSERT_TRUE(projectToFree(JustI, Sol, TCoeffs, TConst));
  EXPECT_NE(TCoeffs[0], 0);
}

TEST(BoundsToFreeSpace, CountsAndSatisfaction) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, -10) // i = i' + 10
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DiophantineSolution Sol = solveEquations(P);
  ASSERT_TRUE(Sol.Solvable);
  std::optional<LinearSystem> Sys = boundsToFreeSpace(P, Sol);
  ASSERT_TRUE(Sys.has_value());
  // Two loops with both bounds -> 4 constraints over 1 free variable,
  // and (per the paper's section 3.1 walkthrough) they are jointly
  // unsatisfiable: 1 <= t <= 10 and 1 <= t +/- 10 <= 10.
  EXPECT_EQ(Sys->constraints().size(), 4u);
  bool AnySatisfying = false;
  for (int64_t T = -30; T <= 30; ++T)
    if (Sys->satisfiedBy({T}))
      AnySatisfying = true;
  EXPECT_FALSE(AnySatisfying);
}

TEST(SimpleGcdBaselineTest, Basics) {
  // 2i vs 2i'+1: per-dimension gcd 2 does not divide 1.
  DependenceProblem Odd = ProblemBuilder(1, 1, 1)
                              .eq({2, -2}, -1)
                              .bounds(0, 1, 10)
                              .bounds(1, 1, 10)
                              .build();
  EXPECT_FALSE(simpleGcdTest(Odd));

  DependenceProblem Even = ProblemBuilder(1, 1, 1)
                               .eq({2, -2}, -4)
                               .bounds(0, 1, 10)
                               .bounds(1, 1, 10)
                               .build();
  EXPECT_TRUE(simpleGcdTest(Even));

  // Constant contradiction.
  DependenceProblem Constant = ProblemBuilder(1, 1, 1)
                                   .eq({0, 0}, 5)
                                   .bounds(0, 1, 10)
                                   .bounds(1, 1, 10)
                                   .build();
  EXPECT_FALSE(simpleGcdTest(Constant));
}
