//===- tests/deptest/ProblemIOTest.cpp - Problem format tests -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/ProblemIO.h"

#include "deptest/Cascade.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

TEST(ProblemIO, ParseSimple) {
  ProblemParseResult R = parseProblemText(R"(# a[i+10] = a[i], i = 1..10
problem
  loops 1 1 common 1 symbolic 0
  eq 1 -1 = 10
  lo 0 : 1
  hi 0 : 10
  lo 1 : 1
  hi 1 : 10
end
)");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  const DependenceProblem &P = *R.Problem;
  EXPECT_EQ(P.NumLoopsA, 1u);
  EXPECT_EQ(P.NumCommon, 1u);
  ASSERT_EQ(P.Equations.size(), 1u);
  EXPECT_EQ(P.Equations[0].Coeffs, (std::vector<int64_t>{1, -1}));
  EXPECT_EQ(P.Equations[0].Const, 10);
  ASSERT_TRUE(P.Hi[1].has_value());
  EXPECT_EQ(P.Hi[1]->Const, 10);
  // Matches the paper walkthrough: independent.
  EXPECT_EQ(testDependence(P).Answer, DepAnswer::Independent);
}

TEST(ProblemIO, ParseAffineBound) {
  ProblemParseResult R = parseProblemText(R"(problem
  loops 2 2 common 2 symbolic 0
  eq 0 1 0 -1 = -2
  lo 0 : 1
  hi 0 : 10
  lo 1 : 1
  hi 1 1 0 0 0 : 0   # j <= i
  lo 2 : 1
  hi 2 : 10
  lo 3 : 1
  hi 3 0 0 1 0 : 0
end
)");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Problem->Hi[1]->Coeffs[0], 1);
  EXPECT_EQ(testDependence(*R.Problem).DecidedBy, TestKind::Acyclic);
}

TEST(ProblemIO, MissingBoundsAllowed) {
  ProblemParseResult R = parseProblemText(R"(problem
  loops 1 1 common 1 symbolic 1
  eq 1 -1 -1 = -1
  lo 0 : 1
  hi 0 : 10
  lo 1 : 1
  hi 1 : 10
end
)");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Problem->NumSymbolic, 1u);
  EXPECT_EQ(testDependence(*R.Problem).Answer, DepAnswer::Dependent);
}

TEST(ProblemIO, RoundTrip) {
  SplitRng Rng(123);
  for (unsigned Iter = 0; Iter < 100; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    std::string Text = printProblemText(P);
    ProblemParseResult R = parseProblemText(Text);
    ASSERT_TRUE(R.succeeded()) << R.Error << "\n" << Text;
    EXPECT_EQ(R.Problem->serialize(true), P.serialize(true)) << Text;
  }
}

TEST(ProblemIO, Errors) {
  auto ErrorOf = [](const char *Text) {
    ProblemParseResult R = parseProblemText(Text);
    EXPECT_FALSE(R.succeeded());
    return R.Error;
  };
  EXPECT_NE(ErrorOf("loops 1 1 common 1 symbolic 0\nend\n")
                .find("expected 'problem'"),
            std::string::npos);
  EXPECT_NE(ErrorOf("problem\n  eq 1 -1 = 0\nend\n")
                .find("'loops' header"),
            std::string::npos);
  EXPECT_NE(ErrorOf("problem\n  loops 1 1 common 2 symbolic 0\nend\n")
                .find("more common"),
            std::string::npos);
  EXPECT_NE(
      ErrorOf(
          "problem\n  loops 1 1 common 1 symbolic 0\n  eq 1 = 0\nend\n")
          .find("expected 'eq"),
      std::string::npos);
  EXPECT_NE(ErrorOf("problem\n  loops 1 1 common 1 symbolic 0\n  lo 9 "
                    ": 1\nend\n")
                .find("loop variable index"),
            std::string::npos);
  EXPECT_NE(ErrorOf("problem\n  loops 1 1 common 1 symbolic 0\n")
                .find("missing 'end'"),
            std::string::npos);
  EXPECT_NE(ErrorOf("problem\n  loops 1 1 common 1 symbolic 0\nend\n"
                    "eq 1 -1 = 0\n")
                .find("after 'end'"),
            std::string::npos);
  EXPECT_NE(ErrorOf("problem\n  loops 1 1 common 1 symbolic 0\n  "
                    "frobnicate\nend\n")
                .find("unknown directive"),
            std::string::npos);
}

TEST(ProblemIO, CommentsAndBlankLines) {
  ProblemParseResult R = parseProblemText(R"(
# leading comment

problem
  # inner comment
  loops 1 1 common 1 symbolic 0

  eq 1 -1 = 0   # trailing comment
end
)");
  ASSERT_TRUE(R.succeeded()) << R.Error;
}
