//===- tests/deptest/ProblemTest.cpp - DependenceProblem tests ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Problem.h"

#include "deptest/Cascade.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;

TEST(Problem, WellFormedChecks) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  EXPECT_TRUE(P.wellFormed());
  P.NumCommon = 5; // more common loops than loops
  EXPECT_FALSE(P.wellFormed());
}

TEST(Problem, SerializationInjective) {
  DependenceProblem A = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DependenceProblem B = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  EXPECT_NE(A.serialize(true), B.serialize(true));
  EXPECT_NE(A.serialize(false), B.serialize(false));
  // Bounds differences only show with bounds included.
  DependenceProblem C = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .bounds(0, 1, 20)
                            .bounds(1, 1, 20)
                            .build();
  EXPECT_EQ(A.serialize(false), C.serialize(false));
  EXPECT_NE(A.serialize(true), C.serialize(true));
}

TEST(Problem, MissingBoundsSerializeDistinctly) {
  DependenceProblem A = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .bounds(0, 1, 10)
                            .build();
  DependenceProblem B = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .bounds(1, 1, 10)
                            .build();
  EXPECT_NE(A.serialize(true), B.serialize(true));
}

TEST(Problem, UnusedCommonLoops) {
  // Outer loop unused, inner used.
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({0, 1, 0, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  std::vector<bool> Unused = P.unusedCommonLoops();
  ASSERT_EQ(Unused.size(), 2u);
  EXPECT_TRUE(Unused[0]);
  EXPECT_FALSE(Unused[1]);
}

TEST(Problem, TriangularBoundMakesOuterUsed) {
  // Inner bound j <= i keeps the outer loop alive even though i is in
  // no subscript.
  DependenceProblem P =
      ProblemBuilder(2, 2, 2)
          .eq({0, 1, 0, -1}, 1)
          .bounds(0, 1, 10)
          .bounds(2, 1, 10)
          .loBound(1, {0, 0, 0, 0}, 1)
          .hiBound(1, {1, 0, 0, 0}, 0)
          .loBound(3, {0, 0, 0, 0}, 1)
          .hiBound(3, {0, 0, 1, 0}, 0)
          .build();
  std::vector<bool> Unused = P.unusedCommonLoops();
  EXPECT_FALSE(Unused[0]);
  EXPECT_FALSE(Unused[1]);
}

TEST(Problem, WithUnusedLoopsRemoved) {
  // The paper's section 5 example: the two-loop programs (a) and (b)
  // collapse to the same single-loop problem once unused indices go.
  DependenceProblem A = ProblemBuilder(2, 2, 2)
                            .eq({1, 0, -1, 0}, -10) // uses outer i
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  DependenceProblem B = ProblemBuilder(2, 2, 2)
                            .eq({0, 1, 0, -1}, -10) // uses inner j
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  std::vector<std::optional<unsigned>> MapA, MapB;
  DependenceProblem RA = A.withUnusedLoopsRemoved(MapA);
  DependenceProblem RB = B.withUnusedLoopsRemoved(MapB);
  EXPECT_EQ(RA.serialize(true), RB.serialize(true));
  EXPECT_EQ(RA.NumCommon, 1u);
  // Program (a) kept its outer loop, (b) its inner one.
  EXPECT_EQ(MapA[0], std::optional<unsigned>(0));
  EXPECT_EQ(MapA[1], std::nullopt);
  EXPECT_EQ(MapB[0], std::nullopt);
  EXPECT_EQ(MapB[1], std::optional<unsigned>(0));
}

TEST(Problem, RemovalKeepsAnswer) {
  SplitRng Rng(5);
  for (unsigned Iter = 0; Iter < 100; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    std::vector<std::optional<unsigned>> Map;
    DependenceProblem R = P.withUnusedLoopsRemoved(Map);
    ASSERT_TRUE(R.wellFormed());
    CascadeResult Before = testDependence(P);
    CascadeResult After = testDependence(R);
    if (Before.Answer != DepAnswer::Unknown &&
        After.Answer != DepAnswer::Unknown)
      EXPECT_EQ(Before.Answer, After.Answer) << P.str();
  }
}

TEST(Problem, SwappedRoundTrip) {
  DependenceProblem P = ProblemBuilder(2, 1, 1, 1)
                            .eq({1, 2, -1, 3}, 4)
                            .bounds(0, 1, 10)
                            .bounds(1, 2, 5)
                            .bounds(2, 0, 7)
                            .build();
  DependenceProblem Twice = P.swapped().swapped();
  EXPECT_EQ(P.serialize(true), Twice.serialize(true));
}

TEST(Problem, SwappedPreservesAnswer) {
  SplitRng Rng(17);
  for (unsigned Iter = 0; Iter < 100; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    CascadeResult A = testDependence(P);
    CascadeResult B = testDependence(P.swapped());
    if (A.Answer != DepAnswer::Unknown && B.Answer != DepAnswer::Unknown)
      EXPECT_EQ(A.Answer, B.Answer) << P.str();
  }
}

TEST(Problem, StrSmoke) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, -10)
                            .bounds(0, 1, 10)
                            .build();
  std::string S = P.str();
  EXPECT_NE(S.find("x0"), std::string::npos);
  EXPECT_NE(S.find("+inf"), std::string::npos);
}
