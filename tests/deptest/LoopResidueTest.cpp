//===- tests/deptest/LoopResidueTest.cpp - Loop Residue unit tests --------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/LoopResidue.h"

#include "gtest/gtest.h"

using namespace edda;

namespace {

VarIntervals intervals(std::vector<std::pair<std::optional<int64_t>,
                                             std::optional<int64_t>>>
                           Pairs) {
  VarIntervals V(static_cast<unsigned>(Pairs.size()));
  for (unsigned I = 0; I < Pairs.size(); ++I) {
    V.Lo[I] = Pairs[I].first;
    V.Hi[I] = Pairs[I].second;
  }
  return V;
}

} // namespace

TEST(LoopResidue, NotApplicableThreeVars) {
  std::vector<LinearConstraint> Multi = {{{1, 1, -1}, 0}};
  ResidueResult R = runLoopResidue(3, Multi, intervals({{}, {}, {}}));
  EXPECT_EQ(R.St, ResidueResult::Status::NotApplicable);
}

TEST(LoopResidue, NotApplicableUnequalMagnitudes) {
  std::vector<LinearConstraint> Multi = {{{2, -1}, 0}};
  ResidueResult R = runLoopResidue(2, Multi, intervals({{}, {}}));
  EXPECT_EQ(R.St, ResidueResult::Status::NotApplicable);
}

TEST(LoopResidue, EqualMagnitudeCoefficientsDividedExactly) {
  // 3*t0 - 3*t1 <= 7 becomes t0 - t1 <= floor(7/3) = 2 (the paper's
  // exactness-preserving extension of Shostak).
  std::vector<LinearConstraint> Multi = {{{3, -3}, 7}};
  ResidueResult R =
      runLoopResidue(2, Multi, intervals({{0, 10}, {0, 10}}));
  ASSERT_EQ(R.St, ResidueResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  EXPECT_LE((*R.Sample)[0] - (*R.Sample)[1], 2);
}

TEST(LoopResidue, PaperFigure1NegativeCycle) {
  // Paper section 3.4: t1 - t2 <= -4 (i.e. t1 <= t2 - 4), t2 <= t3 - 4
  // ... adapted to the figure: edges t1->t3 (-4), t3->n0 (...), with a
  // cycle of value -1 proving independence. Constraints:
  //   t1 - t3 <= -4, t3 <= 3 (t3->n0 weight 3), t1 >= 0 (n0->t1 0).
  // Cycle n0 -> t1 -> t3 -> n0 = 0 + (-4) + 3 = -1 < 0.
  std::vector<LinearConstraint> Multi = {{{1, -1}, -4}};
  ResidueResult R = runLoopResidue(
      2, Multi, intervals({{0, std::nullopt}, {std::nullopt, 3}}));
  EXPECT_EQ(R.St, ResidueResult::Status::Independent);
  ASSERT_GE(R.NegativeCycle.size(), 3u);
  EXPECT_EQ(R.NegativeCycle.front(), R.NegativeCycle.back());
}

TEST(LoopResidue, FeasibleCycleGivesWitness) {
  // t0 <= t1, t1 <= t0 + 1, both in [1, 5].
  std::vector<LinearConstraint> Multi = {{{1, -1}, 0}, {{-1, 1}, 1}};
  ResidueResult R =
      runLoopResidue(2, Multi, intervals({{1, 5}, {1, 5}}));
  ASSERT_EQ(R.St, ResidueResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  const std::vector<int64_t> &S = *R.Sample;
  EXPECT_LE(S[0], S[1]);
  EXPECT_LE(S[1], S[0] + 1);
  EXPECT_GE(S[0], 1);
  EXPECT_LE(S[0], 5);
  EXPECT_GE(S[1], 1);
  EXPECT_LE(S[1], 5);
}

TEST(LoopResidue, IntervalOnlyContradictionThroughCycle) {
  // t0 <= t1 - 1 and t1 <= t0 - 1: pure negative 2-cycle.
  std::vector<LinearConstraint> Multi = {{{1, -1}, -1}, {{-1, 1}, -1}};
  ResidueResult R = runLoopResidue(2, Multi, intervals({{}, {}}));
  EXPECT_EQ(R.St, ResidueResult::Status::Independent);
}

TEST(LoopResidue, LongerChainInfeasible) {
  // t0 <= t1 - 2, t1 <= t2 - 2, t2 in [0,3], t0 >= 0.
  std::vector<LinearConstraint> Multi = {{{1, -1, 0}, -2},
                                         {{0, 1, -1}, -2}};
  ResidueResult R = runLoopResidue(
      3, Multi,
      intervals({{0, std::nullopt}, {std::nullopt, std::nullopt},
                 {std::nullopt, 3}}));
  // t0 >= 0 and t2 <= 3 with t2 >= t0 + 4: cycle value -1.
  EXPECT_EQ(R.St, ResidueResult::Status::Independent);
}

TEST(LoopResidue, DependentSampleSatisfiesEverything) {
  std::vector<LinearConstraint> Multi = {
      {{1, -1, 0}, 2},   // t0 - t1 <= 2
      {{0, 1, -1}, -1},  // t1 <= t2 - 1
      {{-1, 0, 1}, 4},   // t2 - t0 <= 4
  };
  VarIntervals V = intervals({{-3, 7}, {-3, 7}, {-3, 7}});
  ResidueResult R = runLoopResidue(3, Multi, V);
  ASSERT_EQ(R.St, ResidueResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  const std::vector<int64_t> &S = *R.Sample;
  for (const LinearConstraint &C : Multi) {
    int64_t Lhs = 0;
    for (unsigned K = 0; K < 3; ++K)
      Lhs += C.Coeffs[K] * S[K];
    EXPECT_LE(Lhs, C.Bound);
  }
  for (unsigned K = 0; K < 3; ++K) {
    EXPECT_GE(S[K], -3);
    EXPECT_LE(S[K], 7);
  }
}

TEST(LoopResidue, GraphRendering) {
  std::vector<LinearConstraint> Multi = {{{1, -1}, 5}};
  ResidueResult R =
      runLoopResidue(2, Multi, intervals({{0, 9}, {0, 9}}));
  std::string S = R.Graph.str();
  EXPECT_NE(S.find("t0 -> t1  (5)"), std::string::npos);
  EXPECT_NE(S.find("n0"), std::string::npos);
}

TEST(LoopResidue, UnconstrainedVariablesDefaultToZero) {
  ResidueResult R = runLoopResidue(2, {}, intervals({{}, {}}));
  ASSERT_EQ(R.St, ResidueResult::Status::Dependent);
  EXPECT_EQ(*R.Sample, (std::vector<int64_t>{0, 0}));
}
