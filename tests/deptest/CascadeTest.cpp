//===- tests/deptest/CascadeTest.cpp - Cascade unit + property tests ------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"

#include "testutil/Helpers.h"
#include "oracle/Oracle.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;
using namespace edda::oracle;

TEST(Cascade, ConstantSubscriptsIndependent) {
  // a[3] vs a[4].
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({0, 0}, -1) // 3 - 4
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::ArrayConstant);
  EXPECT_TRUE(R.Exact);
}

TEST(Cascade, ConstantSubscriptsDependent) {
  // a[3] vs a[3].
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({0, 0}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  EXPECT_EQ(R.DecidedBy, TestKind::ArrayConstant);
}

TEST(Cascade, ConstantSubscriptsEmptyLoop) {
  // a[3] vs a[3] inside for i = 5 to 2: no iterations, no dependence.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({0, 0}, 0)
                            .bounds(0, 5, 2)
                            .bounds(1, 5, 2)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::ArrayConstant);
}

TEST(Cascade, PaperIntroIndependentLoop) {
  // for i = 1 to 10: a[i] = a[i+10]: the paper's first example. The
  // equations are solvable ignoring bounds, the bounds kill it (SVPC).
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, -10) // i - (i' + 10) == 0
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::Svpc);
  EXPECT_TRUE(R.Exact);
}

TEST(Cascade, PaperIntroDependentLoop) {
  // for i = 1 to 10: a[i+1] = a[i]: dependent.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 1) // (i+1) - i' == 0
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  EXPECT_EQ(R.DecidedBy, TestKind::Svpc);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(verifyWitness(P, *R.Witness));
}

TEST(Cascade, GcdIndependent) {
  // a[2i] vs a[2i'+1].
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({2, -2}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::GcdTest);
}

TEST(Cascade, CoupledInconsistentEquations) {
  // a[i][i+1] vs a[i'][i']: each dimension is fine alone, jointly
  // impossible; the extended GCD back substitution catches it.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .eq({1, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::GcdTest);
}

TEST(Cascade, PaperCoupledSvpcExample) {
  // Section 3.2 worked example: a[i1][i2] = a[i2+10][i1+9], both loops
  // 1..10. x = (i1, i2, i1', i2').
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({1, 0, 0, -1}, -10) // i1 = i2' + 10
                            .eq({0, 1, -1, 0}, -9)  // i2 = i1' + 9
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::Svpc);
}

TEST(Cascade, TriangularAcyclic) {
  // for i = 1..10, j = 1..i: a[j] = a[j+2]: the j <= i constraints are
  // multi-variable, the Acyclic test eliminates them.
  // x = (i, j, i', j').
  DependenceProblem P =
      ProblemBuilder(2, 2, 2)
          .eq({0, 1, 0, -1}, -2) // j = j' + 2
          .bounds(0, 1, 10)
          .bounds(2, 1, 10)
          .loBound(1, {0, 0, 0, 0}, 1)
          .hiBound(1, {1, 0, 0, 0}, 0) // j <= i
          .loBound(3, {0, 0, 0, 0}, 1)
          .hiBound(3, {0, 0, 1, 0}, 0) // j' <= i'
          .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  EXPECT_EQ(R.DecidedBy, TestKind::Acyclic);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(verifyWitness(P, *R.Witness));
}

TEST(Cascade, TriangularAcyclicIndependent) {
  // Same shape with distance 11 > N: pinning j to its lower bound
  // exposes the contradiction.
  DependenceProblem P =
      ProblemBuilder(2, 2, 2)
          .eq({0, 1, 0, -1}, -11)
          .bounds(0, 1, 10)
          .bounds(2, 1, 10)
          .loBound(1, {0, 0, 0, 0}, 1)
          .hiBound(1, {1, 0, 0, 0}, 0)
          .loBound(3, {0, 0, 0, 0}, 1)
          .hiBound(3, {0, 0, 1, 0}, 0)
          .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::Acyclic);
}

TEST(Cascade, BandedResidue) {
  // for i = 1..10, j = i-2..i+2: a[j] = a[j+1]: banded bounds leave a
  // difference-constraint cycle for the Loop Residue test.
  DependenceProblem P =
      ProblemBuilder(2, 2, 2)
          .eq({0, 1, 0, -1}, -1)
          .bounds(0, 1, 10)
          .bounds(2, 1, 10)
          .loBound(1, {1, 0, 0, 0}, -2)
          .hiBound(1, {1, 0, 0, 0}, 2)
          .loBound(3, {0, 0, 1, 0}, -2)
          .hiBound(3, {0, 0, 1, 0}, 2)
          .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  EXPECT_EQ(R.DecidedBy, TestKind::LoopResidue);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(verifyWitness(P, *R.Witness));
}

TEST(Cascade, BandedResidueIndependent) {
  // Distance far beyond the band and the loop range.
  DependenceProblem P =
      ProblemBuilder(2, 2, 2)
          .eq({0, 1, 0, -1}, -25) // j = j' + 25
          .bounds(0, 1, 10)
          .bounds(2, 1, 10)
          .loBound(1, {1, 0, 0, 0}, -2)
          .hiBound(1, {1, 0, 0, 0}, 2)
          .loBound(3, {0, 0, 1, 0}, -2)
          .hiBound(3, {0, 0, 1, 0}, 2)
          .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::LoopResidue);
}

TEST(Cascade, CoupledSumFourierMotzkin) {
  // a[i+j] = a[i+j+5], i,j in 1..10: three-variable constraints both
  // ways defeat the special-case tests; FM decides dependent.
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({1, 1, -1, -1}, -5)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  EXPECT_EQ(R.DecidedBy, TestKind::FourierMotzkin);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(verifyWitness(P, *R.Witness));
}

TEST(Cascade, CoupledSumFourierMotzkinIndependent) {
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({1, 1, -1, -1}, -19) // max gap is 18
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::FourierMotzkin);
}

TEST(Cascade, SymbolicUnboundedVariable) {
  // Section 8: a[i+n] = a[i+2n+1], i in 1..10, n symbolic. Dependent
  // for suitable n (e.g. n = -1 - not "suitable" ... any n with
  // i = i' + n + 1 in range), so the exact answer is Dependent.
  DependenceProblem P = ProblemBuilder(1, 1, 1, 1)
                            .eq({1, -1, -1}, -1) // i - i' - n - 1 == 0
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(verifyWitness(P, *R.Witness));
}

TEST(Cascade, SymbolicCancellation) {
  // a[i+n] vs a[i'+n+3]: n cancels, plain SVPC.
  DependenceProblem P = ProblemBuilder(1, 1, 1, 1)
                            .eq({1, -1, 0}, -3)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  EXPECT_EQ(R.DecidedBy, TestKind::Svpc);
}

TEST(Cascade, ExtraConstraintsRestrictAnswer) {
  // a[i+1] = a[i] is dependent, but not with direction '>' (i > i').
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  XAffine Greater(2); // i' - i + 1 <= 0
  Greater.Coeffs[0] = -1;
  Greater.Coeffs[1] = 1;
  Greater.Const = 1;
  CascadeResult R = testDependenceConstrained(P, {Greater});
  EXPECT_EQ(R.Answer, DepAnswer::Independent);

  XAffine Less(2); // i - i' + 1 <= 0
  Less.Coeffs[0] = 1;
  Less.Coeffs[1] = -1;
  Less.Const = 1;
  CascadeResult R2 = testDependenceConstrained(P, {Less});
  EXPECT_EQ(R2.Answer, DepAnswer::Dependent);
}

TEST(Cascade, StatsRecorded) {
  DepStats Stats;
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({2, -2}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  testDependence(P, {}, &Stats);
  EXPECT_EQ(Stats.Queries, 1u);
  EXPECT_EQ(Stats.decided(TestKind::GcdTest), 1u);
  EXPECT_EQ(Stats.decidedIndependent(TestKind::GcdTest), 1u);
}

//===----------------------------------------------------------------------===//
// The central exactness property: cascade vs brute force.
//===----------------------------------------------------------------------===//

class CascadeOracleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CascadeOracleProperty, MatchesBruteForce) {
  SplitRng Rng(GetParam());
  unsigned Conclusive = 0;
  for (unsigned Iter = 0; Iter < 250; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    std::optional<bool> Truth = oracleDependent(P);
    if (!Truth)
      continue;
    ++Conclusive;
    CascadeResult R = testDependence(P);
    if (R.Answer == DepAnswer::Unknown)
      continue; // inexact fallback is allowed, never wrong
    EXPECT_EQ(R.Answer == DepAnswer::Dependent, *Truth)
        << "decided by " << testKindName(R.DecidedBy) << "\n" << P.str();
    if (R.Answer == DepAnswer::Dependent && R.Witness)
      EXPECT_TRUE(verifyWitness(P, *R.Witness)) << P.str();
  }
  EXPECT_GT(Conclusive, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadeOracleProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));
