//===- tests/deptest/MemoTest.cpp - Memoization tests ---------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Memo.h"

#include "testutil/Helpers.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <cstdio>
#include <thread>
#include <vector>

using namespace edda;
using namespace edda::testutil;

namespace {

DependenceProblem simpleProblem(int64_t Delta, int64_t Hi = 10) {
  return ProblemBuilder(1, 1, 1)
      .eq({1, -1}, Delta)
      .bounds(0, 1, Hi)
      .bounds(1, 1, Hi)
      .build();
}

/// The paper's section 5 motivating pair: the same inner dependence
/// under an unused outer loop whose bound differs.
DependenceProblem wrappedProblem(int64_t OuterHi) {
  return ProblemBuilder(2, 2, 2)
      .eq({0, 1, 0, -1}, -5)
      .bounds(0, 1, OuterHi)
      .bounds(1, 1, 10)
      .bounds(2, 1, OuterHi)
      .bounds(3, 1, 10)
      .build();
}

} // namespace

TEST(Memo, FullTableHitAndMiss) {
  DependenceCache Cache;
  DependenceProblem P = simpleProblem(3);
  EXPECT_FALSE(Cache.lookupFull(P).has_value());
  CascadeResult R = testDependence(P);
  Cache.insertFull(P, R);
  std::optional<CascadeResult> Hit = Cache.lookupFull(P);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Answer, R.Answer);
  EXPECT_EQ(Hit->DecidedBy, R.DecidedBy);
  EXPECT_EQ(Cache.fullQueries(), 2u);
  EXPECT_EQ(Cache.fullHits(), 1u);
  EXPECT_EQ(Cache.uniqueFull(), 1u);
}

TEST(Memo, DifferentProblemsMiss) {
  DependenceCache Cache;
  Cache.insertFull(simpleProblem(3), testDependence(simpleProblem(3)));
  EXPECT_FALSE(Cache.lookupFull(simpleProblem(4)).has_value());
  EXPECT_FALSE(Cache.lookupFull(simpleProblem(3, 20)).has_value());
}

TEST(Memo, GcdTableIgnoresBounds) {
  DependenceCache Cache;
  Cache.insertGcdSolvable(simpleProblem(3, 10), true);
  // Same equations, different bounds: still a hit.
  std::optional<bool> Hit = Cache.lookupGcdSolvable(simpleProblem(3, 99));
  ASSERT_TRUE(Hit.has_value());
  EXPECT_TRUE(*Hit);
}

TEST(Memo, ImprovedKeyMergesUnusedLoops) {
  MemoOptions Improved;
  Improved.ImprovedKey = true;
  DependenceCache Cache(Improved);
  Cache.insertFull(wrappedProblem(10),
                   testDependence(wrappedProblem(10)));
  // Different unused-loop bound: merged by the improved scheme.
  EXPECT_TRUE(Cache.lookupFull(wrappedProblem(50)).has_value());

  MemoOptions Simple;
  Simple.ImprovedKey = false;
  DependenceCache SimpleCache(Simple);
  SimpleCache.insertFull(wrappedProblem(10),
                         testDependence(wrappedProblem(10)));
  EXPECT_FALSE(SimpleCache.lookupFull(wrappedProblem(50)).has_value());
}

TEST(Memo, SymmetricKeyMergesSwappedPairs) {
  MemoOptions Opts;
  Opts.SymmetricKey = true;
  DependenceCache Cache(Opts);
  DependenceProblem P = simpleProblem(3);
  Cache.insertFull(P, testDependence(P));
  // a[i] vs a[i-3] is the same question as a[i-3] vs a[i].
  EXPECT_TRUE(Cache.lookupFull(P.swapped()).has_value());

  MemoOptions NoSym;
  DependenceCache Plain(NoSym);
  Plain.insertFull(P, testDependence(P));
  // The asymmetric layout of the swapped problem still collides here
  // because nA == nB and the improved key is identical; use distinct
  // nest depths to tell them apart.
  DependenceProblem Deep = ProblemBuilder(2, 1, 1)
                               .eq({1, 0, -1}, 3)
                               .bounds(0, 1, 10)
                               .bounds(1, 1, 5)
                               .bounds(2, 1, 10)
                               .build();
  Plain.insertFull(Deep, testDependence(Deep));
  EXPECT_FALSE(Plain.lookupFull(Deep.swapped()).has_value());
  DependenceCache Sym(Opts);
  Sym.insertFull(Deep, testDependence(Deep));
  EXPECT_TRUE(Sym.lookupFull(Deep.swapped()).has_value());
}

TEST(Memo, SymmetricDirectionsReversed) {
  MemoOptions Opts;
  Opts.SymmetricKey = true;
  Opts.ImprovedKey = false;
  DependenceCache Cache(Opts);
  // Asymmetric problem so the swapped key differs: a[i+1] vs a[i] in
  // nests of different depth.
  DependenceProblem P = ProblemBuilder(2, 1, 1)
                            .eq({1, 0, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 5)
                            .bounds(2, 1, 10)
                            .build();
  DirectionResult Dirs = computeDirectionVectors(P);
  Cache.insertDirections(P, Dirs);
  std::optional<DirectionResult> Swapped =
      Cache.lookupDirections(P.swapped());
  ASSERT_TRUE(Swapped.has_value());
  ASSERT_EQ(Swapped->Vectors.size(), Dirs.Vectors.size());
  // '<' components flip to '>' and distances negate.
  for (unsigned V = 0; V < Dirs.Vectors.size(); ++V) {
    for (unsigned K = 0; K < Dirs.Vectors[V].size(); ++K) {
      Dir D = Dirs.Vectors[V][K];
      Dir E = Swapped->Vectors[V][K];
      if (D == Dir::Less)
        EXPECT_EQ(E, Dir::Greater);
      else if (D == Dir::Greater)
        EXPECT_EQ(E, Dir::Less);
      else
        EXPECT_EQ(E, D);
    }
  }
  for (unsigned K = 0; K < Dirs.Distances.size(); ++K)
    if (Dirs.Distances[K])
      EXPECT_EQ(*Swapped->Distances[K], -*Dirs.Distances[K]);
}

TEST(Memo, DirectionsRoundTripThroughImprovedKey) {
  DependenceCache Cache; // improved by default
  DependenceProblem P = wrappedProblem(10);
  DirectionResult Dirs = computeDirectionVectors(P);
  Cache.insertDirections(P, Dirs);
  std::optional<DirectionResult> Hit = Cache.lookupDirections(P);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Vectors.size(), Dirs.Vectors.size());
  ASSERT_FALSE(Hit->Vectors.empty());
  // The unused outer loop reads back as '*'.
  EXPECT_EQ(Hit->Vectors[0][0], Dir::Any);
  // The wrapped sibling with a different outer bound also hits.
  std::optional<DirectionResult> Sibling =
      Cache.lookupDirections(wrappedProblem(77));
  ASSERT_TRUE(Sibling.has_value());
  EXPECT_EQ(Sibling->Vectors.size(), Dirs.Vectors.size());
}

TEST(Memo, ReverseDirectionsHelper) {
  DirectionResult R;
  R.Vectors = {{Dir::Less, Dir::Equal}, {Dir::Greater, Dir::Any}};
  R.Distances = {std::optional<int64_t>(3), std::nullopt};
  DirectionResult Rev = reverseDirections(R);
  EXPECT_EQ(Rev.Vectors[0], (DirVector{Dir::Greater, Dir::Equal}));
  EXPECT_EQ(Rev.Vectors[1], (DirVector{Dir::Less, Dir::Any}));
  EXPECT_EQ(*Rev.Distances[0], -3);
  EXPECT_FALSE(Rev.Distances[1].has_value());
}

TEST(Memo, SwapWitnessLayout) {
  std::vector<int64_t> X = {1, 2, 3, 4, 5}; // A = {1,2}, B = {3}, sym {4,5}
  std::vector<int64_t> Swapped = swapWitness(X, 2, 1);
  EXPECT_EQ(Swapped, (std::vector<int64_t>{3, 1, 2, 4, 5}));
}

TEST(Memo, EquationOrderCanonicalization) {
  // a[i][j] vs a[i+1][j+2] and the dimension-swapped a[j][i] vs
  // a[j+2][i+1] pose the same equations in a different order; the
  // paper's "taken farther" extension merges them.
  DependenceProblem P1 = ProblemBuilder(2, 2, 2)
                             .eq({1, 0, -1, 0}, 1)
                             .eq({0, 1, 0, -1}, 2)
                             .bounds(0, 1, 10)
                             .bounds(1, 1, 10)
                             .bounds(2, 1, 10)
                             .bounds(3, 1, 10)
                             .build();
  DependenceProblem P2 = P1;
  std::swap(P2.Equations[0], P2.Equations[1]);

  DependenceCache Plain;
  Plain.insertFull(P1, testDependence(P1));
  EXPECT_FALSE(Plain.lookupFull(P2).has_value());

  MemoOptions Opts;
  Opts.CanonicalizeEquations = true;
  DependenceCache Canonical(Opts);
  Canonical.insertFull(P1, testDependence(P1));
  std::optional<CascadeResult> Hit = Canonical.lookupFull(P2);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Answer, testDependence(P2).Answer);
}

TEST(Memo, CanonicalizationPropertyOnRandomPermutations) {
  // Shuffling a problem's equations never changes the canonical key or
  // the cached answer.
  MemoOptions Opts;
  Opts.CanonicalizeEquations = true;
  SplitRng Rng(777);
  for (unsigned Iter = 0; Iter < 60; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    if (P.Equations.size() < 2)
      continue;
    DependenceCache Cache(Opts);
    CascadeResult Fresh = testDependence(P);
    Cache.insertFull(P, Fresh);
    DependenceProblem Shuffled = P;
    // Rotate the equations (a nontrivial permutation).
    std::rotate(Shuffled.Equations.begin(),
                Shuffled.Equations.begin() + 1,
                Shuffled.Equations.end());
    std::optional<CascadeResult> Hit = Cache.lookupFull(Shuffled);
    ASSERT_TRUE(Hit.has_value()) << P.str();
    EXPECT_EQ(Hit->Answer, Fresh.Answer);
    // And the permuted problem genuinely has that answer.
    EXPECT_EQ(testDependence(Shuffled).Answer, Fresh.Answer);
  }
}

TEST(Memo, CanonicalizationComposesWithSymmetry) {
  MemoOptions Opts;
  Opts.CanonicalizeEquations = true;
  Opts.SymmetricKey = true;
  DependenceCache Cache(Opts);
  DependenceProblem P = ProblemBuilder(2, 1, 1)
                            .eq({1, 0, -1}, 3)
                            .eq({0, 1, 0}, -2)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 5)
                            .bounds(2, 1, 10)
                            .build();
  Cache.insertFull(P, testDependence(P));
  DependenceProblem Swapped = P.swapped();
  std::swap(Swapped.Equations[0], Swapped.Equations[1]);
  EXPECT_TRUE(Cache.lookupFull(Swapped).has_value());
}

TEST(Memo, PaperLiteralHashStillCorrect) {
  MemoOptions Opts;
  Opts.Hash = MemoHashKind::PaperLiteral;
  DependenceCache Cache(Opts);
  for (int64_t D = 0; D < 50; ++D)
    Cache.insertFull(simpleProblem(D), testDependence(simpleProblem(D)));
  EXPECT_EQ(Cache.uniqueFull(), 50u);
  for (int64_t D = 0; D < 50; ++D)
    EXPECT_TRUE(Cache.lookupFull(simpleProblem(D)).has_value());
}

TEST(Memo, PersistenceRoundTrip) {
  std::string Path = ::testing::TempDir() + "/edda_cache_test.txt";
  {
    DependenceCache Cache;
    Cache.insertFull(simpleProblem(3), testDependence(simpleProblem(3)));
    Cache.insertFull(simpleProblem(99),
                     testDependence(simpleProblem(99)));
    Cache.insertGcdSolvable(simpleProblem(4), true);
    Cache.insertDirections(simpleProblem(1),
                           computeDirectionVectors(simpleProblem(1)));
    ASSERT_TRUE(Cache.saveToFile(Path));
  }
  DependenceCache Loaded;
  ASSERT_TRUE(Loaded.loadFromFile(Path));
  EXPECT_EQ(Loaded.uniqueFull(), 2u);
  std::optional<CascadeResult> Hit = Loaded.lookupFull(simpleProblem(3));
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Answer, DepAnswer::Dependent);
  std::optional<DirectionResult> Dirs =
      Loaded.lookupDirections(simpleProblem(1));
  ASSERT_TRUE(Dirs.has_value());
  ASSERT_EQ(Dirs->Vectors.size(), 1u);
  EXPECT_EQ(Dirs->Vectors[0], (DirVector{Dir::Less}));
  // Distances survive persistence too.
  ASSERT_EQ(Dirs->Distances.size(), 1u);
  ASSERT_TRUE(Dirs->Distances[0].has_value());
  EXPECT_EQ(*Dirs->Distances[0], 1);
  std::remove(Path.c_str());
}

TEST(Memo, DirectionsRoundTripWidenedBits) {
  // 3i - 7i' + 1 = 0 over near-full int64 ranges widens every query;
  // the v5 format must persist both direction widening bits, not
  // default them to false on reload.
  DependenceProblem Wide = ProblemBuilder(1, 1, 1)
                               .eq({3, -7}, 1)
                               .bounds(0, INT64_MIN + 2, INT64_MAX - 2)
                               .bounds(1, INT64_MIN + 2, INT64_MAX - 2)
                               .build();
  DependenceProblem Narrow = simpleProblem(1);
  DirectionResult WideDirs = computeDirectionVectors(Wide);
  ASSERT_TRUE(WideDirs.Widened);
  ASSERT_TRUE(WideDirs.RootWidened);
  DependenceCache Before;
  Before.insertDirections(Wide, WideDirs);
  Before.insertDirections(Narrow, computeDirectionVectors(Narrow));

  std::string Path = ::testing::TempDir() + "/edda_cache_widen_dirs.txt";
  ASSERT_TRUE(Before.saveToFile(Path));
  DependenceCache After;
  ASSERT_TRUE(After.loadFromFile(Path));
  std::remove(Path.c_str());

  std::optional<DirectionResult> W = After.lookupDirections(Wide);
  ASSERT_TRUE(W.has_value());
  EXPECT_TRUE(W->Widened);
  EXPECT_TRUE(W->RootWidened);
  EXPECT_EQ(W->Exact, WideDirs.Exact);
  std::optional<DirectionResult> N = After.lookupDirections(Narrow);
  ASSERT_TRUE(N.has_value());
  EXPECT_FALSE(N->Widened);
  EXPECT_FALSE(N->RootWidened);
}

TEST(Memo, LoadRejectsGarbage) {
  std::string Path = ::testing::TempDir() + "/edda_cache_garbage.txt";
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("not a cache file\n", F);
    std::fclose(F);
  }
  DependenceCache Cache;
  EXPECT_FALSE(Cache.loadFromFile(Path));
  EXPECT_FALSE(Cache.loadFromFile(Path + ".does-not-exist"));
  std::remove(Path.c_str());
}

TEST(Memo, ClearResets) {
  DependenceCache Cache;
  Cache.insertFull(simpleProblem(3), testDependence(simpleProblem(3)));
  Cache.clear();
  EXPECT_EQ(Cache.uniqueFull(), 0u);
  EXPECT_FALSE(Cache.lookupFull(simpleProblem(3)).has_value());
}

TEST(Memo, EvictOldestKeepsRecentlyUsed) {
  MemoOptions Opts;
  Opts.TrackRecency = true;
  DependenceCache Cache(Opts);
  for (int64_t Delta = 0; Delta < 8; ++Delta)
    Cache.insertFull(simpleProblem(Delta),
                     testDependence(simpleProblem(Delta)));
  // Touch two entries so they are the most recently used.
  ASSERT_TRUE(Cache.lookupFull(simpleProblem(1)).has_value());
  ASSERT_TRUE(Cache.lookupFull(simpleProblem(6)).has_value());

  EXPECT_EQ(Cache.evictOldest(2), 6u);
  EXPECT_EQ(Cache.uniqueFull(), 2u);
  EXPECT_TRUE(Cache.lookupFull(simpleProblem(1)).has_value());
  EXPECT_TRUE(Cache.lookupFull(simpleProblem(6)).has_value());
  EXPECT_FALSE(Cache.lookupFull(simpleProblem(0)).has_value());
}

TEST(Memo, CheckpointWhileInsertersRace) {
  // The serving checkpoint path: saveToFile() runs while analyzer
  // threads are still inserting. Every snapshot must load cleanly,
  // and a reloaded store must answer exactly like recomputation —
  // the warm-restart "reanalyze bit-identical" guarantee.
  std::string Path = ::testing::TempDir() + "/edda_cache_race.txt";
  MemoOptions Opts;
  Opts.TrackRecency = true; // The serving configuration.
  DependenceCache Cache(Opts);

  constexpr int64_t PerThread = 40;
  constexpr unsigned Writers = 4;
  std::atomic<unsigned> DoneWriters{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Writers; ++T)
    Threads.emplace_back([&, T] {
      for (int64_t I = 0; I < PerThread; ++I) {
        // Overlapping ranges across threads race on identical keys;
        // first-insert-wins must keep the stored answer identical to
        // recomputation either way.
        int64_t Delta = (T * PerThread) / 2 + I;
        DependenceProblem P = simpleProblem(Delta);
        Cache.insertFull(P, testDependence(P));
        Cache.insertDirections(P, computeDirectionVectors(P));
      }
      DoneWriters.fetch_add(1);
    });
  // Checkpoint continuously until every writer has finished, then
  // once more so the final file holds the complete store.
  unsigned Snapshots = 0;
  do {
    ASSERT_TRUE(Cache.saveToFile(Path));
    ++Snapshots;
  } while (DoneWriters.load() < Writers);
  for (std::thread &T : Threads)
    T.join();
  ASSERT_TRUE(Cache.saveToFile(Path));
  EXPECT_GE(Snapshots, 1u);

  DependenceCache Loaded(Opts);
  ASSERT_TRUE(Loaded.loadFromFile(Path));
  EXPECT_EQ(Loaded.uniqueFull(), Cache.uniqueFull());
  const int64_t MaxDelta = (Writers - 1) * PerThread / 2 + PerThread;
  for (int64_t Delta = 0; Delta < MaxDelta; ++Delta) {
    DependenceProblem P = simpleProblem(Delta);
    std::optional<CascadeResult> Hit = Loaded.lookupFull(P);
    ASSERT_TRUE(Hit.has_value()) << "delta " << Delta;
    CascadeResult Want = testDependence(P);
    EXPECT_EQ(Hit->Answer, Want.Answer) << "delta " << Delta;
    EXPECT_EQ(Hit->DecidedBy, Want.DecidedBy) << "delta " << Delta;
    EXPECT_EQ(Hit->Exact, Want.Exact) << "delta " << Delta;
    std::optional<DirectionResult> Dirs = Loaded.lookupDirections(P);
    ASSERT_TRUE(Dirs.has_value()) << "delta " << Delta;
    DirectionResult WantDirs = computeDirectionVectors(P);
    EXPECT_EQ(Dirs->Vectors, WantDirs.Vectors) << "delta " << Delta;
    EXPECT_EQ(Dirs->Distances, WantDirs.Distances) << "delta " << Delta;
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Fingerprint tags and format-v6 behaviour (incremental re-analysis).
//===----------------------------------------------------------------------===//

TEST(Memo, InvalidateFingerprintsRemovesOnlyTaggedEntries) {
  DependenceCache Cache;
  DependenceProblem A = simpleProblem(3), B = simpleProblem(99);
  Cache.insertFull(A, testDependence(A), /*Tag=*/11);
  Cache.insertFull(B, testDependence(B), /*Tag=*/22);
  Cache.insertDirections(A, computeDirectionVectors(A), /*Tag=*/11);

  EXPECT_EQ(Cache.invalidateFingerprints({11}), 2u);
  EXPECT_FALSE(Cache.lookupFull(A).has_value());
  EXPECT_FALSE(Cache.lookupDirections(A).has_value());
  EXPECT_TRUE(Cache.lookupFull(B).has_value());
  // A second pass finds nothing left to drop.
  EXPECT_EQ(Cache.invalidateFingerprints({11}), 0u);
}

TEST(Memo, UntaggedEntriesSurviveInvalidation) {
  DependenceCache Cache;
  DependenceProblem P = simpleProblem(3);
  Cache.insertFull(P, testDependence(P)); // Tag defaults to 0 = none.
  EXPECT_EQ(Cache.invalidateFingerprints({1, 2, 3}), 0u);
  EXPECT_TRUE(Cache.lookupFull(P).has_value());
}

TEST(Memo, SharedKeyKeepsFirstTagAndOnlyReMissesOnInvalidation) {
  // Same statement under different unused-loop bounds: both problems
  // canonicalize to one memo key, so the key carries the first
  // inserter's tag. Invalidating the *other* program's tag must not
  // remove it; invalidating the first tag removes the shared entry,
  // which costs the survivor one re-miss but never a wrong answer.
  DependenceCache Cache;
  DependenceProblem P5 = wrappedProblem(5), P7 = wrappedProblem(7);
  Cache.insertFull(P5, testDependence(P5), /*Tag=*/1);
  Cache.insertFull(P7, testDependence(P7), /*Tag=*/2); // First wins.
  ASSERT_EQ(Cache.uniqueFull(), 1u);

  EXPECT_EQ(Cache.invalidateFingerprints({2}), 0u);
  EXPECT_TRUE(Cache.lookupFull(P7).has_value());

  EXPECT_EQ(Cache.invalidateFingerprints({1}), 1u);
  EXPECT_FALSE(Cache.lookupFull(P5).has_value());
  EXPECT_FALSE(Cache.lookupFull(P7).has_value());
  // Re-inserting after the miss restores service for both.
  Cache.insertFull(P7, testDependence(P7), /*Tag=*/2);
  EXPECT_TRUE(Cache.lookupFull(P5).has_value());
}

TEST(Memo, DirectionCountersTrackQueriesAndHits) {
  DependenceCache Cache;
  DependenceProblem P = simpleProblem(1);
  EXPECT_FALSE(Cache.lookupDirections(P).has_value());
  Cache.insertDirections(P, computeDirectionVectors(P));
  EXPECT_TRUE(Cache.lookupDirections(P).has_value());
  EXPECT_EQ(Cache.dirQueries(), 2u);
  EXPECT_EQ(Cache.dirHits(), 1u);
  Cache.clear();
  EXPECT_EQ(Cache.dirQueries(), 0u);
  EXPECT_EQ(Cache.dirHits(), 0u);
}

TEST(Memo, TagsSurvivePersistence) {
  std::string Path = ::testing::TempDir() + "/edda_cache_tags.txt";
  {
    DependenceCache Cache;
    Cache.insertFull(simpleProblem(3), testDependence(simpleProblem(3)),
                     /*Tag=*/77);
    Cache.insertDirections(simpleProblem(1),
                           computeDirectionVectors(simpleProblem(1)),
                           /*Tag=*/77);
    Cache.insertFull(simpleProblem(99),
                     testDependence(simpleProblem(99)), /*Tag=*/88);
    ASSERT_TRUE(Cache.saveToFile(Path));
  }
  DependenceCache Loaded;
  ASSERT_TRUE(Loaded.loadFromFile(Path));
  // The reloaded entries still answer, and still invalidate by tag —
  // a warm-started edit session can drop its dead keys.
  EXPECT_TRUE(Loaded.lookupFull(simpleProblem(3)).has_value());
  EXPECT_EQ(Loaded.invalidateFingerprints({77}), 2u);
  EXPECT_FALSE(Loaded.lookupFull(simpleProblem(3)).has_value());
  EXPECT_FALSE(Loaded.lookupDirections(simpleProblem(1)).has_value());
  EXPECT_TRUE(Loaded.lookupFull(simpleProblem(99)).has_value());
  std::remove(Path.c_str());
}

namespace {

/// A hand-written cache file in the superseded v5 format: two full
/// entries, one direction entry (one vector, one pinned distance),
/// three GCD entries (counted but never parsed past the count).
const char *v5CacheFile() {
  return "edda-depcache 5\n"
         "2\n"
         "3 1 2 3\n"
         "1 5 1 0\n"
         "3 4 5 6\n"
         "0 7 1 0\n"
         "1\n"
         "2 9 9\n"
         "1 5 1 0 0 1 1\n"
         "1 0\n"
         "d 1\n"
         "3\n";
}

} // namespace

TEST(Memo, V5FileRejectedWithEntryCountsReported) {
  std::string Path = ::testing::TempDir() + "/edda_cache_v5.txt";
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs(v5CacheFile(), F);
    std::fclose(F);
  }
  DependenceCache Cache;
  CacheLoadStats LS;
  EXPECT_FALSE(Cache.loadFromFile(Path, &LS));
  EXPECT_EQ(LS.FileVersion, 5);
  EXPECT_EQ(LS.RejectedEntries, 6u); // 2 full + 1 dir + 3 gcd.
  EXPECT_EQ(LS.LoadedEntries, 0u);
  // Rejection leaves the cache cold, not half-loaded.
  EXPECT_EQ(Cache.uniqueFull(), 0u);
  EXPECT_EQ(Cache.uniqueDirections(), 0u);
  std::remove(Path.c_str());
}

TEST(Memo, V6RoundTripReportsLoadStats) {
  std::string Path = ::testing::TempDir() + "/edda_cache_v6_stats.txt";
  {
    DependenceCache Cache;
    Cache.insertFull(simpleProblem(3), testDependence(simpleProblem(3)));
    Cache.insertDirections(simpleProblem(1),
                           computeDirectionVectors(simpleProblem(1)));
    ASSERT_TRUE(Cache.saveToFile(Path));
  }
  DependenceCache Loaded;
  CacheLoadStats LS;
  ASSERT_TRUE(Loaded.loadFromFile(Path, &LS));
  EXPECT_EQ(LS.FileVersion, 6);
  EXPECT_EQ(LS.RejectedEntries, 0u);
  EXPECT_GE(LS.LoadedEntries, 2u);
  std::remove(Path.c_str());
}
