//===- tests/deptest/SvpcTest.cpp - SVPC unit tests -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Svpc.h"

#include "gtest/gtest.h"

using namespace edda;

namespace {

LinearSystem makeSystem(unsigned NumVars,
                        std::vector<LinearConstraint> Cs) {
  LinearSystem S(NumVars);
  for (LinearConstraint &C : Cs)
    S.add(std::move(C));
  return S;
}

} // namespace

TEST(Svpc, EmptySystemIsDependent) {
  SvpcResult R = runSvpc(LinearSystem(2));
  EXPECT_EQ(R.St, SvpcResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  EXPECT_EQ(R.Sample->size(), 2u);
}

TEST(Svpc, IntervalIntersection) {
  // 1 <= t <= 10 and t <= 5: feasible.
  LinearSystem S = makeSystem(
      1, {{{ -1 }, -1}, {{1}, 10}, {{1}, 5}});
  SvpcResult R = runSvpc(S);
  EXPECT_EQ(R.St, SvpcResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  EXPECT_TRUE(S.satisfiedBy(*R.Sample));
}

TEST(Svpc, Contradiction) {
  // t >= 11 and t <= 10.
  LinearSystem S = makeSystem(1, {{{-1}, -11}, {{1}, 10}});
  EXPECT_EQ(runSvpc(S).St, SvpcResult::Status::Independent);
}

TEST(Svpc, CoefficientRounding) {
  // 2t <= 5 -> t <= 2; -3t <= -7 -> t >= ceil(7/3) = 3. Contradiction.
  LinearSystem S = makeSystem(1, {{{2}, 5}, {{-3}, -7}});
  EXPECT_EQ(runSvpc(S).St, SvpcResult::Status::Independent);
  // Whereas real-valued reasoning would accept t = 2.4.
  LinearSystem Looser = makeSystem(1, {{{2}, 5}, {{-3}, -6}});
  EXPECT_EQ(runSvpc(Looser).St, SvpcResult::Status::Dependent);
}

TEST(Svpc, ConstantFalseConstraint) {
  LinearSystem S = makeSystem(2, {{{0, 0}, -1}});
  EXPECT_EQ(runSvpc(S).St, SvpcResult::Status::Independent);
}

TEST(Svpc, ConstantTrueConstraintIgnored) {
  LinearSystem S = makeSystem(2, {{{0, 0}, 3}});
  EXPECT_EQ(runSvpc(S).St, SvpcResult::Status::Dependent);
}

TEST(Svpc, MultiVarPassedThrough) {
  LinearSystem S = makeSystem(2, {{{1, 0}, 5}, {{1, 1}, 3}});
  SvpcResult R = runSvpc(S);
  EXPECT_EQ(R.St, SvpcResult::Status::NeedsMore);
  ASSERT_EQ(R.MultiVar.size(), 1u);
  EXPECT_EQ(R.MultiVar[0].Coeffs, (std::vector<int64_t>{1, 1}));
  ASSERT_TRUE(R.Intervals.Hi[0].has_value());
  EXPECT_EQ(*R.Intervals.Hi[0], 5);
}

TEST(Svpc, PaperWorkedExample) {
  // Paper section 3.2: after GCD, constraints over (t1, t2):
  //   1 <= t1 <= 10, 1 <= t2 <= 10, 1 <= t2+9 <= 10, 1 <= t1-10 <= 10.
  LinearSystem S = makeSystem(
      2, {
             {{-1, 0}, -1},  // t1 >= 1
             {{1, 0}, 10},   // t1 <= 10
             {{0, -1}, -1},  // t2 >= 1
             {{0, 1}, 10},   // t2 <= 10
             {{0, -1}, 8},   // t2 + 9 >= 1  ->  -t2 <= 8
             {{0, 1}, 1},    // t2 + 9 <= 10 ->  t2 <= 1
             {{-1, 0}, -11}, // t1 - 10 >= 1 ->  t1 >= 11
             {{1, 0}, 20},   // t1 - 10 <= 10
         });
  // Lower bound of t1 (11) exceeds its upper bound (10): independent.
  EXPECT_EQ(runSvpc(S).St, SvpcResult::Status::Independent);
}

TEST(Svpc, SampleRespectsOneSidedIntervals) {
  // t0 >= 7 only; t1 <= -2 only.
  LinearSystem S = makeSystem(2, {{{-1, 0}, -7}, {{0, 1}, -2}});
  SvpcResult R = runSvpc(S);
  ASSERT_EQ(R.St, SvpcResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  EXPECT_GE((*R.Sample)[0], 7);
  EXPECT_LE((*R.Sample)[1], -2);
}

TEST(VarIntervals, TightenAndContradict) {
  VarIntervals V(1);
  V.tightenLo(0, 3);
  V.tightenLo(0, 1); // weaker, ignored
  V.tightenHi(0, 5);
  EXPECT_EQ(*V.Lo[0], 3);
  EXPECT_EQ(*V.Hi[0], 5);
  EXPECT_FALSE(V.contradictory());
  V.tightenHi(0, 2);
  EXPECT_TRUE(V.contradictory());
}
