//===- tests/deptest/DirectionTest.cpp - Direction vector tests -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Direction.h"

#include "testutil/Helpers.h"
#include "oracle/Oracle.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <climits>
#include <set>

using namespace edda;
using namespace edda::testutil;
using namespace edda::oracle;

namespace {

std::set<DirVector> asSet(const std::vector<DirVector> &Vs) {
  return std::set<DirVector>(Vs.begin(), Vs.end());
}

} // namespace

TEST(DirVectorStr, Rendering) {
  EXPECT_EQ(dirVectorStr({Dir::Less, Dir::Equal, Dir::Any}), "(<, =, *)");
  EXPECT_EQ(dirVectorStr({Dir::Greater}), "(>)");
  EXPECT_EQ(dirVectorStr({}), "()");
}

TEST(Direction, ForwardCarriedDependence) {
  // a[i+1] = a[i]: dependence with i < i', distance 1.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 1) // (i+1) - i' == 0
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Dependent);
  EXPECT_TRUE(R.Exact);
  EXPECT_EQ(asSet(R.Vectors), asSet({{Dir::Less}}));
  ASSERT_EQ(R.Distances.size(), 1u);
  ASSERT_TRUE(R.Distances[0].has_value());
  EXPECT_EQ(*R.Distances[0], 1);
}

TEST(Direction, LoopIndependentOnly) {
  // a[i] = a[i]: only '='.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(asSet(R.Vectors), asSet({{Dir::Equal}}));
  ASSERT_TRUE(R.Distances[0].has_value());
  EXPECT_EQ(*R.Distances[0], 0);
}

TEST(Direction, PaperTwoVectorExample) {
  // Paper section 6: a[i][j] = a[2i][j] over 0..10 squared is
  // dependent with (<, =) and (=, *)... the text reports (<, =) and
  // (=, *) for the pair; enumeration gives i' such that i = 2i', so
  // i = i' = 0 (equal) or i > i' (e.g. i=2, i'=1). Outer directions
  // are thus '=' and '>', inner '='. With distance pruning the inner
  // '=' is forced.
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({1, 0, -2, 0}, 0) // i - 2i' == 0
                            .eq({0, 1, 0, -1}, 0) // j - j' == 0
                            .bounds(0, 0, 10)
                            .bounds(1, 0, 10)
                            .bounds(2, 0, 10)
                            .bounds(3, 0, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  std::optional<std::set<DirVector>> Truth = oracleDirections(P);
  ASSERT_TRUE(Truth.has_value());
  // Reported vectors (with wildcards) must cover exactly the realized
  // sign patterns.
  for (const DirVector &Real : *Truth) {
    bool Covered = false;
    for (const DirVector &Reported : R.Vectors)
      Covered = Covered || dirMatches(Reported, Real);
    EXPECT_TRUE(Covered) << dirVectorStr(Real);
  }
  for (const DirVector &Reported : R.Vectors) {
    if (std::find(Reported.begin(), Reported.end(), Dir::Any) !=
        Reported.end())
      continue;
    EXPECT_TRUE(Truth->count(Reported)) << dirVectorStr(Reported);
  }
}

TEST(Direction, UnusedLoopGetsStar) {
  // for i, for j: a[j+1] = a[j]: i is unused, direction (*, <).
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({0, 1, 0, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  DirectionOptions Opts;
  Opts.EliminateUnusedVars = true;
  DirectionResult R = computeDirectionVectors(P, Opts);
  EXPECT_EQ(asSet(R.Vectors), asSet({{Dir::Any, Dir::Less}}));
}

TEST(Direction, UnusedLoopEnumeratedWithoutElimination) {
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({0, 1, 0, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  DirectionOptions Opts;
  Opts.EliminateUnusedVars = false;
  Opts.DistanceVectorPruning = false;
  DirectionResult R = computeDirectionVectors(P, Opts);
  // All three outer directions are realizable.
  EXPECT_EQ(asSet(R.Vectors),
            asSet({{Dir::Less, Dir::Less},
                   {Dir::Equal, Dir::Less},
                   {Dir::Greater, Dir::Less}}));
  // And it cost strictly more tests than the pruned run.
  DirectionOptions Pruned;
  DirectionResult R2 = computeDirectionVectors(P, Pruned);
  EXPECT_GT(R.TestsRun, R2.TestsRun);
}

TEST(Direction, DistancePruningSkipsTests) {
  // Constant distance 3: direction forced to '<' without testing.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 3)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionOptions NoPrune;
  NoPrune.DistanceVectorPruning = false;
  DirectionOptions Prune;
  DirectionResult R1 = computeDirectionVectors(P, NoPrune);
  DirectionResult R2 = computeDirectionVectors(P, Prune);
  EXPECT_EQ(asSet(R1.Vectors), asSet(R2.Vectors));
  EXPECT_LT(R2.TestsRun, R1.TestsRun);
  ASSERT_TRUE(R2.Distances[0].has_value());
  EXPECT_EQ(*R2.Distances[0], 3);
}

TEST(Direction, IndependentRootShortCircuits) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({2, -2}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Independent);
  EXPECT_TRUE(R.Vectors.empty());
  EXPECT_EQ(R.TestsRun, 1u);
}

TEST(Direction, TriangularNest) {
  // for i = 1..6, j = 1..i: a[i][j] = a[i-1][j]: carried by i with
  // distance 1, j equal.
  DependenceProblem P =
      ProblemBuilder(2, 2, 2)
          .eq({1, 0, -1, 0}, 1)  // (i... write a[i-1]? source: write
                                 // a[i][j], read a[i-1][j]: i - (i'-1)
          .eq({0, 1, 0, -1}, 0)
          .bounds(0, 1, 6)
          .bounds(2, 1, 6)
          .loBound(1, {0, 0, 0, 0}, 1)
          .hiBound(1, {1, 0, 0, 0}, 0)
          .loBound(3, {0, 0, 0, 0}, 1)
          .hiBound(3, {0, 0, 1, 0}, 0)
          .build();
  DirectionResult R = computeDirectionVectors(P);
  std::optional<std::set<DirVector>> Truth = oracleDirections(P);
  ASSERT_TRUE(Truth.has_value());
  for (const DirVector &Real : *Truth) {
    bool Covered = false;
    for (const DirVector &Reported : R.Vectors)
      Covered = Covered || dirMatches(Reported, Real);
    EXPECT_TRUE(Covered) << dirVectorStr(Real);
  }
}

TEST(Direction, SeparableMatchesGeneral) {
  // Rectangular, per-dimension-decoupled problem: the Burke-Cytron
  // separable path must agree with full hierarchical refinement.
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({1, 0, -1, 0}, 1)
                            .eq({0, 1, 0, -1}, -2)
                            .bounds(0, 1, 8)
                            .bounds(1, 1, 8)
                            .bounds(2, 1, 8)
                            .bounds(3, 1, 8)
                            .build();
  DirectionOptions General;
  General.SeparableDimensions = false;
  DirectionOptions Separable;
  Separable.SeparableDimensions = true;
  DirectionResult R1 = computeDirectionVectors(P, General);
  DirectionResult R2 = computeDirectionVectors(P, Separable);
  EXPECT_EQ(asSet(R1.Vectors), asSet(R2.Vectors));
  EXPECT_EQ(R1.RootAnswer, R2.RootAnswer);
}

TEST(Direction, EmptyCommonNest) {
  // Disjoint nests: dependence is just overlap, the vector is empty.
  DependenceProblem P = ProblemBuilder(1, 1, 0)
                            .eq({1, -1}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 5, 15)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Dependent);
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_TRUE(R.Vectors[0].empty());
}

TEST(Direction, WidenedPropagatesThroughHierarchy) {
  // 3i - 7i' + 1 = 0 over near-full int64 ranges: every 64-bit path
  // poisons, so the root query climbs the widening ladder — and the
  // result must say so, with the same stats provenance a plain
  // testDependence records.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({3, -7}, 1)
                            .bounds(0, INT64_MIN + 2, INT64_MAX - 2)
                            .bounds(1, INT64_MIN + 2, INT64_MAX - 2)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Dependent);
  EXPECT_TRUE(R.Widened);
  EXPECT_TRUE(R.RootWidened);
  EXPECT_GE(R.TestStats.WidenedQueries, 1u);

  // RootWidened implies Widened by construction.
  EXPECT_TRUE(!R.RootWidened || R.Widened);

  // --no-widen reproduces the historical 64-bit-only behavior.
  DirectionOptions NoWiden;
  NoWiden.Cascade.Widen = false;
  DirectionResult RN = computeDirectionVectors(P, NoWiden);
  EXPECT_EQ(RN.RootAnswer, DepAnswer::Unknown);
  EXPECT_FALSE(RN.Widened);
  EXPECT_FALSE(RN.RootWidened);

  // The separable path never runs a root query, so RootWidened stays
  // false there even when per-dimension tests widen.
  DirectionOptions Sep;
  Sep.SeparableDimensions = true;
  DirectionResult RS = computeDirectionVectors(P, Sep);
  EXPECT_FALSE(RS.RootWidened);
  EXPECT_TRUE(RS.Widened);
}

TEST(Direction, WidenedStaysFalseOnNarrowProblems) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_FALSE(R.Widened);
  EXPECT_FALSE(R.RootWidened);
  EXPECT_EQ(R.TestStats.WidenedQueries, 0u);
}

TEST(Direction, SymbolicDistanceStaysUnpinned) {
  // i' - i - n == 0: the distance IS the symbolic n, so GCD pruning
  // must not pin it to a constant, and all three directions remain
  // (pinned in tests/inputs/corpus/dirs_symbolic_distance.dep).
  DependenceProblem P = ProblemBuilder(1, 1, 1, 1)
                            .eq({-1, 1, -1}, 0)
                            .bounds(0, 0, 9)
                            .bounds(1, 0, 9)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Dependent);
  ASSERT_EQ(R.Distances.size(), 1u);
  EXPECT_FALSE(R.Distances[0].has_value());
  EXPECT_EQ(asSet(R.Vectors),
            asSet({{Dir::Less}, {Dir::Equal}, {Dir::Greater}}));
}

TEST(Direction, SeparableUnknownDimDoesNotFabricateDependence) {
  // Two ~2^44-coefficient equations on the single pair: SVPC needs a
  // single equation, and 64-bit elimination overflows, so with the
  // widening ladder off every per-dimension query is Unknown. The
  // separable path must then report an Unknown root — it used to claim
  // Dependent for any dimension it could not refute.
  const int64_t Huge = int64_t(1) << 44;
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({Huge + 1, -Huge}, 3)
                            .eq({Huge - 1, -(Huge + 2)}, 5)
                            .bounds(0, -Huge, Huge)
                            .bounds(1, -Huge, Huge)
                            .build();
  DirectionOptions Sep;
  Sep.SeparableDimensions = true;
  Sep.Cascade.Widen = false;
  DirectionResult R = computeDirectionVectors(P, Sep);
  EXPECT_NE(R.RootAnswer, DepAnswer::Dependent);
  EXPECT_FALSE(R.Exact);
}

TEST(Direction, RefineBudgetBailsOutConservatively) {
  // A coupled two-loop problem the cascade can only decide with
  // Fourier-Motzkin: 2i + 3j - 2i' - 3j' == 1 over [0,9]^4. With the
  // refinement work budget floored at one combine, the root query
  // alone exhausts it and the hierarchy must fall back to the single
  // all-'*' vector, inexact — never an unsound Independent or a
  // fabricated vector set.
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({2, 3, -2, -3}, -1)
                            .bounds(0, 0, 9)
                            .bounds(1, 0, 9)
                            .bounds(2, 0, 9)
                            .bounds(3, 0, 9)
                            .build();
  DirectionResult Full = computeDirectionVectors(P);
  ASSERT_EQ(Full.RootAnswer, DepAnswer::Dependent);
  EXPECT_TRUE(Full.Exact);
  EXPECT_GT(Full.TestStats.FmWork, 0u);

  DirectionOptions Tight;
  Tight.MaxRefineFmWork = 1;
  DirectionResult R = computeDirectionVectors(P, Tight);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Dependent);
  EXPECT_FALSE(R.Exact);
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0], (DirVector{Dir::Any, Dir::Any}));
  // Every vector the full refinement proved is covered by the bail-out
  // summary, and the budget-limited run did strictly less work.
  EXPECT_LT(R.TestStats.FmWork, Full.TestStats.FmWork);
  EXPECT_LT(R.TestsRun, Full.TestsRun);
}

//===----------------------------------------------------------------------===//
// Property: the separable per-dimension path agrees with full
// hierarchical refinement on separable problems.
//===----------------------------------------------------------------------===//

namespace {

/// Random separable problem: one equation per common dimension touching
/// only that dimension's pair, constant bounds, no extra loops — the
/// shape Burke and Cytron's per-dimension scheme is defined on.
DependenceProblem randomSeparableProblem(SplitRng &Rng) {
  unsigned Common = 1 + Rng.next() % 3;
  ProblemBuilder B(Common, Common, Common);
  auto Coeff = [&Rng]() {
    int64_t C = 1 + Rng.next() % 3;
    return Rng.next() % 2 ? C : -C;
  };
  for (unsigned K = 0; K < Common; ++K) {
    std::vector<int64_t> Coeffs(2 * Common, 0);
    Coeffs[K] = Coeff();
    Coeffs[Common + K] = Coeff();
    B.eq(std::move(Coeffs), int64_t(Rng.next() % 9) - 4);
  }
  for (unsigned V = 0; V < 2 * Common; ++V) {
    int64_t Lo = int64_t(Rng.next() % 9) - 4;
    B.bounds(V, Lo, Lo + Rng.next() % 9);
  }
  return B.build();
}

} // namespace

class SeparableAgreementProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeparableAgreementProperty, MatchesGeneralRefinement) {
  SplitRng Rng(GetParam());
  for (unsigned Iter = 0; Iter < 150; ++Iter) {
    DependenceProblem P = randomSeparableProblem(Rng);
    DirectionOptions General;
    General.SeparableDimensions = false;
    DirectionOptions Sep;
    Sep.SeparableDimensions = true;
    DirectionResult R1 = computeDirectionVectors(P, General);
    DirectionResult R2 = computeDirectionVectors(P, Sep);
    if (R1.Exact && R2.Exact) {
      EXPECT_EQ(R1.RootAnswer, R2.RootAnswer) << P.str();
      EXPECT_EQ(asSet(R1.Vectors), asSet(R2.Vectors)) << P.str();
      EXPECT_EQ(R1.Distances, R2.Distances) << P.str();
    } else if (R1.RootAnswer != DepAnswer::Unknown &&
               R2.RootAnswer != DepAnswer::Unknown) {
      // Decisive roots must agree even when a side is inexact.
      EXPECT_EQ(R1.RootAnswer, R2.RootAnswer) << P.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparableAgreementProperty,
                         ::testing::Values(21, 22, 23));

//===----------------------------------------------------------------------===//
// Property: reported vectors match enumeration on random problems.
//===----------------------------------------------------------------------===//

class DirectionOracleProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DirectionOracleProperty, CoversExactlyTheRealizedPatterns) {
  SplitRng Rng(GetParam());
  unsigned Conclusive = 0;
  for (unsigned Iter = 0; Iter < 120; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    std::optional<std::set<DirVector>> Truth = oracleDirections(P);
    if (!Truth)
      continue;
    ++Conclusive;
    DirectionResult R = computeDirectionVectors(P);
    if (!R.Exact)
      continue;
    // Soundness: every realized pattern is covered.
    for (const DirVector &Real : *Truth) {
      bool Covered = false;
      for (const DirVector &Reported : R.Vectors)
        Covered = Covered || dirMatches(Reported, Real);
      EXPECT_TRUE(Covered) << dirVectorStr(Real) << "\n" << P.str();
    }
    // Exactness: every fully-refined reported vector is realized.
    for (const DirVector &Reported : R.Vectors) {
      if (std::find(Reported.begin(), Reported.end(), Dir::Any) !=
          Reported.end())
        continue;
      EXPECT_TRUE(Truth->count(Reported))
          << dirVectorStr(Reported) << "\n" << P.str();
    }
    // Root consistency.
    EXPECT_EQ(R.RootAnswer == DepAnswer::Dependent, !Truth->empty())
        << P.str();
  }
  EXPECT_GT(Conclusive, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectionOracleProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));
