//===- tests/deptest/DirectionTest.cpp - Direction vector tests -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Direction.h"

#include "testutil/Helpers.h"
#include "oracle/Oracle.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <set>

using namespace edda;
using namespace edda::testutil;
using namespace edda::oracle;

namespace {

std::set<DirVector> asSet(const std::vector<DirVector> &Vs) {
  return std::set<DirVector>(Vs.begin(), Vs.end());
}

} // namespace

TEST(DirVectorStr, Rendering) {
  EXPECT_EQ(dirVectorStr({Dir::Less, Dir::Equal, Dir::Any}), "(<, =, *)");
  EXPECT_EQ(dirVectorStr({Dir::Greater}), "(>)");
  EXPECT_EQ(dirVectorStr({}), "()");
}

TEST(Direction, ForwardCarriedDependence) {
  // a[i+1] = a[i]: dependence with i < i', distance 1.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 1) // (i+1) - i' == 0
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Dependent);
  EXPECT_TRUE(R.Exact);
  EXPECT_EQ(asSet(R.Vectors), asSet({{Dir::Less}}));
  ASSERT_EQ(R.Distances.size(), 1u);
  ASSERT_TRUE(R.Distances[0].has_value());
  EXPECT_EQ(*R.Distances[0], 1);
}

TEST(Direction, LoopIndependentOnly) {
  // a[i] = a[i]: only '='.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(asSet(R.Vectors), asSet({{Dir::Equal}}));
  ASSERT_TRUE(R.Distances[0].has_value());
  EXPECT_EQ(*R.Distances[0], 0);
}

TEST(Direction, PaperTwoVectorExample) {
  // Paper section 6: a[i][j] = a[2i][j] over 0..10 squared is
  // dependent with (<, =) and (=, *)... the text reports (<, =) and
  // (=, *) for the pair; enumeration gives i' such that i = 2i', so
  // i = i' = 0 (equal) or i > i' (e.g. i=2, i'=1). Outer directions
  // are thus '=' and '>', inner '='. With distance pruning the inner
  // '=' is forced.
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({1, 0, -2, 0}, 0) // i - 2i' == 0
                            .eq({0, 1, 0, -1}, 0) // j - j' == 0
                            .bounds(0, 0, 10)
                            .bounds(1, 0, 10)
                            .bounds(2, 0, 10)
                            .bounds(3, 0, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  std::optional<std::set<DirVector>> Truth = oracleDirections(P);
  ASSERT_TRUE(Truth.has_value());
  // Reported vectors (with wildcards) must cover exactly the realized
  // sign patterns.
  for (const DirVector &Real : *Truth) {
    bool Covered = false;
    for (const DirVector &Reported : R.Vectors)
      Covered = Covered || dirMatches(Reported, Real);
    EXPECT_TRUE(Covered) << dirVectorStr(Real);
  }
  for (const DirVector &Reported : R.Vectors) {
    if (std::find(Reported.begin(), Reported.end(), Dir::Any) !=
        Reported.end())
      continue;
    EXPECT_TRUE(Truth->count(Reported)) << dirVectorStr(Reported);
  }
}

TEST(Direction, UnusedLoopGetsStar) {
  // for i, for j: a[j+1] = a[j]: i is unused, direction (*, <).
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({0, 1, 0, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  DirectionOptions Opts;
  Opts.EliminateUnusedVars = true;
  DirectionResult R = computeDirectionVectors(P, Opts);
  EXPECT_EQ(asSet(R.Vectors), asSet({{Dir::Any, Dir::Less}}));
}

TEST(Direction, UnusedLoopEnumeratedWithoutElimination) {
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({0, 1, 0, -1}, 1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .bounds(2, 1, 10)
                            .bounds(3, 1, 10)
                            .build();
  DirectionOptions Opts;
  Opts.EliminateUnusedVars = false;
  Opts.DistanceVectorPruning = false;
  DirectionResult R = computeDirectionVectors(P, Opts);
  // All three outer directions are realizable.
  EXPECT_EQ(asSet(R.Vectors),
            asSet({{Dir::Less, Dir::Less},
                   {Dir::Equal, Dir::Less},
                   {Dir::Greater, Dir::Less}}));
  // And it cost strictly more tests than the pruned run.
  DirectionOptions Pruned;
  DirectionResult R2 = computeDirectionVectors(P, Pruned);
  EXPECT_GT(R.TestsRun, R2.TestsRun);
}

TEST(Direction, DistancePruningSkipsTests) {
  // Constant distance 3: direction forced to '<' without testing.
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({1, -1}, 3)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionOptions NoPrune;
  NoPrune.DistanceVectorPruning = false;
  DirectionOptions Prune;
  DirectionResult R1 = computeDirectionVectors(P, NoPrune);
  DirectionResult R2 = computeDirectionVectors(P, Prune);
  EXPECT_EQ(asSet(R1.Vectors), asSet(R2.Vectors));
  EXPECT_LT(R2.TestsRun, R1.TestsRun);
  ASSERT_TRUE(R2.Distances[0].has_value());
  EXPECT_EQ(*R2.Distances[0], 3);
}

TEST(Direction, IndependentRootShortCircuits) {
  DependenceProblem P = ProblemBuilder(1, 1, 1)
                            .eq({2, -2}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Independent);
  EXPECT_TRUE(R.Vectors.empty());
  EXPECT_EQ(R.TestsRun, 1u);
}

TEST(Direction, TriangularNest) {
  // for i = 1..6, j = 1..i: a[i][j] = a[i-1][j]: carried by i with
  // distance 1, j equal.
  DependenceProblem P =
      ProblemBuilder(2, 2, 2)
          .eq({1, 0, -1, 0}, 1)  // (i... write a[i-1]? source: write
                                 // a[i][j], read a[i-1][j]: i - (i'-1)
          .eq({0, 1, 0, -1}, 0)
          .bounds(0, 1, 6)
          .bounds(2, 1, 6)
          .loBound(1, {0, 0, 0, 0}, 1)
          .hiBound(1, {1, 0, 0, 0}, 0)
          .loBound(3, {0, 0, 0, 0}, 1)
          .hiBound(3, {0, 0, 1, 0}, 0)
          .build();
  DirectionResult R = computeDirectionVectors(P);
  std::optional<std::set<DirVector>> Truth = oracleDirections(P);
  ASSERT_TRUE(Truth.has_value());
  for (const DirVector &Real : *Truth) {
    bool Covered = false;
    for (const DirVector &Reported : R.Vectors)
      Covered = Covered || dirMatches(Reported, Real);
    EXPECT_TRUE(Covered) << dirVectorStr(Real);
  }
}

TEST(Direction, SeparableMatchesGeneral) {
  // Rectangular, per-dimension-decoupled problem: the Burke-Cytron
  // separable path must agree with full hierarchical refinement.
  DependenceProblem P = ProblemBuilder(2, 2, 2)
                            .eq({1, 0, -1, 0}, 1)
                            .eq({0, 1, 0, -1}, -2)
                            .bounds(0, 1, 8)
                            .bounds(1, 1, 8)
                            .bounds(2, 1, 8)
                            .bounds(3, 1, 8)
                            .build();
  DirectionOptions General;
  General.SeparableDimensions = false;
  DirectionOptions Separable;
  Separable.SeparableDimensions = true;
  DirectionResult R1 = computeDirectionVectors(P, General);
  DirectionResult R2 = computeDirectionVectors(P, Separable);
  EXPECT_EQ(asSet(R1.Vectors), asSet(R2.Vectors));
  EXPECT_EQ(R1.RootAnswer, R2.RootAnswer);
}

TEST(Direction, EmptyCommonNest) {
  // Disjoint nests: dependence is just overlap, the vector is empty.
  DependenceProblem P = ProblemBuilder(1, 1, 0)
                            .eq({1, -1}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 5, 15)
                            .build();
  DirectionResult R = computeDirectionVectors(P);
  EXPECT_EQ(R.RootAnswer, DepAnswer::Dependent);
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_TRUE(R.Vectors[0].empty());
}

//===----------------------------------------------------------------------===//
// Property: reported vectors match enumeration on random problems.
//===----------------------------------------------------------------------===//

class DirectionOracleProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DirectionOracleProperty, CoversExactlyTheRealizedPatterns) {
  SplitRng Rng(GetParam());
  unsigned Conclusive = 0;
  for (unsigned Iter = 0; Iter < 120; ++Iter) {
    DependenceProblem P = randomProblem(Rng);
    std::optional<std::set<DirVector>> Truth = oracleDirections(P);
    if (!Truth)
      continue;
    ++Conclusive;
    DirectionResult R = computeDirectionVectors(P);
    if (!R.Exact)
      continue;
    // Soundness: every realized pattern is covered.
    for (const DirVector &Real : *Truth) {
      bool Covered = false;
      for (const DirVector &Reported : R.Vectors)
        Covered = Covered || dirMatches(Reported, Real);
      EXPECT_TRUE(Covered) << dirVectorStr(Real) << "\n" << P.str();
    }
    // Exactness: every fully-refined reported vector is realized.
    for (const DirVector &Reported : R.Vectors) {
      if (std::find(Reported.begin(), Reported.end(), Dir::Any) !=
          Reported.end())
        continue;
      EXPECT_TRUE(Truth->count(Reported))
          << dirVectorStr(Reported) << "\n" << P.str();
    }
    // Root consistency.
    EXPECT_EQ(R.RootAnswer == DepAnswer::Dependent, !Truth->empty())
        << P.str();
  }
  EXPECT_GT(Conclusive, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectionOracleProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));
