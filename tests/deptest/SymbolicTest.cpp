//===- tests/deptest/SymbolicTest.cpp - Symbolic testing properties -------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 8 of the paper: unknown loop-invariant variables join the
/// system as unbounded integer unknowns, existentially quantified.
/// The soundness contract is one-sided and machine-checkable:
/// "independent" must mean independent for *every* concrete value of
/// the symbolics; "dependent" asserts existence of *some* value. These
/// properties are checked by concretizing random symbolic problems over
/// a window of values and comparing against the enumeration oracle.
///
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"

#include "deptest/Direction.h"
#include "testutil/Helpers.h"
#include "oracle/Oracle.h"
#include "gtest/gtest.h"

using namespace edda;
using namespace edda::testutil;
using namespace edda::oracle;

namespace {

/// Replaces the problem's single symbolic column with the concrete
/// value \p N (folded into constants).
DependenceProblem concretize(const DependenceProblem &P, int64_t N) {
  assert(P.NumSymbolic == 1 && "expected one symbolic");
  unsigned Col = P.numLoopVars();
  DependenceProblem Out = P;
  Out.NumSymbolic = 0;
  auto Fold = [&](XAffine &Form) {
    Form.Const += Form.Coeffs[Col] * N;
    Form.Coeffs.erase(Form.Coeffs.begin() + Col);
  };
  for (XAffine &Eq : Out.Equations)
    Fold(Eq);
  for (auto &B : Out.Lo)
    if (B)
      Fold(*B);
  for (auto &B : Out.Hi)
    if (B)
      Fold(*B);
  assert(Out.wellFormed());
  return Out;
}

/// Random problem with one symbolic column mixed into equations and
/// occasionally into a bound.
DependenceProblem randomSymbolicProblem(SplitRng &Rng) {
  unsigned Common = 1;
  ProblemBuilder PB(Common, Common, Common, /*Symbolic=*/1);
  unsigned NumX = 2 * Common + 1;
  std::vector<int64_t> Coeffs(NumX, 0);
  for (unsigned J = 0; J < NumX; ++J)
    Coeffs[J] = static_cast<int64_t>(Rng.below(5)) - 2;
  PB.eq(std::move(Coeffs), static_cast<int64_t>(Rng.below(9)) - 4);
  int64_t Lo = static_cast<int64_t>(Rng.below(5)) - 2;
  int64_t Span = static_cast<int64_t>(Rng.below(7));
  PB.bounds(0, Lo, Lo + Span);
  PB.bounds(1, Lo, Lo + Span);
  DependenceProblem P = PB.build();
  if (Rng.below(3) == 0) {
    // Symbolic upper bound: x0 <= n + c (and same for the copy).
    XAffine Hi(NumX);
    Hi.Coeffs[NumX - 1] = 1;
    Hi.Const = static_cast<int64_t>(Rng.below(4));
    P.Hi[0] = Hi;
    P.Hi[1] = Hi;
  }
  return P;
}

} // namespace

TEST(Symbolic, IndependentMeansIndependentForAllValues) {
  SplitRng Rng(404);
  unsigned IndependentSeen = 0;
  for (unsigned Iter = 0; Iter < 400; ++Iter) {
    DependenceProblem P = randomSymbolicProblem(Rng);
    CascadeResult R = testDependence(P);
    if (R.Answer != DepAnswer::Independent)
      continue;
    ++IndependentSeen;
    for (int64_t N = -12; N <= 12; ++N) {
      DependenceProblem C = concretize(P, N);
      std::optional<bool> Truth = oracleDependent(C);
      if (!Truth)
        continue;
      EXPECT_FALSE(*Truth) << "claimed independent but n = " << N
                           << " depends\n"
                           << P.str();
    }
  }
  EXPECT_GT(IndependentSeen, 20u);
}

TEST(Symbolic, DependentWitnessIsConcrete) {
  // When the cascade reports Dependent with a witness, the witness's
  // symbolic component is a concrete value realizing the dependence —
  // check it against the concretized oracle.
  SplitRng Rng(405);
  unsigned Checked = 0;
  for (unsigned Iter = 0; Iter < 400; ++Iter) {
    DependenceProblem P = randomSymbolicProblem(Rng);
    CascadeResult R = testDependence(P);
    if (R.Answer != DepAnswer::Dependent || !R.Witness)
      continue;
    ASSERT_TRUE(verifyWitness(P, *R.Witness)) << P.str();
    int64_t N = (*R.Witness)[P.numLoopVars()];
    if (N < -100 || N > 100)
      continue; // keep the oracle's arithmetic small
    DependenceProblem C = concretize(P, N);
    std::optional<bool> Truth = oracleDependent(C);
    if (!Truth)
      continue;
    ++Checked;
    EXPECT_TRUE(*Truth) << "witness n = " << N << " does not realize\n"
                        << P.str();
  }
  EXPECT_GT(Checked, 100u);
}

TEST(Symbolic, CancellationReducesToConcrete) {
  // When the symbolic coefficients cancel between the two references,
  // the answer must equal the concrete problem's answer.
  for (int64_t Delta = -12; Delta <= 12; ++Delta) {
    DependenceProblem Symbolic = ProblemBuilder(1, 1, 1, 1)
                                     .eq({1, -1, 0}, Delta)
                                     .bounds(0, 1, 10)
                                     .bounds(1, 1, 10)
                                     .build();
    DependenceProblem Concrete = ProblemBuilder(1, 1, 1)
                                     .eq({1, -1}, Delta)
                                     .bounds(0, 1, 10)
                                     .bounds(1, 1, 10)
                                     .build();
    CascadeResult RS = testDependence(Symbolic);
    CascadeResult RC = testDependence(Concrete);
    EXPECT_EQ(RS.Answer, RC.Answer) << "delta " << Delta;
  }
}

TEST(Symbolic, DirectionVectorsSoundUnderConcretization) {
  SplitRng Rng(406);
  unsigned Checked = 0;
  for (unsigned Iter = 0; Iter < 200 && Checked < 60; ++Iter) {
    DependenceProblem P = randomSymbolicProblem(Rng);
    DirectionResult R = computeDirectionVectors(P);
    if (!R.Exact)
      continue;
    for (int64_t N : {-3, 0, 2, 7}) {
      DependenceProblem C = concretize(P, N);
      std::optional<std::set<DirVector>> Truth = oracleDirections(C);
      if (!Truth)
        continue;
      ++Checked;
      for (const DirVector &Real : *Truth) {
        bool Covered = false;
        for (const DirVector &Reported : R.Vectors)
          Covered = Covered || dirMatches(Reported, Real);
        EXPECT_TRUE(Covered)
            << "n = " << N << " realizes " << dirVectorStr(Real)
            << " but it was not reported\n"
            << P.str();
      }
    }
  }
  EXPECT_GT(Checked, 30u);
}

TEST(Symbolic, MultipleSymbolicsHandled) {
  // Two symbolic terms: a[i + m] vs a[i' + n]: dependent (choose m = n).
  DependenceProblem P = ProblemBuilder(1, 1, 1, 2)
                            .eq({1, -1, 1, -1}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_TRUE(verifyWitness(P, *R.Witness));
}

TEST(Symbolic, ScaledSymbolicGcdInteraction) {
  // a[2i + 2n] vs a[2i' + 2n + 1]: the symbolic cancels, parity kills
  // it — the GCD test must see through the symbolic column.
  DependenceProblem P = ProblemBuilder(1, 1, 1, 1)
                            .eq({2, -2, 0}, -1)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::GcdTest);

  // a[2i] vs a[2i' + n]: n odd works — dependent.
  DependenceProblem Q = ProblemBuilder(1, 1, 1, 1)
                            .eq({2, -2, -1}, 0)
                            .bounds(0, 1, 10)
                            .bounds(1, 1, 10)
                            .build();
  EXPECT_EQ(testDependence(Q).Answer, DepAnswer::Dependent);
}
