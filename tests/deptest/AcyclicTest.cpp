//===- tests/deptest/AcyclicTest.cpp - Acyclic test unit tests ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "deptest/Acyclic.h"

#include "gtest/gtest.h"

using namespace edda;

namespace {

VarIntervals intervals(std::vector<std::pair<std::optional<int64_t>,
                                             std::optional<int64_t>>>
                           Pairs) {
  VarIntervals V(static_cast<unsigned>(Pairs.size()));
  for (unsigned I = 0; I < Pairs.size(); ++I) {
    V.Lo[I] = Pairs[I].first;
    V.Hi[I] = Pairs[I].second;
  }
  return V;
}

} // namespace

TEST(Acyclic, NoMultiVarIsDependent) {
  AcyclicResult R = runAcyclic(2, {}, intervals({{1, 5}, {0, 3}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
}

TEST(Acyclic, OneDirectionalVariablePinned) {
  // t0 - t1 <= 0 with 1 <= t0 <= 10, 1 <= t1 <= 10: t0 only
  // upper-bounded by the multi-variable constraint, pin t0 = 1.
  std::vector<LinearConstraint> Multi = {{{1, -1}, 0}};
  AcyclicResult R = runAcyclic(2, Multi, intervals({{1, 10}, {1, 10}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  EXPECT_LE((*R.Sample)[0], (*R.Sample)[1]);
  EXPECT_GE((*R.Sample)[0], 1);
  EXPECT_LE((*R.Sample)[1], 10);
}

TEST(Acyclic, SubstitutionExposesContradiction) {
  // t0 >= 11 via multi-var after pinning: t1 - t0 <= -11 (t1 >= ...
  // i.e. t0 >= t1 + 11), t1 >= 1, t0 <= 10.
  std::vector<LinearConstraint> Multi = {{{-1, 1}, -11}};
  AcyclicResult R = runAcyclic(2, Multi, intervals({{1, 10}, {1, 10}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::Independent);
}

TEST(Acyclic, PaperTriangularExample) {
  // Triangular nest residue: j <= i (t0 = j upper-bounded only),
  // then everything single-variable.
  std::vector<LinearConstraint> Multi = {{{1, -1}, 0}}; // j - i <= 0
  AcyclicResult R = runAcyclic(
      2, Multi, intervals({{1, std::nullopt}, {std::nullopt, 10}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  EXPECT_LE((*R.Sample)[0], (*R.Sample)[1]);
}

TEST(Acyclic, UnboundedVariableDropped) {
  // t0 - t1 <= 0 where t0 has no lower bound: t0 and its constraint
  // are discarded, t1 keeps its own interval.
  std::vector<LinearConstraint> Multi = {{{1, -1}, 0}};
  AcyclicResult R = runAcyclic(
      2, Multi, intervals({{std::nullopt, std::nullopt}, {3, 8}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  EXPECT_LE((*R.Sample)[0], (*R.Sample)[1]);
  EXPECT_GE((*R.Sample)[1], 3);
  EXPECT_LE((*R.Sample)[1], 8);
}

TEST(Acyclic, CycleLeftForResidue) {
  // t0 - t1 <= 0 and t1 - t0 <= 0: both variables bounded both ways.
  std::vector<LinearConstraint> Multi = {{{1, -1}, 0}, {{-1, 1}, 0}};
  AcyclicResult R = runAcyclic(2, Multi, intervals({{1, 5}, {1, 5}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::NeedsMore);
  EXPECT_EQ(R.Remaining.size(), 2u);
}

TEST(Acyclic, PartialEliminationSimplifiesCycle) {
  // t2 only lower-bounded by multi-var constraints; eliminating it must
  // leave the (t0, t1) cycle.
  std::vector<LinearConstraint> Multi = {
      {{1, -1, 0}, 0},  // t0 - t1 <= 0
      {{-1, 1, 0}, 0},  // t1 - t0 <= 0
      {{1, 0, -1}, 2},  // t0 - t2 <= 2 (t2 lower-bounded)
  };
  AcyclicResult R = runAcyclic(
      3, Multi, intervals({{1, 5}, {1, 5}, {std::nullopt, 9}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::NeedsMore);
  EXPECT_EQ(R.Remaining.size(), 2u);
  ASSERT_EQ(R.Log.size(), 1u);
  EXPECT_EQ(R.Log[0].Var, 2u);
}

TEST(Acyclic, ThreeVariableChain) {
  // t0 <= t1 <= t2 with only t2 bounded above and t0 below.
  std::vector<LinearConstraint> Multi = {{{1, -1, 0}, 0},
                                         {{0, 1, -1}, 0}};
  AcyclicResult R = runAcyclic(
      3, Multi,
      intervals({{2, std::nullopt},
                 {std::nullopt, std::nullopt},
                 {std::nullopt, 4}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  const std::vector<int64_t> &S = *R.Sample;
  EXPECT_LE(S[0], S[1]);
  EXPECT_LE(S[1], S[2]);
  EXPECT_GE(S[0], 2);
  EXPECT_LE(S[2], 4);
}

TEST(Acyclic, ThreeVariableChainInfeasible) {
  // t0 <= t1 <= t2, t0 >= 5, t2 <= 4.
  std::vector<LinearConstraint> Multi = {{{1, -1, 0}, 0},
                                         {{0, 1, -1}, 0}};
  AcyclicResult R = runAcyclic(
      3, Multi,
      intervals({{5, std::nullopt},
                 {std::nullopt, std::nullopt},
                 {std::nullopt, 4}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::Independent);
}

TEST(Acyclic, PaperSection33Example) {
  // The paper's worked example: t1 constrained both ways, t2 settable
  // to its lower bound 1, then t1 to 1, leaving t3 free in a range.
  // Constraints (adapted): t1 - t2 <= 4, t2 - t1 <= 0, t2 >= 1,
  // t3 - t1 <= 3, t1 - t3 <= 1, 1 <= t1 <= 10.
  // Actually exercise the one-direction scan: t3 appears both ways, so
  // use a variant where each round exposes one variable.
  std::vector<LinearConstraint> Multi = {
      {{1, -2, 0}, 0}, // t1 <= 2*t2
      {{0, -1, 1}, 4}, // t3 - t2 <= 4
  };
  AcyclicResult R = runAcyclic(
      3, Multi,
      intervals({{1, 10}, {1, 10}, {0, std::nullopt}}));
  EXPECT_EQ(R.St, AcyclicResult::Status::Dependent);
  ASSERT_TRUE(R.Sample.has_value());
  const std::vector<int64_t> &S = *R.Sample;
  EXPECT_LE(S[0], 2 * S[1]);
  EXPECT_LE(S[2] - S[1], 4);
}

TEST(CompleteSample, RepairsDroppedVariables) {
  // Drop t0 (upper-bounded only, no lower bound), then give a sample
  // for t1 and check t0 is pushed low enough.
  std::vector<LinearConstraint> Multi = {{{2, -1}, 0}}; // 2*t0 <= t1
  VarIntervals V = intervals({{std::nullopt, std::nullopt}, {4, 9}});
  AcyclicResult R = runAcyclic(2, Multi, V);
  ASSERT_EQ(R.St, AcyclicResult::Status::Dependent);
  std::vector<int64_t> Sample = {999, 5}; // t0 wrong on purpose
  ASSERT_TRUE(completeSample(Sample, R.Log, R.Intervals));
  EXPECT_LE(2 * Sample[0], Sample[1]);
}

TEST(AcyclicGraph, EdgesFollowPaperConstruction) {
  // Paper's example: t1 + 2*t2 - t3 <= 0 yields six edges.
  std::vector<LinearConstraint> Multi = {{{1, 2, -1}, 0}};
  AcyclicGraph G = buildAcyclicGraph(3, Multi);
  EXPECT_EQ(G.Edges.size(), 6u);
  EXPECT_FALSE(G.hasCycle());
}

TEST(AcyclicGraph, EqualityCycleDetected) {
  // t0 <= t1 and t1 <= t0 (an equality split) creates a cycle — the
  // reason GCD preprocessing must remove equality constraints first.
  std::vector<LinearConstraint> Multi = {{{1, -1}, 0}, {{-1, 1}, 0}};
  AcyclicGraph G = buildAcyclicGraph(2, Multi);
  EXPECT_TRUE(G.hasCycle());
}

TEST(AcyclicGraph, StrNamesNodes) {
  std::vector<LinearConstraint> Multi = {{{1, -1}, 0}};
  AcyclicGraph G = buildAcyclicGraph(2, Multi);
  std::string S = G.str();
  EXPECT_NE(S.find("t0"), std::string::npos);
  EXPECT_NE(S.find("->"), std::string::npos);
}
