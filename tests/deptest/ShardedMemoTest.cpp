//===- tests/deptest/ShardedMemoTest.cpp - Concurrent memo cache ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded concurrent cache's contracts: shard count 1 degenerates
/// to the original table, sharding never changes lookup results, and
/// concurrent insert/lookup of identical keys converges on one
/// canonical entry without losing or duplicating state.
///
//===----------------------------------------------------------------------===//

#include "deptest/Memo.h"

#include "testutil/Helpers.h"
#include "gtest/gtest.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace edda;
using namespace edda::testutil;

namespace {

DependenceProblem simpleProblem(int64_t Delta, int64_t Hi = 10) {
  return ProblemBuilder(1, 1, 1)
      .eq({1, -1}, Delta)
      .bounds(0, 1, Hi)
      .bounds(1, 1, Hi)
      .build();
}

MemoOptions withShards(unsigned Shards) {
  MemoOptions Opts;
  Opts.Shards = Shards;
  return Opts;
}

} // namespace

TEST(ShardedMemo, ShardCountOneDegeneratesToSingleTable) {
  DependenceCache Cache(withShards(1));
  EXPECT_EQ(Cache.shardCount(), 1u);
  DependenceProblem P = simpleProblem(3);
  EXPECT_FALSE(Cache.lookupFull(P).has_value());
  CascadeResult R = testDependence(P);
  Cache.insertFull(P, R);
  std::optional<CascadeResult> Hit = Cache.lookupFull(P);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Answer, R.Answer);
  EXPECT_EQ(Cache.fullQueries(), 2u);
  EXPECT_EQ(Cache.fullHits(), 1u);
  EXPECT_EQ(Cache.uniqueFull(), 1u);
}

TEST(ShardedMemo, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(DependenceCache(withShards(3)).shardCount(), 4u);
  EXPECT_EQ(DependenceCache(withShards(16)).shardCount(), 16u);
  // 0 = auto resolves to at least one shard.
  EXPECT_GE(DependenceCache(withShards(0)).shardCount(), 1u);
}

TEST(ShardedMemo, ShardingDoesNotChangeResults) {
  // The same inserts against 1 and 64 shards must serve the same
  // answers; sharding only picks which mutex guards a key.
  DependenceCache One(withShards(1));
  DependenceCache Many(withShards(64));
  std::vector<DependenceProblem> Problems;
  for (int64_t Delta = -8; Delta <= 8; ++Delta)
    for (int64_t Hi : {4, 10, 30})
      Problems.push_back(simpleProblem(Delta, Hi));
  for (const DependenceProblem &P : Problems) {
    CascadeResult R = testDependence(P);
    One.insertFull(P, R);
    Many.insertFull(P, R);
    One.insertGcdSolvable(P, R.Answer != DepAnswer::Independent);
    Many.insertGcdSolvable(P, R.Answer != DepAnswer::Independent);
  }
  EXPECT_EQ(One.uniqueFull(), Many.uniqueFull());
  EXPECT_EQ(One.uniqueNoBounds(), Many.uniqueNoBounds());
  for (const DependenceProblem &P : Problems) {
    std::optional<CascadeResult> A = One.lookupFull(P);
    std::optional<CascadeResult> B = Many.lookupFull(P);
    ASSERT_TRUE(A.has_value());
    ASSERT_TRUE(B.has_value());
    EXPECT_EQ(A->Answer, B->Answer);
    EXPECT_EQ(A->DecidedBy, B->DecidedBy);
    EXPECT_EQ(One.lookupGcdSolvable(P), Many.lookupGcdSolvable(P));
  }
}

TEST(ShardedMemo, ConcurrentIdenticalInsertsOneCanonicalEntry) {
  for (unsigned Shards : {1u, 8u}) {
    DependenceCache Cache(withShards(Shards));
    DependenceProblem P = simpleProblem(3);
    CascadeResult R = testDependence(P);

    constexpr unsigned NumThreads = 8;
    constexpr unsigned Rounds = 200;
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumThreads; ++T)
      Threads.emplace_back([&Cache, &P, &R] {
        for (unsigned I = 0; I < Rounds; ++I) {
          Cache.insertFull(P, R);
          std::optional<CascadeResult> Hit = Cache.lookupFull(P);
          // Another thread may not have inserted yet on the very first
          // lookups, but once present the entry must be the canonical
          // result.
          if (Hit) {
            EXPECT_EQ(Hit->Answer, R.Answer);
            EXPECT_EQ(Hit->DecidedBy, R.DecidedBy);
          }
        }
      });
    for (std::thread &T : Threads)
      T.join();

    EXPECT_EQ(Cache.uniqueFull(), 1u);
    EXPECT_EQ(Cache.fullQueries(), uint64_t(NumThreads) * Rounds);
    EXPECT_EQ(Cache.fullHits(), uint64_t(NumThreads) * Rounds);
  }
}

TEST(ShardedMemo, ConcurrentDistinctKeysAllRetained) {
  DependenceCache Cache(withShards(8));
  constexpr unsigned NumThreads = 4;
  constexpr int64_t PerThread = 64;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Cache, T] {
      for (int64_t I = 0; I < PerThread; ++I) {
        // Distinct (Delta, Hi) per insert; Delta overlaps across
        // threads, Hi does not.
        DependenceProblem P = simpleProblem(I, 100 + T);
        CascadeResult R = testDependence(P);
        Cache.insertFull(P, R);
        Cache.insertGcdSolvable(P, true);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Cache.uniqueFull(), uint64_t(NumThreads) * PerThread);
  // The GCD key ignores bounds, so the per-thread Hi collapses.
  EXPECT_EQ(Cache.uniqueNoBounds(), uint64_t(PerThread));
  for (unsigned T = 0; T < NumThreads; ++T)
    for (int64_t I = 0; I < PerThread; ++I)
      EXPECT_TRUE(
          Cache.lookupFull(simpleProblem(I, 100 + T)).has_value());
}

TEST(ShardedMemo, ConcurrentDirectionsInsertLookup) {
  DependenceCache Cache(withShards(4));
  DependenceProblem P = simpleProblem(2);
  DirectionResult Dirs = computeDirectionVectors(P);

  constexpr unsigned NumThreads = 6;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Cache, &P, &Dirs] {
      for (unsigned I = 0; I < 100; ++I) {
        Cache.insertDirections(P, Dirs);
        std::optional<DirectionResult> Hit = Cache.lookupDirections(P);
        if (Hit) {
          EXPECT_EQ(Hit->RootAnswer, Dirs.RootAnswer);
          EXPECT_EQ(Hit->Vectors, Dirs.Vectors);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Cache.uniqueDirections(), 1u);
}

TEST(ShardedMemo, PersistenceRoundTripsAcrossShardCounts) {
  DependenceCache Many(withShards(16));
  for (int64_t Delta = 0; Delta < 20; ++Delta) {
    DependenceProblem P = simpleProblem(Delta);
    Many.insertFull(P, testDependence(P));
  }
  std::string Path = ::testing::TempDir() + "edda_shard_cache.txt";
  ASSERT_TRUE(Many.saveToFile(Path));

  DependenceCache One(withShards(1));
  ASSERT_TRUE(One.loadFromFile(Path));
  EXPECT_EQ(One.uniqueFull(), Many.uniqueFull());
  for (int64_t Delta = 0; Delta < 20; ++Delta)
    EXPECT_TRUE(One.lookupFull(simpleProblem(Delta)).has_value());
  std::remove(Path.c_str());
}
