//===- tests/deptest/OverflowTest.cpp - Overflow path hardening -----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exactness must never be bought with silent wraparound. These tests
/// drive extreme coefficients through every layer and check the
/// documented contracts: exact answers or an honest Unknown, never a
/// wrong verdict.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "deptest/Acyclic.h"
#include "deptest/Cascade.h"
#include "deptest/ExtendedGcd.h"
#include "deptest/LoopResidue.h"
#include "support/IntMath.h"
#include "testutil/Helpers.h"
#include "gtest/gtest.h"

#include <climits>

using namespace edda;
using namespace edda::testutil;

TEST(Overflow, DiophantineSolverReportsOverflow) {
  // Coefficients engineered so the gcd row combinations overflow.
  IntMatrix A(2, 2);
  A.at(0, 0) = INT64_MAX / 2;
  A.at(0, 1) = INT64_MAX / 3;
  A.at(1, 0) = INT64_MAX / 2 - 1;
  A.at(1, 1) = INT64_MAX / 3 - 7;
  DiophantineSolution Sol = solveDiophantine(A, {1, 1});
  // Either it overflowed honestly or solved exactly; never both false.
  if (!Sol.Overflow && Sol.Solvable) {
    auto X = Sol.instantiate(std::vector<int64_t>(Sol.NumFree, 0));
    if (X) {
      CheckedInt E0 = CheckedInt((*X)[0]) * A.at(0, 0) +
                      CheckedInt((*X)[1]) * A.at(1, 0);
      if (E0.valid())
        EXPECT_EQ(E0.get(), 1);
    }
  }
}

TEST(Overflow, CascadeNeverWrapsIntoWrongAnswers) {
  // Equation MAX*(i - i') == c over a small box. For c != 0 the only
  // risk is wraparound; the cascade must answer Independent (exact) or
  // Unknown, never Dependent.
  for (int64_t C : {int64_t(1), int64_t(-1), INT64_MAX / 2}) {
    DependenceProblem P = ProblemBuilder(1, 1, 1)
                              .eq({INT64_MAX, -INT64_MAX}, C)
                              .bounds(0, 1, 10)
                              .bounds(1, 1, 10)
                              .build();
    CascadeResult R = testDependence(P);
    EXPECT_NE(R.Answer, DepAnswer::Dependent) << C;
  }
  // And c == 0 is genuinely dependent (i == i').
  DependenceProblem Zero = ProblemBuilder(1, 1, 1)
                               .eq({INT64_MAX, -INT64_MAX}, 0)
                               .bounds(0, 1, 10)
                               .bounds(1, 1, 10)
                               .build();
  CascadeResult R = testDependence(Zero);
  if (R.Answer != DepAnswer::Unknown) {
    EXPECT_EQ(R.Answer, DepAnswer::Dependent);
    if (R.Witness)
      EXPECT_TRUE(verifyWitness(Zero, *R.Witness));
  }
}

TEST(Overflow, HugeBoundsStayExact) {
  // Bounds at the 64-bit edge: a[i] vs a[i+1] over [MIN/2, MAX/2].
  DependenceProblem P =
      ProblemBuilder(1, 1, 1)
          .eq({1, -1}, 1)
          .bounds(0, INT64_MIN / 2, INT64_MAX / 2)
          .bounds(1, INT64_MIN / 2, INT64_MAX / 2)
          .build();
  CascadeResult R = testDependence(P);
  EXPECT_EQ(R.Answer, DepAnswer::Dependent);
  if (R.Witness)
    EXPECT_TRUE(verifyWitness(P, *R.Witness));
}

TEST(Overflow, AcyclicSubstitutionOverflowFallsBack) {
  // Pinning a variable at INT64_MIN-ish bounds overflows the
  // substitution; the test must report Overflow, not a verdict.
  std::vector<LinearConstraint> Multi = {
      {{INT64_MAX / 2, -1}, 0}}; // huge coefficient on t0
  VarIntervals V(2);
  V.Lo[0] = -10; // pin target
  V.Lo[1] = INT64_MIN + 1;
  V.Hi[1] = INT64_MAX - 1;
  AcyclicResult R = runAcyclic(2, Multi, V);
  // t0 upper-bounded only -> pinned to -10: -MAX/2*10 fits... the
  // result must simply be consistent: dependent with a valid sample or
  // an overflow report.
  if (R.St == AcyclicResult::Status::Dependent && R.Sample) {
    CheckedInt Lhs = CheckedInt((*R.Sample)[0]) * (INT64_MAX / 2) -
                     CheckedInt((*R.Sample)[1]);
    ASSERT_TRUE(Lhs.valid());
    EXPECT_LE(Lhs.get(), 0);
  }
}

TEST(Overflow, ResidueWeightOverflowReported) {
  // Interval endpoints near the 64-bit edge make the Bellman-Ford
  // relaxation overflow; the test must give up rather than wrap.
  std::vector<LinearConstraint> Multi = {{{1, -1}, INT64_MAX - 2}};
  VarIntervals V(2);
  V.Lo[0] = INT64_MIN + 10;
  V.Hi[0] = INT64_MAX - 10;
  V.Lo[1] = INT64_MIN + 10;
  V.Hi[1] = INT64_MAX - 10;
  ResidueResult R = runLoopResidue(2, Multi, V);
  EXPECT_TRUE(R.St == ResidueResult::Status::Overflow ||
              R.St == ResidueResult::Status::Dependent);
  if (R.St == ResidueResult::Status::Dependent) {
    ASSERT_TRUE(R.Sample.has_value());
    // The sample must satisfy the difference constraint.
    CheckedInt D = CheckedInt((*R.Sample)[0]) - (*R.Sample)[1];
    ASSERT_TRUE(D.valid());
    EXPECT_LE(D.get(), INT64_MAX - 2);
  }
}

TEST(Overflow, BuilderRejectsOverflowingSubscripts) {
  // (MAX * i) - (MIN * i') in one equation overflows the subtraction
  // of subscript constants; the builder must reject, the analyzer must
  // count it unanalyzable, and nothing crashes.
  Program P = mustParse(R"(program s
  array a[100]
  for i = 1 to 10 do
    a[i * 9223372036854775807 + 9223372036854775807] = a[i] + 1
  end
end
)",
                        /*Prepass=*/false);
  DependenceAnalyzer Analyzer;
  AnalysisResult R = Analyzer.analyze(P);
  // Either the prepass folding kept it symbolic-unanalyzable or some
  // pair is conservatively Unknown; no pair may claim exactness with
  // wrapped arithmetic.
  for (const DependencePair &Pair : R.Pairs)
    if (Pair.DecidedBy == TestKind::Unanalyzable)
      EXPECT_FALSE(Pair.Exact);
}

TEST(Overflow, ProjectionOverflowMakesUnknown) {
  // Equation solvable, but bounds projection overflows: the cascade
  // reports Unknown via the Unanalyzable counter rather than deciding.
  DependenceProblem P =
      ProblemBuilder(1, 1, 1)
          .eq({3, -7}, 1)
          .bounds(0, INT64_MIN + 2, INT64_MAX - 2)
          .bounds(1, INT64_MIN + 2, INT64_MAX - 2)
          .build();
  CascadeResult R = testDependence(P);
  // 3i - 7i' + 1 == 0 has solutions (i = 2, i' = 1); with huge bounds
  // the answer is Dependent if arithmetic held, Unknown otherwise.
  if (R.Answer == DepAnswer::Dependent && R.Witness)
    EXPECT_TRUE(verifyWitness(P, *R.Witness));
  else
    EXPECT_NE(R.Answer, DepAnswer::Independent);
}
