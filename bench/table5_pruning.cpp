//===- bench/table5_pruning.cpp - Paper Table 5 + pruning ablation --------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 5: direction vector tests with unused-variable
/// elimination and distance-vector pruning on. The shape to reproduce:
/// the prunings recover most of the Table 4 blowup (paper: ~12,500
/// back down to ~900). Also runs the ablation DESIGN.md calls out: each
/// pruning alone, both, and both plus the Burke-Cytron separable
/// per-dimension scheme.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace edda;
using namespace edda::bench;

namespace {

DepStats totalsFor(bool Unused, bool Distance, bool Separable) {
  AnalyzerOptions AOpts;
  AOpts.ComputeDirections = true;
  AOpts.Direction.EliminateUnusedVars = Unused;
  AOpts.Direction.DistanceVectorPruning = Distance;
  AOpts.Direction.SeparableDimensions = Separable;
  // Unused-variable elimination covers the memo key too (section 5/6
  // use the same technique).
  AOpts.Memo.ImprovedKey = Unused;
  GeneratorOptions GOpts;
  DepStats Total;
  for (const ProgramRun &Run : runSuite(AOpts, GOpts))
    Total += Run.Result.Stats;
  return Total;
}

uint64_t exactTests(const DepStats &S) {
  return S.decided(TestKind::Svpc) + S.decided(TestKind::Acyclic) +
         S.decided(TestKind::LoopResidue) +
         S.decided(TestKind::FourierMotzkin);
}

} // namespace

int main() {
  AnalyzerOptions AOpts;
  AOpts.ComputeDirections = true; // both prunings on by default
  GeneratorOptions GOpts;
  std::vector<ProgramRun> Runs = runSuite(AOpts, GOpts);

  std::printf("Table 5: direction vector tests with unused-variable "
              "elimination and distance pruning (measured|paper)\n\n");
  std::printf("%-4s %12s %12s %12s %12s\n", "Prog",
              stageHeader(TestKind::Svpc),
              stageHeader(TestKind::Acyclic),
              stageHeader(TestKind::LoopResidue),
              stageHeader(TestKind::FourierMotzkin));
  rule(64);

  const unsigned Paper[13][4] = {
      {27, 6, 6, 0},   {14, 16, 14, 0}, {44, 6, 6, 0},  {15, 12, 5, 0},
      {14, 0, 0, 0},   {48, 59, 118, 7}, {5, 0, 0, 0},  {54, 20, 55, 28},
      {8, 0, 0, 0},    {14, 0, 0, 0},   {23, 0, 0, 0},  {3, 38, 72, 0},
      {35, 15, 0, 106}};

  DepStats Total;
  unsigned Idx = 0;
  for (const ProgramRun &Run : Runs) {
    const DepStats &S = Run.Result.Stats;
    std::printf("%-4s  %s  %s  %s  %s\n", Run.Profile->Name.c_str(),
                cell(S.decided(TestKind::Svpc), Paper[Idx][0]).c_str(),
                cell(S.decided(TestKind::Acyclic), Paper[Idx][1])
                    .c_str(),
                cell(S.decided(TestKind::LoopResidue), Paper[Idx][2])
                    .c_str(),
                cell(S.decided(TestKind::FourierMotzkin), Paper[Idx][3])
                    .c_str());
    Total += S;
    ++Idx;
  }
  rule(64);
  std::printf("%-4s  %s  %s  %s  %s\n", "TOT",
              cell(Total.decided(TestKind::Svpc), 304).c_str(),
              cell(Total.decided(TestKind::Acyclic), 172).c_str(),
              cell(Total.decided(TestKind::LoopResidue), 276).c_str(),
              cell(Total.decided(TestKind::FourierMotzkin), 141)
                  .c_str());

  std::printf("\nAblation (total exact tests across the suite):\n");
  struct Config {
    const char *Name;
    bool Unused, Distance, Separable;
  };
  const Config Configs[] = {
      {"no pruning (Table 4 config)", false, false, false},
      {"unused-variable elimination only", true, false, false},
      {"distance-vector pruning only", false, true, false},
      {"both (Table 5 config)", true, true, false},
      {"both + separable per-dimension", true, true, true},
  };
  for (const Config &C : Configs) {
    DepStats S = totalsFor(C.Unused, C.Distance, C.Separable);
    std::printf("  %-36s %8llu tests\n", C.Name,
                static_cast<unsigned long long>(exactTests(S)));
  }
  std::printf("Paper: ~12,500 unpruned -> ~900 pruned\n");
  return 0;
}
