//===- bench/ext_serve_throughput.cpp - Serving throughput study ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput of the edda-serve core (extension; docs/SERVING.md):
/// concurrent clients submit the synthetic PERFECT Club suite as
/// analyze requests through ServeCore's pool dispatch, cold (every
/// pair tested) and warm (every pair served from the shared memo
/// store). The warm/cold ratio is the serving restatement of the
/// paper's Table 2 claim: once the store has seen a compilation's
/// questions, answering them again costs parse-and-render, not
/// dependence testing. Requests go through the full request path
/// (JSON decode, dispatch, analysis, render, JSON encode), so
/// queries/sec here is an end-to-end number, not a cache microbench.
///
///   --scale S     generator scale (default 0.25; CI smoke size)
///   --clients N,M sweep list (default 1,2,4)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace edda;
using namespace edda::bench;

namespace {

using Clock = std::chrono::steady_clock;

/// Submits one request line and blocks until its response arrives —
/// what one synchronous client connection experiences.
std::string callServer(ServeCore &Core, const std::string &Line) {
  std::mutex Mutex;
  std::condition_variable Cv;
  std::string Response;
  bool Done = false;
  Core.submit(Line, [&](std::string Resp) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Response = std::move(Resp);
      Done = true;
    }
    Cv.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mutex);
  Cv.wait(Lock, [&] { return Done; });
  return Response;
}

struct Phase {
  uint64_t Micros = 0;
  uint64_t Requests = 0;
  uint64_t PairsTested = 0;
  uint64_t PairsCached = 0;

  double perSec() const {
    return Micros ? 1e6 * static_cast<double>(Requests) /
                        static_cast<double>(Micros)
                  : 0.0;
  }
  double hitPct() const {
    uint64_t Total = PairsTested + PairsCached;
    return Total ? 100.0 * static_cast<double>(PairsCached) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Runs every request once, fanned across \p Clients synchronous
/// client threads (round-robin assignment, like independent compiler
/// processes sharing the daemon).
Phase runPhase(ServeCore &Core, const std::vector<std::string> &Lines,
               unsigned Clients) {
  ServeStats Before = Core.stats();
  auto T0 = Clock::now();
  std::vector<std::thread> Threads;
  Threads.reserve(Clients);
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      for (size_t I = C; I < Lines.size(); I += Clients)
        callServer(Core, Lines[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  auto T1 = Clock::now();
  ServeStats After = Core.stats();

  Phase P;
  P.Micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
          .count());
  P.Requests = Lines.size();
  P.PairsTested = After.PairsTested - Before.PairsTested;
  P.PairsCached = After.PairsCached - Before.PairsCached;
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = 0.25;
  std::vector<unsigned> ClientSweep = {1, 2, 4};
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--scale") == 0 && I + 1 < Argc)
      Scale = std::atof(Argv[++I]);
    else if (std::strcmp(Argv[I], "--clients") == 0 && I + 1 < Argc) {
      ClientSweep.clear();
      for (const char *P = Argv[++I]; *P;) {
        ClientSweep.push_back(
            static_cast<unsigned>(std::strtoul(P, nullptr, 10)));
        P = std::strchr(P, ',');
        if (!P)
          break;
        ++P;
      }
    }
  }

  GeneratorOptions GOpts;
  GOpts.Scale = Scale;
  std::vector<std::string> Lines;
  for (const auto &[Name, Source] : generatePerfectClubSuite(GOpts)) {
    ServeRequest R;
    R.Id = static_cast<int64_t>(Lines.size() + 1);
    R.Operation = ServeRequest::Op::Analyze;
    R.Payload = Source;
    R.Directions = true;
    Lines.push_back(R.toJson().str());
  }

  std::printf("edda-serve throughput: %zu analyze requests "
              "(suite scale %.2f), %u-core host\n\n",
              Lines.size(), Scale, ThreadPool::hardwareThreads());
  std::printf("%8s %10s | %12s %8s | %12s %8s | %7s\n", "clients",
              "threads", "cold req/s", "hit%", "warm req/s", "hit%",
              "speedup");
  rule(78);

  for (unsigned Clients : ClientSweep) {
    // A fresh core per row: the cold phase must really be cold.
    ServeOptions SOpts;
    SOpts.NumThreads = Clients; // Pool sized to the offered load.
    ServeCore Core(SOpts);
    Phase Cold = runPhase(Core, Lines, Clients);
    Phase Warm = runPhase(Core, Lines, Clients);
    std::printf("%8u %10u | %12.1f %7.1f%% | %12.1f %7.1f%% | %6.2fx\n",
                Clients, Core.options().NumThreads, Cold.perSec(),
                Cold.hitPct(), Warm.perSec(), Warm.hitPct(),
                Cold.Micros
                    ? static_cast<double>(Cold.Micros) /
                          static_cast<double>(Warm.Micros ? Warm.Micros
                                                          : 1)
                    : 0.0);
  }
  std::printf(
      "\nWarm phases answer from the shared store: the hit rate is the\n"
      "fraction of reference pairs served without running any test\n"
      "(constant/unanalyzable pairs are excluded from the rate).\n");
  return 0;
}
