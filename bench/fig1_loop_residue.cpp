//===- bench/fig1_loop_residue.cpp - Paper Figure 1 -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 1 and the section 3.4 walkthrough: the residue
/// graph of a difference-constraint system whose negative cycle
/// (value -1) proves independence. The paper's example constrains
/// t1 <= t3 - 4 after converting 2*t1 <= 2*t3 - 7 with the
/// floor-division extension, attaches the single-variable bounds to the
/// distinguished node n0, and finds the cycle t1 -> t3 -> n0 -> t1 of
/// value 4 + 4 - 1... rendered here with the actual graph our
/// implementation builds and the cycle Bellman-Ford reports.
///
//===----------------------------------------------------------------------===//

#include "deptest/LoopResidue.h"

#include <cstdio>

using namespace edda;

int main() {
  std::printf("Figure 1: residue graph for the section 3.4 example\n\n");

  // The paper's constraint set (0-based variable names):
  //   t0 >= 1           (n0 -> t0, weight -1)
  //   t2 <= 4           (t2 -> n0, weight 4)
  //   t1 <= t2 + 4      (t1 -> t2, weight 4; keeps t1 in the graph)
  //   2*t0 <= 2*t2 - 7  ==>  t0 <= t2 + floor(-7/2) = t2 - 4.
  // Negative cycle: n0 -> t0 -> t2 -> n0 of value -1 + -4 + 4 = -1.
  VarIntervals Intervals(3);
  Intervals.Lo[0] = 1; // t0 >= 1
  Intervals.Hi[2] = 4; // t2 <= 4
  std::vector<LinearConstraint> Multi = {
      {{0, 1, -1}, 4},  // t1 - t2 <= 4
      {{2, 0, -2}, -7}, // 2 t0 - 2 t2 <= -7  (divided exactly to -4)
  };

  ResidueResult R = runLoopResidue(3, Multi, Intervals);

  std::printf("constraints (variables t0, t1, t2):\n");
  std::printf("  t0 >= 1\n  t2 <= 4\n  t1 - t2 <= 4\n");
  std::printf("  2t0 - 2t2 <= -7   (exact integer division: t0 - t2 <= "
              "-4)\n\n");
  std::printf("residue graph (edge u -> w (W) means t_u <= t_w + W):\n");
  std::printf("%s\n", R.Graph.str().c_str());

  switch (R.St) {
  case ResidueResult::Status::Independent: {
    std::printf("negative cycle found: ");
    for (unsigned I = 0; I < R.NegativeCycle.size(); ++I) {
      unsigned Node = R.NegativeCycle[I];
      std::string Name =
          Node == 3 ? std::string("n0") : "t" + std::to_string(Node);
      std::printf("%s%s", I ? " -> " : "", Name.c_str());
    }
    std::printf("\n=> the system is INDEPENDENT (cycle value "
                "-1 + -4 + 4 = -1 < 0)\n");
    break;
  }
  case ResidueResult::Status::Dependent:
    std::printf("feasible — unexpected for this example\n");
    return 1;
  default:
    std::printf("test not applicable — unexpected\n");
    return 1;
  }
  return 0;
}
