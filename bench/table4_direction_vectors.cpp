//===- bench/table4_direction_vectors.cpp - Paper Table 4 -----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 4: tests executed when computing direction vectors
/// hierarchically with no pruning (unique cases only). The shape to
/// reproduce: direction vectors multiply the test count by more than an
/// order of magnitude, and the extra direction constraints push work
/// from SVPC into the Acyclic and Loop Residue tests (the paper's
/// observation that '<'/'>'/'=' constraints are exactly the
/// multi-variable difference constraints those tests handle).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace edda;
using namespace edda::bench;

int main() {
  AnalyzerOptions AOpts;
  AOpts.ComputeDirections = true;
  // No pruning anywhere: unused-variable elimination is one technique
  // serving both the memo tables and direction testing, so the
  // unpruned configuration uses the simple memo key too.
  AOpts.Direction.EliminateUnusedVars = false;
  AOpts.Direction.DistanceVectorPruning = false;
  AOpts.Memo.ImprovedKey = false;
  GeneratorOptions GOpts;
  std::vector<ProgramRun> Runs = runSuite(AOpts, GOpts);

  std::printf("Table 4: tests executed computing direction vectors, no "
              "pruning (measured|paper)\n\n");
  std::printf("%-4s %12s %12s %12s %12s\n", "Prog",
              stageHeader(TestKind::Svpc),
              stageHeader(TestKind::Acyclic),
              stageHeader(TestKind::LoopResidue),
              stageHeader(TestKind::FourierMotzkin));
  rule(64);

  // Paper Table 4 rows (SVPC, Acyclic, Residue, FM).
  const unsigned Paper[13][4] = {
      {363, 104, 100, 0}, {127, 48, 34, 0},   {1067, 1138, 4619, 0},
      {132, 73, 59, 0},   {120, 32, 16, 0},   {295, 124, 172, 23},
      {37, 8, 4, 0},      {309, 106, 120, 28}, {355, 110, 169, 0},
      {130, 30, 18, 0},   {169, 16, 11, 0},   {780, 267, 703, 0},
      {303, 105, 52, 106}};

  DepStats Total;
  unsigned Idx = 0;
  for (const ProgramRun &Run : Runs) {
    const DepStats &S = Run.Result.Stats;
    std::printf("%-4s  %s  %s  %s  %s\n", Run.Profile->Name.c_str(),
                cell(S.decided(TestKind::Svpc), Paper[Idx][0]).c_str(),
                cell(S.decided(TestKind::Acyclic), Paper[Idx][1])
                    .c_str(),
                cell(S.decided(TestKind::LoopResidue), Paper[Idx][2])
                    .c_str(),
                cell(S.decided(TestKind::FourierMotzkin), Paper[Idx][3])
                    .c_str());
    Total += S;
    ++Idx;
  }
  rule(64);
  std::printf("%-4s  %s  %s  %s  %s\n", "TOT",
              cell(Total.decided(TestKind::Svpc), 4187).c_str(),
              cell(Total.decided(TestKind::Acyclic), 2161).c_str(),
              cell(Total.decided(TestKind::LoopResidue), 6077).c_str(),
              cell(Total.decided(TestKind::FourierMotzkin), 157)
                  .c_str());

  uint64_t Tests = Total.decided(TestKind::Svpc) +
                   Total.decided(TestKind::Acyclic) +
                   Total.decided(TestKind::LoopResidue) +
                   Total.decided(TestKind::FourierMotzkin);
  std::printf("\nHeadline: ~%llu direction tests without pruning "
              "(paper: ~12,500 up from 332 plain tests)\n",
              static_cast<unsigned long long>(Tests));
  return 0;
}
