//===- bench/ext_shared_cache.cpp - Cross-program cache extension ---------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the paper's section 5 suggestion that went beyond what it
/// measured: "if there is similarity across programs, one could use a
/// set of benchmarks to set up a standard table which would be used by
/// all programs", and "store the hash table across compilations". Three
/// configurations over the whole suite:
///
///   per-program caches   — the paper's measured setup (Table 3);
///   one shared cache     — programs reuse each other's answers;
///   warm persisted cache — a second full compilation of the suite
///                          starting from the first run's saved table;
///   parallel shared cache — the shared-cache compilation fanned out
///                          across 1/2/4/8 worker threads; hit counts
///                          must not change with the thread count.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/Pipeline.h"
#include "parser/Parser.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace edda;
using namespace edda::bench;

namespace {

uint64_t exactTests(const DepStats &S) {
  return S.decided(TestKind::Svpc) + S.decided(TestKind::Acyclic) +
         S.decided(TestKind::LoopResidue) +
         S.decided(TestKind::FourierMotzkin);
}

/// Analyzes the whole suite through one analyzer (sharing its cache);
/// returns the accumulated stats and optionally the wall-clock cost.
DepStats runShared(DependenceAnalyzer &Analyzer,
                   const GeneratorOptions &GOpts,
                   uint64_t *Micros = nullptr) {
  auto T0 = std::chrono::steady_clock::now();
  DepStats Total;
  for (const ProgramProfile &Profile : perfectClubProfiles()) {
    std::string Source = generateProgramSource(Profile, GOpts);
    ParseResult Parsed = parseProgram(Source);
    if (!Parsed.succeeded())
      std::exit(1);
    Program Prog = std::move(*Parsed.Prog);
    Total += Analyzer.analyze(Prog).Stats;
  }
  if (Micros)
    *Micros = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  return Total;
}

} // namespace

int main() {
  GeneratorOptions GOpts;
  AnalyzerOptions AOpts;

  // Per-program caches (the paper's Table 3 configuration).
  DepStats PerProgram;
  for (const ProgramRun &Run : runSuite(AOpts, GOpts))
    PerProgram += Run.Result.Stats;

  // One shared cache across the suite.
  DependenceAnalyzer Shared(AOpts);
  DepStats SharedStats = runShared(Shared, GOpts);

  // Persist and recompile warm.
  std::string CachePath = "/tmp/edda_shared_cache.txt";
  if (!Shared.cache().saveToFile(CachePath)) {
    std::fprintf(stderr, "cannot persist cache\n");
    return 1;
  }
  DependenceAnalyzer Warm(AOpts);
  if (!Warm.cache().loadFromFile(CachePath)) {
    std::fprintf(stderr, "cannot reload cache\n");
    return 1;
  }
  DepStats WarmStats = runShared(Warm, GOpts);
  std::remove(CachePath.c_str());

  std::printf("Extension: sharing the memo tables beyond one program "
              "(paper section 5 suggestions)\n\n");
  std::printf("%-34s %14s %14s\n", "configuration", "exact tests",
              "cache hits");
  rule(66);
  std::printf("%-34s %14llu %14llu\n", "per-program caches (Table 3)",
              static_cast<unsigned long long>(exactTests(PerProgram)),
              static_cast<unsigned long long>(PerProgram.MemoHitsFull +
                                              PerProgram.MemoHitsNoBounds));
  std::printf("%-34s %14llu %14llu\n", "one cache across the suite",
              static_cast<unsigned long long>(exactTests(SharedStats)),
              static_cast<unsigned long long>(
                  SharedStats.MemoHitsFull +
                  SharedStats.MemoHitsNoBounds));
  std::printf("%-34s %14llu %14llu\n",
              "recompile with persisted cache",
              static_cast<unsigned long long>(exactTests(WarmStats)),
              static_cast<unsigned long long>(WarmStats.MemoHitsFull +
                                              WarmStats.MemoHitsNoBounds));
  rule(66);
  std::printf("\nCross-program sharing removes %.0f%% of the remaining "
              "tests; a warm cache removes all of them\n",
              100.0 *
                  (exactTests(PerProgram) - exactTests(SharedStats)) /
                  static_cast<double>(exactTests(PerProgram)));

  // The shared-cache compilation again, fanned out across worker
  // threads: the concurrent sharded cache must reproduce the exact
  // same hit counts at every thread count.
  std::printf("\nshared cache under the parallel analyzer\n");
  std::printf("%-10s %12s %14s %14s\n", "threads", "micros",
              "exact tests", "cache hits");
  rule(54);
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    AnalyzerOptions ThreadedOpts = AOpts;
    ThreadedOpts.NumThreads = Threads;
    DependenceAnalyzer Threaded(ThreadedOpts);
    uint64_t Micros = 0;
    DepStats Stats = runShared(Threaded, GOpts, &Micros);
    std::printf("%-10u %12llu %14llu %14llu\n", Threads,
                static_cast<unsigned long long>(Micros),
                static_cast<unsigned long long>(exactTests(Stats)),
                static_cast<unsigned long long>(Stats.MemoHitsFull +
                                                Stats.MemoHitsNoBounds));
    if (exactTests(Stats) != exactTests(SharedStats) ||
        Stats.MemoHitsFull + Stats.MemoHitsNoBounds !=
            SharedStats.MemoHitsFull + SharedStats.MemoHitsNoBounds) {
      std::fprintf(stderr,
                   "FAIL: %u-thread shared cache diverged from serial\n",
                   Threads);
      return 1;
    }
  }
  rule(54);
  return 0;
}
