//===- bench/table7_symbolic.cpp - Paper Table 7 --------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 7: direction vector tests with symbolic
/// (loop-invariant unknown) terms added to the suite. The shape to
/// reproduce: symbolic cases add only modestly to the totals (paper:
/// ~1,060 tests vs ~900 without), with the growth concentrated in the
/// Acyclic test — a symbolic bound or subscript term is one extra
/// unbounded variable coupled through one constraint chain.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace edda;
using namespace edda::bench;

namespace {

uint64_t exactTests(const DepStats &S) {
  return S.decided(TestKind::Svpc) + S.decided(TestKind::Acyclic) +
         S.decided(TestKind::LoopResidue) +
         S.decided(TestKind::FourierMotzkin);
}

} // namespace

int main() {
  AnalyzerOptions AOpts;
  AOpts.ComputeDirections = true;
  GeneratorOptions Symbolic;
  Symbolic.IncludeSymbolic = true;
  std::vector<ProgramRun> Runs = runSuite(AOpts, Symbolic);

  std::printf("Table 7: direction vector tests with symbolic terms "
              "(measured|paper)\n\n");
  std::printf("%-4s %12s %12s %12s %12s\n", "Prog",
              stageHeader(TestKind::Svpc),
              stageHeader(TestKind::Acyclic),
              stageHeader(TestKind::LoopResidue),
              stageHeader(TestKind::FourierMotzkin));
  rule(64);

  const unsigned Paper[13][4] = {
      {33, 22, 6, 0},  {20, 24, 19, 0}, {48, 6, 6, 0},   {15, 12, 5, 0},
      {19, 0, 0, 0},   {55, 149, 101, 7}, {5, 1, 0, 0},  {54, 20, 55, 28},
      {8, 0, 0, 0},    {21, 1, 2, 0},   {43, 0, 0, 0},   {3, 38, 72, 0},
      {35, 19, 0, 106}};

  DepStats Total;
  unsigned Idx = 0;
  for (const ProgramRun &Run : Runs) {
    const DepStats &S = Run.Result.Stats;
    std::printf("%-4s  %s  %s  %s  %s\n", Run.Profile->Name.c_str(),
                cell(S.decided(TestKind::Svpc), Paper[Idx][0]).c_str(),
                cell(S.decided(TestKind::Acyclic), Paper[Idx][1])
                    .c_str(),
                cell(S.decided(TestKind::LoopResidue), Paper[Idx][2])
                    .c_str(),
                cell(S.decided(TestKind::FourierMotzkin), Paper[Idx][3])
                    .c_str());
    Total += S;
    ++Idx;
  }
  rule(64);
  std::printf("%-4s  %s  %s  %s  %s\n", "TOT",
              cell(Total.decided(TestKind::Svpc), 359).c_str(),
              cell(Total.decided(TestKind::Acyclic), 292).c_str(),
              cell(Total.decided(TestKind::LoopResidue), 266).c_str(),
              cell(Total.decided(TestKind::FourierMotzkin), 141)
                  .c_str());

  // Comparison run without symbolic cases.
  GeneratorOptions Plain;
  DepStats Baseline;
  for (const ProgramRun &Run : runSuite(AOpts, Plain))
    Baseline += Run.Result.Stats;
  std::printf("\nHeadline: %llu tests with symbolic cases vs %llu "
              "without (paper: ~1,060 vs ~900)\n",
              static_cast<unsigned long long>(exactTests(Total)),
              static_cast<unsigned long long>(exactTests(Baseline)));
  std::printf("All symbolic answers remain exact: %llu unanalyzable "
              "pairs\n",
              static_cast<unsigned long long>(
                  Total.decided(TestKind::Unanalyzable)));
  return 0;
}
