//===- bench/ext_parallel_scaling.cpp - Parallel analyzer scaling ---------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table-2-style study of the parallel whole-program driver: wall-clock
/// and memoization statistics for the synthetic PERFECT Club suite at
/// 1/2/4/8 worker threads, confirming the determinism guarantee (every
/// thread count must produce bit-identical dependence pairs and Stats),
/// plus a shard-contention sweep of the concurrent memo cache. The
/// memo-off configuration is the embarrassingly parallel upper bound;
/// memo-on shows how much serial-phase keying limits scaling once the
/// cache absorbs most of the test work. Speedups depend on the host
/// core count (reported below).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/Pipeline.h"
#include "parser/Parser.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace edda;
using namespace edda::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct SuiteOutcome {
  DepStats Stats;
  uint64_t Micros = 0;
  /// Flattened (RefA, RefB, Answer, DecidedBy, FromCache) per pair, in
  /// order — the determinism fingerprint.
  std::vector<int64_t> Fingerprint;
};

/// Analyzes the whole suite through one analyzer configured with
/// \p Threads workers (so the suite shares one concurrent cache).
SuiteOutcome runSuiteAt(unsigned Threads, bool UseMemo, double Scale,
                        unsigned Shards = 0) {
  GeneratorOptions GOpts;
  GOpts.Scale = Scale;
  AnalyzerOptions AOpts;
  AOpts.NumThreads = Threads;
  AOpts.UseMemoization = UseMemo;
  AOpts.Memo.Shards = Shards;
  DependenceAnalyzer Analyzer(AOpts);

  SuiteOutcome Out;
  auto T0 = Clock::now();
  for (const ProgramProfile &Profile : perfectClubProfiles()) {
    std::string Source = generateProgramSource(Profile, GOpts);
    ParseResult Parsed = parseProgram(Source);
    if (!Parsed.succeeded())
      std::exit(1);
    Program Prog = std::move(*Parsed.Prog);
    AnalysisResult R = Analyzer.analyze(Prog);
    Out.Stats += R.Stats;
    for (const DependencePair &Pair : R.Pairs) {
      Out.Fingerprint.push_back(Pair.RefA);
      Out.Fingerprint.push_back(Pair.RefB);
      Out.Fingerprint.push_back(static_cast<int64_t>(Pair.Answer));
      Out.Fingerprint.push_back(static_cast<int64_t>(Pair.DecidedBy));
      Out.Fingerprint.push_back(Pair.FromCache ? 1 : 0);
    }
  }
  Out.Micros = std::chrono::duration_cast<std::chrono::microseconds>(
                   Clock::now() - T0)
                   .count();
  return Out;
}

bool sameStats(const DepStats &A, const DepStats &B) {
  return A.Decided == B.Decided &&
         A.DecidedIndependent == B.DecidedIndependent &&
         A.MemoHitsFull == B.MemoHitsFull &&
         A.MemoHitsNoBounds == B.MemoHitsNoBounds;
}

} // namespace

int main(int Argc, char **Argv) {
  // Heavier corpus than the paper tables so per-pair work dominates the
  // fixed parse cost; --scale overrides.
  double Scale = 2.0;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--scale") == 0 && I + 1 < Argc)
      Scale = std::atof(Argv[++I]);

  std::printf("Extension: parallel whole-program analysis "
              "(deterministic fan-out, sharded memo cache)\n");
  std::printf("host cores: %u, corpus scale: %.1f\n\n",
              ThreadPool::hardwareThreads(), Scale);

  const unsigned ThreadCounts[] = {1, 2, 4, 8};

  for (bool UseMemo : {true, false}) {
    std::printf("%s\n", UseMemo
                            ? "memoization ON (paper configuration)"
                            : "memoization OFF (every pair tested)");
    std::printf("  %-8s %12s %9s %12s %12s %6s\n", "threads",
                "micros", "speedup", "memo hits", "tests run",
                "same?");
    rule(66);
    SuiteOutcome Base;
    for (unsigned Threads : ThreadCounts) {
      SuiteOutcome Out = runSuiteAt(Threads, UseMemo, Scale);
      bool Identical = true;
      if (Threads == 1)
        Base = Out;
      else
        Identical = Out.Fingerprint == Base.Fingerprint &&
                    sameStats(Out.Stats, Base.Stats);
      if (!Identical) {
        std::fprintf(stderr,
                     "FAIL: %u-thread run diverged from serial\n",
                     Threads);
        return 1;
      }
      std::printf("  %-8u %12llu %8.2fx %12llu %12llu %6s\n", Threads,
                  static_cast<unsigned long long>(Out.Micros),
                  static_cast<double>(Base.Micros) /
                      static_cast<double>(Out.Micros),
                  static_cast<unsigned long long>(
                      Out.Stats.MemoHitsFull +
                      Out.Stats.MemoHitsNoBounds),
                  static_cast<unsigned long long>(
                      Out.Stats.totalDecided()),
                  Identical ? "yes" : "NO");
    }
    rule(66);
    std::printf("\n");
  }

  // Shard contention: fixed thread count, varying lock granularity.
  // One shard serializes every cache access; more shards spread them.
  unsigned Threads = 8;
  std::printf("shard contention at %u threads (memoization ON)\n",
              Threads);
  std::printf("  %-8s %12s %9s\n", "shards", "micros", "speedup");
  rule(34);
  SuiteOutcome ShardBase;
  for (unsigned Shards : {1u, 4u, 16u, 64u}) {
    SuiteOutcome Out = runSuiteAt(Threads, /*UseMemo=*/true, Scale,
                                  Shards);
    if (Shards == 1)
      ShardBase = Out;
    else if (Out.Fingerprint != ShardBase.Fingerprint ||
             !sameStats(Out.Stats, ShardBase.Stats)) {
      std::fprintf(stderr,
                   "FAIL: %u-shard run diverged from one shard\n",
                   Shards);
      return 1;
    }
    std::printf("  %-8u %12llu %8.2fx\n", Shards,
                static_cast<unsigned long long>(Out.Micros),
                static_cast<double>(ShardBase.Micros) /
                    static_cast<double>(Out.Micros));
  }
  rule(34);
  std::printf("\nDeterminism guarantee held for every configuration "
              "above (pairs and Stats bit-identical to serial).\n");
  return 0;
}
