//===- bench/ext_incremental_edit.cpp - Edit-loop re-analysis extension ---===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the incremental re-analysis layer on the synthetic PERFECT
/// Club suite: each program is loaded into an IncrementalSession, then
/// edited 1/2/4/8 times with the fuzzer's random edit model (subscript
/// tweaks, bound bumps, statement insert/delete), re-parsing and
/// re-analyzing after every edit. The session splices pairs whose
/// content fingerprints are unchanged, so the claim under test is the
/// reuse ratio — how few pairs an edit actually re-runs — with the
/// bit-identity invariant (spliced graph == from-scratch graph)
/// checked at every step. A second table isolates the headline case:
/// one single-subscript edit per program, which must re-run well under
/// 10% of the program's reference pairs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/DependenceGraph.h"
#include "analysis/Incremental.h"
#include "parser/Parser.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace edda;
using namespace edda::bench;

namespace {

uint64_t microsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

Program parseOrDie(const std::string &Source) {
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded()) {
    std::fprintf(stderr, "FAIL: edited program does not parse\n");
    std::exit(1);
  }
  return std::move(*Parsed.Prog);
}

/// One edit session over one profile: apply \p NumEdits random edits,
/// re-analyzing incrementally after each and checking bit-identity
/// against a cold from-scratch analyzer on every step.
struct SessionRun {
  uint64_t Pairs = 0; ///< Sum of PairsTotal over the edit updates.
  uint64_t Reused = 0;
  uint64_t Invalidated = 0;
  uint64_t IncrMicros = 0;
  uint64_t ScratchMicros = 0;
};

SessionRun runEdits(const std::string &Source, unsigned NumEdits,
                    uint64_t Seed) {
  AnalyzerOptions AO;
  AO.ComputeDirections = true;

  IncrementalSession Session{AO};
  Session.update(parseOrDie(Source));

  SessionRun Run;
  SplitRng Rng(Seed);
  for (unsigned Step = 0; Step < NumEdits; ++Step) {
    // Edit the session's current program and round-trip it through
    // the printer, as the serving edit loop does.
    Program Edited = parseOrDie(Session.program().print());
    applyRandomEdit(Edited, Rng);
    std::string EditedSource = Edited.print();

    auto T0 = std::chrono::steady_clock::now();
    ReanalyzeStats RS = Session.update(parseOrDie(EditedSource));
    Run.IncrMicros += microsSince(T0);
    Run.Pairs += RS.PairsTotal;
    Run.Reused += RS.PairsReused;
    Run.Invalidated += RS.PairsInvalidated;

    // The from-scratch reference: a cold analyzer on the same source.
    T0 = std::chrono::steady_clock::now();
    DependenceAnalyzer Scratch(AO);
    Program Fresh = parseOrDie(EditedSource);
    AnalysisResult Result = Scratch.analyze(Fresh);
    Run.ScratchMicros += microsSince(T0);

    DependenceGraph Want = DependenceGraph::buildFromResult(Result);
    if (Session.graph().str(Session.program()) != Want.str(Fresh)) {
      std::fprintf(stderr,
                   "FAIL: spliced graph diverged from scratch "
                   "(seed %llu, step %u)\n",
                   static_cast<unsigned long long>(Seed), Step);
      std::exit(1);
    }
  }
  return Run;
}

/// Finds a seed whose first edit is a subscript tweak (the headline
/// single-statement-edit case) and returns that one-edit run.
SessionRun runSubscriptEdit(const std::string &Source, uint64_t Base) {
  for (uint64_t Probe = 0; Probe < 64; ++Probe) {
    Program Prog = parseOrDie(Source);
    SplitRng Rng(Base + Probe);
    if (applyRandomEdit(Prog, Rng).rfind("subscript", 0) == 0)
      return runEdits(Source, 1, Base + Probe);
  }
  std::fprintf(stderr, "FAIL: no subscript edit in 64 probes\n");
  std::exit(1);
}

} // namespace

int main() {
  GeneratorOptions GOpts;
  const std::vector<ProgramProfile> &Profiles = perfectClubProfiles();

  std::printf("Extension: incremental re-analysis across edit "
              "sessions (fingerprint splicing)\n\n");
  std::printf("%-8s %10s %10s %12s %8s %12s %12s\n", "edits", "pairs",
              "reused", "invalidated", "rerun%", "incr us",
              "scratch us");
  rule(78);
  for (unsigned NumEdits : {1u, 2u, 4u, 8u}) {
    SessionRun Total;
    for (size_t I = 0; I < Profiles.size(); ++I) {
      std::string Source = generateProgramSource(Profiles[I], GOpts);
      SessionRun Run =
          runEdits(Source, NumEdits, 0x5eed + I * 131 + NumEdits);
      Total.Pairs += Run.Pairs;
      Total.Reused += Run.Reused;
      Total.Invalidated += Run.Invalidated;
      Total.IncrMicros += Run.IncrMicros;
      Total.ScratchMicros += Run.ScratchMicros;
    }
    std::printf("%-8u %10llu %10llu %12llu %7.1f%% %12llu %12llu\n",
                NumEdits, static_cast<unsigned long long>(Total.Pairs),
                static_cast<unsigned long long>(Total.Reused),
                static_cast<unsigned long long>(Total.Invalidated),
                100.0 * Total.Invalidated /
                    static_cast<double>(Total.Pairs ? Total.Pairs : 1),
                static_cast<unsigned long long>(Total.IncrMicros),
                static_cast<unsigned long long>(Total.ScratchMicros));
  }
  rule(78);

  // The headline claim: a single-subscript edit re-runs only the
  // pairs that reference the edited statement — under 10% of the
  // program on every profile.
  std::printf("\nsingle subscript edit per program\n");
  std::printf("%-14s %10s %12s %8s\n", "program", "pairs",
              "invalidated", "rerun%");
  rule(48);
  bool Ok = true;
  for (size_t I = 0; I < Profiles.size(); ++I) {
    std::string Source = generateProgramSource(Profiles[I], GOpts);
    SessionRun Run = runSubscriptEdit(Source, 0xed17 + I * 977);
    double Pct = 100.0 * Run.Invalidated /
                 static_cast<double>(Run.Pairs ? Run.Pairs : 1);
    std::printf("%-14s %10llu %12llu %7.1f%%\n",
                Profiles[I].Name.c_str(),
                static_cast<unsigned long long>(Run.Pairs),
                static_cast<unsigned long long>(Run.Invalidated), Pct);
    if (Pct >= 10.0)
      Ok = false;
  }
  rule(48);
  if (!Ok) {
    std::fprintf(stderr,
                 "FAIL: a single-subscript edit re-ran >= 10%% of "
                 "a program's pairs\n");
    return 1;
  }
  std::printf("\nEvery single-statement edit re-ran under 10%% of its "
              "program's pairs\n");
  return 0;
}
