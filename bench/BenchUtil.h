//===- bench/BenchUtil.h - Shared bench harness ----------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure reproductions: run the
/// synthetic PERFECT Club suite through the analyzer under a given
/// configuration and collect per-program statistics, with helpers for
/// the paper-style table rendering ("measured | paper").
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_BENCH_BENCHUTIL_H
#define EDDA_BENCH_BENCHUTIL_H

#include "analysis/Analyzer.h"
#include "workload/Generator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace edda {
namespace bench {

/// One program's outcome.
struct ProgramRun {
  const ProgramProfile *Profile = nullptr;
  AnalysisResult Result;
  /// Wall-clock cost of parsing + prepass (microseconds).
  uint64_t CompileMicros = 0;
  /// Wall-clock cost of dependence analysis proper (microseconds).
  uint64_t AnalysisMicros = 0;
};

/// Runs the whole synthetic suite. Generation is deterministic; the
/// analyzer (and its cache) is fresh per program, as in the paper's
/// per-compilation tables.
std::vector<ProgramRun> runSuite(const AnalyzerOptions &AOpts,
                                 const GeneratorOptions &GOpts);

/// Column header for a test kind, taken from the pipeline stage
/// registry so table headers track the stages' own labels.
inline const char *stageHeader(TestKind Kind) {
  return stageForKind(Kind)->label();
}

/// Prints "measured|paper" in a fixed-width cell.
std::string cell(uint64_t Measured, uint64_t Paper);

/// Prints a horizontal rule sized for \p Width.
void rule(unsigned Width);

} // namespace bench
} // namespace edda

#endif // EDDA_BENCH_BENCHUTIL_H
