//===- bench/micro_test_cost.cpp - Per-test cost microbenchmarks ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the section 7 per-test timings. On a 12-MIPS MIPS R2000
/// the paper measured SVPC ~0.1 ms, Acyclic ~0.5 ms, Loop Residue
/// ~0.9 ms and Fourier-Motzkin ~3 ms per test; absolute numbers shrink
/// by orders of magnitude on modern hardware, but the *ordering* — the
/// justification for the cascade's cheapest-first order — is the shape
/// to reproduce. Each benchmark drives the full cascade on an input
/// that its target test decides, plus memoized-lookup and baseline
/// comparisons.
///
//===----------------------------------------------------------------------===//

#include "deptest/Banerjee.h"
#include "deptest/Cascade.h"
#include "deptest/Direction.h"
#include "deptest/Memo.h"

#include "benchmark/benchmark.h"

using namespace edda;

namespace {

/// Builders for representative problems, one per deciding test (the
/// same shapes the unit tests verify the deciders of).
DependenceProblem makeProblem(unsigned LoopsA, unsigned LoopsB,
                              unsigned Common) {
  DependenceProblem P;
  P.NumLoopsA = LoopsA;
  P.NumLoopsB = LoopsB;
  P.NumCommon = Common;
  P.Lo.resize(P.numLoopVars());
  P.Hi.resize(P.numLoopVars());
  return P;
}

void constBounds(DependenceProblem &P, unsigned Var, int64_t Lo,
                 int64_t Hi) {
  XAffine L(P.numX()), H(P.numX());
  L.Const = Lo;
  H.Const = Hi;
  P.Lo[Var] = std::move(L);
  P.Hi[Var] = std::move(H);
}

DependenceProblem svpcProblem() {
  DependenceProblem P = makeProblem(1, 1, 1);
  XAffine Eq(2);
  Eq.Coeffs = {1, -1};
  Eq.Const = 3;
  P.Equations.push_back(std::move(Eq));
  constBounds(P, 0, 1, 100);
  constBounds(P, 1, 1, 100);
  return P;
}

DependenceProblem acyclicProblem() {
  DependenceProblem P = makeProblem(2, 2, 2);
  XAffine Eq(4);
  Eq.Coeffs = {0, 1, 0, -1};
  Eq.Const = -2;
  P.Equations.push_back(std::move(Eq));
  constBounds(P, 0, 1, 100);
  constBounds(P, 2, 1, 100);
  XAffine Lo1(4), Hi1(4), Lo3(4), Hi3(4);
  Lo1.Const = 1;
  Hi1.Coeffs[0] = 1; // j <= i
  Lo3.Const = 1;
  Hi3.Coeffs[2] = 1; // j' <= i'
  P.Lo[1] = std::move(Lo1);
  P.Hi[1] = std::move(Hi1);
  P.Lo[3] = std::move(Lo3);
  P.Hi[3] = std::move(Hi3);
  return P;
}

DependenceProblem residueProblem() {
  DependenceProblem P = makeProblem(2, 2, 2);
  XAffine Eq(4);
  Eq.Coeffs = {0, 1, 0, -1};
  Eq.Const = -1;
  P.Equations.push_back(std::move(Eq));
  constBounds(P, 0, 1, 100);
  constBounds(P, 2, 1, 100);
  // j in [i - 2, i + 2] and likewise for the primed copy.
  XAffine Lo1(4), Hi1(4), Lo3(4), Hi3(4);
  Lo1.Coeffs[0] = 1;
  Lo1.Const = -2;
  Hi1.Coeffs[0] = 1;
  Hi1.Const = 2;
  Lo3.Coeffs[2] = 1;
  Lo3.Const = -2;
  Hi3.Coeffs[2] = 1;
  Hi3.Const = 2;
  P.Lo[1] = std::move(Lo1);
  P.Hi[1] = std::move(Hi1);
  P.Lo[3] = std::move(Lo3);
  P.Hi[3] = std::move(Hi3);
  return P;
}

DependenceProblem fmProblem() {
  DependenceProblem P = makeProblem(2, 2, 2);
  XAffine Eq(4);
  Eq.Coeffs = {1, 1, -1, -1};
  Eq.Const = -5;
  P.Equations.push_back(std::move(Eq));
  for (unsigned V = 0; V < 4; ++V)
    constBounds(P, V, 1, 100);
  return P;
}

DependenceProblem gcdProblem() {
  DependenceProblem P = makeProblem(1, 1, 1);
  XAffine Eq(2);
  Eq.Coeffs = {2, -2};
  Eq.Const = -1;
  P.Equations.push_back(std::move(Eq));
  constBounds(P, 0, 1, 100);
  constBounds(P, 1, 1, 100);
  return P;
}

void checkDecider(const DependenceProblem &P, TestKind Expected) {
  CascadeResult R = testDependence(P);
  if (R.DecidedBy != Expected) {
    std::fprintf(stderr, "benchmark input decided by %s, expected %s\n",
                 testKindName(R.DecidedBy), testKindName(Expected));
    std::abort();
  }
}

void benchCascade(benchmark::State &State, DependenceProblem P,
                  TestKind Expected) {
  checkDecider(P, Expected);
  for (auto _ : State) {
    CascadeResult R = testDependence(P);
    benchmark::DoNotOptimize(R);
  }
}

} // namespace

static void BM_CascadeGcd(benchmark::State &State) {
  benchCascade(State, gcdProblem(), TestKind::GcdTest);
}
BENCHMARK(BM_CascadeGcd);

static void BM_CascadeSvpc(benchmark::State &State) {
  benchCascade(State, svpcProblem(), TestKind::Svpc);
}
BENCHMARK(BM_CascadeSvpc);

static void BM_CascadeAcyclic(benchmark::State &State) {
  benchCascade(State, acyclicProblem(), TestKind::Acyclic);
}
BENCHMARK(BM_CascadeAcyclic);

static void BM_CascadeLoopResidue(benchmark::State &State) {
  benchCascade(State, residueProblem(), TestKind::LoopResidue);
}
BENCHMARK(BM_CascadeLoopResidue);

static void BM_CascadeFourierMotzkin(benchmark::State &State) {
  benchCascade(State, fmProblem(), TestKind::FourierMotzkin);
}
BENCHMARK(BM_CascadeFourierMotzkin);

static void BM_DirectionVectors(benchmark::State &State) {
  DependenceProblem P = svpcProblem();
  for (auto _ : State) {
    DirectionResult R = computeDirectionVectors(P);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_DirectionVectors);

static void BM_MemoizedLookup(benchmark::State &State) {
  DependenceProblem P = svpcProblem();
  DependenceCache Cache;
  Cache.insertFull(P, testDependence(P));
  for (auto _ : State) {
    auto R = Cache.lookupFull(P);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_MemoizedLookup);

static void BM_BaselineGcdBanerjee(benchmark::State &State) {
  DependenceProblem P = svpcProblem();
  for (auto _ : State) {
    BaselineAnswer R = baselineGcdBanerjee(P);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_BaselineGcdBanerjee);

BENCHMARK_MAIN();
