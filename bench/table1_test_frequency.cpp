//===- bench/table1_test_frequency.cpp - Paper Table 1 --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1: the number of times each cascade test decides a
/// dependence question, per program, with memoization and direction
/// vectors off. The shape to reproduce: array constants and SVPC
/// dominate; Acyclic, Loop Residue and Fourier-Motzkin together decide
/// only a few percent of the questions; no question is left unanswered.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace edda;
using namespace edda::bench;

int main() {
  AnalyzerOptions AOpts;
  AOpts.UseMemoization = false;
  AOpts.ComputeDirections = false;
  GeneratorOptions GOpts;

  std::vector<ProgramRun> Runs = runSuite(AOpts, GOpts);

  std::printf("Table 1: number of times each test decided a question "
              "(measured|paper)\n");
  std::printf("Suite: synthetic PERFECT Club (see DESIGN.md "
              "substitutions)\n\n");
  std::printf("%-4s %6s %12s %12s %12s %12s %12s %12s\n", "Prog",
              "Lines", stageHeader(TestKind::ArrayConstant),
              stageHeader(TestKind::GcdTest),
              stageHeader(TestKind::Svpc),
              stageHeader(TestKind::Acyclic),
              stageHeader(TestKind::LoopResidue),
              stageHeader(TestKind::FourierMotzkin));
  rule(100);

  DepStats Total;
  DecisionTargets PaperTotal;
  for (const ProgramRun &Run : Runs) {
    const DecisionTargets &T = Run.Profile->Table1;
    const DepStats &S = Run.Result.Stats;
    std::printf(
        "%-4s %6u  %s  %s  %s  %s  %s  %s\n",
        Run.Profile->Name.c_str(), Run.Profile->Lines,
        cell(S.decided(TestKind::ArrayConstant), T.Constant).c_str(),
        cell(S.decided(TestKind::GcdTest), T.Gcd).c_str(),
        cell(S.decided(TestKind::Svpc), T.Svpc).c_str(),
        cell(S.decided(TestKind::Acyclic), T.Acyclic).c_str(),
        cell(S.decided(TestKind::LoopResidue), T.Residue).c_str(),
        cell(S.decided(TestKind::FourierMotzkin), T.Fm).c_str());
    Total += S;
    PaperTotal.Constant += T.Constant;
    PaperTotal.Gcd += T.Gcd;
    PaperTotal.Svpc += T.Svpc;
    PaperTotal.Acyclic += T.Acyclic;
    PaperTotal.Residue += T.Residue;
    PaperTotal.Fm += T.Fm;
  }
  rule(100);
  std::printf(
      "%-4s %6s  %s  %s  %s  %s  %s  %s\n", "TOT", "",
      cell(Total.decided(TestKind::ArrayConstant), PaperTotal.Constant)
          .c_str(),
      cell(Total.decided(TestKind::GcdTest), PaperTotal.Gcd).c_str(),
      cell(Total.decided(TestKind::Svpc), PaperTotal.Svpc).c_str(),
      cell(Total.decided(TestKind::Acyclic), PaperTotal.Acyclic).c_str(),
      cell(Total.decided(TestKind::LoopResidue), PaperTotal.Residue)
          .c_str(),
      cell(Total.decided(TestKind::FourierMotzkin), PaperTotal.Fm)
          .c_str());

  std::printf("\nUnanalyzable pairs: %llu (must be 0)\n",
              static_cast<unsigned long long>(
                  Total.decided(TestKind::Unanalyzable)));
  // The PERFECT-style suite has modest coefficients, so the 128-bit
  // widening ladder must never fire here; a nonzero count means the
  // 64-bit fast path regressed. run_benches.sh --json scrapes this.
  std::printf("Widened queries: %llu (64-bit fast path must stay 0)\n",
              static_cast<unsigned long long>(Total.WidenedQueries));
  std::printf("Shape check: SVPC decides %.1f%% of the non-constant "
              "exact tests (paper: %.1f%%)\n",
              100.0 * Total.decided(TestKind::Svpc) /
                  (Total.decided(TestKind::Svpc) +
                   Total.decided(TestKind::Acyclic) +
                   Total.decided(TestKind::LoopResidue) +
                   Total.decided(TestKind::FourierMotzkin)),
              100.0 * 5176 / (5176 + 323 + 6 + 174));
  return 0;
}
