//===- bench/BenchUtil.cpp - Shared bench harness --------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/Pipeline.h"
#include "parser/Parser.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace edda;
using namespace edda::bench;

std::vector<ProgramRun> edda::bench::runSuite(
    const AnalyzerOptions &AOpts, const GeneratorOptions &GOpts) {
  using Clock = std::chrono::steady_clock;
  std::vector<ProgramRun> Runs;
  for (const ProgramProfile &Profile : perfectClubProfiles()) {
    ProgramRun Run;
    Run.Profile = &Profile;

    std::string Source = generateProgramSource(Profile, GOpts);
    auto T0 = Clock::now();
    ParseResult Parsed = parseProgram(Source);
    if (!Parsed.succeeded()) {
      std::fprintf(stderr, "generated program %s failed to parse\n",
                   Profile.Name.c_str());
      std::exit(1);
    }
    Program Prog = std::move(*Parsed.Prog);
    runPrepass(Prog);
    auto T1 = Clock::now();

    AnalyzerOptions Opts = AOpts;
    Opts.RunPrepass = false; // already done (timed separately)
    DependenceAnalyzer Analyzer(Opts);
    Run.Result = Analyzer.analyze(Prog);
    auto T2 = Clock::now();

    Run.CompileMicros =
        std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0)
            .count();
    Run.AnalysisMicros =
        std::chrono::duration_cast<std::chrono::microseconds>(T2 - T1)
            .count();
    Runs.push_back(std::move(Run));
  }
  return Runs;
}

std::string edda::bench::cell(uint64_t Measured, uint64_t Paper) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%5llu|%-5llu",
                static_cast<unsigned long long>(Measured),
                static_cast<unsigned long long>(Paper));
  return Buffer;
}

void edda::bench::rule(unsigned Width) {
  for (unsigned I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}
