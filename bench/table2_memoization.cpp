//===- bench/table2_memoization.cpp - Paper Table 2 -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 2: the percentage of unique dependence questions
/// per program, for the without-bounds (GCD) and with-bounds tables,
/// under the simple scheme (problem keyed verbatim) and the improved
/// scheme (unused loop variables removed first). The shape to
/// reproduce: only a few percent of questions are unique, and the
/// improved scheme is strictly better. Also compares the collision
/// behaviour of the paper's literal hash function against a modern
/// mixing hash over the same key sets.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "deptest/Cascade.h"
#include "deptest/Memo.h"
#include "opt/Pipeline.h"
#include "parser/Parser.h"
#include "support/Hashing.h"

#include <cstdio>
#include <cstdlib>
#include <set>

using namespace edda;
using namespace edda::bench;

int main() {
  GeneratorOptions GOpts;
  MemoOptions SimpleOpts;
  SimpleOpts.ImprovedKey = false;
  DependenceCache SimpleKeys{SimpleOpts};
  MemoOptions ImprovedOpts;
  ImprovedOpts.ImprovedKey = true;
  DependenceCache ImprovedKeys{ImprovedOpts};

  std::printf("Table 2: percentage of unique cases (simple vs improved "
              "memoization scheme)\n\n");
  std::printf("%-4s | %28s | %38s\n", "", "Without bounds (GCD table)",
              "With bounds (full table)");
  std::printf("%-4s | %8s %9s %9s | %8s %9s %9s %9s\n", "Prog", "Total",
              "Simple%", "Improv%", "Total", "Simple%", "Improv%",
              "paper S/I");
  rule(106);

  std::set<std::vector<int64_t>> AllKeys;
  uint64_t GrandTotal = 0, GrandSimple = 0, GrandImproved = 0;
  uint64_t GrandNbTotal = 0, GrandNbSimple = 0, GrandNbImproved = 0;

  // Table 2's published with-bounds percentages, for the rightmost
  // column (simple/improved).
  const char *PaperSI[] = {"6.4/4.4",  "16.2/14.1", "47.9/31.5",
                           "23.4/22.1", "6.4/4.3",  "7.9/6.9",
                           "19.4/13.9", "9.5/8.8",  "4.9/3.0",
                           "1.6/1.1",  "2.9/2.4",  "34.8/23.9",
                           "14.2/11.6"};

  unsigned ProfileIdx = 0;
  for (const ProgramProfile &Profile : perfectClubProfiles()) {
    std::string Source = generateProgramSource(Profile, GOpts);
    ParseResult Parsed = parseProgram(Source);
    if (!Parsed.succeeded())
      return 1;
    Program Prog = std::move(*Parsed.Prog);
    runPrepass(Prog);

    std::vector<ArrayReference> Refs = collectReferences(Prog);
    std::set<std::vector<int64_t>> NbSimple, NbImproved, FullSimple,
        FullImproved;
    uint64_t NbTotal = 0, FullTotal = 0;

    for (unsigned I = 0; I < Refs.size(); ++I) {
      for (unsigned J = I; J < Refs.size(); ++J) {
        if (!Refs[I].IsWrite && !Refs[J].IsWrite)
          continue;
        if (Refs[I].ArrayId != Refs[J].ArrayId)
          continue;
        std::optional<BuiltProblem> Built =
            buildProblem(Prog, Refs[I], Refs[J]);
        if (!Built)
          continue;
        CascadeResult R = testDependence(Built->Problem);
        if (R.DecidedBy == TestKind::ArrayConstant ||
            R.DecidedBy == TestKind::Unanalyzable)
          continue;
        bool Swapped;
        // The GCD (no-bounds) table sees every tested case.
        ++NbTotal;
        NbSimple.insert(
            SimpleKeys.keyFor(Built->Problem, false, Swapped));
        NbImproved.insert(
            ImprovedKeys.keyFor(Built->Problem, false, Swapped));
        if (R.DecidedBy == TestKind::GcdTest)
          continue; // decided without bounds
        ++FullTotal;
        std::vector<int64_t> Key =
            SimpleKeys.keyFor(Built->Problem, true, Swapped);
        AllKeys.insert(Key);
        FullSimple.insert(std::move(Key));
        FullImproved.insert(
            ImprovedKeys.keyFor(Built->Problem, true, Swapped));
      }
    }

    auto Pct = [](size_t Num, uint64_t Den) {
      return Den == 0 ? 0.0 : 100.0 * Num / Den;
    };
    std::printf("%-4s | %8llu %8.1f%% %8.1f%% | %8llu %8.1f%% %8.1f%% "
                "%9s\n",
                Profile.Name.c_str(),
                static_cast<unsigned long long>(NbTotal),
                Pct(NbSimple.size(), NbTotal),
                Pct(NbImproved.size(), NbTotal),
                static_cast<unsigned long long>(FullTotal),
                Pct(FullSimple.size(), FullTotal),
                Pct(FullImproved.size(), FullTotal),
                PaperSI[ProfileIdx]);
    GrandTotal += FullTotal;
    GrandSimple += FullSimple.size();
    GrandImproved += FullImproved.size();
    GrandNbTotal += NbTotal;
    GrandNbSimple += NbSimple.size();
    GrandNbImproved += NbImproved.size();
    ++ProfileIdx;
  }
  rule(106);
  std::printf("%-4s | %8llu %8.1f%% %8.1f%% | %8llu %8.1f%% %8.1f%% "
              "%9s\n\n",
              "TOT", static_cast<unsigned long long>(GrandNbTotal),
              100.0 * GrandNbSimple / GrandNbTotal,
              100.0 * GrandNbImproved / GrandNbTotal,
              static_cast<unsigned long long>(GrandTotal),
              100.0 * GrandSimple / GrandTotal,
              100.0 * GrandImproved / GrandTotal, "7.3/5.8");

  // Hash comparison over the unique with-bounds keys (simple scheme):
  // distinct hash values vs distinct keys.
  std::set<uint64_t> PaperHashes, MixHashes;
  for (const std::vector<int64_t> &Key : AllKeys) {
    PaperHashes.insert(paperHash(Key));
    MixHashes.insert(hashVector(Key));
  }
  std::printf("Hash study over %zu unique keys:\n", AllKeys.size());
  std::printf("  paper hash  h(x)=size+sum 2^i*x_i : %zu distinct "
              "values (%zu collisions)\n",
              PaperHashes.size(), AllKeys.size() - PaperHashes.size());
  std::printf("  mixing hash (splitmix)            : %zu distinct "
              "values (%zu collisions)\n",
              MixHashes.size(), AllKeys.size() - MixHashes.size());
  return 0;
}
