//===- bench/section7_accuracy.cpp - Paper section 7 accuracy study -------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the section 7 accuracy comparison against traditional
/// inexact tests:
///
///   * plain answers: simple GCD + trapezoidal Banerjee found 415 of
///     482 independent pairs (missed 16%);
///   * direction vectors: GCD + Wolfe's rectangular per-direction test
///     (unused variables eliminated) reported 8,314 vectors vs the
///     exact 6,828 (22% spurious).
///
/// Also reports the per-test independence rates of section 7 (how often
/// each cascade test returns independent) — the justification for
/// running every test in the cascade.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baseline/Banerjee.h"
#include "opt/Pipeline.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace edda;
using namespace edda::bench;

int main() {
  GeneratorOptions GOpts;
  AnalyzerOptions Directions;
  Directions.ComputeDirections = true;

  uint64_t ExactIndependent = 0, BaselineIndependent = 0;
  uint64_t PairsTested = 0;
  uint64_t ExactVectors = 0, BaselineVectors = 0;

  for (const ProgramProfile &Profile : perfectClubProfiles()) {
    std::string Source = generateProgramSource(Profile, GOpts);
    ParseResult Parsed = parseProgram(Source);
    if (!Parsed.succeeded())
      return 1;
    Program Prog = std::move(*Parsed.Prog);
    runPrepass(Prog);

    AnalyzerOptions Opts = Directions;
    Opts.RunPrepass = false;
    DependenceAnalyzer Analyzer(Opts);
    AnalysisResult R = Analyzer.analyze(Prog);

    for (const DependencePair &Pair : R.Pairs) {
      // The paper's comparison is over pairs that need real testing;
      // constant subscripts are handled before any test runs.
      if (Pair.DecidedBy == TestKind::ArrayConstant)
        continue;
      std::optional<BuiltProblem> Built = buildProblem(
          Prog, R.Refs[Pair.RefA], R.Refs[Pair.RefB]);
      if (!Built)
        continue;
      ++PairsTested;
      if (Pair.Answer == DepAnswer::Independent)
        ++ExactIndependent;
      if (baselineGcdBanerjee(Built->Problem) ==
          BaselineAnswer::Independent)
        ++BaselineIndependent;

      if (Pair.Directions)
        ExactVectors += Pair.Directions->Vectors.size();
      DirectionResult Inexact =
          baselineDirectionVectors(Built->Problem);
      if (Inexact.RootAnswer == DepAnswer::Independent)
        continue;
      BaselineVectors += Inexact.Vectors.size();
    }
  }

  std::printf("Section 7: exact cascade vs traditional inexact tests\n\n");
  std::printf("independence (of %llu analyzable pairs):\n",
              static_cast<unsigned long long>(PairsTested));
  std::printf("  exact cascade:        %llu independent\n",
              static_cast<unsigned long long>(ExactIndependent));
  std::printf("  simple GCD + Banerjee: %llu independent (missed "
              "%.1f%%; paper: 415/482 found, 16%% missed)\n",
              static_cast<unsigned long long>(BaselineIndependent),
              ExactIndependent == 0
                  ? 0.0
                  : 100.0 *
                        (ExactIndependent - BaselineIndependent) /
                        static_cast<double>(ExactIndependent));
  std::printf("\ndirection vectors:\n");
  std::printf("  exact:                 %llu vectors\n",
              static_cast<unsigned long long>(ExactVectors));
  std::printf("  GCD + Wolfe rectangular: %llu vectors (%.1f%% extra; "
              "paper: 8,314 vs 6,828 = 22%% extra)\n",
              static_cast<unsigned long long>(BaselineVectors),
              ExactVectors == 0
                  ? 0.0
                  : 100.0 * (BaselineVectors - ExactVectors) /
                        static_cast<double>(ExactVectors));

  // Per-test independence rates (paper: SVPC 40/308, Acyclic 14/172,
  // Residue 131/276, FM 82/141 over the Table 5 direction tests).
  AnalyzerOptions Opts = Directions;
  DepStats Total;
  for (const ProgramRun &Run : runSuite(Opts, GOpts))
    Total += Run.Result.Stats;
  std::printf("\nper-test independence rates over direction tests "
              "(measured; paper in parens):\n");
  struct Row {
    TestKind Kind;
    const char *Paper;
  };
  const Row Rows[] = {
      {TestKind::Svpc, "40/308"},
      {TestKind::Acyclic, "14/172"},
      {TestKind::LoopResidue, "131/276"},
      {TestKind::FourierMotzkin, "82/141"},
  };
  for (const Row &R2 : Rows)
    std::printf("  %-16s %llu/%llu independent  (paper %s)\n",
                testKindName(R2.Kind),
                static_cast<unsigned long long>(
                    Total.decidedIndependent(R2.Kind)),
                static_cast<unsigned long long>(Total.decided(R2.Kind)),
                R2.Paper);
  return 0;
}
