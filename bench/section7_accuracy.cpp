//===- bench/section7_accuracy.cpp - Paper section 7 accuracy study -------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the section 7 accuracy comparison against traditional
/// inexact tests:
///
///   * plain answers: simple GCD + trapezoidal Banerjee found 415 of
///     482 independent pairs (missed 16%);
///   * direction vectors: GCD + Wolfe's rectangular per-direction test
///     (unused variables eliminated) reported 8,314 vectors vs the
///     exact 6,828 (22% spurious).
///
/// Both sides run through the same whole-program analyzer; the inexact
/// side selects the `banerjee` pipeline (CascadeOptions::Pipeline), so
/// the comparison exercises the identical ref enumeration, memoization
/// and direction-vector machinery with only the dependence test swapped.
///
/// Also reports the per-test independence rates of section 7 (how often
/// each cascade test returns independent) — the justification for
/// running every test in the cascade.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/Pipeline.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace edda;
using namespace edda::bench;

int main() {
  GeneratorOptions GOpts;

  // Exact side: the default pipeline with the paper's direction
  // configuration. Inexact side: the Banerjee baseline through the
  // same analyzer — unused variables eliminated but no distance
  // pruning, since pruning needs the exact tests' distance info (the
  // configuration the paper measured for the traditional tests).
  AnalyzerOptions ExactOpts;
  ExactOpts.ComputeDirections = true;
  ExactOpts.RunPrepass = false;

  AnalyzerOptions BanerjeeOpts = ExactOpts;
  BanerjeeOpts.Cascade.Pipeline = makePipeline("banerjee");
  BanerjeeOpts.Direction.Cascade = BanerjeeOpts.Cascade;
  BanerjeeOpts.Direction.DistanceVectorPruning = false;
  if (!BanerjeeOpts.Cascade.Pipeline)
    return 1;

  // The plain-answer comparison must see the root Banerjee test alone:
  // with directions on, the enumeration's branch & bound upgrades an
  // unknown root to independent whenever every vector is refuted, which
  // would hide exactly the misses section 7 measures.
  AnalyzerOptions BanerjeePlainOpts = BanerjeeOpts;
  BanerjeePlainOpts.ComputeDirections = false;

  uint64_t ExactIndependent = 0, BaselineIndependent = 0;
  uint64_t PairsTested = 0;
  uint64_t ExactVectors = 0, BaselineVectors = 0;

  for (const ProgramProfile &Profile : perfectClubProfiles()) {
    std::string Source = generateProgramSource(Profile, GOpts);
    ParseResult Parsed = parseProgram(Source);
    if (!Parsed.succeeded())
      return 1;
    Program Prog = std::move(*Parsed.Prog);
    runPrepass(Prog);

    DependenceAnalyzer Exact(ExactOpts);
    AnalysisResult R = Exact.analyze(Prog);
    DependenceAnalyzer Banerjee(BanerjeeOpts);
    AnalysisResult B = Banerjee.analyze(Prog);
    DependenceAnalyzer BanerjeePlain(BanerjeePlainOpts);
    AnalysisResult BP = BanerjeePlain.analyze(Prog);
    // All analyzers enumerate the same refs in the same order, so the
    // pair lists line up index for index.
    if (B.Pairs.size() != R.Pairs.size() ||
        BP.Pairs.size() != R.Pairs.size())
      return 1;

    for (size_t I = 0; I < R.Pairs.size(); ++I) {
      const DependencePair &Pair = R.Pairs[I];
      const DependencePair &BPair = B.Pairs[I];
      const DependencePair &BPlain = BP.Pairs[I];
      // The paper's comparison is over pairs that need real testing;
      // constant subscripts are handled before any test runs, and
      // unanalyzable pairs never reach either engine.
      if (Pair.DecidedBy == TestKind::ArrayConstant ||
          Pair.DecidedBy == TestKind::Unanalyzable)
        continue;
      ++PairsTested;
      if (Pair.Answer == DepAnswer::Independent)
        ++ExactIndependent;
      if (BPlain.Answer == DepAnswer::Independent)
        ++BaselineIndependent;

      if (Pair.Directions)
        ExactVectors += Pair.Directions->Vectors.size();
      if (BPair.Directions)
        BaselineVectors += BPair.Directions->Vectors.size();
    }
  }

  std::printf("Section 7: exact cascade vs traditional inexact tests\n");
  std::printf("(both via the analyzer; inexact = --pipeline=banerjee)\n\n");
  std::printf("independence (of %llu analyzable pairs):\n",
              static_cast<unsigned long long>(PairsTested));
  std::printf("  exact cascade:        %llu independent\n",
              static_cast<unsigned long long>(ExactIndependent));
  std::printf("  simple GCD + Banerjee: %llu independent (missed "
              "%.1f%%; paper: 415/482 found, 16%% missed)\n",
              static_cast<unsigned long long>(BaselineIndependent),
              ExactIndependent == 0
                  ? 0.0
                  : 100.0 *
                        (ExactIndependent - BaselineIndependent) /
                        static_cast<double>(ExactIndependent));
  std::printf("\ndirection vectors:\n");
  std::printf("  exact:                 %llu vectors\n",
              static_cast<unsigned long long>(ExactVectors));
  std::printf("  GCD + Wolfe rectangular: %llu vectors (%.1f%% extra; "
              "paper: 8,314 vs 6,828 = 22%% extra)\n",
              static_cast<unsigned long long>(BaselineVectors),
              ExactVectors == 0
                  ? 0.0
                  : 100.0 * (BaselineVectors - ExactVectors) /
                        static_cast<double>(ExactVectors));

  // Per-test independence rates (paper: SVPC 40/308, Acyclic 14/172,
  // Residue 131/276, FM 82/141 over the Table 5 direction tests).
  AnalyzerOptions Opts = ExactOpts;
  Opts.RunPrepass = true;
  DepStats Total;
  for (const ProgramRun &Run : runSuite(Opts, GOpts))
    Total += Run.Result.Stats;
  std::printf("\nper-test independence rates over direction tests "
              "(measured; paper in parens):\n");
  struct Row {
    TestKind Kind;
    const char *Paper;
  };
  const Row Rows[] = {
      {TestKind::Svpc, "40/308"},
      {TestKind::Acyclic, "14/172"},
      {TestKind::LoopResidue, "131/276"},
      {TestKind::FourierMotzkin, "82/141"},
  };
  for (const Row &R2 : Rows)
    std::printf("  %-16s %llu/%llu independent  (paper %s)\n",
                testKindName(R2.Kind),
                static_cast<unsigned long long>(
                    Total.decidedIndependent(R2.Kind)),
                static_cast<unsigned long long>(Total.decided(R2.Kind)),
                R2.Paper);
  return 0;
}
