//===- bench/table6_compile_cost.cpp - Paper Table 6 ----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 6: the cost of exact dependence testing relative to
/// compilation. The paper compared its analyzer against `f77 -O3` on a
/// MIPS R2000 and found exactness added ~3% to compile time; absolute
/// numbers are machine- and compiler-bound, so this bench reports our
/// measured dependence-testing time per program (with and without
/// memoization) against the rest of our pipeline (parse + prepass),
/// plus the paper's reported seconds for reference. The shape to
/// reproduce: dependence testing is a small, bounded fraction of the
/// pipeline, and memoization keeps it that way.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace edda;
using namespace edda::bench;

int main() {
  GeneratorOptions GOpts;
  AnalyzerOptions Memoized;
  AnalyzerOptions Unmemoized;
  Unmemoized.UseMemoization = false;

  std::vector<ProgramRun> WithMemo = runSuite(Memoized, GOpts);
  std::vector<ProgramRun> WithoutMemo = runSuite(Unmemoized, GOpts);

  // Paper Table 6 (dep. test cost in seconds; f77 -O3 seconds).
  const double PaperDep[13] = {2.2, 0.0, 4.0, 1.1, 1.0, 3.6, 0.3,
                               2.7, 3.5, 3.8, 2.6, 0.7, 3.6};
  const double PaperF77[13] = {151.4, 485.0, 65.4, 33.0, 45.0, 136.3,
                               38.2,  62.1,  102.5, 118.5, 116.6, 12.6,
                               110.0};

  std::printf("Table 6: dependence testing cost (this machine) vs the "
              "paper's MIPS R2000 numbers\n\n");
  std::printf("%-4s %12s %12s %12s %10s | %10s %10s %8s\n", "Prog",
              "parse+opt", "dep (memo)", "dep (none)", "dep/total",
              "paper dep", "paper f77", "paper%");
  rule(100);

  double TotalCompile = 0, TotalDep = 0;
  for (unsigned I = 0; I < WithMemo.size(); ++I) {
    const ProgramRun &M = WithMemo[I];
    const ProgramRun &U = WithoutMemo[I];
    double Compile = M.CompileMicros / 1000.0;
    double DepMemo = M.AnalysisMicros / 1000.0;
    double DepNone = U.AnalysisMicros / 1000.0;
    TotalCompile += Compile;
    TotalDep += DepMemo;
    std::printf("%-4s %10.1fms %10.1fms %10.1fms %9.1f%% | %9.1fs "
                "%9.1fs %7.1f%%\n",
                M.Profile->Name.c_str(), Compile, DepMemo, DepNone,
                100.0 * DepMemo / (Compile + DepMemo), PaperDep[I],
                PaperF77[I],
                PaperF77[I] > 0 ? 100.0 * PaperDep[I] / PaperF77[I]
                                : 0.0);
  }
  rule(100);
  std::printf("Suite: dependence testing is %.1f%% of our pipeline "
              "(paper: ~3%% of full f77 -O3 compilation)\n",
              100.0 * TotalDep / (TotalCompile + TotalDep));
  std::printf("\nNote: our \"compile\" is only parse + prepass of the "
              "synthetic source; a production\ncompiler's back end "
              "would dwarf it, pushing the fraction toward the paper's "
              "3%%.\n");
  return 0;
}
