//===- bench/table3_unique_cases.cpp - Paper Table 3 ----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 3: tests executed when memoization is on — only
/// unique cases reach the cascade. The paper's headline: memoization
/// cuts 5,679 exact tests to 332. The shape to reproduce: an
/// order-of-magnitude collapse, with SVPC still dominating the
/// remainder.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace edda;
using namespace edda::bench;

int main() {
  AnalyzerOptions AOpts; // memoization on by default
  GeneratorOptions GOpts;
  std::vector<ProgramRun> Runs = runSuite(AOpts, GOpts);

  std::printf("Table 3: tests executed for unique cases only "
              "(memoization on, measured|paper)\n\n");
  std::printf("%-4s %10s %12s %12s %12s %12s\n", "Prog", "TotalCases",
              stageHeader(TestKind::Svpc),
              stageHeader(TestKind::Acyclic),
              stageHeader(TestKind::LoopResidue),
              stageHeader(TestKind::FourierMotzkin));
  rule(80);

  DepStats Total;
  uint64_t PaperTotalCases = 0;
  for (const ProgramRun &Run : Runs) {
    const UniqueTargets &U = Run.Profile->Unique;
    const DepStats &S = Run.Result.Stats;
    const DecisionTargets &T = Run.Profile->Table1;
    uint64_t PaperCases = T.Svpc + T.Acyclic + T.Residue + T.Fm;
    PaperTotalCases += PaperCases;
    std::printf("%-4s %10llu  %s  %s  %s  %s\n",
                Run.Profile->Name.c_str(),
                static_cast<unsigned long long>(PaperCases),
                cell(S.decided(TestKind::Svpc), U.Svpc).c_str(),
                cell(S.decided(TestKind::Acyclic), U.Acyclic).c_str(),
                cell(S.decided(TestKind::LoopResidue), U.Residue)
                    .c_str(),
                cell(S.decided(TestKind::FourierMotzkin), U.Fm)
                    .c_str());
    Total += S;
  }
  rule(80);
  std::printf("%-4s %10s  %s  %s  %s  %s\n", "TOT", "",
              cell(Total.decided(TestKind::Svpc), 262).c_str(),
              cell(Total.decided(TestKind::Acyclic), 34).c_str(),
              cell(Total.decided(TestKind::LoopResidue), 4).c_str(),
              cell(Total.decided(TestKind::FourierMotzkin), 32).c_str());

  uint64_t ExactTests = Total.decided(TestKind::Svpc) +
                        Total.decided(TestKind::Acyclic) +
                        Total.decided(TestKind::LoopResidue) +
                        Total.decided(TestKind::FourierMotzkin);
  std::printf("\nHeadline: exact tests executed %llu (paper: 332 after "
              "memoizing 5,679); cache hits %llu\n",
              static_cast<unsigned long long>(ExactTests),
              static_cast<unsigned long long>(Total.MemoHitsFull +
                                              Total.MemoHitsNoBounds));
  return 0;
}
