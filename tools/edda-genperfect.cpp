//===- tools/edda-genperfect.cpp - Emit the synthetic PERFECT Club --------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes the synthetic PERFECT Club suite to disk as LoopLang source
/// files, so the workload the benches measure can be inspected, edited
/// and replayed through edda-cli:
///
///   edda-genperfect [--scale S] [--symbolic] [--seed N] OUTDIR
///
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace edda;

int main(int Argc, char **Argv) {
  GeneratorOptions Opts;
  std::string OutDir;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--scale" && I + 1 < Argc) {
      Opts.Scale = std::atof(Argv[++I]);
      if (Opts.Scale <= 0) {
        std::fprintf(stderr, "bad scale\n");
        return 2;
      }
    } else if (Arg == "--symbolic") {
      Opts.IncludeSymbolic = true;
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Opts.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--scale S] [--symbolic] [--seed N] "
                   "OUTDIR\n",
                   Argv[0]);
      return 2;
    } else if (OutDir.empty()) {
      OutDir = Arg;
    }
  }
  if (OutDir.empty()) {
    std::fprintf(stderr, "missing output directory\n");
    return 2;
  }

  for (const auto &[Name, Source] : generatePerfectClubSuite(Opts)) {
    std::string Path = OutDir + "/" + Name + ".loop";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s' (does the directory "
                           "exist?)\n",
                   Path.c_str());
      return 1;
    }
    Out << Source;
    std::printf("wrote %s (%zu bytes)\n", Path.c_str(), Source.size());
  }
  return 0;
}
