//===- tools/edda-fuzz.cpp - Differential fuzzer driver -------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded differential fuzzing of the dependence analysis stack:
///
///   edda-fuzz [options]
///
///   --seed N          base seed (default 1); a run is a pure function
///                     of the seed
///   --count N         iterations to run (default 5000 when no time
///                     budget is given)
///   --time-budget S   wall-clock budget in seconds
///   --check LIST      comma-separated axes to run: any of
///                     oracle,dirs,pipeline,widen,threads,memo,incr
///                     (default all)
///   --out DIR         write minimized reproducers into DIR
///   --threads N       thread count for the parallel-analyzer axis
///                     (default 4)
///   --no-widen        run every cascade 64-bit-only (the historical
///                     behavior); the widen axis becomes vacuous
///
/// Exit status 0 when every check passed, 1 on any mismatch. Failures
/// are delta-debugged into minimal .dep/.loop reproducers suitable for
/// tests/inputs/corpus/ (see docs/TESTING.md).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

using namespace edda;
using namespace edda::fuzz;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--count N] [--time-budget SECONDS]\n"
      "          [--check oracle,dirs,pipeline,widen,threads,memo,incr]\n"
      "          [--out DIR] [--threads N] [--no-widen]\n",
      Prog);
  return 2;
}

bool parseChecks(const std::string &List, FuzzOptions &Opts) {
  Opts.CheckOracle = Opts.CheckDirs = Opts.CheckPipeline =
      Opts.CheckWiden = Opts.CheckThreads = Opts.CheckMemo =
          Opts.CheckIncr = false;
  std::istringstream In(List);
  std::string Tok;
  while (std::getline(In, Tok, ',')) {
    if (Tok == "oracle")
      Opts.CheckOracle = true;
    else if (Tok == "dirs")
      Opts.CheckDirs = true;
    else if (Tok == "pipeline")
      Opts.CheckPipeline = true;
    else if (Tok == "widen")
      Opts.CheckWiden = true;
    else if (Tok == "threads")
      Opts.CheckThreads = true;
    else if (Tok == "memo")
      Opts.CheckMemo = true;
    else if (Tok == "incr")
      Opts.CheckIncr = true;
    else {
      std::fprintf(stderr,
                   "edda-fuzz: unknown axis '%s' (valid: oracle, "
                   "dirs, pipeline, widen, threads, memo, incr)\n",
                   Tok.c_str());
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "edda-fuzz: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--seed") {
      const char *V = NextValue("--seed");
      if (!V)
        return 2;
      Opts.Seed = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--count") {
      const char *V = NextValue("--count");
      if (!V)
        return 2;
      Opts.Count = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--time-budget") {
      const char *V = NextValue("--time-budget");
      if (!V)
        return 2;
      Opts.TimeBudgetSeconds = std::strtod(V, nullptr);
    } else if (Arg == "--check") {
      const char *V = NextValue("--check");
      if (!V || !parseChecks(V, Opts))
        return 2;
    } else if (Arg == "--out") {
      const char *V = NextValue("--out");
      if (!V)
        return 2;
      Opts.OutDir = V;
    } else if (Arg == "--threads") {
      const char *V = NextValue("--threads");
      if (!V)
        return 2;
      Opts.Threads = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      if (Opts.Threads == 0)
        Opts.Threads = 1;
    } else if (Arg == "--no-widen") {
      Opts.Widen = false;
    } else if (Arg == "--inject-bug" ||
               Arg.rfind("--inject-bug=", 0) == 0) {
      // Hidden test hook: deliberately plant a known defect in the
      // computation under test, proving the fuzzer catches and shrinks
      // it (used by the test suite; not listed in --help output).
      // Bare --inject-bug keeps the historical mis-signed equation
      // constant; --inject-bug=NAME selects a variant.
      std::string Variant = Arg == "--inject-bug"
                                ? "negate-eq-const"
                                : Arg.substr(std::strlen("--inject-bug="));
      if (Variant == "negate-eq-const")
        Opts.Bug = InjectedBug::NegateEqConst;
      else if (Variant == "dir-prune-sign")
        Opts.Bug = InjectedBug::MisSignDirPrune;
      else if (Variant == "stale-fingerprint")
        Opts.Bug = InjectedBug::StaleFingerprint;
      else {
        std::fprintf(stderr,
                     "edda-fuzz: unknown --inject-bug variant '%s' "
                     "(valid: negate-eq-const, dir-prune-sign, "
                     "stale-fingerprint)\n",
                     Variant.c_str());
        return 2;
      }
    } else {
      return usage(Argv[0]);
    }
  }

  FuzzSummary S = runFuzz(Opts, &std::cerr);

  std::printf("edda-fuzz: seed %llu: %llu iterations (%llu problems, "
              "%llu programs), oracle conclusive on %llu, dirs "
              "conclusive on %llu, %zu failure(s)\n",
              static_cast<unsigned long long>(Opts.Seed),
              static_cast<unsigned long long>(S.Iterations),
              static_cast<unsigned long long>(S.Problems),
              static_cast<unsigned long long>(S.Programs),
              static_cast<unsigned long long>(S.OracleConclusive),
              static_cast<unsigned long long>(S.DirsConclusive),
              S.Failures.size());
  for (const FuzzFailure &F : S.Failures)
    std::printf("  [%s] iteration %llu: %s%s%s\n", fuzzAxisName(F.Axis),
                static_cast<unsigned long long>(F.Iteration),
                F.Detail.c_str(), F.Path.empty() ? "" : " -> ",
                F.Path.c_str());
  return S.ok() ? 0 : 1;
}
