//===- tools/edda-cli.cpp - Command-line dependence analyzer --------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line driver: run the exact dependence analyzer over a
/// LoopLang source file.
///
///   edda-cli [options] file.loop
///
///   --directions        compute direction/distance vectors per pair
///   --graph             print the normalized dependence graph
///   --dot FILE          write the dependence graph in Graphviz form
///   --parallelize       mark and report parallel loops
///   --transforms        report legality of interchange, reversal,
///                       vectorization and distribution per loop
///   --print-optimized   print the program after the prepass
///   --no-prepass        analyze the program as written
///   --no-memo           disable memoization
///   --threads N         analyze with N worker threads (0 = one per
///                       core); results are identical at any N
///   --cache FILE        load/save the memo tables (persistence across
///                       compilations, the paper's section 5 extension)
///   --stats             print cascade decision statistics
///   --pipeline SPEC     select the dependence-test pipeline: a comma
///                       separated stage list ('gcd,svpc,fm'), a single
///                       stage ('banerjee'), or 'default' (the paper's
///                       cascade). Do not share --cache files across
///                       different pipelines.
///   --list-tests        print the registered test stages and exit
///   --explain           print a per-stage trace under every pair
///   --problem           treat the input as a raw dependence problem in
///                       the deptest/ProblemIO.h format and decide it
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/DependenceGraph.h"
#include "analysis/Parallelizer.h"
#include "analysis/Transforms.h"
#include "deptest/Direction.h"
#include "deptest/ProblemIO.h"
#include "parser/Parser.h"
#include "serve/Render.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

using namespace edda;

namespace {

struct CliOptions {
  bool Directions = false;
  bool Graph = false;
  std::string DotPath;
  bool Parallelize = false;
  bool Transforms = false;
  bool PrintOptimized = false;
  bool Prepass = true;
  bool Memo = true;
  bool Stats = false;
  bool RawProblem = false;
  bool ListTests = false;
  bool Explain = false;
  bool Widen = true;
  unsigned Threads = 1;
  std::shared_ptr<const TestPipeline> Pipeline;
  std::string CachePath;
  std::string InputPath;
};

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [--directions] [--graph] [--dot FILE] [--parallelize]\n"
      "          [--print-optimized] [--no-prepass] [--no-memo]\n"
      "          [--threads N] [--cache FILE] [--stats]\n"
      "          [--pipeline SPEC] [--explain] [--no-widen] file.loop\n"
      "       %s --problem [--directions] file.dep\n"
      "       %s --list-tests\n",
      Prog, Prog, Prog);
  return 2;
}

/// Decides a raw dependence problem file (the ILP-library mode).
int runRawProblem(const CliOptions &Cli, const std::string &Source) {
  ProblemParseResult Parsed = parseProblemText(Source);
  if (!Parsed.succeeded()) {
    std::fprintf(stderr, "%s: %s\n", Cli.InputPath.c_str(),
                 Parsed.Error.c_str());
    return 1;
  }
  const DependenceProblem &P = *Parsed.Problem;

  CascadeOptions CascadeOpts;
  CascadeOpts.Pipeline = Cli.Pipeline;
  CascadeOpts.Widen = Cli.Widen;
  CascadeResult R = testDependence(P, CascadeOpts);
  std::optional<PipelineTrace> Trace;
  if (Cli.Explain) {
    const TestPipeline &Pipeline =
        Cli.Pipeline ? *Cli.Pipeline : TestPipeline::defaultPipeline();
    Trace.emplace();
    Pipeline.run(P, {}, CascadeOpts, /*Stats=*/nullptr, &*Trace);
  }
  std::optional<DirectionResult> Dirs;
  if (Cli.Directions && R.Answer != DepAnswer::Independent) {
    DirectionOptions DirOpts;
    DirOpts.Cascade = CascadeOpts;
    Dirs = computeDirectionVectors(P, DirOpts);
  }
  // The shared renderer keeps this report byte-identical to what
  // edda-serve answers for the same problem (the serving smoke diffs
  // the two).
  std::printf("%s", renderProblemReport(P, R, Dirs ? &*Dirs : nullptr,
                                        Trace ? &*Trace : nullptr)
                        .c_str());
  return 0;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--directions")
      Opts.Directions = true;
    else if (Arg == "--graph")
      Opts.Graph = true;
    else if (Arg == "--dot") {
      if (I + 1 >= Argc)
        return false;
      Opts.DotPath = Argv[++I];
    }
    else if (Arg == "--parallelize")
      Opts.Parallelize = true;
    else if (Arg == "--transforms")
      Opts.Transforms = true;
    else if (Arg == "--print-optimized")
      Opts.PrintOptimized = true;
    else if (Arg == "--no-prepass")
      Opts.Prepass = false;
    else if (Arg == "--no-memo")
      Opts.Memo = false;
    else if (Arg == "--stats")
      Opts.Stats = true;
    else if (Arg == "--problem")
      Opts.RawProblem = true;
    else if (Arg == "--list-tests")
      Opts.ListTests = true;
    else if (Arg == "--explain")
      Opts.Explain = true;
    else if (Arg == "--no-widen")
      Opts.Widen = false;
    else if (Arg == "--pipeline") {
      if (I + 1 >= Argc)
        return false;
      std::string Error;
      Opts.Pipeline = makePipeline(Argv[++I], &Error);
      if (!Opts.Pipeline) {
        std::fprintf(stderr, "bad --pipeline value: %s\n", Error.c_str());
        return false;
      }
    }
    else if (Arg == "--threads") {
      if (I + 1 >= Argc)
        return false;
      char *End = nullptr;
      unsigned long N = std::strtoul(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || N > 1024) {
        std::fprintf(stderr, "bad --threads value '%s'\n", Argv[I]);
        return false;
      }
      Opts.Threads = static_cast<unsigned>(N);
    }
    else if (Arg == "--cache") {
      if (I + 1 >= Argc)
        return false;
      Opts.CachePath = Argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      return false;
    }
  }
  return Opts.ListTests || !Opts.InputPath.empty();
}

int listTests() {
  std::printf("registered dependence tests (default pipeline: %s):\n",
              TestPipeline::defaultPipeline().spec().c_str());
  for (const DependenceTest *Stage : stageRegistry())
    std::printf("  %-9s %s%s\n", Stage->name(), Stage->description(),
                Stage->exact() ? "" : " [inexact]");
  return 0;
}

void printParallelReport(const Program &Prog,
                         const std::vector<StmtPtr> &Body,
                         unsigned Indent) {
  for (const StmtPtr &S : Body) {
    if (S->kind() != StmtKind::Loop)
      continue;
    const LoopStmt &L = asLoop(*S);
    std::printf("%*sfor %s: %s\n", Indent, "",
                Prog.var(L.varId()).Name.c_str(),
                L.isParallel() ? "PARALLEL" : "serial");
    printParallelReport(Prog, L.body(), Indent + 2);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli))
    return usage(Argv[0]);

  if (Cli.ListTests)
    return listTests();

  std::ifstream In(Cli.InputPath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 Cli.InputPath.c_str());
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  if (Cli.RawProblem)
    return runRawProblem(Cli, Source);

  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded()) {
    for (const Diagnostic &D : Parsed.Diags)
      std::fprintf(stderr, "%s:%s\n", Cli.InputPath.c_str(),
                   D.str().c_str());
    return 1;
  }
  Program Prog = std::move(*Parsed.Prog);

  AnalyzerOptions Opts;
  Opts.RunPrepass = Cli.Prepass;
  Opts.UseMemoization = Cli.Memo;
  Opts.ComputeDirections = Cli.Directions || Cli.Graph ||
                           Cli.Parallelize || Cli.Transforms ||
                           !Cli.DotPath.empty();
  Opts.NumThreads = Cli.Threads;
  Opts.Cascade.Pipeline = Cli.Pipeline;
  Opts.Cascade.Widen = Cli.Widen;
  Opts.Direction.Cascade.Pipeline = Cli.Pipeline;
  Opts.Direction.Cascade.Widen = Cli.Widen;
  Opts.Trace = Cli.Explain;
  DependenceAnalyzer Analyzer(Opts);

  if (!Cli.CachePath.empty()) {
    if (Analyzer.cache().loadFromFile(Cli.CachePath))
      std::printf("loaded dependence cache from %s (%llu entries)\n",
                  Cli.CachePath.c_str(),
                  static_cast<unsigned long long>(
                      Analyzer.cache().uniqueFull() +
                      Analyzer.cache().uniqueDirections()));
  }

  AnalysisResult Result = Analyzer.analyze(Prog);

  if (Cli.PrintOptimized)
    std::printf("%s\n", Prog.print().c_str());

  // Rendered by the same code edda-serve uses, so daemon answers stay
  // byte-identical to this report (the serving smoke relies on it).
  ReportOptions Report;
  Report.Directions = Cli.Directions;
  Report.Explain = Cli.Explain;
  std::printf("%s", renderAnalysisReport(Prog, Result, Report).c_str());

  if (Cli.Graph || !Cli.DotPath.empty()) {
    DependenceGraph Graph = DependenceGraph::build(Prog, Analyzer);
    if (Cli.Graph)
      std::printf("\ndependence graph:\n%s", Graph.str(Prog).c_str());
    if (!Cli.DotPath.empty()) {
      std::ofstream Dot(Cli.DotPath);
      if (Dot) {
        Dot << Graph.toDot(Prog);
        std::printf("wrote dependence graph to %s\n",
                    Cli.DotPath.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot write '%s'\n",
                     Cli.DotPath.c_str());
      }
    }
  }

  if (Cli.Parallelize) {
    ParallelizeSummary Summary = parallelize(Prog, Analyzer);
    std::printf("\nparallel loops: %u of %u\n", Summary.LoopsParallel,
                Summary.LoopsTotal);
    printParallelReport(Prog, Prog.body(), 2);
  }

  if (Cli.Transforms) {
    DependenceGraph Graph = DependenceGraph::build(Prog, Analyzer);
    std::printf("\ntransformation legality:\n");
    std::function<void(const std::vector<StmtPtr> &, unsigned)> Walk =
        [&](const std::vector<StmtPtr> &Body, unsigned Indent) {
          for (const StmtPtr &S : Body) {
            if (S->kind() != StmtKind::Loop)
              continue;
            LoopStmt &L = asLoop(*S);
            DistributionPlan Plan = planDistribution(Graph, &L);
            std::printf(
                "%*sfor %s: parallelize %s, reverse %s, vectorize(4) "
                "%s, distributes into %zu group(s)\n",
                Indent, "", Prog.var(L.varId()).Name.c_str(),
                canParallelize(Graph, &L).Legal ? "yes" : "no",
                canReverse(Graph, &L).Legal ? "yes" : "no",
                canVectorize(Graph, &L, 4).Legal ? "yes" : "no",
                Plan.Groups.size());
            if (L.body().size() == 1 &&
                L.body()[0]->kind() == StmtKind::Loop) {
              LoopStmt &Inner = asLoop(*L.body()[0]);
              std::printf("%*s  interchange(%s, %s): %s\n", Indent, "",
                          Prog.var(L.varId()).Name.c_str(),
                          Prog.var(Inner.varId()).Name.c_str(),
                          canInterchange(Graph, &L, &Inner).Legal
                              ? "LEGAL"
                              : "illegal");
            }
            Walk(L.body(), Indent + 2);
          }
        };
    Walk(Prog.body(), 2);
  }

  if (Cli.Stats)
    std::printf("\n%s", Result.Stats.str().c_str());

  if (!Cli.CachePath.empty()) {
    if (Analyzer.cache().saveToFile(Cli.CachePath))
      std::printf("saved dependence cache to %s (%llu entries)\n",
                  Cli.CachePath.c_str(),
                  static_cast<unsigned long long>(
                      Analyzer.cache().uniqueFull() +
                      Analyzer.cache().uniqueDirections()));
    else
      std::fprintf(stderr, "warning: could not write cache '%s'\n",
                   Cli.CachePath.c_str());
  }
  return 0;
}
