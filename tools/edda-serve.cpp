//===- tools/edda-serve.cpp - Persistent analysis daemon ------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edda-serve daemon: a long-lived dependence-analysis service
/// answering newline-delimited JSON requests (docs/SERVING.md) from a
/// warm memoization store shared across requests.
///
/// Server mode (default: stdin/stdout transport):
///
///   edda-serve [--socket PATH] [--threads N] [--batch N]
///              [--cache FILE] [--checkpoint-interval SEC]
///              [--max-cache-entries N] [--timeout-ms MS]
///              [--request-budget N] [--pipeline SPEC] [--no-widen]
///              [--stats-log FILE]
///
/// Client mode (for scripts and the serving smoke; one request per
/// input file, rendered report on stdout):
///
///   edda-serve --client PATH [--problem] [--directions] [--explain]
///              [--no-prepass] [--no-widen] [--no-cache-markers]
///              [--pipeline SPEC] [--fm-budget N] [FILE...]
///              [--edit] [--session NAME]
///              [--ping] [--stats] [--checkpoint] [--shutdown]
///
/// --edit sends each FILE as an incremental `edit` request against one
/// server-side program (connection-scoped, or named via --session):
/// the first file seeds the session, each later file re-analyzes by
/// fingerprint diff. Output per file mirrors
/// `edda-cli --directions --graph` (report, then the spliced
/// dependence graph); the per-edit reuse counters go to stderr.
///
/// SIGTERM/SIGINT drain in-flight requests and write a final
/// checkpoint before exiting (the handlers are installed without
/// SA_RESTART precisely so the blocking accept/read loops observe the
/// signal).
///
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace edda;

namespace {

std::atomic<bool> GStop{false};

void onSignal(int) { GStop.store(true, std::memory_order_release); }

void installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // No SA_RESTART: let blocked reads see EINTR.
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
}

struct ToolOptions {
  ServeOptions Serve;
  std::string SocketPath;
  // Client mode.
  std::string ClientPath;
  bool Problem = false;
  bool Directions = false;
  bool Explain = false;
  bool Prepass = true;
  bool Widen = true;
  bool CacheMarkers = true;
  bool Edit = false;
  bool Ping = false;
  bool Stats = false;
  bool Checkpoint = false;
  bool Shutdown = false;
  uint64_t FmBudget = 0;
  std::string PipelineSpec;
  std::string SessionName;
  std::vector<std::string> Files;
};

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] [--threads N] [--batch N]\n"
      "          [--cache FILE] [--checkpoint-interval SEC]\n"
      "          [--max-cache-entries N] [--timeout-ms MS]\n"
      "          [--request-budget N] [--pipeline SPEC] [--no-widen]\n"
      "          [--stats-log FILE]\n"
      "       %s --client PATH [--problem] [--directions] [--explain]\n"
      "          [--no-prepass] [--no-widen] [--no-cache-markers]\n"
      "          [--pipeline SPEC] [--fm-budget N] [FILE...]\n"
      "          [--edit] [--session NAME]\n"
      "          [--ping] [--stats] [--checkpoint] [--shutdown]\n",
      Prog, Prog);
  return 2;
}

bool parseUnsigned(const char *Arg, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long N = std::strtoull(Arg, &End, 10);
  if (End == Arg || *End != '\0')
    return false;
  Out = N;
  return true;
}

bool parseArgs(int Argc, char **Argv, ToolOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s requires a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    uint64_t N = 0;
    if (Arg == "--socket") {
      const char *V = Next("--socket");
      if (!V)
        return false;
      Opts.SocketPath = V;
    } else if (Arg == "--client") {
      const char *V = Next("--client");
      if (!V)
        return false;
      Opts.ClientPath = V;
    } else if (Arg == "--threads") {
      const char *V = Next("--threads");
      if (!V || !parseUnsigned(V, N) || N > 1024)
        return false;
      Opts.Serve.NumThreads = static_cast<unsigned>(N);
    } else if (Arg == "--batch") {
      const char *V = Next("--batch");
      if (!V || !parseUnsigned(V, N) || N == 0 || N > 4096)
        return false;
      Opts.Serve.BatchSize = static_cast<unsigned>(N);
    } else if (Arg == "--cache") {
      const char *V = Next("--cache");
      if (!V)
        return false;
      Opts.Serve.CachePath = V;
    } else if (Arg == "--checkpoint-interval") {
      const char *V = Next("--checkpoint-interval");
      if (!V || !parseUnsigned(V, N))
        return false;
      Opts.Serve.CheckpointIntervalSec = static_cast<unsigned>(N);
    } else if (Arg == "--max-cache-entries") {
      const char *V = Next("--max-cache-entries");
      if (!V || !parseUnsigned(V, N))
        return false;
      Opts.Serve.MaxCacheEntries = N;
    } else if (Arg == "--timeout-ms") {
      const char *V = Next("--timeout-ms");
      if (!V || !parseUnsigned(V, N))
        return false;
      Opts.Serve.TimeoutMs = static_cast<unsigned>(N);
    } else if (Arg == "--request-budget") {
      const char *V = Next("--request-budget");
      if (!V || !parseUnsigned(V, N))
        return false;
      Opts.Serve.RequestFmBudget = N;
    } else if (Arg == "--fm-budget") {
      const char *V = Next("--fm-budget");
      if (!V || !parseUnsigned(V, N))
        return false;
      Opts.FmBudget = N;
    } else if (Arg == "--pipeline") {
      const char *V = Next("--pipeline");
      if (!V)
        return false;
      Opts.Serve.PipelineSpec = V;
      Opts.PipelineSpec = V;
    } else if (Arg == "--stats-log") {
      const char *V = Next("--stats-log");
      if (!V)
        return false;
      Opts.Serve.StatsLogPath = V;
    } else if (Arg == "--no-widen") {
      Opts.Serve.Widen = false;
      Opts.Widen = false;
    } else if (Arg == "--session") {
      const char *V = Next("--session");
      if (!V)
        return false;
      Opts.SessionName = V;
    } else if (Arg == "--edit")
      Opts.Edit = true;
    else if (Arg == "--problem")
      Opts.Problem = true;
    else if (Arg == "--directions")
      Opts.Directions = true;
    else if (Arg == "--explain")
      Opts.Explain = true;
    else if (Arg == "--no-prepass")
      Opts.Prepass = false;
    else if (Arg == "--no-cache-markers")
      Opts.CacheMarkers = false;
    else if (Arg == "--ping")
      Opts.Ping = true;
    else if (Arg == "--stats")
      Opts.Stats = true;
    else if (Arg == "--checkpoint")
      Opts.Checkpoint = true;
    else if (Arg == "--shutdown")
      Opts.Shutdown = true;
    else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return false;
    } else
      Opts.Files.push_back(Arg);
  }
  return true;
}

int runClient(const ToolOptions &Opts) {
  std::string Error;
  std::unique_ptr<ServeClient> Client =
      ServeClient::connectUnix(Opts.ClientPath, &Error);
  if (!Client) {
    std::fprintf(stderr, "edda-serve: %s\n", Error.c_str());
    return 1;
  }

  int Rc = 0;
  auto Issue = [&](ServeRequest R) {
    Error.clear();
    std::optional<ServeResponse> Resp = Client->call(std::move(R), &Error);
    if (!Resp) {
      std::fprintf(stderr, "edda-serve: %s\n", Error.c_str());
      Rc = 1;
      return std::optional<ServeResponse>();
    }
    if (!Resp->Ok) {
      std::fprintf(stderr, "edda-serve: server error: %s\n",
                   Resp->Error.c_str());
      Rc = 1;
    }
    return Resp;
  };

  for (const std::string &Path : Opts.Files) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "edda-serve: cannot open '%s'\n",
                   Path.c_str());
      Rc = 1;
      continue;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();

    ServeRequest R;
    R.Operation = Opts.Edit      ? ServeRequest::Op::Edit
                  : Opts.Problem ? ServeRequest::Op::Problem
                                 : ServeRequest::Op::Analyze;
    R.Payload = Buffer.str();
    R.Directions = Opts.Directions;
    R.Explain = Opts.Explain;
    R.Widen = Opts.Widen;
    R.Prepass = Opts.Prepass;
    R.CacheMarkers = Opts.CacheMarkers;
    R.PipelineSpec = Opts.PipelineSpec;
    R.FmBudget = Opts.FmBudget;
    R.Session = Opts.SessionName;
    std::optional<ServeResponse> Resp = Issue(std::move(R));
    if (!Resp || !Resp->Ok)
      continue;
    std::fputs(Resp->Text.c_str(), stdout);
    if (Opts.Edit) {
      // Mirror `edda-cli --directions --graph`: report, then the
      // spliced graph (the serving smoke diffs the two byte for byte).
      std::printf("\ndependence graph:\n%s",
                  Resp->Body.getString("graph").c_str());
      if (const JsonValue *Stats = Resp->Body.find("stats"))
        std::fprintf(stderr,
                     "edda-serve: edit '%s': %lld pairs, %lld reused, "
                     "%lld invalidated\n",
                     Path.c_str(),
                     static_cast<long long>(Stats->getInt("pairs")),
                     static_cast<long long>(
                         Stats->getInt("pairs_reused")),
                     static_cast<long long>(
                         Stats->getInt("pairs_invalidated")));
    }
  }

  if (Opts.Ping) {
    ServeRequest R;
    R.Operation = ServeRequest::Op::Ping;
    if (std::optional<ServeResponse> Resp = Issue(std::move(R));
        Resp && Resp->Ok)
      std::printf("pong\n");
  }
  if (Opts.Checkpoint) {
    ServeRequest R;
    R.Operation = ServeRequest::Op::Checkpoint;
    if (std::optional<ServeResponse> Resp = Issue(std::move(R));
        Resp && Resp->Ok)
      std::printf("checkpointed (%lld entries)\n",
                  static_cast<long long>(Resp->Body.getInt("entries")));
  }
  if (Opts.Stats) {
    ServeRequest R;
    R.Operation = ServeRequest::Op::Stats;
    if (std::optional<ServeResponse> Resp = Issue(std::move(R));
        Resp && Resp->Ok)
      std::printf("%s\n", Resp->Body.get("server").str().c_str());
  }
  if (Opts.Shutdown) {
    ServeRequest R;
    R.Operation = ServeRequest::Op::Shutdown;
    if (std::optional<ServeResponse> Resp = Issue(std::move(R));
        Resp && Resp->Ok)
      std::printf("shutting down\n");
  }
  return Rc;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  if (!Opts.ClientPath.empty())
    return runClient(Opts);

  if (!Opts.Files.empty()) {
    std::fprintf(stderr,
                 "edda-serve: positional files need --client mode\n");
    return usage(Argv[0]);
  }

  installSignalHandlers();

  std::string BootError;
  ServeCore Core(Opts.Serve, &BootError);
  if (!BootError.empty())
    std::fprintf(stderr, "edda-serve: warning: %s\n", BootError.c_str());
  std::fprintf(stderr,
               "edda-serve: ready on %s (%u threads, %llu warm "
               "entries%s)\n",
               Opts.SocketPath.empty() ? "stdio"
                                       : Opts.SocketPath.c_str(),
               Core.options().NumThreads,
               static_cast<unsigned long long>(
                   Core.stats().WarmLoadedEntries),
               Core.defaultFmBudget()
                   ? (", budget " +
                      std::to_string(Core.defaultFmBudget()))
                         .c_str()
                   : "");

  if (Opts.SocketPath.empty())
    return runStdioServer(Core);

  std::string Error;
  int Rc = runUnixServer(Core, Opts.SocketPath, GStop, &Error);
  if (!Error.empty())
    std::fprintf(stderr, "edda-serve: %s\n", Error.c_str());
  return Rc;
}
