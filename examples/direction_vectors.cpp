//===- examples/direction_vectors.cpp - Direction/distance vectors --------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks through the paper's section 6: how direction vectors summarize
/// the relationship between dependent iterations, how hierarchical
/// refinement explores them, and how the two prunings (unused variable
/// elimination and distance vectors) cut the number of tests.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace edda;

namespace {

void show(const char *Title, const char *Source) {
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded())
    return;
  Program Prog = std::move(*Parsed.Prog);
  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  DependenceAnalyzer Analyzer(Opts);
  AnalysisResult Result = Analyzer.analyze(Prog);

  std::printf("%s\n", Title);
  for (const DependencePair &Pair : Result.Pairs) {
    if (Pair.RefA == Pair.RefB || !Pair.Directions)
      continue;
    const ArrayReference &A = Result.Refs[Pair.RefA];
    const ArrayReference &B = Result.Refs[Pair.RefB];
    std::printf("  %s vs %s:\n", refStr(Prog, A).c_str(),
                refStr(Prog, B).c_str());
    if (Pair.Directions->Vectors.empty()) {
      std::printf("    independent\n");
      continue;
    }
    std::printf("    directions:");
    for (const DirVector &V : Pair.Directions->Vectors)
      std::printf(" %s", dirVectorStr(V).c_str());
    std::printf("\n    distances: ");
    for (unsigned K = 0; K < Pair.Directions->Distances.size(); ++K) {
      if (Pair.Directions->Distances[K])
        std::printf("%lld ", static_cast<long long>(
                                 *Pair.Directions->Distances[K]));
      else
        std::printf("? ");
    }
    std::printf("\n    tests run: %llu\n",
                static_cast<unsigned long long>(
                    Pair.Directions->TestsRun));
  }
  std::printf("\n");
}

} // namespace

int main() {
  show("carried forward (distance 1): a[i+1] = a[i]", R"(program p1
  array a[100]
  for i = 1 to 10 do
    a[i + 1] = a[i] + 7
  end
end
)");

  show("loop independent: a[i] = a[i]", R"(program p2
  array a[100]
  for i = 1 to 10 do
    a[i] = a[i] + 7
  end
end
)");

  show("two vectors (paper section 6): a[i][j] = a[2i][j]", R"(program p3
  array a[100][100]
  for i = 0 to 10 do
    for j = 0 to 10 do
      a[i][j] = a[2 * i][j] + 7
    end
  end
end
)");

  show("unused outer loop pruned to '*': a[j] = a[j+1]", R"(program p4
  array a[100]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[j] = a[j + 1]
    end
  end
end
)");

  show("transposed coupling: a[i][j] = a[j][i]", R"(program p5
  array a[50][50]
  for i = 1 to 10 do
    for j = 1 to 10 do
      a[i][j] = a[j][i] + 1
    end
  end
end
)");
  return 0;
}
