//===- examples/parallelize_stencil.cpp - Loop parallelization ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The use case that motivates the paper: decide which loops of a
/// numerical kernel can run in parallel. A Jacobi stencil (reads from
/// one array, writes another) parallelizes at every level; a Gauss-
/// Seidel sweep (in-place update) is serialized by its loop-carried
/// dependences; a wavefront recurrence is carried only by the outer
/// loop.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Parallelizer.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace edda;

namespace {

void report(const char *Title, const std::vector<StmtPtr> &Body,
            const Program &P, unsigned Indent = 2) {
  for (const StmtPtr &S : Body) {
    if (S->kind() != StmtKind::Loop)
      continue;
    const LoopStmt &L = asLoop(*S);
    std::printf("%*sfor %s: %s\n", Indent, "",
                P.var(L.varId()).Name.c_str(),
                L.isParallel() ? "PARALLEL" : "serial");
    report(Title, L.body(), P, Indent + 2);
  }
}

void analyzeKernel(const char *Title, const char *Source) {
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded()) {
    for (const Diagnostic &D : Parsed.Diags)
      std::fprintf(stderr, "error: %s\n", D.str().c_str());
    return;
  }
  Program Prog = std::move(*Parsed.Prog);
  DependenceAnalyzer Analyzer;
  ParallelizeSummary Summary = parallelize(Prog, Analyzer);
  std::printf("%s: %u of %u loops parallel\n", Title,
              Summary.LoopsParallel, Summary.LoopsTotal);
  report(Title, Prog.body(), Prog);
  std::printf("\n");
}

} // namespace

int main() {
  analyzeKernel("jacobi", R"(program jacobi
  array next[100][100]
  array prev[100][100]
  for i = 2 to 99 do
    for j = 2 to 99 do
      next[i][j] = prev[i - 1][j] + prev[i + 1][j] + prev[i][j - 1] + prev[i][j + 1]
    end
  end
end
)");

  analyzeKernel("gauss-seidel", R"(program seidel
  array u[100][100]
  for i = 2 to 99 do
    for j = 2 to 99 do
      u[i][j] = u[i - 1][j] + u[i][j - 1] + u[i + 1][j] + u[i][j + 1]
    end
  end
end
)");

  analyzeKernel("wavefront", R"(program wavefront
  array w[100][100]
  for i = 2 to 99 do
    for j = 1 to 99 do
      w[i][j] = w[i - 1][j] + 1
    end
  end
end
)");

  analyzeKernel("reduction-free transpose", R"(program transpose
  array t[100][100]
  array s[100][100]
  for i = 1 to 100 do
    for j = 1 to 100 do
      t[i][j] = s[j][i]
    end
  end
end
)");

  // Scalar handling: the dot-product loop is parallel because the
  // accumulator is recognized as a reduction; the prefix-sum loop is
  // serialized by its carried scalar even though no array dependence
  // exists.
  analyzeKernel("dot product (reduction scalar)", R"(program dot
  array x[1000]
  array y[1000]
  acc = 0
  for i = 1 to 1000 do
    acc = acc + x[i] * y[i]
  end
end
)");

  analyzeKernel("prefix sums (carried scalar)", R"(program prefix
  array x[1000]
  array out[1000]
  run = 0
  for i = 1 to 1000 do
    run = run + x[i]
    out[i] = run
  end
end
)");
  return 0;
}
