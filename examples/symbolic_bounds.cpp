//===- examples/symbolic_bounds.cpp - Symbolic dependence testing ---------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 8 of the paper: variables read from the outside world ("read
/// n") join the dependence system as unbounded integer unknowns, keeping
/// the analysis exact relative to the unknown. Also demonstrates the
/// prepass optimizations that make symbolic programs analyzable in the
/// first place (constant propagation, induction substitution).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace edda;

namespace {

void analyze(const char *Title, const char *Source) {
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded()) {
    for (const Diagnostic &D : Parsed.Diags)
      std::fprintf(stderr, "error: %s\n", D.str().c_str());
    return;
  }
  Program Prog = std::move(*Parsed.Prog);
  DependenceAnalyzer Analyzer;
  AnalysisResult Result = Analyzer.analyze(Prog);
  std::printf("%s\n", Title);
  std::printf("  optimized program:\n");
  std::string Printed = Prog.print();
  // Indent the print for display.
  size_t Pos = 0;
  while (Pos < Printed.size()) {
    size_t End = Printed.find('\n', Pos);
    if (End == std::string::npos)
      End = Printed.size();
    std::printf("    %.*s\n", static_cast<int>(End - Pos),
                Printed.c_str() + Pos);
    Pos = End + 1;
  }
  for (const DependencePair &Pair : Result.Pairs) {
    if (Pair.RefA == Pair.RefB)
      continue;
    std::printf("  %s vs %s: %s [%s]\n",
                refStr(Prog, Result.Refs[Pair.RefA]).c_str(),
                refStr(Prog, Result.Refs[Pair.RefB]).c_str(),
                Pair.Answer == DepAnswer::Independent ? "INDEPENDENT"
                : Pair.Answer == DepAnswer::Dependent ? "dependent"
                                                      : "unknown",
                testKindName(Pair.DecidedBy));
  }
  std::printf("\n");
}

} // namespace

int main() {
  analyze("paper section 8: unknown n in both subscripts",
          R"(program sym1
  array a[500]
  read n
  for i = 1 to 10 do
    a[i + n] = a[i + 2 * n + 1] + 3
  end
end
)");

  analyze("symbolic term cancels: exact independence",
          R"(program sym2
  array a[500]
  read n
  for i = 1 to 10 do
    a[2 * i + n] = a[2 * i + n + 3] + 1
  end
end
)");

  analyze("symbolic loop bound", R"(program sym3
  array a[500]
  read n
  for i = 1 to n do
    a[i] = a[i + 1] + 1
  end
end
)");

  analyze("prepass rewrites the paper's optimizer example",
          R"(program sym4
  array a[500]
  param n = 100
  iz = 0
  for i = 1 to 10 do
    iz = iz + 2
    a[iz + n] = a[iz + 2 * n + 1] + 3
  end
end
)");
  return 0;
}
