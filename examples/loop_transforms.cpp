//===- examples/loop_transforms.cpp - Transformation legality -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact dependence information drives loop transformations: this
/// example builds the normalized dependence graph for three kernels
/// and asks the legality oracle about interchange, reversal,
/// parallelization and fusion — then applies a legal interchange and a
/// legal fusion and shows the rewritten program.
///
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "analysis/Transforms.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace edda;

namespace {

const char *verdict(const LegalityResult &R) {
  return R.Legal ? "LEGAL" : "illegal";
}

void interchangeDemo(const char *Title, const char *Source) {
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded())
    return;
  Program Prog = std::move(*Parsed.Prog);
  DependenceAnalyzer Analyzer;
  DependenceGraph Graph = DependenceGraph::build(Prog, Analyzer);

  LoopStmt *Outer = nullptr, *Inner = nullptr;
  for (StmtPtr &S : Prog.body()) {
    if (S->kind() != StmtKind::Loop)
      continue;
    Outer = &asLoop(*S);
    if (Outer->body().size() == 1 &&
        Outer->body()[0]->kind() == StmtKind::Loop)
      Inner = &asLoop(*Outer->body()[0]);
  }
  if (!Outer || !Inner)
    return;

  std::printf("%s\n", Title);
  std::printf("  dependence graph:\n");
  std::string GraphText = Graph.str(Prog);
  if (GraphText.empty())
    GraphText = "(no dependences)\n";
  std::printf("    %s", GraphText.c_str());
  LegalityResult Inter = canInterchange(Graph, Outer, Inner);
  std::printf("  interchange(i, j): %s", verdict(Inter));
  if (!Inter.Legal && !Inter.Violation.empty())
    std::printf("  (violating vector %s -> would become "
                "lexicographically negative)",
                dirVectorStr(Inter.Violation).c_str());
  std::printf("\n");
  std::printf("  reverse(outer): %s, reverse(inner): %s\n",
              verdict(canReverse(Graph, Outer)),
              verdict(canReverse(Graph, Inner)));
  std::printf("  parallelize(outer): %s, parallelize(inner): %s\n",
              verdict(canParallelize(Graph, Outer)),
              verdict(canParallelize(Graph, Inner)));
  if (Inter.Legal && interchangeLoops(*Outer)) {
    std::printf("  after interchange:\n");
    std::printf("%s", Prog.print().c_str());
  }
  std::printf("\n");
}

void fusionDemo() {
  const char *Source = R"(program fusion
  array a[100]
  array b[100]
  array c[100]
  for i = 1 to 20 do
    a[i] = 2 * i
  end
  for i = 1 to 20 do
    b[i] = a[i] + 1
  end
  for i = 1 to 20 do
    c[i] = a[i + 1]
  end
end
)";
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded())
    return;
  Program Prog = std::move(*Parsed.Prog);
  std::vector<LoopStmt *> Loops;
  for (StmtPtr &S : Prog.body())
    if (S->kind() == StmtKind::Loop)
      Loops.push_back(&asLoop(*S));

  std::printf("fusion candidates:\n");
  std::printf("  fuse(loop1 producing a[i], loop2 reading a[i]):   %s\n",
              verdict(canFuse(Prog, Loops[0], Loops[1])));
  std::printf("  fuse(loop1 producing a[i], loop3 reading a[i+1]): %s "
              "(iteration i would read a value not yet written)\n",
              verdict(canFuse(Prog, Loops[0], Loops[2])));

  if (canFuse(Prog, Loops[0], Loops[1]).Legal &&
      fuseLoops(Prog, Prog.body(), 0)) {
    std::printf("  after fusing the first two loops:\n%s\n",
                Prog.print().c_str());
  }
}

} // namespace

int main() {
  interchangeDemo("wavefront a[i][j] = a[i-1][j+1] (illegal interchange)",
                  R"(program wave
  array a[40][40]
  for i = 2 to 20 do
    for j = 1 to 19 do
      a[i][j] = a[i - 1][j + 1] + 1
    end
  end
end
)");

  interchangeDemo("forward wavefront a[i][j] = a[i-1][j-1] (legal)",
                  R"(program fwd
  array a[40][40]
  for i = 2 to 20 do
    for j = 2 to 20 do
      a[i][j] = a[i - 1][j - 1] + 1
    end
  end
end
)");

  fusionDemo();
  return 0;
}
