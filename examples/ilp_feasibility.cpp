//===- examples/ilp_feasibility.cpp - The cascade as an ILP library -------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2.1 of the paper shows dependence testing is equivalent to
/// integer programming. The deptest layer is therefore usable as a
/// standalone integer-feasibility library over conjunctions of linear
/// constraints — this example drives it directly, without any loops or
/// arrays, and prints which decision procedure of the cascade fired.
///
//===----------------------------------------------------------------------===//

#include "deptest/Cascade.h"
#include "deptest/ExtendedGcd.h"

#include <cstdio>

using namespace edda;

namespace {

/// Decides feasibility of { x*A = c, Lo <= x <= Hi } by phrasing it as
/// a dependence problem over NumVars "loop variables" of one nest.
void solve(const char *Title, unsigned NumVars,
           std::vector<std::pair<std::vector<int64_t>, int64_t>> Eqs,
           std::vector<std::pair<int64_t, int64_t>> Boxes) {
  DependenceProblem P;
  P.NumLoopsA = NumVars;
  P.NumLoopsB = 0;
  P.NumCommon = 0;
  P.NumSymbolic = 0;
  for (auto &[Coeffs, Const] : Eqs) {
    XAffine Eq(NumVars);
    Eq.Coeffs = Coeffs;
    Eq.Const = -Const; // equations are form == 0; inputs are sum == c
    P.Equations.push_back(std::move(Eq));
  }
  P.Lo.resize(NumVars);
  P.Hi.resize(NumVars);
  for (unsigned V = 0; V < Boxes.size(); ++V) {
    XAffine Lo(NumVars), Hi(NumVars);
    Lo.Const = Boxes[V].first;
    Hi.Const = Boxes[V].second;
    P.Lo[V] = std::move(Lo);
    P.Hi[V] = std::move(Hi);
  }

  CascadeResult R = testDependence(P);
  std::printf("%s: %s  [%s]\n", Title,
              R.Answer == DepAnswer::Dependent     ? "FEASIBLE"
              : R.Answer == DepAnswer::Independent ? "infeasible"
                                                   : "unknown",
              testKindName(R.DecidedBy));
  if (R.Witness) {
    std::printf("  witness: (");
    for (unsigned V = 0; V < R.Witness->size(); ++V)
      std::printf("%s%lld", V ? ", " : "",
                  static_cast<long long>((*R.Witness)[V]));
    std::printf(")\n");
  }
}

} // namespace

int main() {
  // 3x + 5y = 22, 0 <= x,y <= 10.
  solve("3x + 5y = 22 in [0,10]^2", 2, {{{3, 5}, 22}},
        {{0, 10}, {0, 10}});

  // 2x + 4y = 7: no integer solution (gcd test).
  solve("2x + 4y = 7", 2, {{{2, 4}, 7}}, {{-100, 100}, {-100, 100}});

  // x + y + z = 10, x = y, box constraints.
  solve("x + y + z = 10, x - y = 0 in [0,4]^3", 3,
        {{{1, 1, 1}, 10}, {{1, -1, 0}, 0}},
        {{0, 4}, {0, 4}, {0, 4}});

  // Infeasible by bounds: x + y = 25 with x, y <= 10.
  solve("x + y = 25 in [0,10]^2", 2, {{{1, 1}, 25}},
        {{0, 10}, {0, 10}});

  // Knapsack-ish: 7x + 11y = 58 over naturals.
  solve("7x + 11y = 58 in [0,20]^2", 2, {{{7, 11}, 58}},
        {{0, 20}, {0, 20}});
  return 0;
}
