//===- examples/quickstart.cpp - First steps with edda --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: parse a small LoopLang program, run the prepass
/// optimizer and the exact dependence analyzer, and print what was
/// found — which pairs of array references can touch the same memory,
/// which test of the paper's cascade decided each answer, and the
/// dependence direction vectors.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace edda;

int main() {
  // The paper's two introductory loops plus a coupled-subscript case.
  const char *Source = R"(program quickstart
  array a[100]
  array b[100]
  array c[100][100]
  for i = 1 to 10 do
    a[i] = a[i + 10] + 3
  end
  for i = 1 to 10 do
    b[i + 1] = b[i] + 3
  end
  for i = 1 to 10 do
    for j = 1 to 10 do
      c[i][j] = c[j + 10][i + 9]
    end
  end
end
)";

  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded()) {
    for (const Diagnostic &D : Parsed.Diags)
      std::fprintf(stderr, "error: %s\n", D.str().c_str());
    return 1;
  }
  Program Prog = std::move(*Parsed.Prog);

  AnalyzerOptions Opts;
  Opts.ComputeDirections = true;
  DependenceAnalyzer Analyzer(Opts);
  AnalysisResult Result = Analyzer.analyze(Prog);

  std::printf("analyzed %llu reference pairs\n\n",
              static_cast<unsigned long long>(Result.PairsConsidered));
  for (const DependencePair &Pair : Result.Pairs) {
    const ArrayReference &A = Result.Refs[Pair.RefA];
    const ArrayReference &B = Result.Refs[Pair.RefB];
    std::printf("%-28s vs %-28s", refStr(Prog, A).c_str(),
                refStr(Prog, B).c_str());
    switch (Pair.Answer) {
    case DepAnswer::Independent:
      std::printf("  INDEPENDENT");
      break;
    case DepAnswer::Dependent:
      std::printf("  dependent");
      break;
    case DepAnswer::Unknown:
      std::printf("  unknown (assumed dependent)");
      break;
    }
    std::printf("  [decided by %s]\n", testKindName(Pair.DecidedBy));
    if (Pair.Directions && !Pair.Directions->Vectors.empty()) {
      std::printf("    direction vectors:");
      for (const DirVector &V : Pair.Directions->Vectors)
        std::printf(" %s", dirVectorStr(V).c_str());
      std::printf("\n");
      for (unsigned K = 0; K < Pair.Directions->Distances.size(); ++K)
        if (Pair.Directions->Distances[K])
          std::printf("    distance at level %u: %lld\n", K,
                      static_cast<long long>(
                          *Pair.Directions->Distances[K]));
    }
  }

  std::printf("\ncascade decisions:\n%s", Result.Stats.str().c_str());
  return 0;
}
