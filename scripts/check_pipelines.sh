#!/usr/bin/env bash
# Pipeline equivalence checks over the generated PERFECT-style corpus:
#
#   * a permutation of the exact stages must produce identical analysis
#     output — answers, direction vectors, cache hits, dependence graph
#     — differing only in which stage gets the credit (the bracketed
#     [DecidedBy] labels, which are stripped before diffing);
#   * the inexact `banerjee` pipeline must produce a *superset*
#     dependence graph: every edge the exact cascade finds must also be
#     present (Banerjee may only add spurious edges, never drop real
#     ones).
#
# Usage: scripts/check_pipelines.sh [BUILD_DIR] [PERMUTED_SPEC]
set -euo pipefail

BUILD=${1:-build}
PERMUTED=${2:-const,fm,residue,acyclic,svpc,gcd}
CLI=$BUILD/tools/edda-cli
GEN=$BUILD/tools/edda-genperfect

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

mkdir "$tmp/corpus"
"$GEN" "$tmp/corpus"
cp tests/inputs/demo.loop "$tmp/corpus/"

strip_labels() { sed 's/ \[[^]]*\]//'; }
# Graph edges without their direction annotations (Banerjee may report
# extra direction vectors on a real edge).
graph_edges() {
  sed -n '/^dependence graph:/,$p' | sed '1d;/^$/d;s/  (.*$//' | sort -u
}

fail=0
for f in "$tmp/corpus"/*.loop; do
  name=$(basename "$f")

  "$CLI" --directions --graph "$f" > "$tmp/default.out"
  "$CLI" --directions --graph --pipeline "$PERMUTED" "$f" \
    > "$tmp/perm.out"
  if ! diff <(strip_labels < "$tmp/default.out") \
            <(strip_labels < "$tmp/perm.out") > "$tmp/perm.diff"; then
    echo "FAIL: pipeline '$PERMUTED' diverges from default on $name"
    head -20 "$tmp/perm.diff"
    fail=1
  fi

  "$CLI" --directions --graph --pipeline banerjee "$f" \
    > "$tmp/banerjee.out"
  graph_edges < "$tmp/default.out" > "$tmp/default.edges"
  graph_edges < "$tmp/banerjee.out" > "$tmp/banerjee.edges"
  missing=$(comm -23 "$tmp/default.edges" "$tmp/banerjee.edges")
  if [ -n "$missing" ]; then
    echo "FAIL: banerjee graph drops exact edges on $name:"
    echo "$missing"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "pipeline equivalence checks FAILED"
  exit 1
fi
echo "pipeline equivalence checks passed (permuted: $PERMUTED; banerjee superset)"
