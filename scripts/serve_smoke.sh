#!/bin/sh
# Serving smoke: boots the edda-serve daemon, replays the corpus
# through concurrent clients, and asserts the served reports are
# byte-identical to fresh edda-cli runs — then kills the daemon,
# restarts it from its warm-start checkpoint and requires the re-query
# round to be answered (>= MIN_HIT_PCT) from the reloaded store.
#
# Usage: serve_smoke.sh [BUILD_DIR] [OUT_DIR] [MIN_HIT_PCT]
#
# OUT_DIR receives the daemon's per-request stats log plus the stats
# snapshots (the serve-smoke CI artifact). Normalizations applied
# before diffing, per docs/SERVING.md:
#   * " (cached)" markers are stripped from BOTH sides — hit patterns
#     legitimately differ between a warm daemon and a fresh CLI run
#     (the CLI memoizes within its own run too);
#   * "witness x = " lines are stripped from problem-mode diffs — the
#     store does not hold witnesses, so a served hit omits the line
#     while the answer itself stays exact.
set -eu

BUILD=${1:-build}
OUT=${2:-serve-smoke}
MIN_HIT=${3:-90}

SERVE="$BUILD/tools/edda-serve"
CLI="$BUILD/tools/edda-cli"
GEN="$BUILD/tools/edda-genperfect"
for bin in "$SERVE" "$CLI" "$GEN"; do
  if [ ! -x "$bin" ]; then
    echo "error: '$bin' is missing (build the tools targets)" >&2
    exit 2
  fi
done

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
REPO_ROOT=$(CDPATH= cd -- "$SCRIPT_DIR/.." && pwd)

tmp=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

mkdir -p "$OUT"
SOCK="$tmp/edda-serve.sock"
CACHE="$tmp/edda-serve.cache"
STATS_LOG="$OUT/request-stats.jsonl"
: > "$STATS_LOG"

mkdir "$tmp/corpus"
"$GEN" "$tmp/corpus" > /dev/null
cp "$REPO_ROOT/tests/inputs/demo.loop" "$tmp/corpus/"
cp "$REPO_ROOT"/tests/inputs/corpus/*.loop "$tmp/corpus/"

start_server() {
  "$SERVE" --socket "$SOCK" --cache "$CACHE" --threads 4 \
           --stats-log "$STATS_LOG" 2>> "$OUT/server-stderr.txt" &
  SERVER_PID=$!
  # Wait for the socket to accept pings (the daemon may still be
  # loading the warm-start file).
  i=0
  while ! "$SERVE" --client "$SOCK" --ping > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "error: server did not come up on $SOCK" >&2
      exit 1
    fi
    sleep 0.1
  done
}

stop_server() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  SERVER_PID=
}

strip_cached() { sed 's/ (cached)//' "$1"; }
strip_problem() { sed -e 's/ (cached)//' -e '/^witness x = (/d' "$1"; }

# Waits for the pids in $client_pids (a bare `wait` would also wait
# on the server job, which never exits).
# shellcheck disable=SC2086  # pid-list splitting is the point
wait_clients() {
  for p in $client_pids; do
    wait "$p"
  done
  client_pids=
}

# Issues every corpus query through concurrent clients (one background
# client process per file, at most 8 in flight — the concurrency the
# daemon exists to serve), leaving one served report per input in
# $tmp/served.
query_round() {
  rm -rf "$tmp/served"
  mkdir "$tmp/served"
  client_pids=
  jobs=0
  for f in "$tmp/corpus"/*.loop; do
    "$SERVE" --client "$SOCK" --directions "$f" \
      > "$tmp/served/$(basename "$f").out" &
    client_pids="$client_pids $!"
    jobs=$((jobs + 1))
    [ $((jobs % 8)) -eq 0 ] && wait_clients
  done
  for f in "$REPO_ROOT"/tests/inputs/corpus/*.dep; do
    "$SERVE" --client "$SOCK" --problem --directions "$f" \
      > "$tmp/served/$(basename "$f").out" &
    client_pids="$client_pids $!"
    jobs=$((jobs + 1))
    [ $((jobs % 8)) -eq 0 ] && wait_clients
  done
  wait_clients
}

# Fresh-CLI reference reports, rendered once.
mkdir "$tmp/want"
for f in "$tmp/corpus"/*.loop; do
  "$CLI" --directions "$f" > "$tmp/want/$(basename "$f").out"
done
for f in "$REPO_ROOT"/tests/inputs/corpus/*.dep; do
  "$CLI" --problem --directions "$f" > "$tmp/want/$(basename "$f").out"
done

check_round() {
  round=$1
  fail=0
  for f in "$tmp/corpus"/*.loop; do
    name=$(basename "$f").out
    if ! strip_cached "$tmp/served/$name" > "$tmp/got.txt" ||
       ! strip_cached "$tmp/want/$name" > "$tmp/ref.txt" ||
       ! diff "$tmp/got.txt" "$tmp/ref.txt" > "$tmp/diff.txt"; then
      echo "FAIL($round): served report differs from edda-cli: $name"
      head -20 "$tmp/diff.txt"
      fail=1
    fi
  done
  for f in "$REPO_ROOT"/tests/inputs/corpus/*.dep; do
    name=$(basename "$f").out
    if ! strip_problem "$tmp/served/$name" > "$tmp/got.txt" ||
       ! strip_problem "$tmp/want/$name" > "$tmp/ref.txt" ||
       ! diff "$tmp/got.txt" "$tmp/ref.txt" > "$tmp/diff.txt"; then
      echo "FAIL($round): served problem differs from edda-cli: $name"
      head -20 "$tmp/diff.txt"
      fail=1
    fi
    if ! grep -q '^answer: ' "$tmp/served/$name"; then
      echo "FAIL($round): served problem has no answer line: $name"
      fail=1
    fi
  done
  [ "$fail" -eq 0 ]
}

echo "== cold round (fresh daemon, empty store) =="
start_server
query_round
check_round cold
"$SERVE" --client "$SOCK" --stats > "$OUT/stats-cold.json"
echo "== warm restart (SIGTERM, checkpoint reload, re-query) =="
stop_server
[ -s "$CACHE" ] || { echo "error: no checkpoint was written" >&2; exit 1; }

start_server
query_round
check_round warm
"$SERVE" --client "$SOCK" --stats > "$OUT/stats-warm.json"

echo "== edit round (incremental re-analysis over one connection) =="
# An ordered edit sequence on the demo program: the client applies all
# three versions through one connection's edit session, so versions 2
# and 3 splice unchanged pairs from their predecessor. The final
# served report + graph must be byte-identical to a fresh CLI run on
# the last version — the serving side of the incr fuzz invariant.
cp "$REPO_ROOT/tests/inputs/demo.loop" "$tmp/edit1.loop"
sed 's/a\[i + 1\] = a\[i\] + 3/a[i + 2] = a[i] + 3/' \
  "$tmp/edit1.loop" > "$tmp/edit2.loop"
sed 's/for i = 2 to 20 do/for i = 2 to 21 do/' \
  "$tmp/edit2.loop" > "$tmp/edit3.loop"
"$SERVE" --client "$SOCK" --edit --directions --no-cache-markers \
  "$tmp/edit1.loop" "$tmp/edit2.loop" "$tmp/edit3.loop" \
  > "$tmp/edited.txt" 2> "$tmp/edit-stats.txt"
cat "$tmp/edit-stats.txt" >> "$OUT/server-stderr.txt"
# The client prints one report+graph per version; keep the last one
# (everything from the final report header on).
awk '/ reference pairs, / { n = NR } { lines[NR] = $0 }
     END { for (i = n; i <= NR; i++) print lines[i] }' \
  "$tmp/edited.txt" > "$tmp/edit-got.txt"
"$CLI" --directions --graph "$tmp/edit3.loop" > "$tmp/edit-want-raw.txt"
strip_cached "$tmp/edit-want-raw.txt" > "$tmp/edit-want.txt"
if ! diff "$tmp/edit-got.txt" "$tmp/edit-want.txt" > "$tmp/diff.txt"; then
  echo "FAIL(edit): spliced report differs from fresh edda-cli"
  head -20 "$tmp/diff.txt"
  exit 1
fi
# Later versions must actually reuse pairs from the session.
REUSED=$(sed -n 's/.* \([0-9][0-9]*\) reused.*/\1/p' \
         "$tmp/edit-stats.txt" | tail -1)
if [ -z "$REUSED" ] || [ "$REUSED" -eq 0 ]; then
  echo "error: edit round reused no pairs (got '${REUSED:-none}')" >&2
  exit 1
fi
echo "edit round: final version reused $REUSED pairs, report matches"

"$SERVE" --client "$SOCK" --stats > "$OUT/stats-edit.json"
grep -q '"edit_requests":3' "$OUT/stats-edit.json" || {
  echo "error: stats do not show 3 edit requests" >&2; exit 1; }
"$SERVE" --client "$SOCK" --shutdown > /dev/null
stop_server 2>/dev/null || true

# The warm round must be served from the reloaded store.
HIT=$(sed -n 's/.*"hit_rate_pct":\([0-9.]*\).*/\1/p' "$OUT/stats-warm.json")
WARM=$(sed -n 's/.*"warm_loaded_entries":\([0-9]*\).*/\1/p' \
       "$OUT/stats-warm.json")
echo "warm restart: loaded $WARM entries, hit rate ${HIT}%"
if [ -z "$HIT" ] || [ -z "$WARM" ] || [ "$WARM" -eq 0 ]; then
  echo "error: warm restart loaded no checkpoint entries" >&2
  exit 1
fi
if ! awk -v h="$HIT" -v m="$MIN_HIT" 'BEGIN { exit !(h >= m) }'; then
  echo "error: warm hit rate ${HIT}% is below ${MIN_HIT}%" >&2
  exit 1
fi
[ -s "$STATS_LOG" ] || { echo "error: stats log is empty" >&2; exit 1; }

echo "serve smoke passed (stats + per-request log in $OUT/)"
