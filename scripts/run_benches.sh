#!/bin/sh
# Runs every bench binary in order, as recorded in EXPERIMENTS.md.
#
# Usage: run_benches.sh [--json OUT.json] [BUILD_DIR] [EXTRA_ARGS...]
#
# The binary list is generated from the edda_add_bench() registrations
# in bench/CMakeLists.txt, so a newly added bench cannot silently drop
# out of the CI smoke run. EXTRA_ARGS are forwarded to every binary
# (benches ignore flags they do not understand).
#
# With --json, per-bench wall-clock timings plus the widening-ladder
# counters are also written to OUT.json (the BENCH_<n>.json artifact CI
# uploads): the synthetic suite must keep "Widened queries" at 0 (the
# 64-bit fast path), while the committed corpus flip case must decide
# only under widening. Timings are wall-clock milliseconds of each whole
# bench binary; compare them across CI runs, not within one.
set -e

JSON_OUT=
if [ "$1" = "--json" ]; then
  JSON_OUT=$2
  [ -n "$JSON_OUT" ] || { echo "error: --json needs a path" >&2; exit 2; }
  shift 2
fi
BUILD=${1:-build}
[ $# -gt 0 ] && shift

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
BENCH_CMAKE="$SCRIPT_DIR/../bench/CMakeLists.txt"
REPO_ROOT=$(CDPATH= cd -- "$SCRIPT_DIR/.." && pwd)

BENCHES=$(sed -n 's/^edda_add_bench(\([A-Za-z0-9_]*\)).*/\1/p' \
          "$BENCH_CMAKE")
if [ -z "$BENCHES" ]; then
  echo "error: no edda_add_bench() targets found in $BENCH_CMAKE" >&2
  exit 1
fi

now_ms() {
  # %N is GNU date; fall back to second granularity elsewhere.
  case $(date +%N) in
    *N*) echo $(( $(date +%s) * 1000 )) ;;
    *)   echo $(( $(date +%s%N) / 1000000 )) ;;
  esac
}

TIMINGS=
WIDENED_SUITE=
# shellcheck disable=SC2086  # word splitting of $BENCHES is the point
for b in $BENCHES; do
  if [ ! -x "$BUILD/bench/$b" ]; then
    echo "error: bench binary '$BUILD/bench/$b' is missing" >&2
    exit 1
  fi
  echo "===== $b ====="
  T0=$(now_ms)
  OUT=$("$BUILD/bench/$b" "$@")
  T1=$(now_ms)
  printf '%s\n\n' "$OUT"
  TIMINGS="$TIMINGS    \"$b\": $((T1 - T0)),\n"
  if [ "$b" = "table1_test_frequency" ]; then
    WIDENED_SUITE=$(printf '%s\n' "$OUT" |
                    sed -n 's/^Widened queries: \([0-9]*\).*/\1/p')
  fi
done
echo "===== micro_test_cost ====="
"$BUILD/bench/micro_test_cost" --benchmark_min_time=0.2 "$@"

[ -n "$JSON_OUT" ] || exit 0

# Widening counters beyond the suite: the demo program exercises the
# fast path end to end, and the committed corpus case is the
# seed-Unanalyzable problem that must now decide (only) at 128 bits.
DEMO_STATS=$("$BUILD/tools/edda-cli" --stats \
             "$REPO_ROOT/tests/inputs/demo.loop" | tail -1)
DEMO_QUERIES=$(printf '%s\n' "$DEMO_STATS" |
               sed -n 's/^queries: \([0-9]*\),.*/\1/p')
DEMO_WIDENED=$(printf '%s\n' "$DEMO_STATS" |
               sed -n 's/.*widened: \([0-9]*\).*/\1/p')
FLIP=tests/inputs/corpus/widen_svpc_huge_bounds.dep
FLIP_ANSWER=$("$BUILD/tools/edda-cli" --problem "$REPO_ROOT/$FLIP" |
              sed -n 's/^answer: \([a-z]*\).*/\1/p')
FLIP_NOWIDEN=$("$BUILD/tools/edda-cli" --problem --no-widen \
               "$REPO_ROOT/$FLIP" |
               sed -n 's/^answer: \([a-z]*\).*/\1/p')

{
  printf '{\n'
  printf '  "schema": "edda-bench",\n'
  printf '  "timings_ms": {\n'
  printf '%b' "$TIMINGS" | sed '$s/,$//'
  printf '  },\n'
  printf '  "widening": {\n'
  printf '    "suite_widened_queries": %s,\n' "${WIDENED_SUITE:-null}"
  printf '    "demo_queries": %s,\n' "${DEMO_QUERIES:-null}"
  printf '    "demo_widened": %s,\n' "${DEMO_WIDENED:-null}"
  printf '    "flip_case": "%s",\n' "$FLIP"
  printf '    "flip_answer": "%s",\n' "$FLIP_ANSWER"
  printf '    "flip_answer_no_widen": "%s"\n' "$FLIP_NOWIDEN"
  printf '  }\n'
  printf '}\n'
} > "$JSON_OUT"
echo "wrote $JSON_OUT"
