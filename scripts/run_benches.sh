#!/bin/sh
# Runs every bench binary in order, as recorded in EXPERIMENTS.md.
set -e
BUILD=${1:-build}
for b in table1_test_frequency table2_memoization table3_unique_cases \
         table4_direction_vectors table5_pruning table6_compile_cost \
         table7_symbolic fig1_loop_residue section7_accuracy \
         ext_shared_cache; do
  echo "===== $b ====="
  "$BUILD/bench/$b"
  echo
done
"$BUILD/bench/micro_test_cost" --benchmark_min_time=0.2
