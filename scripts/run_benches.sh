#!/bin/sh
# Runs every bench binary in order, as recorded in EXPERIMENTS.md.
#
# Usage: run_benches.sh [BUILD_DIR] [EXTRA_ARGS...]
#
# The binary list is generated from the edda_add_bench() registrations
# in bench/CMakeLists.txt, so a newly added bench cannot silently drop
# out of the CI smoke run. EXTRA_ARGS are forwarded to every binary
# (benches ignore flags they do not understand).
set -e
BUILD=${1:-build}
[ $# -gt 0 ] && shift

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
BENCH_CMAKE="$SCRIPT_DIR/../bench/CMakeLists.txt"

BENCHES=$(sed -n 's/^edda_add_bench(\([A-Za-z0-9_]*\)).*/\1/p' \
          "$BENCH_CMAKE")
if [ -z "$BENCHES" ]; then
  echo "error: no edda_add_bench() targets found in $BENCH_CMAKE" >&2
  exit 1
fi

for b in $BENCHES; do
  if [ ! -x "$BUILD/bench/$b" ]; then
    echo "error: bench binary '$BUILD/bench/$b' is missing" >&2
    exit 1
  fi
  echo "===== $b ====="
  "$BUILD/bench/$b" "$@"
  echo
done
echo "===== micro_test_cost ====="
"$BUILD/bench/micro_test_cost" --benchmark_min_time=0.2 "$@"
