#!/bin/sh
# Runs the edda-fuzz differential fuzzer for a wall-clock budget and
# collects any minimized reproducers.
#
# Usage: run_fuzz.sh [BUILD_DIR] [BUDGET_SECONDS] [OUT_DIR] [SEED]
#                    [EXTRA_ARGS...]
#
# EXTRA_ARGS are forwarded to edda-fuzz verbatim (e.g. --no-widen to
# smoke the historical 64-bit-only cascade, or --check dirs to spend
# the whole budget on the direction-vector oracle axis).
#
# Exit status is edda-fuzz's own: 0 when every iteration agreed across
# all axes, 1 when a mismatch was found (reproducers are in OUT_DIR,
# ready to be dropped into tests/inputs/corpus/), 2 on usage errors.
set -e
BUILD=${1:-build}
BUDGET=${2:-60}
OUT=${3:-fuzz-failures}
SEED=${4:-1}
for _ in 1 2 3 4; do
  [ $# -gt 0 ] && shift
done

FUZZ="$BUILD/tools/edda-fuzz"
if [ ! -x "$FUZZ" ]; then
  echo "error: '$FUZZ' is missing (build the edda-fuzz target)" >&2
  exit 2
fi

echo "edda-fuzz: seed $SEED, budget ${BUDGET}s, reproducers -> $OUT"
"$FUZZ" --seed "$SEED" --time-budget "$BUDGET" --out "$OUT" "$@"
