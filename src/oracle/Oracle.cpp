//===- oracle/Oracle.cpp - Brute-force ground truth -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "oracle/Oracle.h"

#include "support/IntMath.h"

using namespace edda;
using namespace edda::oracle;

namespace {

/// Shared recursive enumerator. Calls \p Visit on every integer point
/// satisfying bounds and equations; Visit returns false to stop early.
/// Returns nullopt when enumeration is inapplicable or too large.
template <typename VisitFn>
std::optional<bool> enumerate(const DependenceProblem &P,
                              const std::vector<XAffine> &ExtraLe0,
                              const OracleOptions &Opts, VisitFn Visit) {
  if (P.NumSymbolic != 0)
    return std::nullopt;
  const unsigned NumL = P.numLoopVars();
  for (unsigned L = 0; L < NumL; ++L) {
    if (!P.Lo[L] || !P.Hi[L])
      return std::nullopt;
    // Bounds may only reference earlier variables so left-to-right
    // enumeration can evaluate them.
    for (unsigned J = L; J < NumL; ++J)
      if (P.Lo[L]->Coeffs[J] != 0 || P.Hi[L]->Coeffs[J] != 0)
        return std::nullopt;
  }

  std::vector<int64_t> X(NumL, 0);
  uint64_t Visited = 0;
  bool Aborted = false;
  bool Stopped = false;

  auto Eval = [&X](const XAffine &Form) -> std::optional<int64_t> {
    CheckedInt Sum(Form.Const);
    for (unsigned J = 0; J < Form.Coeffs.size(); ++J)
      if (Form.Coeffs[J] != 0)
        Sum += CheckedInt(Form.Coeffs[J]) * X[J];
    return Sum.getOpt();
  };

  auto Rec = [&](auto &&Self, unsigned L) -> void {
    if (Stopped || Aborted)
      return;
    if (L == NumL) {
      for (const XAffine &Eq : P.Equations) {
        std::optional<int64_t> V = Eval(Eq);
        if (!V) {
          Aborted = true;
          return;
        }
        if (*V != 0)
          return;
      }
      for (const XAffine &Form : ExtraLe0) {
        std::optional<int64_t> V = Eval(Form);
        if (!V) {
          Aborted = true;
          return;
        }
        if (*V > 0)
          return;
      }
      if (!Visit(X))
        Stopped = true;
      return;
    }
    std::optional<int64_t> Lo = Eval(*P.Lo[L]);
    std::optional<int64_t> Hi = Eval(*P.Hi[L]);
    if (!Lo || !Hi) {
      Aborted = true;
      return;
    }
    for (int64_t V = *Lo; V <= *Hi; ++V) {
      if (++Visited > Opts.MaxPoints) {
        Aborted = true;
        return;
      }
      X[L] = V;
      Self(Self, L + 1);
      if (Stopped || Aborted)
        return;
    }
  };
  Rec(Rec, 0);
  if (Aborted)
    return std::nullopt;
  return Stopped;
}

/// Folds the symbolic columns of \p Form into its constant, keeping the
/// first \p NumLoopVars columns.
std::optional<XAffine> foldSymbolic(const XAffine &Form,
                                    unsigned NumLoopVars,
                                    const std::vector<int64_t> &Vals) {
  XAffine Out(NumLoopVars);
  for (unsigned J = 0; J < NumLoopVars; ++J)
    Out.Coeffs[J] = Form.Coeffs[J];
  CheckedInt C(Form.Const);
  for (unsigned K = 0; K < Vals.size(); ++K)
    C += CheckedInt(Form.Coeffs[NumLoopVars + K]) * Vals[K];
  std::optional<int64_t> V = C.getOpt();
  if (!V)
    return std::nullopt;
  Out.Const = *V;
  return Out;
}

} // namespace

std::optional<bool>
edda::oracle::oracleDependent(const DependenceProblem &Problem,
                              const std::vector<XAffine> &ExtraLe0,
                              const OracleOptions &Opts) {
  return enumerate(Problem, ExtraLe0, Opts,
                   [](const std::vector<int64_t> &) { return false; });
}

std::optional<std::set<DirVector>>
edda::oracle::oracleDirections(const DependenceProblem &Problem,
                               const OracleOptions &Opts) {
  std::optional<DirectionOracle> Info = oracleDirectionInfo(Problem, Opts);
  if (!Info)
    return std::nullopt;
  return std::move(Info->Patterns);
}

std::optional<DirectionOracle>
edda::oracle::oracleDirectionInfo(const DependenceProblem &Problem,
                                  const OracleOptions &Opts) {
  DirectionOracle Out;
  Out.PinnedDistances.assign(Problem.NumCommon, std::nullopt);
  bool First = true;
  std::vector<bool> StillPinned(Problem.NumCommon, true);
  std::optional<bool> Ran = enumerate(
      Problem, {}, Opts, [&](const std::vector<int64_t> &X) {
        DirVector V(Problem.NumCommon);
        for (unsigned K = 0; K < Problem.NumCommon; ++K) {
          int64_t A = X[Problem.xOfCommonA(K)];
          int64_t B = X[Problem.xOfCommonB(K)];
          V[K] = A < B ? Dir::Less : A == B ? Dir::Equal : Dir::Greater;
          std::optional<int64_t> Delta = checkedSub(B, A);
          if (First)
            Out.PinnedDistances[K] = Delta;
          else if (StillPinned[K] && Out.PinnedDistances[K] != Delta) {
            StillPinned[K] = false;
            Out.PinnedDistances[K] = std::nullopt;
          }
        }
        First = false;
        Out.Patterns.insert(std::move(V));
        return true; // keep enumerating
      });
  if (!Ran)
    return std::nullopt;
  return Out;
}

bool edda::oracle::dirMatches(const DirVector &Reported,
                              const DirVector &Concrete) {
  if (Reported.size() != Concrete.size())
    return false;
  for (unsigned K = 0; K < Reported.size(); ++K)
    if (Reported[K] != Dir::Any && Reported[K] != Concrete[K])
      return false;
  return true;
}

std::optional<DependenceProblem>
edda::oracle::concretize(const DependenceProblem &Problem,
                         const std::vector<int64_t> &SymValues) {
  if (SymValues.size() != Problem.NumSymbolic)
    return std::nullopt;
  const unsigned NumL = Problem.numLoopVars();
  DependenceProblem Out;
  Out.NumLoopsA = Problem.NumLoopsA;
  Out.NumLoopsB = Problem.NumLoopsB;
  Out.NumCommon = Problem.NumCommon;
  Out.NumSymbolic = 0;
  Out.Lo.resize(NumL);
  Out.Hi.resize(NumL);
  for (const XAffine &Eq : Problem.Equations) {
    std::optional<XAffine> F = foldSymbolic(Eq, NumL, SymValues);
    if (!F)
      return std::nullopt;
    Out.Equations.push_back(std::move(*F));
  }
  for (unsigned L = 0; L < NumL; ++L) {
    if (Problem.Lo[L]) {
      std::optional<XAffine> F = foldSymbolic(*Problem.Lo[L], NumL,
                                              SymValues);
      if (!F)
        return std::nullopt;
      Out.Lo[L] = std::move(*F);
    }
    if (Problem.Hi[L]) {
      std::optional<XAffine> F = foldSymbolic(*Problem.Hi[L], NumL,
                                              SymValues);
      if (!F)
        return std::nullopt;
      Out.Hi[L] = std::move(*F);
    }
  }
  return Out;
}

std::optional<std::vector<XAffine>>
edda::oracle::concretizeForms(const std::vector<XAffine> &Forms,
                              unsigned NumLoopVars,
                              const std::vector<int64_t> &SymValues) {
  std::vector<XAffine> Out;
  Out.reserve(Forms.size());
  for (const XAffine &Form : Forms) {
    std::optional<XAffine> F = foldSymbolic(Form, NumLoopVars,
                                            SymValues);
    if (!F)
      return std::nullopt;
    Out.push_back(std::move(*F));
  }
  return Out;
}

std::optional<bool>
edda::oracle::oracleDependentSampled(const DependenceProblem &Problem,
                                     const std::vector<XAffine> &ExtraLe0,
                                     const SymbolicOracleOptions &Opts) {
  if (Problem.NumSymbolic == 0)
    return oracleDependent(Problem, ExtraLe0, Opts.Base);
  if (Opts.SampleValues.empty())
    return std::nullopt;

  uint64_t Total = 1;
  for (unsigned K = 0; K < Problem.NumSymbolic; ++K) {
    Total *= Opts.SampleValues.size();
    if (Total > Opts.MaxValuations)
      return std::nullopt;
  }

  std::vector<int64_t> Values(Problem.NumSymbolic,
                              Opts.SampleValues.front());
  std::vector<unsigned> Odometer(Problem.NumSymbolic, 0);
  for (uint64_t V = 0; V < Total; ++V) {
    for (unsigned K = 0; K < Problem.NumSymbolic; ++K)
      Values[K] = Opts.SampleValues[Odometer[K]];

    std::optional<DependenceProblem> Concrete =
        concretize(Problem, Values);
    if (!Concrete)
      return std::nullopt;
    std::optional<std::vector<XAffine>> Extra =
        concretizeForms(ExtraLe0, Problem.numLoopVars(), Values);
    if (!Extra)
      return std::nullopt;
    std::optional<bool> Truth =
        oracleDependent(*Concrete, *Extra, Opts.Base);
    if (!Truth)
      return std::nullopt;
    if (*Truth)
      return true;

    for (unsigned K = 0; K < Problem.NumSymbolic; ++K) {
      if (++Odometer[K] < Opts.SampleValues.size())
        break;
      Odometer[K] = 0;
    }
  }
  return false;
}
