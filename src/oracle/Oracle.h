//===- oracle/Oracle.h - Brute-force ground truth --------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive-enumeration ground truth for small dependence problems:
/// the paper's exactness claims are machine-checked by comparing every
/// test's answer against enumeration of all integer points within the
/// loop bounds. Promoted out of the test tree so the differential
/// fuzzer (src/fuzz), the regression tests and the benches share one
/// oracle.
///
/// Symbolic problems are handled by *sampled concretization*: a grid of
/// concrete values is substituted for each symbolic constant and every
/// resulting concrete problem is enumerated. A sampled oracle is a
/// soundness check, not an exactness check — "no sampled valuation
/// admits a dependence" is necessary for independence but does not
/// prove it, so clients compare only in the sound direction (analyzer
/// says Independent => no sample may depend).
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ORACLE_ORACLE_H
#define EDDA_ORACLE_ORACLE_H

#include "deptest/Direction.h"
#include "deptest/Problem.h"

#include <optional>
#include <set>
#include <vector>

namespace edda {
namespace oracle {

/// Enumeration limits.
struct OracleOptions {
  /// Give up (return nullopt) past this many points.
  uint64_t MaxPoints = 4u << 20;
};

/// True/false when enumeration is conclusive: the problem must have no
/// symbolic variables and every loop variable needs both bounds, each
/// referencing only variables earlier in x order. Extra forms are
/// required <= 0 as in the cascade.
std::optional<bool>
oracleDependent(const DependenceProblem &Problem,
                const std::vector<XAffine> &ExtraLe0 = {},
                const OracleOptions &Opts = {});

/// All direction sign patterns (over the common loops) realized by some
/// dependence, by enumeration. Same applicability conditions.
std::optional<std::set<DirVector>>
oracleDirections(const DependenceProblem &Problem,
                 const OracleOptions &Opts = {});

/// Full direction/distance ground truth for the hierarchy fuzz axis.
struct DirectionOracle {
  /// Every concrete sign pattern over the common loops realized by some
  /// dependence point pair.
  std::set<DirVector> Patterns;
  /// Per common loop: the value of i'_k - i_k when it is identical
  /// across *all* dependence points (the only situation in which the
  /// analyzer may report a pinned distance); nullopt otherwise. All
  /// entries are nullopt when Patterns is empty.
  std::vector<std::optional<int64_t>> PinnedDistances;
};

/// Enumerates \p Problem and collects both the realized direction
/// patterns and the per-loop pinned iteration distances. Same
/// applicability conditions as oracleDependent.
std::optional<DirectionOracle>
oracleDirectionInfo(const DependenceProblem &Problem,
                    const OracleOptions &Opts = {});

/// True when \p Concrete (all components <, =, >) matches \p Reported
/// componentwise, treating '*' as a wildcard.
bool dirMatches(const DirVector &Reported, const DirVector &Concrete);

/// Substitutes one concrete value per symbolic constant, folding each
/// symbolic column into the constant terms of every equation and bound.
/// The result has NumSymbolic == 0 and numX() == numLoopVars(). Returns
/// nullopt when the substitution overflows 64-bit arithmetic.
std::optional<DependenceProblem>
concretize(const DependenceProblem &Problem,
           const std::vector<int64_t> &SymValues);

/// Rewrites extra constraint forms (over the original x layout) to the
/// concretized layout, folding the symbolic columns the same way.
std::optional<std::vector<XAffine>>
concretizeForms(const std::vector<XAffine> &Forms, unsigned NumLoopVars,
                const std::vector<int64_t> &SymValues);

/// Knobs for the sampled symbolic oracle.
struct SymbolicOracleOptions {
  OracleOptions Base;
  /// The per-constant sample grid. Includes negatives, zero and a few
  /// magnitudes so cancellation, sign and emptiness cases all occur.
  std::vector<int64_t> SampleValues = {-7, -2, -1, 0, 1, 2, 3, 5, 10};
  /// Give up (return nullopt) when the full cartesian grid over the
  /// symbolic constants exceeds this many valuations.
  uint64_t MaxValuations = 1024;
};

/// Sampled concretization: enumerates the cartesian grid of
/// SampleValues over the symbolic constants and returns true when some
/// sampled valuation admits a dependence. Returns nullopt when any
/// sample is itself inconclusive (missing bounds, overflow, too many
/// points) or the grid is too large. For problems without symbolic
/// constants this is exactly oracleDependent().
std::optional<bool>
oracleDependentSampled(const DependenceProblem &Problem,
                       const std::vector<XAffine> &ExtraLe0 = {},
                       const SymbolicOracleOptions &Opts = {});

} // namespace oracle
} // namespace edda

#endif // EDDA_ORACLE_ORACLE_H
