//===- fuzz/Shrink.cpp - Delta-debugging reproducer minimizer -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrink.h"

#include "ir/Program.h"
#include "parser/Parser.h"
#include "support/IntMath.h"

#include <optional>
#include <utility>

namespace edda {
namespace fuzz {

namespace {

XAffine dropFormColumn(const XAffine &F, unsigned Col) {
  XAffine R = F;
  R.Coeffs.erase(R.Coeffs.begin() + Col);
  return R;
}

/// Bounds that reference the dropped column cannot keep their meaning,
/// so they are dropped with it (the predicate revalidates anyway).
std::optional<XAffine> dropBoundColumn(const std::optional<XAffine> &B,
                                       unsigned Col) {
  if (!B || B->Coeffs[Col] != 0)
    return std::nullopt;
  return dropFormColumn(*B, Col);
}

/// Removes loop-variable column \p Col. Dropping one side of a common
/// pair demotes that pair (and, to keep the positional pairing intact,
/// every later pair) to non-common loops — this is the step that lets
/// reproducers reach a single loop variable.
DependenceProblem dropLoopVar(const DependenceProblem &P, unsigned Col) {
  bool IsA = Col < P.NumLoopsA;
  unsigned SideIdx = IsA ? Col : Col - P.NumLoopsA;

  DependenceProblem Q;
  Q.NumLoopsA = P.NumLoopsA - (IsA ? 1u : 0u);
  Q.NumLoopsB = P.NumLoopsB - (IsA ? 0u : 1u);
  Q.NumCommon = SideIdx < P.NumCommon ? SideIdx : P.NumCommon;
  Q.NumSymbolic = P.NumSymbolic;
  for (const XAffine &Eq : P.Equations)
    Q.Equations.push_back(dropFormColumn(Eq, Col));
  for (unsigned L = 0; L < P.numLoopVars(); ++L) {
    if (L == Col)
      continue;
    Q.Lo.push_back(dropBoundColumn(P.Lo[L], Col));
    Q.Hi.push_back(dropBoundColumn(P.Hi[L], Col));
  }
  return Q;
}

/// Swaps common pairs \p K1 and \p K2: both the A-side and B-side
/// columns exchange places in every form, and the bound slots move with
/// them. Used to rotate a mismatch-carrying pair into the outermost
/// slot so the demotion pass can strip the others.
DependenceProblem swapCommonPairs(const DependenceProblem &P, unsigned K1,
                                  unsigned K2) {
  auto SwapCols = [](XAffine &F, unsigned C1, unsigned C2) {
    std::swap(F.Coeffs[C1], F.Coeffs[C2]);
  };
  DependenceProblem Q = P;
  for (auto [C1, C2] : {std::pair<unsigned, unsigned>{K1, K2},
                        {P.NumLoopsA + K1, P.NumLoopsA + K2}}) {
    for (XAffine &Eq : Q.Equations)
      SwapCols(Eq, C1, C2);
    for (unsigned L = 0; L < Q.numLoopVars(); ++L) {
      if (Q.Lo[L])
        SwapCols(*Q.Lo[L], C1, C2);
      if (Q.Hi[L])
        SwapCols(*Q.Hi[L], C1, C2);
    }
    std::swap(Q.Lo[C1], Q.Lo[C2]);
    std::swap(Q.Hi[C1], Q.Hi[C2]);
  }
  return Q;
}

DependenceProblem dropSymbolic(const DependenceProblem &P, unsigned K) {
  unsigned Col = P.numLoopVars() + K;
  DependenceProblem Q;
  Q.NumLoopsA = P.NumLoopsA;
  Q.NumLoopsB = P.NumLoopsB;
  Q.NumCommon = P.NumCommon;
  Q.NumSymbolic = P.NumSymbolic - 1;
  for (const XAffine &Eq : P.Equations)
    Q.Equations.push_back(dropFormColumn(Eq, Col));
  for (unsigned L = 0; L < P.numLoopVars(); ++L) {
    Q.Lo.push_back(dropBoundColumn(P.Lo[L], Col));
    Q.Hi.push_back(dropBoundColumn(P.Hi[L], Col));
  }
  return Q;
}

} // namespace

DependenceProblem
shrinkProblem(DependenceProblem P,
              const std::function<bool(const DependenceProblem &)> &Fails,
              unsigned MaxRounds) {
  // Accept a candidate when the failure persists.
  auto Accept = [&](DependenceProblem &Q) {
    if (!Q.wellFormed() || !Fails(Q))
      return false;
    P = std::move(Q);
    return true;
  };

  bool Changed = true;
  for (unsigned Round = 0; Changed && Round < MaxRounds; ++Round) {
    Changed = false;

    for (unsigned I = 0; P.Equations.size() > 1 && I < P.Equations.size();) {
      DependenceProblem Q = P;
      Q.Equations.erase(Q.Equations.begin() + I);
      if (Accept(Q))
        Changed = true;
      else
        ++I;
    }

    for (unsigned Col = 0; Col < P.numLoopVars();) {
      DependenceProblem Q = dropLoopVar(P, Col);
      if (Accept(Q))
        Changed = true;
      else
        ++Col;
    }

    // Direction-axis failures often survive with fewer *common* loops
    // even when no variable can be dropped outright: demoting the
    // innermost pair to plain per-side loops shortens the direction
    // vectors without touching the constraint system.
    while (P.NumCommon > 0) {
      DependenceProblem Q = P;
      Q.NumCommon = P.NumCommon - 1;
      if (!Accept(Q))
        break;
      Changed = true;
    }

    // When the innermost pair itself carries the mismatch, demotion
    // alone stalls: rotate each other pair into the innermost slot and
    // demote it there instead.
    for (unsigned K = 0; P.NumCommon > 1 && K + 1 < P.NumCommon; ++K) {
      DependenceProblem Q = swapCommonPairs(P, K, P.NumCommon - 1);
      Q.NumCommon = P.NumCommon - 1;
      if (Accept(Q)) {
        Changed = true;
        break;
      }
    }

    for (unsigned K = 0; K < P.NumSymbolic;) {
      DependenceProblem Q = dropSymbolic(P, K);
      if (Accept(Q))
        Changed = true;
      else
        ++K;
    }

    for (unsigned L = 0; L < P.numLoopVars(); ++L) {
      if (P.Lo[L]) {
        DependenceProblem Q = P;
        Q.Lo[L] = std::nullopt;
        Changed |= Accept(Q);
      }
      if (P.Hi[L]) {
        DependenceProblem Q = P;
        Q.Hi[L] = std::nullopt;
        Changed |= Accept(Q);
      }
    }

    // Eliminate an equation that pins a single variable to a constant
    // by substituting the constant everywhere and dropping the column:
    // equation-dropping alone cannot remove such an equation (the
    // mismatch usually needs the pinning), but the substituted problem
    // keeps it implicitly.
    for (unsigned I = 0; I < P.Equations.size(); ++I) {
      const XAffine &Eq = P.Equations[I];
      int Col = -1;
      bool Single = true;
      for (unsigned J = 0; J < P.numX() && Single; ++J) {
        if (Eq.Coeffs[J] == 0)
          continue;
        Single = Col < 0;
        Col = J;
      }
      if (!Single || Col < 0 || Eq.Const % Eq.Coeffs[Col] != 0)
        continue;
      int64_t V = -(Eq.Const / Eq.Coeffs[Col]);
      DependenceProblem Q = P;
      Q.Equations.erase(Q.Equations.begin() + I);
      bool Ok = true;
      auto Subst = [&](XAffine &F) {
        if (F.Coeffs[Col] == 0)
          return;
        std::optional<int64_t> Term = checkedMul(F.Coeffs[Col], V);
        std::optional<int64_t> NewConst =
            Term ? checkedAdd(F.Const, *Term) : std::nullopt;
        if (!NewConst) {
          Ok = false;
          return;
        }
        F.Coeffs[Col] = 0;
        F.Const = *NewConst;
      };
      for (XAffine &F : Q.Equations)
        Subst(F);
      for (unsigned L = 0; L < Q.numLoopVars(); ++L) {
        if (Q.Lo[L])
          Subst(*Q.Lo[L]);
        if (Q.Hi[L])
          Subst(*Q.Hi[L]);
      }
      if (!Ok)
        continue;
      DependenceProblem Q2 = unsigned(Col) < Q.numLoopVars()
                                 ? dropLoopVar(Q, Col)
                                 : dropSymbolic(Q, Col - Q.numLoopVars());
      if (Accept(Q2)) {
        Changed = true;
        break;
      }
      // Column not droppable (still bounded apart): keep the
      // substituted problem with the variable pinned by its bounds.
      if (unsigned(Col) < Q.numLoopVars()) {
        Q.Lo[Col] = XAffine(Q.numX());
        Q.Lo[Col]->Const = V;
        Q.Hi[Col] = XAffine(Q.numX());
        Q.Hi[Col]->Const = V;
      }
      if (Accept(Q)) {
        Changed = true;
        break;
      }
    }

    // Substitute a variable occurrence inside an affine bound by one of
    // that variable's constant-bound endpoints. The bound loses its
    // dependence on the variable, which often unlocks dropping the
    // variable outright on the next round — triangular nests otherwise
    // pin their outer loop forever.
    auto ConstOnly =
        [](const std::optional<XAffine> &B) -> std::optional<int64_t> {
      if (!B)
        return std::nullopt;
      for (int64_t C : B->Coeffs)
        if (C != 0)
          return std::nullopt;
      return B->Const;
    };
    for (unsigned L = 0; L < P.numLoopVars(); ++L) {
      for (int Side = 0; Side < 2; ++Side) {
        auto Form = [&](DependenceProblem &Q) -> std::optional<XAffine> & {
          return Side ? Q.Hi[L] : Q.Lo[L];
        };
        for (unsigned J = 0; J < P.numLoopVars(); ++J) {
          if (!Form(P) || Form(P)->Coeffs[J] == 0)
            continue;
          for (bool AtHi : {true, false}) {
            std::optional<int64_t> V =
                ConstOnly(AtHi ? P.Hi[J] : P.Lo[J]);
            if (!V)
              continue;
            DependenceProblem Q = P;
            XAffine &F = *Form(Q);
            std::optional<int64_t> Term = checkedMul(F.Coeffs[J], *V);
            std::optional<int64_t> NewConst =
                Term ? checkedAdd(F.Const, *Term) : std::nullopt;
            if (!NewConst)
              continue;
            F.Coeffs[J] = 0;
            F.Const = *NewConst;
            if (Accept(Q)) {
              Changed = true;
              break;
            }
          }
        }
      }
    }

    // Simplify the forms that remain: zero coefficients, then pull
    // constants toward zero (halving gives log-many candidates).
    auto SimplifyForm = [&](auto GetForm) {
      for (unsigned J = 0; J <= P.numX(); ++J) {
        DependenceProblem Q = P;
        XAffine *F = GetForm(Q);
        if (!F)
          return;
        int64_t &Slot = J < P.numX() ? F->Coeffs[J] : F->Const;
        if (Slot == 0)
          continue;
        int64_t Orig = Slot;
        Slot = 0;
        if (Accept(Q)) {
          Changed = true;
          continue;
        }
        Q = P;
        XAffine *F2 = GetForm(Q);
        int64_t &Slot2 = J < P.numX() ? F2->Coeffs[J] : F2->Const;
        Slot2 = Orig / 2;
        if (Slot2 != Orig && Accept(Q))
          Changed = true;
      }
    };
    for (unsigned I = 0; I < P.Equations.size(); ++I)
      SimplifyForm([I](DependenceProblem &Q) -> XAffine * {
        return I < Q.Equations.size() ? &Q.Equations[I] : nullptr;
      });
    for (unsigned L = 0; L < P.numLoopVars(); ++L) {
      SimplifyForm([L](DependenceProblem &Q) -> XAffine * {
        return L < Q.Lo.size() && Q.Lo[L] ? &*Q.Lo[L] : nullptr;
      });
      SimplifyForm([L](DependenceProblem &Q) -> XAffine * {
        return L < Q.Hi.size() && Q.Hi[L] ? &*Q.Hi[L] : nullptr;
      });
    }
  }
  return P;
}

namespace {

/// Pre-order paths to every statement (indices through nested bodies).
void collectPaths(const std::vector<StmtPtr> &Body,
                  std::vector<unsigned> &Prefix,
                  std::vector<std::vector<unsigned>> &Out) {
  for (unsigned I = 0; I < Body.size(); ++I) {
    Prefix.push_back(I);
    Out.push_back(Prefix);
    if (Body[I]->kind() == StmtKind::Loop)
      collectPaths(asLoop(*Body[I]).body(), Prefix, Out);
    Prefix.pop_back();
  }
}

std::vector<StmtPtr> *parentBody(Program &Prog,
                                 const std::vector<unsigned> &Path) {
  std::vector<StmtPtr> *B = &Prog.body();
  for (unsigned I = 0; I + 1 < Path.size(); ++I)
    B = &asLoop(*(*B)[Path[I]]).body();
  return B;
}

} // namespace

std::string
shrinkProgramSource(std::string Source,
                    const std::function<bool(const std::string &)> &Fails,
                    unsigned MaxRounds) {
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    ParseResult R = parseProgram(Source);
    if (!R.succeeded())
      return Source;

    std::vector<std::vector<unsigned>> Paths;
    std::vector<unsigned> Prefix;
    collectPaths(R.Prog->body(), Prefix, Paths);

    // Try removing whole subtrees, largest first (pre-order puts a loop
    // before its body). A successful removal invalidates the collected
    // paths, so restart the scan from a fresh parse.
    bool Changed = false;
    for (const std::vector<unsigned> &Path : Paths) {
      Program Copy = *R.Prog;
      std::vector<StmtPtr> *B = parentBody(Copy, Path);
      B->erase(B->begin() + Path.back());
      std::string Candidate = Copy.print();
      if (Fails(Candidate)) {
        Source = std::move(Candidate);
        Changed = true;
        break;
      }
    }
    if (!Changed)
      return Source;
  }
  return Source;
}

} // namespace fuzz
} // namespace edda
