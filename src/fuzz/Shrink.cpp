//===- fuzz/Shrink.cpp - Delta-debugging reproducer minimizer -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrink.h"

#include "ir/Program.h"
#include "parser/Parser.h"

#include <optional>
#include <utility>

namespace edda {
namespace fuzz {

namespace {

XAffine dropFormColumn(const XAffine &F, unsigned Col) {
  XAffine R = F;
  R.Coeffs.erase(R.Coeffs.begin() + Col);
  return R;
}

/// Bounds that reference the dropped column cannot keep their meaning,
/// so they are dropped with it (the predicate revalidates anyway).
std::optional<XAffine> dropBoundColumn(const std::optional<XAffine> &B,
                                       unsigned Col) {
  if (!B || B->Coeffs[Col] != 0)
    return std::nullopt;
  return dropFormColumn(*B, Col);
}

/// Removes loop-variable column \p Col. Dropping one side of a common
/// pair demotes that pair (and, to keep the positional pairing intact,
/// every later pair) to non-common loops — this is the step that lets
/// reproducers reach a single loop variable.
DependenceProblem dropLoopVar(const DependenceProblem &P, unsigned Col) {
  bool IsA = Col < P.NumLoopsA;
  unsigned SideIdx = IsA ? Col : Col - P.NumLoopsA;

  DependenceProblem Q;
  Q.NumLoopsA = P.NumLoopsA - (IsA ? 1u : 0u);
  Q.NumLoopsB = P.NumLoopsB - (IsA ? 0u : 1u);
  Q.NumCommon = SideIdx < P.NumCommon ? SideIdx : P.NumCommon;
  Q.NumSymbolic = P.NumSymbolic;
  for (const XAffine &Eq : P.Equations)
    Q.Equations.push_back(dropFormColumn(Eq, Col));
  for (unsigned L = 0; L < P.numLoopVars(); ++L) {
    if (L == Col)
      continue;
    Q.Lo.push_back(dropBoundColumn(P.Lo[L], Col));
    Q.Hi.push_back(dropBoundColumn(P.Hi[L], Col));
  }
  return Q;
}

DependenceProblem dropSymbolic(const DependenceProblem &P, unsigned K) {
  unsigned Col = P.numLoopVars() + K;
  DependenceProblem Q;
  Q.NumLoopsA = P.NumLoopsA;
  Q.NumLoopsB = P.NumLoopsB;
  Q.NumCommon = P.NumCommon;
  Q.NumSymbolic = P.NumSymbolic - 1;
  for (const XAffine &Eq : P.Equations)
    Q.Equations.push_back(dropFormColumn(Eq, Col));
  for (unsigned L = 0; L < P.numLoopVars(); ++L) {
    Q.Lo.push_back(dropBoundColumn(P.Lo[L], Col));
    Q.Hi.push_back(dropBoundColumn(P.Hi[L], Col));
  }
  return Q;
}

} // namespace

DependenceProblem
shrinkProblem(DependenceProblem P,
              const std::function<bool(const DependenceProblem &)> &Fails,
              unsigned MaxRounds) {
  // Accept a candidate when the failure persists.
  auto Accept = [&](DependenceProblem &Q) {
    if (!Q.wellFormed() || !Fails(Q))
      return false;
    P = std::move(Q);
    return true;
  };

  bool Changed = true;
  for (unsigned Round = 0; Changed && Round < MaxRounds; ++Round) {
    Changed = false;

    for (unsigned I = 0; P.Equations.size() > 1 && I < P.Equations.size();) {
      DependenceProblem Q = P;
      Q.Equations.erase(Q.Equations.begin() + I);
      if (Accept(Q))
        Changed = true;
      else
        ++I;
    }

    for (unsigned Col = 0; Col < P.numLoopVars();) {
      DependenceProblem Q = dropLoopVar(P, Col);
      if (Accept(Q))
        Changed = true;
      else
        ++Col;
    }

    for (unsigned K = 0; K < P.NumSymbolic;) {
      DependenceProblem Q = dropSymbolic(P, K);
      if (Accept(Q))
        Changed = true;
      else
        ++K;
    }

    for (unsigned L = 0; L < P.numLoopVars(); ++L) {
      if (P.Lo[L]) {
        DependenceProblem Q = P;
        Q.Lo[L] = std::nullopt;
        Changed |= Accept(Q);
      }
      if (P.Hi[L]) {
        DependenceProblem Q = P;
        Q.Hi[L] = std::nullopt;
        Changed |= Accept(Q);
      }
    }

    // Simplify the forms that remain: zero coefficients, then pull
    // constants toward zero (halving gives log-many candidates).
    auto SimplifyForm = [&](auto GetForm) {
      for (unsigned J = 0; J <= P.numX(); ++J) {
        DependenceProblem Q = P;
        XAffine *F = GetForm(Q);
        if (!F)
          return;
        int64_t &Slot = J < P.numX() ? F->Coeffs[J] : F->Const;
        if (Slot == 0)
          continue;
        int64_t Orig = Slot;
        Slot = 0;
        if (Accept(Q)) {
          Changed = true;
          continue;
        }
        Q = P;
        XAffine *F2 = GetForm(Q);
        int64_t &Slot2 = J < P.numX() ? F2->Coeffs[J] : F2->Const;
        Slot2 = Orig / 2;
        if (Slot2 != Orig && Accept(Q))
          Changed = true;
      }
    };
    for (unsigned I = 0; I < P.Equations.size(); ++I)
      SimplifyForm([I](DependenceProblem &Q) -> XAffine * {
        return I < Q.Equations.size() ? &Q.Equations[I] : nullptr;
      });
    for (unsigned L = 0; L < P.numLoopVars(); ++L) {
      SimplifyForm([L](DependenceProblem &Q) -> XAffine * {
        return L < Q.Lo.size() && Q.Lo[L] ? &*Q.Lo[L] : nullptr;
      });
      SimplifyForm([L](DependenceProblem &Q) -> XAffine * {
        return L < Q.Hi.size() && Q.Hi[L] ? &*Q.Hi[L] : nullptr;
      });
    }
  }
  return P;
}

namespace {

/// Pre-order paths to every statement (indices through nested bodies).
void collectPaths(const std::vector<StmtPtr> &Body,
                  std::vector<unsigned> &Prefix,
                  std::vector<std::vector<unsigned>> &Out) {
  for (unsigned I = 0; I < Body.size(); ++I) {
    Prefix.push_back(I);
    Out.push_back(Prefix);
    if (Body[I]->kind() == StmtKind::Loop)
      collectPaths(asLoop(*Body[I]).body(), Prefix, Out);
    Prefix.pop_back();
  }
}

std::vector<StmtPtr> *parentBody(Program &Prog,
                                 const std::vector<unsigned> &Path) {
  std::vector<StmtPtr> *B = &Prog.body();
  for (unsigned I = 0; I + 1 < Path.size(); ++I)
    B = &asLoop(*(*B)[Path[I]]).body();
  return B;
}

} // namespace

std::string
shrinkProgramSource(std::string Source,
                    const std::function<bool(const std::string &)> &Fails,
                    unsigned MaxRounds) {
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    ParseResult R = parseProgram(Source);
    if (!R.succeeded())
      return Source;

    std::vector<std::vector<unsigned>> Paths;
    std::vector<unsigned> Prefix;
    collectPaths(R.Prog->body(), Prefix, Paths);

    // Try removing whole subtrees, largest first (pre-order puts a loop
    // before its body). A successful removal invalidates the collected
    // paths, so restart the scan from a fresh parse.
    bool Changed = false;
    for (const std::vector<unsigned> &Path : Paths) {
      Program Copy = *R.Prog;
      std::vector<StmtPtr> *B = parentBody(Copy, Path);
      B->erase(B->begin() + Path.back());
      std::string Candidate = Copy.print();
      if (Fails(Candidate)) {
        Source = std::move(Candidate);
        Changed = true;
        break;
      }
    }
    if (!Changed)
      return Source;
  }
  return Source;
}

} // namespace fuzz
} // namespace edda
