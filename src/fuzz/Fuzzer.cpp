//===- fuzz/Fuzzer.cpp - Seeded differential fuzzer -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "analysis/Analyzer.h"
#include "analysis/DependenceGraph.h"
#include "analysis/Incremental.h"
#include "deptest/Cascade.h"
#include "deptest/Direction.h"
#include "deptest/Memo.h"
#include "deptest/ProblemIO.h"
#include "deptest/TestPipeline.h"
#include "fuzz/Shrink.h"
#include "oracle/Oracle.h"
#include "parser/Parser.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unistd.h>

namespace edda {
namespace fuzz {

const char *fuzzAxisName(FuzzAxis Axis) {
  switch (Axis) {
  case FuzzAxis::Oracle:
    return "oracle";
  case FuzzAxis::Dirs:
    return "dirs";
  case FuzzAxis::Pipeline:
    return "pipeline";
  case FuzzAxis::Widen:
    return "widen";
  case FuzzAxis::Threads:
    return "threads";
  case FuzzAxis::Memo:
    return "memo";
  case FuzzAxis::Incr:
    return "incr";
  case FuzzAxis::Parse:
    return "parse";
  }
  return "unknown";
}

const char *injectedBugName(InjectedBug Bug) {
  switch (Bug) {
  case InjectedBug::None:
    return nullptr;
  case InjectedBug::NegateEqConst:
    return "negate-eq-const";
  case InjectedBug::MisSignDirPrune:
    return "dir-prune-sign";
  case InjectedBug::StaleFingerprint:
    return "stale-fingerprint";
  }
  return nullptr;
}

namespace {

namespace fs = std::filesystem;
using oracle::oracleDependent;
using oracle::oracleDependentSampled;

/// Perturbs the problem handed to the cascade under test; the oracle
/// always judges the original. MisSignDirPrune is not a problem
/// perturbation — it rides in as a DirectionOptions hook, so only the
/// direction hierarchy (and hence only the dirs axis) can see it.
DependenceProblem applyBug(DependenceProblem P, InjectedBug Bug) {
  if (Bug == InjectedBug::NegateEqConst && !P.Equations.empty())
    P.Equations[0].Const = -P.Equations[0].Const;
  return P;
}

std::string answerName(DepAnswer A) {
  switch (A) {
  case DepAnswer::Independent:
    return "independent";
  case DepAnswer::Dependent:
    return "dependent";
  case DepAnswer::Unknown:
    return "unknown";
  }
  return "?";
}

/// Display names for the 2^3 direction-option combinations, indexed by
/// mask bit 0 = EliminateUnusedVars, bit 1 = DistanceVectorPruning,
/// bit 2 = SeparableDimensions.
const char *const DirComboNames[8] = {
    "plain",     "elim",      "prune",     "elim+prune",
    "sep",       "elim+sep",  "prune+sep", "elim+prune+sep"};

std::string renderVectors(const std::vector<DirVector> &Vectors) {
  if (Vectors.empty())
    return "{}";
  std::string Out = "{";
  for (unsigned I = 0; I < Vectors.size(); ++I) {
    if (I)
      Out += " ";
    Out += dirVectorStr(Vectors[I]);
  }
  Out += "}";
  return Out;
}

/// Oracle-side checks for one option combination of the dirs axis.
/// \p SoundOnly restricts the comparison to the sound direction — used
/// for sampled symbolic concretizations, where a Dependent root or a
/// reported vector may be realized only off the sample grid, but a
/// missing pattern, an Independent root over a dependence, or a wrong
/// pinned distance is a definite bug at any valuation.
std::optional<std::string>
dirComboVsTruth(const char *Combo, const DirectionResult &R,
                const oracle::DirectionOracle &Truth, bool SoundOnly,
                const std::string &Where) {
  // Soundness: every concrete direction pattern must be covered by
  // some reported vector ('*' is a wildcard).
  for (const DirVector &Concrete : Truth.Patterns) {
    bool Covered = false;
    for (const DirVector &V : R.Vectors)
      Covered |= oracle::dirMatches(V, Concrete);
    if (!Covered)
      return std::string("dirs[") + Combo + "]: concrete direction " +
             dirVectorStr(Concrete) + Where +
             " is covered by no reported vector " +
             renderVectors(R.Vectors);
  }
  if (!Truth.Patterns.empty() && R.RootAnswer == DepAnswer::Independent)
    return std::string("dirs[") + Combo +
           "]: root says independent but a dependence exists" + Where;
  if (!SoundOnly) {
    if (Truth.Patterns.empty() && R.RootAnswer == DepAnswer::Dependent)
      return std::string("dirs[") + Combo +
             "]: root says dependent but enumeration finds no point";
    // Minimality: an Exact result may not report a vector that matches
    // zero concrete patterns.
    if (R.Exact)
      for (const DirVector &V : R.Vectors) {
        bool Matches = false;
        for (const DirVector &Concrete : Truth.Patterns)
          Matches |= oracle::dirMatches(V, Concrete);
        if (!Matches)
          return std::string("dirs[") + Combo +
                 "]: exact result reports " + dirVectorStr(V) +
                 " which matches no concrete direction";
      }
  }
  // A pinned distance claims *every* dependence pair has that exact
  // i'_k - i_k, so it binds at every concretization with points.
  if (!Truth.Patterns.empty())
    for (unsigned K = 0;
         K < R.Distances.size() && K < Truth.PinnedDistances.size();
         ++K) {
      if (!R.Distances[K])
        continue;
      if (!Truth.PinnedDistances[K])
        return std::string("dirs[") + Combo + "]: reported distance[" +
               std::to_string(K) + "] = " +
               std::to_string(*R.Distances[K]) +
               " but the concrete i'_k - i_k is not constant" + Where;
      if (*Truth.PinnedDistances[K] != *R.Distances[K])
        return std::string("dirs[") + Combo + "]: reported distance[" +
               std::to_string(K) + "] = " +
               std::to_string(*R.Distances[K]) + " but enumeration pins " +
               std::to_string(*Truth.PinnedDistances[K]) + Where;
    }
  return std::nullopt;
}

/// A collision-safe scratch path (parallel ctest runs fuzz too).
std::string tempCachePath(const char *Tag) {
  std::ostringstream OS;
  OS << "edda-fuzz-" << ::getpid() << "-" << Tag << ".memo";
  return (fs::temp_directory_path() / OS.str()).string();
}

/// Single-problem cache persistence check; doubles as the memo-axis
/// shrink predicate.
bool memoRoundTripFails(const DependenceProblem &P, bool Widen) {
  DependenceCache C1;
  CascadeOptions CO;
  CO.Widen = Widen;
  CascadeResult R = testDependence(P, CO);
  C1.insertFull(P, R);
  std::optional<CascadeResult> Expected = C1.lookupFull(P);
  if (!Expected)
    return false;
  std::string Path = tempCachePath("shrink");
  bool Failed = true;
  if (C1.saveToFile(Path)) {
    DependenceCache C2;
    if (C2.loadFromFile(Path)) {
      std::optional<CascadeResult> Got = C2.lookupFull(P);
      Failed = !Got || Got->Answer != Expected->Answer ||
               Got->DecidedBy != Expected->DecidedBy ||
               Got->Exact != Expected->Exact ||
               Got->Widened != Expected->Widened;
    }
  }
  std::error_code EC;
  fs::remove(Path, EC);
  return Failed;
}

/// Per-pair comparison for the threads and whole-program memo axes.
/// \p CacheSensitive also requires identical FromCache flags (true for
/// the serial-vs-threads bit-identical guarantee; false across a
/// save/load, where hitting the preloaded cache is the point).
std::optional<std::string> comparePairs(const AnalysisResult &A,
                                        const AnalysisResult &B,
                                        bool CacheSensitive) {
  if (A.Refs.size() != B.Refs.size())
    return "reference count mismatch";
  if (A.Pairs.size() != B.Pairs.size())
    return "pair count mismatch";
  for (size_t I = 0; I < A.Pairs.size(); ++I) {
    const DependencePair &PA = A.Pairs[I];
    const DependencePair &PB = B.Pairs[I];
    std::ostringstream Where;
    Where << "pair " << I << " (refs " << PA.RefA << "," << PA.RefB
          << "): ";
    if (PA.RefA != PB.RefA || PA.RefB != PB.RefB)
      return Where.str() + "ref indices differ";
    if (PA.Answer != PB.Answer)
      return Where.str() + "answer " + answerName(PA.Answer) + " vs " +
             answerName(PB.Answer);
    if (PA.DecidedBy != PB.DecidedBy)
      return Where.str() + std::string("decider ") +
             testKindName(PA.DecidedBy) + " vs " +
             testKindName(PB.DecidedBy);
    if (PA.Exact != PB.Exact)
      return Where.str() + "exactness differs";
    if (CacheSensitive && PA.FromCache != PB.FromCache)
      return Where.str() + "cache provenance differs";
    if (PA.Directions.has_value() != PB.Directions.has_value())
      return Where.str() + "direction presence differs";
    if (PA.Directions &&
        (PA.Directions->RootAnswer != PB.Directions->RootAnswer ||
         PA.Directions->Vectors != PB.Directions->Vectors ||
         PA.Directions->Distances != PB.Directions->Distances))
      return Where.str() + "direction vectors differ";
    if (PA.Directions &&
        (PA.Directions->Exact != PB.Directions->Exact ||
         PA.Directions->Widened != PB.Directions->Widened ||
         PA.Directions->RootWidened != PB.Directions->RootWidened))
      return Where.str() + "direction exact/widened bits differ";
  }
  return std::nullopt;
}

/// One incremental edit-loop run for the incr axis: applies the edit
/// sequence named by \p EditSeeds to \p Source step by step through an
/// IncrementalSession (print -> parse after every edit, as an
/// editor-driven loop would, which also exercises fingerprint
/// stability across re-parsing) and compares the spliced graph's
/// rendering against a from-scratch analysis after every step. Returns
/// the first mismatch description, empty when every step agrees; this
/// doubles as the axis's shrink predicate (non-empty means fails).
std::string incrSequenceMismatch(const std::string &Source,
                                 const std::vector<uint64_t> &EditSeeds,
                                 bool Widen, bool InjectStale) {
  ParseResult PR = parseProgram(Source);
  if (!PR.succeeded())
    return "";
  AnalyzerOptions Fresh;
  Fresh.ComputeDirections = true;
  Fresh.Cascade.Widen = Widen;
  Fresh.Direction.Cascade.Widen = Widen;
  // Only the session under test carries the injected bug; the
  // from-scratch baseline always analyzes honestly.
  AnalyzerOptions Incr = Fresh;
  Incr.InjectStaleFingerprint = InjectStale;
  IncrementalSession Session(Incr);

  Program Master = *PR.Prog; // Un-prepassed; edits apply here.
  Session.update(Master);

  for (size_t E = 0; E < EditSeeds.size(); ++E) {
    SplitRng ERng(EditSeeds[E]);
    std::string EditDesc = applyRandomEdit(Master, ERng);
    ParseResult EP = parseProgram(Master.print());
    if (!EP.succeeded())
      return ""; // An edit-model bug, not an incr mismatch.
    Master = std::move(*EP.Prog);

    Session.update(Master);
    std::string Spliced = Session.graph().str(Session.program());

    Program Scratch = Master;
    DependenceAnalyzer Analyzer(Fresh);
    DependenceGraph FreshGraph = DependenceGraph::build(Scratch, Analyzer);
    if (Spliced != FreshGraph.str(Scratch))
      return "edit " + std::to_string(E + 1) + "/" +
             std::to_string(EditSeeds.size()) + " (" + EditDesc +
             "): spliced graph diverges from from-scratch analysis";
  }
  return "";
}

class FuzzRunner {
public:
  FuzzRunner(const FuzzOptions &Opts, std::ostream *Log)
      : Opts(Opts), Log(Log) {
    // Small spans keep enumeration cheap; the cap below still covers
    // every problem the generator can emit with room to spare.
    OOpts.MaxPoints = 1u << 18;
    SOpts.Base = OOpts;
    for (const char *Spec : {"fm,residue,acyclic,svpc,gcd,const",
                             "svpc,acyclic,residue,const,gcd,fm"}) {
      std::shared_ptr<const TestPipeline> P = makePipeline(Spec);
      assert(P && "permuted pipeline spec failed to parse");
      Permuted.emplace_back(Spec, std::move(P));
    }
  }

  FuzzSummary run();

private:
  const FuzzOptions &Opts;
  std::ostream *Log;
  FuzzSummary S;
  oracle::OracleOptions OOpts;
  oracle::SymbolicOracleOptions SOpts;
  std::vector<std::pair<std::string, std::shared_ptr<const TestPipeline>>>
      Permuted;
  std::vector<DependenceProblem> MemoBatch;

  bool done() const { return S.Failures.size() >= Opts.MaxFailures; }

  void checkProblem(const DependenceProblem &P, uint64_t Iter);
  void checkProgram(const std::string &Source, uint64_t Iter);
  void checkIncremental(const std::string &Source, uint64_t Iter);
  void flushMemoBatch(uint64_t Iter);

  void reportProblem(FuzzAxis Axis, uint64_t Iter, std::string Detail,
                     const DependenceProblem &Shrunk);
  void reportProgram(FuzzAxis Axis, uint64_t Iter, std::string Detail,
                     const std::string &Source, unsigned Edits = 0);
  void emit(FuzzFailure F);
};

FuzzSummary FuzzRunner::run() {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  uint64_t Limit = Opts.Count;
  if (Limit == 0 && Opts.TimeBudgetSeconds <= 0)
    Limit = 5000;

  for (uint64_t I = 0;; ++I) {
    if (Limit && I >= Limit)
      break;
    if (Opts.TimeBudgetSeconds > 0 &&
        std::chrono::duration<double>(Clock::now() - Start).count() >=
            Opts.TimeBudgetSeconds)
      break;
    if (done())
      break;

    // Each iteration owns an independent deterministic stream, so a
    // failure report's (seed, iteration) replays in isolation.
    SplitRng Rng(Opts.Seed + 0x9E3779B97F4A7C15ULL * (I + 1));
    ++S.Iterations;
    bool ProgramIter =
        Opts.ProgramEvery && (I % Opts.ProgramEvery) == Opts.ProgramEvery - 1;
    if (ProgramIter) {
      ++S.Programs;
      checkProgram(generateRandomProgram(Rng, Opts.Program), I);
    } else {
      ++S.Problems;
      checkProblem(randomFuzzProblem(Rng, Opts.Problem), I);
    }

    if (Log && S.Iterations % 1000 == 0)
      *Log << "edda-fuzz: " << S.Iterations << " iterations, "
           << S.Failures.size() << " failure(s)\n";
  }

  flushMemoBatch(S.Iterations);
  return std::move(S);
}

void FuzzRunner::checkProblem(const DependenceProblem &P, uint64_t Iter) {
  DependenceProblem Buggy = applyBug(P, Opts.Bug);
  CascadeOptions Base;
  Base.Widen = Opts.Widen;
  CascadeResult R = testDependence(Buggy, Base);

  if (Opts.CheckOracle) {
    // The differential core: cascade vs. enumeration, with the witness
    // checked against the *original* problem so an injected (or real)
    // perturbation cannot hide behind a self-consistent wrong answer.
    auto OracleFails = [this, &Base](const DependenceProblem &Q) {
      CascadeResult RQ = testDependence(applyBug(Q, Opts.Bug), Base);
      if (RQ.Answer == DepAnswer::Dependent && RQ.Witness &&
          !verifyWitness(Q, *RQ.Witness))
        return true;
      if (Q.NumSymbolic == 0) {
        std::optional<bool> Truth = oracleDependent(Q, {}, OOpts);
        return Truth && RQ.Answer != DepAnswer::Unknown &&
               (RQ.Answer == DepAnswer::Dependent) != *Truth;
      }
      std::optional<bool> Sampled = oracleDependentSampled(Q, {}, SOpts);
      return RQ.Answer == DepAnswer::Independent && Sampled && *Sampled;
    };

    bool Conclusive = false;
    std::string Detail;
    if (P.NumSymbolic == 0) {
      std::optional<bool> Truth = oracleDependent(P, {}, OOpts);
      Conclusive = Truth.has_value();
      if (Truth && R.Answer != DepAnswer::Unknown &&
          (R.Answer == DepAnswer::Dependent) != *Truth)
        Detail = "cascade says " + answerName(R.Answer) + " (" +
                 testKindName(R.DecidedBy) + "), enumeration says " +
                 (*Truth ? "dependent" : "independent");
    } else {
      std::optional<bool> Sampled = oracleDependentSampled(P, {}, SOpts);
      Conclusive = Sampled.has_value();
      if (Sampled && R.Answer == DepAnswer::Independent && *Sampled)
        Detail = std::string("cascade says independent (") +
                 testKindName(R.DecidedBy) +
                 ") but a sampled symbolic valuation depends";
    }
    if (Conclusive)
      ++S.OracleConclusive;
    if (Detail.empty() && R.Answer == DepAnswer::Dependent && R.Witness &&
        !verifyWitness(P, *R.Witness))
      Detail = std::string("witness from ") + testKindName(R.DecidedBy) +
               " violates the problem";
    if (!Detail.empty()) {
      reportProblem(FuzzAxis::Oracle, Iter, std::move(Detail),
                    shrinkProblem(P, OracleFails));
      if (done())
        return;
    }
  }

  if (Opts.CheckDirs) {
    // The direction/distance hierarchy vs. the oracle and its own
    // option combinations; the shrink predicate is the check itself.
    bool Conclusive = false;
    std::optional<std::string> Detail = checkDirections(
        P, Opts.Widen, Opts.Bug, OOpts, SOpts, &Conclusive);
    if (Conclusive)
      ++S.DirsConclusive;
    if (Detail) {
      auto DirsFails = [this](const DependenceProblem &Q) {
        return checkDirections(Q, Opts.Widen, Opts.Bug, OOpts, SOpts)
            .has_value();
      };
      reportProblem(FuzzAxis::Dirs, Iter, std::move(*Detail),
                    shrinkProblem(P, DirsFails));
      if (done())
        return;
    }
  }

  if (Opts.CheckWiden && Opts.Widen) {
    // The widening ladder's own differential: the same cascade with
    // --no-widen. When the ladder never fired the two runs took the
    // same path and must match bit for bit; when both decide they must
    // agree; an answer only the widened run produces is cross-checked
    // independently (witness or enumeration oracle), because the
    // 64-bit run has nothing to say about it.
    CascadeOptions NoWiden = Base;
    NoWiden.Widen = false;
    CascadeResult RN = testDependence(Buggy, NoWiden);
    std::string Detail;
    if (!R.Widened) {
      // The ladder never produced the answer, so --no-widen must agree
      // on it bit for bit — with one legitimate wiggle: a stage that is
      // applicable only thanks to wide prep can exhaust the ladder and
      // still consume the query (Unknown via FM) where the 64-bit run
      // fell through (Unknown via Unanalyzable), so an Unknown's
      // provenance may differ.
      bool BothUnknown =
          R.Answer == DepAnswer::Unknown && RN.Answer == DepAnswer::Unknown;
      if (R.Answer != RN.Answer || RN.Widened ||
          (!BothUnknown &&
           (R.DecidedBy != RN.DecidedBy || R.Exact != RN.Exact)))
        Detail = "--no-widen perturbs an unwidened result: " +
                 answerName(R.Answer) + " (" + testKindName(R.DecidedBy) +
                 ") vs " + answerName(RN.Answer) + " (" +
                 testKindName(RN.DecidedBy) + ")";
    } else if (RN.Answer != DepAnswer::Unknown) {
      if (R.Answer == DepAnswer::Unknown)
        Detail = "widening lost a decisive answer: --no-widen says " +
                 answerName(RN.Answer) + " (" + testKindName(RN.DecidedBy) +
                 ")";
      else if (R.Answer != RN.Answer)
        Detail = "widened cascade says " + answerName(R.Answer) + " (" +
                 testKindName(R.DecidedBy) + "), --no-widen says " +
                 answerName(RN.Answer) + " (" + testKindName(RN.DecidedBy) +
                 ")";
    } else if (R.Answer == DepAnswer::Dependent) {
      if (R.Witness) {
        if (!verifyWitness(P, *R.Witness))
          Detail = std::string("widened witness from ") +
                   testKindName(R.DecidedBy) + " violates the problem";
      } else if (P.NumSymbolic == 0) {
        std::optional<bool> Truth = oracleDependent(P, {}, OOpts);
        if (Truth && !*Truth)
          Detail = std::string("widened dependent (") +
                   testKindName(R.DecidedBy) +
                   ") but enumeration finds no point";
      }
    } else if (R.Answer == DepAnswer::Independent) {
      if (P.NumSymbolic == 0) {
        std::optional<bool> Truth = oracleDependent(P, {}, OOpts);
        if (Truth && *Truth)
          Detail = std::string("widened independent (") +
                   testKindName(R.DecidedBy) +
                   ") but enumeration finds a point";
      } else {
        std::optional<bool> Sampled = oracleDependentSampled(P, {}, SOpts);
        if (Sampled && *Sampled)
          Detail = std::string("widened independent (") +
                   testKindName(R.DecidedBy) +
                   ") but a sampled symbolic valuation depends";
      }
    }
    if (!Detail.empty()) {
      auto WidenFails = [this](const DependenceProblem &Q) {
        DependenceProblem QB = applyBug(Q, Opts.Bug);
        CascadeResult W = testDependence(QB);
        CascadeOptions QN;
        QN.Widen = false;
        CascadeResult N = testDependence(QB, QN);
        if (!W.Widened) {
          bool BothUnknown = W.Answer == DepAnswer::Unknown &&
                             N.Answer == DepAnswer::Unknown;
          return W.Answer != N.Answer || N.Widened ||
                 (!BothUnknown && (W.DecidedBy != N.DecidedBy ||
                                   W.Exact != N.Exact));
        }
        if (N.Answer != DepAnswer::Unknown)
          return W.Answer != N.Answer;
        if (W.Answer == DepAnswer::Dependent) {
          if (W.Witness)
            return !verifyWitness(Q, *W.Witness);
          if (Q.NumSymbolic == 0) {
            std::optional<bool> T = oracleDependent(Q, {}, OOpts);
            return T.has_value() && !*T;
          }
          return false;
        }
        if (W.Answer == DepAnswer::Independent) {
          if (Q.NumSymbolic == 0) {
            std::optional<bool> T = oracleDependent(Q, {}, OOpts);
            return T.has_value() && *T;
          }
          std::optional<bool> Sm = oracleDependentSampled(Q, {}, SOpts);
          return Sm.has_value() && *Sm;
        }
        return false;
      };
      reportProblem(FuzzAxis::Widen, Iter, std::move(Detail),
                    shrinkProblem(P, WidenFails));
      if (done())
        return;
    }
  }

  if (Opts.CheckPipeline && R.Answer != DepAnswer::Unknown) {
    // Decisive answers are permutation-invariant; Unknown is not (a
    // consuming stage like FM ends whichever pipeline reaches it
    // first), so only decisive-vs-decisive contradictions count.
    for (const auto &[Spec, PP] : Permuted) {
      CascadeOptions CO = Base;
      CO.Pipeline = PP;
      CascadeResult R2 = testDependence(Buggy, CO);
      if (R2.Answer == DepAnswer::Unknown || R2.Answer == R.Answer)
        continue;
      auto PipelineFails = [this, &Base, PP = PP](const DependenceProblem &Q) {
        DependenceProblem QB = applyBug(Q, Opts.Bug);
        CascadeResult D = testDependence(QB, Base);
        CascadeOptions QO = Base;
        QO.Pipeline = PP;
        CascadeResult M = testDependence(QB, QO);
        return D.Answer != DepAnswer::Unknown &&
               M.Answer != DepAnswer::Unknown && D.Answer != M.Answer;
      };
      reportProblem(FuzzAxis::Pipeline, Iter,
                    "default pipeline says " + answerName(R.Answer) +
                        ", '" + Spec + "' says " + answerName(R2.Answer),
                    shrinkProblem(P, PipelineFails));
      if (done())
        return;
    }
  }

  if (Opts.CheckMemo) {
    MemoBatch.push_back(std::move(Buggy));
    if (MemoBatch.size() >= 32)
      flushMemoBatch(Iter);
  }
}

void FuzzRunner::flushMemoBatch(uint64_t Iter) {
  if (MemoBatch.empty() || done()) {
    MemoBatch.clear();
    return;
  }
  std::vector<DependenceProblem> Batch;
  Batch.swap(MemoBatch);

  DependenceCache C1;
  CascadeOptions Base;
  Base.Widen = Opts.Widen;
  std::vector<CascadeResult> Expected;
  for (const DependenceProblem &P : Batch) {
    if (!C1.lookupFull(P))
      C1.insertFull(P, testDependence(P, Base));
    // The post-insert lookup is the canonical stored value, so the
    // check below is purely about persistence.
    Expected.push_back(*C1.lookupFull(P));
  }

  std::string Path = tempCachePath("batch");
  DependenceCache C2;
  bool Persisted = C1.saveToFile(Path) && C2.loadFromFile(Path);
  std::error_code EC;
  fs::remove(Path, EC);

  for (size_t I = 0; I < Batch.size(); ++I) {
    std::string Detail;
    if (!Persisted) {
      Detail = "cache save/load failed";
    } else {
      std::optional<CascadeResult> Got = C2.lookupFull(Batch[I]);
      if (!Got)
        Detail = "entry missing after cache round-trip";
      else if (Got->Answer != Expected[I].Answer ||
               Got->DecidedBy != Expected[I].DecidedBy ||
               Got->Exact != Expected[I].Exact ||
               Got->Widened != Expected[I].Widened)
        Detail = "cached " + answerName(Expected[I].Answer) + " (" +
                 testKindName(Expected[I].DecidedBy) +
                 (Expected[I].Widened ? ", widened" : "") + ") became " +
                 answerName(Got->Answer) + " (" +
                 testKindName(Got->DecidedBy) +
                 (Got->Widened ? ", widened" : "") + ") after round-trip";
    }
    if (!Detail.empty()) {
      reportProblem(FuzzAxis::Memo, Iter, std::move(Detail),
                    shrinkProblem(Batch[I], [this](const DependenceProblem &Q) {
                      return memoRoundTripFails(Q, Opts.Widen);
                    }));
      if (done())
        return;
      if (!Persisted)
        return; // One report covers a whole-file failure.
    }
  }
}

void FuzzRunner::checkProgram(const std::string &Source, uint64_t Iter) {
  ParseResult PR = parseProgram(Source);
  if (!PR.succeeded()) {
    std::string Diag =
        PR.Diags.empty() ? std::string("no diagnostic") : PR.Diags[0].str();
    reportProgram(FuzzAxis::Parse, Iter,
                  "generated program failed to parse: " + Diag, Source);
    return;
  }

  // print/parse must reach a fixed point in one step.
  std::string S1 = PR.Prog->print();
  ParseResult PR2 = parseProgram(S1);
  if (!PR2.succeeded() || PR2.Prog->print() != S1) {
    auto ReprintFails = [](const std::string &Src) {
      ParseResult A = parseProgram(Src);
      if (!A.succeeded())
        return false;
      std::string Printed = A.Prog->print();
      ParseResult B = parseProgram(Printed);
      return !B.succeeded() || B.Prog->print() != Printed;
    };
    reportProgram(FuzzAxis::Parse, Iter,
                  "print/parse round-trip is not stable",
                  shrinkProgramSource(Source, ReprintFails));
    if (done())
      return;
  }

  if (Opts.CheckIncr) {
    checkIncremental(Source, Iter);
    if (done())
      return;
  }

  AnalyzerOptions Serial;
  Serial.ComputeDirections = true;
  Serial.NumThreads = 1;
  Serial.Cascade.Widen = Opts.Widen;
  Serial.Direction.Cascade.Widen = Opts.Widen;

  if (Opts.CheckThreads) {
    Program Copy1 = *PR.Prog;
    DependenceAnalyzer A1(Serial);
    AnalysisResult Res1 = A1.analyze(Copy1);

    AnalyzerOptions Parallel = Serial;
    Parallel.NumThreads = Opts.Threads;
    Program Copy2 = *PR.Prog;
    DependenceAnalyzer A2(Parallel);
    AnalysisResult Res2 = A2.analyze(Copy2);

    if (std::optional<std::string> Mismatch =
            comparePairs(Res1, Res2, /*CacheSensitive=*/true)) {
      auto ThreadsFail = [this, &Serial](const std::string &Src) {
        ParseResult R = parseProgram(Src);
        if (!R.succeeded())
          return false;
        Program CA = *R.Prog, CB = *R.Prog;
        DependenceAnalyzer SA(Serial);
        AnalyzerOptions PO = Serial;
        PO.NumThreads = Opts.Threads;
        DependenceAnalyzer PA(PO);
        return comparePairs(SA.analyze(CA), PA.analyze(CB), true)
            .has_value();
      };
      reportProgram(FuzzAxis::Threads, Iter,
                    "serial vs --threads " + std::to_string(Opts.Threads) +
                        ": " + *Mismatch,
                    shrinkProgramSource(Source, ThreadsFail));
      if (done())
        return;
    }

    if (Opts.CheckMemo) {
      // Whole-program cache persistence: a reload must reproduce every
      // answer (cache provenance legitimately flips to hits).
      std::string Path = tempCachePath("prog");
      bool Saved = A1.cache().saveToFile(Path);
      DependenceAnalyzer A3(Serial);
      bool Loaded = Saved && A3.cache().loadFromFile(Path);
      std::error_code EC;
      fs::remove(Path, EC);
      std::optional<std::string> Mis;
      if (!Saved || !Loaded) {
        Mis = "cache save/load failed";
      } else {
        Program Copy3 = *PR.Prog;
        AnalysisResult Res3 = A3.analyze(Copy3);
        Mis = comparePairs(Res1, Res3, /*CacheSensitive=*/false);
      }
      if (Mis) {
        auto MemoFail = [this, &Serial](const std::string &Src) {
          ParseResult R = parseProgram(Src);
          if (!R.succeeded())
            return false;
          Program CA = *R.Prog;
          DependenceAnalyzer SA(Serial);
          AnalysisResult RA = SA.analyze(CA);
          std::string P = tempCachePath("prog-shrink");
          DependenceAnalyzer SB(Serial);
          bool OK = SA.cache().saveToFile(P) &&
                    SB.cache().loadFromFile(P);
          std::error_code E2;
          fs::remove(P, E2);
          if (!OK)
            return true;
          Program CB = *R.Prog;
          return comparePairs(RA, SB.analyze(CB), false).has_value();
        };
        reportProgram(FuzzAxis::Memo, Iter,
                      "whole-program cache round-trip: " + *Mis,
                      shrinkProgramSource(Source, MemoFail));
      }
    }
  }
}

void FuzzRunner::checkIncremental(const std::string &Source,
                                  uint64_t Iter) {
  // Each edit owns an independent seed, so the sequence can shrink by
  // dropping edits without perturbing the survivors.
  SplitRng SeedRng(Opts.Seed ^ (0xC2B2AE3D27D4EB4FULL * (Iter + 1)));
  unsigned NumEdits = 1 + static_cast<unsigned>(SeedRng.below(
                              std::max(1u, Opts.MaxIncrEdits)));
  std::vector<uint64_t> Seeds;
  for (unsigned E = 0; E < NumEdits; ++E)
    Seeds.push_back(SeedRng.next());

  bool InjectStale = Opts.Bug == InjectedBug::StaleFingerprint;
  std::string Detail =
      incrSequenceMismatch(Source, Seeds, Opts.Widen, InjectStale);
  if (Detail.empty())
    return;

  // Shrink the edit sequence first (greedy subset minimization to a
  // fixed point), then the program source under the surviving edits.
  auto FailsWith = [this, InjectStale](const std::string &Src,
                                       const std::vector<uint64_t> &S) {
    return !incrSequenceMismatch(Src, S, Opts.Widen, InjectStale).empty();
  };
  bool Progress = true;
  while (Progress && Seeds.size() > 1) {
    Progress = false;
    for (size_t E = 0; E < Seeds.size(); ++E) {
      std::vector<uint64_t> Candidate = Seeds;
      Candidate.erase(Candidate.begin() + static_cast<long>(E));
      if (FailsWith(Source, Candidate)) {
        Seeds = std::move(Candidate);
        Progress = true;
        break;
      }
    }
  }
  std::string Shrunk = shrinkProgramSource(
      Source,
      [&](const std::string &Src) { return FailsWith(Src, Seeds); });
  if (std::string D =
          incrSequenceMismatch(Shrunk, Seeds, Opts.Widen, InjectStale);
      !D.empty())
    Detail = std::move(D);

  // The edit seeds ride along in a comment so the reproducer names the
  // full failing (program, edit sequence) input.
  std::ostringstream WithEdits;
  WithEdits << "# edda-fuzz-edits:";
  for (uint64_t S : Seeds)
    WithEdits << " " << S;
  WithEdits << "\n" << Shrunk;
  reportProgram(FuzzAxis::Incr, Iter, std::move(Detail), WithEdits.str(),
                static_cast<unsigned>(Seeds.size()));
}

void FuzzRunner::reportProblem(FuzzAxis Axis, uint64_t Iter,
                               std::string Detail,
                               const DependenceProblem &Shrunk) {
  // The expectation header comes from the clean cascade, corrected by
  // enumeration when they disagree (which is the bug being reported):
  // once fixed, the file drops into tests/inputs/corpus/ unchanged.
  CascadeResult Clean = testDependence(Shrunk);
  std::optional<bool> Truth = Shrunk.NumSymbolic == 0
                                  ? oracleDependent(Shrunk, {}, OOpts)
                                  : std::nullopt;
  std::ostringstream OS;
  bool Dep = Truth ? *Truth : Clean.Answer == DepAnswer::Dependent;
  if (Truth || Clean.Answer != DepAnswer::Unknown)
    OS << "# expect: " << (Dep ? "dependent" : "independent") << " "
       << testKindName(Clean.DecidedBy) << "\n";
  OS << "# edda-fuzz: axis=" << fuzzAxisName(Axis) << " seed=" << Opts.Seed
     << " iteration=" << Iter;
  if (const char *BugName = injectedBugName(Opts.Bug))
    OS << " inject-bug=" << BugName;
  OS << "\n# " << Detail << "\n" << printProblemText(Shrunk);

  FuzzFailure F;
  F.Axis = Axis;
  F.Iteration = Iter;
  F.Detail = std::move(Detail);
  F.Reproducer = OS.str();
  F.IsProgram = false;
  emit(std::move(F));
}

void FuzzRunner::reportProgram(FuzzAxis Axis, uint64_t Iter,
                               std::string Detail,
                               const std::string &Source, unsigned Edits) {
  std::ostringstream OS;
  OS << "# edda-fuzz: axis=" << fuzzAxisName(Axis) << " seed=" << Opts.Seed
     << " iteration=" << Iter;
  if (const char *BugName = injectedBugName(Opts.Bug))
    OS << " inject-bug=" << BugName;
  OS << "\n# " << Detail << "\n" << Source;

  FuzzFailure F;
  F.Axis = Axis;
  F.Iteration = Iter;
  F.Detail = std::move(Detail);
  F.Reproducer = OS.str();
  F.IsProgram = true;
  F.Edits = Edits;
  emit(std::move(F));
}

void FuzzRunner::emit(FuzzFailure F) {
  if (!Opts.OutDir.empty()) {
    std::error_code EC;
    fs::create_directories(Opts.OutDir, EC);
    std::ostringstream Name;
    Name << "fuzz-" << fuzzAxisName(F.Axis) << "-seed" << Opts.Seed << "-i"
         << F.Iteration << (F.IsProgram ? ".loop" : ".dep");
    fs::path Path = fs::path(Opts.OutDir) / Name.str();
    std::ofstream Out(Path);
    Out << F.Reproducer;
    if (Out)
      F.Path = Path.string();
  }
  if (Log)
    *Log << "edda-fuzz: FAILURE [" << fuzzAxisName(F.Axis) << "] iteration "
         << F.Iteration << ": " << F.Detail
         << (F.Path.empty() ? "" : "\n  reproducer: " + F.Path) << "\n";
  S.Failures.push_back(std::move(F));
}

} // namespace

FuzzSummary runFuzz(const FuzzOptions &Opts, std::ostream *Log) {
  return FuzzRunner(Opts, Log).run();
}

std::optional<std::string>
checkDirections(const DependenceProblem &P, bool Widen, InjectedBug Bug,
                const oracle::OracleOptions &OOpts,
                const oracle::SymbolicOracleOptions &SOpts,
                bool *OracleConclusive) {
  if (OracleConclusive)
    *OracleConclusive = false;
  DependenceProblem Buggy = applyBug(P, Bug);

  DirectionResult Results[8];
  for (unsigned Mask = 0; Mask < 8; ++Mask) {
    DirectionOptions DO;
    DO.Cascade.Widen = Widen;
    DO.EliminateUnusedVars = (Mask & 1) != 0;
    DO.DistanceVectorPruning = (Mask & 2) != 0;
    DO.SeparableDimensions = (Mask & 4) != 0;
    DO.InjectMisSignedPruning = Bug == InjectedBug::MisSignDirPrune;
    Results[Mask] = computeDirectionVectors(Buggy, DO);
  }

  // The pruning options may trade exactness for work, never flip a
  // decisive root or move a pinned distance.
  for (unsigned I = 0; I < 8; ++I)
    for (unsigned J = I + 1; J < 8; ++J) {
      const DirectionResult &A = Results[I];
      const DirectionResult &B = Results[J];
      if (A.RootAnswer != DepAnswer::Unknown &&
          B.RootAnswer != DepAnswer::Unknown &&
          A.RootAnswer != B.RootAnswer)
        return std::string("dirs: combo ") + DirComboNames[I] +
               " root says " + answerName(A.RootAnswer) + ", combo " +
               DirComboNames[J] + " says " + answerName(B.RootAnswer);
      for (unsigned K = 0; K < P.NumCommon; ++K)
        if (K < A.Distances.size() && K < B.Distances.size() &&
            A.Distances[K] && B.Distances[K] &&
            *A.Distances[K] != *B.Distances[K])
          return std::string("dirs: combo ") + DirComboNames[I] +
                 " pins distance[" + std::to_string(K) + "] = " +
                 std::to_string(*A.Distances[K]) + ", combo " +
                 DirComboNames[J] + " pins " +
                 std::to_string(*B.Distances[K]);
    }

  if (P.NumSymbolic == 0) {
    std::optional<oracle::DirectionOracle> Truth =
        oracle::oracleDirectionInfo(P, OOpts);
    if (!Truth)
      return std::nullopt;
    if (OracleConclusive)
      *OracleConclusive = true;
    for (unsigned Mask = 0; Mask < 8; ++Mask)
      if (std::optional<std::string> Detail =
              dirComboVsTruth(DirComboNames[Mask], Results[Mask], *Truth,
                              /*SoundOnly=*/false, ""))
        return Detail;
    return std::nullopt;
  }

  // Symbolic problems: sweep the sample grid and hold every reported
  // vector/distance/root claim against each conclusive concretization,
  // in the sound direction only.
  if (SOpts.SampleValues.empty())
    return std::nullopt;
  uint64_t Total = 1;
  for (unsigned K = 0; K < P.NumSymbolic; ++K) {
    Total *= SOpts.SampleValues.size();
    if (Total > SOpts.MaxValuations)
      return std::nullopt;
  }
  // Spread the enumeration budget across the whole sweep: a 3-symbolic
  // problem visits up to 729 valuations, and giving each the full
  // MaxPoints makes single iterations take minutes. Valuations whose
  // box exceeds the per-valuation slice just read as inconclusive.
  oracle::OracleOptions PerValuation = SOpts.Base;
  PerValuation.MaxPoints =
      std::max<uint64_t>(1024, SOpts.Base.MaxPoints / Total);
  std::vector<int64_t> Values(P.NumSymbolic, SOpts.SampleValues.front());
  std::vector<unsigned> Odometer(P.NumSymbolic, 0);
  bool AllConclusive = true;
  for (uint64_t V = 0; V < Total; ++V) {
    for (unsigned K = 0; K < P.NumSymbolic; ++K)
      Values[K] = SOpts.SampleValues[Odometer[K]];
    std::optional<DependenceProblem> Concrete =
        oracle::concretize(P, Values);
    std::optional<oracle::DirectionOracle> Truth =
        Concrete ? oracle::oracleDirectionInfo(*Concrete, PerValuation)
                 : std::nullopt;
    if (!Truth) {
      AllConclusive = false;
    } else {
      std::string Where = " at symbolic valuation (";
      for (unsigned K = 0; K < P.NumSymbolic; ++K)
        Where += (K ? ", " : "") + std::to_string(Values[K]);
      Where += ")";
      for (unsigned Mask = 0; Mask < 8; ++Mask)
        if (std::optional<std::string> Detail =
                dirComboVsTruth(DirComboNames[Mask], Results[Mask], *Truth,
                                /*SoundOnly=*/true, Where))
          return Detail;
    }
    for (unsigned K = 0; K < P.NumSymbolic; ++K) {
      if (++Odometer[K] < SOpts.SampleValues.size())
        break;
      Odometer[K] = 0;
    }
  }
  if (AllConclusive && OracleConclusive)
    *OracleConclusive = true;
  return std::nullopt;
}

} // namespace fuzz
} // namespace edda
