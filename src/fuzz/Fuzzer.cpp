//===- fuzz/Fuzzer.cpp - Seeded differential fuzzer -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "analysis/Analyzer.h"
#include "deptest/Cascade.h"
#include "deptest/Memo.h"
#include "deptest/ProblemIO.h"
#include "deptest/TestPipeline.h"
#include "fuzz/Shrink.h"
#include "oracle/Oracle.h"
#include "parser/Parser.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unistd.h>

namespace edda {
namespace fuzz {

const char *fuzzAxisName(FuzzAxis Axis) {
  switch (Axis) {
  case FuzzAxis::Oracle:
    return "oracle";
  case FuzzAxis::Pipeline:
    return "pipeline";
  case FuzzAxis::Widen:
    return "widen";
  case FuzzAxis::Threads:
    return "threads";
  case FuzzAxis::Memo:
    return "memo";
  case FuzzAxis::Parse:
    return "parse";
  }
  return "unknown";
}

namespace {

namespace fs = std::filesystem;
using oracle::oracleDependent;
using oracle::oracleDependentSampled;

/// Perturbs the problem handed to the cascade under test; the oracle
/// always judges the original.
DependenceProblem applyBug(DependenceProblem P, InjectedBug Bug) {
  if (Bug == InjectedBug::NegateEqConst && !P.Equations.empty())
    P.Equations[0].Const = -P.Equations[0].Const;
  return P;
}

std::string answerName(DepAnswer A) {
  switch (A) {
  case DepAnswer::Independent:
    return "independent";
  case DepAnswer::Dependent:
    return "dependent";
  case DepAnswer::Unknown:
    return "unknown";
  }
  return "?";
}

/// A collision-safe scratch path (parallel ctest runs fuzz too).
std::string tempCachePath(const char *Tag) {
  std::ostringstream OS;
  OS << "edda-fuzz-" << ::getpid() << "-" << Tag << ".memo";
  return (fs::temp_directory_path() / OS.str()).string();
}

/// Single-problem cache persistence check; doubles as the memo-axis
/// shrink predicate.
bool memoRoundTripFails(const DependenceProblem &P, bool Widen) {
  DependenceCache C1;
  CascadeOptions CO;
  CO.Widen = Widen;
  CascadeResult R = testDependence(P, CO);
  C1.insertFull(P, R);
  std::optional<CascadeResult> Expected = C1.lookupFull(P);
  if (!Expected)
    return false;
  std::string Path = tempCachePath("shrink");
  bool Failed = true;
  if (C1.saveToFile(Path)) {
    DependenceCache C2;
    if (C2.loadFromFile(Path)) {
      std::optional<CascadeResult> Got = C2.lookupFull(P);
      Failed = !Got || Got->Answer != Expected->Answer ||
               Got->DecidedBy != Expected->DecidedBy ||
               Got->Exact != Expected->Exact ||
               Got->Widened != Expected->Widened;
    }
  }
  std::error_code EC;
  fs::remove(Path, EC);
  return Failed;
}

/// Per-pair comparison for the threads and whole-program memo axes.
/// \p CacheSensitive also requires identical FromCache flags (true for
/// the serial-vs-threads bit-identical guarantee; false across a
/// save/load, where hitting the preloaded cache is the point).
std::optional<std::string> comparePairs(const AnalysisResult &A,
                                        const AnalysisResult &B,
                                        bool CacheSensitive) {
  if (A.Refs.size() != B.Refs.size())
    return "reference count mismatch";
  if (A.Pairs.size() != B.Pairs.size())
    return "pair count mismatch";
  for (size_t I = 0; I < A.Pairs.size(); ++I) {
    const DependencePair &PA = A.Pairs[I];
    const DependencePair &PB = B.Pairs[I];
    std::ostringstream Where;
    Where << "pair " << I << " (refs " << PA.RefA << "," << PA.RefB
          << "): ";
    if (PA.RefA != PB.RefA || PA.RefB != PB.RefB)
      return Where.str() + "ref indices differ";
    if (PA.Answer != PB.Answer)
      return Where.str() + "answer " + answerName(PA.Answer) + " vs " +
             answerName(PB.Answer);
    if (PA.DecidedBy != PB.DecidedBy)
      return Where.str() + std::string("decider ") +
             testKindName(PA.DecidedBy) + " vs " +
             testKindName(PB.DecidedBy);
    if (PA.Exact != PB.Exact)
      return Where.str() + "exactness differs";
    if (CacheSensitive && PA.FromCache != PB.FromCache)
      return Where.str() + "cache provenance differs";
    if (PA.Directions.has_value() != PB.Directions.has_value())
      return Where.str() + "direction presence differs";
    if (PA.Directions &&
        (PA.Directions->RootAnswer != PB.Directions->RootAnswer ||
         PA.Directions->Vectors != PB.Directions->Vectors ||
         PA.Directions->Distances != PB.Directions->Distances))
      return Where.str() + "direction vectors differ";
  }
  return std::nullopt;
}

class FuzzRunner {
public:
  FuzzRunner(const FuzzOptions &Opts, std::ostream *Log)
      : Opts(Opts), Log(Log) {
    // Small spans keep enumeration cheap; the cap below still covers
    // every problem the generator can emit with room to spare.
    OOpts.MaxPoints = 1u << 18;
    SOpts.Base = OOpts;
    for (const char *Spec : {"fm,residue,acyclic,svpc,gcd,const",
                             "svpc,acyclic,residue,const,gcd,fm"}) {
      std::shared_ptr<const TestPipeline> P = makePipeline(Spec);
      assert(P && "permuted pipeline spec failed to parse");
      Permuted.emplace_back(Spec, std::move(P));
    }
  }

  FuzzSummary run();

private:
  const FuzzOptions &Opts;
  std::ostream *Log;
  FuzzSummary S;
  oracle::OracleOptions OOpts;
  oracle::SymbolicOracleOptions SOpts;
  std::vector<std::pair<std::string, std::shared_ptr<const TestPipeline>>>
      Permuted;
  std::vector<DependenceProblem> MemoBatch;

  bool done() const { return S.Failures.size() >= Opts.MaxFailures; }

  void checkProblem(const DependenceProblem &P, uint64_t Iter);
  void checkProgram(const std::string &Source, uint64_t Iter);
  void flushMemoBatch(uint64_t Iter);

  void reportProblem(FuzzAxis Axis, uint64_t Iter, std::string Detail,
                     const DependenceProblem &Shrunk);
  void reportProgram(FuzzAxis Axis, uint64_t Iter, std::string Detail,
                     const std::string &Source);
  void emit(FuzzFailure F);
};

FuzzSummary FuzzRunner::run() {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  uint64_t Limit = Opts.Count;
  if (Limit == 0 && Opts.TimeBudgetSeconds <= 0)
    Limit = 5000;

  for (uint64_t I = 0;; ++I) {
    if (Limit && I >= Limit)
      break;
    if (Opts.TimeBudgetSeconds > 0 &&
        std::chrono::duration<double>(Clock::now() - Start).count() >=
            Opts.TimeBudgetSeconds)
      break;
    if (done())
      break;

    // Each iteration owns an independent deterministic stream, so a
    // failure report's (seed, iteration) replays in isolation.
    SplitRng Rng(Opts.Seed + 0x9E3779B97F4A7C15ULL * (I + 1));
    ++S.Iterations;
    bool ProgramIter =
        Opts.ProgramEvery && (I % Opts.ProgramEvery) == Opts.ProgramEvery - 1;
    if (ProgramIter) {
      ++S.Programs;
      checkProgram(generateRandomProgram(Rng, Opts.Program), I);
    } else {
      ++S.Problems;
      checkProblem(randomFuzzProblem(Rng, Opts.Problem), I);
    }

    if (Log && S.Iterations % 1000 == 0)
      *Log << "edda-fuzz: " << S.Iterations << " iterations, "
           << S.Failures.size() << " failure(s)\n";
  }

  flushMemoBatch(S.Iterations);
  return std::move(S);
}

void FuzzRunner::checkProblem(const DependenceProblem &P, uint64_t Iter) {
  DependenceProblem Buggy = applyBug(P, Opts.Bug);
  CascadeOptions Base;
  Base.Widen = Opts.Widen;
  CascadeResult R = testDependence(Buggy, Base);

  if (Opts.CheckOracle) {
    // The differential core: cascade vs. enumeration, with the witness
    // checked against the *original* problem so an injected (or real)
    // perturbation cannot hide behind a self-consistent wrong answer.
    auto OracleFails = [this, &Base](const DependenceProblem &Q) {
      CascadeResult RQ = testDependence(applyBug(Q, Opts.Bug), Base);
      if (RQ.Answer == DepAnswer::Dependent && RQ.Witness &&
          !verifyWitness(Q, *RQ.Witness))
        return true;
      if (Q.NumSymbolic == 0) {
        std::optional<bool> Truth = oracleDependent(Q, {}, OOpts);
        return Truth && RQ.Answer != DepAnswer::Unknown &&
               (RQ.Answer == DepAnswer::Dependent) != *Truth;
      }
      std::optional<bool> Sampled = oracleDependentSampled(Q, {}, SOpts);
      return RQ.Answer == DepAnswer::Independent && Sampled && *Sampled;
    };

    bool Conclusive = false;
    std::string Detail;
    if (P.NumSymbolic == 0) {
      std::optional<bool> Truth = oracleDependent(P, {}, OOpts);
      Conclusive = Truth.has_value();
      if (Truth && R.Answer != DepAnswer::Unknown &&
          (R.Answer == DepAnswer::Dependent) != *Truth)
        Detail = "cascade says " + answerName(R.Answer) + " (" +
                 testKindName(R.DecidedBy) + "), enumeration says " +
                 (*Truth ? "dependent" : "independent");
    } else {
      std::optional<bool> Sampled = oracleDependentSampled(P, {}, SOpts);
      Conclusive = Sampled.has_value();
      if (Sampled && R.Answer == DepAnswer::Independent && *Sampled)
        Detail = std::string("cascade says independent (") +
                 testKindName(R.DecidedBy) +
                 ") but a sampled symbolic valuation depends";
    }
    if (Conclusive)
      ++S.OracleConclusive;
    if (Detail.empty() && R.Answer == DepAnswer::Dependent && R.Witness &&
        !verifyWitness(P, *R.Witness))
      Detail = std::string("witness from ") + testKindName(R.DecidedBy) +
               " violates the problem";
    if (!Detail.empty()) {
      reportProblem(FuzzAxis::Oracle, Iter, std::move(Detail),
                    shrinkProblem(P, OracleFails));
      if (done())
        return;
    }
  }

  if (Opts.CheckWiden && Opts.Widen) {
    // The widening ladder's own differential: the same cascade with
    // --no-widen. When the ladder never fired the two runs took the
    // same path and must match bit for bit; when both decide they must
    // agree; an answer only the widened run produces is cross-checked
    // independently (witness or enumeration oracle), because the
    // 64-bit run has nothing to say about it.
    CascadeOptions NoWiden = Base;
    NoWiden.Widen = false;
    CascadeResult RN = testDependence(Buggy, NoWiden);
    std::string Detail;
    if (!R.Widened) {
      // The ladder never produced the answer, so --no-widen must agree
      // on it bit for bit — with one legitimate wiggle: a stage that is
      // applicable only thanks to wide prep can exhaust the ladder and
      // still consume the query (Unknown via FM) where the 64-bit run
      // fell through (Unknown via Unanalyzable), so an Unknown's
      // provenance may differ.
      bool BothUnknown =
          R.Answer == DepAnswer::Unknown && RN.Answer == DepAnswer::Unknown;
      if (R.Answer != RN.Answer || RN.Widened ||
          (!BothUnknown &&
           (R.DecidedBy != RN.DecidedBy || R.Exact != RN.Exact)))
        Detail = "--no-widen perturbs an unwidened result: " +
                 answerName(R.Answer) + " (" + testKindName(R.DecidedBy) +
                 ") vs " + answerName(RN.Answer) + " (" +
                 testKindName(RN.DecidedBy) + ")";
    } else if (RN.Answer != DepAnswer::Unknown) {
      if (R.Answer == DepAnswer::Unknown)
        Detail = "widening lost a decisive answer: --no-widen says " +
                 answerName(RN.Answer) + " (" + testKindName(RN.DecidedBy) +
                 ")";
      else if (R.Answer != RN.Answer)
        Detail = "widened cascade says " + answerName(R.Answer) + " (" +
                 testKindName(R.DecidedBy) + "), --no-widen says " +
                 answerName(RN.Answer) + " (" + testKindName(RN.DecidedBy) +
                 ")";
    } else if (R.Answer == DepAnswer::Dependent) {
      if (R.Witness) {
        if (!verifyWitness(P, *R.Witness))
          Detail = std::string("widened witness from ") +
                   testKindName(R.DecidedBy) + " violates the problem";
      } else if (P.NumSymbolic == 0) {
        std::optional<bool> Truth = oracleDependent(P, {}, OOpts);
        if (Truth && !*Truth)
          Detail = std::string("widened dependent (") +
                   testKindName(R.DecidedBy) +
                   ") but enumeration finds no point";
      }
    } else if (R.Answer == DepAnswer::Independent) {
      if (P.NumSymbolic == 0) {
        std::optional<bool> Truth = oracleDependent(P, {}, OOpts);
        if (Truth && *Truth)
          Detail = std::string("widened independent (") +
                   testKindName(R.DecidedBy) +
                   ") but enumeration finds a point";
      } else {
        std::optional<bool> Sampled = oracleDependentSampled(P, {}, SOpts);
        if (Sampled && *Sampled)
          Detail = std::string("widened independent (") +
                   testKindName(R.DecidedBy) +
                   ") but a sampled symbolic valuation depends";
      }
    }
    if (!Detail.empty()) {
      auto WidenFails = [this](const DependenceProblem &Q) {
        DependenceProblem QB = applyBug(Q, Opts.Bug);
        CascadeResult W = testDependence(QB);
        CascadeOptions QN;
        QN.Widen = false;
        CascadeResult N = testDependence(QB, QN);
        if (!W.Widened) {
          bool BothUnknown = W.Answer == DepAnswer::Unknown &&
                             N.Answer == DepAnswer::Unknown;
          return W.Answer != N.Answer || N.Widened ||
                 (!BothUnknown && (W.DecidedBy != N.DecidedBy ||
                                   W.Exact != N.Exact));
        }
        if (N.Answer != DepAnswer::Unknown)
          return W.Answer != N.Answer;
        if (W.Answer == DepAnswer::Dependent) {
          if (W.Witness)
            return !verifyWitness(Q, *W.Witness);
          if (Q.NumSymbolic == 0) {
            std::optional<bool> T = oracleDependent(Q, {}, OOpts);
            return T.has_value() && !*T;
          }
          return false;
        }
        if (W.Answer == DepAnswer::Independent) {
          if (Q.NumSymbolic == 0) {
            std::optional<bool> T = oracleDependent(Q, {}, OOpts);
            return T.has_value() && *T;
          }
          std::optional<bool> Sm = oracleDependentSampled(Q, {}, SOpts);
          return Sm.has_value() && *Sm;
        }
        return false;
      };
      reportProblem(FuzzAxis::Widen, Iter, std::move(Detail),
                    shrinkProblem(P, WidenFails));
      if (done())
        return;
    }
  }

  if (Opts.CheckPipeline && R.Answer != DepAnswer::Unknown) {
    // Decisive answers are permutation-invariant; Unknown is not (a
    // consuming stage like FM ends whichever pipeline reaches it
    // first), so only decisive-vs-decisive contradictions count.
    for (const auto &[Spec, PP] : Permuted) {
      CascadeOptions CO = Base;
      CO.Pipeline = PP;
      CascadeResult R2 = testDependence(Buggy, CO);
      if (R2.Answer == DepAnswer::Unknown || R2.Answer == R.Answer)
        continue;
      auto PipelineFails = [this, &Base, PP = PP](const DependenceProblem &Q) {
        DependenceProblem QB = applyBug(Q, Opts.Bug);
        CascadeResult D = testDependence(QB, Base);
        CascadeOptions QO = Base;
        QO.Pipeline = PP;
        CascadeResult M = testDependence(QB, QO);
        return D.Answer != DepAnswer::Unknown &&
               M.Answer != DepAnswer::Unknown && D.Answer != M.Answer;
      };
      reportProblem(FuzzAxis::Pipeline, Iter,
                    "default pipeline says " + answerName(R.Answer) +
                        ", '" + Spec + "' says " + answerName(R2.Answer),
                    shrinkProblem(P, PipelineFails));
      if (done())
        return;
    }
  }

  if (Opts.CheckMemo) {
    MemoBatch.push_back(std::move(Buggy));
    if (MemoBatch.size() >= 32)
      flushMemoBatch(Iter);
  }
}

void FuzzRunner::flushMemoBatch(uint64_t Iter) {
  if (MemoBatch.empty() || done()) {
    MemoBatch.clear();
    return;
  }
  std::vector<DependenceProblem> Batch;
  Batch.swap(MemoBatch);

  DependenceCache C1;
  CascadeOptions Base;
  Base.Widen = Opts.Widen;
  std::vector<CascadeResult> Expected;
  for (const DependenceProblem &P : Batch) {
    if (!C1.lookupFull(P))
      C1.insertFull(P, testDependence(P, Base));
    // The post-insert lookup is the canonical stored value, so the
    // check below is purely about persistence.
    Expected.push_back(*C1.lookupFull(P));
  }

  std::string Path = tempCachePath("batch");
  DependenceCache C2;
  bool Persisted = C1.saveToFile(Path) && C2.loadFromFile(Path);
  std::error_code EC;
  fs::remove(Path, EC);

  for (size_t I = 0; I < Batch.size(); ++I) {
    std::string Detail;
    if (!Persisted) {
      Detail = "cache save/load failed";
    } else {
      std::optional<CascadeResult> Got = C2.lookupFull(Batch[I]);
      if (!Got)
        Detail = "entry missing after cache round-trip";
      else if (Got->Answer != Expected[I].Answer ||
               Got->DecidedBy != Expected[I].DecidedBy ||
               Got->Exact != Expected[I].Exact ||
               Got->Widened != Expected[I].Widened)
        Detail = "cached " + answerName(Expected[I].Answer) + " (" +
                 testKindName(Expected[I].DecidedBy) +
                 (Expected[I].Widened ? ", widened" : "") + ") became " +
                 answerName(Got->Answer) + " (" +
                 testKindName(Got->DecidedBy) +
                 (Got->Widened ? ", widened" : "") + ") after round-trip";
    }
    if (!Detail.empty()) {
      reportProblem(FuzzAxis::Memo, Iter, std::move(Detail),
                    shrinkProblem(Batch[I], [this](const DependenceProblem &Q) {
                      return memoRoundTripFails(Q, Opts.Widen);
                    }));
      if (done())
        return;
      if (!Persisted)
        return; // One report covers a whole-file failure.
    }
  }
}

void FuzzRunner::checkProgram(const std::string &Source, uint64_t Iter) {
  ParseResult PR = parseProgram(Source);
  if (!PR.succeeded()) {
    std::string Diag =
        PR.Diags.empty() ? std::string("no diagnostic") : PR.Diags[0].str();
    reportProgram(FuzzAxis::Parse, Iter,
                  "generated program failed to parse: " + Diag, Source);
    return;
  }

  // print/parse must reach a fixed point in one step.
  std::string S1 = PR.Prog->print();
  ParseResult PR2 = parseProgram(S1);
  if (!PR2.succeeded() || PR2.Prog->print() != S1) {
    auto ReprintFails = [](const std::string &Src) {
      ParseResult A = parseProgram(Src);
      if (!A.succeeded())
        return false;
      std::string Printed = A.Prog->print();
      ParseResult B = parseProgram(Printed);
      return !B.succeeded() || B.Prog->print() != Printed;
    };
    reportProgram(FuzzAxis::Parse, Iter,
                  "print/parse round-trip is not stable",
                  shrinkProgramSource(Source, ReprintFails));
    if (done())
      return;
  }

  AnalyzerOptions Serial;
  Serial.ComputeDirections = true;
  Serial.NumThreads = 1;
  Serial.Cascade.Widen = Opts.Widen;
  Serial.Direction.Cascade.Widen = Opts.Widen;

  if (Opts.CheckThreads) {
    Program Copy1 = *PR.Prog;
    DependenceAnalyzer A1(Serial);
    AnalysisResult Res1 = A1.analyze(Copy1);

    AnalyzerOptions Parallel = Serial;
    Parallel.NumThreads = Opts.Threads;
    Program Copy2 = *PR.Prog;
    DependenceAnalyzer A2(Parallel);
    AnalysisResult Res2 = A2.analyze(Copy2);

    if (std::optional<std::string> Mismatch =
            comparePairs(Res1, Res2, /*CacheSensitive=*/true)) {
      auto ThreadsFail = [this, &Serial](const std::string &Src) {
        ParseResult R = parseProgram(Src);
        if (!R.succeeded())
          return false;
        Program CA = *R.Prog, CB = *R.Prog;
        DependenceAnalyzer SA(Serial);
        AnalyzerOptions PO = Serial;
        PO.NumThreads = Opts.Threads;
        DependenceAnalyzer PA(PO);
        return comparePairs(SA.analyze(CA), PA.analyze(CB), true)
            .has_value();
      };
      reportProgram(FuzzAxis::Threads, Iter,
                    "serial vs --threads " + std::to_string(Opts.Threads) +
                        ": " + *Mismatch,
                    shrinkProgramSource(Source, ThreadsFail));
      if (done())
        return;
    }

    if (Opts.CheckMemo) {
      // Whole-program cache persistence: a reload must reproduce every
      // answer (cache provenance legitimately flips to hits).
      std::string Path = tempCachePath("prog");
      bool Saved = A1.cache().saveToFile(Path);
      DependenceAnalyzer A3(Serial);
      bool Loaded = Saved && A3.cache().loadFromFile(Path);
      std::error_code EC;
      fs::remove(Path, EC);
      std::optional<std::string> Mis;
      if (!Saved || !Loaded) {
        Mis = "cache save/load failed";
      } else {
        Program Copy3 = *PR.Prog;
        AnalysisResult Res3 = A3.analyze(Copy3);
        Mis = comparePairs(Res1, Res3, /*CacheSensitive=*/false);
      }
      if (Mis) {
        auto MemoFail = [this, &Serial](const std::string &Src) {
          ParseResult R = parseProgram(Src);
          if (!R.succeeded())
            return false;
          Program CA = *R.Prog;
          DependenceAnalyzer SA(Serial);
          AnalysisResult RA = SA.analyze(CA);
          std::string P = tempCachePath("prog-shrink");
          DependenceAnalyzer SB(Serial);
          bool OK = SA.cache().saveToFile(P) &&
                    SB.cache().loadFromFile(P);
          std::error_code E2;
          fs::remove(P, E2);
          if (!OK)
            return true;
          Program CB = *R.Prog;
          return comparePairs(RA, SB.analyze(CB), false).has_value();
        };
        reportProgram(FuzzAxis::Memo, Iter,
                      "whole-program cache round-trip: " + *Mis,
                      shrinkProgramSource(Source, MemoFail));
      }
    }
  }
}

void FuzzRunner::reportProblem(FuzzAxis Axis, uint64_t Iter,
                               std::string Detail,
                               const DependenceProblem &Shrunk) {
  // The expectation header comes from the clean cascade, corrected by
  // enumeration when they disagree (which is the bug being reported):
  // once fixed, the file drops into tests/inputs/corpus/ unchanged.
  CascadeResult Clean = testDependence(Shrunk);
  std::optional<bool> Truth = Shrunk.NumSymbolic == 0
                                  ? oracleDependent(Shrunk, {}, OOpts)
                                  : std::nullopt;
  std::ostringstream OS;
  bool Dep = Truth ? *Truth : Clean.Answer == DepAnswer::Dependent;
  if (Truth || Clean.Answer != DepAnswer::Unknown)
    OS << "# expect: " << (Dep ? "dependent" : "independent") << " "
       << testKindName(Clean.DecidedBy) << "\n";
  OS << "# edda-fuzz: axis=" << fuzzAxisName(Axis) << " seed=" << Opts.Seed
     << " iteration=" << Iter;
  if (Opts.Bug != InjectedBug::None)
    OS << " inject-bug=negate-eq-const";
  OS << "\n# " << Detail << "\n" << printProblemText(Shrunk);

  FuzzFailure F;
  F.Axis = Axis;
  F.Iteration = Iter;
  F.Detail = std::move(Detail);
  F.Reproducer = OS.str();
  F.IsProgram = false;
  emit(std::move(F));
}

void FuzzRunner::reportProgram(FuzzAxis Axis, uint64_t Iter,
                               std::string Detail,
                               const std::string &Source) {
  std::ostringstream OS;
  OS << "# edda-fuzz: axis=" << fuzzAxisName(Axis) << " seed=" << Opts.Seed
     << " iteration=" << Iter << "\n# " << Detail << "\n" << Source;

  FuzzFailure F;
  F.Axis = Axis;
  F.Iteration = Iter;
  F.Detail = std::move(Detail);
  F.Reproducer = OS.str();
  F.IsProgram = true;
  emit(std::move(F));
}

void FuzzRunner::emit(FuzzFailure F) {
  if (!Opts.OutDir.empty()) {
    std::error_code EC;
    fs::create_directories(Opts.OutDir, EC);
    std::ostringstream Name;
    Name << "fuzz-" << fuzzAxisName(F.Axis) << "-seed" << Opts.Seed << "-i"
         << F.Iteration << (F.IsProgram ? ".loop" : ".dep");
    fs::path Path = fs::path(Opts.OutDir) / Name.str();
    std::ofstream Out(Path);
    Out << F.Reproducer;
    if (Out)
      F.Path = Path.string();
  }
  if (Log)
    *Log << "edda-fuzz: FAILURE [" << fuzzAxisName(F.Axis) << "] iteration "
         << F.Iteration << ": " << F.Detail
         << (F.Path.empty() ? "" : "\n  reproducer: " + F.Path) << "\n";
  S.Failures.push_back(std::move(F));
}

} // namespace

FuzzSummary runFuzz(const FuzzOptions &Opts, std::ostream *Log) {
  return FuzzRunner(Opts, Log).run();
}

} // namespace fuzz
} // namespace edda
