//===- fuzz/Shrink.h - Delta-debugging reproducer minimizer ----*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta debugging for fuzzer failures. Given a failing input and
/// a predicate that re-runs the differential check, the shrinkers apply
/// structure-aware reductions (drop an equation, drop a loop variable
/// column, zero a coefficient, remove a statement) and keep any change
/// under which the failure persists. The result is the minimal `.dep` /
/// `.loop` reproducer the fuzzer writes into the corpus.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_FUZZ_SHRINK_H
#define EDDA_FUZZ_SHRINK_H

#include "deptest/Problem.h"

#include <functional>
#include <string>

namespace edda {
namespace fuzz {

/// Minimizes \p P while \p Fails stays true. \p Fails must be true for
/// \p P on entry and is re-evaluated on every candidate, so the result
/// is always a genuine failure. Runs greedy passes to a fixed point,
/// at most \p MaxRounds rounds.
DependenceProblem
shrinkProblem(DependenceProblem P,
              const std::function<bool(const DependenceProblem &)> &Fails,
              unsigned MaxRounds = 8);

/// Minimizes LoopLang \p Source (statement-tree removal plus reprint)
/// while \p Fails stays true. Returns \p Source unchanged when it does
/// not parse.
std::string
shrinkProgramSource(std::string Source,
                    const std::function<bool(const std::string &)> &Fails,
                    unsigned MaxRounds = 8);

} // namespace fuzz
} // namespace edda

#endif // EDDA_FUZZ_SHRINK_H
