//===- fuzz/ProblemGen.cpp - Random dependence problems -------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProblemGen.h"

#include <optional>

namespace edda {
namespace fuzz {

namespace {

/// Uniform value in [Lo, Hi].
int64_t rangeInt(SplitRng &Rng, int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi);
  return Lo + static_cast<int64_t>(Rng.below(uint64_t(Hi - Lo + 1)));
}

bool percent(SplitRng &Rng, unsigned P) { return Rng.below(100) < P; }

/// A nonzero coefficient in [-Range, Range].
int64_t nonzeroCoeff(SplitRng &Rng, int64_t Range) {
  int64_t C = rangeInt(Rng, 1, Range);
  return percent(Rng, 50) ? C : -C;
}

/// Evaluates an affine form at \p X. No overflow concern at the
/// generator's ranges: even overflow-stress coefficients (~2^44) times
/// the tiny bound spans sum well below 2^63.
int64_t evalForm(const XAffine &F, const std::vector<int64_t> &X) {
  int64_t V = F.Const;
  for (unsigned J = 0; J < F.Coeffs.size(); ++J)
    V += F.Coeffs[J] * X[J];
  return V;
}

} // namespace

DependenceProblem randomFuzzProblem(SplitRng &Rng,
                                    const FuzzProblemOptions &Opts) {
  DependenceProblem P;
  P.NumCommon = static_cast<unsigned>(Rng.below(Opts.MaxCommon + 1));
  P.NumLoopsA =
      P.NumCommon + static_cast<unsigned>(Rng.below(Opts.MaxExtraLoops + 1));
  P.NumLoopsB =
      P.NumCommon + static_cast<unsigned>(Rng.below(Opts.MaxExtraLoops + 1));
  if (percent(Rng, Opts.SymbolicPercent))
    P.NumSymbolic = 1 + static_cast<unsigned>(Rng.below(Opts.MaxSymbolic));

  const unsigned NumX = P.numX();
  const unsigned NumLoopVars = P.numLoopVars();

  // Bounds first (the equation constants below are planted inside
  // them). Shapes that reference another variable only use variables
  // earlier in x, which is what both the enumeration oracle and the
  // Acyclic test want; spans stay small so enumeration is cheap.
  P.Lo.resize(NumLoopVars);
  P.Hi.resize(NumLoopVars);
  for (unsigned L = 0; L < NumLoopVars; ++L) {
    if (percent(Rng, Opts.MissingBoundPercent))
      continue; // Unanalyzable bound: tests fall back to a weaker system.

    unsigned Shape = static_cast<unsigned>(Rng.below(100));
    XAffine Lo(NumX), Hi(NumX);
    if (Shape < 20 && L > 0) {
      // Triangular: lo constant, hi tracks an earlier loop variable.
      unsigned E = static_cast<unsigned>(Rng.below(L));
      Lo.Const = rangeInt(Rng, 0, 1);
      Hi.Coeffs[E] = 1;
      Hi.Const = rangeInt(Rng, 0, 2);
    } else if (Shape < 35 && L > 0) {
      // Banded: earlier variable +/- a small band.
      unsigned E = static_cast<unsigned>(Rng.below(L));
      int64_t Band = rangeInt(Rng, 1, 2);
      Lo.Coeffs[E] = 1;
      Lo.Const = -Band;
      Hi.Coeffs[E] = 1;
      Hi.Const = Band;
    } else if (Shape < 47 && P.NumSymbolic > 0) {
      // Symbolic upper bound (the paper's section 8 shape: 1..n).
      unsigned S =
          NumLoopVars + static_cast<unsigned>(Rng.below(P.NumSymbolic));
      Lo.Const = rangeInt(Rng, 0, 1);
      Hi.Coeffs[S] = 1;
      Hi.Const = rangeInt(Rng, -1, 1);
    } else if (Shape < 52) {
      // Degenerate: empty constant range, provably independent.
      Lo.Const = rangeInt(Rng, -2, 2);
      Hi.Const = Lo.Const - rangeInt(Rng, 1, 3);
    } else {
      // Constant box, small span; lows skew non-negative like real
      // loop headers so variable-tracking bounds stay satisfiable.
      Lo.Const = rangeInt(Rng, -1, 3);
      Hi.Const = Lo.Const + static_cast<int64_t>(Rng.below(Opts.MaxSpan + 1));
    }
    P.Lo[L] = std::move(Lo);
    P.Hi[L] = std::move(Hi);
  }

  // Sample a point inside the bounds. Purely random equation constants
  // are almost never simultaneously solvable over boxes this small, so
  // without planting, dependent problems would be vanishingly rare and
  // the differential would exercise only the Independent path.
  // Symbolic values come first (bounds may reference them), then loop
  // variables in x order (bounds reference earlier variables only).
  // A single draw often lands in an empty triangular range (hi tracks
  // an earlier variable that sampled low), so retry a few times; truly
  // empty polytopes (degenerate bounds) stay unplanted and provide the
  // Independent side of the differential.
  std::optional<std::vector<int64_t>> Planted;
  for (unsigned Attempt = 0; Attempt < 4 && !Planted; ++Attempt) {
    std::vector<int64_t> X(NumX, 0);
    for (unsigned S = NumLoopVars; S < NumX; ++S)
      X[S] = rangeInt(Rng, -2, 5);
    bool Feasible = true;
    for (unsigned L = 0; L < NumLoopVars && Feasible; ++L) {
      int64_t LoV = P.Lo[L] ? evalForm(*P.Lo[L], X) : -2;
      int64_t HiV = P.Hi[L] ? evalForm(*P.Hi[L], X) : 2;
      if (LoV > HiV)
        Feasible = false;
      else
        X[L] = rangeInt(Rng, LoV, HiV);
    }
    if (Feasible)
      Planted = std::move(X);
  }

  // Subscript equations: mostly-sparse random coefficient rows. The
  // constant is planted on the sampled point (sometimes with an off-by
  // one perturbation, landing just beside a solution) or drawn freely.
  unsigned NumEq = 1 + static_cast<unsigned>(Rng.below(Opts.MaxEquations));
  bool Plant = Planted && percent(Rng, 70);
  // Overflow-stress draws blow selected coefficients up to ~2^44 while
  // the bounds (and hence the enumeration oracle's work) stay tiny.
  // A uniform scale factor would be divided right back out by row-gcd
  // normalization, so each coefficient gets its own random low bits,
  // leaving rows whose gcd is small but whose elimination products —
  // Bezout multipliers, cross-equation lcms — exceed 64 bits. Planting
  // happens after, so these problems still tend to have solutions
  // inside the box and the widen axis sees decisive widened answers.
  bool Huge = percent(Rng, Opts.HugeScalePercent);
  for (unsigned E = 0; E < NumEq; ++E) {
    XAffine Eq(NumX);
    for (unsigned J = 0; J < NumX; ++J) {
      bool IsSymbolic = J >= NumLoopVars;
      unsigned KeepPercent = IsSymbolic ? 30 : 45;
      if (percent(Rng, KeepPercent))
        Eq.Coeffs[J] = nonzeroCoeff(Rng, Opts.CoeffRange);
    }
    if (E == 0) {
      // Couple the first equation to both reference sides so the
      // generated matrices are not trivially decoupled.
      if (P.NumLoopsA > 0 && percent(Rng, 70)) {
        unsigned A = static_cast<unsigned>(Rng.below(P.NumLoopsA));
        if (Eq.Coeffs[A] == 0)
          Eq.Coeffs[A] = nonzeroCoeff(Rng, Opts.CoeffRange);
      }
      if (P.NumLoopsB > 0 && percent(Rng, 70)) {
        unsigned B =
            P.NumLoopsA + static_cast<unsigned>(Rng.below(P.NumLoopsB));
        if (Eq.Coeffs[B] == 0)
          Eq.Coeffs[B] = nonzeroCoeff(Rng, Opts.CoeffRange);
      }
    }
    if (Huge)
      for (int64_t &C : Eq.Coeffs)
        if (C != 0 && percent(Rng, 60))
          C = C * (int64_t(1) << 42) +
              rangeInt(Rng, -(int64_t(1) << 20), int64_t(1) << 20);
    if (Plant) {
      Eq.Const = -evalForm(Eq, *Planted);
      if (percent(Rng, 15))
        Eq.Const += percent(Rng, 50) ? 1 : -1;
    } else {
      Eq.Const = rangeInt(Rng, -Opts.ConstRange, Opts.ConstRange);
    }
    P.Equations.push_back(std::move(Eq));
  }

  assert(P.wellFormed() && "generator produced malformed problem");
  return P;
}

} // namespace fuzz
} // namespace edda
