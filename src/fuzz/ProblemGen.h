//===- fuzz/ProblemGen.h - Random dependence problems ----------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random DependenceProblem generation for the differential fuzzer.
/// Unlike the workload generator's seven Table 1 templates, these
/// problems are drawn from the whole small-problem space: random
/// coefficient matrices (coupled subscripts arise naturally), bounds
/// that are constant, triangular, banded, degenerate or missing, and
/// optional symbolic columns. Spans are kept small so the enumeration
/// oracle stays conclusive on most draws.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_FUZZ_PROBLEMGEN_H
#define EDDA_FUZZ_PROBLEMGEN_H

#include "deptest/Problem.h"
#include "workload/Generator.h"

namespace edda {
namespace fuzz {

/// Shape knobs for random problem generation.
struct FuzzProblemOptions {
  unsigned MaxCommon = 3;     ///< Common loops (0..MaxCommon).
  unsigned MaxExtraLoops = 1; ///< Extra non-common loops per side.
  unsigned MaxEquations = 3;  ///< Subscript equations (1..Max).
  unsigned MaxSymbolic = 2;   ///< Symbolic columns when symbolic.
  unsigned SymbolicPercent = 20; ///< Chance a problem gets symbolics.
  unsigned MissingBoundPercent = 6; ///< Chance a loop var loses a bound
                                    ///< (oracle-inapplicable, still
                                    ///< exercises the pipeline).
  int64_t CoeffRange = 4; ///< Coefficients in [-CoeffRange, CoeffRange].
  int64_t ConstRange = 9; ///< Equation constants in [-C, C].
  int64_t MaxSpan = 4;    ///< Constant-bound spans (0..MaxSpan).
  /// Chance a draw is an overflow stressor: individual coefficients
  /// blown up to ~2^44 (with random low bits so row gcds stay small)
  /// while bounds stay tiny. The 64-bit solvers overflow on the
  /// elimination products, the enumeration oracle stays conclusive,
  /// and the widening ladder (and its fuzz axis) sees real work.
  unsigned HugeScalePercent = 12;
};

/// Draws one random problem. Always wellFormed(); deterministic in
/// \p Rng.
DependenceProblem randomFuzzProblem(SplitRng &Rng,
                                    const FuzzProblemOptions &Opts = {});

} // namespace fuzz
} // namespace edda

#endif // EDDA_FUZZ_PROBLEMGEN_H
