//===- fuzz/Fuzzer.h - Seeded differential fuzzer --------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edda-fuzz engine: generates random DependenceProblems and whole
/// LoopLang programs from a seed and cross-checks the analysis stack
/// along seven differential axes:
///
///   oracle    cascade verdict vs. brute-force enumeration (symbolic
///             problems via the sampled-concretization soundness check),
///             plus witness verification;
///   dirs      the Burke-Cytron direction/distance hierarchy vs. the
///             enumeration oracle: every concrete direction pattern
///             must be covered by a reported vector, Exact results must
///             also be minimal, pinned distances must equal the unique
///             concrete i'_k - i_k, and every EliminateUnusedVars /
///             DistanceVectorPruning / SeparableDimensions combination
///             must agree on decisive roots and pinned distances
///             (symbolic problems via sampled concretization, checked
///             in the sound direction only);
///   pipeline  default cascade vs. permuted stage pipelines — decisive
///             answers must agree (Unknown is order-dependent by
///             design: a consuming stage ends the pipeline);
///   widen     default cascade vs. --no-widen: when the 128-bit ladder
///             never fired the results must be bit-identical; when both
///             decide they must agree; answers only the widened run
///             produces are witness-verified or checked against the
///             enumeration oracle;
///   threads   serial analyzer vs. --threads N on the same program,
///             bit-identical pair results required;
///   memo      cache save/load round-trips must preserve every cached
///             answer (including the Widened provenance bit), both
///             problem batches and whole-program caches;
///   incr      incremental re-analysis vs. from-scratch: a random edit
///             sequence (subscript/rhs modifications, bound tweaks,
///             statement insert/delete) is applied step by step to one
///             program held in an IncrementalSession, and after every
///             step the spliced dependence graph must render
///             bit-identically to a fresh analysis of the edited
///             program. Failures shrink both the edit sequence (greedy
///             subset minimization) and the program source.
///
/// Every run is a pure function of the seed: iteration i derives its
/// own SplitRng stream, so `--seed S` reproduces exactly and a failure
/// report names the iteration. Failures are delta-debugged (see
/// Shrink.h) into minimal `.dep`/`.loop` reproducers suitable for
/// tests/inputs/corpus/.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_FUZZ_FUZZER_H
#define EDDA_FUZZ_FUZZER_H

#include "fuzz/ProblemGen.h"
#include "oracle/Oracle.h"
#include "workload/Generator.h"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace edda {
namespace fuzz {

/// The differential axis a check (or failure) belongs to.
enum class FuzzAxis {
  Oracle,   ///< Cascade vs. enumeration / sampled concretization.
  Dirs,     ///< Direction/distance hierarchy vs. the oracle and its
            ///< own pruning option combinations.
  Pipeline, ///< Default vs. permuted stage orders.
  Widen,    ///< Widened cascade vs. the 64-bit-only cascade.
  Threads,  ///< Serial vs. multi-threaded analyzer.
  Memo,     ///< Cache persistence round-trip.
  Incr,     ///< Incremental re-analysis vs. from-scratch graphs.
  Parse,    ///< Generated program failed to parse or reprint stably.
};

const char *fuzzAxisName(FuzzAxis Axis);

/// Deliberate bugs injected between generation and the cascade under
/// test (the oracle always sees the original problem). Used to prove
/// the fuzzer catches and shrinks real mismatches; hidden behind the
/// --inject-bug flag.
enum class InjectedBug {
  None,
  NegateEqConst,  ///< Flips the sign of the first equation's constant —
                  ///< the classic transcription error in a subscript
                  ///< difference.
  MisSignDirPrune, ///< Flips the sign of every distance the GCD
                   ///< pruning pins (DirectionOptions hook; the plain
                   ///< cascade is untouched, so only the dirs axis can
                   ///< see it).
  StaleFingerprint, ///< Keys re-analysis reuse on the bounds-free
                    ///< reference fingerprints
                    ///< (AnalyzerOptions::InjectStaleFingerprint), so
                    ///< bound edits splice stale results — only the
                    ///< incr axis can see it.
};

/// CLI spelling of \p Bug ("negate-eq-const"); nullptr for None.
const char *injectedBugName(InjectedBug Bug);

struct FuzzOptions {
  uint64_t Seed = 1;
  /// Iterations to run; 0 means until the time budget expires (or a
  /// default of 5000 iterations when no budget is set either).
  uint64_t Count = 0;
  /// Wall-clock budget in seconds; 0 disables.
  double TimeBudgetSeconds = 0;
  /// Directory for minimized reproducers; empty writes none.
  std::string OutDir;
  /// Thread count for the parallel-analyzer axis.
  unsigned Threads = 4;
  /// Which axes run (all by default; --check narrows).
  bool CheckOracle = true;
  bool CheckDirs = true;
  bool CheckPipeline = true;
  bool CheckWiden = true;
  bool CheckThreads = true;
  bool CheckMemo = true;
  bool CheckIncr = true;
  /// Edit-sequence length cap for the incr axis (each program
  /// iteration applies 1..MaxIncrEdits random edits).
  unsigned MaxIncrEdits = 4;
  /// Run every cascade under test with the 128-bit widening ladder
  /// enabled. False reproduces the historical 64-bit-only behavior on
  /// all axes (and makes the widen axis vacuous — there is nothing to
  /// differ against).
  bool Widen = true;
  /// Stop after this many failures.
  unsigned MaxFailures = 8;
  InjectedBug Bug = InjectedBug::None;
  FuzzProblemOptions Problem;
  RandomProgramOptions Program;
  /// Every Nth iteration generates a whole program instead of a bare
  /// problem (the threads and whole-program memo axes need programs).
  unsigned ProgramEvery = 8;
};

/// One confirmed, minimized mismatch.
struct FuzzFailure {
  FuzzAxis Axis = FuzzAxis::Oracle;
  uint64_t Iteration = 0;
  std::string Detail;     ///< Human-readable mismatch description.
  std::string Reproducer; ///< Minimized .dep / .loop text.
  bool IsProgram = false;
  std::string Path; ///< File written under OutDir (empty when none).
  /// Incr-axis failures: edits remaining after shrinking (the edit
  /// seeds are embedded in the reproducer's "# edda-fuzz-edits:" line).
  unsigned Edits = 0;
};

struct FuzzSummary {
  uint64_t Iterations = 0;
  uint64_t Problems = 0;
  uint64_t Programs = 0;
  /// Problem iterations where enumeration (or the sampled grid) was
  /// conclusive — the denominator of real oracle coverage.
  uint64_t OracleConclusive = 0;
  /// Same denominator for the direction/distance axis.
  uint64_t DirsConclusive = 0;
  std::vector<FuzzFailure> Failures;

  bool ok() const { return Failures.empty(); }
};

/// Runs the fuzzer. Deterministic in Opts.Seed (iteration counts under
/// a pure time budget excepted). Progress lines go to \p Log when
/// non-null.
FuzzSummary runFuzz(const FuzzOptions &Opts, std::ostream *Log = nullptr);

/// The dirs axis on a single problem: runs computeDirectionVectors
/// under every EliminateUnusedVars / DistanceVectorPruning /
/// SeparableDimensions combination (with \p Bug perturbing only the
/// computation under test) and checks pairwise decisive-root and
/// pinned-distance agreement plus, when the enumeration oracle (or the
/// sampled symbolic grid) is conclusive on the honest problem, pattern
/// coverage, Exact-minimality and distance ground truth. Returns a
/// mismatch description, or nullopt when everything agrees; also the
/// shrink predicate for this axis. \p OracleConclusive reports whether
/// the oracle had jurisdiction.
std::optional<std::string>
checkDirections(const DependenceProblem &P, bool Widen = true,
                InjectedBug Bug = InjectedBug::None,
                const oracle::OracleOptions &OOpts = {},
                const oracle::SymbolicOracleOptions &SOpts = {},
                bool *OracleConclusive = nullptr);

} // namespace fuzz
} // namespace edda

#endif // EDDA_FUZZ_FUZZER_H
