//===- support/IntMath.cpp - Exact integer arithmetic helpers ------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/IntMath.h"

using namespace edda;

int64_t edda::gcd64(int64_t A, int64_t B) {
  // Work on unsigned magnitudes so INT64_MIN does not overflow on negation.
  uint64_t UA = A < 0 ? 0 - static_cast<uint64_t>(A) : static_cast<uint64_t>(A);
  uint64_t UB = B < 0 ? 0 - static_cast<uint64_t>(B) : static_cast<uint64_t>(B);
  while (UB != 0) {
    uint64_t T = UA % UB;
    UA = UB;
    UB = T;
  }
  return static_cast<int64_t>(UA);
}

std::optional<int64_t> edda::lcm64(int64_t A, int64_t B) {
  // lcm(0, N) is 0 (every integer is a multiple of 0's multiples);
  // reserving nullopt for overflow keeps "zero coefficient" and
  // "arithmetic gave up" distinguishable for callers.
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd64(A, B);
  std::optional<int64_t> AbsA = checkedMul(A < 0 ? -1 : 1, A);
  if (!AbsA)
    return std::nullopt;
  std::optional<int64_t> AbsB = checkedMul(B < 0 ? -1 : 1, B);
  if (!AbsB)
    return std::nullopt;
  return checkedMul(*AbsA / G, *AbsB);
}

ExtGcdResult edda::extGcd64(int64_t A, int64_t B) {
  // Iterative extended Euclid on (A, B); keeps the invariants
  //   R0 == X0*A + Y0*B  and  R1 == X1*A + Y1*B.
  int64_t R0 = A, R1 = B;
  int64_t X0 = 1, X1 = 0;
  int64_t Y0 = 0, Y1 = 1;
  while (R1 != 0) {
    int64_t Q = R0 / R1;
    int64_t T;
    T = R0 - Q * R1;
    R0 = R1;
    R1 = T;
    T = X0 - Q * X1;
    X0 = X1;
    X1 = T;
    T = Y0 - Q * Y1;
    Y0 = Y1;
    Y1 = T;
  }
  if (R0 < 0) {
    R0 = -R0;
    X0 = -X0;
    Y0 = -Y0;
  }
  return {R0, X0, Y0};
}

int64_t edda::floorDiv(int64_t A, int64_t B) {
  assert(B != 0 && "floorDiv by zero");
  assert(!(A == INT64_MIN && B == -1) &&
         "floorDiv(INT64_MIN, -1) overflows; use checkedFloorDiv");
  int64_t Q = A / B;
  int64_t R = A % B;
  // C++ truncates toward zero; adjust when the remainder has the opposite
  // sign of the divisor.
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t edda::ceilDiv(int64_t A, int64_t B) {
  assert(B != 0 && "ceilDiv by zero");
  assert(!(A == INT64_MIN && B == -1) &&
         "ceilDiv(INT64_MIN, -1) overflows; use checkedCeilDiv");
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) == (B < 0)))
    ++Q;
  return Q;
}

std::optional<int64_t> edda::checkedFloorDiv(int64_t A, int64_t B) {
  assert(B != 0 && "checkedFloorDiv by zero");
  if (A == INT64_MIN && B == -1)
    return std::nullopt;
  return floorDiv(A, B);
}

std::optional<int64_t> edda::checkedCeilDiv(int64_t A, int64_t B) {
  assert(B != 0 && "checkedCeilDiv by zero");
  if (A == INT64_MIN && B == -1)
    return std::nullopt;
  return ceilDiv(A, B);
}

std::optional<int64_t> edda::checkedAdd(int64_t A, int64_t B) {
  int64_t Result;
  if (__builtin_add_overflow(A, B, &Result))
    return std::nullopt;
  return Result;
}

std::optional<int64_t> edda::checkedSub(int64_t A, int64_t B) {
  int64_t Result;
  if (__builtin_sub_overflow(A, B, &Result))
    return std::nullopt;
  return Result;
}

std::optional<int64_t> edda::checkedMul(int64_t A, int64_t B) {
  int64_t Result;
  if (__builtin_mul_overflow(A, B, &Result))
    return std::nullopt;
  return Result;
}

std::optional<int64_t> edda::checkedNeg(int64_t A) {
  return checkedSub(0, A);
}

CheckedInt &CheckedInt::operator+=(CheckedInt RHS) {
  Valid = Valid && RHS.Valid && !__builtin_add_overflow(Value, RHS.Value,
                                                        &Value);
  return *this;
}

CheckedInt &CheckedInt::operator-=(CheckedInt RHS) {
  Valid = Valid && RHS.Valid && !__builtin_sub_overflow(Value, RHS.Value,
                                                        &Value);
  return *this;
}

CheckedInt &CheckedInt::operator*=(CheckedInt RHS) {
  Valid = Valid && RHS.Valid && !__builtin_mul_overflow(Value, RHS.Value,
                                                        &Value);
  return *this;
}
