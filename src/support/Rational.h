//===- support/Rational.h - Exact rational numbers -------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small exact rational type used by Fourier-Motzkin back substitution
/// (picking a sample point inside a real feasible region) and by the
/// Banerjee baseline bounds. Always stored in lowest terms with a positive
/// denominator. Arithmetic is overflow-checked: once any operation
/// overflows, the value becomes invalid and stays invalid, mirroring
/// CheckedInt.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SUPPORT_RATIONAL_H
#define EDDA_SUPPORT_RATIONAL_H

#include "support/IntMath.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

namespace edda {

/// Exact rational number Num/Den, Den > 0, in lowest terms.
class Rational {
public:
  /// Zero.
  Rational() : Num(0), Den(1), Valid(true) {}

  /// The integer \p N.
  /*implicit*/ Rational(int64_t N) : Num(N), Den(1), Valid(true) {}

  /// N/D, normalized. \pre D != 0.
  Rational(int64_t N, int64_t D);

  /// False once any operation in the value's history overflowed.
  bool valid() const { return Valid; }

  int64_t num() const {
    assert(Valid && "reading an overflowed Rational");
    return Num;
  }
  int64_t den() const {
    assert(Valid && "reading an overflowed Rational");
    return Den;
  }

  bool isInteger() const { return Valid && Den == 1; }

  /// Largest integer <= this. \pre valid().
  int64_t floor() const;
  /// Smallest integer >= this. \pre valid().
  int64_t ceil() const;

  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// \pre RHS is nonzero (a zero divisor yields an invalid value).
  Rational operator/(const Rational &RHS) const;
  Rational operator-() const;

  /// Comparisons require both operands valid; comparing invalid values is
  /// a programming error.
  bool operator==(const Rational &RHS) const;
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator<=(const Rational &RHS) const;
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator>=(const Rational &RHS) const { return RHS <= *this; }

  /// Renders "N" or "N/D" for debugging.
  std::string str() const;

  /// An invalid (overflowed) rational, for tests.
  static Rational invalid();

private:
  int64_t Num;
  int64_t Den;
  bool Valid;

  static Rational makeInvalid();
  static Rational makeNormalized(int64_t N, int64_t D);
};

} // namespace edda

#endif // EDDA_SUPPORT_RATIONAL_H
