//===- support/Hashing.cpp - Hash utilities ------------------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

using namespace edda;

uint64_t edda::hashCombine(uint64_t Seed, uint64_t Value) {
  // splitmix64 finalizer applied to the incoming value, folded into the
  // seed with the boost::hash_combine recipe widened to 64 bits.
  uint64_t V = Value + 0x9e3779b97f4a7c15ULL;
  V = (V ^ (V >> 30)) * 0xbf58476d1ce4e5b9ULL;
  V = (V ^ (V >> 27)) * 0x94d049bb133111ebULL;
  V = V ^ (V >> 31);
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

uint64_t edda::hashVector(const std::vector<int64_t> &Values) {
  uint64_t H = 0x811c9dc5u ^ (Values.size() * 0x100000001b3ULL);
  for (int64_t V : Values)
    H = hashCombine(H, static_cast<uint64_t>(V));
  return H;
}

uint64_t edda::paperHash(const std::vector<int64_t> &Values) {
  uint64_t H = Values.size();
  uint64_t Pow = 1;
  for (int64_t V : Values) {
    H += Pow * static_cast<uint64_t>(V);
    Pow <<= 1; // 2^i, wrapping mod 2^64 after 64 elements.
  }
  return H;
}
