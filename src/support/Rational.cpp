//===- support/Rational.cpp - Exact rational numbers ---------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

using namespace edda;

Rational Rational::makeInvalid() {
  Rational R;
  R.Valid = false;
  return R;
}

Rational Rational::invalid() { return makeInvalid(); }

Rational Rational::makeNormalized(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    std::optional<int64_t> NN = checkedNeg(N);
    std::optional<int64_t> ND = checkedNeg(D);
    if (!NN || !ND)
      return makeInvalid();
    N = *NN;
    D = *ND;
  }
  int64_t G = gcd64(N, D);
  if (G > 1) {
    N /= G;
    D /= G;
  }
  Rational R;
  R.Num = N;
  R.Den = D;
  R.Valid = true;
  return R;
}

Rational::Rational(int64_t N, int64_t D) { *this = makeNormalized(N, D); }

int64_t Rational::floor() const {
  assert(Valid && "floor of an overflowed Rational");
  return floorDiv(Num, Den);
}

int64_t Rational::ceil() const {
  assert(Valid && "ceil of an overflowed Rational");
  return ceilDiv(Num, Den);
}

Rational Rational::operator+(const Rational &RHS) const {
  if (!Valid || !RHS.Valid)
    return makeInvalid();
  // N1/D1 + N2/D2 = (N1*D2 + N2*D1) / (D1*D2).
  CheckedInt N = CheckedInt(Num) * RHS.Den + CheckedInt(RHS.Num) * Den;
  CheckedInt D = CheckedInt(Den) * RHS.Den;
  if (!N.valid() || !D.valid())
    return makeInvalid();
  return makeNormalized(N.get(), D.get());
}

Rational Rational::operator-(const Rational &RHS) const {
  return *this + (-RHS);
}

Rational Rational::operator*(const Rational &RHS) const {
  if (!Valid || !RHS.Valid)
    return makeInvalid();
  // Cross-cancel first to keep intermediate products small.
  int64_t G1 = gcd64(Num, RHS.Den);
  int64_t G2 = gcd64(RHS.Num, Den);
  int64_t N1 = G1 > 1 ? Num / G1 : Num;
  int64_t D2 = G1 > 1 ? RHS.Den / G1 : RHS.Den;
  int64_t N2 = G2 > 1 ? RHS.Num / G2 : RHS.Num;
  int64_t D1 = G2 > 1 ? Den / G2 : Den;
  CheckedInt N = CheckedInt(N1) * N2;
  CheckedInt D = CheckedInt(D1) * D2;
  if (!N.valid() || !D.valid())
    return makeInvalid();
  return makeNormalized(N.get(), D.get());
}

Rational Rational::operator/(const Rational &RHS) const {
  if (!Valid || !RHS.Valid || RHS.Num == 0)
    return makeInvalid();
  return *this * makeNormalized(RHS.Den, RHS.Num);
}

Rational Rational::operator-() const {
  if (!Valid)
    return makeInvalid();
  std::optional<int64_t> N = checkedNeg(Num);
  if (!N)
    return makeInvalid();
  Rational R;
  R.Num = *N;
  R.Den = Den;
  R.Valid = true;
  return R;
}

bool Rational::operator==(const Rational &RHS) const {
  assert(Valid && RHS.Valid && "comparing overflowed Rationals");
  // Both sides are normalized, so componentwise equality suffices.
  return Num == RHS.Num && Den == RHS.Den;
}

bool Rational::operator<(const Rational &RHS) const {
  assert(Valid && RHS.Valid && "comparing overflowed Rationals");
  // N1/D1 < N2/D2  iff  N1*D2 < N2*D1  (denominators positive). Use
  // 128-bit products so the comparison itself can never overflow.
  __int128 L = static_cast<__int128>(Num) * RHS.Den;
  __int128 R = static_cast<__int128>(RHS.Num) * Den;
  return L < R;
}

bool Rational::operator<=(const Rational &RHS) const {
  assert(Valid && RHS.Valid && "comparing overflowed Rationals");
  __int128 L = static_cast<__int128>(Num) * RHS.Den;
  __int128 R = static_cast<__int128>(RHS.Num) * Den;
  return L <= R;
}

std::string Rational::str() const {
  if (!Valid)
    return "<invalid>";
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
