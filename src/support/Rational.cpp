//===- support/Rational.cpp - Exact rational numbers ---------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "support/Int128.h"

using namespace edda;

Rational Rational::makeInvalid() {
  Rational R;
  R.Valid = false;
  return R;
}

Rational Rational::invalid() { return makeInvalid(); }

namespace {

/// Normalizes N/D computed at 128-bit precision and narrows at the end,
/// so intermediates (and INT64_MIN-magnitude inputs whose reduced form
/// is representable) never poison the value. Sign canonicalization runs
/// *after* gcd reduction: negating first is what used to wrap
/// -INT64_MIN.
Rational normalizedWide(Int128 N, Int128 D) {
  assert(!D.isZero() && "rational with zero denominator");
  Int128 G = gcdOf(N, D);
  if (G > Int128(1)) {
    N /= G;
    D /= G;
  }
  if (D.isNegative()) {
    std::optional<Int128> NN = checkedNeg(N);
    std::optional<Int128> ND = checkedNeg(D);
    if (!NN || !ND)
      return Rational::invalid();
    N = *NN;
    D = *ND;
  }
  if (!N.fitsInt64() || !D.fitsInt64())
    return Rational::invalid();
  return Rational(N.toInt64(), D.toInt64());
}

} // namespace

Rational Rational::makeNormalized(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  // Reduce magnitudes before canonicalizing the sign: for inputs like
  // (INT64_MIN, -2) the reduced value is representable even though
  // negating the raw denominator would overflow.
  Int128 WN(N), WD(D);
  Int128 G = gcdOf(WN, WD);
  if (G > Int128(1)) {
    WN /= G;
    WD /= G;
  }
  if (WD.isNegative()) {
    std::optional<Int128> NN = checkedNeg(WN);
    std::optional<Int128> ND = checkedNeg(WD);
    if (!NN || !ND)
      return makeInvalid();
    WN = *NN;
    WD = *ND;
  }
  if (!WN.fitsInt64() || !WD.fitsInt64())
    return makeInvalid();
  Rational R;
  R.Num = WN.toInt64();
  R.Den = WD.toInt64();
  R.Valid = true;
  return R;
}

Rational::Rational(int64_t N, int64_t D) { *this = makeNormalized(N, D); }

int64_t Rational::floor() const {
  assert(Valid && "floor of an overflowed Rational");
  return floorDiv(Num, Den);
}

int64_t Rational::ceil() const {
  assert(Valid && "ceil of an overflowed Rational");
  return ceilDiv(Num, Den);
}

Rational Rational::operator+(const Rational &RHS) const {
  if (!Valid || !RHS.Valid)
    return makeInvalid();
  // N1/D1 + N2/D2 = (N1*D2 + N2*D1) / (D1*D2), computed at 128-bit
  // precision: each product fits in 126 bits and the sum in 127, so the
  // only way the result can poison is failing to narrow after
  // normalization.
  Int128 N = Int128(Num) * Int128(RHS.Den) +
             Int128(RHS.Num) * Int128(Den);
  Int128 D = Int128(Den) * Int128(RHS.Den);
  return normalizedWide(N, D);
}

Rational Rational::operator-(const Rational &RHS) const {
  return *this + (-RHS);
}

Rational Rational::operator*(const Rational &RHS) const {
  if (!Valid || !RHS.Valid)
    return makeInvalid();
  // Cross-cancel first to keep intermediate products small, then form
  // the (exact, 126-bit-at-most) products wide and narrow after
  // normalization.
  int64_t G1 = gcd64(Num, RHS.Den);
  int64_t G2 = gcd64(RHS.Num, Den);
  int64_t N1 = G1 > 1 ? Num / G1 : Num;
  int64_t D2 = G1 > 1 ? RHS.Den / G1 : RHS.Den;
  int64_t N2 = G2 > 1 ? RHS.Num / G2 : RHS.Num;
  int64_t D1 = G2 > 1 ? Den / G2 : Den;
  return normalizedWide(Int128(N1) * Int128(N2),
                        Int128(D1) * Int128(D2));
}

Rational Rational::operator/(const Rational &RHS) const {
  if (!Valid || !RHS.Valid || RHS.Num == 0)
    return makeInvalid();
  // Form the quotient wide instead of inverting RHS first: inverting
  // puts an INT64_MIN numerator into the denominator slot, which used to
  // poison values like (MIN/1)/(MIN/1) that reduce to 1.
  return normalizedWide(Int128(Num) * Int128(RHS.Den),
                        Int128(Den) * Int128(RHS.Num));
}

Rational Rational::operator-() const {
  if (!Valid)
    return makeInvalid();
  std::optional<int64_t> N = checkedNeg(Num);
  if (!N)
    return makeInvalid();
  Rational R;
  R.Num = *N;
  R.Den = Den;
  R.Valid = true;
  return R;
}

bool Rational::operator==(const Rational &RHS) const {
  assert(Valid && RHS.Valid && "comparing overflowed Rationals");
  // Both sides are normalized, so componentwise equality suffices.
  return Num == RHS.Num && Den == RHS.Den;
}

bool Rational::operator<(const Rational &RHS) const {
  assert(Valid && RHS.Valid && "comparing overflowed Rationals");
  // N1/D1 < N2/D2  iff  N1*D2 < N2*D1  (denominators positive). Use
  // 128-bit products so the comparison itself can never overflow.
  __int128 L = static_cast<__int128>(Num) * RHS.Den;
  __int128 R = static_cast<__int128>(RHS.Num) * Den;
  return L < R;
}

bool Rational::operator<=(const Rational &RHS) const {
  assert(Valid && RHS.Valid && "comparing overflowed Rationals");
  __int128 L = static_cast<__int128>(Num) * RHS.Den;
  __int128 R = static_cast<__int128>(RHS.Num) * Den;
  return L <= R;
}

std::string Rational::str() const {
  if (!Valid)
    return "<invalid>";
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
