//===- support/IntMath.h - Exact integer arithmetic helpers ----*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact 64-bit integer helpers used throughout the dependence tests: gcd
/// and extended gcd, floor/ceiling division, and overflow-checked
/// arithmetic. Every decision procedure in the library must be exact, so
/// silent wraparound is never acceptable: callers either use the checked_*
/// functions and handle overflow, or use the plain helpers whose
/// preconditions rule overflow out.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SUPPORT_INTMATH_H
#define EDDA_SUPPORT_INTMATH_H

#include <cassert>
#include <cstdint>
#include <optional>

namespace edda {

/// Greatest common divisor of |A| and |B|; gcd(0, 0) == 0.
int64_t gcd64(int64_t A, int64_t B);

/// Least common multiple of |A| and |B|; lcm(0, N) == lcm(N, 0) == 0,
/// so std::nullopt means overflow and nothing else (callers clearing
/// fractions over a constraint row must not conflate a zero coefficient
/// with arithmetic giving up).
std::optional<int64_t> lcm64(int64_t A, int64_t B);

/// Result of the extended Euclidean algorithm: Gcd == X*A + Y*B.
struct ExtGcdResult {
  int64_t Gcd;
  int64_t X;
  int64_t Y;
};

/// Extended gcd: finds G = gcd(|A|, |B|) and Bezout coefficients X, Y with
/// X*A + Y*B == G. extGcd64(0, 0) returns {0, 0, 0}.
ExtGcdResult extGcd64(int64_t A, int64_t B);

/// Floor division: largest Q with Q*B <= A.
/// \pre B != 0 and (A, B) != (INT64_MIN, -1) — the one quotient that
/// overflows. Callers reachable with arbitrary coefficients must use
/// checkedFloorDiv instead.
int64_t floorDiv(int64_t A, int64_t B);

/// Ceiling division: smallest Q with Q*B >= A.
/// \pre B != 0 and (A, B) != (INT64_MIN, -1); see floorDiv.
int64_t ceilDiv(int64_t A, int64_t B);

/// Checked floor/ceiling division: std::nullopt exactly for the
/// (INT64_MIN, -1) overflow pair. \pre B != 0.
std::optional<int64_t> checkedFloorDiv(int64_t A, int64_t B);
std::optional<int64_t> checkedCeilDiv(int64_t A, int64_t B);

/// Checked addition; std::nullopt on signed overflow.
std::optional<int64_t> checkedAdd(int64_t A, int64_t B);

/// Checked subtraction; std::nullopt on signed overflow.
std::optional<int64_t> checkedSub(int64_t A, int64_t B);

/// Checked multiplication; std::nullopt on signed overflow.
std::optional<int64_t> checkedMul(int64_t A, int64_t B);

/// Checked negation; std::nullopt for INT64_MIN.
std::optional<int64_t> checkedNeg(int64_t A);

/// An accumulator for chains of checked operations. Once any step
/// overflows the accumulator becomes poisoned and stays poisoned, so a
/// whole dot product can be computed with a single validity check at the
/// end.
class CheckedInt {
public:
  CheckedInt() : Value(0), Valid(true) {}
  /*implicit*/ CheckedInt(int64_t V) : Value(V), Valid(true) {}

  /// True when no operation in the chain has overflowed.
  bool valid() const { return Valid; }

  /// The accumulated value. \pre valid().
  int64_t get() const {
    assert(Valid && "reading an overflowed CheckedInt");
    return Value;
  }

  /// The accumulated value, or std::nullopt after overflow.
  std::optional<int64_t> getOpt() const {
    if (!Valid)
      return std::nullopt;
    return Value;
  }

  CheckedInt &operator+=(CheckedInt RHS);
  CheckedInt &operator-=(CheckedInt RHS);
  CheckedInt &operator*=(CheckedInt RHS);

  friend CheckedInt operator+(CheckedInt A, CheckedInt B) { return A += B; }
  friend CheckedInt operator-(CheckedInt A, CheckedInt B) { return A -= B; }
  friend CheckedInt operator*(CheckedInt A, CheckedInt B) { return A *= B; }

private:
  int64_t Value;
  bool Valid;
};

} // namespace edda

#endif // EDDA_SUPPORT_INTMATH_H
