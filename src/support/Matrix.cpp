//===- support/Matrix.cpp - Dense integer matrices -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Matrix.h"

#include "support/WideInt.h"

#include <algorithm>

using namespace edda;

namespace edda {

template <typename T> MatrixT<T> MatrixT<T>::identity(unsigned Size) {
  MatrixT M(Size, Size);
  for (unsigned I = 0; I < Size; ++I)
    M.at(I, I) = T(1);
  return M;
}

template <typename T> void MatrixT<T>::swapRows(unsigned A, unsigned B) {
  assert(A < NumRows && B < NumRows && "row index out of range");
  if (A == B)
    return;
  for (unsigned C = 0; C < NumCols; ++C)
    std::swap(at(A, C), at(B, C));
}

template <typename T>
bool MatrixT<T>::addRowMultiple(unsigned A, unsigned B, T Factor) {
  assert(A < NumRows && B < NumRows && "row index out of range");
  assert(A != B && "adding a row multiple to itself");
  for (unsigned C = 0; C < NumCols; ++C) {
    Checked<T> V = Checked<T>(at(A, C)) - Checked<T>(Factor) * at(B, C);
    if (!V.valid())
      return false;
    at(A, C) = V.get();
  }
  return true;
}

template <typename T> bool MatrixT<T>::negateRow(unsigned Row) {
  assert(Row < NumRows && "row index out of range");
  for (unsigned C = 0; C < NumCols; ++C) {
    std::optional<T> V = checkedNeg(at(Row, C));
    if (!V)
      return false;
    at(Row, C) = *V;
  }
  return true;
}

template <typename T>
MatrixT<T> MatrixT<T>::multiply(const MatrixT &RHS, bool &Ok) const {
  assert(NumCols == RHS.NumRows && "shape mismatch in matrix multiply");
  MatrixT Result(NumRows, RHS.NumCols);
  Ok = true;
  for (unsigned I = 0; I < NumRows; ++I) {
    for (unsigned J = 0; J < RHS.NumCols; ++J) {
      Checked<T> Sum;
      for (unsigned K = 0; K < NumCols; ++K)
        Sum += Checked<T>(at(I, K)) * RHS.at(K, J);
      if (!Sum.valid()) {
        Ok = false;
        return Result;
      }
      Result.at(I, J) = Sum.get();
    }
  }
  return Result;
}

template <typename T> std::vector<T> MatrixT<T>::row(unsigned Row) const {
  assert(Row < NumRows && "row index out of range");
  std::vector<T> R(NumCols, T(0));
  for (unsigned C = 0; C < NumCols; ++C)
    R[C] = at(Row, C);
  return R;
}

template <typename T> bool MatrixT<T>::isEchelon() const {
  // Track the column of the previous row's leading nonzero; each
  // subsequent nonzero row must lead strictly further right, and no
  // nonzero row may follow a zero row.
  int PrevLead = -1;
  bool SeenZeroRow = false;
  for (unsigned I = 0; I < NumRows; ++I) {
    int Lead = -1;
    for (unsigned C = 0; C < NumCols; ++C) {
      if (at(I, C) != T(0)) {
        Lead = static_cast<int>(C);
        break;
      }
    }
    if (Lead < 0) {
      SeenZeroRow = true;
      continue;
    }
    if (SeenZeroRow || Lead <= PrevLead)
      return false;
    PrevLead = Lead;
  }
  return true;
}

template <typename T> T MatrixT<T>::determinant(bool &Ok) const {
  assert(NumRows == NumCols && "determinant of a non-square matrix");
  Ok = true;
  unsigned N = NumRows;
  if (N == 0)
    return T(1);
  // Bareiss fraction-free elimination: all intermediate values are exact
  // integers and the final pivot is the determinant.
  MatrixT W(*this);
  T Sign(1);
  T Prev(1);
  for (unsigned K = 0; K + 1 < N; ++K) {
    if (W.at(K, K) == T(0)) {
      unsigned Pivot = K + 1;
      while (Pivot < N && W.at(Pivot, K) == T(0))
        ++Pivot;
      if (Pivot == N)
        return T(0);
      W.swapRows(K, Pivot);
      Sign = T(0) - Sign;
    }
    for (unsigned I = K + 1; I < N; ++I) {
      for (unsigned J = K + 1; J < N; ++J) {
        Checked<T> Num = Checked<T>(W.at(I, J)) * W.at(K, K) -
                         Checked<T>(W.at(I, K)) * W.at(K, J);
        if (!Num.valid()) {
          Ok = false;
          return T(0);
        }
        // Bareiss guarantees exact divisibility by the previous pivot.
        W.at(I, J) = Num.get() / Prev;
      }
      W.at(I, K) = T(0);
    }
    Prev = W.at(K, K);
  }
  std::optional<T> Det = checkedMul(Sign, W.at(N - 1, N - 1));
  if (!Det) {
    Ok = false;
    return T(0);
  }
  return *Det;
}

template <typename T> std::string MatrixT<T>::str() const {
  std::string Out;
  for (unsigned I = 0; I < NumRows; ++I) {
    Out += "[";
    for (unsigned C = 0; C < NumCols; ++C) {
      if (C)
        Out += " ";
      Out += toDecimalString(at(I, C));
    }
    Out += "]\n";
  }
  return Out;
}

template class MatrixT<int64_t>;
template class MatrixT<Int128>;

} // namespace edda
