//===- support/Matrix.cpp - Dense integer matrices -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Matrix.h"

#include "support/IntMath.h"

#include <algorithm>

using namespace edda;

IntMatrix IntMatrix::identity(unsigned Size) {
  IntMatrix M(Size, Size);
  for (unsigned I = 0; I < Size; ++I)
    M.at(I, I) = 1;
  return M;
}

void IntMatrix::swapRows(unsigned A, unsigned B) {
  assert(A < NumRows && B < NumRows && "row index out of range");
  if (A == B)
    return;
  for (unsigned C = 0; C < NumCols; ++C)
    std::swap(at(A, C), at(B, C));
}

bool IntMatrix::addRowMultiple(unsigned A, unsigned B, int64_t Factor) {
  assert(A < NumRows && B < NumRows && "row index out of range");
  assert(A != B && "adding a row multiple to itself");
  for (unsigned C = 0; C < NumCols; ++C) {
    CheckedInt V = CheckedInt(at(A, C)) - CheckedInt(Factor) * at(B, C);
    if (!V.valid())
      return false;
    at(A, C) = V.get();
  }
  return true;
}

bool IntMatrix::negateRow(unsigned Row) {
  assert(Row < NumRows && "row index out of range");
  for (unsigned C = 0; C < NumCols; ++C) {
    std::optional<int64_t> V = checkedNeg(at(Row, C));
    if (!V)
      return false;
    at(Row, C) = *V;
  }
  return true;
}

IntMatrix IntMatrix::multiply(const IntMatrix &RHS, bool &Ok) const {
  assert(NumCols == RHS.NumRows && "shape mismatch in matrix multiply");
  IntMatrix Result(NumRows, RHS.NumCols);
  Ok = true;
  for (unsigned I = 0; I < NumRows; ++I) {
    for (unsigned J = 0; J < RHS.NumCols; ++J) {
      CheckedInt Sum;
      for (unsigned K = 0; K < NumCols; ++K)
        Sum += CheckedInt(at(I, K)) * RHS.at(K, J);
      if (!Sum.valid()) {
        Ok = false;
        return Result;
      }
      Result.at(I, J) = Sum.get();
    }
  }
  return Result;
}

std::vector<int64_t> IntMatrix::row(unsigned Row) const {
  assert(Row < NumRows && "row index out of range");
  std::vector<int64_t> R(NumCols);
  for (unsigned C = 0; C < NumCols; ++C)
    R[C] = at(Row, C);
  return R;
}

bool IntMatrix::isEchelon() const {
  // Track the column of the previous row's leading nonzero; each
  // subsequent nonzero row must lead strictly further right, and no
  // nonzero row may follow a zero row.
  int PrevLead = -1;
  bool SeenZeroRow = false;
  for (unsigned I = 0; I < NumRows; ++I) {
    int Lead = -1;
    for (unsigned C = 0; C < NumCols; ++C) {
      if (at(I, C) != 0) {
        Lead = static_cast<int>(C);
        break;
      }
    }
    if (Lead < 0) {
      SeenZeroRow = true;
      continue;
    }
    if (SeenZeroRow || Lead <= PrevLead)
      return false;
    PrevLead = Lead;
  }
  return true;
}

int64_t IntMatrix::determinant(bool &Ok) const {
  assert(NumRows == NumCols && "determinant of a non-square matrix");
  Ok = true;
  unsigned N = NumRows;
  if (N == 0)
    return 1;
  // Bareiss fraction-free elimination: all intermediate values are exact
  // integers and the final pivot is the determinant.
  IntMatrix W(*this);
  int64_t Sign = 1;
  int64_t Prev = 1;
  for (unsigned K = 0; K + 1 < N; ++K) {
    if (W.at(K, K) == 0) {
      unsigned Pivot = K + 1;
      while (Pivot < N && W.at(Pivot, K) == 0)
        ++Pivot;
      if (Pivot == N)
        return 0;
      W.swapRows(K, Pivot);
      Sign = -Sign;
    }
    for (unsigned I = K + 1; I < N; ++I) {
      for (unsigned J = K + 1; J < N; ++J) {
        CheckedInt Num = CheckedInt(W.at(I, J)) * W.at(K, K) -
                         CheckedInt(W.at(I, K)) * W.at(K, J);
        if (!Num.valid()) {
          Ok = false;
          return 0;
        }
        // Bareiss guarantees exact divisibility by the previous pivot.
        W.at(I, J) = Num.get() / Prev;
      }
      W.at(I, K) = 0;
    }
    Prev = W.at(K, K);
  }
  std::optional<int64_t> Det = checkedMul(Sign, W.at(N - 1, N - 1));
  if (!Det) {
    Ok = false;
    return 0;
  }
  return *Det;
}

std::string IntMatrix::str() const {
  std::string Out;
  for (unsigned I = 0; I < NumRows; ++I) {
    Out += "[";
    for (unsigned C = 0; C < NumCols; ++C) {
      if (C)
        Out += " ";
      Out += std::to_string(at(I, C));
    }
    Out += "]\n";
  }
  return Out;
}
