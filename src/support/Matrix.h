//===- support/Matrix.h - Dense integer matrices ---------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense matrix of integers with the elementary row operations
/// needed by the extended GCD test's unimodular factorization
/// (Banerjee's extension of Gaussian elimination, paper section 3.1).
/// Dependence problems have a handful of rows and columns, so a dense
/// row-major vector is the right representation.
///
/// The element type is a template parameter so the same row operations
/// serve both tiers of the widening arithmetic ladder: IntMatrix
/// (int64_t) on the fast path and WideMatrix (Int128) on the 128-bit
/// retry. Member definitions live in Matrix.cpp with explicit
/// instantiations for exactly those two scalars.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SUPPORT_MATRIX_H
#define EDDA_SUPPORT_MATRIX_H

#include "support/Int128.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace edda {

/// Dense Rows x Cols matrix of T, row-major.
template <typename T> class MatrixT {
public:
  /// Zero matrix of the given shape (either dimension may be zero).
  MatrixT(unsigned Rows, unsigned Cols)
      : NumRows(Rows), NumCols(Cols),
        Data(static_cast<size_t>(Rows) * Cols, T(0)) {}

  /// The Size x Size identity.
  static MatrixT identity(unsigned Size);

  unsigned rows() const { return NumRows; }
  unsigned cols() const { return NumCols; }

  T &at(unsigned Row, unsigned Col) {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[static_cast<size_t>(Row) * NumCols + Col];
  }
  T at(unsigned Row, unsigned Col) const {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[static_cast<size_t>(Row) * NumCols + Col];
  }

  /// Swap rows \p A and \p B.
  void swapRows(unsigned A, unsigned B);

  /// Row A -= Factor * Row B. Returns false (leaving the matrix in an
  /// unspecified but valid state) if any element computation overflows.
  bool addRowMultiple(unsigned A, unsigned B, T Factor);

  /// Negate every element of row \p Row. Returns false on overflow
  /// (only possible for minimum-value entries).
  bool negateRow(unsigned Row);

  /// Matrix product; returns an empty optional-like flag via \p Ok on
  /// overflow. \pre cols() == RHS.rows().
  MatrixT multiply(const MatrixT &RHS, bool &Ok) const;

  /// Row vector (1 x cols) copy of row \p Row.
  std::vector<T> row(unsigned Row) const;

  bool operator==(const MatrixT &RHS) const {
    return NumRows == RHS.NumRows && NumCols == RHS.NumCols &&
           Data == RHS.Data;
  }
  bool operator!=(const MatrixT &RHS) const { return !(*this == RHS); }

  /// True when the first nonzero entry of each row is strictly to the
  /// right of the previous row's (zero rows only at the bottom): the
  /// "echelon" shape required of D in UA = D.
  bool isEchelon() const;

  /// Determinant via fraction-free Gaussian elimination, for test use
  /// (verifying unimodularity). \pre square. Returns false in \p Ok on
  /// overflow.
  T determinant(bool &Ok) const;

  /// Multi-line debug rendering.
  std::string str() const;

private:
  unsigned NumRows;
  unsigned NumCols;
  std::vector<T> Data;
};

/// The 64-bit fast-path matrix (the historical name).
using IntMatrix = MatrixT<int64_t>;
/// The 128-bit widened-retry matrix.
using WideMatrix = MatrixT<Int128>;

} // namespace edda

#endif // EDDA_SUPPORT_MATRIX_H
