//===- support/Matrix.h - Dense integer matrices ---------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense matrix of 64-bit integers with the elementary row
/// operations needed by the extended GCD test's unimodular factorization
/// (Banerjee's extension of Gaussian elimination, paper section 3.1).
/// Dependence problems have a handful of rows and columns, so a dense
/// row-major vector is the right representation.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SUPPORT_MATRIX_H
#define EDDA_SUPPORT_MATRIX_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace edda {

/// Dense Rows x Cols matrix of int64_t, row-major.
class IntMatrix {
public:
  /// Zero matrix of the given shape (either dimension may be zero).
  IntMatrix(unsigned Rows, unsigned Cols)
      : NumRows(Rows), NumCols(Cols),
        Data(static_cast<size_t>(Rows) * Cols, 0) {}

  /// The Size x Size identity.
  static IntMatrix identity(unsigned Size);

  unsigned rows() const { return NumRows; }
  unsigned cols() const { return NumCols; }

  int64_t &at(unsigned Row, unsigned Col) {
    assert(Row < NumRows && Col < NumCols && "IntMatrix index out of range");
    return Data[static_cast<size_t>(Row) * NumCols + Col];
  }
  int64_t at(unsigned Row, unsigned Col) const {
    assert(Row < NumRows && Col < NumCols && "IntMatrix index out of range");
    return Data[static_cast<size_t>(Row) * NumCols + Col];
  }

  /// Swap rows \p A and \p B.
  void swapRows(unsigned A, unsigned B);

  /// Row A -= Factor * Row B. Returns false (leaving the matrix in an
  /// unspecified but valid state) if any element computation overflows.
  bool addRowMultiple(unsigned A, unsigned B, int64_t Factor);

  /// Negate every element of row \p Row. Returns false on overflow
  /// (only possible for INT64_MIN entries).
  bool negateRow(unsigned Row);

  /// Matrix product; returns an empty optional-like flag via \p Ok on
  /// overflow. \pre cols() == RHS.rows().
  IntMatrix multiply(const IntMatrix &RHS, bool &Ok) const;

  /// Row vector (1 x cols) copy of row \p Row.
  std::vector<int64_t> row(unsigned Row) const;

  bool operator==(const IntMatrix &RHS) const {
    return NumRows == RHS.NumRows && NumCols == RHS.NumCols &&
           Data == RHS.Data;
  }
  bool operator!=(const IntMatrix &RHS) const { return !(*this == RHS); }

  /// True when the first nonzero entry of each row is strictly to the
  /// right of the previous row's (zero rows only at the bottom): the
  /// "echelon" shape required of D in UA = D.
  bool isEchelon() const;

  /// Determinant via fraction-free Gaussian elimination, for test use
  /// (verifying unimodularity). \pre square. Returns false in \p Ok on
  /// overflow.
  int64_t determinant(bool &Ok) const;

  /// Multi-line debug rendering.
  std::string str() const;

private:
  unsigned NumRows;
  unsigned NumCols;
  std::vector<int64_t> Data;
};

} // namespace edda

#endif // EDDA_SUPPORT_MATRIX_H
