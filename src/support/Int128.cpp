//===- support/Int128.cpp - Portable 128-bit integers --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/Int128.h"

#include <algorithm>

using namespace edda;
using namespace edda::detail;

//===----------------------------------------------------------------------===//
// Portable word-level helpers
//===----------------------------------------------------------------------===//

U128 edda::detail::mulU64(uint64_t A, uint64_t B) {
  // Schoolbook 32-bit limbs; the cross terms cannot overflow because
  // each is at most (2^32 - 1)^2 and the carries fit in 64 bits.
  uint64_t AL = A & 0xffffffffu, AH = A >> 32;
  uint64_t BL = B & 0xffffffffu, BH = B >> 32;
  uint64_t LL = AL * BL;
  // Neither sum can overflow: (2^32 - 1)^2 + 2*(2^32 - 1) == 2^64 - 1.
  uint64_t Mid1 = AH * BL + (LL >> 32);
  uint64_t Mid2 = AL * BH + (Mid1 & 0xffffffffu);
  U128 R;
  R.Lo = (Mid2 << 32) | (LL & 0xffffffffu);
  R.Hi = AH * BH + (Mid1 >> 32) + (Mid2 >> 32);
  return R;
}

U128 edda::detail::addU128(U128 A, U128 B, bool &Carry) {
  U128 R;
  R.Lo = A.Lo + B.Lo;
  uint64_t C = R.Lo < A.Lo ? 1 : 0;
  R.Hi = A.Hi + B.Hi;
  bool HiCarry = R.Hi < A.Hi;
  uint64_t Hi2 = R.Hi + C;
  HiCarry = HiCarry || Hi2 < R.Hi;
  R.Hi = Hi2;
  Carry = HiCarry;
  return R;
}

U128 edda::detail::subU128(U128 A, U128 B) {
  U128 R;
  R.Lo = A.Lo - B.Lo;
  uint64_t Borrow = A.Lo < B.Lo ? 1 : 0;
  R.Hi = A.Hi - B.Hi - Borrow;
  return R;
}

U128 edda::detail::shl1(U128 A, bool BitIn) {
  U128 R;
  R.Hi = (A.Hi << 1) | (A.Lo >> 63);
  R.Lo = (A.Lo << 1) | (BitIn ? 1 : 0);
  return R;
}

U128 edda::detail::divmodU128(U128 A, U128 B, U128 &Rem) {
  assert((B.Lo != 0 || B.Hi != 0) && "128-bit division by zero");
  U128 Q{0, 0};
  U128 R{0, 0};
  for (int Bit = 127; Bit >= 0; --Bit) {
    bool In = Bit >= 64 ? (A.Hi >> (Bit - 64)) & 1 : (A.Lo >> Bit) & 1;
    R = shl1(R, In);
    if (!(R < B)) {
      R = subU128(R, B);
      if (Bit >= 64)
        Q.Hi |= 1ull << (Bit - 64);
      else
        Q.Lo |= 1ull << Bit;
    }
  }
  Rem = R;
  return Q;
}

//===----------------------------------------------------------------------===//
// Int128
//===----------------------------------------------------------------------===//

namespace {

U128 words(Int128 V) { return {V.loWord(), V.hiWord()}; }

Int128 fromU(U128 V) { return Int128::fromWords(V.Hi, V.Lo); }

/// Magnitude of \p V as an unsigned 128-bit value (min() maps to 2^127,
/// which the unsigned representation holds exactly).
U128 magnitude(Int128 V) {
  U128 W = words(V);
  if (!V.isNegative())
    return W;
  return subU128({0, 0}, W);
}

} // namespace

Int128 Int128::operator-() const {
  return fromU(subU128({0, 0}, {Lo, Hi}));
}

Int128 Int128::operator+(Int128 RHS) const {
  bool Ignored;
  return fromU(addU128({Lo, Hi}, {RHS.Lo, RHS.Hi}, Ignored));
}

Int128 Int128::operator-(Int128 RHS) const {
  return fromU(subU128({Lo, Hi}, {RHS.Lo, RHS.Hi}));
}

Int128 Int128::operator*(Int128 RHS) const {
  // Low 128 bits of the full product; word-level schoolbook. The high
  // cross terms only contribute to bits >= 128 and are dropped, which is
  // exactly two's-complement wraparound.
  U128 A = words(*this), B = words(RHS);
  U128 R = mulU64(A.Lo, B.Lo);
  R.Hi += A.Lo * B.Hi + A.Hi * B.Lo;
  return fromU(R);
}

Int128 Int128::operator/(Int128 RHS) const {
  assert(!RHS.isZero() && "Int128 division by zero");
  U128 Rem;
  U128 Q = divmodU128(magnitude(*this), magnitude(RHS), Rem);
  bool Negative = isNegative() != RHS.isNegative();
  return Negative ? -fromU(Q) : fromU(Q);
}

Int128 Int128::operator%(Int128 RHS) const {
  assert(!RHS.isZero() && "Int128 remainder by zero");
  U128 Rem;
  divmodU128(magnitude(*this), magnitude(RHS), Rem);
  // Truncating division: the remainder takes the dividend's sign.
  return isNegative() ? -fromU(Rem) : fromU(Rem);
}

bool edda::operator<(Int128 A, Int128 B) {
  int64_t AH = static_cast<int64_t>(A.Hi);
  int64_t BH = static_cast<int64_t>(B.Hi);
  if (AH != BH)
    return AH < BH;
  return A.Lo < B.Lo;
}

std::string Int128::str() const {
  if (isZero())
    return "0";
  U128 Mag = magnitude(*this);
  std::string Digits;
  while (Mag.Lo != 0 || Mag.Hi != 0) {
    U128 Rem;
    Mag = divmodU128(Mag, {10, 0}, Rem);
    Digits += static_cast<char>('0' + Rem.Lo);
  }
  if (isNegative())
    Digits += '-';
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

//===----------------------------------------------------------------------===//
// Checked arithmetic
//===----------------------------------------------------------------------===//

std::optional<Int128> edda::checkedAdd(Int128 A, Int128 B) {
  Int128 R = A + B;
  // Signed overflow iff the operands agree in sign and the result does
  // not.
  if (A.isNegative() == B.isNegative() &&
      R.isNegative() != A.isNegative())
    return std::nullopt;
  return R;
}

std::optional<Int128> edda::checkedSub(Int128 A, Int128 B) {
  Int128 R = A - B;
  if (A.isNegative() != B.isNegative() &&
      R.isNegative() != A.isNegative())
    return std::nullopt;
  return R;
}

std::optional<Int128> edda::checkedMul(Int128 A, Int128 B) {
  if (A.isZero() || B.isZero())
    return Int128(0);
  U128 MA = magnitude(A), MB = magnitude(B);
  if (MA.Hi != 0 && MB.Hi != 0)
    return std::nullopt;
  // Arrange the (at most one) wide operand first: product magnitude is
  // (WideHi, WideLo) * NarrowLo.
  if (MB.Hi != 0)
    std::swap(MA, MB);
  U128 High = mulU64(MA.Hi, MB.Lo);
  if (High.Hi != 0)
    return std::nullopt; // bits >= 128
  U128 Low = mulU64(MA.Lo, MB.Lo);
  uint64_t Hi = Low.Hi + High.Lo;
  if (Hi < Low.Hi)
    return std::nullopt; // carry out of bit 127
  U128 Mag{Low.Lo, Hi};
  bool Negative = A.isNegative() != B.isNegative();
  // Signed range: magnitude <= 2^127 - 1, or exactly 2^127 for min().
  U128 Limit{0, 1ull << 63}; // 2^127
  if (Limit < Mag)
    return std::nullopt;
  if (Mag == Limit) {
    if (!Negative)
      return std::nullopt;
    return Int128::min();
  }
  Int128 R = fromU(Mag);
  return Negative ? -R : R;
}

std::optional<Int128> edda::checkedNeg(Int128 A) {
  if (A == Int128::min())
    return std::nullopt;
  return -A;
}

//===----------------------------------------------------------------------===//
// Division helpers and gcd
//===----------------------------------------------------------------------===//

Int128 edda::floorDiv(Int128 A, Int128 B) {
  assert(!B.isZero() && "floorDiv by zero");
  assert(!(A == Int128::min() && B == Int128(-1)) &&
         "floorDiv(min, -1) overflows; use checkedFloorDiv");
  Int128 Q = A / B;
  Int128 R = A % B;
  if (!R.isZero() && (R.isNegative() != B.isNegative()))
    Q -= Int128(1);
  return Q;
}

Int128 edda::ceilDiv(Int128 A, Int128 B) {
  assert(!B.isZero() && "ceilDiv by zero");
  assert(!(A == Int128::min() && B == Int128(-1)) &&
         "ceilDiv(min, -1) overflows; use checkedCeilDiv");
  Int128 Q = A / B;
  Int128 R = A % B;
  if (!R.isZero() && (R.isNegative() == B.isNegative()))
    Q += Int128(1);
  return Q;
}

std::optional<Int128> edda::checkedFloorDiv(Int128 A, Int128 B) {
  assert(!B.isZero() && "checkedFloorDiv by zero");
  if (A == Int128::min() && B == Int128(-1))
    return std::nullopt;
  return floorDiv(A, B);
}

std::optional<Int128> edda::checkedCeilDiv(Int128 A, Int128 B) {
  assert(!B.isZero() && "checkedCeilDiv by zero");
  if (A == Int128::min() && B == Int128(-1))
    return std::nullopt;
  return ceilDiv(A, B);
}

Int128 edda::gcdOf(Int128 A, Int128 B) {
  U128 UA = magnitude(A);
  U128 UB = magnitude(B);
  while (UB.Lo != 0 || UB.Hi != 0) {
    U128 Rem;
    divmodU128(UA, UB, Rem);
    UA = UB;
    UB = Rem;
  }
  return fromU(UA);
}
