//===- support/Hashing.h - Hash utilities ----------------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hashing for the memoization tables (paper section 5). Two functions are
/// provided: the paper's literal hash,
///     h(x) = size(x) + sum_i 2^i * x_i            (mod 2^64),
/// chosen by the authors so that symmetrical or partially symmetrical
/// references do not collide, and a modern mixing hash used as the default.
/// The memoization bench compares their collision behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SUPPORT_HASHING_H
#define EDDA_SUPPORT_HASHING_H

#include <cstdint>
#include <vector>

namespace edda {

/// Combine \p Value into the running hash \p Seed (boost-style mixer).
uint64_t hashCombine(uint64_t Seed, uint64_t Value);

/// Mixing hash of an integer vector (default for the memo tables).
uint64_t hashVector(const std::vector<int64_t> &Values);

/// The paper's hash: size(x) + sum_i 2^i * x_i, with 2^i wrapping mod
/// 2^64. Kept for the Table 2 reproduction.
uint64_t paperHash(const std::vector<int64_t> &Values);

} // namespace edda

#endif // EDDA_SUPPORT_HASHING_H
