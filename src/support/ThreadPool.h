//===- support/ThreadPool.h - Minimal worker thread pool -------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool used by the parallel analysis driver.
/// Jobs are plain std::function thunks; submit() enqueues, wait() blocks
/// until every submitted job has finished. The pool is deliberately
/// minimal: no futures, no work stealing — the analyzer shards its own
/// work into coarse batches, so a single locked deque is not a
/// bottleneck.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SUPPORT_THREADPOOL_H
#define EDDA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace edda {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers. 0 is clamped to 1.
  explicit ThreadPool(unsigned NumThreads);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Job. Jobs may themselves submit further jobs.
  void submit(std::function<void()> Job);

  /// Blocks until the queue is empty and no job is running. Jobs
  /// submitted while waiting are waited for too.
  void wait();

  /// Runs \p Body(I) for I in [0, N), fanning out across the pool in
  /// contiguous chunks and blocking until all complete. Exceptions must
  /// not escape \p Body.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareThreads();

private:
  void workerLoop();

  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  size_t InFlight = 0; // queued + running
  bool Stopping = false;
};

} // namespace edda

#endif // EDDA_SUPPORT_THREADPOOL_H
