//===- support/WideInt.h - Two-tier widening arithmetic policy -*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The glue of the widening arithmetic ladder: the dependence-test
/// kernels are templated on a scalar type T (int64_t for the fast path,
/// Int128 for the widened retry) and written against a small overload
/// set — checkedAdd/Sub/Mul/Neg, gcdOf, checkedFloorDiv/checkedCeilDiv,
/// toDecimalString — plus the Checked<T> poison accumulator defined
/// here. A kernel that poisons at 64 bits is re-run at 128 bits by the
/// pipeline; only a 128-bit poison makes a query Unanalyzable.
///
/// Conversions: widening int64 -> Int128 is implicit and total;
/// narrowing is explicit and partial (narrowVec fails when any
/// component exceeds the int64 range).
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SUPPORT_WIDEINT_H
#define EDDA_SUPPORT_WIDEINT_H

#include "support/Int128.h"
#include "support/IntMath.h"

#include <optional>
#include <vector>

namespace edda {

/// gcd overload set for templated kernels (the Int128 overload lives in
/// Int128.h).
inline int64_t gcdOf(int64_t A, int64_t B) { return gcd64(A, B); }

/// Generic poison accumulator: the templated counterpart of CheckedInt,
/// built on the checkedAdd/Sub/Mul overload set so one kernel body
/// serves both tiers.
template <typename T> class Checked {
public:
  Checked() : Value(0), Valid(true) {}
  /*implicit*/ Checked(T V) : Value(V), Valid(true) {}

  bool valid() const { return Valid; }

  T get() const {
    assert(Valid && "reading an overflowed Checked value");
    return Value;
  }

  std::optional<T> getOpt() const {
    if (!Valid)
      return std::nullopt;
    return Value;
  }

  Checked &operator+=(const Checked &RHS) {
    return apply(RHS, [](T A, T B) { return checkedAdd(A, B); });
  }
  Checked &operator-=(const Checked &RHS) {
    return apply(RHS, [](T A, T B) { return checkedSub(A, B); });
  }
  Checked &operator*=(const Checked &RHS) {
    return apply(RHS, [](T A, T B) { return checkedMul(A, B); });
  }

  friend Checked operator+(Checked A, const Checked &B) { return A += B; }
  friend Checked operator-(Checked A, const Checked &B) { return A -= B; }
  friend Checked operator*(Checked A, const Checked &B) { return A *= B; }

private:
  template <typename Op> Checked &apply(const Checked &RHS, Op O) {
    if (!Valid || !RHS.Valid) {
      Valid = false;
      return *this;
    }
    std::optional<T> R = O(Value, RHS.Value);
    if (!R) {
      Valid = false;
      return *this;
    }
    Value = *R;
    return *this;
  }

  T Value;
  bool Valid;
};

/// Widens a 64-bit vector; total.
inline std::vector<Int128> widenVec(const std::vector<int64_t> &V) {
  return std::vector<Int128>(V.begin(), V.end());
}

/// Narrows a 128-bit vector; fails when any component is out of the
/// int64 range.
inline std::optional<std::vector<int64_t>>
narrowVec(const std::vector<Int128> &V) {
  std::vector<int64_t> Out;
  Out.reserve(V.size());
  for (Int128 X : V) {
    if (!X.fitsInt64())
      return std::nullopt;
    Out.push_back(X.toInt64());
  }
  return Out;
}

} // namespace edda

#endif // EDDA_SUPPORT_WIDEINT_H
