//===- support/ThreadPool.cpp - Minimal worker thread pool ----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace edda;

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  NumThreads = std::max(1u, NumThreads);
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    Job();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--InFlight == 0)
        AllDone.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  // Several chunks per worker so uneven per-item cost still balances.
  size_t NumChunks =
      std::min<size_t>(N, static_cast<size_t>(threadCount()) * 8);
  if (NumChunks <= 1 || threadCount() == 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  // Contiguous chunks keep per-job overhead proportional to the chunk
  // count, not the item count.
  size_t ChunkSize = (N + NumChunks - 1) / NumChunks;
  for (size_t C = 0; C < NumChunks; ++C) {
    size_t Begin = C * ChunkSize;
    size_t End = std::min(N, Begin + ChunkSize);
    if (Begin >= End)
      break;
    submit([&Body, Begin, End] {
      for (size_t I = Begin; I < End; ++I)
        Body(I);
    });
  }
  wait();
}
