//===- support/Int128.h - Portable 128-bit integers ------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A signed 128-bit integer for the widening tier of the exact
/// arithmetic ladder (see docs/ALGORITHMS.md): when a 64-bit checked
/// computation poisons, the dependence tests retry at this precision
/// before giving a query up as Unanalyzable.
///
/// The value is stored as two explicit 64-bit words in two's complement,
/// so the type's layout and semantics do not depend on compiler
/// extensions. The word-level algorithms in edda::detail are the
/// portable implementation and are always compiled; on compilers with
/// native `__int128` support the unit tests additionally cross-check
/// them against the native arithmetic (and str()/divmod use the native
/// type where it is profitable).
///
/// Division and remainder truncate toward zero, exactly like int64_t;
/// floorDiv/ceilDiv mirror the IntMath helpers. The checked_* overloads
/// mirror the 64-bit ones so templated kernels can call checkedAdd(A, B)
/// for either scalar.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SUPPORT_INT128_H
#define EDDA_SUPPORT_INT128_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

namespace edda {

namespace detail {

/// Unsigned 128-bit value as two words; the portable building block for
/// Int128. Always compiled (and unit-tested) even when the compiler has
/// a native 128-bit type.
struct U128 {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  friend bool operator==(const U128 &A, const U128 &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator<(const U128 &A, const U128 &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }
};

/// Full 64x64 -> 128 unsigned multiply.
U128 mulU64(uint64_t A, uint64_t B);

/// A + B with wraparound; \p Carry reports overflow out of bit 127.
U128 addU128(U128 A, U128 B, bool &Carry);

/// A - B with wraparound (two's complement).
U128 subU128(U128 A, U128 B);

/// Shift left by one bit, inserting \p BitIn at bit 0.
U128 shl1(U128 A, bool BitIn);

/// Magnitude division: returns the quotient and stores the remainder in
/// \p Rem, via binary long division. \pre B != 0.
U128 divmodU128(U128 A, U128 B, U128 &Rem);

} // namespace detail

/// Signed 128-bit integer, two's complement, stored as two 64-bit words.
class Int128 {
public:
  constexpr Int128() : Lo(0), Hi(0) {}
  /*implicit*/ constexpr Int128(int64_t V)
      : Lo(static_cast<uint64_t>(V)), Hi(V < 0 ? ~0ull : 0) {}

  /// Assembles a value from raw two's-complement words.
  static constexpr Int128 fromWords(uint64_t Hi, uint64_t Lo) {
    Int128 V;
    V.Lo = Lo;
    V.Hi = Hi;
    return V;
  }

  static constexpr Int128 min() { return fromWords(1ull << 63, 0); }
  static constexpr Int128 max() {
    return fromWords(~(1ull << 63), ~0ull);
  }

  uint64_t loWord() const { return Lo; }
  uint64_t hiWord() const { return Hi; }

  bool isNegative() const { return static_cast<int64_t>(Hi) < 0; }
  bool isZero() const { return Lo == 0 && Hi == 0; }

  /// True when the value is representable as int64_t.
  bool fitsInt64() const { return Hi == (Lo >> 63 ? ~0ull : 0); }

  /// Narrowing. \pre fitsInt64().
  int64_t toInt64() const {
    assert(fitsInt64() && "narrowing an out-of-range Int128");
    return static_cast<int64_t>(Lo);
  }

  /// Narrowing without the precondition: nullopt when out of range.
  std::optional<int64_t> tryInt64() const {
    if (!fitsInt64())
      return std::nullopt;
    return static_cast<int64_t>(Lo);
  }

#if defined(__SIZEOF_INT128__)
  __int128 toNative() const {
    return static_cast<__int128>(
        (static_cast<unsigned __int128>(Hi) << 64) | Lo);
  }
  static Int128 fromNative(__int128 V) {
    unsigned __int128 U = static_cast<unsigned __int128>(V);
    return fromWords(static_cast<uint64_t>(U >> 64),
                     static_cast<uint64_t>(U));
  }
#endif

  Int128 operator-() const;
  Int128 operator+(Int128 RHS) const;
  Int128 operator-(Int128 RHS) const;
  Int128 operator*(Int128 RHS) const;
  /// Truncates toward zero. \pre RHS != 0; Int128::min() / -1 wraps,
  /// exactly like the hardware int64 case (use checkedDiv paths where
  /// that pair is reachable).
  Int128 operator/(Int128 RHS) const;
  Int128 operator%(Int128 RHS) const;

  Int128 &operator+=(Int128 RHS) { return *this = *this + RHS; }
  Int128 &operator-=(Int128 RHS) { return *this = *this - RHS; }
  Int128 &operator*=(Int128 RHS) { return *this = *this * RHS; }
  Int128 &operator/=(Int128 RHS) { return *this = *this / RHS; }

  friend bool operator==(Int128 A, Int128 B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(Int128 A, Int128 B) { return !(A == B); }
  friend bool operator<(Int128 A, Int128 B);
  friend bool operator<=(Int128 A, Int128 B) { return !(B < A); }
  friend bool operator>(Int128 A, Int128 B) { return B < A; }
  friend bool operator>=(Int128 A, Int128 B) { return !(A < B); }

  /// Decimal rendering.
  std::string str() const;

private:
  uint64_t Lo;
  uint64_t Hi;
};

bool operator<(Int128 A, Int128 B);

/// Checked arithmetic, mirroring the int64_t overloads in IntMath.h so
/// kernels templated on the scalar type pick the right one by overload
/// resolution.
std::optional<Int128> checkedAdd(Int128 A, Int128 B);
std::optional<Int128> checkedSub(Int128 A, Int128 B);
std::optional<Int128> checkedMul(Int128 A, Int128 B);
std::optional<Int128> checkedNeg(Int128 A);

/// Floor division: largest Q with Q*B <= A.
/// \pre B != 0 and (A, B) != (Int128::min(), -1).
Int128 floorDiv(Int128 A, Int128 B);

/// Ceiling division: smallest Q with Q*B >= A.
/// \pre B != 0 and (A, B) != (Int128::min(), -1).
Int128 ceilDiv(Int128 A, Int128 B);

/// Checked floor/ceiling division: nullopt exactly for the
/// (Int128::min(), -1) overflow pair. \pre B != 0.
std::optional<Int128> checkedFloorDiv(Int128 A, Int128 B);
std::optional<Int128> checkedCeilDiv(Int128 A, Int128 B);

/// gcd of magnitudes; gcd(0, 0) == 0. Like gcd64, the single
/// unrepresentable case gcd(min, min) == 2^127 wraps to Int128::min();
/// callers dividing by a gcd > 1 are unaffected.
Int128 gcdOf(Int128 A, Int128 B);

/// Decimal rendering overloads so templated code can stringify either
/// scalar.
inline std::string toDecimalString(int64_t V) { return std::to_string(V); }
inline std::string toDecimalString(Int128 V) { return V.str(); }

} // namespace edda

#endif // EDDA_SUPPORT_INT128_H
