//===- ir/Program.h - LoopLang programs and statements ---------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LoopLang IR: a program is a symbol table (loop variables, scalar
/// temporaries, symbolic constants, arrays) plus a statement tree of
/// counted loops and assignments. This is the normalized nested-loop form
/// of the paper's section 2: after the prepass optimizer runs, every loop
/// has step 1 and every analyzed subscript/bound is affine in outer loop
/// variables and symbolic constants.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_IR_PROGRAM_H
#define EDDA_IR_PROGRAM_H

#include "ir/Expr.h"

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace edda {

/// What a named integer variable denotes.
enum class VarKind {
  Loop,     ///< A loop induction variable.
  Scalar,   ///< A mutable scalar temporary (eliminated by the prepass).
  Symbolic, ///< A loop-invariant unknown ("read n"), paper section 8.
};

/// Symbol-table entry for an integer variable.
struct VarInfo {
  std::string Name;
  VarKind Kind;
};

/// Symbol-table entry for an array.
struct ArrayInfo {
  std::string Name;
  /// Declared extent per dimension; 0 means unknown. Extents are only
  /// used for diagnostics — dependence testing relies on loop bounds.
  std::vector<int64_t> Extents;

  unsigned rank() const { return static_cast<unsigned>(Extents.size()); }
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Discriminator for statements.
enum class StmtKind {
  Assign, ///< Scalar or array assignment.
  Loop,   ///< Counted for-loop.
};

/// Base class for LoopLang statements. The hierarchy is closed (Assign
/// and Loop) and discriminated by kind(); no RTTI.
class Stmt {
public:
  virtual ~Stmt();

  StmtKind kind() const { return Kind; }

  /// Deep copy.
  virtual StmtPtr clone() const = 0;

protected:
  explicit Stmt(StmtKind K) : Kind(K) {}

private:
  StmtKind Kind;
};

/// An assignment. The left-hand side is either a scalar variable or an
/// array element; the right-hand side is an arbitrary expression that may
/// contain array reads.
class AssignStmt : public Stmt {
public:
  /// Scalar assignment: var = rhs.
  AssignStmt(unsigned ScalarVarId, ExprPtr Rhs)
      : Stmt(StmtKind::Assign), IsArrayLhs(false), LhsId(ScalarVarId),
        Rhs(std::move(Rhs)) {
    assert(this->Rhs && "null rhs");
  }

  /// Array assignment: a[subs...] = rhs.
  AssignStmt(unsigned ArrayId, std::vector<ExprPtr> Subscripts, ExprPtr Rhs)
      : Stmt(StmtKind::Assign), IsArrayLhs(true), LhsId(ArrayId),
        LhsSubscripts(std::move(Subscripts)), Rhs(std::move(Rhs)) {
    assert(!LhsSubscripts.empty() && "array lhs with no subscripts");
    assert(this->Rhs && "null rhs");
  }

  bool isArrayLhs() const { return IsArrayLhs; }

  /// \pre !isArrayLhs().
  unsigned lhsScalar() const {
    assert(!IsArrayLhs && "lhs is an array element");
    return LhsId;
  }

  /// \pre isArrayLhs().
  unsigned lhsArray() const {
    assert(IsArrayLhs && "lhs is a scalar");
    return LhsId;
  }

  /// \pre isArrayLhs().
  const std::vector<ExprPtr> &lhsSubscripts() const {
    assert(IsArrayLhs && "lhs is a scalar");
    return LhsSubscripts;
  }

  /// Replaces subscript \p Dim of an array left-hand side.
  void setLhsSubscript(unsigned Dim, ExprPtr E) {
    assert(IsArrayLhs && Dim < LhsSubscripts.size() && "bad subscript");
    LhsSubscripts[Dim] = std::move(E);
  }

  const ExprPtr &rhs() const { return Rhs; }
  void setRhs(ExprPtr E) {
    assert(E && "null rhs");
    Rhs = std::move(E);
  }

  StmtPtr clone() const override;

private:
  bool IsArrayLhs;
  unsigned LhsId;
  std::vector<ExprPtr> LhsSubscripts;
  ExprPtr Rhs;
};

/// A counted loop: for var = lo to hi step s do body end. After
/// normalization Step == 1.
class LoopStmt : public Stmt {
public:
  LoopStmt(unsigned VarId, ExprPtr Lo, ExprPtr Hi, int64_t Step)
      : Stmt(StmtKind::Loop), VarId(VarId), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Step(Step) {
    assert(this->Lo && this->Hi && "null loop bound");
    assert(Step != 0 && "zero loop step");
  }

  unsigned varId() const { return VarId; }
  const ExprPtr &lo() const { return Lo; }
  const ExprPtr &hi() const { return Hi; }
  int64_t step() const { return Step; }

  /// Rebinds the induction variable (used by loop interchange).
  void setVarId(unsigned NewVar) { VarId = NewVar; }

  void setLo(ExprPtr E) {
    assert(E && "null bound");
    Lo = std::move(E);
  }
  void setHi(ExprPtr E) {
    assert(E && "null bound");
    Hi = std::move(E);
  }
  void setStep(int64_t S) {
    assert(S != 0 && "zero loop step");
    Step = S;
  }

  std::vector<StmtPtr> &body() { return Body; }
  const std::vector<StmtPtr> &body() const { return Body; }

  /// Set by the parallelizer client when no loop-carried dependence
  /// exists at this nesting level.
  bool isParallel() const { return Parallel; }
  void setParallel(bool P) { Parallel = P; }

  StmtPtr clone() const override;

private:
  unsigned VarId;
  ExprPtr Lo;
  ExprPtr Hi;
  int64_t Step;
  std::vector<StmtPtr> Body;
  bool Parallel = false;
};

/// Checked downcasts for the closed statement hierarchy.
inline AssignStmt &asAssign(Stmt &S) {
  assert(S.kind() == StmtKind::Assign && "not an assignment");
  return static_cast<AssignStmt &>(S);
}
inline const AssignStmt &asAssign(const Stmt &S) {
  assert(S.kind() == StmtKind::Assign && "not an assignment");
  return static_cast<const AssignStmt &>(S);
}
inline LoopStmt &asLoop(Stmt &S) {
  assert(S.kind() == StmtKind::Loop && "not a loop");
  return static_cast<LoopStmt &>(S);
}
inline const LoopStmt &asLoop(const Stmt &S) {
  assert(S.kind() == StmtKind::Loop && "not a loop");
  return static_cast<const LoopStmt &>(S);
}

/// A whole LoopLang program: symbol tables plus a statement list.
class Program {
public:
  explicit Program(std::string Name = "main") : Name(std::move(Name)) {}

  Program(const Program &RHS);
  Program &operator=(const Program &RHS);
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  const std::string &name() const { return Name; }

  /// Registers a variable; names must be unique across variables and
  /// arrays. Returns the new id.
  unsigned addVar(std::string VarName, VarKind Kind);

  /// Registers an array; returns the new id (a separate id space from
  /// variables).
  unsigned addArray(std::string ArrayName, std::vector<int64_t> Extents);

  unsigned numVars() const { return static_cast<unsigned>(Vars.size()); }
  unsigned numArrays() const {
    return static_cast<unsigned>(Arrays.size());
  }

  const VarInfo &var(unsigned Id) const {
    assert(Id < Vars.size() && "variable id out of range");
    return Vars[Id];
  }
  const ArrayInfo &array(unsigned Id) const {
    assert(Id < Arrays.size() && "array id out of range");
    return Arrays[Id];
  }

  /// Changes the recorded kind of a variable (the prepass optimizer
  /// reclassifies scalars it proves loop-invariant as Symbolic).
  void setVarKind(unsigned Id, VarKind Kind) {
    assert(Id < Vars.size() && "variable id out of range");
    Vars[Id].Kind = Kind;
  }

  std::optional<unsigned> lookupVar(const std::string &VarName) const;
  std::optional<unsigned> lookupArray(const std::string &ArrayName) const;

  std::vector<StmtPtr> &body() { return Body; }
  const std::vector<StmtPtr> &body() const { return Body; }

  /// Renders the program as parseable LoopLang source.
  std::string print() const;

private:
  std::string Name;
  std::vector<VarInfo> Vars;
  std::vector<ArrayInfo> Arrays;
  std::vector<StmtPtr> Body;
  /// Name -> id indexes (programs can hold thousands of symbols).
  std::unordered_map<std::string, unsigned> VarIndex;
  std::unordered_map<std::string, unsigned> ArrayIndex;
};

} // namespace edda

#endif // EDDA_IR_PROGRAM_H
