//===- ir/Fingerprint.h - Content fingerprints for IR ----------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable 64-bit content fingerprints for expressions, statements, and
/// enclosing loop-bound chains. Fingerprints hash variable and array
/// *names* (resolved through the program's symbol tables) rather than
/// numeric ids, so the fingerprint of a statement survives a
/// print -> edit -> re-parse round trip even when the edit shifts every
/// id after the insertion point. This is what makes them usable as
/// re-analysis reuse keys across program versions: two references with
/// equal fingerprints denote structurally identical subscripts under
/// structurally identical bound chains, and therefore build identical
/// dependence problems (analysis/Builder.cpp derives columns, symbolic
/// allocation and exactness purely from that structure).
///
/// Fingerprints are computed on the program as analyzed — i.e. *after*
/// the prepass, for the analyzer's uses — so cosmetic differences the
/// prepass removes do not split reuse classes.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_IR_FINGERPRINT_H
#define EDDA_IR_FINGERPRINT_H

#include "ir/Expr.h"
#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace edda {

/// Fingerprint of one expression tree. Variable leaves hash as
/// (kind, name); array reads hash the array name plus each subscript.
uint64_t fingerprintExpr(const Program &P, const ExprPtr &E);

/// Fingerprint of one array access: the array *name* plus each
/// subscript expression, exactly as an ArrayRead expression node over
/// the same subscripts would hash.
uint64_t fingerprintArrayAccess(const Program &P, unsigned ArrayId,
                                const std::vector<ExprPtr> &Subscripts);

/// Fingerprint of an enclosing loop chain (outermost first): for each
/// loop, the induction-variable name, the lo/hi bound expressions and
/// the step, chained in nesting order. Building on the PR 5 memo-key
/// fix, the *pair* of bounds is hashed per level — two chains that
/// swap lo/hi between levels do not collide.
uint64_t fingerprintLoopChain(const Program &P,
                              const std::vector<const LoopStmt *> &Loops);

/// Fingerprint of one statement: an assignment hashes its left-hand
/// side (scalar name, or array name + subscripts) and right-hand side;
/// a loop hashes its header (variable name, bounds, step) plus every
/// body statement in order.
uint64_t fingerprintStmt(const Program &P, const Stmt &S);

} // namespace edda

#endif // EDDA_IR_FINGERPRINT_H
