//===- ir/Program.cpp - LoopLang programs and statements -----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <functional>

using namespace edda;

// Out-of-line virtual method anchor.
Stmt::~Stmt() = default;

StmtPtr AssignStmt::clone() const {
  // Expression trees are immutable, so sharing the ExprPtrs is a correct
  // deep-copy of the semantics.
  if (IsArrayLhs) {
    std::vector<ExprPtr> Subs(LhsSubscripts);
    return std::make_unique<AssignStmt>(LhsId, std::move(Subs), Rhs);
  }
  return std::make_unique<AssignStmt>(LhsId, Rhs);
}

StmtPtr LoopStmt::clone() const {
  auto Copy = std::make_unique<LoopStmt>(VarId, Lo, Hi, Step);
  Copy->Parallel = Parallel;
  Copy->Body.reserve(Body.size());
  for (const StmtPtr &S : Body)
    Copy->Body.push_back(S->clone());
  return Copy;
}

Program::Program(const Program &RHS)
    : Name(RHS.Name), Vars(RHS.Vars), Arrays(RHS.Arrays),
      VarIndex(RHS.VarIndex), ArrayIndex(RHS.ArrayIndex) {
  Body.reserve(RHS.Body.size());
  for (const StmtPtr &S : RHS.Body)
    Body.push_back(S->clone());
}

Program &Program::operator=(const Program &RHS) {
  if (this == &RHS)
    return *this;
  Program Copy(RHS);
  *this = std::move(Copy);
  return *this;
}

unsigned Program::addVar(std::string VarName, VarKind Kind) {
  assert(!lookupVar(VarName) && "duplicate variable name");
  unsigned Id = static_cast<unsigned>(Vars.size());
  VarIndex.emplace(VarName, Id);
  Vars.push_back(VarInfo{std::move(VarName), Kind});
  return Id;
}

unsigned Program::addArray(std::string ArrayName,
                           std::vector<int64_t> Extents) {
  assert(!lookupArray(ArrayName) && "duplicate array name");
  unsigned Id = static_cast<unsigned>(Arrays.size());
  ArrayIndex.emplace(ArrayName, Id);
  Arrays.push_back(ArrayInfo{std::move(ArrayName), std::move(Extents)});
  return Id;
}

std::optional<unsigned> Program::lookupVar(const std::string &VarName) const {
  auto It = VarIndex.find(VarName);
  if (It == VarIndex.end())
    return std::nullopt;
  return It->second;
}

std::optional<unsigned>
Program::lookupArray(const std::string &ArrayName) const {
  auto It = ArrayIndex.find(ArrayName);
  if (It == ArrayIndex.end())
    return std::nullopt;
  return It->second;
}

namespace {

/// Renders expressions with array reads resolved through the program's
/// array table (Expr::str alone cannot resolve array names).
std::string printExpr(const Program &P, const ExprPtr &E) {
  switch (E->kind()) {
  case ExprKind::Const:
    return std::to_string(E->constValue());
  case ExprKind::Var:
    return P.var(E->varId()).Name;
  case ExprKind::Add:
    return "(" + printExpr(P, E->lhs()) + " + " + printExpr(P, E->rhs()) +
           ")";
  case ExprKind::Sub:
    return "(" + printExpr(P, E->lhs()) + " - " + printExpr(P, E->rhs()) +
           ")";
  case ExprKind::Mul:
    return "(" + printExpr(P, E->lhs()) + " * " + printExpr(P, E->rhs()) +
           ")";
  case ExprKind::Neg:
    return "(-" + printExpr(P, E->lhs()) + ")";
  case ExprKind::ArrayRead: {
    std::string Out = P.array(E->arrayId()).Name;
    for (const ExprPtr &S : E->subscripts())
      Out += "[" + printExpr(P, S) + "]";
    return Out;
  }
  }
  assert(false && "unknown expression kind");
  return "";
}

void printStmt(const Program &P, const Stmt &S, unsigned Indent,
               std::string &Out) {
  Out.append(Indent, ' ');
  if (S.kind() == StmtKind::Assign) {
    const AssignStmt &A = asAssign(S);
    if (A.isArrayLhs()) {
      Out += P.array(A.lhsArray()).Name;
      for (const ExprPtr &Sub : A.lhsSubscripts())
        Out += "[" + printExpr(P, Sub) + "]";
    } else {
      Out += P.var(A.lhsScalar()).Name;
    }
    Out += " = " + printExpr(P, A.rhs()) + "\n";
    return;
  }
  const LoopStmt &L = asLoop(S);
  Out += "for " + P.var(L.varId()).Name + " = " + printExpr(P, L.lo()) +
         " to " + printExpr(P, L.hi());
  if (L.step() != 1)
    Out += " step " + std::to_string(L.step());
  Out += " do\n";
  for (const StmtPtr &Child : L.body())
    printStmt(P, *Child, Indent + 2, Out);
  Out.append(Indent, ' ');
  Out += "end\n";
}

} // namespace

std::string Program::print() const {
  std::string Out = "program " + Name + "\n";
  for (const ArrayInfo &A : Arrays) {
    Out += "  array " + A.Name;
    for (int64_t Extent : A.Extents)
      Out += "[" + std::to_string(Extent) + "]";
    Out += "\n";
  }
  for (const VarInfo &V : Vars)
    if (V.Kind == VarKind::Symbolic)
      Out += "  read " + V.Name + "\n";
  for (const StmtPtr &S : Body)
    printStmt(*this, *S, 2, Out);
  Out += "end\n";
  return Out;
}
