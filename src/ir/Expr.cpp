//===- ir/Expr.cpp - Expression trees and affine forms -------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include "support/IntMath.h"

#include <algorithm>

using namespace edda;

ExprPtr Expr::makeConst(int64_t Value) {
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Const));
  Node->Value = Value;
  return Node;
}

ExprPtr Expr::makeVar(unsigned VarId) {
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Var));
  Node->Value = VarId;
  return Node;
}

ExprPtr Expr::makeAdd(ExprPtr Lhs, ExprPtr Rhs) {
  assert(Lhs && Rhs && "null operand");
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Add));
  Node->Lhs = std::move(Lhs);
  Node->Rhs = std::move(Rhs);
  return Node;
}

ExprPtr Expr::makeSub(ExprPtr Lhs, ExprPtr Rhs) {
  assert(Lhs && Rhs && "null operand");
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Sub));
  Node->Lhs = std::move(Lhs);
  Node->Rhs = std::move(Rhs);
  return Node;
}

ExprPtr Expr::makeMul(ExprPtr Lhs, ExprPtr Rhs) {
  assert(Lhs && Rhs && "null operand");
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Mul));
  Node->Lhs = std::move(Lhs);
  Node->Rhs = std::move(Rhs);
  return Node;
}

ExprPtr Expr::makeNeg(ExprPtr Operand) {
  assert(Operand && "null operand");
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Neg));
  Node->Lhs = std::move(Operand);
  return Node;
}

ExprPtr Expr::makeArrayRead(unsigned ArrayId,
                            std::vector<ExprPtr> Subscripts) {
  assert(!Subscripts.empty() && "array read with no subscripts");
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::ArrayRead));
  Node->Value = ArrayId;
  Node->Subs = std::move(Subscripts);
  return Node;
}

ExprPtr Expr::substitute(
    const std::function<ExprPtr(unsigned)> &Subst) const {
  switch (Kind) {
  case ExprKind::Const:
    return makeConst(Value);
  case ExprKind::Var: {
    if (ExprPtr Repl = Subst(varId()))
      return Repl;
    return makeVar(varId());
  }
  case ExprKind::Add:
    return makeAdd(Lhs->substitute(Subst), Rhs->substitute(Subst));
  case ExprKind::Sub:
    return makeSub(Lhs->substitute(Subst), Rhs->substitute(Subst));
  case ExprKind::Mul:
    return makeMul(Lhs->substitute(Subst), Rhs->substitute(Subst));
  case ExprKind::Neg:
    return makeNeg(Lhs->substitute(Subst));
  case ExprKind::ArrayRead: {
    std::vector<ExprPtr> NewSubs;
    NewSubs.reserve(Subs.size());
    for (const ExprPtr &S : Subs)
      NewSubs.push_back(S->substitute(Subst));
    return makeArrayRead(arrayId(), std::move(NewSubs));
  }
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

void Expr::collectVars(std::vector<unsigned> &Out) const {
  switch (Kind) {
  case ExprKind::Const:
    return;
  case ExprKind::Var:
    if (std::find(Out.begin(), Out.end(), varId()) == Out.end())
      Out.push_back(varId());
    return;
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
    Lhs->collectVars(Out);
    Rhs->collectVars(Out);
    return;
  case ExprKind::Neg:
    Lhs->collectVars(Out);
    return;
  case ExprKind::ArrayRead:
    for (const ExprPtr &S : Subs)
      S->collectVars(Out);
    return;
  }
}

bool Expr::references(unsigned VarId) const {
  switch (Kind) {
  case ExprKind::Const:
    return false;
  case ExprKind::Var:
    return varId() == VarId;
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
    return Lhs->references(VarId) || Rhs->references(VarId);
  case ExprKind::Neg:
    return Lhs->references(VarId);
  case ExprKind::ArrayRead:
    for (const ExprPtr &S : Subs)
      if (S->references(VarId))
        return true;
    return false;
  }
  assert(false && "unknown expression kind");
  return false;
}

void Expr::collectArrayReads(std::vector<const Expr *> &Out) const {
  switch (Kind) {
  case ExprKind::Const:
  case ExprKind::Var:
    return;
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
    Lhs->collectArrayReads(Out);
    Rhs->collectArrayReads(Out);
    return;
  case ExprKind::Neg:
    Lhs->collectArrayReads(Out);
    return;
  case ExprKind::ArrayRead:
    Out.push_back(this);
    for (const ExprPtr &S : Subs)
      S->collectArrayReads(Out);
    return;
  }
}

bool Expr::containsArrayRead() const {
  switch (Kind) {
  case ExprKind::Const:
  case ExprKind::Var:
    return false;
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
    return Lhs->containsArrayRead() || Rhs->containsArrayRead();
  case ExprKind::Neg:
    return Lhs->containsArrayRead();
  case ExprKind::ArrayRead:
    return true;
  }
  assert(false && "unknown expression kind");
  return false;
}

std::string
Expr::str(const std::function<std::string(unsigned)> &Name) const {
  switch (Kind) {
  case ExprKind::Const:
    return std::to_string(Value);
  case ExprKind::Var:
    return Name(varId());
  case ExprKind::Add:
    return "(" + Lhs->str(Name) + " + " + Rhs->str(Name) + ")";
  case ExprKind::Sub:
    return "(" + Lhs->str(Name) + " - " + Rhs->str(Name) + ")";
  case ExprKind::Mul:
    return "(" + Lhs->str(Name) + " * " + Rhs->str(Name) + ")";
  case ExprKind::Neg:
    return "(-" + Lhs->str(Name) + ")";
  case ExprKind::ArrayRead: {
    // Array names share the variable namespace resolver by convention:
    // callers pass a resolver that understands both; here we can only
    // render the id.
    std::string Out = "@" + std::to_string(arrayId());
    for (const ExprPtr &S : Subs)
      Out += "[" + S->str(Name) + "]";
    return Out;
  }
  }
  assert(false && "unknown expression kind");
  return "";
}

//===----------------------------------------------------------------------===//
// AffineExpr
//===----------------------------------------------------------------------===//

AffineExpr AffineExpr::overflowedExpr() {
  AffineExpr E;
  E.Overflowed = true;
  return E;
}

AffineExpr AffineExpr::variable(unsigned VarId, int64_t Coeff) {
  AffineExpr E;
  E.addTerm(VarId, Coeff);
  return E;
}

int64_t AffineExpr::coeff(unsigned VarId) const {
  for (const Term &T : Terms)
    if (T.VarId == VarId)
      return T.Coeff;
  return 0;
}

void AffineExpr::addTerm(unsigned VarId, int64_t Coeff) {
  if (Coeff == 0)
    return;
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), VarId,
      [](const Term &T, unsigned Id) { return T.VarId < Id; });
  if (It != Terms.end() && It->VarId == VarId) {
    std::optional<int64_t> Sum = checkedAdd(It->Coeff, Coeff);
    if (!Sum) {
      Overflowed = true;
      return;
    }
    It->Coeff = *Sum;
    if (It->Coeff == 0)
      Terms.erase(It);
    return;
  }
  Terms.insert(It, Term{VarId, Coeff});
}

AffineExpr AffineExpr::operator+(const AffineExpr &RHS) const {
  if (Overflowed || RHS.Overflowed)
    return overflowedExpr();
  AffineExpr Result(*this);
  std::optional<int64_t> C = checkedAdd(Constant, RHS.Constant);
  if (!C)
    return overflowedExpr();
  Result.Constant = *C;
  for (const Term &T : RHS.Terms) {
    Result.addTerm(T.VarId, T.Coeff);
    if (Result.Overflowed)
      return overflowedExpr();
  }
  return Result;
}

AffineExpr AffineExpr::operator-(const AffineExpr &RHS) const {
  return *this + (-RHS);
}

AffineExpr AffineExpr::operator-() const { return scaled(-1); }

AffineExpr AffineExpr::scaled(int64_t Factor) const {
  if (Overflowed)
    return overflowedExpr();
  AffineExpr Result;
  std::optional<int64_t> C = checkedMul(Constant, Factor);
  if (!C)
    return overflowedExpr();
  Result.Constant = *C;
  for (const Term &T : Terms) {
    std::optional<int64_t> Coeff = checkedMul(T.Coeff, Factor);
    if (!Coeff)
      return overflowedExpr();
    Result.addTerm(T.VarId, *Coeff);
    if (Result.Overflowed)
      return overflowedExpr();
  }
  return Result;
}

AffineExpr AffineExpr::substituted(unsigned VarId,
                                   const AffineExpr &Repl) const {
  if (Overflowed || Repl.Overflowed)
    return overflowedExpr();
  int64_t C = coeff(VarId);
  if (C == 0)
    return *this;
  AffineExpr Rest(*this);
  Rest.addTerm(VarId, -C); // addTerm cancels the existing coefficient.
  if (Rest.Overflowed)
    return overflowedExpr();
  return Rest + Repl.scaled(C);
}

std::optional<int64_t>
AffineExpr::evaluate(const std::function<int64_t(unsigned)> &Env) const {
  if (Overflowed)
    return std::nullopt;
  CheckedInt Sum(Constant);
  for (const Term &T : Terms)
    Sum += CheckedInt(T.Coeff) * Env(T.VarId);
  return Sum.getOpt();
}

std::string
AffineExpr::str(const std::function<std::string(unsigned)> &Name) const {
  if (Overflowed)
    return "<overflow>";
  std::string Out;
  bool First = true;
  for (const Term &T : Terms) {
    if (!First)
      Out += T.Coeff < 0 ? " - " : " + ";
    else if (T.Coeff < 0)
      Out += "-";
    First = false;
    uint64_t Mag = T.Coeff < 0 ? 0 - static_cast<uint64_t>(T.Coeff)
                               : static_cast<uint64_t>(T.Coeff);
    if (Mag != 1)
      Out += std::to_string(Mag) + "*";
    Out += Name(T.VarId);
  }
  if (First)
    return std::to_string(Constant);
  if (Constant != 0) {
    Out += Constant < 0 ? " - " : " + ";
    uint64_t Mag = Constant < 0 ? 0 - static_cast<uint64_t>(Constant)
                                : static_cast<uint64_t>(Constant);
    Out += std::to_string(Mag);
  }
  return Out;
}

bool edda::exprEquals(const ExprPtr &A, const ExprPtr &B) {
  assert(A && B && "null expression");
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::Const:
    return A->constValue() == B->constValue();
  case ExprKind::Var:
    return A->varId() == B->varId();
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Mul:
    return exprEquals(A->lhs(), B->lhs()) && exprEquals(A->rhs(), B->rhs());
  case ExprKind::Neg:
    return exprEquals(A->lhs(), B->lhs());
  case ExprKind::ArrayRead: {
    if (A->arrayId() != B->arrayId() ||
        A->subscripts().size() != B->subscripts().size())
      return false;
    for (unsigned I = 0; I < A->subscripts().size(); ++I)
      if (!exprEquals(A->subscripts()[I], B->subscripts()[I]))
        return false;
    return true;
  }
  }
  assert(false && "unknown expression kind");
  return false;
}

//===----------------------------------------------------------------------===//
// Tree -> affine conversion
//===----------------------------------------------------------------------===//

std::optional<AffineExpr> edda::toAffine(const ExprPtr &E) {
  assert(E && "null expression");
  switch (E->kind()) {
  case ExprKind::Const:
    return AffineExpr(E->constValue());
  case ExprKind::Var:
    return AffineExpr::variable(E->varId());
  case ExprKind::Add: {
    std::optional<AffineExpr> L = toAffine(E->lhs());
    std::optional<AffineExpr> R = toAffine(E->rhs());
    if (!L || !R)
      return std::nullopt;
    AffineExpr Sum = *L + *R;
    if (Sum.overflowed())
      return std::nullopt;
    return Sum;
  }
  case ExprKind::Sub: {
    std::optional<AffineExpr> L = toAffine(E->lhs());
    std::optional<AffineExpr> R = toAffine(E->rhs());
    if (!L || !R)
      return std::nullopt;
    AffineExpr Diff = *L - *R;
    if (Diff.overflowed())
      return std::nullopt;
    return Diff;
  }
  case ExprKind::Mul: {
    std::optional<AffineExpr> L = toAffine(E->lhs());
    std::optional<AffineExpr> R = toAffine(E->rhs());
    if (!L || !R)
      return std::nullopt;
    // Affine multiplication requires one side constant.
    const AffineExpr *Scaled = nullptr;
    int64_t Factor = 0;
    if (L->isConstant()) {
      Scaled = &*R;
      Factor = L->constant();
    } else if (R->isConstant()) {
      Scaled = &*L;
      Factor = R->constant();
    } else {
      return std::nullopt;
    }
    AffineExpr Product = Scaled->scaled(Factor);
    if (Product.overflowed())
      return std::nullopt;
    return Product;
  }
  case ExprKind::Neg: {
    std::optional<AffineExpr> L = toAffine(E->lhs());
    if (!L)
      return std::nullopt;
    AffineExpr Negated = -*L;
    if (Negated.overflowed())
      return std::nullopt;
    return Negated;
  }
  case ExprKind::ArrayRead:
    // An array element value is never an affine function of the loop
    // variables; only its subscripts are.
    return std::nullopt;
  }
  assert(false && "unknown expression kind");
  return std::nullopt;
}
