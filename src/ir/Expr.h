//===- ir/Expr.h - Expression trees and affine forms -----------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expressions of the LoopLang IR. The frontend builds general integer
/// expression trees (Expr); the prepass optimizer rewrites them until array
/// subscripts and loop bounds are integral linear (affine) functions of
/// loop variables and symbolic constants, the form the paper's dependence
/// tests require (section 2). AffineExpr is that canonical linear form.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_IR_EXPR_H
#define EDDA_IR_EXPR_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace edda {

class Expr;

/// Expressions are immutable and shared; rewriting builds new nodes.
using ExprPtr = std::shared_ptr<const Expr>;

/// Discriminator for Expr nodes.
enum class ExprKind {
  Const,     ///< Integer literal.
  Var,       ///< Reference to a variable by program-wide id.
  Add,       ///< Lhs + Rhs.
  Sub,       ///< Lhs - Rhs.
  Mul,       ///< Lhs * Rhs.
  Neg,       ///< -Lhs.
  ArrayRead, ///< a[e1][e2]... — a read reference to an array element.
};

/// An integer expression tree node.
class Expr {
public:
  ExprKind kind() const { return Kind; }

  /// \pre kind() == ExprKind::Const.
  int64_t constValue() const {
    assert(Kind == ExprKind::Const && "not a constant");
    return Value;
  }

  /// \pre kind() == ExprKind::Var.
  unsigned varId() const {
    assert(Kind == ExprKind::Var && "not a variable reference");
    return static_cast<unsigned>(Value);
  }

  /// Left operand (sole operand for Neg). \pre an operator node.
  const ExprPtr &lhs() const {
    assert(Kind != ExprKind::Const && Kind != ExprKind::Var && "leaf node");
    return Lhs;
  }

  /// Right operand. \pre a binary operator node.
  const ExprPtr &rhs() const {
    assert((Kind == ExprKind::Add || Kind == ExprKind::Sub ||
            Kind == ExprKind::Mul) &&
           "not a binary node");
    return Rhs;
  }

  /// Array id of an ArrayRead node. \pre kind() == ExprKind::ArrayRead.
  unsigned arrayId() const {
    assert(Kind == ExprKind::ArrayRead && "not an array read");
    return static_cast<unsigned>(Value);
  }

  /// Subscript expressions of an ArrayRead node.
  /// \pre kind() == ExprKind::ArrayRead.
  const std::vector<ExprPtr> &subscripts() const {
    assert(Kind == ExprKind::ArrayRead && "not an array read");
    return Subs;
  }

  static ExprPtr makeConst(int64_t Value);
  static ExprPtr makeVar(unsigned VarId);
  static ExprPtr makeAdd(ExprPtr Lhs, ExprPtr Rhs);
  static ExprPtr makeSub(ExprPtr Lhs, ExprPtr Rhs);
  static ExprPtr makeMul(ExprPtr Lhs, ExprPtr Rhs);
  static ExprPtr makeNeg(ExprPtr Operand);
  static ExprPtr makeArrayRead(unsigned ArrayId,
                               std::vector<ExprPtr> Subscripts);

  /// Rebuilds the tree with every Var node mapped through \p Subst; a null
  /// result from \p Subst keeps the variable reference unchanged.
  ExprPtr substitute(
      const std::function<ExprPtr(unsigned)> &Subst) const;

  /// Collects the ids of all variables referenced, in first-seen order.
  void collectVars(std::vector<unsigned> &Out) const;

  /// True if variable \p VarId occurs anywhere in the tree.
  bool references(unsigned VarId) const;

  /// Collects pointers to every ArrayRead node in the tree, in
  /// left-to-right order (including reads nested inside subscripts).
  void collectArrayReads(std::vector<const Expr *> &Out) const;

  /// True if any ArrayRead node occurs in the tree.
  bool containsArrayRead() const;

  /// Renders with a name resolver (id -> name) for diagnostics.
  std::string str(const std::function<std::string(unsigned)> &Name) const;

private:
  explicit Expr(ExprKind K) : Kind(K), Value(0) {}

  ExprKind Kind;
  int64_t Value; ///< Constant value, or variable/array id for leaves.
  ExprPtr Lhs;
  ExprPtr Rhs;
  std::vector<ExprPtr> Subs; ///< Subscripts for ArrayRead nodes.
};

/// An affine (integral linear) expression: Constant + sum Coeff_i * Var_i.
/// Terms are kept sorted by variable id with no zero coefficients, so
/// structural equality is semantic equality.
class AffineExpr {
public:
  /// A single linear term.
  struct Term {
    unsigned VarId;
    int64_t Coeff;
    bool operator==(const Term &RHS) const = default;
  };

  AffineExpr() : Constant(0), Overflowed(false) {}
  /*implicit*/ AffineExpr(int64_t Const) : Constant(Const),
                                           Overflowed(false) {}

  /// The affine expression "Coeff * var".
  static AffineExpr variable(unsigned VarId, int64_t Coeff = 1);

  int64_t constant() const { return Constant; }
  const std::vector<Term> &terms() const { return Terms; }

  /// True once any arithmetic overflowed; such expressions must be treated
  /// as unanalyzable.
  bool overflowed() const { return Overflowed; }

  bool isConstant() const { return Terms.empty(); }

  /// Coefficient of \p VarId (0 when absent).
  int64_t coeff(unsigned VarId) const;

  /// Replaces variable \p VarId with the affine expression \p Repl.
  AffineExpr substituted(unsigned VarId, const AffineExpr &Repl) const;

  AffineExpr operator+(const AffineExpr &RHS) const;
  AffineExpr operator-(const AffineExpr &RHS) const;
  AffineExpr operator-() const;
  /// Scales every coefficient and the constant by \p Factor.
  AffineExpr scaled(int64_t Factor) const;

  bool operator==(const AffineExpr &RHS) const {
    return Constant == RHS.Constant && Terms == RHS.Terms &&
           Overflowed == RHS.Overflowed;
  }

  /// Evaluates under \p Env (id -> value). \pre every referenced variable
  /// is bound; returns std::nullopt on arithmetic overflow.
  std::optional<int64_t>
  evaluate(const std::function<int64_t(unsigned)> &Env) const;

  /// Renders with a name resolver for diagnostics.
  std::string str(const std::function<std::string(unsigned)> &Name) const;

private:
  int64_t Constant;
  std::vector<Term> Terms;
  bool Overflowed;

  void addTerm(unsigned VarId, int64_t Coeff);
  static AffineExpr overflowedExpr();
};

/// Converts an expression tree to affine form. Returns std::nullopt when
/// the tree is not affine (for example a product of two variables) or when
/// coefficient arithmetic overflows. Variables of any kind are accepted;
/// the caller decides which ids are legal (loop variables, symbolic
/// constants).
std::optional<AffineExpr> toAffine(const ExprPtr &E);

/// Structural equality of two expression trees (same shape, same
/// constants, same variable/array ids).
bool exprEquals(const ExprPtr &A, const ExprPtr &B);

} // namespace edda

#endif // EDDA_IR_EXPR_H
