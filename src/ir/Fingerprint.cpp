//===- ir/Fingerprint.cpp - Content fingerprints for IR -------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "ir/Fingerprint.h"

#include "support/Hashing.h"

#include <cassert>

using namespace edda;

namespace {

// FNV-1a over the name bytes; names are the id-independent identity.
uint64_t hashName(const std::string &Name) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

// Distinct seeds per node class so a Const(0) leaf, an empty chain and
// an empty body cannot collide structurally.
enum : uint64_t {
  SeedConst = 0xE1,
  SeedVar = 0xE2,
  SeedAdd = 0xE3,
  SeedSub = 0xE4,
  SeedMul = 0xE5,
  SeedNeg = 0xE6,
  SeedArrayRead = 0xE7,
  SeedLoopChain = 0xC1,
  SeedAssign = 0x51,
  SeedLoop = 0x52,
};

} // namespace

uint64_t edda::fingerprintExpr(const Program &P, const ExprPtr &E) {
  assert(E && "fingerprint of a null expression");
  switch (E->kind()) {
  case ExprKind::Const:
    return hashCombine(SeedConst,
                       static_cast<uint64_t>(E->constValue()));
  case ExprKind::Var: {
    const VarInfo &V = P.var(E->varId());
    return hashCombine(hashCombine(SeedVar,
                                   static_cast<uint64_t>(V.Kind)),
                       hashName(V.Name));
  }
  case ExprKind::Add:
    return hashCombine(hashCombine(SeedAdd, fingerprintExpr(P, E->lhs())),
                       fingerprintExpr(P, E->rhs()));
  case ExprKind::Sub:
    return hashCombine(hashCombine(SeedSub, fingerprintExpr(P, E->lhs())),
                       fingerprintExpr(P, E->rhs()));
  case ExprKind::Mul:
    return hashCombine(hashCombine(SeedMul, fingerprintExpr(P, E->lhs())),
                       fingerprintExpr(P, E->rhs()));
  case ExprKind::Neg:
    return hashCombine(SeedNeg, fingerprintExpr(P, E->lhs()));
  case ExprKind::ArrayRead:
    return fingerprintArrayAccess(P, E->arrayId(), E->subscripts());
  }
  assert(false && "unhandled expression kind");
  return 0;
}

uint64_t edda::fingerprintArrayAccess(
    const Program &P, unsigned ArrayId,
    const std::vector<ExprPtr> &Subscripts) {
  uint64_t H = hashCombine(SeedArrayRead, hashName(P.array(ArrayId).Name));
  for (const ExprPtr &Sub : Subscripts)
    H = hashCombine(H, fingerprintExpr(P, Sub));
  return H;
}

uint64_t edda::fingerprintLoopChain(
    const Program &P, const std::vector<const LoopStmt *> &Loops) {
  uint64_t H = SeedLoopChain;
  for (const LoopStmt *L : Loops) {
    H = hashCombine(H, hashName(P.var(L->varId()).Name));
    H = hashCombine(H, fingerprintExpr(P, L->lo()));
    H = hashCombine(H, fingerprintExpr(P, L->hi()));
    H = hashCombine(H, static_cast<uint64_t>(L->step()));
  }
  return H;
}

uint64_t edda::fingerprintStmt(const Program &P, const Stmt &S) {
  if (S.kind() == StmtKind::Assign) {
    const AssignStmt &A = asAssign(S);
    uint64_t H = SeedAssign;
    if (A.isArrayLhs()) {
      H = hashCombine(H, hashName(P.array(A.lhsArray()).Name));
      for (const ExprPtr &Sub : A.lhsSubscripts())
        H = hashCombine(H, fingerprintExpr(P, Sub));
    } else {
      H = hashCombine(H, hashName(P.var(A.lhsScalar()).Name));
    }
    return hashCombine(H, fingerprintExpr(P, A.rhs()));
  }
  const LoopStmt &L = asLoop(S);
  uint64_t H = hashCombine(SeedLoop, hashName(P.var(L.varId()).Name));
  H = hashCombine(H, fingerprintExpr(P, L.lo()));
  H = hashCombine(H, fingerprintExpr(P, L.hi()));
  H = hashCombine(H, static_cast<uint64_t>(L.step()));
  for (const StmtPtr &Child : L.body())
    H = hashCombine(H, fingerprintStmt(P, *Child));
  return H;
}
