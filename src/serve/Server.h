//===- serve/Server.h - Persistent analysis daemon core --------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edda-serve daemon core (docs/SERVING.md): a long-lived analysis
/// service that accepts LoopLang programs or raw dependence problems as
/// newline-delimited JSON, dispatches them onto the shared ThreadPool,
/// and answers from one concurrent sharded DependenceCache that
/// persists across requests — the serving generalization of the
/// paper's section 5 observation that real workloads ask the same
/// dependence questions over and over.
///
/// Consistency: each request runs a single-threaded DependenceAnalyzer
/// that shares the server's cache. Entries are first-insert-wins and
/// bit-identical to recomputation, so answers do not depend on request
/// interleaving; only the " (cached)" markers (and witnesses, which
/// the store drops) vary with cache temperature.
///
/// Lifecycle: an optional warm-start file is loaded at construction,
/// checkpointed periodically (evict-to-bound, then write-to-temp and
/// rename, so a crash mid-checkpoint never corrupts the store) and
/// saved again on graceful shutdown. Per-request timeouts degrade to
/// conservative answers via the Fourier-Motzkin work budgets — the
/// server never kills a worker thread.
///
/// Edit loop: the `edit` op holds one program per connection (or per
/// named session) in an IncrementalSession and re-analyzes each edited
/// version by fingerprint diff, splicing unchanged pairs from the
/// previous result. Responses come from the spliced dependence graph
/// and report pairs-reused versus pairs-invalidated per request.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SERVE_SERVER_H
#define EDDA_SERVE_SERVER_H

#include "deptest/Memo.h"
#include "deptest/TestPipeline.h"
#include "serve/Protocol.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace edda {

/// Daemon configuration (tools/edda-serve.cpp maps flags onto this).
struct ServeOptions {
  /// Worker threads for request dispatch; 0 = one per hardware core.
  unsigned NumThreads = 0;
  /// Requests dispatched before the transport applies backpressure:
  /// a connection may have up to 2*BatchSize responses in flight.
  unsigned BatchSize = 8;
  /// Warm-start / checkpoint file ("" = in-memory only). Loaded at
  /// boot when present (a missing file is a cold start, not an
  /// error); written by checkpoint().
  std::string CachePath;
  /// Seconds between periodic checkpoints (0 = only on shutdown).
  unsigned CheckpointIntervalSec = 0;
  /// Cache size bound enforced at checkpoint time via LRU-ish
  /// eviction (0 = unbounded).
  uint64_t MaxCacheEntries = 1u << 20;
  /// Server-default Fourier-Motzkin work budget applied to every
  /// request (0 = the library defaults, which match edda-cli).
  uint64_t RequestFmBudget = 0;
  /// Per-request soft deadline; converted to a work budget at boot by
  /// timing a canned branch-and-bound-heavy problem (0 = none). The
  /// budget, not the wall clock, is what stops a request: answers
  /// degrade to conservative '*'-vectors / assumed-dependent instead
  /// of a worker being killed mid-request.
  unsigned TimeoutMs = 0;
  /// Default dependence-test pipeline spec ("" = the paper's cascade).
  std::string PipelineSpec;
  bool Widen = true;
  /// Append one JSON line of per-request stats per request ("" = off).
  std::string StatsLogPath;
};

/// Server-lifetime counters (a stats-op snapshot; all monotone).
struct ServeStats {
  uint64_t Requests = 0;
  uint64_t AnalyzeRequests = 0;
  uint64_t ProblemRequests = 0;
  uint64_t EditRequests = 0;
  uint64_t Errors = 0;
  /// Reference-pair accounting across analyze requests. "Tested" ran
  /// the cascade, "cached" was served from the store; constant and
  /// unanalyzable pairs are never memoized, so the serving hit rate
  /// is PairsCached / (PairsCached + PairsTested), with problem-op
  /// decisions folded in.
  uint64_t PairsTested = 0;
  uint64_t PairsCached = 0;
  uint64_t PairsConstant = 0;
  uint64_t PairsUnanalyzable = 0;
  uint64_t ProblemsTested = 0;
  uint64_t ProblemsCached = 0;
  uint64_t TestsRun = 0;
  uint64_t MemoHitsFull = 0;
  uint64_t MemoHitsNoBounds = 0;
  uint64_t FmWork = 0;
  uint64_t WidenedQueries = 0;
  uint64_t DegradedRequests = 0;
  uint64_t WallNs = 0;
  uint64_t Checkpoints = 0;
  uint64_t Evicted = 0;
  uint64_t WarmLoadedEntries = 0;
  /// Warm-start entries dropped at boot because the file declared a
  /// stale cache format version (surfaced instead of silently
  /// cold-starting).
  uint64_t WarmRejectedEntries = 0;
  /// Incremental accounting across edit requests: pairs whose previous
  /// outcome was spliced in because their content fingerprints were
  /// unchanged, versus pairs rebuilt and re-tested. The reuse ratio —
  /// not wall time — is the serving-side incremental claim.
  uint64_t PairsReused = 0;
  uint64_t PairsInvalidated = 0;

  /// Serving cache hit rate in percent (see PairsTested).
  double hitRatePct() const;
};

/// The daemon core, transport-agnostic: transports feed it request
/// lines and write back the response lines it produces. Thread-safe.
class ServeCore {
public:
  /// Loads the warm-start file (when configured and present), runs the
  /// timeout calibration, and starts the worker pool plus the periodic
  /// checkpoint thread. \p Error receives boot diagnostics (a corrupt
  /// warm-start file is reported there and treated as a cold start).
  explicit ServeCore(ServeOptions Opts, std::string *Error = nullptr);

  /// Drains in-flight work and, when a cache path is configured,
  /// writes a final checkpoint.
  ~ServeCore();

  ServeCore(const ServeCore &) = delete;
  ServeCore &operator=(const ServeCore &) = delete;

  /// Decodes and serves one request line, returning the response line
  /// (no trailing newline). Runs on the caller's thread; never throws
  /// and never returns an empty string — malformed input yields an
  /// ok:false response. \p ConnId scopes anonymous edit sessions to
  /// the issuing transport connection (0 = the stdio transport).
  std::string handleLine(const std::string &Line, uint64_t ConnId = 0);

  /// Serves one decoded request (the typed core of handleLine; the
  /// unit tests call this directly).
  ServeResponse handle(const ServeRequest &R, uint64_t ConnId = 0);

  /// Enqueues a request line onto the worker pool; \p Done is invoked
  /// on a worker thread with the response line.
  void submit(std::string Line, std::function<void(std::string)> Done,
              uint64_t ConnId = 0);

  /// Blocks until every submitted request has been answered.
  void drain();

  /// Evicts down to the configured bound and atomically rewrites the
  /// warm-start file (write temp, rename over). No-op without a cache
  /// path. Safe while requests are in flight.
  bool checkpoint();

  /// Set once a shutdown request has been acknowledged; transports
  /// stop accepting input and drain.
  bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_acquire);
  }

  ServeStats stats() const;
  DependenceCache &cache() { return Cache; }
  ThreadPool &pool() { return *Pool; }
  const ServeOptions &options() const { return Opts; }
  /// The effective server-default FM budget (flag or calibrated).
  uint64_t defaultFmBudget() const { return DefaultBudget; }

private:
  ServeResponse handleAnalyze(const ServeRequest &R);
  ServeResponse handleProblem(const ServeRequest &R);
  /// Serves one edit request against the per-connection (or named)
  /// IncrementalSession, splicing unchanged pairs from the previous
  /// analysis and answering from the spliced graph.
  ServeResponse handleEdit(const ServeRequest &R, uint64_t ConnId);
  JsonValue statsJson() const;

  /// Resolves a request's pipeline spec against a small memoized
  /// spec->pipeline map (specs repeat across requests; parsing one is
  /// cheap but not free). Null + \p Error on a bad spec.
  std::shared_ptr<const TestPipeline> pipelineFor(const std::string &Spec,
                                                  std::string *Error);

  void logRequest(const JsonValue &Entry);
  void checkpointLoop();

  ServeOptions Opts;
  uint64_t DefaultBudget = 0;
  DependenceCache Cache;
  std::unique_ptr<ThreadPool> Pool;

  std::mutex PipelineMutex;
  std::map<std::string, std::shared_ptr<const TestPipeline>> Pipelines;

  /// Edit-session registry, keyed "conn:<id>" for anonymous
  /// connection-scoped programs and "user:<name>" for named ones.
  /// Sessions hold their own analyzer (and memo state) because
  /// fingerprint invalidation must track one program's lifetime, not
  /// the shared store; a small LRU bound caps abandoned sessions.
  /// Requests touching one session serialize on its own mutex, so
  /// edits to different sessions still run concurrently.
  struct EditSession;
  mutable std::mutex SessionsMutex;
  std::map<std::string, std::shared_ptr<EditSession>> Sessions;
  uint64_t SessionClock = 0;

  std::mutex LogMutex;
  std::ofstream LogStream;

  /// Serializes checkpoints (periodic thread vs checkpoint op).
  std::mutex CheckpointMutex;
  std::thread CheckpointThread;
  std::mutex CheckpointCvMutex;
  std::condition_variable CheckpointCv;
  bool StopCheckpointThread = false;

  std::atomic<bool> ShutdownFlag{false};

  struct Counters;
  std::unique_ptr<Counters> C;
};

/// Serves newline-delimited requests from stdin to stdout until EOF or
/// a shutdown request; responses may interleave out of request order.
/// Returns the process exit code.
int runStdioServer(ServeCore &Core);

/// Listens on a Unix-domain socket, serving each connection's request
/// lines through the core with per-connection backpressure (at most
/// 2*BatchSize responses in flight per connection). Returns when
/// \p Stop becomes true (signal) or a shutdown request is served.
/// Removes the socket file on exit.
int runUnixServer(ServeCore &Core, const std::string &SocketPath,
                  const std::atomic<bool> &Stop, std::string *Error);

} // namespace edda

#endif // EDDA_SERVE_SERVER_H
