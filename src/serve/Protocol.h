//===- serve/Protocol.h - edda-serve wire protocol -------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol spoken by edda-serve (one
/// request object per line in, one response object per line out; see
/// docs/SERVING.md for the schema). Both sides are in this file so the
/// server, the client library and the tests cannot drift apart.
///
/// Responses carry the request's `id` and may arrive out of order —
/// the server dispatches onto a thread pool and answers as work
/// finishes. Clients match on `id`.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SERVE_PROTOCOL_H
#define EDDA_SERVE_PROTOCOL_H

#include "serve/Json.h"

#include <cstdint>
#include <optional>
#include <string>

namespace edda {

/// One request line. Operations:
///   analyze     decide every reference pair of a LoopLang program
///   problem     decide one raw DependenceProblem (ProblemIO format)
///   edit        replace a session's program with an edited version and
///               re-analyze incrementally (fingerprint diff + graph
///               splice); the payload is the full edited program, not a
///               patch — the fingerprints find what changed
///   stats       server-lifetime counters (no payload)
///   ping        liveness probe (no payload)
///   checkpoint  force a warm-start checkpoint now (no payload)
///   shutdown    acknowledge, then drain and exit
struct ServeRequest {
  enum class Op { Analyze, Problem, Edit, Stats, Ping, Checkpoint, Shutdown };

  int64_t Id = 0;
  Op Operation = Op::Ping;
  /// LoopLang source (analyze) or ProblemIO text (problem).
  std::string Payload;
  bool Directions = false;
  bool Explain = false;
  bool Widen = true;
  bool Prepass = true;
  /// Suppress the " (cached)" markers in the rendered text. The
  /// serving smoke diffs served reports against a fresh edda-cli run,
  /// where hit patterns legitimately differ.
  bool CacheMarkers = true;
  /// Dependence-test pipeline spec; empty selects the server default.
  std::string PipelineSpec;
  /// Per-request Fourier-Motzkin work budget override (0 = server
  /// default). Budgeted requests degrade to conservative answers when
  /// the budget runs out and bypass the shared memo store, so a
  /// degraded answer is never served to an unbudgeted request. Not
  /// accepted on edit requests: a one-off budget could splice degraded
  /// answers into every later re-analysis of the session.
  uint64_t FmBudget = 0;
  /// Edit requests only: names the server-side program the edit
  /// applies to. Empty scopes the session to the connection (each
  /// transport connection gets its own anonymous program); non-empty
  /// names are shared across connections, so separate clients can
  /// take turns editing one program.
  std::string Session;

  JsonValue toJson() const;
};

/// Decodes one request line. Returns nullopt and sets \p Error on
/// malformed input; \p IdOut receives the id when one was present (so
/// error responses can still echo it).
std::optional<ServeRequest> parseServeRequest(const std::string &Line,
                                              std::string *Error,
                                              int64_t *IdOut = nullptr);

/// One decoded response line. `Body` is the full response object, so
/// structured consumers (the throughput bench, the smoke's stats
/// collector) can reach the per-request stats without re-parsing.
struct ServeResponse {
  int64_t Id = 0;
  bool Ok = false;
  std::string Error;
  /// The rendered report (analyze/problem), byte-identical to what
  /// edda-cli prints for the same input and options.
  std::string Text;
  JsonValue Body;
};

/// Decodes one response line (nullopt + \p Error on malformed input).
std::optional<ServeResponse> parseServeResponse(const std::string &Line,
                                                std::string *Error);

const char *serveOpName(ServeRequest::Op Operation);

} // namespace edda

#endif // EDDA_SERVE_PROTOCOL_H
