//===- serve/Client.h - edda-serve client library --------------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small client for the edda-serve Unix-domain-socket transport,
/// used by the edda-serve --client mode, the ext_serve_throughput
/// bench and the serving tests. One ServeClient wraps one connection
/// and is not thread-safe — concurrent load generators open one
/// client per thread, which is also how independent compiler
/// processes would share a daemon.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SERVE_CLIENT_H
#define EDDA_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

namespace edda {

class ServeClient {
public:
  /// Connects to a serving socket; null + \p Error on failure.
  static std::unique_ptr<ServeClient>
  connectUnix(const std::string &SocketPath, std::string *Error);

  ~ServeClient();

  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Sends \p R (assigning a fresh id when R.Id == 0) and blocks until
  /// its response arrives. Responses for other pipelined ids received
  /// meanwhile are buffered for their own call()/receive().
  std::optional<ServeResponse> call(ServeRequest R, std::string *Error);

  /// Pipelined use: send without waiting, then collect responses in
  /// arrival order. receive() returns nullopt on EOF or a transport
  /// error.
  bool send(ServeRequest &R, std::string *Error);
  std::optional<ServeResponse> receive(std::string *Error);

private:
  explicit ServeClient(int Fd) : Fd(Fd) {}

  /// Reads one NDJSON line from the socket (nullopt on EOF/error).
  std::optional<std::string> readLine(std::string *Error);

  int Fd = -1;
  int64_t NextId = 1;
  std::string Buf;
  std::map<int64_t, ServeResponse> Pending;
};

} // namespace edda

#endif // EDDA_SERVE_CLIENT_H
