//===- serve/Server.cpp - Persistent analysis daemon core -----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "analysis/Analyzer.h"
#include "analysis/Incremental.h"
#include "deptest/Direction.h"
#include "deptest/ProblemIO.h"
#include "parser/Parser.h"
#include "serve/Render.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <set>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace edda;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char *shortAnswerName(DepAnswer Answer) {
  switch (Answer) {
  case DepAnswer::Independent:
    return "independent";
  case DepAnswer::Dependent:
    return "dependent";
  case DepAnswer::Unknown:
    return "unknown";
  }
  return "?";
}

/// A branch-and-bound-heavy calibration problem: two coupled equations
/// under triangular bounds, the shape Direction.h documents as driving
/// nearly every constrained query into Fourier-Motzkin branch & bound.
DependenceProblem calibrationProblem() {
  DependenceProblem P;
  P.NumLoopsA = P.NumLoopsB = P.NumCommon = 2;
  const unsigned NumX = 4;
  XAffine E1(NumX), E2(NumX);
  E1.Coeffs = {1, 1, -1, -1};
  E1.Const = 1;
  E2.Coeffs = {1, -2, 0, 1};
  E2.Const = 0;
  P.Equations = {E1, E2};
  XAffine Zero(NumX), Top(NumX);
  Top.Const = 100;
  XAffine AfterX0(NumX), AfterX2(NumX);
  AfterX0.Coeffs[0] = 1;
  AfterX2.Coeffs[2] = 1;
  P.Lo = {Zero, AfterX0, Zero, AfterX2};
  P.Hi = {Top, Top, Top, Top};
  return P;
}

/// Converts a wall-clock timeout into a Fourier-Motzkin work budget by
/// measuring this machine's combine rate on the calibration problem.
/// The budget is the enforceable stand-in for the deadline: FM work is
/// counted deterministically, so the same problem always degrades (or
/// not) at the same point regardless of machine load.
uint64_t calibrateFmBudget(unsigned TimeoutMs) {
  DependenceProblem P = calibrationProblem();
  DirectionOptions DirOpts;
  DirOpts.MaxRefineFmWork = 20000;
  uint64_t Start = nowNs();
  DirectionResult R = computeDirectionVectors(P, DirOpts);
  uint64_t Elapsed = nowNs() - Start;
  uint64_t Work = R.TestStats.FmWork;
  if (Elapsed == 0 || Work == 0)
    return 1u << 16; // Timer or problem misbehaved; a safe middle.
  // combines per millisecond, then scaled to the deadline.
  long double PerMs = static_cast<long double>(Work) * 1e6L /
                      static_cast<long double>(Elapsed);
  long double Budget = PerMs * static_cast<long double>(TimeoutMs);
  if (Budget < 4096)
    return 4096;
  if (Budget > static_cast<long double>(UINT64_MAX) / 2)
    return UINT64_MAX / 2;
  return static_cast<uint64_t>(Budget);
}

bool writeAllFd(int Fd, const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

double ServeStats::hitRatePct() const {
  uint64_t Hits = PairsCached + ProblemsCached;
  uint64_t Total = Hits + PairsTested + ProblemsTested;
  return Total ? 100.0 * static_cast<double>(Hits) /
                     static_cast<double>(Total)
               : 0.0;
}

/// All counters are relaxed atomics: they are monotone accounting with
/// no ordering relationship to the answers themselves.
struct ServeCore::Counters {
  std::atomic<uint64_t> Requests{0}, AnalyzeRequests{0},
      ProblemRequests{0}, EditRequests{0}, Errors{0}, PairsTested{0},
      PairsCached{0}, PairsConstant{0}, PairsUnanalyzable{0},
      ProblemsTested{0}, ProblemsCached{0}, TestsRun{0}, MemoHitsFull{0},
      MemoHitsNoBounds{0}, FmWork{0}, WidenedQueries{0},
      DegradedRequests{0}, WallNs{0}, Checkpoints{0}, Evicted{0},
      WarmLoadedEntries{0}, WarmRejectedEntries{0}, PairsReused{0},
      PairsInvalidated{0};
};

/// One edit-loop program: the incremental analyzer state plus the lock
/// that serializes edits to it. The session owns its analyzer (and
/// that analyzer's private memo tables) rather than sharing the
/// server-wide store: fingerprint invalidation tracks this one
/// program's live pair keys, which must not evict entries other
/// requests still want.
struct ServeCore::EditSession {
  explicit EditSession(AnalyzerOptions AO) : Incr(std::move(AO)) {}

  std::mutex Mutex;
  IncrementalSession Incr;
  /// Logical touch time (ServeCore::SessionClock) for LRU eviction.
  uint64_t LastUsed = 0;
};

static MemoOptions servingMemoOptions(unsigned Threads) {
  MemoOptions M;
  M.TrackRecency = true;
  // A few shards per worker keeps the hot path on uncontended locks
  // (same resolution the parallel analyzer uses for its own cache).
  M.Shards = 4 * std::max(1u, Threads);
  return M;
}

ServeCore::ServeCore(ServeOptions O, std::string *Error)
    : Opts(std::move(O)),
      Cache(servingMemoOptions(Opts.NumThreads
                                   ? Opts.NumThreads
                                   : ThreadPool::hardwareThreads())),
      C(std::make_unique<Counters>()) {
  if (Opts.NumThreads == 0)
    Opts.NumThreads = ThreadPool::hardwareThreads();
  if (Opts.BatchSize == 0)
    Opts.BatchSize = 1;

  DefaultBudget = Opts.RequestFmBudget;
  if (DefaultBudget == 0 && Opts.TimeoutMs != 0)
    DefaultBudget = calibrateFmBudget(Opts.TimeoutMs);

  if (!Opts.CachePath.empty()) {
    struct stat St;
    if (::stat(Opts.CachePath.c_str(), &St) == 0) {
      CacheLoadStats LoadStats;
      if (Cache.loadFromFile(Opts.CachePath, &LoadStats)) {
        C->WarmLoadedEntries.store(Cache.uniqueFull() +
                                   Cache.uniqueDirections() +
                                   Cache.uniqueNoBounds());
      } else {
        // Report what was lost instead of silently cold-starting: a
        // stale-format file says how many entries it held, and the
        // count stays visible through the stats op afterwards.
        C->WarmRejectedEntries.store(LoadStats.RejectedEntries);
        if (Error) {
          *Error = "warm-start file '" + Opts.CachePath + "' ";
          if (LoadStats.FileVersion != 0 &&
              LoadStats.RejectedEntries != 0)
            *Error += "declares stale format version " +
                      std::to_string(LoadStats.FileVersion) +
                      "; rejected " +
                      std::to_string(LoadStats.RejectedEntries) +
                      " entries and cold-starting";
          else
            *Error += "is unreadable or has a bad format; cold-starting";
        }
      }
    }
  }

  if (!Opts.StatsLogPath.empty()) {
    LogStream.open(Opts.StatsLogPath, std::ios::app);
    if (!LogStream && Error) {
      if (!Error->empty())
        *Error += "; ";
      *Error += "cannot open stats log '" + Opts.StatsLogPath + "'";
    }
  }

  Pool = std::make_unique<ThreadPool>(Opts.NumThreads);

  if (Opts.CheckpointIntervalSec != 0 && !Opts.CachePath.empty())
    CheckpointThread = std::thread([this] { checkpointLoop(); });
}

ServeCore::~ServeCore() {
  Pool->wait();
  if (CheckpointThread.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(CheckpointCvMutex);
      StopCheckpointThread = true;
    }
    CheckpointCv.notify_all();
    CheckpointThread.join();
  }
  if (!Opts.CachePath.empty())
    checkpoint();
}

void ServeCore::checkpointLoop() {
  std::unique_lock<std::mutex> Lock(CheckpointCvMutex);
  while (!StopCheckpointThread) {
    CheckpointCv.wait_for(
        Lock, std::chrono::seconds(Opts.CheckpointIntervalSec),
        [this] { return StopCheckpointThread; });
    if (StopCheckpointThread)
      return;
    Lock.unlock();
    checkpoint();
    Lock.lock();
  }
}

bool ServeCore::checkpoint() {
  if (Opts.CachePath.empty())
    return false;
  std::lock_guard<std::mutex> Lock(CheckpointMutex);
  if (Opts.MaxCacheEntries != 0)
    C->Evicted.fetch_add(Cache.evictOldest(Opts.MaxCacheEntries),
                         std::memory_order_relaxed);
  std::string Tmp =
      Opts.CachePath + ".tmp." + std::to_string(::getpid());
  if (!Cache.saveToFile(Tmp)) {
    ::unlink(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Opts.CachePath.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  C->Checkpoints.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::shared_ptr<const TestPipeline>
ServeCore::pipelineFor(const std::string &Spec, std::string *Error) {
  const std::string &Effective =
      Spec.empty() ? Opts.PipelineSpec : Spec;
  if (Effective.empty() || Effective == "default")
    return nullptr; // CascadeOptions null = the paper's cascade.
  std::lock_guard<std::mutex> Lock(PipelineMutex);
  auto It = Pipelines.find(Effective);
  if (It != Pipelines.end())
    return It->second;
  std::shared_ptr<const TestPipeline> P = makePipeline(Effective, Error);
  if (P)
    Pipelines.emplace(Effective, P);
  return P;
}

void ServeCore::logRequest(const JsonValue &Entry) {
  if (!LogStream.is_open())
    return;
  std::lock_guard<std::mutex> Lock(LogMutex);
  LogStream << Entry.str() << '\n';
  LogStream.flush();
}

static ServeResponse errorResponse(int64_t Id, std::string Error) {
  ServeResponse R;
  R.Id = Id;
  R.Ok = false;
  R.Error = std::move(Error);
  JsonValue O = JsonValue::object();
  O.set("id", Id);
  O.set("ok", false);
  O.set("error", R.Error);
  R.Body = std::move(O);
  return R;
}

ServeResponse ServeCore::handleAnalyze(const ServeRequest &R) {
  uint64_t Start = nowNs();

  ParseResult Parsed = parseProgram(R.Payload);
  if (!Parsed.succeeded()) {
    std::string Msg = "parse error";
    for (const Diagnostic &D : Parsed.Diags) {
      Msg += "; ";
      Msg += D.str();
    }
    return errorResponse(R.Id, Msg);
  }
  Program Prog = std::move(*Parsed.Prog);

  std::string PipeError;
  std::shared_ptr<const TestPipeline> Pipe =
      pipelineFor(R.PipelineSpec, &PipeError);
  if (!Pipe && !PipeError.empty())
    return errorResponse(R.Id, "bad pipeline: " + PipeError);

  uint64_t Budget = R.FmBudget ? R.FmBudget : DefaultBudget;

  AnalyzerOptions AO;
  AO.RunPrepass = R.Prepass;
  // A per-request budget override bypasses the shared store entirely:
  // its possibly-degraded answers must never be served to an
  // unbudgeted request (the server-wide default budget is uniform
  // across requests, so those results stay mutually consistent).
  AO.UseMemoization = R.FmBudget == 0;
  AO.ComputeDirections = R.Directions;
  AO.NumThreads = 1;
  AO.Trace = R.Explain;
  AO.Cascade.Pipeline = Pipe;
  AO.Cascade.Widen = R.Widen;
  AO.Direction.Cascade.Pipeline = Pipe;
  AO.Direction.Cascade.Widen = R.Widen;
  if (Budget) {
    AO.Direction.MaxRefineFmWork = Budget;
    AO.Cascade.Fm.MaxCombines = Budget;
    AO.Direction.Cascade.Fm.MaxCombines = Budget;
  }

  DependenceAnalyzer Analyzer(AO, Cache);
  AnalysisResult Result = Analyzer.analyze(Prog);
  uint64_t WallNs = nowNs() - Start;

  ReportOptions Report;
  Report.Directions = R.Directions;
  Report.Explain = R.Explain;
  Report.CacheMarkers = R.CacheMarkers;

  uint64_t Tested = 0, Cached = 0, Constant = 0, Unanalyzable = 0;
  bool Degraded = false;
  JsonValue Pairs = JsonValue::array();
  for (const DependencePair &Pair : Result.Pairs) {
    if (Pair.DecidedBy == TestKind::Unanalyzable)
      ++Unanalyzable;
    else if (Pair.FromCache)
      ++Cached;
    else if (Pair.DecidedBy == TestKind::ArrayConstant)
      ++Constant; // Decided structurally; never enters the store.
    else
      ++Tested;
    if (Pair.Directions && !Pair.Directions->Exact)
      Degraded = true;
    if (Pair.Answer == DepAnswer::Unknown && !Pair.Exact &&
        Pair.DecidedBy == TestKind::FourierMotzkin)
      Degraded = true;

    JsonValue PJ = JsonValue::object();
    PJ.set("a", Pair.RefA);
    PJ.set("b", Pair.RefB);
    PJ.set("answer", shortAnswerName(Pair.Answer));
    PJ.set("decided_by", testKindName(Pair.DecidedBy));
    PJ.set("exact", Pair.Exact);
    PJ.set("from_cache", Pair.FromCache);
    if (Pair.Directions) {
      JsonValue Dirs = JsonValue::array();
      for (const DirVector &V : Pair.Directions->Vectors)
        Dirs.push(dirVectorStr(V));
      PJ.set("directions", std::move(Dirs));
      JsonValue Dists = JsonValue::array();
      for (const std::optional<int64_t> &D : Pair.Directions->Distances)
        Dists.push(D ? JsonValue(*D) : JsonValue());
      PJ.set("distances", std::move(Dists));
    }
    Pairs.push(std::move(PJ));
  }

  JsonValue Stats = JsonValue::object();
  Stats.set("wall_ns", WallNs);
  Stats.set("pairs", Result.PairsConsidered);
  Stats.set("pairs_cached", Cached);
  Stats.set("pairs_tested", Tested);
  Stats.set("unanalyzable", Result.UnanalyzablePairs);
  Stats.set("tests_run", Result.Stats.totalDecided());
  Stats.set("cache_hits_full", Result.Stats.MemoHitsFull);
  Stats.set("cache_hits_nobounds", Result.Stats.MemoHitsNoBounds);
  Stats.set("fm_work", Result.Stats.FmWork);
  Stats.set("widened", Result.Stats.WidenedQueries);
  Stats.set("degraded", Degraded);

  ServeResponse Out;
  Out.Id = R.Id;
  Out.Ok = true;
  Out.Text = renderAnalysisReport(Prog, Result, Report);
  JsonValue O = JsonValue::object();
  O.set("id", R.Id);
  O.set("ok", true);
  O.set("text", Out.Text);
  O.set("pairs", std::move(Pairs));
  O.set("stats", Stats);
  Out.Body = std::move(O);

  C->AnalyzeRequests.fetch_add(1, std::memory_order_relaxed);
  C->PairsTested.fetch_add(Tested, std::memory_order_relaxed);
  C->PairsCached.fetch_add(Cached, std::memory_order_relaxed);
  C->PairsConstant.fetch_add(Constant, std::memory_order_relaxed);
  C->PairsUnanalyzable.fetch_add(Unanalyzable,
                                 std::memory_order_relaxed);
  C->TestsRun.fetch_add(Result.Stats.totalDecided(),
                        std::memory_order_relaxed);
  C->MemoHitsFull.fetch_add(Result.Stats.MemoHitsFull,
                            std::memory_order_relaxed);
  C->MemoHitsNoBounds.fetch_add(Result.Stats.MemoHitsNoBounds,
                                std::memory_order_relaxed);
  C->FmWork.fetch_add(Result.Stats.FmWork, std::memory_order_relaxed);
  C->WidenedQueries.fetch_add(Result.Stats.WidenedQueries,
                              std::memory_order_relaxed);
  if (Degraded)
    C->DegradedRequests.fetch_add(1, std::memory_order_relaxed);
  C->WallNs.fetch_add(WallNs, std::memory_order_relaxed);

  Stats.set("op", "analyze");
  Stats.set("id", R.Id);
  logRequest(Stats);
  return Out;
}

ServeResponse ServeCore::handleProblem(const ServeRequest &R) {
  uint64_t Start = nowNs();

  ProblemParseResult Parsed = parseProblemText(R.Payload);
  if (!Parsed.succeeded())
    return errorResponse(R.Id, "problem parse error: " + Parsed.Error);
  const DependenceProblem &P = *Parsed.Problem;

  std::string PipeError;
  std::shared_ptr<const TestPipeline> Pipe =
      pipelineFor(R.PipelineSpec, &PipeError);
  if (!Pipe && !PipeError.empty())
    return errorResponse(R.Id, "bad pipeline: " + PipeError);

  uint64_t Budget = R.FmBudget ? R.FmBudget : DefaultBudget;
  bool UseMemo = R.FmBudget == 0; // Same bypass rule as analyze.

  CascadeOptions CO;
  CO.Pipeline = Pipe;
  CO.Widen = R.Widen;
  if (Budget)
    CO.Fm.MaxCombines = Budget;

  DepStats Stats;
  bool FromCache = false;
  CascadeResult Result;
  if (UseMemo) {
    if (std::optional<CascadeResult> Hit = Cache.lookupFull(P)) {
      Result = *Hit;
      FromCache = true;
    }
  }
  if (!FromCache) {
    Result = testDependence(P, CO, &Stats);
    if (UseMemo)
      Cache.insertFull(P, Result);
  }

  std::optional<PipelineTrace> Trace;
  if (R.Explain) {
    // Observational re-run, exactly as edda-cli --explain does: no
    // stats, no memoization, so the trace cannot perturb the answer.
    const TestPipeline &Pipeline =
        Pipe ? *Pipe : TestPipeline::defaultPipeline();
    Trace.emplace();
    Pipeline.run(P, {}, CO, /*Stats=*/nullptr, &*Trace);
  }

  std::optional<DirectionResult> Dirs;
  bool DirsFromCache = false;
  if (R.Directions && Result.Answer != DepAnswer::Independent) {
    if (UseMemo) {
      if (std::optional<DirectionResult> Hit =
              Cache.lookupDirections(P)) {
        Dirs = *Hit;
        DirsFromCache = true;
      }
    }
    if (!Dirs) {
      DirectionOptions DirOpts;
      DirOpts.Cascade = CO;
      if (Budget)
        DirOpts.MaxRefineFmWork = Budget;
      Dirs = computeDirectionVectors(P, DirOpts);
      Stats += Dirs->TestStats;
      if (UseMemo)
        Cache.insertDirections(P, *Dirs);
    }
  }
  uint64_t WallNs = nowNs() - Start;

  bool Degraded =
      (Result.Answer == DepAnswer::Unknown && !Result.Exact &&
       Result.DecidedBy == TestKind::FourierMotzkin) ||
      (Dirs && !Dirs->Exact);

  ServeResponse Out;
  Out.Id = R.Id;
  Out.Ok = true;
  Out.Text = renderProblemReport(P, Result, Dirs ? &*Dirs : nullptr,
                                 Trace ? &*Trace : nullptr);

  JsonValue Stat = JsonValue::object();
  Stat.set("wall_ns", WallNs);
  Stat.set("from_cache", FromCache && (!Dirs || DirsFromCache));
  Stat.set("tests_run", Stats.totalDecided());
  Stat.set("fm_work", Stats.FmWork);
  Stat.set("widened", Stats.WidenedQueries);
  Stat.set("degraded", Degraded);

  JsonValue O = JsonValue::object();
  O.set("id", R.Id);
  O.set("ok", true);
  O.set("text", Out.Text);
  O.set("answer", shortAnswerName(Result.Answer));
  O.set("decided_by", testKindName(Result.DecidedBy));
  O.set("exact", Result.Exact);
  if (Dirs) {
    JsonValue DV = JsonValue::array();
    for (const DirVector &V : Dirs->Vectors)
      DV.push(dirVectorStr(V));
    O.set("directions", std::move(DV));
  }
  O.set("stats", Stat);
  Out.Body = std::move(O);

  C->ProblemRequests.fetch_add(1, std::memory_order_relaxed);
  bool CountedCached = FromCache && (!Dirs || DirsFromCache);
  (CountedCached ? C->ProblemsCached : C->ProblemsTested)
      .fetch_add(1, std::memory_order_relaxed);
  C->TestsRun.fetch_add(Stats.totalDecided(),
                        std::memory_order_relaxed);
  C->FmWork.fetch_add(Stats.FmWork, std::memory_order_relaxed);
  C->WidenedQueries.fetch_add(Stats.WidenedQueries,
                              std::memory_order_relaxed);
  if (Degraded)
    C->DegradedRequests.fetch_add(1, std::memory_order_relaxed);
  C->WallNs.fetch_add(WallNs, std::memory_order_relaxed);

  Stat.set("op", "problem");
  Stat.set("id", R.Id);
  logRequest(Stat);
  return Out;
}

ServeResponse ServeCore::handleEdit(const ServeRequest &R,
                                    uint64_t ConnId) {
  uint64_t Start = nowNs();

  ParseResult Parsed = parseProgram(R.Payload);
  if (!Parsed.succeeded()) {
    std::string Msg = "parse error";
    for (const Diagnostic &D : Parsed.Diags) {
      Msg += "; ";
      Msg += D.str();
    }
    return errorResponse(R.Id, Msg);
  }
  Program Prog = std::move(*Parsed.Prog);

  std::string PipeError;
  std::shared_ptr<const TestPipeline> Pipe =
      pipelineFor(R.PipelineSpec, &PipeError);
  if (!Pipe && !PipeError.empty())
    return errorResponse(R.Id, "bad pipeline: " + PipeError);

  const std::string Key = R.Session.empty()
                              ? "conn:" + std::to_string(ConnId)
                              : "user:" + R.Session;

  std::shared_ptr<EditSession> Session;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    auto It = Sessions.find(Key);
    if (It == Sessions.end()) {
      // A session's analyzer options are fixed by its first request:
      // reanalysis is bit-identical to from-scratch only under
      // unchanged options, so later flags must not re-steer a live
      // session. The server default budget applies uniformly, exactly
      // as it does to every analyze request.
      AnalyzerOptions AO;
      AO.RunPrepass = R.Prepass;
      AO.NumThreads = 1;
      AO.Cascade.Pipeline = Pipe;
      AO.Cascade.Widen = R.Widen;
      AO.Direction.Cascade.Pipeline = Pipe;
      AO.Direction.Cascade.Widen = R.Widen;
      if (DefaultBudget) {
        AO.Direction.MaxRefineFmWork = DefaultBudget;
        AO.Cascade.Fm.MaxCombines = DefaultBudget;
        AO.Direction.Cascade.Fm.MaxCombines = DefaultBudget;
      }
      It = Sessions
               .emplace(Key, std::make_shared<EditSession>(std::move(AO)))
               .first;
    }
    Session = It->second;
    Session->LastUsed = ++SessionClock;

    // Bound abandoned sessions. Erasing only drops the registry's
    // reference; a request already holding the shared_ptr finishes
    // against its own copy.
    constexpr size_t MaxSessions = 64;
    while (Sessions.size() > MaxSessions) {
      auto Oldest = Sessions.end();
      for (auto I = Sessions.begin(); I != Sessions.end(); ++I)
        if (I->second != Session &&
            (Oldest == Sessions.end() ||
             I->second->LastUsed < Oldest->second->LastUsed))
          Oldest = I;
      if (Oldest == Sessions.end())
        break;
      Sessions.erase(Oldest);
    }
  }

  ReanalyzeStats RS;
  std::string Text, GraphText;
  {
    // Edits to one session serialize here; other sessions (and all
    // analyze/problem traffic) keep running on their own state.
    std::lock_guard<std::mutex> Lock(Session->Mutex);
    RS = Session->Incr.update(std::move(Prog));

    ReportOptions Report;
    Report.Directions = R.Directions;
    // Explain is ignored: spliced pairs have no fresh pipeline trace,
    // and a half-traced report would be misleading.
    Report.CacheMarkers = R.CacheMarkers;
    Text = renderAnalysisReport(Session->Incr.program(),
                                Session->Incr.result(), Report);
    GraphText = Session->Incr.graph().str(Session->Incr.program());
  }
  uint64_t WallNs = nowNs() - Start;

  JsonValue Stats = JsonValue::object();
  Stats.set("wall_ns", WallNs);
  Stats.set("pairs", RS.PairsTotal);
  Stats.set("pairs_reused", RS.PairsReused);
  Stats.set("pairs_invalidated", RS.PairsInvalidated);

  ServeResponse Out;
  Out.Id = R.Id;
  Out.Ok = true;
  Out.Text = Text;
  JsonValue O = JsonValue::object();
  O.set("id", R.Id);
  O.set("ok", true);
  O.set("text", Out.Text);
  O.set("graph", GraphText);
  O.set("session", Key);
  O.set("stats", Stats);
  Out.Body = std::move(O);

  C->EditRequests.fetch_add(1, std::memory_order_relaxed);
  C->PairsReused.fetch_add(RS.PairsReused, std::memory_order_relaxed);
  C->PairsInvalidated.fetch_add(RS.PairsInvalidated,
                                std::memory_order_relaxed);
  C->WallNs.fetch_add(WallNs, std::memory_order_relaxed);

  Stats.set("op", "edit");
  Stats.set("id", R.Id);
  Stats.set("session", Key);
  logRequest(Stats);
  return Out;
}

JsonValue ServeCore::statsJson() const {
  ServeStats S = stats();
  JsonValue O = JsonValue::object();
  O.set("requests", S.Requests);
  O.set("analyze_requests", S.AnalyzeRequests);
  O.set("problem_requests", S.ProblemRequests);
  O.set("edit_requests", S.EditRequests);
  O.set("errors", S.Errors);
  O.set("pairs_tested", S.PairsTested);
  O.set("pairs_cached", S.PairsCached);
  O.set("pairs_constant", S.PairsConstant);
  O.set("pairs_unanalyzable", S.PairsUnanalyzable);
  O.set("problems_tested", S.ProblemsTested);
  O.set("problems_cached", S.ProblemsCached);
  O.set("hit_rate_pct", S.hitRatePct());
  O.set("tests_run", S.TestsRun);
  O.set("cache_hits_full", S.MemoHitsFull);
  O.set("cache_hits_nobounds", S.MemoHitsNoBounds);
  O.set("cache_queries_dir", Cache.dirQueries());
  O.set("cache_hits_dir", Cache.dirHits());
  O.set("fm_work", S.FmWork);
  O.set("widened", S.WidenedQueries);
  O.set("degraded_requests", S.DegradedRequests);
  O.set("pairs_reused", S.PairsReused);
  O.set("pairs_invalidated", S.PairsInvalidated);
  O.set("wall_ns", S.WallNs);
  O.set("checkpoints", S.Checkpoints);
  O.set("evicted", S.Evicted);
  O.set("warm_loaded_entries", S.WarmLoadedEntries);
  O.set("warm_rejected_entries", S.WarmRejectedEntries);
  O.set("unique_full", Cache.uniqueFull());
  O.set("unique_directions", Cache.uniqueDirections());
  O.set("unique_nobounds", Cache.uniqueNoBounds());
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    O.set("edit_sessions", static_cast<uint64_t>(Sessions.size()));
  }
  O.set("threads", Opts.NumThreads);
  O.set("default_fm_budget", DefaultBudget);
  return O;
}

ServeStats ServeCore::stats() const {
  ServeStats S;
  S.Requests = C->Requests.load();
  S.AnalyzeRequests = C->AnalyzeRequests.load();
  S.ProblemRequests = C->ProblemRequests.load();
  S.EditRequests = C->EditRequests.load();
  S.Errors = C->Errors.load();
  S.PairsTested = C->PairsTested.load();
  S.PairsCached = C->PairsCached.load();
  S.PairsConstant = C->PairsConstant.load();
  S.PairsUnanalyzable = C->PairsUnanalyzable.load();
  S.ProblemsTested = C->ProblemsTested.load();
  S.ProblemsCached = C->ProblemsCached.load();
  S.TestsRun = C->TestsRun.load();
  S.MemoHitsFull = C->MemoHitsFull.load();
  S.MemoHitsNoBounds = C->MemoHitsNoBounds.load();
  S.FmWork = C->FmWork.load();
  S.WidenedQueries = C->WidenedQueries.load();
  S.DegradedRequests = C->DegradedRequests.load();
  S.WallNs = C->WallNs.load();
  S.Checkpoints = C->Checkpoints.load();
  S.Evicted = C->Evicted.load();
  S.WarmLoadedEntries = C->WarmLoadedEntries.load();
  S.WarmRejectedEntries = C->WarmRejectedEntries.load();
  S.PairsReused = C->PairsReused.load();
  S.PairsInvalidated = C->PairsInvalidated.load();
  return S;
}

ServeResponse ServeCore::handle(const ServeRequest &R, uint64_t ConnId) {
  C->Requests.fetch_add(1, std::memory_order_relaxed);
  switch (R.Operation) {
  case ServeRequest::Op::Analyze:
    return handleAnalyze(R);
  case ServeRequest::Op::Problem:
    return handleProblem(R);
  case ServeRequest::Op::Edit:
    return handleEdit(R, ConnId);
  case ServeRequest::Op::Stats: {
    ServeResponse Out;
    Out.Id = R.Id;
    Out.Ok = true;
    JsonValue O = JsonValue::object();
    O.set("id", R.Id);
    O.set("ok", true);
    O.set("server", statsJson());
    Out.Body = std::move(O);
    return Out;
  }
  case ServeRequest::Op::Ping: {
    ServeResponse Out;
    Out.Id = R.Id;
    Out.Ok = true;
    JsonValue O = JsonValue::object();
    O.set("id", R.Id);
    O.set("ok", true);
    O.set("op", "ping");
    Out.Body = std::move(O);
    return Out;
  }
  case ServeRequest::Op::Checkpoint: {
    bool Saved = checkpoint();
    ServeResponse Out;
    Out.Id = R.Id;
    Out.Ok = Saved;
    if (!Saved)
      Out.Error = Opts.CachePath.empty()
                      ? "no --cache path configured"
                      : "checkpoint write failed";
    JsonValue O = JsonValue::object();
    O.set("id", R.Id);
    O.set("ok", Saved);
    if (!Saved)
      O.set("error", Out.Error);
    O.set("entries", Cache.uniqueFull() + Cache.uniqueDirections() +
                         Cache.uniqueNoBounds());
    Out.Body = std::move(O);
    return Out;
  }
  case ServeRequest::Op::Shutdown: {
    ShutdownFlag.store(true, std::memory_order_release);
    ServeResponse Out;
    Out.Id = R.Id;
    Out.Ok = true;
    JsonValue O = JsonValue::object();
    O.set("id", R.Id);
    O.set("ok", true);
    O.set("op", "shutdown");
    Out.Body = std::move(O);
    return Out;
  }
  }
  return errorResponse(R.Id, "unhandled op");
}

std::string ServeCore::handleLine(const std::string &Line,
                                  uint64_t ConnId) {
  std::string Error;
  int64_t Id = 0;
  std::optional<ServeRequest> R = parseServeRequest(Line, &Error, &Id);
  if (!R) {
    C->Requests.fetch_add(1, std::memory_order_relaxed);
    C->Errors.fetch_add(1, std::memory_order_relaxed);
    return errorResponse(Id, Error).Body.str();
  }
  ServeResponse Out = handle(*R, ConnId);
  if (!Out.Ok)
    C->Errors.fetch_add(1, std::memory_order_relaxed);
  return Out.Body.str();
}

void ServeCore::submit(std::string Line,
                       std::function<void(std::string)> Done,
                       uint64_t ConnId) {
  Pool->submit([this, Line = std::move(Line), Done = std::move(Done),
                ConnId] { Done(handleLine(Line, ConnId)); });
}

void ServeCore::drain() { Pool->wait(); }

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

namespace {

/// Shared between a transport reader and the response callbacks it has
/// in flight; enforces the 2*BatchSize backpressure window.
struct FlightControl {
  std::mutex Mutex;
  std::condition_variable Cv;
  uint64_t InFlight = 0;

  void acquire(uint64_t Limit) {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return InFlight < Limit; });
    ++InFlight;
  }
  void release() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --InFlight;
    }
    Cv.notify_all();
  }
  void waitEmpty() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Cv.wait(Lock, [&] { return InFlight == 0; });
  }
};

} // namespace

int edda::runStdioServer(ServeCore &Core) {
  auto Flight = std::make_shared<FlightControl>();
  auto OutMutex = std::make_shared<std::mutex>();
  const uint64_t Limit = 2 * Core.options().BatchSize;

  std::string Line;
  while (!Core.shutdownRequested() && std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    Flight->acquire(Limit);
    Core.submit(Line, [Flight, OutMutex](std::string Resp) {
      {
        std::lock_guard<std::mutex> Lock(*OutMutex);
        Resp += '\n';
        std::fwrite(Resp.data(), 1, Resp.size(), stdout);
        std::fflush(stdout);
      }
      Flight->release();
    });
  }
  Flight->waitEmpty();
  Core.drain();
  return 0;
}

namespace {

void serveConnection(ServeCore &Core, int Fd, uint64_t ConnId) {
  auto Flight = std::make_shared<FlightControl>();
  auto WriteMutex = std::make_shared<std::mutex>();
  const uint64_t Limit = 2 * Core.options().BatchSize;

  std::string Buf;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0)
      break; // EOF (or shutdown(SHUT_RD) from the accept loop).
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl; (Nl = Buf.find('\n', Start)) != std::string::npos;
         Start = Nl + 1) {
      std::string Line = Buf.substr(Start, Nl - Start);
      if (Line.empty())
        continue;
      Flight->acquire(Limit);
      Core.submit(std::move(Line),
                  [Flight, WriteMutex, Fd](std::string Resp) {
                    Resp += '\n';
                    {
                      std::lock_guard<std::mutex> Lock(*WriteMutex);
                      // A hung-up client only loses its own replies.
                      (void)writeAllFd(Fd, Resp.data(), Resp.size());
                    }
                    Flight->release();
                  },
                  ConnId);
    }
    Buf.erase(0, Start);
  }
  Flight->waitEmpty();
  ::close(Fd);
}

} // namespace

int edda::runUnixServer(ServeCore &Core, const std::string &SocketPath,
                        const std::atomic<bool> &Stop,
                        std::string *Error) {
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + SocketPath;
    ::close(ListenFd);
    return 1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  ::unlink(SocketPath.c_str()); // Stale socket from a crashed server.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    if (Error)
      *Error = std::string("bind/listen on '") + SocketPath +
               "': " + std::strerror(errno);
    ::close(ListenFd);
    return 1;
  }

  std::mutex ConnMutex;
  std::set<int> OpenFds;
  std::vector<std::thread> Connections;
  // Connection ids scope anonymous edit sessions; 0 is reserved for
  // the stdio transport's single implicit connection.
  uint64_t NextConnId = 1;

  while (!Stop.load(std::memory_order_acquire) &&
         !Core.shutdownRequested()) {
    pollfd Pfd{ListenFd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 200);
    if (Ready <= 0)
      continue; // Timeout or EINTR: re-check the stop conditions.
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      OpenFds.insert(Fd);
    }
    uint64_t ConnId = NextConnId++;
    Connections.emplace_back([&Core, &ConnMutex, &OpenFds, Fd, ConnId] {
      serveConnection(Core, Fd, ConnId);
      std::lock_guard<std::mutex> Lock(ConnMutex);
      OpenFds.erase(Fd);
    });
  }
  ::close(ListenFd);

  // Half-close lingering connections so their readers see EOF, then
  // let them drain their in-flight responses.
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : OpenFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (std::thread &T : Connections)
    T.join();
  Core.drain();
  ::unlink(SocketPath.c_str());
  return 0;
}
