//===- serve/Json.cpp - Minimal JSON for the serving protocol -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace edda;

//===----------------------------------------------------------------------===//
// Value access
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Name) const {
  for (const auto &[Key, Value] : Fields)
    if (Key == Name)
      return &Value;
  return nullptr;
}

const JsonValue &JsonValue::get(std::string_view Name) const {
  static const JsonValue Null;
  const JsonValue *V = find(Name);
  return V ? *V : Null;
}

void JsonValue::set(std::string Name, JsonValue V) {
  K = Kind::Object;
  for (auto &[Key, Value] : Fields)
    if (Key == Name) {
      Value = std::move(V);
      return;
    }
  Fields.emplace_back(std::move(Name), std::move(V));
}

bool JsonValue::getBool(std::string_view Name, bool Default) const {
  const JsonValue *V = find(Name);
  return V && V->isBool() ? V->boolValue() : Default;
}

int64_t JsonValue::getInt(std::string_view Name, int64_t Default) const {
  const JsonValue *V = find(Name);
  return V && V->isNumber() ? V->intValue() : Default;
}

std::string JsonValue::getString(std::string_view Name,
                                 std::string Default) const {
  const JsonValue *V = find(Name);
  return V && V->isString() ? V->stringValue() : std::move(Default);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string edda::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonValue::serialize(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolVal ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntVal);
    break;
  case Kind::Double: {
    if (std::isfinite(DoubleVal)) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.17g", DoubleVal);
      Out += Buf;
    } else {
      Out += "null"; // JSON has no Inf/NaN.
    }
    break;
  }
  case Kind::String:
    Out += '"';
    Out += jsonEscape(StringVal);
    Out += '"';
    break;
  case Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &E : Elements) {
      if (!First)
        Out += ',';
      First = false;
      E.serialize(Out);
    }
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, Value] : Fields) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += jsonEscape(Key);
      Out += "\":";
      Value.serialize(Out);
    }
    Out += '}';
    break;
  }
  }
}

std::string JsonValue::str() const {
  std::string Out;
  serialize(Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> run(std::string *Error) {
    std::optional<JsonValue> V = parseValue();
    if (V) {
      skipWs();
      if (Pos != Text.size()) {
        V.reset();
        Err = "trailing characters after JSON value";
      }
    }
    if (!V && Error)
      *Error = Err.empty() ? "malformed JSON" : Err;
    return V;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  std::string Err;

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const char *Message) {
    if (Err.empty())
      Err = Message + std::string(" at offset ") + std::to_string(Pos);
    return false;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.compare(Pos, Word.size(), Word) == 0) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parseValue() {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"': {
      std::string S;
      if (!parseString(S))
        return std::nullopt;
      return JsonValue(std::move(S));
    }
    case 't':
      if (literal("true"))
        return JsonValue(true);
      fail("bad literal");
      return std::nullopt;
    case 'f':
      if (literal("false"))
        return JsonValue(false);
      fail("bad literal");
      return std::nullopt;
    case 'n':
      if (literal("null"))
        return JsonValue();
      fail("bad literal");
      return std::nullopt;
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber();
      fail("unexpected character");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parseObject() {
    ++Pos; // '{'
    JsonValue Obj = JsonValue::object();
    skipWs();
    if (consume('}'))
      return Obj;
    while (true) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return std::nullopt;
      skipWs();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      std::optional<JsonValue> V = parseValue();
      if (!V)
        return std::nullopt;
      Obj.set(std::move(Key), std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Obj;
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parseArray() {
    ++Pos; // '['
    JsonValue Arr = JsonValue::array();
    skipWs();
    if (consume(']'))
      return Arr;
    while (true) {
      std::optional<JsonValue> V = parseValue();
      if (!V)
        return std::nullopt;
      Arr.push(std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Arr;
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        // Surrogate pair: combine into one code point.
        if (Code >= 0xD800 && Code <= 0xDBFF && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          Pos += 2;
          unsigned Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low >= 0xDC00 && Low <= 0xDFFF)
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      unsigned Digit;
      if (C >= '0' && C <= '9')
        Digit = C - '0';
      else if (C >= 'a' && C <= 'f')
        Digit = 10 + C - 'a';
      else if (C >= 'A' && C <= 'F')
        Digit = 10 + C - 'A';
      else
        return fail("bad \\u escape");
      Out = Out * 16 + Digit;
    }
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  std::optional<JsonValue> parseNumber() {
    size_t Start = Pos;
    (void)consume('-');
    while (Pos < Text.size() && std::isdigit(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    bool IsInt = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsInt = false;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsInt = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    std::string_view Digits = Text.substr(Start, Pos - Start);
    if (Digits.empty() || Digits == "-") {
      fail("bad number");
      return std::nullopt;
    }
    if (IsInt) {
      int64_t I = 0;
      auto [Ptr, Ec] = std::from_chars(Digits.data(),
                                       Digits.data() + Digits.size(), I);
      if (Ec == std::errc() && Ptr == Digits.data() + Digits.size())
        return JsonValue(I);
      // Out of int64 range: fall through to double.
    }
    double D = std::strtod(std::string(Digits).c_str(), nullptr);
    return JsonValue(D);
  }
};

} // namespace

std::optional<JsonValue> edda::parseJson(std::string_view Text,
                                         std::string *Error) {
  return Parser(Text).run(Error);
}
