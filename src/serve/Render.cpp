//===- serve/Render.cpp - Shared analysis report rendering ----------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "serve/Render.h"

#include "analysis/Refs.h"

#include <cstdarg>
#include <cstdio>

using namespace edda;

const char *edda::depAnswerName(DepAnswer Answer) {
  switch (Answer) {
  case DepAnswer::Independent:
    return "INDEPENDENT";
  case DepAnswer::Dependent:
    return "dependent";
  case DepAnswer::Unknown:
    return "unknown (assumed dependent)";
  }
  return "?";
}

namespace {

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N < static_cast<int>(sizeof(Buf))) {
    Out.append(Buf, N);
    return;
  }
  std::string Big(N + 1, '\0');
  va_start(Args, Fmt);
  std::vsnprintf(Big.data(), Big.size(), Fmt, Args);
  va_end(Args);
  Big.resize(N);
  Out += Big;
}

void renderDirections(std::string &Out, const DirectionResult &Dirs,
                      unsigned Indent) {
  appendf(Out, "%*sdirections:", Indent, "");
  for (const DirVector &V : Dirs.Vectors)
    appendf(Out, " %s", dirVectorStr(V).c_str());
  appendf(Out, "%s\n", Dirs.Widened ? "  (widened to 128-bit)" : "");
  for (unsigned K = 0; K < Dirs.Distances.size(); ++K)
    if (Dirs.Distances[K])
      appendf(Out, "%*sdistance[%u] = %lld\n", Indent, "", K,
              static_cast<long long>(*Dirs.Distances[K]));
}

} // namespace

std::string edda::renderAnalysisReport(const Program &Prog,
                                       const AnalysisResult &Result,
                                       const ReportOptions &Opts) {
  std::string Out;
  appendf(Out, "%s: %llu reference pairs, %llu unanalyzable\n",
          Prog.name().c_str(),
          static_cast<unsigned long long>(Result.PairsConsidered),
          static_cast<unsigned long long>(Result.UnanalyzablePairs));
  for (const DependencePair &Pair : Result.Pairs) {
    const ArrayReference &A = Result.Refs[Pair.RefA];
    const ArrayReference &B = Result.Refs[Pair.RefB];
    appendf(Out, "  %s vs %s: %s [%s]%s\n", refStr(Prog, A).c_str(),
            refStr(Prog, B).c_str(), depAnswerName(Pair.Answer),
            testKindName(Pair.DecidedBy),
            Opts.CacheMarkers && Pair.FromCache ? " (cached)" : "");
    if (Opts.Directions && Pair.Directions &&
        !Pair.Directions->Vectors.empty())
      renderDirections(Out, *Pair.Directions, 4);
    if (Opts.Explain && Pair.Trace)
      Out += Pair.Trace->str(4);
  }
  return Out;
}

std::string edda::renderProblemReport(const DependenceProblem &P,
                                      const CascadeResult &R,
                                      const DirectionResult *Dirs,
                                      const PipelineTrace *Trace) {
  std::string Out = P.str();
  if (Trace)
    Out += Trace->str(2);
  appendf(Out, "answer: %s  [decided by %s]%s\n",
          R.Answer == DepAnswer::Independent   ? "INDEPENDENT"
          : R.Answer == DepAnswer::Dependent   ? "dependent"
                                               : "unknown",
          testKindName(R.DecidedBy),
          R.Widened ? " (widened to 128-bit)" : "");
  if (R.Witness) {
    Out += "witness x = (";
    for (unsigned J = 0; J < R.Witness->size(); ++J)
      appendf(Out, "%s%lld", J ? ", " : "",
              static_cast<long long>((*R.Witness)[J]));
    Out += ")\n";
  }
  if (Dirs)
    renderDirections(Out, *Dirs, 0);
  return Out;
}
