//===- serve/Protocol.cpp - edda-serve wire protocol ----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

using namespace edda;

const char *edda::serveOpName(ServeRequest::Op Operation) {
  switch (Operation) {
  case ServeRequest::Op::Analyze:
    return "analyze";
  case ServeRequest::Op::Problem:
    return "problem";
  case ServeRequest::Op::Edit:
    return "edit";
  case ServeRequest::Op::Stats:
    return "stats";
  case ServeRequest::Op::Ping:
    return "ping";
  case ServeRequest::Op::Checkpoint:
    return "checkpoint";
  case ServeRequest::Op::Shutdown:
    return "shutdown";
  }
  return "?";
}

static std::optional<ServeRequest::Op> opFromName(const std::string &S) {
  if (S == "analyze")
    return ServeRequest::Op::Analyze;
  if (S == "problem")
    return ServeRequest::Op::Problem;
  if (S == "edit")
    return ServeRequest::Op::Edit;
  if (S == "stats")
    return ServeRequest::Op::Stats;
  if (S == "ping")
    return ServeRequest::Op::Ping;
  if (S == "checkpoint")
    return ServeRequest::Op::Checkpoint;
  if (S == "shutdown")
    return ServeRequest::Op::Shutdown;
  return std::nullopt;
}

JsonValue ServeRequest::toJson() const {
  JsonValue O = JsonValue::object();
  O.set("id", Id);
  O.set("op", serveOpName(Operation));
  if (Operation == Op::Analyze || Operation == Op::Problem ||
      Operation == Op::Edit) {
    O.set(Operation == Op::Problem ? "problem" : "program", Payload);
    if (Operation == Op::Edit && !Session.empty())
      O.set("session", Session);
    if (Directions)
      O.set("directions", true);
    if (Explain)
      O.set("explain", true);
    if (!Widen)
      O.set("widen", false);
    if (!Prepass)
      O.set("prepass", false);
    if (!CacheMarkers)
      O.set("cache_markers", false);
    if (!PipelineSpec.empty())
      O.set("pipeline", PipelineSpec);
    if (FmBudget)
      O.set("fm_budget", FmBudget);
  }
  return O;
}

std::optional<ServeRequest>
edda::parseServeRequest(const std::string &Line, std::string *Error,
                        int64_t *IdOut) {
  std::optional<JsonValue> V = parseJson(Line, Error);
  if (!V)
    return std::nullopt;
  if (!V->isObject()) {
    if (Error)
      *Error = "request must be a JSON object";
    return std::nullopt;
  }

  ServeRequest R;
  R.Id = V->getInt("id", 0);
  if (IdOut)
    *IdOut = R.Id;

  std::string OpName = V->getString("op");
  std::optional<ServeRequest::Op> Operation = opFromName(OpName);
  if (!Operation) {
    if (Error)
      *Error = OpName.empty() ? "missing 'op' field"
                              : "unknown op '" + OpName + "'";
    return std::nullopt;
  }
  R.Operation = *Operation;

  if (R.Operation == ServeRequest::Op::Analyze ||
      R.Operation == ServeRequest::Op::Problem ||
      R.Operation == ServeRequest::Op::Edit) {
    const char *Field =
        R.Operation == ServeRequest::Op::Problem ? "problem" : "program";
    const JsonValue *Payload = V->find(Field);
    if (!Payload || !Payload->isString()) {
      if (Error)
        *Error = std::string("missing '") + Field + "' string field";
      return std::nullopt;
    }
    R.Payload = Payload->stringValue();
    R.Directions = V->getBool("directions", false);
    R.Explain = V->getBool("explain", false);
    R.Widen = V->getBool("widen", true);
    R.Prepass = V->getBool("prepass", true);
    R.CacheMarkers = V->getBool("cache_markers", true);
    R.PipelineSpec = V->getString("pipeline");
    R.Session = V->getString("session");
    int64_t Budget = V->getInt("fm_budget", 0);
    if (Budget < 0) {
      if (Error)
        *Error = "'fm_budget' must be non-negative";
      return std::nullopt;
    }
    if (Budget != 0 && R.Operation == ServeRequest::Op::Edit) {
      if (Error)
        *Error = "'fm_budget' is not accepted on edit requests: a "
                 "one-off budget would splice degraded answers into "
                 "the session's later re-analyses";
      return std::nullopt;
    }
    R.FmBudget = static_cast<uint64_t>(Budget);
  }
  return R;
}

std::optional<ServeResponse>
edda::parseServeResponse(const std::string &Line, std::string *Error) {
  std::optional<JsonValue> V = parseJson(Line, Error);
  if (!V)
    return std::nullopt;
  if (!V->isObject()) {
    if (Error)
      *Error = "response must be a JSON object";
    return std::nullopt;
  }
  ServeResponse R;
  R.Id = V->getInt("id", 0);
  R.Ok = V->getBool("ok", false);
  R.Error = V->getString("error");
  R.Text = V->getString("text");
  R.Body = std::move(*V);
  return R;
}
