//===- serve/Json.h - Minimal JSON for the serving protocol ----*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON value type plus parser and serializer,
/// just enough for the newline-delimited edda-serve protocol
/// (docs/SERVING.md). Numbers are kept as int64 when they are exact
/// integers (the protocol only uses integers); everything else follows
/// RFC 8259 closely enough for machine-generated messages: object,
/// array, string with \uXXXX escapes, number, true/false/null. No
/// external dependency — the container bakes in no JSON library and
/// the protocol does not warrant one.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SERVE_JSON_H
#define EDDA_SERVE_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace edda {

/// A parsed JSON value. Objects keep insertion order (the serializer
/// re-emits fields in the order they were set, which keeps protocol
/// messages diffable).
class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool B) : K(Kind::Bool), BoolVal(B) {}
  JsonValue(int64_t I) : K(Kind::Int), IntVal(I) {}
  JsonValue(uint64_t I) : K(Kind::Int), IntVal(static_cast<int64_t>(I)) {}
  JsonValue(int I) : K(Kind::Int), IntVal(I) {}
  JsonValue(unsigned I) : K(Kind::Int), IntVal(I) {}
  JsonValue(double D) : K(Kind::Double), DoubleVal(D) {}
  JsonValue(std::string S) : K(Kind::String), StringVal(std::move(S)) {}
  JsonValue(const char *S) : K(Kind::String), StringVal(S) {}

  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return BoolVal; }
  int64_t intValue() const {
    return K == Kind::Double ? static_cast<int64_t>(DoubleVal) : IntVal;
  }
  double doubleValue() const {
    return K == Kind::Int ? static_cast<double>(IntVal) : DoubleVal;
  }
  const std::string &stringValue() const { return StringVal; }

  /// Array access.
  const std::vector<JsonValue> &elements() const { return Elements; }
  void push(JsonValue V) { Elements.push_back(std::move(V)); }

  /// Object access. get() returns null for a missing field.
  const JsonValue *find(std::string_view Name) const;
  const JsonValue &get(std::string_view Name) const;
  void set(std::string Name, JsonValue V);

  /// Typed field helpers for protocol decoding; the fallback is
  /// returned when the field is missing or has the wrong type.
  bool getBool(std::string_view Name, bool Default = false) const;
  int64_t getInt(std::string_view Name, int64_t Default = 0) const;
  std::string getString(std::string_view Name,
                        std::string Default = "") const;

  /// Compact one-line serialization (never emits raw newlines, so a
  /// serialized value is always a valid NDJSON record).
  std::string str() const;

private:
  Kind K;
  bool BoolVal = false;
  int64_t IntVal = 0;
  double DoubleVal = 0;
  std::string StringVal;
  std::vector<JsonValue> Elements;
  std::vector<std::pair<std::string, JsonValue>> Fields;

  void serialize(std::string &Out) const;
};

/// Parses one JSON value from \p Text (surrounding whitespace allowed,
/// trailing garbage rejected). Returns nullopt and sets \p Error on
/// malformed input.
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Error = nullptr);

/// Escapes \p S as the *contents* of a JSON string literal (no quotes).
std::string jsonEscape(std::string_view S);

} // namespace edda

#endif // EDDA_SERVE_JSON_H
