//===- serve/Render.h - Shared analysis report rendering -------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical textual rendering of analysis results, shared by
/// `edda-cli` and `edda-serve` so that a served answer is bit-identical
/// to the command-line driver's output by construction — the CI
/// serve-smoke job diffs the two. Anything that prints dependence
/// pairs, direction vectors, or raw-problem decisions must go through
/// these helpers rather than hand-rolling the format.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_SERVE_RENDER_H
#define EDDA_SERVE_RENDER_H

#include "analysis/Analyzer.h"
#include "deptest/Direction.h"

#include <string>

namespace edda {

/// How a whole-program analysis report is rendered.
struct ReportOptions {
  /// Include the per-pair direction/distance block.
  bool Directions = false;
  /// Include the per-stage pipeline trace (requires
  /// AnalyzerOptions::Trace during analysis).
  bool Explain = false;
  /// Append " (cached)" to pairs served from the memo tables. The
  /// serve smoke strips these before diffing: a warm daemon cache
  /// hits where a fresh edda-cli run misses, while the answers stay
  /// identical.
  bool CacheMarkers = true;
};

/// "INDEPENDENT" / "dependent" / "unknown (assumed dependent)".
const char *depAnswerName(DepAnswer Answer);

/// The whole-program report: the "<name>: N reference pairs, M
/// unanalyzable" header plus one block per pair, exactly as edda-cli
/// prints it.
std::string renderAnalysisReport(const Program &Prog,
                                 const AnalysisResult &Result,
                                 const ReportOptions &Opts);

/// The raw-problem (`--problem` / op "problem") report: the echoed
/// problem, the optional trace, the "answer:" line with witness, and
/// the optional direction block, exactly as edda-cli prints it.
std::string renderProblemReport(const DependenceProblem &P,
                                const CascadeResult &R,
                                const DirectionResult *Dirs,
                                const PipelineTrace *Trace);

} // namespace edda

#endif // EDDA_SERVE_RENDER_H
