//===- serve/Client.cpp - edda-serve client library -----------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace edda;

std::unique_ptr<ServeClient>
ServeClient::connectUnix(const std::string &SocketPath,
                         std::string *Error) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + SocketPath;
    ::close(Fd);
    return nullptr;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) < 0) {
    if (Error)
      *Error = std::string("connect to '") + SocketPath +
               "': " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  return std::unique_ptr<ServeClient>(new ServeClient(Fd));
}

ServeClient::~ServeClient() {
  if (Fd >= 0)
    ::close(Fd);
}

bool ServeClient::send(ServeRequest &R, std::string *Error) {
  if (R.Id == 0)
    R.Id = NextId++;
  std::string Line = R.toJson().str();
  Line += '\n';
  const char *Data = Line.data();
  size_t Len = Line.size();
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

std::optional<std::string> ServeClient::readLine(std::string *Error) {
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      return Line;
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("read: ") + std::strerror(errno);
      return std::nullopt;
    }
    if (N == 0) {
      if (Error && Error->empty())
        *Error = "connection closed by server";
      return std::nullopt;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

std::optional<ServeResponse> ServeClient::receive(std::string *Error) {
  if (!Pending.empty()) {
    auto It = Pending.begin();
    ServeResponse R = std::move(It->second);
    Pending.erase(It);
    return R;
  }
  std::optional<std::string> Line = readLine(Error);
  if (!Line)
    return std::nullopt;
  return parseServeResponse(*Line, Error);
}

std::optional<ServeResponse> ServeClient::call(ServeRequest R,
                                               std::string *Error) {
  if (!send(R, Error))
    return std::nullopt;
  // Buffer other ids until ours arrives (responses may come in any
  // order — the server answers as pool workers finish).
  auto It = Pending.find(R.Id);
  while (It == Pending.end()) {
    std::optional<std::string> Line = readLine(Error);
    if (!Line)
      return std::nullopt;
    std::optional<ServeResponse> Resp =
        parseServeResponse(*Line, Error);
    if (!Resp)
      return std::nullopt;
    if (Resp->Id == R.Id)
      return Resp;
    Pending.emplace(Resp->Id, std::move(*Resp));
    It = Pending.find(R.Id);
  }
  ServeResponse Out = std::move(It->second);
  Pending.erase(It);
  return Out;
}
