//===- workload/Generator.h - Synthetic PERFECT Club -----------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates on the PERFECT Club, thirteen proprietary Fortran
/// programs we cannot ship. This generator builds a synthetic stand-in:
/// for each program it emits LoopLang source whose array reference
/// pattern mix matches the paper's Table 1 (how many dependence
/// questions each cascade test decides), whose distinct-shape pool sizes
/// match Table 3 (unique cases after memoization), and whose
/// unused-surrounding-loop redundancy matches the simple/improved ratio
/// of Table 2. The analyzer pipeline is then *measured* on this suite —
/// memoization ratios, direction-vector counts, pruning effects and
/// baseline accuracy are genuine outputs, not scripted numbers. See
/// DESIGN.md ("Substitutions") for the argument why this preserves the
/// evaluation's claims.
///
/// Case templates and the test that decides them (verified by the test
/// suite against both the cascade and the brute-force oracle):
///
///   constant   a[c1] = a[c2]                      -> array constants
///   gcd        a[2i] = a[2i+odd]                  -> extended GCD
///   svpc       a[i+d] = a[i], a[i][j] = a[j+c][i+c'] -> SVPC
///   acyclic    triangular j <= i nests            -> Acyclic
///   residue    banded j in [i-B, i+B] nests       -> Loop Residue
///   fm         a[i+j] = a[i+j+d]                  -> Fourier-Motzkin
///   symbolic   a[i+n] = a[i+2n+1], bounds 1..n    -> section 8 cases
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_WORKLOAD_GENERATOR_H
#define EDDA_WORKLOAD_GENERATOR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace edda {

/// Target decision counts for one synthetic program (the paper's
/// Table 1 row), plus symbolic-case extras for the Table 7 mode.
struct DecisionTargets {
  unsigned Constant = 0;
  unsigned Gcd = 0;
  unsigned Svpc = 0;
  unsigned Acyclic = 0;
  unsigned Residue = 0;
  unsigned Fm = 0;
};

/// Distinct-shape pool sizes (the paper's Table 3 row).
struct UniqueTargets {
  unsigned Svpc = 1;
  unsigned Acyclic = 0;
  unsigned Residue = 0;
  unsigned Fm = 0;
};

/// One synthetic PERFECT Club program description.
struct ProgramProfile {
  std::string Name;   ///< Paper's program tag (AP, CS, ...).
  unsigned Lines = 0; ///< Paper's source line count, for table output.
  DecisionTargets Table1;
  UniqueTargets Unique;
  /// simple-unique / improved-unique ratio (Table 2, with bounds):
  /// controls how many unused-loop wrap variants each shape gets.
  double WrapFactor = 1.0;
  /// Unused loops wrapped around every case (programs like LG and TI
  /// bury their references under deep surrounding nests — the source
  /// of their huge unpruned direction-vector counts in Table 4).
  unsigned WrapDepth = 0;
  /// Extra symbolic cases (Table 7 mode): decided by SVPC / Acyclic /
  /// Loop Residue respectively.
  unsigned SymSvpc = 0;
  unsigned SymAcyclic = 0;
  unsigned SymResidue = 0;
};

/// The thirteen program profiles with numbers from the paper's tables.
const std::vector<ProgramProfile> &perfectClubProfiles();

/// Generator configuration.
struct GeneratorOptions {
  uint64_t Seed = 42;
  /// Emit the symbolic extra cases (Table 7 runs).
  bool IncludeSymbolic = false;
  /// Scales every case count (tests use small scales for speed).
  double Scale = 1.0;
  /// Caps the profiles' unused-loop wrap depth. Interpreter-based
  /// tests lower this: every wrap level multiplies a case's executed
  /// iterations by its bound.
  unsigned MaxWrapDepth = 8;
};

/// Emits LoopLang source for one profile.
std::string generateProgramSource(const ProgramProfile &Profile,
                                  const GeneratorOptions &Opts);

/// Emits the whole suite as (name, source) pairs.
std::vector<std::pair<std::string, std::string>>
generatePerfectClubSuite(const GeneratorOptions &Opts);

class Program;
class SplitRng;

/// Applies one random structural edit to \p Prog in place — the edit
/// model behind the fuzzer's `incr` axis and the incremental-edit
/// bench. Kinds: add a constant to one left-hand-side subscript, wrap
/// an assignment's right-hand side in "+ c" (no array reference
/// changes, so every touched pair should be reused verbatim), bump a
/// loop bound by one, insert a clone of an existing assignment, delete
/// an assignment (never the last one in a body). The edited program
/// stays valid LoopLang: print() -> parse round-trips. Deterministic
/// in \p Rng; returns a short description of the edit performed.
std::string applyRandomEdit(Program &Prog, SplitRng &Rng);

/// Options for unconstrained random LoopLang programs — the fuzzer's
/// program-level inputs. Unlike the profile templates above, these are
/// not tied to any paper table: nests mix triangular, banded,
/// degenerate and symbolic bounds, and subscripts are arbitrary small
/// affine forms (including coupled multi-variable terms).
struct RandomProgramOptions {
  unsigned MaxDepth = 3;    ///< Deepest loop nesting.
  unsigned MaxTopStmts = 4; ///< Top-level loop nests per program.
  unsigned MaxArrays = 3;   ///< Arrays declared (rank 1 or 2).
  int64_t MaxBound = 8;     ///< Magnitude cap for constant loop bounds.
  bool AllowSymbolic = true; ///< Allow "read n" symbolic bounds and
                             ///< subscript terms.
};

/// Emits one random LoopLang program. Always parseable; whether any
/// reference pair depends is arbitrary. Deterministic in \p Rng.
std::string generateRandomProgram(SplitRng &Rng,
                                  const RandomProgramOptions &Opts = {});

/// A tiny deterministic xorshift64* generator (reproducible across
/// platforms, unlike <random> distributions).
class SplitRng {
public:
  explicit SplitRng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b9) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform value in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    return next() % Bound;
  }

private:
  uint64_t State;
};

} // namespace edda

#endif // EDDA_WORKLOAD_GENERATOR_H
