//===- workload/Generator.cpp - Synthetic PERFECT Club --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "ir/Program.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cmath>

using namespace edda;

const std::vector<ProgramProfile> &edda::perfectClubProfiles() {
  // Table 1 decision counts, Table 3 unique counts, Table 2
  // simple/improved ratios, and Table 7 - Table 5 symbolic deltas, all
  // transcribed from the paper.
  static const std::vector<ProgramProfile> Profiles = {
      {"AP", 6104, {229, 91, 613, 0, 0, 0}, {27, 0, 0, 0}, 1.45, 0, 6,
       16, 0},
      {"CS", 18520, {50, 0, 127, 15, 0, 0}, {14, 6, 0, 0}, 1.15, 0, 6,
       8, 5},
      {"LG", 2327, {6961, 0, 73, 0, 0, 0}, {23, 0, 0, 0}, 1.52, 3, 4, 0,
       0},
      {"LW", 1237, {54, 0, 34, 43, 0, 0}, {15, 2, 0, 0}, 1.06, 0, 0, 0,
       0},
      {"MT", 3785, {49, 0, 326, 0, 0, 0}, {14, 0, 0, 0}, 1.49, 0, 5, 0,
       0},
      {"NA", 3976, {45, 0, 679, 202, 1, 2}, {48, 11, 1, 1}, 1.14, 0, 7,
       45, 0},
      {"OC", 2739, {2, 7, 36, 0, 0, 0}, {5, 0, 0, 0}, 1.40, 0, 0, 1, 0},
      {"SD", 7607, {949, 0, 526, 17, 5, 12}, {36, 6, 3, 4}, 1.08, 0, 0,
       0, 0},
      {"SM", 2759, {1004, 98, 264, 0, 0, 0}, {8, 0, 0, 0}, 1.63, 0, 0,
       0, 0},
      {"SR", 3970, {1679, 0, 1290, 0, 0, 0}, {14, 0, 0, 0}, 1.45, 0, 7,
       1, 1},
      {"TF", 2020, {801, 6, 826, 0, 0, 0}, {20, 0, 0, 0}, 1.21, 0, 20,
       0, 0},
      {"TI", 484, {0, 0, 4, 42, 0, 0}, {3, 8, 0, 0}, 1.46, 1, 0, 0, 0},
      {"WS", 3884, {36, 182, 378, 4, 0, 160}, {35, 1, 0, 27}, 1.22, 0,
       0, 4, 0},
  };
  return Profiles;
}

namespace {

/// Loop bound sizes cycled through by the shape pools.
constexpr int64_t SizeList[] = {10, 20, 50, 100};
constexpr unsigned NumSizes = 4;

unsigned scaled(unsigned Count, double Scale) {
  if (Count == 0)
    return 0;
  double V = Count * Scale;
  return std::max<unsigned>(1, static_cast<unsigned>(std::lround(V)));
}

/// Emits source for the synthetic cases of one program.
class Emitter {
public:
  Emitter(const ProgramProfile &Profile, const GeneratorOptions &Opts)
      : Profile(Profile), Opts(Opts),
        Rng(Opts.Seed ^ hashVector({static_cast<int64_t>(
                            Profile.Name.empty() ? 0 : Profile.Name[0] +
                                                           Profile.Lines)})) {
  }

  std::string run() {
    // Decision targets -> case counts. Every non-constant template also
    // produces one self output-dependence problem; for the gcd template
    // that self problem is SVPC-decided, so the SVPC case budget shrinks
    // accordingly (see Generator.h).
    const DecisionTargets &T = Profile.Table1;
    unsigned GcdCases = scaled(T.Gcd, Opts.Scale);
    // FM cases mix the cross-nest variant ({Fm:1, Svpc:1} decisions)
    // with the in-nest variant ({Fm:2}), three to one, so a case
    // yields 1.25 FM decisions and spills 0.75 SVPC decisions.
    unsigned FmCases = T.Fm == 0 ? 0 : (T.Fm * 4 + 2) / 5;
    unsigned FmSvpcSpill = (FmCases * 3) / 4;
    unsigned SvpcDecisions = T.Svpc > T.Gcd + FmSvpcSpill
                                 ? T.Svpc - T.Gcd - FmSvpcSpill
                                 : 0;
    emitKind(Kind::Constant, scaled((T.Constant + 1) / 2, Opts.Scale),
             std::max(1u, scaled((T.Constant + 19) / 20, Opts.Scale)));
    emitKind(Kind::Gcd, GcdCases,
             poolFor(std::max(1u, T.Gcd / 10), GcdCases));
    emitKind(Kind::Svpc, scaled((SvpcDecisions + 1) / 2, Opts.Scale),
             poolFor(Profile.Unique.Svpc,
                     scaled((SvpcDecisions + 1) / 2, Opts.Scale)));
    emitKind(Kind::Acyclic, scaled((T.Acyclic + 1) / 2, Opts.Scale),
             poolFor(Profile.Unique.Acyclic,
                     scaled((T.Acyclic + 1) / 2, Opts.Scale)));
    emitKind(Kind::Residue, scaled((T.Residue + 1) / 2, Opts.Scale),
             poolFor(Profile.Unique.Residue,
                     scaled((T.Residue + 1) / 2, Opts.Scale)));
    emitKind(Kind::Fm, scaled(FmCases, Opts.Scale),
             poolFor(Profile.Unique.Fm, scaled(FmCases, Opts.Scale)));
    if (Opts.IncludeSymbolic) {
      emitKind(Kind::SymSvpc, scaled((Profile.SymSvpc + 1) / 2,
                                     Opts.Scale),
               std::max(1u, scaled((Profile.SymSvpc + 3) / 4,
                                   Opts.Scale)));
      emitKind(Kind::SymAcyclic, scaled((Profile.SymAcyclic + 1) / 2,
                                        Opts.Scale),
               std::max(1u, scaled((Profile.SymAcyclic + 3) / 4,
                                   Opts.Scale)));
      emitKind(Kind::SymResidue, scaled((Profile.SymResidue + 1) / 2,
                                        Opts.Scale),
               std::max(1u, scaled((Profile.SymResidue + 3) / 4,
                                   Opts.Scale)));
    }

    std::string Out = "program " + Profile.Name + "\n";
    Out += Decls;
    if (NeedSymbolic)
      Out += "  read n\n";
    Out += Body;
    Out += "end\n";
    return Out;
  }

private:
  enum class Kind {
    Constant,
    Gcd,
    Svpc,
    Acyclic,
    Residue,
    Fm,
    SymSvpc,
    SymAcyclic,
    SymResidue,
  };

  const ProgramProfile &Profile;
  const GeneratorOptions &Opts;
  SplitRng Rng;
  std::string Decls;
  std::string Body;
  unsigned NextArray = 0;
  bool NeedSymbolic = false;

  unsigned poolFor(unsigned UniqueTarget, unsigned Cases) {
    if (Cases == 0)
      return 0;
    unsigned Pool = std::max<unsigned>(
        1, static_cast<unsigned>(std::lround(UniqueTarget * Opts.Scale)));
    return std::min(Pool, Cases);
  }

  std::string newArray(unsigned Rank) {
    std::string Name = "a" + std::to_string(NextArray++);
    Decls += "  array " + Name;
    for (unsigned R = 0; R < Rank; ++R)
      Decls += "[1024]";
    Decls += "\n";
    return Name;
  }

  /// Number of unused-loop wrap variants for one shape. The Table 2
  /// simple/improved ratio is fractional (e.g. 1.45), so a matching
  /// fraction of the shapes get an extra variant.
  unsigned wrapVariants(unsigned Shape) const {
    double F = Profile.WrapFactor < 1.0 ? 1.0 : Profile.WrapFactor;
    unsigned Whole = static_cast<unsigned>(F);
    double Frac = F - Whole;
    // Deterministic per-shape coin weighted by the fractional part.
    unsigned Hash = (Shape * 2654435761u) % 100;
    return Whole + (Hash < Frac * 100.0 ? 1 : 0);
  }

  void emitKind(Kind K, unsigned Cases, unsigned Pool) {
    if (Cases == 0 || Pool == 0)
      return;
    for (unsigned C = 0; C < Cases; ++C) {
      unsigned Shape = C % Pool;
      unsigned Variant = (C / Pool) % wrapVariants(Shape);
      emitCase(K, Shape, Variant);
    }
  }

  /// Number of unused loops wrapped around this emission: the
  /// profile's constant depth plus one more for non-zero variants
  /// (whose bound also varies, so simple memo keys differ).
  unsigned wrapDepthFor(unsigned Variant) const {
    unsigned Depth = std::min(Profile.WrapDepth, Opts.MaxWrapDepth);
    return Depth + (Variant > 0 ? 1 : 0);
  }

  void open(unsigned Variant, std::string &Indent) {
    unsigned Depth = wrapDepthFor(Variant);
    for (unsigned D = 0; D < Depth; ++D) {
      std::string Var = D == 0 ? "w" : "w" + std::to_string(D + 1);
      int64_t Bound = D == 0 && Variant > 0 ? 10 * Variant : 10;
      Body += Indent + "for " + Var + " = 1 to " +
              std::to_string(Bound) + " do\n";
      Indent += "  ";
    }
  }
  void close(unsigned Variant, std::string &Indent) {
    unsigned Depth = wrapDepthFor(Variant);
    for (unsigned D = 0; D < Depth; ++D) {
      Indent.resize(Indent.size() - 2);
      Body += Indent + "end\n";
    }
  }

  void emitCase(Kind K, unsigned Shape, unsigned Variant) {
    std::string Indent = "  ";
    open(Variant, Indent);
    int64_t N = SizeList[Shape % NumSizes];
    int64_t S = Shape / NumSizes;
    switch (K) {
    case Kind::Constant: {
      // a[c1] = a[c2]: dependent when the constants collide.
      std::string A = newArray(1);
      int64_t C1 = 1 + static_cast<int64_t>(Shape);
      int64_t C2 = Shape % 4 == 0 ? C1 : C1 + 1 + (Shape % 7);
      Body += Indent + "for i = 1 to 10 do\n";
      Body += Indent + "  " + A + "[" + std::to_string(C1) + "] = " + A +
              "[" + std::to_string(C2) + "] + 1\n";
      Body += Indent + "end\n";
      break;
    }
    case Kind::Gcd: {
      if (Shape % 2 == 1) {
        // Coupled inconsistent subscripts: each dimension alone is
        // solvable (the traditional per-dimension GCD/Banerjee baseline
        // assumes dependence) but the joint system is not — the
        // extended GCD test proves independence. These cases carry the
        // section 7 accuracy gap.
        std::string A = newArray(2);
        int64_t C = 1 + Shape / 2;
        Body += Indent + "for i = 1 to 100 do\n";
        Body += Indent + "  " + A + "[i][i + " + std::to_string(C) +
                "] = " + A + "[i][i] + 1\n";
        Body += Indent + "end\n";
        break;
      }
      std::string A = newArray(1);
      // Fixed loop size: the template's self pairs then collapse to one
      // memoized SVPC problem, as real repeated references would.
      int64_t D = 2 * (Shape / 2) + 1; // odd: 2i never equals 2i' + D
      Body += Indent + "for i = 1 to 100 do\n";
      Body += Indent + "  " + A + "[2*i] = " + A + "[2*i + " +
              std::to_string(D) + "] + 1\n";
      Body += Indent + "end\n";
      break;
    }
    case Kind::Svpc: {
      std::string A;
      if (Shape % 5 == 1) {
        // Coupled permutation subscripts (the paper's worked example):
        // still one variable per constraint after GCD preprocessing.
        A = newArray(2);
        int64_t C1 = 1 + S;
        int64_t C2 = C1 + (Shape % 2);
        Body += Indent + "for i = 1 to " + std::to_string(N) + " do\n";
        Body += Indent + "  for j = 1 to " + std::to_string(N) + " do\n";
        Body += Indent + "    " + A + "[i][j] = " + A + "[j + " +
                std::to_string(C1) + "][i + " + std::to_string(C2) +
                "] + 1\n";
        Body += Indent + "  end\n";
        Body += Indent + "end\n";
      } else {
        A = newArray(1);
        // Mostly dependent small strides; every fifth shape is out of
        // range and independent.
        int64_t D = Shape % 5 == 4 ? N + 1 + S : 1 + S;
        Body += Indent + "for i = 1 to " + std::to_string(N) + " do\n";
        Body += Indent + "  " + A + "[i + " + std::to_string(D) +
                "] = " + A + "[i] + 1\n";
        Body += Indent + "end\n";
      }
      break;
    }
    case Kind::Acyclic: {
      // Triangular nest: the j <= i bound is the multi-variable
      // constraint the Acyclic test eliminates.
      std::string A = newArray(1);
      int64_t D = Shape % 4 == 3 ? N + S : 1 + S % (N - 1);
      Body += Indent + "for i = 1 to " + std::to_string(N) + " do\n";
      Body += Indent + "  for j = 1 to i do\n";
      Body += Indent + "    " + A + "[j] = " + A + "[j + " +
              std::to_string(D) + "] + 1\n";
      Body += Indent + "  end\n";
      Body += Indent + "end\n";
      break;
    }
    case Kind::Residue: {
      // Banded nest: j in [i-B, i+B] creates a difference-constraint
      // cycle only the Loop Residue test untangles.
      std::string A = newArray(1);
      int64_t B = 2 + Shape % 3;
      int64_t D = Shape % 4 == 3 ? 2 * B + N + S : S % (2 * B + 1);
      Body += Indent + "for i = 1 to " + std::to_string(N) + " do\n";
      Body += Indent + "  for j = i - " + std::to_string(B) + " to i + " +
              std::to_string(B) + " do\n";
      Body += Indent + "    " + A + "[j] = " + A + "[j + " +
              std::to_string(D) + "] + 1\n";
      Body += Indent + "  end\n";
      Body += Indent + "end\n";
      break;
    }
    case Kind::Fm: {
      std::string A = newArray(1);
      if (Shape % 4 != 3) {
        // Cross-nest coupling with mixed coefficients (2 vs 3): after
        // GCD elimination the bounds become two-variable constraints
        // with unequal magnitudes, which only Fourier-Motzkin handles.
        // No common loops, so direction testing costs a single root
        // query — the common case in the paper's FM column.
        bool Indep = Shape % 8 >= 4;
        int64_t D = Indep ? 2 * N + 1 + S : 2 * (S % (N - 2));
        Body += Indent + "for i = 1 to " + std::to_string(N) + " do\n";
        Body += Indent + "  " + A + "[2*i] = 1\n";
        Body += Indent + "end\n";
        Body += Indent + "for i2 = 1 to " + std::to_string(N) + " do\n";
        Body += Indent + "  for j2 = 1 to " + std::to_string(N) +
                " do\n";
        Body += Indent + "    s = s + " + A + "[i2 + 3*j2 + " +
                std::to_string(D) + "]\n";
        Body += Indent + "  end\n";
        Body += Indent + "end\n";
        break;
      }
      // Coupled i+j subscripts inside one nest: three-variable
      // constraints in both directions, refined over two common loops.
      int64_t D = Shape % 8 == 7 ? 2 * N - 1 + S : 1 + S % (2 * N - 2);
      Body += Indent + "for i = 1 to " + std::to_string(N) + " do\n";
      Body += Indent + "  for j = 1 to " + std::to_string(N) + " do\n";
      Body += Indent + "    " + A + "[i + j] = " + A + "[i + j + " +
              std::to_string(D) + "] + 1\n";
      Body += Indent + "  end\n";
      Body += Indent + "end\n";
      break;
    }
    case Kind::SymSvpc: {
      // The symbolic term cancels in the subscript difference.
      NeedSymbolic = true;
      std::string A = newArray(1);
      int64_t D = 1 + static_cast<int64_t>(Shape);
      Body += Indent + "for i = 1 to " + std::to_string(N) + " do\n";
      Body += Indent + "  " + A + "[i + n] = " + A + "[i + n + " +
              std::to_string(D) + "] + 1\n";
      Body += Indent + "end\n";
      break;
    }
    case Kind::SymAcyclic: {
      // Symbolic upper bound: i <= n is the one-directional
      // multi-variable constraint.
      NeedSymbolic = true;
      std::string A = newArray(1);
      int64_t D = 1 + static_cast<int64_t>(Shape);
      Body += Indent + "for i = 1 to n do\n";
      Body += Indent + "  " + A + "[i] = " + A + "[i + " +
              std::to_string(D) + "] + 1\n";
      Body += Indent + "end\n";
      break;
    }
    case Kind::SymResidue: {
      // The paper's section 8 example: i + n vs i' + 2n + 1 leaves a
      // two-variable cycle between i and n.
      NeedSymbolic = true;
      std::string A = newArray(1);
      int64_t D = 1 + static_cast<int64_t>(Shape);
      Body += Indent + "for i = 1 to " + std::to_string(N) + " do\n";
      Body += Indent + "  " + A + "[i + n] = " + A + "[i + 2*n + " +
              std::to_string(D) + "] + 1\n";
      Body += Indent + "end\n";
      break;
    }
    }
    close(Variant, Indent);
  }
};

} // namespace

std::string edda::generateProgramSource(const ProgramProfile &Profile,
                                        const GeneratorOptions &Opts) {
  return Emitter(Profile, Opts).run();
}

std::vector<std::pair<std::string, std::string>>
edda::generatePerfectClubSuite(const GeneratorOptions &Opts) {
  std::vector<std::pair<std::string, std::string>> Suite;
  for (const ProgramProfile &Profile : perfectClubProfiles())
    Suite.push_back(
        {Profile.Name, generateProgramSource(Profile, Opts)});
  return Suite;
}

namespace {

/// Emits one unconstrained random program for the fuzzer.
class RandomEmitter {
public:
  RandomEmitter(SplitRng &Rng, const RandomProgramOptions &Opts)
      : Rng(Rng), Opts(Opts) {}

  std::string run() {
    unsigned NumArrays = 1 + Rng.below(std::max(1u, Opts.MaxArrays));
    for (unsigned A = 0; A < NumArrays; ++A)
      Ranks.push_back(1 + static_cast<unsigned>(Rng.below(2)));

    std::string Body;
    unsigned Stmts = 1 + Rng.below(std::max(1u, Opts.MaxTopStmts));
    for (unsigned S = 0; S < Stmts; ++S)
      Body += emitStmt(1);

    std::string Out = "program fuzz\n";
    for (unsigned A = 0; A < Ranks.size(); ++A) {
      Out += "  array a" + std::to_string(A);
      for (unsigned R = 0; R < Ranks[A]; ++R)
        Out += "[4096]";
      Out += "\n";
    }
    if (UsedSymbolic)
      Out += "  read n\n";
    Out += Body;
    Out += "end\n";
    return Out;
  }

private:
  SplitRng &Rng;
  const RandomProgramOptions &Opts;
  std::vector<unsigned> Ranks;
  std::vector<std::string> Scope; ///< In-scope loop variables.
  unsigned NextVar = 0;
  bool UsedSymbolic = false;

  int64_t smallConst() { return static_cast<int64_t>(Rng.below(7)) - 3; }

  /// Appends " + c" / " - c" to \p E (nothing for c == 0).
  static void addConst(std::string &E, int64_t C) {
    if (C > 0)
      E += " + " + std::to_string(C);
    else if (C < 0)
      E += " - " + std::to_string(-C);
  }

  /// A random affine expression over the in-scope loop variables (and
  /// occasionally the symbolic constant n).
  std::string affine() {
    std::string E;
    for (const std::string &Var : Scope) {
      if (Rng.below(100) >= 45)
        continue;
      int64_t C = 1 + static_cast<int64_t>(Rng.below(3));
      std::string Term =
          C == 1 ? Var : std::to_string(C) + "*" + Var;
      E += E.empty() ? Term : " + " + Term;
    }
    if (Opts.AllowSymbolic && Rng.below(100) < 15) {
      UsedSymbolic = true;
      int64_t C = 1 + static_cast<int64_t>(Rng.below(2));
      std::string Term = C == 1 ? std::string("n") : "2*n";
      E += E.empty() ? Term : " + " + Term;
    }
    if (E.empty())
      return std::to_string(1 + Rng.below(9));
    addConst(E, smallConst());
    return E;
  }

  std::string subscripts(unsigned Array) {
    std::string S;
    for (unsigned R = 0; R < Ranks[Array]; ++R)
      S += "[" + affine() + "]";
    return S;
  }

  std::string indent(unsigned Depth) {
    return std::string(2 * Depth, ' ');
  }

  std::string emitAssign(unsigned Depth) {
    unsigned Lhs = static_cast<unsigned>(Rng.below(Ranks.size()));
    if (Rng.below(100) < 12) {
      // Scalar accumulation reading an array (a read-only pair source).
      return indent(Depth) + "s = s + a" + std::to_string(Lhs) +
             subscripts(Lhs) + "\n";
    }
    unsigned Rhs = Rng.below(100) < 70
                       ? Lhs
                       : static_cast<unsigned>(Rng.below(Ranks.size()));
    return indent(Depth) + "a" + std::to_string(Lhs) +
           subscripts(Lhs) + " = a" + std::to_string(Rhs) +
           subscripts(Rhs) + " + 1\n";
  }

  std::string emitLoop(unsigned Depth) {
    std::string Var = "v" + std::to_string(NextVar++);
    int64_t MaxB = std::max<int64_t>(2, Opts.MaxBound);

    std::string Lo, Hi;
    unsigned Shape = static_cast<unsigned>(Rng.below(100));
    if (!Scope.empty() && Shape < 20) {
      // Triangular: couple the upper bound to an outer variable.
      const std::string &Outer = Scope[Rng.below(Scope.size())];
      Lo = "1";
      Hi = Outer;
      addConst(Hi, smallConst());
    } else if (!Scope.empty() && Shape < 35) {
      // Banded: a window around an outer variable.
      const std::string &Outer = Scope[Rng.below(Scope.size())];
      int64_t B = 1 + static_cast<int64_t>(Rng.below(3));
      Lo = Outer + " - " + std::to_string(B);
      Hi = Outer + " + " + std::to_string(B);
    } else if (Opts.AllowSymbolic && Shape < 47) {
      // Symbolic extent (the paper's section 8 shape).
      UsedSymbolic = true;
      Lo = "1";
      Hi = "n";
    } else if (Shape < 52) {
      // Degenerate: empty on its face.
      Lo = std::to_string(2 + Rng.below(3));
      Hi = "1";
    } else {
      int64_t L = 1 + static_cast<int64_t>(Rng.below(3));
      Lo = std::to_string(L);
      Hi = std::to_string(L + 1 +
                          static_cast<int64_t>(Rng.below(MaxB)));
    }

    std::string Out = indent(Depth) + "for " + Var + " = " + Lo +
                      " to " + Hi + " do\n";
    Scope.push_back(Var);
    unsigned BodyStmts = 1 + Rng.below(2);
    for (unsigned S = 0; S < BodyStmts; ++S)
      Out += emitStmt(Depth + 1);
    Scope.pop_back();
    Out += indent(Depth) + "end\n";
    return Out;
  }

  std::string emitStmt(unsigned Depth) {
    bool CanNest = Depth <= Opts.MaxDepth;
    if (CanNest && (Scope.empty() || Rng.below(100) < 55))
      return emitLoop(Depth);
    return emitAssign(Depth);
  }
};

} // namespace

std::string
edda::generateRandomProgram(SplitRng &Rng,
                            const RandomProgramOptions &Opts) {
  return RandomEmitter(Rng, Opts).run();
}

//===----------------------------------------------------------------------===//
// Random edits (incremental re-analysis)
//===----------------------------------------------------------------------===//

namespace {

/// Mutable edit sites: every assignment with its owning body (so
/// insert/delete can splice the statement list) and every loop.
struct EditSites {
  struct AssignSite {
    std::vector<StmtPtr> *ParentBody;
    size_t Index;
  };
  std::vector<AssignSite> Assigns;
  std::vector<LoopStmt *> Loops;
};

void collectEditSites(std::vector<StmtPtr> &Body, EditSites &Out) {
  for (size_t I = 0; I < Body.size(); ++I) {
    if (Body[I]->kind() == StmtKind::Loop) {
      LoopStmt &L = asLoop(*Body[I]);
      Out.Loops.push_back(&L);
      collectEditSites(L.body(), Out);
    } else {
      Out.Assigns.push_back({&Body, I});
    }
  }
}

} // namespace

std::string edda::applyRandomEdit(Program &Prog, SplitRng &Rng) {
  EditSites Sites;
  collectEditSites(Prog.body(), Sites);
  if (Sites.Assigns.empty())
    return "none (no assignments)";

  // Retry until a kind applies; every program with an assignment admits
  // at least the rhs tweak, so this terminates.
  for (;;) {
    unsigned Kind = static_cast<unsigned>(Rng.below(5));
    switch (Kind) {
    case 0: { // Left-hand-side subscript: sub -> sub + c.
      EditSites::AssignSite Site =
          Sites.Assigns[Rng.below(Sites.Assigns.size())];
      AssignStmt &A = asAssign(**(Site.ParentBody->begin() +
                                  static_cast<long>(Site.Index)));
      if (!A.isArrayLhs())
        continue;
      unsigned Dim = static_cast<unsigned>(
          Rng.below(A.lhsSubscripts().size()));
      int64_t C = 1 + static_cast<int64_t>(Rng.below(2));
      A.setLhsSubscript(Dim, Expr::makeAdd(A.lhsSubscripts()[Dim],
                                           Expr::makeConst(C)));
      return "subscript+" + std::to_string(C);
    }
    case 1: { // Right-hand side: rhs -> rhs + c (references untouched).
      EditSites::AssignSite Site =
          Sites.Assigns[Rng.below(Sites.Assigns.size())];
      AssignStmt &A = asAssign(**(Site.ParentBody->begin() +
                                  static_cast<long>(Site.Index)));
      int64_t C = 1 + static_cast<int64_t>(Rng.below(3));
      A.setRhs(Expr::makeAdd(A.rhs(), Expr::makeConst(C)));
      return "rhs+" + std::to_string(C);
    }
    case 2: { // Loop bound: lo or hi bumped by one.
      if (Sites.Loops.empty())
        continue;
      LoopStmt &L = *Sites.Loops[Rng.below(Sites.Loops.size())];
      if (Rng.below(2) == 0) {
        L.setLo(Expr::makeAdd(L.lo(), Expr::makeConst(1)));
        return "bound-lo+1";
      }
      L.setHi(Expr::makeAdd(L.hi(), Expr::makeConst(1)));
      return "bound-hi+1";
    }
    case 3: { // Insert a clone of an existing assignment.
      EditSites::AssignSite Site =
          Sites.Assigns[Rng.below(Sites.Assigns.size())];
      StmtPtr Clone = (*Site.ParentBody)[Site.Index]->clone();
      size_t At = Rng.below(Site.ParentBody->size() + 1);
      Site.ParentBody->insert(Site.ParentBody->begin() +
                                  static_cast<long>(At),
                              std::move(Clone));
      return "insert@" + std::to_string(At);
    }
    default: { // Delete an assignment (never the last in its body).
      EditSites::AssignSite Site =
          Sites.Assigns[Rng.below(Sites.Assigns.size())];
      if (Site.ParentBody->size() <= 1 || Sites.Assigns.size() <= 1)
        continue;
      Site.ParentBody->erase(Site.ParentBody->begin() +
                             static_cast<long>(Site.Index));
      return "delete@" + std::to_string(Site.Index);
    }
    }
  }
}
