//===- analysis/DependenceGraph.cpp - Statement dependence graph ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"

#include "analysis/Parallelizer.h"

#include <algorithm>
#include <map>

using namespace edda;

const char *edda::depEdgeKindName(DepEdgeKind Kind) {
  switch (Kind) {
  case DepEdgeKind::Flow:
    return "flow";
  case DepEdgeKind::Anti:
    return "anti";
  case DepEdgeKind::Output:
    return "output";
  }
  return "unknown";
}

bool edda::leadingDirectionIsReversed(const DirVector &V) {
  for (Dir D : V) {
    if (D == Dir::Equal)
      continue;
    return D == Dir::Greater;
  }
  return false;
}

DirVector edda::flipVector(const DirVector &V) {
  DirVector Out = V;
  for (Dir &D : Out) {
    if (D == Dir::Less)
      D = Dir::Greater;
    else if (D == Dir::Greater)
      D = Dir::Less;
  }
  return Out;
}

namespace {

/// True when every component is '=' (a loop-independent dependence).
bool allEqual(const DirVector &V) {
  return std::all_of(V.begin(), V.end(),
                     [](Dir D) { return D == Dir::Equal; });
}

/// True when the vector's leading definite direction is '*' before any
/// '<' or '>' — its orientation is ambiguous and both edges exist.
bool leadingIsStar(const DirVector &V) {
  for (Dir D : V) {
    if (D == Dir::Equal)
      continue;
    return D == Dir::Any;
  }
  return false;
}

DepEdgeKind classify(bool SrcIsWrite, bool DstIsWrite) {
  if (SrcIsWrite && DstIsWrite)
    return DepEdgeKind::Output;
  if (SrcIsWrite)
    return DepEdgeKind::Flow;
  return DepEdgeKind::Anti;
}

/// Execution order of two references within one iteration: reads of a
/// statement execute before its write; distinct statements follow
/// their collection (program) order, passed in via indices.
bool executesBefore(const ArrayReference &A, unsigned IdxA,
                    const ArrayReference &B, unsigned IdxB) {
  if (A.Stmt == B.Stmt) {
    if (A.IsWrite != B.IsWrite)
      return !A.IsWrite; // the read goes first
    return A.Slot < B.Slot;
  }
  return IdxA < IdxB;
}

} // namespace

DependenceGraph DependenceGraph::build(Program &Prog,
                                       DependenceAnalyzer &Analyzer) {
  AnalyzerOptions Opts = Analyzer.options();
  Opts.ComputeDirections = true;
  DependenceAnalyzer DirAnalyzer(Opts);
  AnalysisResult Analysis = DirAnalyzer.analyze(Prog);
  return buildFromResult(Analysis);
}

DependenceGraph
DependenceGraph::buildFromResult(const AnalysisResult &Analysis) {
  DependenceGraph Graph;
  Graph.Refs = Analysis.Refs;

  // Aggregate edges per (src, dst, kind).
  std::map<std::tuple<unsigned, unsigned, int>, unsigned> EdgeIndex;
  auto AddVector = [&](unsigned Src, unsigned Dst,
                       const DependencePair &Pair, const DirVector &V,
                       bool Flipped, bool Exact) {
    DepEdgeKind Kind = classify(Graph.Refs[Src].IsWrite,
                                Graph.Refs[Dst].IsWrite);
    auto Key = std::make_tuple(Src, Dst, static_cast<int>(Kind));
    auto It = EdgeIndex.find(Key);
    if (It == EdgeIndex.end()) {
      DepEdge Edge;
      Edge.Src = Src;
      Edge.Dst = Dst;
      Edge.Kind = Kind;
      Edge.CommonLoops = Pair.CommonLoops;
      Edge.Distances.assign(Pair.CommonLoops.size(), std::nullopt);
      if (Pair.Directions)
        for (unsigned K = 0;
             K < Pair.Directions->Distances.size() &&
             K < Edge.Distances.size();
             ++K)
          if (Pair.Directions->Distances[K])
            Edge.Distances[K] = Flipped
                                    ? -*Pair.Directions->Distances[K]
                                    : *Pair.Directions->Distances[K];
      It = EdgeIndex.emplace(Key, Graph.Edges.size()).first;
      Graph.Edges.push_back(std::move(Edge));
    }
    DepEdge &Edge = Graph.Edges[It->second];
    Edge.Exact = Edge.Exact && Exact;
    DirVector Stored = Flipped ? flipVector(V) : V;
    if (std::find(Edge.Vectors.begin(), Edge.Vectors.end(), Stored) ==
        Edge.Vectors.end())
      Edge.Vectors.push_back(std::move(Stored));
  };

  for (const DependencePair &Pair : Analysis.Pairs) {
    if (Pair.Answer == DepAnswer::Independent)
      continue;
    unsigned A = Pair.RefA;
    unsigned B = Pair.RefB;
    bool Exact = Pair.Exact;

    if (!Pair.Directions) {
      // Unanalyzable: a maximally conservative pair of edges.
      DirVector Any(Pair.CommonLoops.size(), Dir::Any);
      AddVector(A, B, Pair, Any, /*Flipped=*/false, /*Exact=*/false);
      if (A != B)
        AddVector(B, A, Pair, Any, /*Flipped=*/false, /*Exact=*/false);
      continue;
    }

    for (const DirVector &V : Pair.Directions->Vectors) {
      if (A == B) {
        // Self pair: vectors come in mirror pairs; keep the forward
        // ones, and drop the trivial all-'=' self access.
        if (allEqual(V) || leadingDirectionIsReversed(V))
          continue;
        AddVector(A, A, Pair, V, /*Flipped=*/false, Exact);
        continue;
      }
      if (allEqual(V)) {
        bool AFirst = executesBefore(Graph.Refs[A], A, Graph.Refs[B], B);
        AddVector(AFirst ? A : B, AFirst ? B : A, Pair, V,
                  /*Flipped=*/false, Exact);
        continue;
      }
      if (leadingIsStar(V)) {
        // Ambiguous orientation: both edges exist.
        AddVector(A, B, Pair, V, /*Flipped=*/false, Exact);
        AddVector(B, A, Pair, V, /*Flipped=*/true, Exact);
        continue;
      }
      if (leadingDirectionIsReversed(V))
        AddVector(B, A, Pair, V, /*Flipped=*/true, Exact);
      else
        AddVector(A, B, Pair, V, /*Flipped=*/false, Exact);
    }
  }
  return Graph;
}

std::vector<const DepEdge *>
DependenceGraph::edgesUnder(const LoopStmt *Loop) const {
  std::vector<const DepEdge *> Out;
  for (const DepEdge &Edge : Edges)
    if (std::find(Edge.CommonLoops.begin(), Edge.CommonLoops.end(),
                  Loop) != Edge.CommonLoops.end())
      Out.push_back(&Edge);
  return Out;
}

bool DependenceGraph::carries(const LoopStmt *Loop) const {
  for (const DepEdge &Edge : Edges) {
    auto It = std::find(Edge.CommonLoops.begin(), Edge.CommonLoops.end(),
                        Loop);
    if (It == Edge.CommonLoops.end())
      continue;
    unsigned Level =
        static_cast<unsigned>(It - Edge.CommonLoops.begin());
    if (!Edge.Exact)
      return true;
    for (const DirVector &V : Edge.Vectors)
      if (carriedAt(V, Level))
        return true;
  }
  return false;
}

std::string DependenceGraph::toDot(const Program &Prog) const {
  auto Escape = [](std::string In) {
    std::string Out;
    for (char C : In) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out;
  };
  std::string Out = "digraph dependences {\n";
  Out += "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  std::vector<bool> Mentioned(Refs.size(), false);
  for (const DepEdge &Edge : Edges)
    Mentioned[Edge.Src] = Mentioned[Edge.Dst] = true;
  for (unsigned R = 0; R < Refs.size(); ++R) {
    if (!Mentioned[R])
      continue;
    Out += "  r" + std::to_string(R) + " [label=\"" +
           Escape(refStr(Prog, Refs[R])) + "\"];\n";
  }
  for (const DepEdge &Edge : Edges) {
    std::string Label = depEdgeKindName(Edge.Kind);
    for (const DirVector &V : Edge.Vectors)
      Label += " " + dirVectorStr(V);
    if (!Edge.Exact)
      Label += " inexact";
    const char *Style = Edge.Kind == DepEdgeKind::Flow    ? "solid"
                        : Edge.Kind == DepEdgeKind::Anti  ? "dashed"
                                                          : "dotted";
    Out += "  r" + std::to_string(Edge.Src) + " -> r" +
           std::to_string(Edge.Dst) + " [label=\"" + Escape(Label) +
           "\", style=" + Style + "];\n";
  }
  Out += "}\n";
  return Out;
}

std::string DependenceGraph::str(const Program &Prog) const {
  std::string Out;
  for (const DepEdge &Edge : Edges) {
    Out += depEdgeKindName(Edge.Kind);
    Out += ": " + refStr(Prog, Refs[Edge.Src]) + " -> " +
           refStr(Prog, Refs[Edge.Dst]) + "  ";
    for (const DirVector &V : Edge.Vectors)
      Out += dirVectorStr(V) + " ";
    if (!Edge.Exact)
      Out += "[inexact]";
    Out += "\n";
  }
  return Out;
}
