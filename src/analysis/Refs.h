//===- analysis/Refs.h - Array reference enumeration -----------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumeration of array references in a program, with their enclosing
/// loop nests. References are addressed by (statement, slot):
/// slot -1 is the statement's array write; slots 0.. number the array
/// reads in a fixed order (left-hand-side subscript reads first, then
/// right-hand-side reads, depth-first left to right). The interpreter's
/// access trace uses the same addressing so analysis results can be
/// validated against observed behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_REFS_H
#define EDDA_ANALYSIS_REFS_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace edda {

/// One static array reference.
struct ArrayReference {
  unsigned ArrayId = 0;
  const AssignStmt *Stmt = nullptr;
  /// -1 for the write on the left-hand side, otherwise the read index.
  int Slot = -1;
  bool IsWrite = false;
  std::vector<ExprPtr> Subscripts;
  /// Enclosing loops, outermost first.
  std::vector<const LoopStmt *> Loops;
  /// Stable content fingerprint: array name, read/write, subscript
  /// expressions and the full enclosing bound chain (ir/Fingerprint.h).
  /// Equal fingerprints imply structurally identical references that
  /// build identical dependence problems, which is what incremental
  /// re-analysis keys reuse on — ids do not participate, so the value
  /// survives print -> edit -> re-parse.
  uint64_t Fingerprint = 0;
  /// The same fingerprint with the enclosing bound chain left out.
  /// Distinguishing the two is load-bearing: "same statement text under
  /// different bounds" must split Fingerprint while sharing this one
  /// (and the fuzzer's stale-fingerprint injected bug swaps the two to
  /// prove the incr axis notices).
  uint64_t FingerprintNoBounds = 0;
};

/// Reuse key for an ordered reference pair (fingerprints \p FpA, \p FpB)
/// with \p NumCommon shared enclosing loops. The common-loop count is
/// part of the key because builder commonality is decided by
/// loop-object identity: content-identical chains may still differ in
/// sharing. Callers pass either the full or the no-bounds reference
/// fingerprints (the latter only by the fuzzer's injected bug).
uint64_t pairFingerprint(uint64_t FpA, uint64_t FpB, unsigned NumCommon);

/// Collects the array reads of one assignment in slot order.
std::vector<const Expr *> collectStmtReads(const AssignStmt &A);

/// Collects every array reference in the program, in statement order.
std::vector<ArrayReference> collectReferences(const Program &P);

/// "a[i][j+1] (write at depth 2)" rendering for diagnostics.
std::string refStr(const Program &P, const ArrayReference &Ref);

} // namespace edda

#endif // EDDA_ANALYSIS_REFS_H
