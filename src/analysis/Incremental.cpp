//===- analysis/Incremental.cpp - Edit-loop re-analysis sessions ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"

#include <utility>

using namespace edda;

namespace {

AnalyzerOptions withDirections(AnalyzerOptions Opts) {
  Opts.ComputeDirections = true;
  return Opts;
}

} // namespace

IncrementalSession::IncrementalSession(AnalyzerOptions Opts)
    : Analyzer(withDirections(std::move(Opts))) {}

ReanalyzeStats IncrementalSession::update(Program NewProg) {
  ReanalyzeStats RS;
  if (!Current) {
    Current.emplace(std::move(NewProg));
    Result = Analyzer.analyze(*Current);
    RS.PairsTotal = RS.PairsInvalidated = Result.Pairs.size();
  } else {
    // Re-analyze against the previous result, then retire the previous
    // program: reuse reads only the fingerprints stored in Result.Refs,
    // never the old statement pointers, and moving a Program keeps its
    // statements' addresses stable (they are shared-pointer owned), so
    // the references in NewResult stay valid across the swap below.
    AnalysisResult NewResult = Analyzer.reanalyze(NewProg, Result, &RS);
    Analyzer.cache().invalidateFingerprints(RS.StaleKeys);
    Current.emplace(std::move(NewProg));
    Result = std::move(NewResult);
  }
  Graph = DependenceGraph::buildFromResult(Result);
  return RS;
}
