//===- analysis/Refs.cpp - Array reference enumeration --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Refs.h"

using namespace edda;

std::vector<const Expr *> edda::collectStmtReads(const AssignStmt &A) {
  std::vector<const Expr *> Reads;
  if (A.isArrayLhs())
    for (const ExprPtr &Sub : A.lhsSubscripts())
      Sub->collectArrayReads(Reads);
  A.rhs()->collectArrayReads(Reads);
  return Reads;
}

namespace {

void collectFrom(const std::vector<StmtPtr> &Body,
                 std::vector<const LoopStmt *> &LoopStack,
                 std::vector<ArrayReference> &Out) {
  for (const StmtPtr &S : Body) {
    if (S->kind() == StmtKind::Loop) {
      const LoopStmt &L = asLoop(*S);
      LoopStack.push_back(&L);
      collectFrom(L.body(), LoopStack, Out);
      LoopStack.pop_back();
      continue;
    }
    const AssignStmt &A = asAssign(*S);
    if (A.isArrayLhs()) {
      ArrayReference Write;
      Write.ArrayId = A.lhsArray();
      Write.Stmt = &A;
      Write.Slot = -1;
      Write.IsWrite = true;
      Write.Subscripts = A.lhsSubscripts();
      Write.Loops = LoopStack;
      Out.push_back(std::move(Write));
    }
    std::vector<const Expr *> Reads = collectStmtReads(A);
    for (unsigned I = 0; I < Reads.size(); ++I) {
      ArrayReference Read;
      Read.ArrayId = Reads[I]->arrayId();
      Read.Stmt = &A;
      Read.Slot = static_cast<int>(I);
      Read.IsWrite = false;
      Read.Subscripts = Reads[I]->subscripts();
      Read.Loops = LoopStack;
      Out.push_back(std::move(Read));
    }
  }
}

} // namespace

std::vector<ArrayReference> edda::collectReferences(const Program &P) {
  std::vector<ArrayReference> Out;
  std::vector<const LoopStmt *> LoopStack;
  collectFrom(P.body(), LoopStack, Out);
  return Out;
}

std::string edda::refStr(const Program &P, const ArrayReference &Ref) {
  std::string Out = P.array(Ref.ArrayId).Name;
  for (const ExprPtr &Sub : Ref.Subscripts)
    Out += "[" +
           Sub->str([&P](unsigned V) { return P.var(V).Name; }) + "]";
  Out += Ref.IsWrite ? " (write" : " (read";
  Out += " at depth " + std::to_string(Ref.Loops.size()) + ")";
  return Out;
}
