//===- analysis/Refs.cpp - Array reference enumeration --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Refs.h"

#include "ir/Fingerprint.h"
#include "support/Hashing.h"

using namespace edda;

std::vector<const Expr *> edda::collectStmtReads(const AssignStmt &A) {
  std::vector<const Expr *> Reads;
  if (A.isArrayLhs())
    for (const ExprPtr &Sub : A.lhsSubscripts())
      Sub->collectArrayReads(Reads);
  A.rhs()->collectArrayReads(Reads);
  return Reads;
}

namespace {

void fingerprintRef(const Program &P, ArrayReference &Ref) {
  uint64_t H = hashCombine(0x5EFu, Ref.IsWrite ? 1u : 0u);
  H = hashCombine(H, fingerprintArrayAccess(P, Ref.ArrayId,
                                            Ref.Subscripts));
  Ref.FingerprintNoBounds = H;
  Ref.Fingerprint = hashCombine(H, fingerprintLoopChain(P, Ref.Loops));
}

void collectFrom(const Program &P, const std::vector<StmtPtr> &Body,
                 std::vector<const LoopStmt *> &LoopStack,
                 std::vector<ArrayReference> &Out) {
  for (const StmtPtr &S : Body) {
    if (S->kind() == StmtKind::Loop) {
      const LoopStmt &L = asLoop(*S);
      LoopStack.push_back(&L);
      collectFrom(P, L.body(), LoopStack, Out);
      LoopStack.pop_back();
      continue;
    }
    const AssignStmt &A = asAssign(*S);
    if (A.isArrayLhs()) {
      ArrayReference Write;
      Write.ArrayId = A.lhsArray();
      Write.Stmt = &A;
      Write.Slot = -1;
      Write.IsWrite = true;
      Write.Subscripts = A.lhsSubscripts();
      Write.Loops = LoopStack;
      fingerprintRef(P, Write);
      Out.push_back(std::move(Write));
    }
    std::vector<const Expr *> Reads = collectStmtReads(A);
    for (unsigned I = 0; I < Reads.size(); ++I) {
      ArrayReference Read;
      Read.ArrayId = Reads[I]->arrayId();
      Read.Stmt = &A;
      Read.Slot = static_cast<int>(I);
      Read.IsWrite = false;
      Read.Subscripts = Reads[I]->subscripts();
      Read.Loops = LoopStack;
      fingerprintRef(P, Read);
      Out.push_back(std::move(Read));
    }
  }
}

} // namespace

std::vector<ArrayReference> edda::collectReferences(const Program &P) {
  std::vector<ArrayReference> Out;
  std::vector<const LoopStmt *> LoopStack;
  collectFrom(P, P.body(), LoopStack, Out);
  return Out;
}

uint64_t edda::pairFingerprint(uint64_t FpA, uint64_t FpB,
                               unsigned NumCommon) {
  return hashCombine(hashCombine(FpA, FpB), NumCommon);
}

std::string edda::refStr(const Program &P, const ArrayReference &Ref) {
  std::string Out = P.array(Ref.ArrayId).Name;
  for (const ExprPtr &Sub : Ref.Subscripts)
    Out += "[" +
           Sub->str([&P](unsigned V) { return P.var(V).Name; }) + "]";
  Out += Ref.IsWrite ? " (write" : " (read";
  Out += " at depth " + std::to_string(Ref.Loops.size()) + ")";
  return Out;
}
