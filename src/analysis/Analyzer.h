//===- analysis/Analyzer.h - Whole-program dependence analysis -*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program driver, playing the role the analyzer played inside
/// SUIF (paper section 4): run the prepass optimizer, enumerate array
/// reference pairs (write/write, write/read), build each pair's
/// dependence problem, consult the memoization tables, and run the
/// cascade (and optionally direction/distance vector computation) on
/// misses.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_ANALYZER_H
#define EDDA_ANALYSIS_ANALYZER_H

#include "analysis/Builder.h"
#include "analysis/Refs.h"
#include "deptest/Direction.h"
#include "deptest/Memo.h"
#include "deptest/Stats.h"
#include "ir/Program.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace edda {

/// Analyzer configuration.
struct AnalyzerOptions {
  /// Run the prepass optimizer before collecting references.
  bool RunPrepass = true;
  /// Consult and fill the memoization tables.
  bool UseMemoization = true;
  MemoOptions Memo;
  /// Also compute direction/distance vectors per dependent pair.
  bool ComputeDirections = false;
  DirectionOptions Direction;
  CascadeOptions Cascade;
};

/// The analysis outcome for one reference pair.
struct DependencePair {
  /// Indices into AnalysisResult::Refs.
  unsigned RefA = 0;
  unsigned RefB = 0;
  DepAnswer Answer = DepAnswer::Unknown;
  TestKind DecidedBy = TestKind::Unanalyzable;
  bool Exact = false;
  /// True when the answer (and directions) came from the cache.
  bool FromCache = false;
  /// The pair's common enclosing loops, outermost first.
  std::vector<const LoopStmt *> CommonLoops;
  /// Present when directions were requested and the pair may depend.
  std::optional<DirectionResult> Directions;
};

/// Whole-program analysis result.
struct AnalysisResult {
  std::vector<ArrayReference> Refs;
  std::vector<DependencePair> Pairs;
  /// Decisions per test kind (only cache misses run tests).
  DepStats Stats;
  uint64_t PairsConsidered = 0;
  uint64_t UnanalyzablePairs = 0;
};

/// Runs dependence analysis over a program. The analyzer owns the
/// memoization tables, which persist across analyze() calls (so a
/// benchmark suite shares one cache, as the paper's compiler did within
/// a compilation).
class DependenceAnalyzer {
public:
  explicit DependenceAnalyzer(AnalyzerOptions Opts = {})
      : Opts(Opts), Cache(Opts.Memo) {}

  /// Analyzes \p Prog (mutating it when the prepass is enabled).
  AnalysisResult analyze(Program &Prog);

  DependenceCache &cache() { return Cache; }
  const AnalyzerOptions &options() const { return Opts; }

private:
  AnalyzerOptions Opts;
  DependenceCache Cache;
};

} // namespace edda

#endif // EDDA_ANALYSIS_ANALYZER_H
