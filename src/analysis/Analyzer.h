//===- analysis/Analyzer.h - Whole-program dependence analysis -*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program driver, playing the role the analyzer played inside
/// SUIF (paper section 4): run the prepass optimizer, enumerate array
/// reference pairs (write/write, write/read), build each pair's
/// dependence problem, consult the memoization tables, and run the
/// cascade (and optionally direction/distance vector computation) on
/// misses.
///
/// With NumThreads > 1 the driver fans the per-pair work out across an
/// internal thread pool. Results are bit-identical to a serial run: the
/// pair list keeps its (source ref, sink ref) enumeration order, and
/// pairs whose memoization keys could interact are batched into one
/// sequential unit of work, so every pair sees exactly the cache state a
/// serial run would have shown it (see docs/ALGORITHMS.md, "Parallel
/// analysis").
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_ANALYZER_H
#define EDDA_ANALYSIS_ANALYZER_H

#include "analysis/Builder.h"
#include "analysis/Refs.h"
#include "deptest/Direction.h"
#include "deptest/Memo.h"
#include "deptest/Stats.h"
#include "deptest/TestPipeline.h"
#include "ir/Program.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace edda {

/// Analyzer configuration.
struct AnalyzerOptions {
  /// Run the prepass optimizer before collecting references.
  bool RunPrepass = true;
  /// Consult and fill the memoization tables.
  bool UseMemoization = true;
  MemoOptions Memo;
  /// Also compute direction/distance vectors per dependent pair.
  bool ComputeDirections = false;
  DirectionOptions Direction;
  CascadeOptions Cascade;
  /// Record a per-stage pipeline trace for every analyzable pair
  /// (DependencePair::Trace; surfaced by `edda-cli --explain`). The
  /// trace comes from an observational re-run of the pipeline on the
  /// pair's unconstrained problem — no stats, no memoization — so
  /// enabling it cannot perturb results; expect roughly double the
  /// testing cost.
  bool Trace = false;
  /// Worker threads for the ref-pair fan-out. 1 (the default) runs the
  /// exact serial pipeline on the calling thread; 0 means one thread
  /// per hardware core. Results are identical at every thread count.
  unsigned NumThreads = 1;
  /// Fault-injection hook for the fuzzer's `incr` axis: key re-analysis
  /// reuse on the bounds-free reference fingerprints, so bound edits go
  /// undetected and stale results get spliced in. Never set outside the
  /// fuzzer.
  bool InjectStaleFingerprint = false;
};

/// What reanalyze() reused versus re-ran. The reuse counters — not
/// wall time — are the incremental claim: after a one-statement edit,
/// PairsInvalidated should be a small fraction of PairsTotal.
struct ReanalyzeStats {
  uint64_t PairsTotal = 0;
  /// Pairs whose fingerprint key matched the previous result and whose
  /// outcome was spliced in without building or testing a problem.
  uint64_t PairsReused = 0;
  /// Pairs built and decided afresh (including new pairs).
  uint64_t PairsInvalidated = 0;
  /// Pair keys present in the previous result but absent from the new
  /// program, sorted; callers feed them to
  /// DependenceCache::invalidateFingerprints to bound store growth.
  std::vector<uint64_t> StaleKeys;
};

/// The analysis outcome for one reference pair.
struct DependencePair {
  /// Indices into AnalysisResult::Refs.
  unsigned RefA = 0;
  unsigned RefB = 0;
  DepAnswer Answer = DepAnswer::Unknown;
  TestKind DecidedBy = TestKind::Unanalyzable;
  bool Exact = false;
  /// True when the answer (and directions) came from the cache.
  bool FromCache = false;
  /// The pair's common enclosing loops, outermost first.
  std::vector<const LoopStmt *> CommonLoops;
  /// Present when directions were requested and the pair may depend.
  std::optional<DirectionResult> Directions;
  /// Per-stage pipeline trace (AnalyzerOptions::Trace); absent for
  /// pairs whose problem could not be built.
  std::optional<PipelineTrace> Trace;
};

/// Whole-program analysis result.
struct AnalysisResult {
  std::vector<ArrayReference> Refs;
  std::vector<DependencePair> Pairs;
  /// Decisions per test kind (only cache misses run tests).
  DepStats Stats;
  uint64_t PairsConsidered = 0;
  uint64_t UnanalyzablePairs = 0;
};

/// Runs dependence analysis over a program. The analyzer owns the
/// memoization tables, which persist across analyze() calls (so a
/// benchmark suite shares one cache, as the paper's compiler did within
/// a compilation). analyze() itself parallelizes internally; concurrent
/// analyze() calls on one analyzer are not supported.
class DependenceAnalyzer {
public:
  explicit DependenceAnalyzer(AnalyzerOptions Opts = {});

  /// Shares an external cache instead of owning one: \p SharedCache
  /// must outlive the analyzer. This is the serving configuration —
  /// edda-serve runs one single-threaded analyzer per in-flight
  /// request, all hitting one concurrent sharded cache, which the
  /// first-insert-wins discipline keeps consistent: a cached entry is
  /// always bit-identical to what recomputation would produce, so
  /// answers are independent of request interleaving (only the
  /// FromCache flags vary).
  DependenceAnalyzer(AnalyzerOptions Opts, DependenceCache &SharedCache);

  /// Analyzes \p Prog (mutating it when the prepass is enabled).
  AnalysisResult analyze(Program &Prog);

  /// Analyzes \p Prog reusing \p Previous — the result of an earlier
  /// analyze()/reanalyze() under the same options — wherever the
  /// content fingerprints prove the answer cannot have changed: a pair
  /// whose two references have unchanged subscripts, array, and
  /// enclosing bound chains (and the same common-loop count) builds the
  /// identical dependence problem, so its previous outcome is spliced
  /// in verbatim and only the remaining pairs are re-run on the pool.
  /// No diff against the old program text is needed; the fingerprints
  /// stored in Previous.Refs carry everything the comparison requires.
  ///
  /// Answers, directions and the report header are bit-identical to a
  /// from-scratch analyze() of \p Prog (the incr fuzz axis enforces
  /// this); only DependencePair::FromCache (true for spliced pairs) and
  /// Result.Stats (which covers just the re-run pairs) may differ.
  AnalysisResult reanalyze(Program &Prog, const AnalysisResult &Previous,
                           ReanalyzeStats *RS = nullptr);

  DependenceCache &cache() { return External ? *External : Owned; }
  const AnalyzerOptions &options() const { return Opts; }
  /// The resolved worker count (NumThreads with 0 expanded).
  unsigned threadCount() const { return Opts.NumThreads; }

private:
  AnalyzerOptions Opts;
  DependenceCache Owned;
  /// When set, cache() resolves here instead of Owned.
  DependenceCache *External = nullptr;
  /// Created on the first parallel analyze(), reused afterwards.
  std::unique_ptr<ThreadPool> Pool;

  /// Runs Body(0..N-1): on the pool when parallel, inline when serial.
  void runIndexed(size_t N, const std::function<void(size_t)> &Body);

  /// Shared body of analyze()/reanalyze(); \p Prev enables fingerprint
  /// reuse.
  AnalysisResult analyzeImpl(Program &Prog, const AnalysisResult *Prev,
                             ReanalyzeStats *RS);

  /// Decides one analyzable, non-constant pair: memo lookup, cascade or
  /// direction computation on a miss, insert. Writes the outcome into
  /// \p Pair and the decision counters into \p Stats. \p PairKey tags
  /// the memo entries the pair creates (fingerprint-aware
  /// invalidation).
  void decideTestedPair(const BuiltProblem &Built, DependencePair &Pair,
                        DepStats &Stats, uint64_t PairKey);
};

} // namespace edda

#endif // EDDA_ANALYSIS_ANALYZER_H
