//===- analysis/Builder.cpp - Reference pair -> problem --------------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Builder.h"

#include "support/IntMath.h"

#include <algorithm>

using namespace edda;

namespace {

/// Maps program-variable ids to x columns for one reference's side.
class ColumnMap {
public:
  ColumnMap(const Program &Prog, const ArrayReference &Ref,
            unsigned LoopColBase, std::vector<unsigned> &SymbolicVars,
            unsigned NumLoopVarsTotal)
      : Prog(Prog), Ref(Ref), LoopColBase(LoopColBase),
        SymbolicVars(SymbolicVars), NumLoopVarsTotal(NumLoopVarsTotal) {}

  /// Column for program variable \p VarId, allocating symbolic columns
  /// on demand; std::nullopt when the variable is unanalyzable here.
  std::optional<unsigned> columnOf(unsigned VarId) {
    for (unsigned L = 0; L < Ref.Loops.size(); ++L)
      if (Ref.Loops[L]->varId() == VarId)
        return LoopColBase + L;
    if (Prog.var(VarId).Kind == VarKind::Symbolic) {
      for (unsigned S = 0; S < SymbolicVars.size(); ++S)
        if (SymbolicVars[S] == VarId)
          return NumLoopVarsTotal + S;
      SymbolicVars.push_back(VarId);
      return NumLoopVarsTotal +
             static_cast<unsigned>(SymbolicVars.size() - 1);
    }
    return std::nullopt; // scalar the prepass could not remove
  }

private:
  const Program &Prog;
  const ArrayReference &Ref;
  unsigned LoopColBase;
  std::vector<unsigned> &SymbolicVars;
  unsigned NumLoopVarsTotal;
};

/// Converts \p E into an XAffine over the columns of \p Map. The vector
/// is sized for the final numX later; here columns are collected as
/// (column, coeff) pairs.
bool convert(const ExprPtr &E, ColumnMap &Map,
             std::vector<std::pair<unsigned, int64_t>> &Terms,
             int64_t &Const) {
  std::optional<AffineExpr> Affine = toAffine(E);
  if (!Affine)
    return false;
  Const = Affine->constant();
  for (const AffineExpr::Term &T : Affine->terms()) {
    std::optional<unsigned> Col = Map.columnOf(T.VarId);
    if (!Col)
      return false;
    Terms.push_back({*Col, T.Coeff});
  }
  return true;
}

} // namespace

std::optional<BuiltProblem> edda::buildProblem(const Program &Prog,
                                               const ArrayReference &A,
                                               const ArrayReference &B) {
  if (A.ArrayId != B.ArrayId ||
      A.Subscripts.size() != B.Subscripts.size())
    return std::nullopt;

  BuiltProblem Built;
  DependenceProblem &P = Built.Problem;
  P.NumLoopsA = static_cast<unsigned>(A.Loops.size());
  P.NumLoopsB = static_cast<unsigned>(B.Loops.size());
  unsigned Common = 0;
  while (Common < P.NumLoopsA && Common < P.NumLoopsB &&
         A.Loops[Common] == B.Loops[Common])
    ++Common;
  P.NumCommon = Common;
  Built.CommonLoops.assign(A.Loops.begin(), A.Loops.begin() + Common);

  const unsigned NumLoopVars = P.NumLoopsA + P.NumLoopsB;
  ColumnMap MapA(Prog, A, 0, Built.SymbolicVars, NumLoopVars);
  ColumnMap MapB(Prog, B, P.NumLoopsA, Built.SymbolicVars, NumLoopVars);

  // First pass: convert everything into (column, coeff) term lists so
  // the number of symbolic columns is known before sizing the forms.
  struct PendingForm {
    std::vector<std::pair<unsigned, int64_t>> Terms;
    int64_t Const = 0;
    bool Present = false;
  };
  const unsigned NumDims = static_cast<unsigned>(A.Subscripts.size());
  std::vector<PendingForm> SubsA(NumDims), SubsB(NumDims);
  for (unsigned D = 0; D < NumDims; ++D) {
    SubsA[D].Present = true;
    SubsB[D].Present = true;
    if (!convert(A.Subscripts[D], MapA, SubsA[D].Terms, SubsA[D].Const))
      return std::nullopt;
    if (!convert(B.Subscripts[D], MapB, SubsB[D].Terms, SubsB[D].Const))
      return std::nullopt;
  }

  std::vector<PendingForm> Los(NumLoopVars), His(NumLoopVars);
  auto ConvertBounds = [&](const ArrayReference &Ref, ColumnMap &Map,
                           unsigned ColBase) {
    for (unsigned L = 0; L < Ref.Loops.size(); ++L) {
      const LoopStmt &Loop = *Ref.Loops[L];
      unsigned Col = ColBase + L;
      // A surviving non-unit step relaxes the range to its interval.
      if (Loop.step() != 1)
        Built.Exact = false;
      const ExprPtr &LoExpr = Loop.step() > 0 ? Loop.lo() : Loop.hi();
      const ExprPtr &HiExpr = Loop.step() > 0 ? Loop.hi() : Loop.lo();
      PendingForm Lo;
      if (convert(LoExpr, Map, Lo.Terms, Lo.Const)) {
        Lo.Present = true;
        Los[Col] = std::move(Lo);
      }
      PendingForm Hi;
      if (convert(HiExpr, Map, Hi.Terms, Hi.Const)) {
        Hi.Present = true;
        His[Col] = std::move(Hi);
      }
    }
  };
  ConvertBounds(A, MapA, 0);
  ConvertBounds(B, MapB, P.NumLoopsA);

  P.NumSymbolic = static_cast<unsigned>(Built.SymbolicVars.size());
  const unsigned NumX = P.numX();
  auto Materialize = [NumX](const PendingForm &Form) {
    XAffine Out(NumX);
    Out.Const = Form.Const;
    for (const auto &[Col, Coeff] : Form.Terms)
      Out.Coeffs[Col] = Coeff;
    return Out;
  };

  // Equations: subA_d(x) - subB_d(x) == 0.
  for (unsigned D = 0; D < NumDims; ++D) {
    XAffine FA = Materialize(SubsA[D]);
    XAffine FB = Materialize(SubsB[D]);
    XAffine Eq(NumX);
    bool Ok = true;
    {
      CheckedInt C = CheckedInt(FA.Const) - CheckedInt(FB.Const);
      Ok = C.valid();
      if (Ok)
        Eq.Const = C.get();
    }
    for (unsigned J = 0; J < NumX && Ok; ++J) {
      CheckedInt C = CheckedInt(FA.Coeffs[J]) - CheckedInt(FB.Coeffs[J]);
      Ok = C.valid();
      if (Ok)
        Eq.Coeffs[J] = C.get();
    }
    if (!Ok)
      return std::nullopt;
    P.Equations.push_back(std::move(Eq));
  }

  P.Lo.resize(NumLoopVars);
  P.Hi.resize(NumLoopVars);
  for (unsigned L = 0; L < NumLoopVars; ++L) {
    if (Los[L].Present)
      P.Lo[L] = Materialize(Los[L]);
    if (His[L].Present)
      P.Hi[L] = Materialize(His[L]);
  }

  assert(P.wellFormed() && "builder produced a malformed problem");
  return Built;
}
