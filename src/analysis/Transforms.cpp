//===- analysis/Transforms.cpp - Loop transformation legality -------------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"

#include "analysis/Builder.h"
#include "analysis/Parallelizer.h"
#include "deptest/Cascade.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace edda;

namespace {

/// Lexicographic non-negativity, conservatively: '*' may hide '>'.
bool lexNonNegative(const DirVector &V) {
  for (Dir D : V) {
    if (D == Dir::Less)
      return true;
    if (D == Dir::Equal)
      continue;
    return false; // Greater, or Any which may be Greater
  }
  return true; // all '='
}

int levelOf(const DepEdge &Edge, const LoopStmt *Loop) {
  auto It = std::find(Edge.CommonLoops.begin(), Edge.CommonLoops.end(),
                      Loop);
  if (It == Edge.CommonLoops.end())
    return -1;
  return static_cast<int>(It - Edge.CommonLoops.begin());
}

} // namespace

LegalityResult edda::canInterchange(const DependenceGraph &Graph,
                                    const LoopStmt *OuterLoop,
                                    const LoopStmt *InnerLoop) {
  LegalityResult Result;
  for (const DepEdge &Edge : Graph.edges()) {
    int OuterLevel = levelOf(Edge, OuterLoop);
    if (OuterLevel < 0)
      continue;
    int InnerLevel = levelOf(Edge, InnerLoop);
    if (!Edge.Exact) {
      Result.Legal = false;
      Result.Violation.assign(Edge.CommonLoops.size(), Dir::Any);
      return Result;
    }
    if (InnerLevel != OuterLevel + 1) {
      // The pair's common nest ends between the two loops: the nest is
      // not perfect around this dependence; be conservative.
      Result.Legal = false;
      Result.Violation.clear();
      return Result;
    }
    for (const DirVector &V : Edge.Vectors) {
      DirVector Swapped = V;
      std::swap(Swapped[OuterLevel], Swapped[InnerLevel]);
      if (!lexNonNegative(Swapped)) {
        Result.Legal = false;
        Result.Violation = V;
        return Result;
      }
    }
  }
  return Result;
}

LegalityResult edda::canReverse(const DependenceGraph &Graph,
                                const LoopStmt *Loop) {
  LegalityResult Result;
  for (const DepEdge &Edge : Graph.edges()) {
    int Level = levelOf(Edge, Loop);
    if (Level < 0)
      continue;
    if (!Edge.Exact) {
      Result.Legal = false;
      Result.Violation.assign(Edge.CommonLoops.size(), Dir::Any);
      return Result;
    }
    for (const DirVector &V : Edge.Vectors) {
      DirVector Reversed = V;
      Dir &D = Reversed[Level];
      if (D == Dir::Less)
        D = Dir::Greater;
      else if (D == Dir::Greater)
        D = Dir::Less;
      if (!lexNonNegative(Reversed)) {
        Result.Legal = false;
        Result.Violation = V;
        return Result;
      }
    }
  }
  return Result;
}

LegalityResult edda::canParallelize(const DependenceGraph &Graph,
                                    const LoopStmt *Loop) {
  LegalityResult Result;
  for (const DepEdge &Edge : Graph.edges()) {
    int Level = levelOf(Edge, Loop);
    if (Level < 0)
      continue;
    if (!Edge.Exact) {
      Result.Legal = false;
      Result.Violation.assign(Edge.CommonLoops.size(), Dir::Any);
      return Result;
    }
    for (const DirVector &V : Edge.Vectors) {
      if (carriedAt(V, static_cast<unsigned>(Level))) {
        Result.Legal = false;
        Result.Violation = V;
        return Result;
      }
    }
  }
  return Result;
}

LegalityResult edda::canFuse(const Program &Prog, const LoopStmt *First,
                             const LoopStmt *Second) {
  LegalityResult Result;
  std::vector<ArrayReference> Refs = collectReferences(Prog);

  for (const ArrayReference &R1 : Refs) {
    if (std::find(R1.Loops.begin(), R1.Loops.end(), First) ==
        R1.Loops.end())
      continue;
    for (const ArrayReference &R2 : Refs) {
      if (std::find(R2.Loops.begin(), R2.Loops.end(), Second) ==
          R2.Loops.end())
        continue;
      if (R1.ArrayId != R2.ArrayId || (!R1.IsWrite && !R2.IsWrite))
        continue;

      std::optional<BuiltProblem> Built = buildProblem(Prog, R1, R2);
      if (!Built) {
        Result.Legal = false;
        Result.Violation.clear();
        return Result;
      }
      DependenceProblem P = Built->Problem;
      // The common prefix ends exactly where the two sibling loops
      // diverge; identify them as one more common loop.
      unsigned FusedLevel = P.NumCommon;
      if (FusedLevel >= P.NumLoopsA || FusedLevel >= P.NumLoopsB ||
          R1.Loops[FusedLevel] != First ||
          R2.Loops[FusedLevel] != Second) {
        Result.Legal = false; // unexpected shape: stay conservative
        Result.Violation.clear();
        return Result;
      }
      P.NumCommon = FusedLevel + 1;

      // Pre-fusion every R1 access precedes every R2 access; after
      // fusion iteration i runs R1(i) then R2(i), so a conflict with
      // i1 > i2 would flip producer and consumer. Ask for exactly that
      // direction: xA - xB >= 1, i.e. xB - xA + 1 <= 0.
      XAffine Greater(P.numX());
      Greater.Coeffs[P.xOfCommonA(FusedLevel)] = -1;
      Greater.Coeffs[P.xOfCommonB(FusedLevel)] = 1;
      Greater.Const = 1;
      CascadeResult Test = testDependenceConstrained(P, {Greater});
      if (Test.Answer != DepAnswer::Independent) {
        Result.Legal = false;
        Result.Violation.assign(FusedLevel + 1, Dir::Equal);
        Result.Violation[FusedLevel] = Dir::Greater;
        return Result;
      }
    }
  }
  return Result;
}

bool edda::fuseLoops(Program &Prog, std::vector<StmtPtr> &Body,
                     unsigned FirstIdx) {
  if (FirstIdx + 1 >= Body.size())
    return false;
  if (Body[FirstIdx]->kind() != StmtKind::Loop ||
      Body[FirstIdx + 1]->kind() != StmtKind::Loop)
    return false;
  LoopStmt &First = asLoop(*Body[FirstIdx]);
  LoopStmt &Second = asLoop(*Body[FirstIdx + 1]);
  if (First.step() != Second.step() ||
      !exprEquals(First.lo(), Second.lo()) ||
      !exprEquals(First.hi(), Second.hi()))
    return false;

  // Unify the induction variables (siblings often share one already).
  if (First.varId() != Second.varId()) {
    unsigned From = Second.varId();
    unsigned To = First.varId();
    auto Rewrite = [From, To](const ExprPtr &E) {
      return E->substitute([From, To](unsigned Var) -> ExprPtr {
        return Var == From ? Expr::makeVar(To) : nullptr;
      });
    };
    std::function<void(Stmt &)> RewriteStmt = [&](Stmt &S) {
      if (S.kind() == StmtKind::Assign) {
        AssignStmt &A = asAssign(S);
        if (A.isArrayLhs())
          for (unsigned D = 0; D < A.lhsSubscripts().size(); ++D)
            A.setLhsSubscript(D, Rewrite(A.lhsSubscripts()[D]));
        A.setRhs(Rewrite(A.rhs()));
        return;
      }
      LoopStmt &L = asLoop(S);
      L.setLo(Rewrite(L.lo()));
      L.setHi(Rewrite(L.hi()));
      for (StmtPtr &Child : L.body())
        RewriteStmt(*Child);
    };
    for (StmtPtr &Child : Second.body())
      RewriteStmt(*Child);
    (void)Prog;
  }

  for (StmtPtr &Child : Second.body())
    First.body().push_back(std::move(Child));
  Body.erase(Body.begin() + FirstIdx + 1);
  return true;
}

LegalityResult edda::canVectorize(const DependenceGraph &Graph,
                                  const LoopStmt *Loop,
                                  unsigned VectorWidth) {
  assert(VectorWidth >= 1 && "vector width must be positive");
  LegalityResult Result;
  for (const DepEdge &Edge : Graph.edges()) {
    int Level = levelOf(Edge, Loop);
    if (Level < 0)
      continue;
    if (!Edge.Exact) {
      Result.Legal = false;
      Result.Violation.assign(Edge.CommonLoops.size(), Dir::Any);
      return Result;
    }
    for (const DirVector &V : Edge.Vectors) {
      if (!carriedAt(V, static_cast<unsigned>(Level)))
        continue;
      const std::optional<int64_t> &Distance = Edge.Distances[Level];
      if (!Distance || *Distance < 0 ||
          *Distance < static_cast<int64_t>(VectorWidth)) {
        Result.Legal = false;
        Result.Violation = V;
        return Result;
      }
    }
  }
  return Result;
}

namespace {

/// Collects every assignment statement in the subtree of \p S.
void collectAssigns(const Stmt &S,
                    std::vector<const AssignStmt *> &Out) {
  if (S.kind() == StmtKind::Assign) {
    Out.push_back(&asAssign(S));
    return;
  }
  for (const StmtPtr &Child : asLoop(S).body())
    collectAssigns(*Child, Out);
}

} // namespace

DistributionPlan edda::planDistribution(const DependenceGraph &Graph,
                                        const LoopStmt *Loop) {
  DistributionPlan Plan;
  const unsigned NumStmts = static_cast<unsigned>(Loop->body().size());
  if (NumStmts == 0)
    return Plan;

  // Map every assignment in the loop body to its top-level statement.
  std::map<const AssignStmt *, unsigned> StmtOf;
  for (unsigned I = 0; I < NumStmts; ++I) {
    std::vector<const AssignStmt *> Assigns;
    collectAssigns(*Loop->body()[I], Assigns);
    for (const AssignStmt *A : Assigns)
      StmtOf[A] = I;
  }

  // Statement-level precedence graph: every normalized dependence edge
  // whose endpoints live in this loop means "some instance of Src must
  // run before some instance of Dst" — a constraint between the
  // top-level statements. Inexact edges were already materialized in
  // both directions by the graph builder, gluing their statements into
  // one cycle.
  std::vector<std::vector<unsigned>> Succ(NumStmts);
  for (const DepEdge &Edge : Graph.edges()) {
    auto SrcIt = StmtOf.find(Graph.refs()[Edge.Src].Stmt);
    auto DstIt = StmtOf.find(Graph.refs()[Edge.Dst].Stmt);
    if (SrcIt == StmtOf.end() || DstIt == StmtOf.end())
      continue;
    if (SrcIt->second != DstIt->second)
      Succ[SrcIt->second].push_back(DstIt->second);
  }

  // The array dependence graph knows nothing about scalar flows
  // (s = a[i]; b[i] = s). Glue every pair of statements that touch a
  // scalar some statement in the body mutates — conservative but
  // sound; the prepass usually substitutes such scalars away first.
  {
    std::vector<std::set<unsigned>> Assigned(NumStmts), Used(NumStmts);
    std::function<void(const Stmt &, unsigned)> Scan =
        [&](const Stmt &S, unsigned Top) {
          if (S.kind() == StmtKind::Assign) {
            const AssignStmt &A = asAssign(S);
            std::vector<unsigned> Vars;
            if (A.isArrayLhs())
              for (const ExprPtr &Sub : A.lhsSubscripts())
                Sub->collectVars(Vars);
            else
              Assigned[Top].insert(A.lhsScalar());
            A.rhs()->collectVars(Vars);
            Used[Top].insert(Vars.begin(), Vars.end());
            return;
          }
          const LoopStmt &L = asLoop(S);
          std::vector<unsigned> Vars;
          L.lo()->collectVars(Vars);
          L.hi()->collectVars(Vars);
          Used[Top].insert(Vars.begin(), Vars.end());
          for (const StmtPtr &Child : L.body())
            Scan(*Child, Top);
        };
    for (unsigned I = 0; I < NumStmts; ++I)
      Scan(*Loop->body()[I], I);

    std::set<unsigned> Mutated;
    for (unsigned I = 0; I < NumStmts; ++I)
      Mutated.insert(Assigned[I].begin(), Assigned[I].end());
    for (unsigned Var : Mutated) {
      std::vector<unsigned> Touching;
      for (unsigned I = 0; I < NumStmts; ++I)
        if (Assigned[I].count(Var) || Used[I].count(Var))
          Touching.push_back(I);
      for (unsigned A : Touching)
        for (unsigned B : Touching)
          if (A != B)
            Succ[A].push_back(B);
    }
  }

  // Tarjan SCC, iterative.
  std::vector<int> Index(NumStmts, -1), Low(NumStmts, 0);
  std::vector<bool> OnStack(NumStmts, false);
  std::vector<unsigned> Stack;
  std::vector<int> Component(NumStmts, -1);
  int NextIndex = 0, NextComponent = 0;

  struct Frame {
    unsigned Node;
    size_t NextSucc;
  };
  for (unsigned Start = 0; Start < NumStmts; ++Start) {
    if (Index[Start] != -1)
      continue;
    std::vector<Frame> Frames{{Start, 0}};
    Index[Start] = Low[Start] = NextIndex++;
    Stack.push_back(Start);
    OnStack[Start] = true;
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      if (F.NextSucc < Succ[F.Node].size()) {
        unsigned Next = Succ[F.Node][F.NextSucc++];
        if (Index[Next] == -1) {
          Index[Next] = Low[Next] = NextIndex++;
          Stack.push_back(Next);
          OnStack[Next] = true;
          Frames.push_back({Next, 0});
        } else if (OnStack[Next]) {
          Low[F.Node] = std::min(Low[F.Node], Index[Next]);
        }
        continue;
      }
      if (Low[F.Node] == Index[F.Node]) {
        while (true) {
          unsigned Popped = Stack.back();
          Stack.pop_back();
          OnStack[Popped] = false;
          Component[Popped] = NextComponent;
          if (Popped == F.Node)
            break;
        }
        ++NextComponent;
      }
      unsigned Done = F.Node;
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().Node] =
            std::min(Low[Frames.back().Node], Low[Done]);
    }
  }

  // Order the components: topological over the condensation, stable by
  // smallest original statement index (keeps unrelated statements in
  // source order).
  std::vector<unsigned> MinStmt(NextComponent, NumStmts);
  std::vector<unsigned> InDegree(NextComponent, 0);
  std::vector<std::vector<unsigned>> CompSucc(NextComponent);
  for (unsigned S = 0; S < NumStmts; ++S)
    MinStmt[Component[S]] = std::min(MinStmt[Component[S]], S);
  for (unsigned S = 0; S < NumStmts; ++S) {
    for (unsigned T : Succ[S]) {
      if (Component[S] == Component[T])
        continue;
      CompSucc[Component[S]].push_back(
          static_cast<unsigned>(Component[T]));
      ++InDegree[Component[T]];
    }
  }
  std::vector<unsigned> Order;
  std::vector<bool> Emitted(NextComponent, false);
  while (Order.size() < static_cast<size_t>(NextComponent)) {
    int Best = -1;
    for (int C = 0; C < NextComponent; ++C) {
      if (Emitted[C] || InDegree[C] != 0)
        continue;
      if (Best < 0 || MinStmt[C] < MinStmt[Best])
        Best = C;
    }
    assert(Best >= 0 && "condensation has a cycle");
    Emitted[Best] = true;
    Order.push_back(static_cast<unsigned>(Best));
    for (unsigned T : CompSucc[Best])
      --InDegree[T];
  }

  for (unsigned C : Order) {
    std::vector<unsigned> Group;
    for (unsigned S = 0; S < NumStmts; ++S)
      if (Component[S] == static_cast<int>(C))
        Group.push_back(S);
    Plan.Groups.push_back(std::move(Group));
  }
  return Plan;
}

bool edda::distributeLoop(std::vector<StmtPtr> &Body, unsigned LoopIdx,
                          const DistributionPlan &Plan) {
  if (!Plan.distributable() || LoopIdx >= Body.size() ||
      Body[LoopIdx]->kind() != StmtKind::Loop)
    return false;
  LoopStmt &Loop = asLoop(*Body[LoopIdx]);
  unsigned Covered = 0;
  for (const std::vector<unsigned> &Group : Plan.Groups) {
    for (unsigned S : Group)
      if (S >= Loop.body().size())
        return false;
    Covered += static_cast<unsigned>(Group.size());
  }
  if (Covered != Loop.body().size())
    return false;

  std::vector<StmtPtr> NewLoops;
  for (const std::vector<unsigned> &Group : Plan.Groups) {
    auto Piece = std::make_unique<LoopStmt>(Loop.varId(), Loop.lo(),
                                            Loop.hi(), Loop.step());
    Piece->setParallel(Loop.isParallel());
    for (unsigned S : Group)
      Piece->body().push_back(std::move(Loop.body()[S]));
    NewLoops.push_back(std::move(Piece));
  }
  Body.erase(Body.begin() + LoopIdx);
  Body.insert(Body.begin() + LoopIdx,
              std::make_move_iterator(NewLoops.begin()),
              std::make_move_iterator(NewLoops.end()));
  return true;
}

bool edda::interchangeLoops(LoopStmt &Outer) {
  if (Outer.body().size() != 1 ||
      Outer.body()[0]->kind() != StmtKind::Loop)
    return false;
  LoopStmt &Inner = asLoop(*Outer.body()[0]);
  // Rectangular requirement: the inner bounds must not depend on the
  // outer variable (otherwise interchange changes the iteration space).
  if (Inner.lo()->references(Outer.varId()) ||
      Inner.hi()->references(Outer.varId()))
    return false;

  unsigned OuterVar = Outer.varId();
  ExprPtr OuterLo = Outer.lo();
  ExprPtr OuterHi = Outer.hi();
  int64_t OuterStep = Outer.step();

  Outer.setVarId(Inner.varId());
  Outer.setLo(Inner.lo());
  Outer.setHi(Inner.hi());
  Outer.setStep(Inner.step());

  Inner.setVarId(OuterVar);
  Inner.setLo(std::move(OuterLo));
  Inner.setHi(std::move(OuterHi));
  Inner.setStep(OuterStep);
  return true;
}
