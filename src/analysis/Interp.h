//===- analysis/Interp.h - LoopLang reference interpreter ------*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for LoopLang programs. Besides computing
/// values it records every array access with its (statement, slot)
/// identity — the same addressing analysis/Refs.h uses — and the live
/// loop iteration vector. The trace is the ground truth the test suite
/// checks the dependence analyzer against: a pair of accesses to the
/// same element, at least one a write, is a real dependence, and the
/// sign pattern of their iteration vectors is a real direction vector.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_INTERP_H
#define EDDA_ANALYSIS_INTERP_H

#include "ir/Program.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace edda {

/// One recorded array access.
struct AccessRecord {
  unsigned ArrayId = 0;
  const AssignStmt *Stmt = nullptr;
  /// -1 write, >=0 read slot (see analysis/Refs.h).
  int Slot = -1;
  bool IsWrite = false;
  /// Evaluated subscript values.
  std::vector<int64_t> Indices;
  /// Values of the enclosing loop variables at the access, outermost
  /// first, paired with the loop statement.
  std::vector<std::pair<const LoopStmt *, int64_t>> Iteration;
  /// Global sequence number (program order of execution).
  uint64_t Seq = 0;
};

/// Interpreter limits and inputs.
struct InterpOptions {
  /// Values for symbolic ('read') variables, by variable id. Missing
  /// symbolics default to 0.
  std::map<unsigned, int64_t> SymbolicValues;
  /// Abort after this many recorded accesses (runaway protection).
  uint64_t MaxAccesses = 1u << 22;
};

/// Execution outcome.
struct InterpResult {
  bool Ok = false; ///< False on overflow or access-budget exhaustion.
  std::string Error;
  std::vector<AccessRecord> Trace;
  /// Final array contents: (array id, indices) -> value.
  std::map<std::pair<unsigned, std::vector<int64_t>>, int64_t> Memory;
  /// Final scalar/loop/symbolic variable values.
  std::vector<int64_t> VarValues;
};

/// Executes \p Prog and returns its access trace.
InterpResult interpret(const Program &Prog,
                       const InterpOptions &Opts = {});

} // namespace edda

#endif // EDDA_ANALYSIS_INTERP_H
