//===- analysis/DependenceGraph.h - Statement dependence graph -*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence graph a parallelizing compiler builds on top of the
/// pairwise analysis: nodes are array references, edges are dependences
/// classified as flow (write then read), anti (read then write) or
/// output (write then write), each carrying its direction vectors and
/// known constant distances. Direction vectors with a leading '>' are
/// normalized away by flipping the edge (a dependence from iteration
/// i' < i to i is really an edge in the other direction with '<'), so
/// every stored vector is lexicographically non-negative — the form
/// loop transformation legality checks expect.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_DEPENDENCEGRAPH_H
#define EDDA_ANALYSIS_DEPENDENCEGRAPH_H

#include "analysis/Analyzer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace edda {

/// Classification of a dependence edge.
enum class DepEdgeKind {
  Flow,   ///< Write before read (true dependence).
  Anti,   ///< Read before write.
  Output, ///< Write before write.
};

const char *depEdgeKindName(DepEdgeKind Kind);

/// One dependence edge between two references.
struct DepEdge {
  /// Indices into DependenceGraph::Refs; the dependence flows Src ->
  /// Dst (Src's access happens first).
  unsigned Src = 0;
  unsigned Dst = 0;
  DepEdgeKind Kind = DepEdgeKind::Flow;
  /// Direction vectors over the pair's common loops, normalized to be
  /// lexicographically non-negative (no leading '>').
  std::vector<DirVector> Vectors;
  /// Constant distances where known (normalized with the vectors).
  std::vector<std::optional<int64_t>> Distances;
  /// The common enclosing loops, outermost first.
  std::vector<const LoopStmt *> CommonLoops;
  /// False when the underlying answer was Unknown/unanalyzable: the
  /// edge must be treated as carrying every direction.
  bool Exact = true;
};

/// Whole-program dependence graph.
class DependenceGraph {
public:
  /// Builds the graph by running \p Analyzer (directions forced on)
  /// over \p Prog.
  static DependenceGraph build(Program &Prog,
                               DependenceAnalyzer &Analyzer);

  /// Builds the graph from an existing analysis result whose pairs
  /// carry direction vectors (ComputeDirections). build() and
  /// incremental re-analysis (IncrementalSession) share this: edge
  /// aggregation replays \p Analysis.Pairs in their enumeration order,
  /// so a result assembled by splicing reused pair outcomes into the
  /// fresh pair list produces a graph bit-identical to one built from
  /// scratch — including edge order and first-encounter metadata.
  static DependenceGraph buildFromResult(const AnalysisResult &Analysis);

  const std::vector<ArrayReference> &refs() const { return Refs; }
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Edges for which \p Loop is one of the common loops, i.e. the
  /// dependences that constrain transformations of that loop.
  std::vector<const DepEdge *> edgesUnder(const LoopStmt *Loop) const;

  /// True when some dependence is carried by \p Loop (first non-'='
  /// possibly at its level) — the loop cannot run its iterations
  /// concurrently.
  bool carries(const LoopStmt *Loop) const;

  /// Renders the graph for diagnostics.
  std::string str(const Program &Prog) const;

  /// Graphviz rendering: one node per reference, one edge per
  /// dependence, labeled with kind and direction vectors.
  std::string toDot(const Program &Prog) const;

private:
  std::vector<ArrayReference> Refs;
  std::vector<DepEdge> Edges;
};

/// Normalizes one reported vector into edge form: returns false when
/// the vector's first definite direction is '>' (the edge must flip).
/// '*' components are treated as potentially '<', so a vector starting
/// with '*' contributes to both orientations; normalizeVector is then
/// called for each orientation with \p Flip chosen accordingly.
bool leadingDirectionIsReversed(const DirVector &V);

/// Flips a vector (swap < and >) and negates distances; used when the
/// edge orientation is reversed.
DirVector flipVector(const DirVector &V);

} // namespace edda

#endif // EDDA_ANALYSIS_DEPENDENCEGRAPH_H
