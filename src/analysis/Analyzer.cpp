//===- analysis/Analyzer.cpp - Whole-program dependence analysis ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "opt/Pipeline.h"

using namespace edda;

AnalysisResult DependenceAnalyzer::analyze(Program &Prog) {
  if (Opts.RunPrepass)
    runPrepass(Prog);

  AnalysisResult Result;
  Result.Refs = collectReferences(Prog);
  const std::vector<ArrayReference> &Refs = Result.Refs;

  for (unsigned I = 0; I < Refs.size(); ++I) {
    for (unsigned J = I; J < Refs.size(); ++J) {
      // A dependence needs a write and a shared array.
      if (!Refs[I].IsWrite && !Refs[J].IsWrite)
        continue;
      if (Refs[I].ArrayId != Refs[J].ArrayId)
        continue;
      ++Result.PairsConsidered;

      DependencePair Pair;
      Pair.RefA = I;
      Pair.RefB = J;

      std::optional<BuiltProblem> Built =
          buildProblem(Prog, Refs[I], Refs[J]);
      if (!Built) {
        ++Result.UnanalyzablePairs;
        Pair.Answer = DepAnswer::Unknown;
        Pair.DecidedBy = TestKind::Unanalyzable;
        Pair.Exact = false;
        // Clients (the parallelizer) still need the common nest to
        // serialize conservatively.
        for (unsigned L = 0; L < Refs[I].Loops.size() &&
                             L < Refs[J].Loops.size() &&
                             Refs[I].Loops[L] == Refs[J].Loops[L];
             ++L)
          Pair.CommonLoops.push_back(Refs[I].Loops[L]);
        Result.Stats.recordDecision(TestKind::Unanalyzable, false);
        Result.Pairs.push_back(std::move(Pair));
        continue;
      }
      Pair.CommonLoops = Built->CommonLoops;
      const DependenceProblem &Problem = Built->Problem;

      // Array constants are handled without dependence testing (paper
      // section 4) — and without memoization overhead, which would
      // otherwise dominate constant-heavy programs like LG.
      bool AllConstantEqs = true;
      for (const XAffine &Eq : Problem.Equations)
        AllConstantEqs = AllConstantEqs && Eq.isConstant();
      if (AllConstantEqs) {
        CascadeResult Outcome =
            testDependence(Problem, Opts.Cascade, &Result.Stats);
        Pair.Answer = Outcome.Answer;
        Pair.DecidedBy = Outcome.DecidedBy;
        Pair.Exact = Outcome.Exact && Built->Exact;
        if (Opts.ComputeDirections &&
            Pair.Answer != DepAnswer::Independent) {
          DirectionResult Dirs;
          Dirs.RootAnswer = Pair.Answer;
          Dirs.RootDecidedBy = Outcome.DecidedBy;
          Dirs.Distances.assign(Problem.NumCommon, std::nullopt);
          // Every direction is possible for a constant overlap.
          Dirs.Vectors.push_back(DirVector(Problem.NumCommon, Dir::Any));
          Pair.Directions = std::move(Dirs);
        }
        Result.Pairs.push_back(std::move(Pair));
        continue;
      }

      if (Opts.ComputeDirections) {
        // Direction mode: the direction computation's root (*,...,*)
        // query IS the plain dependence test, so it drives everything
        // (running the cascade separately would double-count).
        std::optional<DirectionResult> CachedDirs;
        if (Opts.UseMemoization) {
          CachedDirs = Cache.lookupDirections(Problem);
          if (CachedDirs)
            Result.Stats.MemoHitsFull++;
        }
        DirectionResult Dirs;
        if (CachedDirs) {
          Dirs = std::move(*CachedDirs);
          Pair.FromCache = true;
        } else {
          Dirs = computeDirectionVectors(Problem, Opts.Direction);
          if (Opts.UseMemoization) {
            Cache.insertDirections(Problem, Dirs);
            // The root answer also serves plain (non-direction) runs
            // sharing this cache.
            CascadeResult Root;
            Root.Answer = Dirs.RootAnswer;
            Root.DecidedBy = Dirs.RootDecidedBy;
            Root.Exact = Dirs.Exact;
            Cache.insertFull(Problem, Root);
          }
          Result.Stats += Dirs.TestStats;
        }
        Pair.Answer = Dirs.RootAnswer;
        Pair.DecidedBy = Dirs.RootDecidedBy;
        Pair.Exact = Dirs.Exact && Built->Exact;
        Pair.Directions = std::move(Dirs);
        Result.Pairs.push_back(std::move(Pair));
        continue;
      }

      // Plain answer, via the full-key table when enabled.
      std::optional<CascadeResult> Cached;
      if (Opts.UseMemoization) {
        Cached = Cache.lookupFull(Problem);
        if (Cached)
          Result.Stats.MemoHitsFull++;
      }
      CascadeResult Outcome;
      if (Cached) {
        Outcome = *Cached;
        Pair.FromCache = true;
      } else {
        // The bounds-free table can spare the whole cascade when the
        // equations alone were already proved unsolvable.
        std::optional<bool> GcdKnown;
        if (Opts.UseMemoization) {
          GcdKnown = Cache.lookupGcdSolvable(Problem);
          if (GcdKnown)
            Result.Stats.MemoHitsNoBounds++;
        }
        if (GcdKnown && !*GcdKnown) {
          Outcome.Answer = DepAnswer::Independent;
          Outcome.DecidedBy = TestKind::GcdTest;
          Outcome.Exact = true;
          Pair.FromCache = true;
        } else {
          Outcome = testDependence(Problem, Opts.Cascade, &Result.Stats);
          if (Opts.UseMemoization) {
            Cache.insertFull(Problem, Outcome);
            if (Outcome.DecidedBy == TestKind::GcdTest)
              Cache.insertGcdSolvable(Problem, false);
            else if (Outcome.DecidedBy != TestKind::ArrayConstant &&
                     Outcome.DecidedBy != TestKind::Unanalyzable)
              Cache.insertGcdSolvable(Problem, true);
          }
        }
      }
      Pair.Answer = Outcome.Answer;
      Pair.DecidedBy = Outcome.DecidedBy;
      Pair.Exact = Outcome.Exact && Built->Exact;
      Result.Pairs.push_back(std::move(Pair));
    }
  }
  return Result;
}
