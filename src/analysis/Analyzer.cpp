//===- analysis/Analyzer.cpp - Whole-program dependence analysis ----------===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// The parallel driver's determinism argument, in one place:
///
///  1. Pair enumeration, problem construction and memo keying are pure
///     per pair, so they fan out freely; results land in slots indexed
///     by the serial enumeration order.
///  2. Two tested pairs can observe each other through the cache only
///     when their without-bounds memo keys are equal (the with-bounds
///     key extends the without-bounds key, so equal full keys imply
///     equal no-bounds keys). Pairs are therefore grouped by
///     without-bounds key and each group runs sequentially, in serial
///     enumeration order, inside one worker task. Across groups the
///     cache is accessed on disjoint keys, so every pair sees exactly
///     the hits and misses a serial run would have produced.
///  3. Per-group DepStats are summed after the barrier; counter sums
///     are order-independent.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "opt/Pipeline.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace edda;

namespace {

/// Resolves MemoOptions::Shards = 0 (auto): one shard for the serial
/// analyzer — byte-identical to the pre-sharding cache — or a few
/// shards per worker so concurrent lookups rarely collide on a lock.
MemoOptions resolveMemoOptions(const AnalyzerOptions &Opts,
                               unsigned NumThreads) {
  MemoOptions M = Opts.Memo;
  if (M.Shards == 0)
    M.Shards = NumThreads <= 1 ? 1 : std::min(64u, NumThreads * 4);
  return M;
}

unsigned resolveThreads(unsigned NumThreads) {
  return NumThreads == 0 ? ThreadPool::hardwareThreads() : NumThreads;
}

AnalyzerOptions resolveOptions(AnalyzerOptions Opts) {
  Opts.NumThreads = resolveThreads(Opts.NumThreads);
  Opts.Memo = resolveMemoOptions(Opts, Opts.NumThreads);
  return Opts;
}

struct VectorHash {
  size_t operator()(const std::vector<int64_t> &V) const {
    size_t H = V.size();
    for (int64_t X : V)
      H = H * 1099511628211ull + static_cast<uint64_t>(X);
    return H;
  }
};

} // namespace

DependenceAnalyzer::DependenceAnalyzer(AnalyzerOptions O)
    : Opts(resolveOptions(std::move(O))), Owned(Opts.Memo) {}

DependenceAnalyzer::DependenceAnalyzer(AnalyzerOptions O,
                                       DependenceCache &SharedCache)
    : Opts(resolveOptions(std::move(O))), Owned(MemoOptions{}),
      External(&SharedCache) {}

void DependenceAnalyzer::runIndexed(
    size_t N, const std::function<void(size_t)> &Body) {
  if (Opts.NumThreads <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Opts.NumThreads);
  Pool->parallelFor(N, Body);
}

void DependenceAnalyzer::decideTestedPair(const BuiltProblem &Built,
                                          DependencePair &Pair,
                                          DepStats &Stats,
                                          uint64_t PairKey) {
  const DependenceProblem &Problem = Built.Problem;

  if (Opts.ComputeDirections) {
    // Direction mode: the direction computation's root (*,...,*)
    // query IS the plain dependence test, so it drives everything
    // (running the cascade separately would double-count).
    std::optional<DirectionResult> CachedDirs;
    if (Opts.UseMemoization) {
      CachedDirs = cache().lookupDirections(Problem);
      if (CachedDirs)
        Stats.MemoHitsFull++;
    }
    DirectionResult Dirs;
    if (CachedDirs) {
      Dirs = std::move(*CachedDirs);
      Pair.FromCache = true;
    } else {
      Dirs = computeDirectionVectors(Problem, Opts.Direction);
      if (Opts.UseMemoization) {
        cache().insertDirections(Problem, Dirs, PairKey);
        // The root answer also serves plain (non-direction) runs
        // sharing this cache.
        CascadeResult Root;
        Root.Answer = Dirs.RootAnswer;
        Root.DecidedBy = Dirs.RootDecidedBy;
        Root.Exact = Dirs.Exact;
        Root.Widened = Dirs.RootWidened;
        cache().insertFull(Problem, Root, PairKey);
      }
      Stats += Dirs.TestStats;
    }
    Pair.Answer = Dirs.RootAnswer;
    Pair.DecidedBy = Dirs.RootDecidedBy;
    Pair.Exact = Dirs.Exact && Built.Exact;
    Pair.Directions = std::move(Dirs);
    return;
  }

  // Plain answer, via the full-key table when enabled.
  std::optional<CascadeResult> Cached;
  if (Opts.UseMemoization) {
    Cached = cache().lookupFull(Problem);
    if (Cached)
      Stats.MemoHitsFull++;
  }
  CascadeResult Outcome;
  if (Cached) {
    Outcome = *Cached;
    Pair.FromCache = true;
  } else {
    // The bounds-free table can spare the whole cascade when the
    // equations alone were already proved unsolvable.
    std::optional<bool> GcdKnown;
    if (Opts.UseMemoization) {
      GcdKnown = cache().lookupGcdSolvable(Problem);
      if (GcdKnown)
        Stats.MemoHitsNoBounds++;
    }
    if (GcdKnown && !*GcdKnown) {
      Outcome.Answer = DepAnswer::Independent;
      Outcome.DecidedBy = TestKind::GcdTest;
      Outcome.Exact = true;
      Pair.FromCache = true;
    } else {
      Outcome = testDependence(Problem, Opts.Cascade, &Stats);
      if (Opts.UseMemoization) {
        cache().insertFull(Problem, Outcome, PairKey);
        // A system-stage decision implies the extended GCD found the
        // equations solvable. The Banerjee stage is excluded: its
        // Independent answers can come from the simple GCD test, i.e.
        // from UNsolvable equations.
        if (Outcome.DecidedBy == TestKind::GcdTest)
          cache().insertGcdSolvable(Problem, false);
        else if (Outcome.DecidedBy != TestKind::ArrayConstant &&
                 Outcome.DecidedBy != TestKind::Banerjee &&
                 Outcome.DecidedBy != TestKind::Unanalyzable)
          cache().insertGcdSolvable(Problem, true);
      }
    }
  }
  Pair.Answer = Outcome.Answer;
  Pair.DecidedBy = Outcome.DecidedBy;
  Pair.Exact = Outcome.Exact && Built.Exact;
}

AnalysisResult DependenceAnalyzer::analyze(Program &Prog) {
  return analyzeImpl(Prog, /*Prev=*/nullptr, /*RS=*/nullptr);
}

AnalysisResult
DependenceAnalyzer::reanalyze(Program &Prog,
                              const AnalysisResult &Previous,
                              ReanalyzeStats *RS) {
  return analyzeImpl(Prog, &Previous, RS);
}

AnalysisResult DependenceAnalyzer::analyzeImpl(Program &Prog,
                                               const AnalysisResult *Prev,
                                               ReanalyzeStats *RS) {
  if (Opts.RunPrepass)
    runPrepass(Prog);

  AnalysisResult Result;
  Result.Refs = collectReferences(Prog);
  const std::vector<ArrayReference> &Refs = Result.Refs;

  // The reuse key field; the fuzzer's injected bug drops the bound
  // chain from the key to prove the incr axis catches stale splices.
  auto RefFp = [this](const ArrayReference &R) {
    return Opts.InjectStaleFingerprint ? R.FingerprintNoBounds
                                       : R.Fingerprint;
  };

  // Phase 1 (serial, cheap): enumerate candidate pairs in the canonical
  // (source ref, sink ref) order every downstream consumer relies on,
  // with each pair's common-loop count (loop-object prefix, as the
  // builder computes it) and fingerprint key.
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  std::vector<unsigned> CandCommon;
  std::vector<uint64_t> CandKey;
  for (unsigned I = 0; I < Refs.size(); ++I) {
    for (unsigned J = I; J < Refs.size(); ++J) {
      // A dependence needs a write and a shared array.
      if (!Refs[I].IsWrite && !Refs[J].IsWrite)
        continue;
      if (Refs[I].ArrayId != Refs[J].ArrayId)
        continue;
      Candidates.emplace_back(I, J);
      unsigned Common = 0;
      while (Common < Refs[I].Loops.size() &&
             Common < Refs[J].Loops.size() &&
             Refs[I].Loops[Common] == Refs[J].Loops[Common])
        ++Common;
      CandCommon.push_back(Common);
      CandKey.push_back(
          pairFingerprint(RefFp(Refs[I]), RefFp(Refs[J]), Common));
    }
  }
  Result.PairsConsidered = Candidates.size();

  // Re-analysis: match candidates against the previous result by
  // fingerprint key. Equal keys mean structurally identical references
  // under structurally identical bound chains with the same
  // commonality, which build the identical problem — so the previous
  // outcome is exact, not approximate. Duplicate keys (cloned
  // statements) all map to one representative; their outcomes coincide
  // for the same reason.
  std::vector<const DependencePair *> Reused(Candidates.size(), nullptr);
  if (Prev) {
    std::unordered_map<uint64_t, const DependencePair *> OldByKey;
    OldByKey.reserve(Prev->Pairs.size());
    for (const DependencePair &P : Prev->Pairs)
      OldByKey.emplace(
          pairFingerprint(RefFp(Prev->Refs[P.RefA]),
                          RefFp(Prev->Refs[P.RefB]),
                          static_cast<unsigned>(P.CommonLoops.size())),
          &P);
    for (size_t C = 0; C < Candidates.size(); ++C) {
      auto It = OldByKey.find(CandKey[C]);
      if (It != OldByKey.end())
        Reused[C] = It->second;
    }
    if (RS) {
      RS->PairsTotal = Candidates.size();
      for (const DependencePair *R : Reused)
        if (R)
          ++RS->PairsReused;
      RS->PairsInvalidated = RS->PairsTotal - RS->PairsReused;
      std::unordered_set<uint64_t> NewKeys(CandKey.begin(),
                                           CandKey.end());
      for (const auto &[Key, P] : OldByKey)
        if (!NewKeys.count(Key))
          RS->StaleKeys.push_back(Key);
      std::sort(RS->StaleKeys.begin(), RS->StaleKeys.end());
    }
  } else if (RS) {
    RS->PairsTotal = RS->PairsInvalidated = Candidates.size();
  }

  // Phase 2 (parallel): build each candidate's dependence problem and,
  // when the cache is in play, its without-bounds memo key — the
  // determinism grouping key. Pure per candidate. Reused candidates
  // skip the build entirely; that skip, not edge bookkeeping, is what
  // makes re-analysis O(edit).
  struct BuiltCandidate {
    std::optional<BuiltProblem> Built;
    bool AllConstantEqs = false;
    std::vector<int64_t> GroupKey;
  };
  std::vector<BuiltCandidate> BuiltPairs(Candidates.size());
  runIndexed(Candidates.size(), [&](size_t C) {
    if (Reused[C])
      return;
    auto [I, J] = Candidates[C];
    BuiltCandidate &BC = BuiltPairs[C];
    BC.Built = buildProblem(Prog, Refs[I], Refs[J]);
    if (!BC.Built)
      return;
    BC.AllConstantEqs = true;
    for (const XAffine &Eq : BC.Built->Problem.Equations)
      BC.AllConstantEqs = BC.AllConstantEqs && Eq.isConstant();
    if (!BC.AllConstantEqs && Opts.UseMemoization) {
      bool Swapped;
      BC.GroupKey =
          cache().keyFor(BC.Built->Problem, /*IncludeBounds=*/false,
                       Swapped);
    }
  });

  // Phase 3 (serial): assemble the ordered pair list. Unanalyzable and
  // all-constant pairs are decided inline — they never touch the cache
  // and cost next to nothing. Tested pairs get a slot now and a task
  // for the fan-out.
  std::vector<size_t> TaskCandidate; // candidate index per task
  std::vector<size_t> TaskSlot;      // Result.Pairs index per task
  for (size_t C = 0; C < Candidates.size(); ++C) {
    auto [I, J] = Candidates[C];
    BuiltCandidate &BC = BuiltPairs[C];

    DependencePair Pair;
    Pair.RefA = I;
    Pair.RefB = J;

    if (const DependencePair *Old = Reused[C]) {
      Pair.Answer = Old->Answer;
      Pair.DecidedBy = Old->DecidedBy;
      Pair.Exact = Old->Exact;
      Pair.FromCache = true;
      Pair.Directions = Old->Directions;
      // CommonLoops must point into the *new* program; the count
      // matches the old pair by key construction.
      for (unsigned L = 0; L < CandCommon[C]; ++L)
        Pair.CommonLoops.push_back(Refs[I].Loops[L]);
      // The report header's unanalyzable count is structural and must
      // stay bit-identical to a fresh run; Stats (decision counters)
      // intentionally cover only re-run pairs.
      if (Pair.DecidedBy == TestKind::Unanalyzable)
        ++Result.UnanalyzablePairs;
      Result.Pairs.push_back(std::move(Pair));
      continue;
    }

    if (!BC.Built) {
      ++Result.UnanalyzablePairs;
      Pair.Answer = DepAnswer::Unknown;
      Pair.DecidedBy = TestKind::Unanalyzable;
      Pair.Exact = false;
      // Clients (the parallelizer) still need the common nest to
      // serialize conservatively.
      for (unsigned L = 0; L < Refs[I].Loops.size() &&
                           L < Refs[J].Loops.size() &&
                           Refs[I].Loops[L] == Refs[J].Loops[L];
           ++L)
        Pair.CommonLoops.push_back(Refs[I].Loops[L]);
      Result.Stats.recordDecision(TestKind::Unanalyzable, false);
      Result.Pairs.push_back(std::move(Pair));
      continue;
    }
    Pair.CommonLoops = BC.Built->CommonLoops;

    // Array constants are handled without dependence testing (paper
    // section 4) — and without memoization overhead, which would
    // otherwise dominate constant-heavy programs like LG.
    if (BC.AllConstantEqs) {
      const DependenceProblem &Problem = BC.Built->Problem;
      CascadeResult Outcome =
          testDependence(Problem, Opts.Cascade, &Result.Stats);
      Pair.Answer = Outcome.Answer;
      Pair.DecidedBy = Outcome.DecidedBy;
      Pair.Exact = Outcome.Exact && BC.Built->Exact;
      if (Opts.ComputeDirections &&
          Pair.Answer != DepAnswer::Independent) {
        DirectionResult Dirs;
        Dirs.RootAnswer = Pair.Answer;
        Dirs.RootDecidedBy = Outcome.DecidedBy;
        Dirs.Exact = Outcome.Exact;
        Dirs.Widened = Outcome.Widened;
        Dirs.RootWidened = Outcome.Widened;
        Dirs.Distances.assign(Problem.NumCommon, std::nullopt);
        // Every direction is possible for a constant overlap.
        Dirs.Vectors.push_back(DirVector(Problem.NumCommon, Dir::Any));
        Pair.Directions = std::move(Dirs);
      }
      Result.Pairs.push_back(std::move(Pair));
      continue;
    }

    TaskCandidate.push_back(C);
    TaskSlot.push_back(Result.Pairs.size());
    Result.Pairs.push_back(std::move(Pair));
  }

  // Phase 4 (serial, cheap): batch tasks into determinism groups. With
  // memoization on, tasks sharing a without-bounds key form one group,
  // ordered by first occurrence; with it off every task is independent.
  std::vector<std::vector<size_t>> Groups;
  if (Opts.UseMemoization) {
    std::unordered_map<std::vector<int64_t>, size_t, VectorHash>
        GroupIndex;
    for (size_t T = 0; T < TaskCandidate.size(); ++T) {
      const std::vector<int64_t> &Key =
          BuiltPairs[TaskCandidate[T]].GroupKey;
      auto [It, Inserted] = GroupIndex.emplace(Key, Groups.size());
      if (Inserted)
        Groups.emplace_back();
      Groups[It->second].push_back(T);
    }
  } else {
    Groups.resize(TaskCandidate.size());
    for (size_t T = 0; T < TaskCandidate.size(); ++T)
      Groups[T].push_back(T);
  }

  // Phase 5 (parallel): decide each group. Groups touch disjoint cache
  // keys, so inter-group scheduling cannot change any outcome.
  std::vector<DepStats> GroupStats(Groups.size());
  runIndexed(Groups.size(), [&](size_t G) {
    for (size_t T : Groups[G])
      decideTestedPair(*BuiltPairs[TaskCandidate[T]].Built,
                       Result.Pairs[TaskSlot[T]], GroupStats[G],
                       CandKey[TaskCandidate[T]]);
  });
  for (const DepStats &S : GroupStats)
    Result.Stats += S;

  // Optional trace pass: re-run the pipeline observationally on every
  // analyzable pair — no stats, no memoization — so the records show
  // what each stage did without perturbing the results above. Phase 3
  // pushed exactly one pair per candidate, so candidate C's outcome
  // lives in Result.Pairs[C].
  if (Opts.Trace) {
    const TestPipeline &Pipeline = Opts.Cascade.Pipeline
                                       ? *Opts.Cascade.Pipeline
                                       : TestPipeline::defaultPipeline();
    runIndexed(Candidates.size(), [&](size_t C) {
      if (!BuiltPairs[C].Built)
        return;
      PipelineTrace Trace;
      Pipeline.run(BuiltPairs[C].Built->Problem, {}, Opts.Cascade,
                   /*Stats=*/nullptr, &Trace);
      Result.Pairs[C].Trace = std::move(Trace);
    });
  }
  return Result;
}
