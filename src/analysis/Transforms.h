//===- analysis/Transforms.h - Loop transformation legality ----*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic consumers of direction vectors (Wolfe's book, which the
/// paper cites as its direction-vector framework): legality checks for
/// loop interchange, loop reversal and loop parallelization, phrased
/// over the normalized dependence graph. A transformation is legal
/// when every transformed direction vector stays lexicographically
/// non-negative — dependences must still flow forward in time.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_TRANSFORMS_H
#define EDDA_ANALYSIS_TRANSFORMS_H

#include "analysis/DependenceGraph.h"

namespace edda {

/// Verdict of a legality query.
struct LegalityResult {
  bool Legal = true;
  /// When illegal: a violating direction vector (in the pair's common
  /// loops) for diagnostics.
  DirVector Violation;
};

/// Is it legal to interchange the two adjacent loops at depths
/// \p Level and \p Level+1 of \p Outer's nest? Checks every edge whose
/// common nest includes both loops: after swapping components Level and
/// Level+1, no vector may become lexicographically negative — the
/// classic (<, >) violation. '*' components are treated conservatively
/// (as possibly '>'). Edges flagged inexact are conservatively
/// violating.
LegalityResult canInterchange(const DependenceGraph &Graph,
                              const LoopStmt *OuterLoop,
                              const LoopStmt *InnerLoop);

/// Is it legal to reverse \p Loop (run it from hi down to lo)?
/// Reversal negates the loop's component of every vector, so it is
/// legal iff no dependence is carried by the loop.
LegalityResult canReverse(const DependenceGraph &Graph,
                          const LoopStmt *Loop);

/// Can \p Loop run its iterations concurrently? Equivalent to
/// !Graph.carries(Loop), reported with a violating vector.
LegalityResult canParallelize(const DependenceGraph &Graph,
                              const LoopStmt *Loop);

/// Can \p Loop be executed in vector chunks of \p VectorWidth
/// iterations? Legal when every dependence carried at the loop's level
/// has a known constant distance of at least VectorWidth (lanes within
/// one chunk never communicate). Dependences carried with unknown or
/// short distance are violations; carried-at-outer-level and
/// loop-independent dependences do not matter.
LegalityResult canVectorize(const DependenceGraph &Graph,
                            const LoopStmt *Loop,
                            unsigned VectorWidth);

/// Applies a legal interchange to the program structure: swaps the
/// loop headers of \p Outer and its immediate only child \p Inner.
/// \pre Inner is the sole statement of Outer's body and the bounds of
/// Inner do not reference Outer's variable (rectangular nest); returns
/// false otherwise.
bool interchangeLoops(LoopStmt &Outer);

/// Is it legal to fuse the adjacent sibling loops \p First and
/// \p Second (same bounds and step assumed; fuseLoops checks them)?
/// Fusion is illegal when some dependence from a reference of First to
/// a reference of Second would run backward in the fused loop — i.e.
/// the dependence requires Second's iteration to be *earlier* than
/// First's ('>' at the fused level). Decided exactly by building each
/// cross-loop pair's dependence problem with the two loops identified
/// as one common loop and asking the cascade for the '>' direction.
LegalityResult canFuse(const Program &Prog, const LoopStmt *First,
                       const LoopStmt *Second);

/// Fuses \p Second's body into \p First (which must be adjacent
/// siblings in \p Body with structurally identical constant bounds,
/// identical step, and loop variables that can be unified). Returns
/// false (no change) when the structural preconditions fail. Legality
/// must be checked separately with canFuse.
bool fuseLoops(Program &Prog, std::vector<StmtPtr> &Body,
               unsigned FirstIdx);

/// A loop distribution (fission) plan: the loop's top-level statements
/// partitioned into groups (Allen-Kennedy: the strongly connected
/// components of the statement-level dependence graph), listed in a
/// legal execution order. Statements inside one group are mutually
/// dependence-cycled and must stay together; distinct groups can become
/// separate loops.
struct DistributionPlan {
  /// Statement indices into the loop's body, grouped; groups ordered so
  /// that every dependence flows forward.
  std::vector<std::vector<unsigned>> Groups;

  bool distributable() const { return Groups.size() > 1; }
};

/// Plans distribution of \p Loop using the dependence graph \p Graph
/// (which must have been built for the same program). Inexact edges
/// conservatively glue their statements together.
DistributionPlan planDistribution(const DependenceGraph &Graph,
                                  const LoopStmt *Loop);

/// Applies a distribution plan: replaces \p Body[LoopIdx] (which must
/// be \p the planned loop) with one loop per group, cloning the header.
/// Returns false if the plan is trivial or indices are inconsistent.
bool distributeLoop(std::vector<StmtPtr> &Body, unsigned LoopIdx,
                    const DistributionPlan &Plan);

} // namespace edda

#endif // EDDA_ANALYSIS_TRANSFORMS_H
