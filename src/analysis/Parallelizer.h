//===- analysis/Parallelizer.h - Loop parallelization client ---*- C++ -*-===//
//
// Part of the edda project: a reproduction of Maydan, Hennessy & Lam,
// "Efficient and Exact Data Dependence Analysis", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The downstream client that motivates the paper (section 1): marking
/// loops whose iterations can run concurrently. A loop is parallel when
/// no dependence is carried at its level — i.e. no dependent pair has a
/// direction vector whose components are '=' at every enclosing common
/// level and non-'=' (or '*') at this loop's level. Unknown answers and
/// unanalyzable pairs are conservatively serializing.
///
//===----------------------------------------------------------------------===//

#ifndef EDDA_ANALYSIS_PARALLELIZER_H
#define EDDA_ANALYSIS_PARALLELIZER_H

#include "analysis/Analyzer.h"
#include "ir/Program.h"

namespace edda {

/// How a scalar assigned inside a loop body behaves across iterations.
enum class ScalarClass {
  Private,   ///< Written before any read in every iteration: each
             ///< iteration can get its own copy.
  Reduction, ///< Only updated as s = s + e / s = s - e / s = s * e
             ///< (e free of s): parallelizable with a combining tree.
  Carried,   ///< Anything else: a loop-carried scalar flow.
};

/// Classifies every scalar assigned in \p Loop's body.
/// Returns pairs (variable id, class).
std::vector<std::pair<unsigned, ScalarClass>>
classifyScalars(const Program &Prog, const LoopStmt &Loop);

/// Summary of a parallelization pass.
struct ParallelizeSummary {
  unsigned LoopsTotal = 0;
  unsigned LoopsParallel = 0;
  /// Loops parallel only because their scalar updates are reductions.
  unsigned LoopsWithReductions = 0;
};

/// Marks every parallelizable loop of \p Prog (LoopStmt::setParallel)
/// using direction-vector analysis from \p Analyzer. The analyzer's
/// direction computation is forced on for this call.
ParallelizeSummary parallelize(Program &Prog,
                               DependenceAnalyzer &Analyzer);

/// Decides carried-ness of one direction vector at \p Level: true when
/// components before Level are all '=' and the component at Level is not
/// '='.
bool carriedAt(const DirVector &V, unsigned Level);

} // namespace edda

#endif // EDDA_ANALYSIS_PARALLELIZER_H
